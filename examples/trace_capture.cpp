// Trace capture & replay: run core streams through the real L1/L2 hierarchy
// (the gem5 substitute), capture the LLC write-back trace to disk, then
// replay the file against a PCM system — the paper's two-stage methodology
// (Section IV: "we collect traces of main memory accesses in Gem5, which are
// then fed to a lightweight memory simulator").
//
// Captures use the chunked v2 container (src/trace/trace_file.hpp): values
// are stored through the best-of(BDI,FPC) compressor, chunks carry CRCs, and
// the replay goes through FileTraceSource. As a self-check, the same events
// are also kept in memory and replayed against a second identically-seeded
// system; the two runs must agree write-for-write — the file round-trip is
// lossless by construction, and this exercises it end to end.
//
//   ./build/examples/trace_capture --app gcc --instructions 60000
#include <cstdio>
#include <iostream>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/assert.hpp"
#include "common/cli.hpp"
#include "core/system.hpp"
#include "trace/file_source.hpp"
#include "trace/trace_file.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string app_name = args.get("app", "gcc");
  const auto instructions = static_cast<std::uint64_t>(args.get_int("instructions", 60000));
  const std::string path = args.get("out", "/tmp/pcmsim_" + app_name + ".trace");
  const bool keep = args.get_bool("keep");
  const AppProfile& app = profile_by_name(app_name);

  // Stage 1: capture LLC write-backs from the cache hierarchy — to the v2
  // file and to an in-memory copy used to cross-check the replay below.
  std::vector<WritebackEvent> captured;
  {
    TraceFileWriter writer(path, /*chunk_records=*/512);
    CmpSimulator sim(app, HierarchyConfig{}, 1, [&](const Writeback& wb) {
      const WritebackEvent ev{wb.line, wb.data};
      writer.append(ev);
      captured.push_back(ev);
    });
    sim.run(instructions);
    writer.close();
    std::cout << "Stage 1: " << sim.instructions() << " instructions -> " << captured.size()
              << " write-backs (WPKI " << sim.wpki() << ", Table III says " << app.wpki
              << ") captured to " << path << "\n";
  }

  // Stage 2: replay the trace file against a Comp+WF PCM region.
  SystemConfig cfg;
  cfg.mode = SystemMode::kCompWF;
  cfg.device.lines = 1024;
  cfg.device.endurance_mean = 1e4;
  PcmSystem from_file(cfg);

  FileTraceSource source(path);
  expects(source.total_records() == captured.size(),
          "v2 capture lost or invented records");
  std::vector<WritebackEvent> batch(256);
  std::uint64_t replayed = 0;
  while (const std::size_t n = source.next_batch(batch)) {
    for (std::size_t i = 0; i < n; ++i) {
      (void)from_file.write(batch[i].line % from_file.logical_lines(), batch[i].data);
    }
    replayed += n;
  }
  const auto& st = from_file.stats();
  std::cout << "Stage 2: replayed " << replayed << " write-backs; "
            << st.compressed_writes << " stored compressed (mean "
            << st.compressed_size.mean() << " B), mean flips/write "
            << st.flips_per_write.mean() << "\n";

  // Stage 3: cross-check — the in-memory events driven through an
  // identically-configured system must produce identical write stats.
  PcmSystem from_memory(cfg);
  for (const auto& ev : captured) {
    (void)from_memory.write(ev.line % from_memory.logical_lines(), ev.data);
  }
  const auto& mt = from_memory.stats();
  ensures(replayed == captured.size() && mt.writes == st.writes &&
              mt.compressed_writes == st.compressed_writes &&
              mt.flips_per_write.sum() == st.flips_per_write.sum() &&
              mt.compressed_size.sum() == st.compressed_size.sum(),
          "file replay diverged from in-memory replay");
  std::cout << "Stage 3: file replay matches in-memory replay ("
            << mt.writes << " writes, " << mt.flips_per_write.sum() << " total flips)\n";

  if (!keep) std::remove(path.c_str());
  return 0;
}
