// Trace capture & replay: run core streams through the real L1/L2 hierarchy
// (the gem5 substitute), capture the LLC write-back trace to disk, then
// replay the file against a PCM system — the paper's two-stage methodology
// (Section IV: "we collect traces of main memory accesses in Gem5, which are
// then fed to a lightweight memory simulator").
//
//   ./build/examples/trace_capture --app gcc --instructions 60000
#include <cstdio>
#include <iostream>

#include "cache/hierarchy.hpp"
#include "common/cli.hpp"
#include "core/system.hpp"
#include "workload/trace.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string app_name = args.get("app", "gcc");
  const auto instructions = static_cast<std::uint64_t>(args.get_int("instructions", 60000));
  const std::string path = args.get("out", "/tmp/pcmsim_" + app_name + ".trace");
  const AppProfile& app = profile_by_name(app_name);

  // Stage 1: capture LLC write-backs from the cache hierarchy.
  std::uint64_t captured = 0;
  {
    TraceWriter writer(path);
    CmpSimulator sim(app, HierarchyConfig{}, 1, [&](const Writeback& wb) {
      writer.append(WritebackEvent{wb.line, wb.data});
      ++captured;
    });
    sim.run(instructions);
    std::cout << "Stage 1: " << sim.instructions() << " instructions -> " << captured
              << " write-backs (WPKI " << sim.wpki() << ", Table III says " << app.wpki
              << ") captured to " << path << "\n";
  }

  // Stage 2: replay the trace file against a Comp+WF PCM region.
  SystemConfig cfg;
  cfg.mode = SystemMode::kCompWF;
  cfg.device.lines = 1024;
  cfg.device.endurance_mean = 1e4;
  PcmSystem system(cfg);

  TraceReader reader(path);
  std::uint64_t replayed = 0;
  while (const auto ev = reader.next()) {
    (void)system.write(ev->line % system.logical_lines(), ev->data);
    ++replayed;
  }
  const auto& st = system.stats();
  std::cout << "Stage 2: replayed " << replayed << " write-backs; "
            << st.compressed_writes << " stored compressed (mean "
            << st.compressed_size.mean() << " B), mean flips/write "
            << st.flips_per_write.mean() << "\n";

  std::remove(path.c_str());
  return 0;
}
