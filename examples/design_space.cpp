// Design-space sweep: lifetime of every (system mode x hard-error scheme)
// combination on one workload — the kind of exploration a memory architect
// would run before committing to a configuration. Schemes come from the ECC
// registry; combinations a scheme's traits forbid (SECDED outside Baseline,
// coset coding without compression) print "n/a" instead of running.
//
//   ./build/examples/design_space --app gcc [--endurance 400] [--lines 512]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

namespace {

/// True when the scheme's traits allow it to run in `mode`.
bool legal_combo(const SchemeTraits& traits, SystemMode mode) {
  if (traits.baseline_only && mode != SystemMode::kBaseline) return false;
  if (traits.requires_compression && mode == SystemMode::kBaseline) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string app_name = args.get("app", "gcc");
  const AppProfile& app = profile_by_name(app_name);

  LifetimeConfig lc;
  lc.system.device.lines = static_cast<std::uint64_t>(args.get_int("lines", 512));
  lc.system.device.endurance_mean = args.get_double("endurance", 400);
  lc.system.device.endurance_cov = 0.15;
  lc.max_writes = 4'000'000'000ull;

  const std::vector<std::string> specs = {"ecp6",   "safer32", "aegis17x31", "secded",
                                          "bch-t6", "coset-w4"};

  // Baseline ECP-6 is the reference cell.
  lc.system.mode = SystemMode::kBaseline;
  lc.system.ecc_spec = "ecp6";
  std::cerr << "reference: Baseline/ECP-6...\n";
  const double ref = static_cast<double>(run_lifetime(app, lc, 7).writes_to_failure);

  std::vector<std::string> header = {"mode"};
  for (const auto& spec : specs) {
    const auto* info = find_scheme_info(spec);
    header.push_back(info ? std::string(info->name) : spec);
  }
  TablePrinter table(header);
  for (auto mode : {SystemMode::kBaseline, SystemMode::kComp, SystemMode::kCompW,
                    SystemMode::kCompWF}) {
    std::vector<std::string> row = {std::string(to_string(mode))};
    for (const auto& spec : specs) {
      if (!legal_combo(scheme_traits(spec), mode)) {
        row.push_back("n/a");
        continue;
      }
      lc.system.mode = mode;
      lc.system.ecc_spec = spec;
      std::cerr << "running " << to_string(mode) << " / " << spec << "...\n";
      const auto r = run_lifetime(app, lc, 7);
      row.push_back(TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / ref, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "Design space — " + app_name +
                             " lifetime normalized to Baseline/ECP-6");
  std::cout << "Stronger partition-based schemes pay off most once compression\n"
            << "collocates the faults (Comp+WF rows; paper Section III-A.4).\n";
  return 0;
}
