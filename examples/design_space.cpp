// Design-space sweep: lifetime of every (system mode x hard-error scheme)
// combination on one workload — the kind of exploration a memory architect
// would run before committing to a configuration.
//
//   ./build/examples/design_space --app gcc [--endurance 400] [--lines 512]
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string app_name = args.get("app", "gcc");
  const AppProfile& app = profile_by_name(app_name);

  LifetimeConfig lc;
  lc.system.device.lines = static_cast<std::uint64_t>(args.get_int("lines", 512));
  lc.system.device.endurance_mean = args.get_double("endurance", 400);
  lc.system.device.endurance_cov = 0.15;
  lc.max_writes = 4'000'000'000ull;

  // Baseline ECP-6 is the reference cell.
  lc.system.mode = SystemMode::kBaseline;
  lc.system.ecc = EccKind::kEcp6;
  std::cerr << "reference: Baseline/ECP-6...\n";
  const double ref = static_cast<double>(run_lifetime(app, lc, 7).writes_to_failure);

  TablePrinter table({"mode", "ECP-6", "SAFER-32", "Aegis-17x31"});
  for (auto mode : {SystemMode::kBaseline, SystemMode::kComp, SystemMode::kCompW,
                    SystemMode::kCompWF}) {
    std::vector<std::string> row = {std::string(to_string(mode))};
    for (auto ecc : {EccKind::kEcp6, EccKind::kSafer32, EccKind::kAegis17x31}) {
      lc.system.mode = mode;
      lc.system.ecc = ecc;
      std::cerr << "running " << to_string(mode) << " / " << make_scheme(ecc)->name()
                << "...\n";
      const auto r = run_lifetime(app, lc, 7);
      row.push_back(TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / ref, 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout, "Design space — " + app_name +
                             " lifetime normalized to Baseline/ECP-6");
  std::cout << "Stronger partition-based schemes pay off most once compression\n"
            << "collocates the faults (Comp+WF rows; paper Section III-A.4).\n";
  return 0;
}
