// Error-tolerance explorer: inject random stuck-at faults into one 512-bit
// line and watch how much data each hard-error scheme can still store — with
// and without the paper's sliding compression window.
//
//   ./build/examples/error_explorer [--faults 40] [--seed 9]
#include <algorithm>
#include <iostream>
#include <memory>
#include <numeric>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "ecc/aegis.hpp"
#include "ecc/ecp.hpp"
#include "ecc/safer.hpp"
#include "sim/monte_carlo.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto nfaults = static_cast<std::size_t>(args.get_int("faults", 40));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 9)));

  // Inject `nfaults` stuck cells at uniform positions.
  std::vector<std::uint16_t> cells(kBlockBits);
  std::iota(cells.begin(), cells.end(), std::uint16_t{0});
  std::vector<std::uint16_t> positions;
  for (std::size_t i = 0; i < nfaults; ++i) {
    const std::size_t j = i + rng.next_below(kBlockBits - i);
    std::swap(cells[i], cells[j]);
    positions.push_back(cells[i]);
  }
  std::sort(positions.begin(), positions.end());

  std::cout << "Injected " << nfaults << " stuck cells into a 512-bit line at bytes:";
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (i % 16 == 0) std::cout << "\n  ";
    std::cout << positions[i] / 8 << "." << positions[i] % 8 << " ";
  }
  std::cout << "\n";

  std::vector<std::unique_ptr<HardErrorScheme>> schemes;
  schemes.push_back(std::make_unique<EcpScheme>(6));
  schemes.push_back(std::make_unique<SaferScheme>(32));
  schemes.push_back(std::make_unique<SaferScheme>(32, SaferScheme::Strategy::kExhaustive));
  schemes.push_back(std::make_unique<AegisScheme>(17, 31));

  TablePrinter table({"scheme", "guaranteed", "whole_line_ok", "max_window_B"});
  for (const auto& s : schemes) {
    std::vector<FaultCell> faults;
    for (auto p : positions) faults.push_back({p, false});
    const bool whole = s->can_tolerate(faults, kBlockBits);

    // Largest data size that still fits SOMEWHERE in the line (the paper's
    // sliding-window tolerance): binary search over window sizes.
    std::size_t lo = 0;
    std::size_t hi = kBlockBytes;
    while (lo < hi) {
      const std::size_t mid = (lo + hi + 1) / 2;
      if (mc_trial_survives(*s, mid, positions, /*wrap=*/true)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    table.add_row({std::string(s->name()), TablePrinter::fmt(s->guaranteed_correctable()),
                   whole ? "yes" : "no", TablePrinter::fmt(lo)});
  }
  table.print(std::cout, "What still fits in this worn line?");
  std::cout << "Uncompressed data needs whole_line_ok; compressed data only needs a\n"
            << "window of its own size — that is why compression multiplies the\n"
            << "tolerable fault count (paper Fig 9/12).\n";
  return 0;
}
