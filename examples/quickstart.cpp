// Quickstart: the full proposed pipeline on one memory line.
//
//   1. compress a 64-byte write-back with the best of BDI/FPC,
//   2. store it in a compression window of a simulated PCM line,
//   3. wear the line out until cells stick,
//   4. watch the window slide around the faults and the data stay intact.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstring>
#include <iostream>

#include "core/system.hpp"

using namespace pcmsim;

int main() {
  // A small Comp+WF system in functional-verify mode: every write goes
  // through the real ECP-6 encoder and reads are decoded + decompressed.
  SystemConfig cfg;
  cfg.mode = SystemMode::kCompWF;
  cfg.device.lines = 16;
  cfg.device.endurance_mean = 150;  // tiny endurance so wear-out is visible
  cfg.device.endurance_cov = 0.15;
  cfg.functional_verify = true;
  PcmSystem system(cfg);

  // A compressible payload: a counter array (BDI-friendly narrow deltas).
  Block data{};
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t v = 0x1000'0000ull + i;
    std::memcpy(data.data() + i * 8, &v, 8);
  }

  std::cout << "Writing the same logical line until the PCM cells wear out...\n\n";
  LineAddr line = 3;
  std::uint64_t writes = 0;
  std::uint8_t last_start = 255;
  while (writes < 100000) {
    // Mutate one value so differential writes have something to do.
    std::uint64_t v;
    std::memcpy(&v, data.data() + 8, 8);
    ++v;
    std::memcpy(data.data() + 8, &v, 8);

    const auto out = system.write(line, data);
    ++writes;
    if (!out.stored) {
      std::cout << "write " << writes << ": line is dead (no window fits)\n";
      break;
    }
    if (out.start_byte != last_start) {
      const auto physical = system.physical_of(line);
      std::cout << "write " << writes << ": window at byte " << int(out.start_byte)
                << " (size " << int(out.size_bytes) << "B, "
                << (out.compressed ? "compressed" : "raw") << "), stuck cells in line: "
                << system.array().count_stuck(physical, 0, kBlockBits) << "\n";
      last_start = out.start_byte;
    }
    // Functional mode guarantee: the data reads back exactly, faults and all.
    if (system.read(line) != data) {
      std::cout << "DATA CORRUPTION at write " << writes << "\n";
      return 1;
    }
  }

  const auto& st = system.stats();
  std::cout << "\nTotals: " << st.writes << " writes, "
            << st.compressed_writes << " compressed, "
            << st.window_slides << " window slides, "
            << system.array().total_faults() << " worn-out cells, "
            << "mean flips/write " << st.flips_per_write.mean() << "\n";
  std::cout << "Every read returned the exact written data despite "
            << system.array().total_faults() << " stuck cells - that is the paper's "
            << "collaborative compression + error-tolerance mechanism at work.\n";
  return 0;
}
