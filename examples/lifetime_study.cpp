// Lifetime study: compare the paper's four system configurations on one
// SPEC-2006-calibrated workload and report normalized lifetimes plus the
// Table-IV-style months conversion.
//
//   ./build/examples/lifetime_study --app milc [--endurance 600] [--lines 768]
//
// The write-back stream is selectable:
//   (default)          the batched SampledTraceSource (statistically
//                      calibrated against the legacy generator, ~4x+ cheaper
//                      per event)
//   --source legacy    the original TraceGenerator (bit-identical to PR <= 4
//                      runs; the quarantined calibration oracle)
//   --trace FILE       loop a captured v1/v2 trace file (values re-versioned
//                      each pass so differential writes keep flipping cells)
//   --decode parallel  fan v2 chunk decode over the thread pool (--trace only;
//                      byte-identical stream, lower decode latency)
//   --prefetch         fill trace batches on a background thread, overlapping
//                      generation/decode with write execution
//   --ecc SPEC         hard-error scheme by registry spec ("ecp6", "bch-t6",
//                      "coset-w4", ... — see ecc/registry.hpp); the scheme's
//                      traits prune the mode list to legal combinations
//
// `--profile` appends the write-path stage counters (trace-gen, compress,
// heuristic, place, program, ECC, gap-move) as JSON, attributing the run's
// time per stage — see common/profiler.hpp.
//
// Multi-tenant mode (`--tenants N`, optional `--shards S`): instead of the
// four-mode comparison, drive the sharded multi-bank engine with N sampled
// tenant streams (cycling --apps) over S = channels x banks shards, and
// report per-tenant lifetime (writes until the tenant's logical slice hit
// the capacity-death criterion) plus per-shard utilization. `--lines` is
// then per shard. See sim/sharded_engine.hpp and EXPERIMENTS.md.
//
//   ./build/examples/lifetime_study --tenants 32 --shards 8 --endurance 100
#include <iostream>
#include <mutex>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/profiler.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"
#include "sim/sharded_engine.hpp"
#include "trace/file_source.hpp"

using namespace pcmsim;

namespace {

/// Shared `--tier-kb N --tier-policy lru|silent|comp|dedup` parsing; returns
/// a disabled config when the flags are absent, so every pre-tier invocation
/// behaves (and checksums) exactly as before.
FrontTierConfig tier_config_from_cli(const CliArgs& args) {
  const auto tier_kb = static_cast<std::size_t>(args.get_int("tier-kb", 0));
  if (tier_kb == 0) return {};
  return FrontTierConfig::for_kb(tier_kb,
                                 tier_policy_from_string(args.get("tier-policy", "lru")));
}

int run_multi_tenant(const CliArgs& args) {
  const auto tenants = static_cast<std::uint32_t>(args.get_int("tenants", 16));
  const auto shards = static_cast<std::uint32_t>(args.get_int("shards", 8));

  ShardedEngineConfig cfg;
  cfg.shard_system.device.lines = static_cast<std::uint64_t>(args.get_int("lines", 257));
  cfg.shard_system.device.endurance_mean = args.get_double("endurance", 100);
  cfg.shard_system.device.endurance_cov = args.get_double("cov", 0.15);
  const auto channels = static_cast<std::uint32_t>(args.get_int("channels", 2));
  cfg.map.channels = (shards % channels == 0 && shards >= channels) ? channels : 1;
  cfg.map.banks_per_channel = shards / cfg.map.channels;
  cfg.tenants = tenants;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  cfg.arrival_gap_cycles = static_cast<std::uint64_t>(args.get_int("gap_cycles", 16));
  cfg.prefetch = args.get_bool("prefetch");
  cfg.tier = tier_config_from_cli(args);

  std::vector<AppProfile> apps;
  {
    const std::string csv = args.get("apps", args.get("app", "gcc,milc,lbm"));
    std::size_t pos = 0;
    while (pos < csv.size()) {
      const std::size_t comma = csv.find(',', pos);
      const std::size_t end = comma == std::string::npos ? csv.size() : comma;
      apps.push_back(profile_by_name(csv.substr(pos, end - pos)));
      pos = end + 1;
    }
  }

  ShardedPcmEngine engine(cfg);
  engine.add_sampled_tenants(apps);
  std::cout << "Multi-tenant mode: " << tenants << " tenants over " << engine.shards()
            << " shards (" << cfg.map.channels << " channels x "
            << cfg.map.banks_per_channel << " banks), "
            << engine.tenant_region_lines() << " logical lines per tenant\n";
  if (cfg.tier.enabled()) {
    std::cout << "Front tier: " << cfg.tier.capacity_lines
              << " lines/shard, policy " << to_string(cfg.tier.policy) << "\n";
  }

  const auto events = static_cast<std::uint64_t>(args.get_int("events", 2'000'000));
  const ShardedRunResult result = engine.run(events);

  TablePrinter shard_table({"shard", "events", "utilization", "write_lat_cycles",
                            "lines_dead"});
  for (std::size_t s = 0; s < result.shards.size(); ++s) {
    const auto& row = result.shards[s];
    shard_table.add_row({TablePrinter::fmt(s), TablePrinter::fmt(row.events),
                         TablePrinter::fmt(row.utilization, 3),
                         TablePrinter::fmt(row.write_latency_mean, 1),
                         TablePrinter::fmt(row.stats.lines_dead)});
  }
  shard_table.print(std::cout, "Per-shard utilization");

  TablePrinter tenant_table({"tenant", "app", "writes", "absorbed", "dropped",
                             "line_deaths", "writes_to_failure"});
  RunningStat life;
  for (std::size_t t = 0; t < result.tenants.size(); ++t) {
    const auto& row = result.tenants[t];
    if (row.failed) life.add(static_cast<double>(row.writes_at_failure));
    tenant_table.add_row({TablePrinter::fmt(t), std::string(apps[t % apps.size()].name),
                          TablePrinter::fmt(row.writes),
                          TablePrinter::fmt(row.absorbed_writes),
                          TablePrinter::fmt(row.dropped_writes),
                          TablePrinter::fmt(row.line_deaths),
                          row.failed ? TablePrinter::fmt(row.writes_at_failure)
                                     : std::string("alive")});
  }
  tenant_table.print(std::cout, "Per-tenant lifetime");
  std::cout << "events: " << result.events << "  epochs: " << result.epochs
            << "  tenants_failed: " << life.count();
  if (life.count() > 0) std::cout << "  mean_writes_to_failure: " << life.mean();
  if (cfg.tier.enabled()) {
    std::cout << "  tier_absorbed: " << result.tier.absorbed() << "/"
              << result.tier.offered;
  }
  std::cout << "  checksum: " << result.checksum << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  if (args.has("tenants") || args.has("shards")) return run_multi_tenant(args);
  if (args.get_bool("profile")) prof::set_enabled(true);
  const ScopedTimer timer("lifetime_study");
  const std::string app_name = args.get("app", "milc");
  const AppProfile& app = profile_by_name(app_name);

  LifetimeConfig lc;
  lc.system.device.lines = static_cast<std::uint64_t>(args.get_int("lines", 768));
  lc.system.device.endurance_mean = args.get_double("endurance", 600);
  lc.system.device.endurance_cov = args.get_double("cov", 0.15);
  lc.max_writes = 4'000'000'000ull;

  // `--ecc <spec>` swaps the hard-error scheme (ECC registry grammar). The
  // scheme's traits prune the mode list to legal combinations: line-only
  // codes (SECDED) run Baseline alone; slack-consuming word codes (coset)
  // need compression and drop the Baseline row.
  const std::string ecc_spec = args.get("ecc", "ecp6");
  const SchemeTraits ecc_traits = scheme_traits(ecc_spec);
  lc.system.ecc_spec = ecc_spec;

  const std::string trace_path = args.get("trace", "");
  const std::string source_kind = args.get("source", "sampled");
  const std::string decode_kind = args.get("decode", "serial");
  expects(decode_kind == "serial" || decode_kind == "parallel",
          "--decode must be 'serial' or 'parallel'");
  const TraceDecode decode =
      decode_kind == "parallel" ? TraceDecode::kParallel : TraceDecode::kSerial;
  lc.prefetch = args.get_bool("prefetch");
  lc.tier = tier_config_from_cli(args);

  std::cout << "Workload: " << app.name << " (WPKI " << app.wpki << ", Table III CR "
            << app.table_cr << ", bucket " << to_string(app.bucket) << ")\n";
  if (!trace_path.empty()) {
    std::cout << "Source: looped trace replay of " << trace_path << " (" << decode_kind
              << " decode)\n";
  } else if (source_kind == "legacy") {
    std::cout << "Source: legacy TraceGenerator (calibration oracle)\n";
  }
  if (lc.prefetch) std::cout << "Prefetch: background batch fill enabled\n";
  if (lc.tier.enabled()) {
    std::cout << "Front tier: " << lc.tier.capacity_lines << " lines ("
              << lc.tier.capacity_lines * kBlockBytes / 1024 << " KB), policy "
              << to_string(lc.tier.policy) << "\n";
  }
  if (ecc_spec != "ecp6") {
    std::cout << "ECC: " << ecc_spec << " (guarantees " << ecc_traits.guaranteed_correctable
              << " faults in " << ecc_traits.metadata_bits << " metadata bits)\n";
  }

  // The four system configurations are independent runs on the same seeds —
  // simulate them concurrently, then print in the paper's order. Each run
  // constructs its own source so the streams are identical across modes.
  std::vector<SystemMode> modes = {SystemMode::kBaseline, SystemMode::kComp,
                                   SystemMode::kCompW, SystemMode::kCompWF};
  if (ecc_traits.baseline_only) {
    modes = {SystemMode::kBaseline};
  } else if (ecc_traits.requires_compression) {
    modes = {SystemMode::kComp, SystemMode::kCompW, SystemMode::kCompWF};
  }
  std::mutex log_m;
  const auto results = parallel_map(modes, [&](const SystemMode mode) {
    {
      const std::lock_guard lk(log_m);
      std::cerr << "running " << to_string(mode) << "...\n";
    }
    LifetimeConfig run_lc = lc;
    run_lc.system.mode = mode;
    if (!trace_path.empty()) {
      LoopedFileTraceSource source(trace_path, decode);
      return run_lifetime(source, run_lc);
    }
    if (source_kind == "legacy") {
      return run_lifetime_legacy(app, run_lc, 42);
    }
    expects(source_kind == "sampled", "--source must be 'sampled' or 'legacy'");
    // run_lifetime's default path constructs the sampled source folded onto
    // system.logical_lines() (device.lines - 1: StartGap keeps a spare slot).
    return run_lifetime(app, run_lc, 42);
  });

  TablePrinter table({"system", "writes_to_failure", "normalized", "months@1e7",
                      "faults_at_death", "flips/write"});
  const double base_writes = static_cast<double>(results[0].writes_to_failure);
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const auto& r = results[i];
    table.add_row({std::string(to_string(modes[i])),
                   TablePrinter::fmt(r.writes_to_failure),
                   TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / base_writes, 2),
                   TablePrinter::fmt(lifetime_months(r, lc, app), 1),
                   TablePrinter::fmt(r.mean_faults_at_death, 1),
                   TablePrinter::fmt(r.mean_flips_per_write, 1)});
  }
  table.print(std::cout, "Lifetime comparison — " + app.name +
                             (ecc_spec == "ecp6" ? "" : " (" + ecc_spec + ")"));
  if (lc.tier.enabled()) {
    // Lifetime amplification: offered write-backs the workload got through
    // before PCM death, relative to the PCM-serviced count — what the DRAM
    // tier buys on top of the compression/ECC machinery below it.
    TablePrinter tier_table({"system", "offered", "absorbed", "absorb_%",
                             "amplification", "tier_lat_cycles"});
    for (std::size_t i = 0; i < modes.size(); ++i) {
      const auto& r = results[i];
      const double absorbed_pct =
          r.tier.offered > 0
              ? 100.0 * static_cast<double>(r.tier.absorbed()) /
                    static_cast<double>(r.tier.offered)
              : 0.0;
      const double amp = r.writes_to_failure > 0
                             ? static_cast<double>(r.offered_writes) /
                                   static_cast<double>(r.writes_to_failure)
                             : 0.0;
      tier_table.add_row({std::string(to_string(modes[i])),
                          TablePrinter::fmt(r.offered_writes),
                          TablePrinter::fmt(r.tier.absorbed()),
                          TablePrinter::fmt(absorbed_pct, 1), TablePrinter::fmt(amp, 2),
                          TablePrinter::fmt(r.tier_write_latency_cycles, 1)});
    }
    tier_table.print(std::cout, "Front tier — " + std::string(to_string(lc.tier.policy)));
  }
  std::cout << "Paper (Fig 10): Comp can shorten lifetime for volatile/low-CR apps;\n"
            << "Comp+W never hurts; Comp+WF is best and grows with compressibility.\n";
  if (prof::enabled()) {
    std::cout << "profile: ";
    prof::dump_json(std::cout, "");
    std::cout << "\n";
  }
  return 0;
}
