// Write-back trace generation and (de)serialization.
//
// The paper collects LLC write-back traces in gem5 and replays them against a
// lightweight PCM lifetime simulator. Here TraceGenerator produces an
// *unbounded* calibrated write-back stream instead: replaying a finite
// recorded trace verbatim would be degenerate under differential writes (the
// second pass would rewrite identical values and flip nothing), so the
// lifetime engine consumes a continuing stream whose values keep evolving —
// equivalent to concatenating ever-longer gem5 traces.
//
// Finite traces can still be captured to disk (TraceWriter/TraceReader) for
// inspection, tests, and the cache front-end interop.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {

/// v1 trace file magic ("PCMTRACE"); the v2 chunked format lives in
/// src/trace/trace_file.hpp and uses a distinct magic, so readers can
/// distinguish the two (trace/file_source.hpp auto-detects).
inline constexpr std::uint64_t kTraceV1Magic = 0x50434d5452414345ull;

/// One LLC write-back: a line address and the full 64-byte value written.
struct WritebackEvent {
  LineAddr line = 0;
  Block data{};
};

/// Stable pseudo-random rank->line map shared by every trace source;
/// decouples Zipf popularity rank from spatial position and from the hash
/// that assigns value classes. SampledTraceSource must agree with
/// TraceGenerator here so both drive the same per-line class/value model.
[[nodiscard]] inline LineAddr fold_rank(std::uint64_t rank, std::uint64_t seed,
                                        std::uint64_t region_lines) {
  return mix64(rank ^ (seed * 0x2545F4914F6CDD1Dull)) % region_lines;
}

/// First-touch shape of a line, shared by every trace source (see fold_rank).
[[nodiscard]] inline std::uint32_t initial_line_shape(LineAddr line, std::uint64_t seed) {
  return static_cast<std::uint32_t>(mix64(line ^ seed ^ 0xBEEFull));
}

class TraceGenerator {
 public:
  /// `region_lines` folds the app's working set onto the simulated PCM
  /// region (the standard trace-sampling methodology for lifetime studies).
  TraceGenerator(const AppProfile& app, std::uint64_t region_lines, std::uint64_t seed);

  // Non-copyable: the class assigner points into the stored profile copy.
  TraceGenerator(const TraceGenerator&) = delete;
  TraceGenerator& operator=(const TraceGenerator&) = delete;

  /// Produces the next write-back (address + new value).
  [[nodiscard]] WritebackEvent next();

  /// Value most recently produced for `line` (all-zero if never written).
  [[nodiscard]] Block current_value(LineAddr line) const;

  /// The value class governing `line`'s contents.
  [[nodiscard]] const ValueClassSpec& class_of(LineAddr line) const;

  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t region_lines() const { return region_lines_; }
  [[nodiscard]] const AppProfile& app() const { return app_; }
  /// Calibration introspection (compared against SampledTraceSource).
  [[nodiscard]] std::uint64_t shape_redraws() const { return shape_redraws_; }
  [[nodiscard]] std::uint64_t touched_lines() const { return states_.size(); }

 private:
  struct LineState {
    std::uint32_t shape = 0;
    std::uint32_t version = 0;
  };

  [[nodiscard]] LineAddr fold(std::uint64_t rank) const;

  AppProfile app_;
  std::uint64_t region_lines_;
  std::uint64_t seed_;
  Rng rng_;
  ZipfSampler zipf_;
  ClassAssigner classes_;
  std::unordered_map<LineAddr, LineState> states_;
  std::uint64_t events_ = 0;
  std::uint64_t shape_redraws_ = 0;
};

/// Binary trace file: 16-byte header (magic + count) then packed records.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const WritebackEvent& ev);
  void close();  ///< finalizes the header; called by the destructor too

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Next record, or nullopt at end of trace.
  [[nodiscard]] std::optional<WritebackEvent> next();

 private:
  std::ifstream in_;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace pcmsim
