// Write-back trace generation and (de)serialization.
//
// The paper collects LLC write-back traces in gem5 and replays them against a
// lightweight PCM lifetime simulator. Here TraceGenerator produces an
// *unbounded* calibrated write-back stream instead: replaying a finite
// recorded trace verbatim would be degenerate under differential writes (the
// second pass would rewrite identical values and flip nothing), so the
// lifetime engine consumes a continuing stream whose values keep evolving —
// equivalent to concatenating ever-longer gem5 traces.
//
// Finite traces can still be captured to disk (TraceWriter/TraceReader) for
// inspection, tests, and the cache front-end interop.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {

/// One LLC write-back: a line address and the full 64-byte value written.
struct WritebackEvent {
  LineAddr line = 0;
  Block data{};
};

class TraceGenerator {
 public:
  /// `region_lines` folds the app's working set onto the simulated PCM
  /// region (the standard trace-sampling methodology for lifetime studies).
  TraceGenerator(const AppProfile& app, std::uint64_t region_lines, std::uint64_t seed);

  // Non-copyable: the class assigner points into the stored profile copy.
  TraceGenerator(const TraceGenerator&) = delete;
  TraceGenerator& operator=(const TraceGenerator&) = delete;

  /// Produces the next write-back (address + new value).
  [[nodiscard]] WritebackEvent next();

  /// Value most recently produced for `line` (all-zero if never written).
  [[nodiscard]] Block current_value(LineAddr line) const;

  /// The value class governing `line`'s contents.
  [[nodiscard]] const ValueClassSpec& class_of(LineAddr line) const;

  [[nodiscard]] std::uint64_t events() const { return events_; }
  [[nodiscard]] std::uint64_t region_lines() const { return region_lines_; }
  [[nodiscard]] const AppProfile& app() const { return app_; }

 private:
  struct LineState {
    std::uint32_t shape = 0;
    std::uint32_t version = 0;
  };

  [[nodiscard]] LineAddr fold(std::uint64_t rank) const;

  AppProfile app_;
  std::uint64_t region_lines_;
  std::uint64_t seed_;
  Rng rng_;
  ZipfSampler zipf_;
  ClassAssigner classes_;
  std::unordered_map<LineAddr, LineState> states_;
  std::uint64_t events_ = 0;
};

/// Binary trace file: 16-byte header (magic + count) then packed records.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const WritebackEvent& ev);
  void close();  ///< finalizes the header; called by the destructor too

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
  bool closed_ = false;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Next record, or nullopt at end of trace.
  [[nodiscard]] std::optional<WritebackEvent> next();

 private:
  std::ifstream in_;
  std::uint64_t count_ = 0;
  std::uint64_t read_ = 0;
};

}  // namespace pcmsim
