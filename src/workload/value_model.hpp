// Synthetic 64-byte value generation calibrated to SPEC CPU2006 behaviour.
//
// The paper's mechanisms observe exactly three properties of write-back data:
//   1. its compressed size under best-of-BDI/FPC (Table III / Fig 3),
//   2. how that size fluctuates across rewrites of a block (Fig 6/7), and
//   3. how many bits change between consecutive values (DW flips, Fig 1/5).
// Each value class below targets a compressibility family observed in SPEC
// memory dumps: BDI-friendly narrow values (fixed-position deltas — rewrites
// barely move the compressed image), FPC-friendly pattern mixes (variable-
// length packing — rewrites shift downstream bits), and incompressible data.
//
// Generation is a pure function of (line, shape_seed, version), so the trace
// is reproducible and per-line state is two integers.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace pcmsim {

enum class ValueClass : std::uint8_t {
  kZeroPage,    ///< almost-zero lines (BSS, freshly-zeroed heap)
  kSmallInt,    ///< 4-byte counters/flags; FPC sign-extended patterns
  kNarrowInt64, ///< 8-byte values near a shared base; BDI b8dX
  kNarrowInt32, ///< 4-byte values near a shared base; BDI b4dX
  kPointerHeap, ///< 8-byte pointers sharing high bits; BDI b8dX
  kFloatArray,  ///< doubles: shared exponent/sign, `delta` random low bytes
  kFpcMixed,    ///< zero/small/raw 4-byte word mixture; FPC variable packing
  kRandom,      ///< incompressible
};

[[nodiscard]] std::string_view to_string(ValueClass c);

/// Parameters of one value class instance within an application.
struct ValueClassSpec {
  ValueClass cls = ValueClass::kRandom;
  double weight = 1.0;      ///< fraction of the app's lines using this class
  // Class-specific "shape" knobs (see value_model.cpp for the per-class meaning).
  std::uint8_t param_lo = 1;  ///< inclusive lower bound of the shape parameter
  std::uint8_t param_hi = 1;  ///< inclusive upper bound (redraws resample in range)
  std::uint8_t aux = 0;       ///< secondary knob (e.g. small words in kFpcMixed)
  // Rewrite dynamics.
  std::uint8_t mutate_min = 1;  ///< min 4-byte words mutated per rewrite
  std::uint8_t mutate_max = 4;  ///< max 4-byte words mutated per rewrite
  /// kFpcMixed only: probability (in 1/256ths) that a mutation changes the
  /// word's FPC pattern class, shifting the packed stream (size churn).
  std::uint8_t toggle_prob_256 = 16;
};

/// Deterministically generates the value of a line at a given version.
///
/// `shape` is redrawn by the trace generator to model phase changes; the
/// shape parameter (drawn in [param_lo, param_hi]) controls compressed size,
/// so redraws are what make consecutive writes change size (Fig 6).
[[nodiscard]] Block generate_value(const ValueClassSpec& spec, std::uint64_t line,
                                   std::uint32_t shape, std::uint32_t version);

// ---- Incremental generation (trace/SampledTraceSource fast path) -----------
//
// generate_value decomposes into a *static base* (a pure function of
// (line, shape) — the expensive part, up to ~16 hashed word writes) plus a
// *dynamic* overlay (the version's mutations, and kZeroPage's moving value
// cluster — a handful of word writes). A caller that caches the static base
// per line can advance a value one version by reverting the previous
// version's dynamic words to the base and applying the new version's overlay,
// skipping the base resynthesis entirely. The composition is bit-identical:
//   generate_value(spec, line, shape, v)
//     == static base, then apply_dynamic(v) on top.

/// Derived per-(line, shape) generation inputs, computable once per shape
/// redraw and reusable across versions.
struct ValueGenContext {
  std::uint64_t seed0 = 0;  ///< content hash seed for (line, shape, class)
  std::uint8_t param = 1;   ///< shape parameter drawn in [param_lo, param_hi]
};

/// Computes (and validates) the generation context of (line, shape).
[[nodiscard]] ValueGenContext make_gen_context(const ValueClassSpec& spec, std::uint64_t line,
                                               std::uint32_t shape);

/// Writes the version-independent content of (line, shape) into `b`, which
/// must be all-zero on entry.
void generate_static_base(const ValueClassSpec& spec, const ValueGenContext& ctx, Block& b);

/// Applies the version-dependent content (kZeroPage value cluster at every
/// version; per-version word mutations for version >= 1) on top of the static
/// base. Precondition: every word previously written by apply_dynamic has
/// been reverted to the static base. Returns a bitmask (bit i = 4-byte word
/// i) of the words written, so incremental callers can revert them later.
[[nodiscard]] std::uint16_t apply_dynamic(const ValueClassSpec& spec, const ValueGenContext& ctx,
                                          std::uint64_t line, std::uint32_t shape,
                                          std::uint32_t version, Block& b);

}  // namespace pcmsim
