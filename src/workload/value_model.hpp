// Synthetic 64-byte value generation calibrated to SPEC CPU2006 behaviour.
//
// The paper's mechanisms observe exactly three properties of write-back data:
//   1. its compressed size under best-of-BDI/FPC (Table III / Fig 3),
//   2. how that size fluctuates across rewrites of a block (Fig 6/7), and
//   3. how many bits change between consecutive values (DW flips, Fig 1/5).
// Each value class below targets a compressibility family observed in SPEC
// memory dumps: BDI-friendly narrow values (fixed-position deltas — rewrites
// barely move the compressed image), FPC-friendly pattern mixes (variable-
// length packing — rewrites shift downstream bits), and incompressible data.
//
// Generation is a pure function of (line, shape_seed, version), so the trace
// is reproducible and per-line state is two integers.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.hpp"

namespace pcmsim {

enum class ValueClass : std::uint8_t {
  kZeroPage,    ///< almost-zero lines (BSS, freshly-zeroed heap)
  kSmallInt,    ///< 4-byte counters/flags; FPC sign-extended patterns
  kNarrowInt64, ///< 8-byte values near a shared base; BDI b8dX
  kNarrowInt32, ///< 4-byte values near a shared base; BDI b4dX
  kPointerHeap, ///< 8-byte pointers sharing high bits; BDI b8dX
  kFloatArray,  ///< doubles: shared exponent/sign, `delta` random low bytes
  kFpcMixed,    ///< zero/small/raw 4-byte word mixture; FPC variable packing
  kRandom,      ///< incompressible
};

[[nodiscard]] std::string_view to_string(ValueClass c);

/// Parameters of one value class instance within an application.
struct ValueClassSpec {
  ValueClass cls = ValueClass::kRandom;
  double weight = 1.0;      ///< fraction of the app's lines using this class
  // Class-specific "shape" knobs (see value_model.cpp for the per-class meaning).
  std::uint8_t param_lo = 1;  ///< inclusive lower bound of the shape parameter
  std::uint8_t param_hi = 1;  ///< inclusive upper bound (redraws resample in range)
  std::uint8_t aux = 0;       ///< secondary knob (e.g. small words in kFpcMixed)
  // Rewrite dynamics.
  std::uint8_t mutate_min = 1;  ///< min 4-byte words mutated per rewrite
  std::uint8_t mutate_max = 4;  ///< max 4-byte words mutated per rewrite
  /// kFpcMixed only: probability (in 1/256ths) that a mutation changes the
  /// word's FPC pattern class, shifting the packed stream (size churn).
  std::uint8_t toggle_prob_256 = 16;
};

/// Deterministically generates the value of a line at a given version.
///
/// `shape` is redrawn by the trace generator to model phase changes; the
/// shape parameter (drawn in [param_lo, param_hi]) controls compressed size,
/// so redraws are what make consecutive writes change size (Fig 6).
[[nodiscard]] Block generate_value(const ValueClassSpec& spec, std::uint64_t line,
                                   std::uint32_t shape, std::uint32_t version);

}  // namespace pcmsim
