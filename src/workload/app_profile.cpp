#include "workload/app_profile.hpp"

#include <stdexcept>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace pcmsim {

std::string_view to_string(Compressibility c) {
  switch (c) {
    case Compressibility::kHigh: return "H";
    case Compressibility::kMedium: return "M";
    case Compressibility::kLow: return "L";
  }
  return "?";
}

namespace {

using VC = ValueClass;

/// Shorthand: {class, weight, param_lo, param_hi, aux, mutate_min, mutate_max}.
ValueClassSpec spec(VC cls, double weight, std::uint8_t plo, std::uint8_t phi,
                    std::uint8_t aux = 0, std::uint8_t mmin = 1, std::uint8_t mmax = 4,
                    std::uint8_t toggle = 16) {
  ValueClassSpec s;
  s.cls = cls;
  s.weight = weight;
  s.param_lo = plo;
  s.param_hi = phi;
  s.aux = aux;
  s.mutate_min = mmin;
  s.mutate_max = mmax;
  s.toggle_prob_256 = toggle;
  return s;
}

std::vector<AppProfile> make_profiles() {
  std::vector<AppProfile> apps;

  // Reference compressed sizes (best of BDI/FPC, bytes) used while choosing
  // class mixtures — see tests/workload_calibration_test.cpp for the measured
  // values per app:
  //   zero-page p<=2 ~2-4 | small-int p1 14, p2 22, p4 38 | n64 d1 17, d2 25,
  //   d4 41 | n32 d1 22, d2 38 | float p4 41, p5+ 64 | fpc-mixed(z,s) ~
  //   ceil((6z + 11s + 35(16-z-s))/8) | random 64.

  {  // GemsFDTD — low compressibility FDTD solver: FP grids + raw buffers.
    AppProfile a;
    a.name = "GemsFDTD";
    a.wpki = 4.15;
    a.table_cr = 0.70;
    a.bucket = Compressibility::kLow;
    a.working_set_lines = 1 << 20;
    a.zipf_theta = 0.45;
    a.shape_redraw_prob = 0.08;
    a.classes = {spec(VC::kFpcMixed, 0.55, 6, 8, 3, 2, 6, 40), spec(VC::kFloatArray, 0.25, 4, 5),
                 spec(VC::kRandom, 0.20, 1, 1, 0, 2, 6)};
    a.mem_access_per_inst = 0.42;
    a.store_fraction = 0.36;
    apps.push_back(a);
  }
  {  // lbm — streaming lattice-Boltzmann: large FP lines, mostly FPC-shaped.
    AppProfile a;
    a.name = "lbm";
    a.wpki = 15.6;
    a.table_cr = 0.79;
    a.bucket = Compressibility::kLow;
    a.working_set_lines = 1 << 21;
    a.zipf_theta = 0.25;
    a.shape_redraw_prob = 0.10;
    a.classes = {spec(VC::kFpcMixed, 0.80, 3, 5, 2, 3, 8, 48), spec(VC::kRandom, 0.20, 1, 1, 0, 3, 8)};
    a.mem_access_per_inst = 0.48;
    a.store_fraction = 0.42;
    apps.push_back(a);
  }
  {  // bzip2 — compression tool: buffers whose content class changes per phase
     // (the paper singles out its compressed-size volatility, Fig 6/7).
    AppProfile a;
    a.name = "bzip2";
    a.wpki = 4.6;
    a.table_cr = 0.53;
    a.bucket = Compressibility::kMedium;
    a.working_set_lines = 1 << 18;
    a.zipf_theta = 0.7;
    a.shape_redraw_prob = 0.25;
    a.classes = {spec(VC::kFpcMixed, 0.70, 4, 14, 2, 2, 6, 112), spec(VC::kRandom, 0.15, 1, 1),
                 spec(VC::kZeroPage, 0.15, 1, 3)};
    a.mem_access_per_inst = 0.36;
    a.store_fraction = 0.34;
    apps.push_back(a);
  }
  {  // leslie3d — FP stencil whose lines stay BDI-compressible (fixed-position
     // deltas), hence "untouched" bit flips despite low CR (Fig 5).
    AppProfile a;
    a.name = "leslie3d";
    a.wpki = 8.32;
    a.table_cr = 0.70;
    a.bucket = Compressibility::kLow;
    a.working_set_lines = 1 << 20;
    a.zipf_theta = 0.35;
    a.shape_redraw_prob = 0.03;
    a.classes = {spec(VC::kFloatArray, 0.75, 4, 4, 0, 2, 5), spec(VC::kFloatArray, 0.25, 5, 6)};
    a.mem_access_per_inst = 0.44;
    a.store_fraction = 0.38;
    apps.push_back(a);
  }
  {  // hmmer — HMM scoring tables: stable 16-bit-delta arrays (low volatility,
     // the paper's counter-example to bzip2 in Fig 7).
    AppProfile a;
    a.name = "hmmer";
    a.wpki = 1.9;
    a.table_cr = 0.59;
    a.bucket = Compressibility::kMedium;
    a.working_set_lines = 1 << 18;
    a.zipf_theta = 0.9;
    a.shape_redraw_prob = 0.02;
    a.classes = {spec(VC::kNarrowInt32, 0.80, 2, 2, 0, 2, 6), spec(VC::kSmallInt, 0.20, 4, 4)};
    a.mem_access_per_inst = 0.40;
    a.store_fraction = 0.30;
    apps.push_back(a);
  }
  {  // mcf — pointer-chasing MST solver: node structs (pointers + flags).
    AppProfile a;
    a.name = "mcf";
    a.wpki = 10.35;
    a.table_cr = 0.55;
    a.bucket = Compressibility::kMedium;
    a.working_set_lines = 1 << 21;
    a.zipf_theta = 0.6;
    a.shape_redraw_prob = 0.12;
    a.classes = {spec(VC::kPointerHeap, 0.50, 2, 2, 0, 1, 4), spec(VC::kSmallInt, 0.20, 1, 1),
                 spec(VC::kRandom, 0.30, 1, 1)};
    a.mem_access_per_inst = 0.46;
    a.store_fraction = 0.28;
    apps.push_back(a);
  }
  {  // gobmk — Go engine: heterogeneous board structs; wide flip spread (Fig 1).
    AppProfile a;
    a.name = "gobmk";
    a.wpki = 1.14;
    a.table_cr = 0.39;
    a.bucket = Compressibility::kMedium;
    a.working_set_lines = 1 << 18;
    a.zipf_theta = 0.85;
    a.shape_redraw_prob = 0.10;
    a.classes = {spec(VC::kSmallInt, 0.40, 2, 2, 0, 1, 12), spec(VC::kPointerHeap, 0.30, 2, 2, 0, 1, 10),
                 spec(VC::kFpcMixed, 0.30, 6, 8, 4, 1, 12)};
    a.mem_access_per_inst = 0.33;
    a.store_fraction = 0.32;
    apps.push_back(a);
  }
  {  // bwaves — blast-wave CFD: narrow FP deltas.
    AppProfile a;
    a.name = "bwaves";
    a.wpki = 9.78;
    a.table_cr = 0.34;
    a.bucket = Compressibility::kMedium;
    a.working_set_lines = 1 << 21;
    a.zipf_theta = 0.3;
    a.shape_redraw_prob = 0.05;
    a.classes = {spec(VC::kNarrowInt64, 0.70, 1, 2, 0, 2, 6), spec(VC::kFpcMixed, 0.30, 8, 10, 4)};
    a.mem_access_per_inst = 0.45;
    a.store_fraction = 0.40;
    apps.push_back(a);
  }
  {  // astar — path-finding: pointer-rich nodes plus small scalars.
    AppProfile a;
    a.name = "astar";
    a.wpki = 1.04;
    a.table_cr = 0.53;
    a.bucket = Compressibility::kMedium;
    a.working_set_lines = 1 << 18;
    a.zipf_theta = 0.75;
    a.shape_redraw_prob = 0.15;
    a.classes = {spec(VC::kPointerHeap, 0.50, 2, 4), spec(VC::kFpcMixed, 0.30, 4, 4, 2),
                 spec(VC::kSmallInt, 0.20, 2, 2)};
    a.mem_access_per_inst = 0.38;
    a.store_fraction = 0.30;
    apps.push_back(a);
  }
  {  // calculix — FEM: 32-bit index arrays and modest-delta FP.
    AppProfile a;
    a.name = "calculix";
    a.wpki = 1.08;
    a.table_cr = 0.37;
    a.bucket = Compressibility::kMedium;
    a.working_set_lines = 1 << 17;
    a.zipf_theta = 0.7;
    a.shape_redraw_prob = 0.06;
    a.classes = {spec(VC::kNarrowInt32, 0.60, 1, 1, 0, 2, 5), spec(VC::kNarrowInt64, 0.20, 2, 2),
                 spec(VC::kFpcMixed, 0.20, 6, 8, 4)};
    a.mem_access_per_inst = 0.40;
    a.store_fraction = 0.33;
    apps.push_back(a);
  }
  {  // sjeng — chess engine: hash tables dominated by zero/flag words.
    AppProfile a;
    a.name = "sjeng";
    a.wpki = 4.38;
    a.table_cr = 0.08;
    a.bucket = Compressibility::kHigh;
    a.working_set_lines = 1 << 19;
    a.zipf_theta = 0.55;
    a.shape_redraw_prob = 0.05;
    a.classes = {spec(VC::kZeroPage, 0.85, 2, 4, 0, 1, 3), spec(VC::kSmallInt, 0.15, 1, 1)};
    a.mem_access_per_inst = 0.34;
    a.store_fraction = 0.36;
    apps.push_back(a);
  }
  {  // gcc — compiler: the paper's example of uniformly spread compressed
     // sizes (Fig 11a) and high size volatility (Fig 6).
    AppProfile a;
    a.name = "gcc";
    a.wpki = 8.05;
    a.table_cr = 0.50;
    a.bucket = Compressibility::kMedium;
    a.working_set_lines = 1 << 19;
    a.zipf_theta = 0.65;
    a.shape_redraw_prob = 0.15;
    a.classes = {spec(VC::kNarrowInt64, 0.35, 1, 3), spec(VC::kFpcMixed, 0.35, 6, 12, 2, 1, 4, 72),
                 spec(VC::kSmallInt, 0.20, 1, 2), spec(VC::kRandom, 0.10, 1, 1)};
    a.mem_access_per_inst = 0.39;
    a.store_fraction = 0.35;
    apps.push_back(a);
  }
  {  // zeusmp — astrophysics CFD with mostly-zero state regions.
    AppProfile a;
    a.name = "zeusmp";
    a.wpki = 5.46;
    a.table_cr = 0.05;
    a.bucket = Compressibility::kHigh;
    a.working_set_lines = 1 << 20;
    a.zipf_theta = 0.4;
    a.shape_redraw_prob = 0.04;
    a.classes = {spec(VC::kZeroPage, 0.90, 1, 2, 0, 1, 3), spec(VC::kSmallInt, 0.10, 1, 1)};
    a.mem_access_per_inst = 0.43;
    a.store_fraction = 0.39;
    apps.push_back(a);
  }
  {  // milc — QCD: bimodal — mostly tiny SU(3) scalars plus a band of wide FP
     // lines (the 80%/20% split of Fig 11b).
    AppProfile a;
    a.name = "milc";
    a.wpki = 3.4;
    a.table_cr = 0.29;
    a.bucket = Compressibility::kHigh;
    a.working_set_lines = 1 << 20;
    a.zipf_theta = 0.5;
    a.shape_redraw_prob = 0.04;
    a.classes = {spec(VC::kSmallInt, 0.50, 1, 1, 0, 2, 5), spec(VC::kNarrowInt64, 0.30, 1, 1),
                 spec(VC::kFloatArray, 0.20, 4, 5)};
    a.mem_access_per_inst = 0.41;
    a.store_fraction = 0.37;
    apps.push_back(a);
  }
  {  // cactusADM — numerical relativity: overwhelmingly zero-dominated lines.
    AppProfile a;
    a.name = "cactusADM";
    a.wpki = 8.09;
    a.table_cr = 0.03;
    a.bucket = Compressibility::kHigh;
    a.working_set_lines = 1 << 20;
    a.zipf_theta = 0.35;
    a.shape_redraw_prob = 0.03;
    a.classes = {spec(VC::kZeroPage, 0.96, 0, 1, 0, 1, 2), spec(VC::kSmallInt, 0.04, 1, 1)};
    a.mem_access_per_inst = 0.44;
    a.store_fraction = 0.41;
    apps.push_back(a);
  }

  return apps;
}

}  // namespace

ClassAssigner::ClassAssigner(const AppProfile& app, std::uint64_t seed)
    : app_(&app), seed_(seed) {
  expects(!app.classes.empty(), "app profile has no value classes");
  double total = 0.0;
  for (const auto& c : app.classes) total += c.weight;
  expects(total > 0.0, "class weights must be positive");
  double acc = 0.0;
  for (const auto& c : app.classes) {
    acc += c.weight / total;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;
}

const ValueClassSpec& ClassAssigner::of(LineAddr line) const {
  const double u = static_cast<double>(mix64(line ^ 0xC1A55ull ^ seed_) >> 11) * 0x1.0p-53;
  for (std::size_t i = 0; i < cdf_.size(); ++i) {
    if (u <= cdf_[i]) return app_->classes[i];
  }
  return app_->classes.back();
}

const std::vector<AppProfile>& spec2006_profiles() {
  static const std::vector<AppProfile> profiles = make_profiles();
  return profiles;
}

const AppProfile& profile_by_name(std::string_view name) {
  for (const auto& p : spec2006_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown workload: " + std::string(name));
}

}  // namespace pcmsim
