#include "workload/trace.hpp"

#include "common/assert.hpp"
#include "common/profiler.hpp"

namespace pcmsim {

namespace {
constexpr std::uint64_t kTraceMagic = 0x50434d5452414345ull;  // "PCMTRACE"
}

TraceGenerator::TraceGenerator(const AppProfile& app, std::uint64_t region_lines,
                               std::uint64_t seed)
    : app_(app),
      region_lines_(region_lines),
      seed_(seed),
      rng_(mix64(seed ^ 0x7ac3ull)),
      zipf_(app.working_set_lines, app.zipf_theta),
      classes_(app_, seed) {
  expects(region_lines > 0, "region must be non-empty");
}

LineAddr TraceGenerator::fold(std::uint64_t rank) const {
  // Stable pseudo-random rank->line map; decouples Zipf popularity rank from
  // spatial position and from the hash that assigns value classes.
  return mix64(rank ^ (seed_ * 0x2545F4914F6CDD1Dull)) % region_lines_;
}

const ValueClassSpec& TraceGenerator::class_of(LineAddr line) const {
  return classes_.of(line);
}

WritebackEvent TraceGenerator::next() {
  const prof::ScopedStage stage(prof::Stage::kTraceGen);
  const std::uint64_t rank = zipf_.sample(rng_);
  const LineAddr line = fold(rank);
  auto [it, fresh] = states_.try_emplace(line);
  auto& st = it->second;
  if (fresh) {
    st.shape = static_cast<std::uint32_t>(mix64(line ^ seed_ ^ 0xBEEFull));
    st.version = 0;
  } else {
    ++st.version;
    if (rng_.next_bool(app_.shape_redraw_prob)) {
      st.shape = static_cast<std::uint32_t>(rng_());
      st.version = 0;
    }
  }
  ++events_;
  return WritebackEvent{line, generate_value(class_of(line), line, st.shape, st.version)};
}

Block TraceGenerator::current_value(LineAddr line) const {
  const auto it = states_.find(line);
  if (it == states_.end()) return zero_block();
  return generate_value(class_of(line), line, it->second.shape, it->second.version);
}

TraceWriter::TraceWriter(const std::string& path) : out_(path, std::ios::binary) {
  expects(out_.good(), "cannot open trace file for writing");
  const std::uint64_t zero = 0;
  out_.write(reinterpret_cast<const char*>(&kTraceMagic), 8);
  out_.write(reinterpret_cast<const char*>(&zero), 8);  // patched in close()
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; close() explicitly to observe failures.
  }
}

void TraceWriter::append(const WritebackEvent& ev) {
  expects(!closed_, "trace writer already closed");
  out_.write(reinterpret_cast<const char*>(&ev.line), 8);
  out_.write(reinterpret_cast<const char*>(ev.data.data()),
             static_cast<std::streamsize>(ev.data.size()));
  ++count_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  out_.seekp(8);
  out_.write(reinterpret_cast<const char*>(&count_), 8);
  out_.close();
  ensures(out_.good(), "trace file close failed");
}

TraceReader::TraceReader(const std::string& path) : in_(path, std::ios::binary) {
  expects(in_.good(), "cannot open trace file for reading");
  std::uint64_t magic = 0;
  in_.read(reinterpret_cast<char*>(&magic), 8);
  expects(magic == kTraceMagic, "not a pcmsim trace file");
  in_.read(reinterpret_cast<char*>(&count_), 8);
}

std::optional<WritebackEvent> TraceReader::next() {
  if (read_ >= count_) return std::nullopt;
  WritebackEvent ev;
  in_.read(reinterpret_cast<char*>(&ev.line), 8);
  in_.read(reinterpret_cast<char*>(ev.data.data()),
           static_cast<std::streamsize>(ev.data.size()));
  expects(in_.good(), "trace file truncated");
  ++read_;
  return ev;
}

}  // namespace pcmsim
