#include "workload/trace.hpp"

#include "common/assert.hpp"
#include "common/profiler.hpp"

namespace pcmsim {

namespace {
/// v1 record: 8-byte line address + 64 payload bytes, packed.
constexpr std::uint64_t kV1RecordBytes = 8 + kBlockBytes;
constexpr std::uint64_t kV1HeaderBytes = 16;
}

TraceGenerator::TraceGenerator(const AppProfile& app, std::uint64_t region_lines,
                               std::uint64_t seed)
    : app_(app),
      region_lines_(region_lines),
      seed_(seed),
      rng_(mix64(seed ^ 0x7ac3ull)),
      zipf_(app.working_set_lines, app.zipf_theta),
      classes_(app_, seed) {
  expects(region_lines > 0, "region must be non-empty");
}

LineAddr TraceGenerator::fold(std::uint64_t rank) const {
  return fold_rank(rank, seed_, region_lines_);
}

const ValueClassSpec& TraceGenerator::class_of(LineAddr line) const {
  return classes_.of(line);
}

WritebackEvent TraceGenerator::next() {
  const prof::ScopedStage stage(prof::Stage::kTraceGen);
  const std::uint64_t rank = zipf_.sample(rng_);
  const LineAddr line = fold(rank);
  auto [it, fresh] = states_.try_emplace(line);
  auto& st = it->second;
  if (fresh) {
    st.shape = initial_line_shape(line, seed_);
    st.version = 0;
  } else {
    ++st.version;
    if (rng_.next_bool(app_.shape_redraw_prob)) {
      st.shape = static_cast<std::uint32_t>(rng_());
      st.version = 0;
      ++shape_redraws_;
    }
  }
  ++events_;
  return WritebackEvent{line, generate_value(class_of(line), line, st.shape, st.version)};
}

Block TraceGenerator::current_value(LineAddr line) const {
  const auto it = states_.find(line);
  if (it == states_.end()) return zero_block();
  return generate_value(class_of(line), line, it->second.shape, it->second.version);
}

TraceWriter::TraceWriter(const std::string& path) : out_(path, std::ios::binary) {
  expects(out_.good(), "cannot open trace file for writing");
  const std::uint64_t zero = 0;
  out_.write(reinterpret_cast<const char*>(&kTraceV1Magic), 8);
  out_.write(reinterpret_cast<const char*>(&zero), 8);  // patched in close()
}

TraceWriter::~TraceWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; close() explicitly to observe failures.
  }
}

void TraceWriter::append(const WritebackEvent& ev) {
  expects(!closed_, "trace writer already closed");
  out_.write(reinterpret_cast<const char*>(&ev.line), 8);
  out_.write(reinterpret_cast<const char*>(ev.data.data()),
             static_cast<std::streamsize>(ev.data.size()));
  // A full stream buffer flushes inside write(); surface disk-full/IO errors
  // here instead of silently "succeeding" and producing a short file.
  expects(out_.good(), "trace file write failed (disk full or I/O error)");
  ++count_;
}

void TraceWriter::close() {
  if (closed_) return;
  closed_ = true;
  expects(out_.good(), "trace file stream failed before close");
  out_.seekp(8);
  out_.write(reinterpret_cast<const char*>(&count_), 8);
  out_.close();
  ensures(out_.good(), "trace file close failed");
}

TraceReader::TraceReader(const std::string& path) : in_(path, std::ios::binary) {
  expects(in_.good(), "cannot open trace file for reading");
  in_.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0);
  expects(file_bytes >= kV1HeaderBytes, "trace file truncated (no v1 header)");
  std::uint64_t magic = 0;
  in_.read(reinterpret_cast<char*>(&magic), 8);
  expects(magic == kTraceV1Magic, "not a pcmsim v1 trace file");
  in_.read(reinterpret_cast<char*>(&count_), 8);
  expects(in_.good(), "trace file truncated (short v1 header)");
  // The header's declared record count must match the bytes actually present;
  // a mismatch means the file was truncated (or its count corrupted), and
  // must not read as a silently-shorter trace.
  expects(file_bytes == kV1HeaderBytes + count_ * kV1RecordBytes,
          "v1 trace length does not match declared record count");
}

std::optional<WritebackEvent> TraceReader::next() {
  if (read_ >= count_) return std::nullopt;
  WritebackEvent ev;
  in_.read(reinterpret_cast<char*>(&ev.line), 8);
  in_.read(reinterpret_cast<char*>(ev.data.data()),
           static_cast<std::streamsize>(ev.data.size()));
  expects(in_.good(), "trace file truncated");
  ++read_;
  return ev;
}

}  // namespace pcmsim
