// SPEC CPU2006 application models (paper Table III).
//
// Each profile captures, per application: write-back intensity (WPKI), the
// target compression ratio (CR) from Table III, write-address locality, value
// composition (a weighted mixture of value classes), and rewrite volatility.
// The numeric knobs were calibrated so that measured best-of-BDI/FPC sizes
// reproduce Table III / Figure 3 and size-change probabilities reproduce the
// Figure 6 app ranking (see bench/fig03_compressed_size and tests).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "workload/value_model.hpp"

namespace pcmsim {

/// Paper's compressibility buckets (Table III): CR < 0.3 high, > 0.7 low.
enum class Compressibility : std::uint8_t { kHigh, kMedium, kLow };

[[nodiscard]] std::string_view to_string(Compressibility c);

struct AppProfile {
  std::string name;
  double wpki = 1.0;       ///< L2 write-backs per kilo-instruction (Table III)
  double table_cr = 0.5;   ///< Table III compression ratio (calibration target)
  Compressibility bucket = Compressibility::kMedium;

  // Write-address behaviour.
  std::uint64_t working_set_lines = std::uint64_t{1} << 18;
  double zipf_theta = 0.8;  ///< skew of write popularity across the working set

  // Value behaviour.
  std::vector<ValueClassSpec> classes;  ///< weighted mixture over lines
  double shape_redraw_prob = 0.05;      ///< P(shape change) per rewrite (Fig 6 knob)

  // Core-side behaviour, used by the cache front-end (src/cache) to recover
  // Table III WPKI through a real L1/L2 hierarchy.
  double mem_access_per_inst = 0.35;  ///< loads+stores per instruction
  double store_fraction = 0.35;       ///< stores / (loads + stores)
};

/// Deterministically assigns each line address to one of an app's value
/// classes, weighted by ValueClassSpec::weight.
class ClassAssigner {
 public:
  ClassAssigner(const AppProfile& app, std::uint64_t seed);

  /// The class governing `line`'s contents. Stable across calls.
  [[nodiscard]] const ValueClassSpec& of(LineAddr line) const;

 private:
  const AppProfile* app_;
  std::uint64_t seed_;
  std::vector<double> cdf_;
};

/// All 15 evaluated workloads, in the paper's Figure 3 order.
[[nodiscard]] const std::vector<AppProfile>& spec2006_profiles();

/// Lookup by name; throws std::out_of_range for unknown workloads.
[[nodiscard]] const AppProfile& profile_by_name(std::string_view name);

}  // namespace pcmsim
