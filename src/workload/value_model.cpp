#include "workload/value_model.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace pcmsim {

namespace {

constexpr std::size_t kWords32 = kBlockBytes / 4;  // 16 four-byte slots
constexpr std::size_t kWords64 = kBlockBytes / 8;  // 8 eight-byte slots

std::uint64_t h(std::uint64_t a, std::uint64_t b, std::uint64_t c = 0, std::uint64_t d = 0) {
  return mix64(a * 0x9e3779b97f4a7c15ull ^ mix64(b + 0x6a09e667f3bcc909ull) ^
               mix64(c + 0xbb67ae8584caa73bull) ^ (d << 1));
}

void put32(Block& b, std::size_t slot, std::uint32_t v) {
  std::memcpy(b.data() + slot * 4, &v, 4);
}

void put64(Block& b, std::size_t slot, std::uint64_t v) {
  std::memcpy(b.data() + slot * 8, &v, 8);
}

/// Shape parameter drawn uniformly from [param_lo, param_hi] for this shape.
std::uint8_t draw_param(const ValueClassSpec& spec, std::uint64_t seed0) {
  if (spec.param_hi <= spec.param_lo) return spec.param_lo;
  const auto span = static_cast<std::uint64_t>(spec.param_hi - spec.param_lo + 1);
  return static_cast<std::uint8_t>(spec.param_lo + (h(seed0, 0x9a9a) % span));
}

}  // namespace

std::string_view to_string(ValueClass c) {
  switch (c) {
    case ValueClass::kZeroPage: return "zero-page";
    case ValueClass::kSmallInt: return "small-int";
    case ValueClass::kNarrowInt64: return "narrow-i64";
    case ValueClass::kNarrowInt32: return "narrow-i32";
    case ValueClass::kPointerHeap: return "pointer";
    case ValueClass::kFloatArray: return "float-array";
    case ValueClass::kFpcMixed: return "fpc-mixed";
    case ValueClass::kRandom: return "random";
  }
  return "?";
}

ValueGenContext make_gen_context(const ValueClassSpec& spec, std::uint64_t line,
                                 std::uint32_t shape) {
  ValueGenContext ctx;
  ctx.seed0 = h(line, shape, static_cast<std::uint64_t>(spec.cls));
  ctx.param = draw_param(spec, ctx.seed0);
  switch (spec.cls) {
    case ValueClass::kSmallInt:
      expects(ctx.param >= 1 && ctx.param <= 4, "kSmallInt param must be 1..4 nibbles");
      break;
    case ValueClass::kNarrowInt64:
    case ValueClass::kPointerHeap:
    case ValueClass::kFloatArray:
      expects(ctx.param >= 1 && ctx.param <= 7, "64-bit class param must be 1..7 bytes");
      break;
    case ValueClass::kNarrowInt32:
      expects(ctx.param >= 1 && ctx.param <= 3, "kNarrowInt32 param must be 1..3 bytes");
      break;
    case ValueClass::kFpcMixed:
      expects(ctx.param <= 16 && spec.aux <= 16, "kFpcMixed composition exceeds 16 words");
      break;
    default:
      break;
  }
  return ctx;
}

void generate_static_base(const ValueClassSpec& spec, const ValueGenContext& ctx, Block& b) {
  const std::uint64_t seed0 = ctx.seed0;
  const std::uint8_t param = ctx.param;
  switch (spec.cls) {
    case ValueClass::kZeroPage: {
      // `param` non-zero small words at hashed positions; rest zero. Values
      // are signed small integers: in two's complement a sign change flips
      // ~29 raw bits but only ~2 bits of the sign-extended FPC token — the
      // redundancy that makes compression cut flips on this data. (The moving
      // value cluster is version-dependent and lives in apply_dynamic.)
      for (std::uint8_t i = 0; i < param; ++i) {
        const std::size_t slot = h(seed0, 0x11, i) % kWords32;
        const auto m = static_cast<std::int32_t>(h(seed0, 0x12, i) % 15 + 1);
        put32(b, slot, static_cast<std::uint32_t>((h(seed0, 0x13, i) & 1) ? -m : m));
      }
      break;
    }
    case ValueClass::kSmallInt: {
      // Every word is a small signed value of `param` nibbles of magnitude
      // (param=1 -> FPC sign4, param=2 -> sign8, param=4 -> sign16).
      const unsigned bits = static_cast<unsigned>(param) * 4;
      for (std::size_t i = 0; i < kWords32; ++i) {
        const auto magnitude = static_cast<std::uint32_t>(h(seed0, 0x21, i) & ((1u << (bits - 1)) - 1));
        const bool neg = h(seed0, 0x22, i) & 1u;
        put32(b, i, neg ? ~magnitude : magnitude);
      }
      break;
    }
    case ValueClass::kNarrowInt64:
    case ValueClass::kPointerHeap: {
      // 8 eight-byte values sharing the top bytes; `param` low bytes vary.
      // Pointer bases confine to the canonical 48-bit user region.
      std::uint64_t base = h(seed0, 0x31);
      if (spec.cls == ValueClass::kPointerHeap) base &= 0x0000'7FFF'FFFF'F000ull;
      const unsigned low_bits = static_cast<unsigned>(param) * 8 - 1;  // fits signed delta
      base &= ~((1ull << (low_bits + 1)) - 1);
      for (std::size_t i = 0; i < kWords64; ++i) {
        put64(b, i, base | (h(seed0, 0x32, i) & ((1ull << low_bits) - 1)));
      }
      break;
    }
    case ValueClass::kNarrowInt32: {
      std::uint64_t base = h(seed0, 0x41) & 0xFFFFFFFFull;
      const unsigned low_bits = static_cast<unsigned>(param) * 8 - 1;
      base &= ~((1ull << (low_bits + 1)) - 1);
      for (std::size_t i = 0; i < kWords32; ++i) {
        put32(b, i, static_cast<std::uint32_t>(base | (h(seed0, 0x42, i) & ((1ull << low_bits) - 1))));
      }
      break;
    }
    case ValueClass::kFloatArray: {
      // 8 doubles sharing sign/exponent/top mantissa; `param` low bytes are
      // noise (param <= 4 keeps the line BDI-b8d compressible; 5+ does not).
      const std::uint64_t top = h(seed0, 0x51) | 0x3FF0'0000'0000'0000ull;
      const unsigned low_bits = static_cast<unsigned>(param) * 8 - 1;
      const std::uint64_t base = top & ~((1ull << (low_bits + 1)) - 1);
      for (std::size_t i = 0; i < kWords64; ++i) {
        put64(b, i, base | (h(seed0, 0x52, i) & ((1ull << low_bits) - 1)));
      }
      break;
    }
    case ValueClass::kFpcMixed: {
      // `param` zero words and `aux` small words at hashed positions; the
      // rest are raw (incompressible) words. FPC packs this mixture into a
      // variable-length stream, so value changes shift downstream bits.
      bool zero_slot[kWords32] = {};
      bool small_slot[kWords32] = {};
      for (std::uint8_t i = 0; i < param; ++i) zero_slot[h(seed0, 0x61, i) % kWords32] = true;
      std::uint8_t placed = 0;
      for (std::uint8_t t = 0; placed < spec.aux && t < 64; ++t) {
        const std::size_t slot = h(seed0, 0x62, t) % kWords32;
        if (!zero_slot[slot] && !small_slot[slot]) {
          small_slot[slot] = true;
          ++placed;
        }
      }
      for (std::size_t i = 0; i < kWords32; ++i) {
        if (zero_slot[i]) continue;
        if (small_slot[i]) {
          put32(b, i, static_cast<std::uint32_t>(h(seed0, 0x63, i) % 100));
        } else {
          std::uint32_t raw = static_cast<std::uint32_t>(h(seed0, 0x64, i));
          if (raw < 0x10000u) raw |= 0x01000000u;  // keep raw words genuinely raw
          put32(b, i, raw);
        }
      }
      break;
    }
    case ValueClass::kRandom: {
      for (std::size_t i = 0; i < kWords32; ++i) {
        put32(b, i, static_cast<std::uint32_t>(h(seed0, 0x71, i)));
      }
      break;
    }
  }
}

std::uint16_t apply_dynamic(const ValueClassSpec& spec, const ValueGenContext& ctx,
                            std::uint64_t line, std::uint32_t shape, std::uint32_t version,
                            Block& b) {
  const std::uint64_t seed0 = ctx.seed0;
  const std::uint8_t param = ctx.param;
  std::uint16_t touched = 0;
  const auto mark32 = [&touched](std::size_t slot) {
    touched = static_cast<std::uint16_t>(touched | (1u << slot));
  };

  if (spec.cls == ValueClass::kZeroPage) {
    // A small cluster of sign16-range values "moves" across the block on
    // rewrites (sparse-structure updates): zeroing its old position collapses
    // into a zero-run token, which is how compression *reduces* flips on
    // zero-dominated data (Fig 5's "decreased" bars for high-CR apps).
    const std::size_t g = 1 + h(seed0, 0xA3) % 2;  // cluster size, fixed per shape
    // The cluster relocates every ~8 rewrites (values refresh every time),
    // so compressed sizes stay stable between moves (Fig 6's low values for
    // zero-dominated apps) while moves still exercise zero-run absorption.
    const std::size_t start = h(seed0, 0xA1, version / 8) % (kWords32 - g);
    for (std::size_t i = 0; i < g; ++i) {
      const auto m = static_cast<std::int32_t>(h(seed0, 0xA2, version, i) % 30000 + 1);
      put32(b, start + i,
            static_cast<std::uint32_t>((h(seed0, 0xA4, version, i) & 1) ? -m : m));
      mark32(start + i);
    }
  }

  if (version == 0) return touched;

  // ---- Rewrite dynamics -----------------------------------------------------
  // A version-dependent set of word slots is overwritten with fresh values of
  // the same magnitude class. Slots are drawn per version, so under DW the
  // flipped bits scatter randomly over the whole block across consecutive
  // writes — the behaviour the paper's Figure 1 documents for real SPEC data.
  // Size changes come from shape redraws in the trace generator, not from
  // mutations (values stay within their class's magnitude).
  const std::uint8_t span = static_cast<std::uint8_t>(
      spec.mutate_max >= spec.mutate_min ? spec.mutate_max - spec.mutate_min + 1 : 1);
  const std::uint8_t k =
      static_cast<std::uint8_t>(spec.mutate_min + h(line, shape, version) % span);

  for (std::uint8_t j = 0; j < k && j < kWords32; ++j) {
    const std::size_t slot = h(seed0, 0x5107 + j, version) % kWords32;
    const std::uint64_t hv = h(seed0, 0x80 + j, version);
    switch (spec.cls) {
      case ValueClass::kZeroPage: {
        // Rewrites update the values of the *existing* non-zero words; the
        // zero structure (and hence the compressed size) stays stable, as in
        // real zero-dominated data (zeusmp/cactusADM are low in Fig 6).
        if (param == 0) break;
        const std::size_t nz = h(seed0, 0x11, j % param) % kWords32;
        const auto m = static_cast<std::int32_t>(hv % 15 + 1);
        put32(b, nz, static_cast<std::uint32_t>((hv >> 40 & 1) ? -m : m));
        mark32(nz);
        break;
      }
      case ValueClass::kSmallInt: {
        const unsigned bits = static_cast<unsigned>(param) * 4;
        put32(b, slot, static_cast<std::uint32_t>(hv & ((1u << (bits - 1)) - 1)));
        mark32(slot);
        break;
      }
      case ValueClass::kNarrowInt64:
      case ValueClass::kPointerHeap:
      case ValueClass::kFloatArray: {
        // Float arrays keep their BDI base word stable: in stencil sweeps the
        // leading element co-varies with its neighbours, so deltas move by
        // small amounts rather than the whole image churning (leslie3d's
        // "untouched" bit-flip profile in Fig 5).
        const std::size_t w64 =
            spec.cls == ValueClass::kFloatArray ? 1 + (slot % (kWords64 - 1)) : slot / 2;
        std::uint64_t cur;
        std::memcpy(&cur, b.data() + w64 * 8, 8);
        const unsigned low_bits = static_cast<unsigned>(param) * 8 - 1;
        cur = (cur & ~((1ull << low_bits) - 1)) | (hv & ((1ull << low_bits) - 1));
        put64(b, w64, cur);
        mark32(w64 * 2);
        mark32(w64 * 2 + 1);
        break;
      }
      case ValueClass::kNarrowInt32: {
        std::uint32_t cur;
        std::memcpy(&cur, b.data() + slot * 4, 4);
        const unsigned low_bits = static_cast<unsigned>(param) * 8 - 1;
        cur = (cur & ~((1u << low_bits) - 1)) |
              static_cast<std::uint32_t>(hv & ((1ull << low_bits) - 1));
        put32(b, slot, cur);
        mark32(slot);
        break;
      }
      case ValueClass::kFpcMixed: {
        // Mostly mutate in kind (small stays small, raw stays raw), but one
        // in four mutations changes the word's FPC pattern class. A class
        // change alters the token length, so the packed stream shifts and
        // downstream bits churn — the mechanism behind bzip2/gcc's increased
        // flips despite decent compression ratios (Section III-A.1, Fig 5/6).
        std::uint32_t cur;
        std::memcpy(&cur, b.data() + slot * 4, 4);
        const bool toggle_class = ((hv >> 48) & 0xFF) < spec.toggle_prob_256;
        std::uint32_t raw = static_cast<std::uint32_t>(hv);
        if (raw < 0x10000u) raw |= 0x01000000u;
        if (toggle_class) {
          if (cur == 0 || cur < 100) {
            put32(b, slot, raw);  // small/zero -> raw
          } else {
            put32(b, slot, static_cast<std::uint32_t>(hv % 100));  // raw -> small
          }
          mark32(slot);
          break;
        }
        if (cur == 0) break;
        if (cur < 100) {
          put32(b, slot, static_cast<std::uint32_t>(hv % 100));
        } else {
          put32(b, slot, raw);
        }
        mark32(slot);
        break;
      }
      case ValueClass::kRandom:
        put32(b, slot, static_cast<std::uint32_t>(hv));
        mark32(slot);
        break;
    }
  }
  return touched;
}

Block generate_value(const ValueClassSpec& spec, std::uint64_t line, std::uint32_t shape,
                     std::uint32_t version) {
  const ValueGenContext ctx = make_gen_context(spec, line, shape);
  Block b{};
  generate_static_base(spec, ctx, b);
  (void)apply_dynamic(spec, ctx, line, shape, version, b);
  return b;
}

}  // namespace pcmsim
