#include "pcm/array.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/simd.hpp"

namespace pcmsim {

namespace {

/// Extracts 64 bits starting at absolute bit position `pos` from packed words.
/// Bits past `end` read as zero.
std::uint64_t extract64(const std::vector<std::uint64_t>& words, std::size_t pos) {
  const std::size_t w = pos / 64;
  const unsigned sh = static_cast<unsigned>(pos % 64);
  std::uint64_t v = words[w] >> sh;
  if (sh != 0 && w + 1 < words.size()) v |= words[w + 1] << (64 - sh);
  return v;
}

/// Loads up to 64 bits (LSB-first packed) from a byte buffer at bit offset `pos`.
std::uint64_t load_bits64(std::span<const std::uint8_t> data, std::size_t pos, unsigned n) {
  std::uint64_t v = 0;
  const std::size_t first_byte = pos / 8;
  const unsigned sh = static_cast<unsigned>(pos % 8);
  // Read enough bytes to cover n bits after the shift.
  const std::size_t need = (sh + n + 7) / 8;
  for (std::size_t i = 0; i < need && first_byte + i < data.size(); ++i) {
    v |= static_cast<std::uint64_t>(data[first_byte + i]) << (8 * i);
  }
  v >>= sh;
  if (n < 64) v &= (n == 0) ? 0 : ((~0ull) >> (64 - n));
  return v;
}

}  // namespace

PcmArray::PcmArray(const PcmDeviceConfig& config) : config_(config), rng_(config.seed) {
  expects(config.lines > 0, "PCM array needs at least one line");
  expects(config.endurance_mean > 0, "endurance mean must be positive");
  // uint16 endurance storage: with lognormal CoV <= 0.5 the +8 sigma tail of
  // a 1e4-mean distribution stays well below 65535; reject configs that risk
  // overflow instead of silently clamping hot cells.
  expects(config.endurance_mean * (1.0 + 8.0 * config.endurance_cov) <
              static_cast<double>(std::numeric_limits<std::uint16_t>::max()),
          "scaled endurance too large for uint16 storage; lower endurance_mean");

  const std::size_t cells = config.lines * kLineTotalBits;
  static_assert(kLineTotalBits % 64 == 0, "lines must pack whole 64-bit words");
  values_.assign(cells / 64, 0);
  stuck_.assign(cells / 64, 0);
  // 64 zeroed tail lanes beyond the last cell: the 64-lane masked-decrement
  // kernel loads and rewrites whole lane groups, so a write ending at the
  // array's final cell may touch (but never change) lanes past it. Sampling
  // stops at `cells` so the RNG stream is identical to the unpadded layout.
  endurance_.resize(cells + 64);
  for (std::size_t i = 0; i < cells; ++i) {
    const double sample = rng_.next_lognormal_mean_cov(config.endurance_mean,
                                                       config.endurance_cov);
    const double clamped = std::clamp(
        sample, 1.0, static_cast<double>(std::numeric_limits<std::uint16_t>::max()));
    endurance_[i] = static_cast<std::uint16_t>(clamped);
  }

  // No stuck cells yet, so each line's watermark is simply the minimum
  // sampled endurance over its data area.
  watermark_.assign(config.lines, 0);
  data_stuck_.assign(config.lines, 0);
  prefix_valid_.assign(config.lines, 0);
  // Eager (~130 B/line): building it lazily would put one allocation on the
  // steady-state write path, which tests/alloc_regression_test.cpp forbids.
  prefix_.assign(config.lines * (kBlockBytes + 1), 0);
  for (std::size_t line = 0; line < config.lines; ++line) {
    const std::size_t base = line * kLineTotalBits;
    watermark_[line] = simd::active::masked_min_u16(endurance_.data() + base,
                                                    stuck_.data() + base / 64, kBlockBits / 64);
  }
}

std::size_t PcmArray::cell_index(std::size_t line, std::size_t bit) const {
  expects(line < config_.lines, "line out of range");
  expects(bit < kLineTotalBits, "bit out of range");
  return line * kLineTotalBits + bit;
}

bool PcmArray::get_value(std::size_t idx) const { return (values_[idx / 64] >> (idx % 64)) & 1u; }

void PcmArray::set_value(std::size_t idx, bool v) {
  const std::uint64_t mask = 1ull << (idx % 64);
  if (v) {
    values_[idx / 64] |= mask;
  } else {
    values_[idx / 64] &= ~mask;
  }
}

bool PcmArray::get_stuck(std::size_t idx) const { return (stuck_[idx / 64] >> (idx % 64)) & 1u; }

void PcmArray::set_stuck(std::size_t idx) { stuck_[idx / 64] |= 1ull << (idx % 64); }

bool PcmArray::read_bit(std::size_t line, std::size_t bit) const {
  return get_value(cell_index(line, bit));
}

void PcmArray::read_range(std::size_t line, std::size_t bit_off, std::size_t nbits,
                          std::span<std::uint8_t> out) const {
  expects(bit_off + nbits <= kLineTotalBits, "read range exceeds line");
  expects(out.size() * 8 >= nbits, "output buffer too small");
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  const std::size_t base = cell_index(line, bit_off);
  std::size_t i = 0;
  while (i < nbits) {
    const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
    std::uint64_t v = extract64(values_, base + i);
    if (chunk < 64) v &= (~0ull) >> (64 - chunk);
    for (unsigned b = 0; b < chunk; b += 8) {
      const std::size_t byte = (i + b) / 8;
      // i is a multiple of 64 here, so (i + b) is byte aligned.
      out[byte] = static_cast<std::uint8_t>((v >> b) & 0xFFu);
    }
    i += chunk;
  }
}

PcmWriteResult PcmArray::write_range(std::size_t line, std::size_t bit_off,
                                     std::span<const std::uint8_t> data, std::size_t nbits) {
  expects(bit_off + nbits <= kLineTotalBits, "write range exceeds line");
  expects(data.size() * 8 >= nbits, "input buffer too small");
  PcmWriteResult result;
  const std::size_t base = cell_index(line, bit_off);

  // Fast path: the watermark proves every non-stuck data cell survives one
  // more pulse, so no fault can be born — value updates collapse to one
  // masked XOR store per word, pulse tallies to popcounts, and the endurance
  // scatter-update to a tight countr_zero loop with no branches and no RNG.
  // Each cell in the range is programmed at most once, so the line minimum
  // drops by at most 1: decrementing the watermark keeps it a lower bound.
  // Ranges touching the ECC-chip area (tests only) take the per-bit path:
  // the watermark only covers the data area.
  if (bit_off + nbits <= kBlockBits && watermark_[line] >= 2) {
    // The per-line stuck count (maintained at fault birth) lets the common
    // fault-free line skip the stuck-mask extraction and mismatch tally.
    const bool line_has_stuck = data_stuck_[line] != 0;
    bool programmed_any = false;
    std::size_t i = 0;
    while (i < nbits) {
      const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
      const std::uint64_t mask = chunk == 64 ? ~0ull : ((~0ull) >> (64 - chunk));
      const std::uint64_t want = load_bits64(data, i, chunk);
      const std::size_t pos = base + i;
      const std::uint64_t stored = extract64(values_, pos) & mask;
      const std::uint64_t stuckm = line_has_stuck ? extract64(stuck_, pos) & mask : 0;
      const std::uint64_t diff = (stored ^ want) & mask;

      result.mismatched_bits += static_cast<std::size_t>(std::popcount(diff & stuckm));

      const std::uint64_t program = diff & ~stuckm;  // differential write: flip these
      if (program != 0) {
        programmed_any = true;
        const auto nprog = static_cast<std::size_t>(std::popcount(program));
        const auto nset = static_cast<std::size_t>(std::popcount(want & program));
        result.programmed_bits += nprog;
        total_programmed_ += nprog;
        total_set_ += nset;
        total_reset_ += nprog - nset;

        const std::size_t w = pos / 64;
        const unsigned sh = static_cast<unsigned>(pos % 64);
        values_[w] ^= program << sh;
        if (sh != 0 && (program >> (64 - sh)) != 0) values_[w + 1] ^= program >> (64 - sh);

        // Masked u16 lane decrement over the contiguous endurance lanes —
        // the vector counterpart of the per-set-bit countr_zero walk.
        simd::active::endurance_decrement64(endurance_.data() + pos, program);
      }
      i += chunk;
    }
    if (programmed_any) --watermark_[line];
    return result;
  }

  write_range_slow(line, base, bit_off, data, nbits, result);
  // Fault births may have removed the minimum cell from the non-stuck set;
  // recompute the watermark exactly so the line re-arms the fast path.
  rebuild_watermark(line);
  return result;
}

void PcmArray::write_range_slow(std::size_t line, std::size_t base, std::size_t bit_off,
                                std::span<const std::uint8_t> data, std::size_t nbits,
                                PcmWriteResult& result) {
  std::size_t i = 0;
  while (i < nbits) {
    const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
    const std::uint64_t mask = chunk == 64 ? ~0ull : ((~0ull) >> (64 - chunk));
    const std::uint64_t want = load_bits64(data, i, chunk);
    const std::uint64_t stored = extract64(values_, base + i) & mask;
    const std::uint64_t stuckm = extract64(stuck_, base + i) & mask;
    const std::uint64_t diff = (stored ^ want) & mask;

    result.mismatched_bits += static_cast<std::size_t>(std::popcount(diff & stuckm));

    std::uint64_t program = diff & ~stuckm;  // differential write: flip these
    while (program != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(program));
      program &= program - 1;
      const std::size_t idx = base + i + b;
      ++result.programmed_bits;
      ++total_programmed_;
      if ((want >> b) & 1u) {
        ++total_set_;
      } else {
        ++total_reset_;
      }
      auto& remaining = endurance_[idx];
      if (remaining > 1) {
        --remaining;
        set_value(idx, (want >> b) & 1u);
        continue;
      }
      // Cell wears out on this pulse and latches a stuck value. Stuck-at-RESET
      // (heater detach) latches 0; stuck-at-SET latches 1.
      remaining = 0;
      set_stuck(idx);
      ++result.new_faults;
      ++total_faults_;
      on_fault_born(line, bit_off + i + b);
      const bool stuck_value = !rng_.next_bool(config_.stuck_at_reset_fraction);
      set_value(idx, stuck_value);
      if (stuck_value != ((want >> b) & 1u)) ++result.mismatched_bits;
    }
    i += chunk;
  }
}

void PcmArray::rebuild_watermark(std::size_t line) {
  const std::size_t word0 = line * kLineTotalBits / 64;
  bool any_live = false;
  for (std::size_t w = 0; w < kBlockBits / 64; ++w) any_live |= ~stuck_[word0 + w] != 0;
  // Masked u16 min-reduce with stuck lanes saturated to 0xFFFF; a fully
  // stuck data area has no live minimum and disarms the fast path with 0.
  watermark_[line] = any_live ? simd::active::masked_min_u16(endurance_.data() + word0 * 64,
                                                             stuck_.data() + word0,
                                                             kBlockBits / 64)
                              : 0;
}

void PcmArray::on_fault_born(std::size_t line, std::size_t bit) {
  if (bit < kBlockBits) {
    ++data_stuck_[line];
    prefix_valid_[line] = 0;
  }
}

std::span<const std::uint16_t> PcmArray::byte_stuck_prefix(std::size_t line) const {
  expects(line < config_.lines, "line out of range");
  std::uint16_t* p = prefix_.data() + line * (kBlockBytes + 1);
  if (!prefix_valid_[line]) {
    const std::size_t word0 = line * kLineTotalBits / 64;
    p[0] = 0;
    for (std::size_t w = 0; w < kBlockBits / 64; ++w) {
      const std::uint64_t word = stuck_[word0 + w];
      for (std::size_t j = 0; j < 8; ++j) {
        const auto byte_count =
            static_cast<std::uint16_t>(std::popcount((word >> (8 * j)) & 0xFFull));
        p[w * 8 + j + 1] = static_cast<std::uint16_t>(p[w * 8 + j] + byte_count);
      }
    }
    prefix_valid_[line] = 1;
  }
  return {p, kBlockBytes + 1};
}

bool PcmArray::is_stuck(std::size_t line, std::size_t bit) const {
  return get_stuck(cell_index(line, bit));
}

std::size_t PcmArray::count_stuck(std::size_t line, std::size_t bit_off,
                                  std::size_t nbits) const {
  expects(bit_off + nbits <= kLineTotalBits, "range exceeds line");
  const std::size_t base = cell_index(line, bit_off);
  std::size_t n = 0;
  std::size_t i = 0;
  while (i < nbits) {
    const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
    std::uint64_t v = extract64(stuck_, base + i);
    if (chunk < 64) v &= (~0ull) >> (64 - chunk);
    n += static_cast<std::size_t>(std::popcount(v));
    i += chunk;
  }
  return n;
}

std::vector<std::uint16_t> PcmArray::stuck_positions(std::size_t line, std::size_t bit_off,
                                                     std::size_t nbits) const {
  std::array<std::uint16_t, kLineTotalBits> buf;
  const std::size_t n = stuck_positions_into(line, bit_off, nbits, buf);
  return {buf.begin(), buf.begin() + n};
}

std::size_t PcmArray::stuck_positions_into(std::size_t line, std::size_t bit_off,
                                           std::size_t nbits,
                                           std::span<std::uint16_t> out) const {
  expects(bit_off + nbits <= kLineTotalBits, "range exceeds line");
  const std::size_t base = cell_index(line, bit_off);
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < nbits) {
    const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
    std::uint64_t v = extract64(stuck_, base + i);
    if (chunk < 64) v &= (~0ull) >> (64 - chunk);
    while (v != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(v));
      v &= v - 1;
      expects(count < out.size(), "stuck position buffer too small");
      out[count++] = static_cast<std::uint16_t>(bit_off + i + b);
    }
    i += chunk;
  }
  return count;
}

std::uint32_t PcmArray::remaining_endurance(std::size_t line, std::size_t bit) const {
  return endurance_[cell_index(line, bit)];
}

void PcmArray::inject_fault(std::size_t line, std::size_t bit, bool stuck_value) {
  const std::size_t idx = cell_index(line, bit);
  if (!get_stuck(idx)) {
    set_stuck(idx);
    ++total_faults_;
    on_fault_born(line, bit);
  }
  endurance_[idx] = 0;
  // The cell leaves the watermark's non-stuck set, so the existing lower
  // bound stays valid; zeroing its endurance must not drag the bound down.
  set_value(idx, stuck_value);
}

}  // namespace pcmsim
