#include "pcm/array.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace pcmsim {

namespace {

/// Extracts 64 bits starting at absolute bit position `pos` from packed words.
/// Bits past `end` read as zero.
std::uint64_t extract64(const std::vector<std::uint64_t>& words, std::size_t pos) {
  const std::size_t w = pos / 64;
  const unsigned sh = static_cast<unsigned>(pos % 64);
  std::uint64_t v = words[w] >> sh;
  if (sh != 0 && w + 1 < words.size()) v |= words[w + 1] << (64 - sh);
  return v;
}

/// Loads up to 64 bits (LSB-first packed) from a byte buffer at bit offset `pos`.
std::uint64_t load_bits64(std::span<const std::uint8_t> data, std::size_t pos, unsigned n) {
  std::uint64_t v = 0;
  const std::size_t first_byte = pos / 8;
  const unsigned sh = static_cast<unsigned>(pos % 8);
  // Read enough bytes to cover n bits after the shift.
  const std::size_t need = (sh + n + 7) / 8;
  for (std::size_t i = 0; i < need && first_byte + i < data.size(); ++i) {
    v |= static_cast<std::uint64_t>(data[first_byte + i]) << (8 * i);
  }
  v >>= sh;
  if (n < 64) v &= (n == 0) ? 0 : ((~0ull) >> (64 - n));
  return v;
}

}  // namespace

PcmArray::PcmArray(const PcmDeviceConfig& config) : config_(config), rng_(config.seed) {
  expects(config.lines > 0, "PCM array needs at least one line");
  expects(config.endurance_mean > 0, "endurance mean must be positive");
  // uint16 endurance storage: with lognormal CoV <= 0.5 the +8 sigma tail of
  // a 1e4-mean distribution stays well below 65535; reject configs that risk
  // overflow instead of silently clamping hot cells.
  expects(config.endurance_mean * (1.0 + 8.0 * config.endurance_cov) <
              static_cast<double>(std::numeric_limits<std::uint16_t>::max()),
          "scaled endurance too large for uint16 storage; lower endurance_mean");

  const std::size_t cells = config.lines * kLineTotalBits;
  static_assert(kLineTotalBits % 64 == 0, "lines must pack whole 64-bit words");
  values_.assign(cells / 64, 0);
  stuck_.assign(cells / 64, 0);
  endurance_.resize(cells);
  for (auto& e : endurance_) {
    const double sample = rng_.next_lognormal_mean_cov(config.endurance_mean,
                                                       config.endurance_cov);
    const double clamped = std::clamp(
        sample, 1.0, static_cast<double>(std::numeric_limits<std::uint16_t>::max()));
    e = static_cast<std::uint16_t>(clamped);
  }
}

std::size_t PcmArray::cell_index(std::size_t line, std::size_t bit) const {
  expects(line < config_.lines, "line out of range");
  expects(bit < kLineTotalBits, "bit out of range");
  return line * kLineTotalBits + bit;
}

bool PcmArray::get_value(std::size_t idx) const { return (values_[idx / 64] >> (idx % 64)) & 1u; }

void PcmArray::set_value(std::size_t idx, bool v) {
  const std::uint64_t mask = 1ull << (idx % 64);
  if (v) {
    values_[idx / 64] |= mask;
  } else {
    values_[idx / 64] &= ~mask;
  }
}

bool PcmArray::get_stuck(std::size_t idx) const { return (stuck_[idx / 64] >> (idx % 64)) & 1u; }

void PcmArray::set_stuck(std::size_t idx) { stuck_[idx / 64] |= 1ull << (idx % 64); }

bool PcmArray::read_bit(std::size_t line, std::size_t bit) const {
  return get_value(cell_index(line, bit));
}

void PcmArray::read_range(std::size_t line, std::size_t bit_off, std::size_t nbits,
                          std::span<std::uint8_t> out) const {
  expects(bit_off + nbits <= kLineTotalBits, "read range exceeds line");
  expects(out.size() * 8 >= nbits, "output buffer too small");
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  const std::size_t base = cell_index(line, bit_off);
  std::size_t i = 0;
  while (i < nbits) {
    const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
    std::uint64_t v = extract64(values_, base + i);
    if (chunk < 64) v &= (~0ull) >> (64 - chunk);
    for (unsigned b = 0; b < chunk; b += 8) {
      const std::size_t byte = (i + b) / 8;
      // i is a multiple of 64 here, so (i + b) is byte aligned.
      out[byte] = static_cast<std::uint8_t>((v >> b) & 0xFFu);
    }
    i += chunk;
  }
}

PcmWriteResult PcmArray::write_range(std::size_t line, std::size_t bit_off,
                                     std::span<const std::uint8_t> data, std::size_t nbits) {
  expects(bit_off + nbits <= kLineTotalBits, "write range exceeds line");
  expects(data.size() * 8 >= nbits, "input buffer too small");
  PcmWriteResult result;
  const std::size_t base = cell_index(line, bit_off);
  std::size_t i = 0;
  while (i < nbits) {
    const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
    const std::uint64_t mask = chunk == 64 ? ~0ull : ((~0ull) >> (64 - chunk));
    const std::uint64_t want = load_bits64(data, i, chunk);
    const std::uint64_t stored = extract64(values_, base + i) & mask;
    const std::uint64_t stuckm = extract64(stuck_, base + i) & mask;
    const std::uint64_t diff = (stored ^ want) & mask;

    result.mismatched_bits += static_cast<std::size_t>(std::popcount(diff & stuckm));

    std::uint64_t program = diff & ~stuckm;  // differential write: flip these
    while (program != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(program));
      program &= program - 1;
      const std::size_t idx = base + i + b;
      ++result.programmed_bits;
      ++total_programmed_;
      if ((want >> b) & 1u) {
        ++total_set_;
      } else {
        ++total_reset_;
      }
      auto& remaining = endurance_[idx];
      if (remaining > 1) {
        --remaining;
        set_value(idx, (want >> b) & 1u);
        continue;
      }
      // Cell wears out on this pulse and latches a stuck value. Stuck-at-RESET
      // (heater detach) latches 0; stuck-at-SET latches 1.
      remaining = 0;
      set_stuck(idx);
      ++result.new_faults;
      ++total_faults_;
      const bool stuck_value = !rng_.next_bool(config_.stuck_at_reset_fraction);
      set_value(idx, stuck_value);
      if (stuck_value != ((want >> b) & 1u)) ++result.mismatched_bits;
    }
    i += chunk;
  }
  return result;
}

bool PcmArray::is_stuck(std::size_t line, std::size_t bit) const {
  return get_stuck(cell_index(line, bit));
}

std::size_t PcmArray::count_stuck(std::size_t line, std::size_t bit_off,
                                  std::size_t nbits) const {
  expects(bit_off + nbits <= kLineTotalBits, "range exceeds line");
  const std::size_t base = cell_index(line, bit_off);
  std::size_t n = 0;
  std::size_t i = 0;
  while (i < nbits) {
    const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
    std::uint64_t v = extract64(stuck_, base + i);
    if (chunk < 64) v &= (~0ull) >> (64 - chunk);
    n += static_cast<std::size_t>(std::popcount(v));
    i += chunk;
  }
  return n;
}

std::vector<std::uint16_t> PcmArray::stuck_positions(std::size_t line, std::size_t bit_off,
                                                     std::size_t nbits) const {
  std::array<std::uint16_t, kLineTotalBits> buf;
  const std::size_t n = stuck_positions_into(line, bit_off, nbits, buf);
  return {buf.begin(), buf.begin() + n};
}

std::size_t PcmArray::stuck_positions_into(std::size_t line, std::size_t bit_off,
                                           std::size_t nbits,
                                           std::span<std::uint16_t> out) const {
  expects(bit_off + nbits <= kLineTotalBits, "range exceeds line");
  const std::size_t base = cell_index(line, bit_off);
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < nbits) {
    const unsigned chunk = static_cast<unsigned>(std::min<std::size_t>(64, nbits - i));
    std::uint64_t v = extract64(stuck_, base + i);
    if (chunk < 64) v &= (~0ull) >> (64 - chunk);
    while (v != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(v));
      v &= v - 1;
      expects(count < out.size(), "stuck position buffer too small");
      out[count++] = static_cast<std::uint16_t>(bit_off + i + b);
    }
    i += chunk;
  }
  return count;
}

std::uint32_t PcmArray::remaining_endurance(std::size_t line, std::size_t bit) const {
  return endurance_[cell_index(line, bit)];
}

void PcmArray::inject_fault(std::size_t line, std::size_t bit, bool stuck_value) {
  const std::size_t idx = cell_index(line, bit);
  if (!get_stuck(idx)) {
    set_stuck(idx);
    ++total_faults_;
  }
  endurance_[idx] = 0;
  set_value(idx, stuck_value);
}

}  // namespace pcmsim
