// PCM device and organization parameters (paper Table II).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.hpp"

namespace pcmsim {

/// Total physical cells per line: 512 data bits + 64 bits on the ninth (ECC)
/// chip of the ECC-DIMM. Error-correction metadata lives in the ECC-chip bits.
inline constexpr std::size_t kLineTotalBits = kBlockBits + kEccBits;

/// Device-level configuration for a simulated PCM region.
///
/// Endurance is expressed in *simulated* write cycles. The paper's physical
/// mean is 1e7 (ITRS, Table II); lifetime studies use a scaled-down mean so a
/// run finishes in seconds, and rescale to physical months analytically (see
/// DESIGN.md "Endurance scaling" and sim/lifetime.hpp).
struct PcmDeviceConfig {
  std::size_t lines = std::size_t{1} << 15;  ///< lines in the simulated region
  double endurance_mean = 1e4;               ///< mean programming cycles per cell
  double endurance_cov = 0.15;               ///< process variation (Table II: 0.15)
  /// Fraction of worn-out cells that become stuck-at-RESET (logical 0).
  /// Stuck-at-RESET is the dominant PCM failure mode (Section II-B).
  double stuck_at_reset_fraction = 0.8;
  std::uint64_t seed = 1;
};

/// DDR3-style interface timings in memory-controller cycles (Table II,
/// 400 MHz command clock; read 48 ns, RESET 40 ns, SET 150 ns).
struct PcmTimingConfig {
  std::uint32_t clock_mhz = 400;
  std::uint32_t t_rdc = 60;      ///< row/read cycle
  std::uint32_t t_cl = 5;        ///< CAS latency
  std::uint32_t t_wl = 4;        ///< write latency
  std::uint32_t t_ccd = 4;       ///< column-to-column delay
  std::uint32_t t_wtr = 4;       ///< write-to-read turnaround
  std::uint32_t t_rtp = 3;       ///< read-to-precharge
  std::uint32_t t_rp = 60;       ///< precharge (PCM write commit dominates)
  std::uint32_t t_rrd_act = 2;   ///< activate-to-activate
  std::uint32_t t_rrd_pre = 11;  ///< precharge-to-precharge
  std::uint32_t burst_length = 8;
};

/// Memory-organization parameters (Table II: 4 GB, 2 channels, 1 DIMM/channel,
/// 1 rank/DIMM, 9x8-bit devices per rank, 4 banks per rank).
struct PcmOrgConfig {
  std::uint32_t channels = 2;
  std::uint32_t ranks_per_channel = 1;
  std::uint32_t banks_per_rank = 4;
  std::uint32_t chips_per_rank = 9;  ///< 8 data + 1 ECC
  std::uint64_t capacity_bytes = 4ull << 30;

  [[nodiscard]] std::uint64_t total_lines() const { return capacity_bytes / kBlockBytes; }
  [[nodiscard]] std::uint32_t total_banks() const {
    return channels * ranks_per_channel * banks_per_rank;
  }
};

}  // namespace pcmsim
