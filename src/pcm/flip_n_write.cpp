#include "pcm/flip_n_write.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>

#include "common/assert.hpp"

namespace pcmsim {

namespace {

constexpr std::size_t kLanes = kBlockBytes / 8;

using Lanes = std::array<std::uint64_t, kLanes>;

Lanes load_lanes(const Block& b) {
  Lanes out;
  std::memcpy(out.data(), b.data(), kBlockBytes);
  return out;
}

/// Inverting a group turns every matching bit into a mismatch and vice versa,
/// so its data flips are group_bits - plain; the flag cell itself flips when
/// the representation changes.
bool invert_wins(std::size_t plain, std::size_t group_bits, bool was_inverted) {
  const std::size_t plain_total = plain + (was_inverted ? 1 : 0);
  const std::size_t inverted_total = (group_bits - plain) + (was_inverted ? 0 : 1);
  return inverted_total < plain_total;
}

}  // namespace

FlipNWriteCodec::FlipNWriteCodec(std::size_t group_bits) : group_bits_(group_bits) {
  expects(group_bits > 0 && kBlockBits % group_bits == 0, "group size must divide 512");
  expects(group_bits % 8 == 0, "group size must be byte aligned");
}

FlipNWriteCodec::Encoded FlipNWriteCodec::encode(const Block& data, const Block& stored,
                                                 std::uint64_t stored_mask) const {
  Lanes w = load_lanes(data);
  const Lanes h = load_lanes(stored);
  Encoded out;
  if (group_bits_ >= 64) {
    const std::size_t lanes = group_bits_ / 64;
    for (std::size_t g = 0; g < groups_per_block(); ++g) {
      std::size_t plain = 0;
      for (std::size_t l = g * lanes; l < (g + 1) * lanes; ++l) {
        plain += static_cast<std::size_t>(std::popcount(w[l] ^ h[l]));
      }
      if (invert_wins(plain, group_bits_, (stored_mask >> g) & 1u)) {
        out.invert_mask |= 1ull << g;
        for (std::size_t l = g * lanes; l < (g + 1) * lanes; ++l) w[l] = ~w[l];
      }
    }
  } else {
    const std::size_t per_lane = 64 / group_bits_;
    const std::uint64_t gmask = (1ull << group_bits_) - 1;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::uint64_t diff = w[l] ^ h[l];
      for (std::size_t s = 0; s < per_lane; ++s) {
        const std::uint64_t m = gmask << (s * group_bits_);
        const std::size_t g = l * per_lane + s;
        const auto plain = static_cast<std::size_t>(std::popcount(diff & m));
        if (invert_wins(plain, group_bits_, (stored_mask >> g) & 1u)) {
          out.invert_mask |= 1ull << g;
          w[l] ^= m;
        }
      }
    }
  }
  std::memcpy(out.payload.data(), w.data(), kBlockBytes);
  return out;
}

Block FlipNWriteCodec::decode(const Block& payload, std::uint64_t mask) const {
  Lanes p = load_lanes(payload);
  if (group_bits_ >= 64) {
    const std::size_t lanes = group_bits_ / 64;
    for (std::size_t g = 0; g < groups_per_block(); ++g) {
      if (!((mask >> g) & 1u)) continue;
      for (std::size_t l = g * lanes; l < (g + 1) * lanes; ++l) p[l] = ~p[l];
    }
  } else {
    const std::size_t per_lane = 64 / group_bits_;
    const std::uint64_t gmask = (1ull << group_bits_) - 1;
    for (std::size_t l = 0; l < kLanes; ++l) {
      for (std::size_t s = 0; s < per_lane; ++s) {
        if ((mask >> (l * per_lane + s)) & 1u) p[l] ^= gmask << (s * group_bits_);
      }
    }
  }
  Block out{};
  std::memcpy(out.data(), p.data(), kBlockBytes);
  return out;
}

std::size_t FlipNWriteCodec::dw_flips(const Block& data, const Block& stored) {
  return hamming_distance(data, stored);
}

std::size_t FlipNWriteCodec::encoded_flips(const Block& data, const Block& stored,
                                           std::uint64_t stored_mask) const {
  // One pass: the chosen representation's cost is min(plain + flag-change,
  // inverted + flag-change), exactly what encode() would pick per group.
  const Lanes w = load_lanes(data);
  const Lanes h = load_lanes(stored);
  std::size_t total = 0;
  if (group_bits_ >= 64) {
    const std::size_t lanes = group_bits_ / 64;
    for (std::size_t g = 0; g < groups_per_block(); ++g) {
      std::size_t plain = 0;
      for (std::size_t l = g * lanes; l < (g + 1) * lanes; ++l) {
        plain += static_cast<std::size_t>(std::popcount(w[l] ^ h[l]));
      }
      const bool was = (stored_mask >> g) & 1u;
      total += std::min(plain + (was ? 1u : 0u), (group_bits_ - plain) + (was ? 0u : 1u));
    }
  } else {
    const std::size_t per_lane = 64 / group_bits_;
    const std::uint64_t gmask = (1ull << group_bits_) - 1;
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::uint64_t diff = w[l] ^ h[l];
      for (std::size_t s = 0; s < per_lane; ++s) {
        const auto plain =
            static_cast<std::size_t>(std::popcount(diff & (gmask << (s * group_bits_))));
        const bool was = (stored_mask >> (l * per_lane + s)) & 1u;
        total += std::min(plain + (was ? 1u : 0u), (group_bits_ - plain) + (was ? 0u : 1u));
      }
    }
  }
  return total;
}

}  // namespace pcmsim
