#include "pcm/flip_n_write.hpp"

#include <bit>

#include "common/assert.hpp"

namespace pcmsim {

FlipNWriteCodec::FlipNWriteCodec(std::size_t group_bits) : group_bits_(group_bits) {
  expects(group_bits > 0 && kBlockBits % group_bits == 0, "group size must divide 512");
  expects(group_bits % 8 == 0, "group size must be byte aligned");
}

FlipNWriteCodec::Encoded FlipNWriteCodec::encode(const Block& data, const Block& stored,
                                                 const std::vector<bool>& stored_flags) const {
  expects(stored_flags.size() == groups_per_block(), "flag arity mismatch");
  Encoded out;
  out.invert_flags.resize(groups_per_block());
  const std::size_t group_bytes = group_bits_ / 8;
  for (std::size_t g = 0; g < groups_per_block(); ++g) {
    const std::size_t off = g * group_bytes;
    // Flips if we store the group plain vs inverted.
    std::size_t plain = 0;
    std::size_t inverted = 0;
    for (std::size_t b = 0; b < group_bytes; ++b) {
      const std::uint8_t want = data[off + b];
      const std::uint8_t have = stored[off + b];
      plain += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(want ^ have)));
      inverted += static_cast<std::size_t>(
          std::popcount(static_cast<unsigned>(static_cast<std::uint8_t>(~want) ^ have)));
    }
    // Account the flag cell itself: changing representation flips it.
    const bool was_inverted = stored_flags[g];
    const std::size_t plain_total = plain + (was_inverted ? 1 : 0);
    const std::size_t inverted_total = inverted + (was_inverted ? 0 : 1);
    const bool invert = inverted_total < plain_total;
    out.invert_flags[g] = invert;
    for (std::size_t b = 0; b < group_bytes; ++b) {
      out.payload[off + b] = invert ? static_cast<std::uint8_t>(~data[off + b]) : data[off + b];
    }
  }
  return out;
}

Block FlipNWriteCodec::decode(const Block& payload, const std::vector<bool>& flags) const {
  expects(flags.size() == groups_per_block(), "flag arity mismatch");
  Block out{};
  const std::size_t group_bytes = group_bits_ / 8;
  for (std::size_t g = 0; g < groups_per_block(); ++g) {
    const std::size_t off = g * group_bytes;
    for (std::size_t b = 0; b < group_bytes; ++b) {
      out[off + b] = flags[g] ? static_cast<std::uint8_t>(~payload[off + b]) : payload[off + b];
    }
  }
  return out;
}

std::size_t FlipNWriteCodec::dw_flips(const Block& data, const Block& stored) {
  return hamming_distance(data, stored);
}

std::size_t FlipNWriteCodec::encoded_flips(const Block& data, const Block& stored,
                                           const std::vector<bool>& stored_flags) const {
  const Encoded enc = encode(data, stored, stored_flags);
  std::size_t flips = hamming_distance(enc.payload, stored);
  for (std::size_t g = 0; g < groups_per_block(); ++g) {
    if (enc.invert_flags[g] != stored_flags[g]) ++flips;
  }
  return flips;
}

}  // namespace pcmsim
