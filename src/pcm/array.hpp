// Bit-accurate PCM cell array with per-cell endurance and stuck-at faults.
//
// Models the behaviour the paper's mechanisms depend on:
//  * the chip-level read-modify-write circuit performs differential writes —
//    only cells whose stored value differs from the new value are programmed;
//  * every programming pulse consumes one endurance cycle of that cell;
//  * a cell whose endurance is exhausted becomes permanently stuck at either
//    RESET (0) or SET (1); programming it has no effect (hard error);
//  * hard errors are detectable via the verify read the RMW circuit performs.
//
// Storage is struct-of-arrays: value and stuck flags in packed 64-bit words,
// remaining endurance in uint16 (sufficient for the scaled endurance used in
// lifetime studies; construction rejects configurations that would overflow).
//
// The write kernel is word-level: value updates are one masked XOR store per
// 64-bit word, SET/RESET pulses are tallied with popcounts, and the
// endurance scatter-update and watermark min-scan run as masked u16 lane
// kernels from common/simd.hpp (the endurance array carries 64 zeroed tail
// lanes so those kernels never read past the allocation). A per-line
// *fault-free watermark* — a lower bound on the remaining endurance of every
// non-stuck data-area cell — proves, for the common case, that no cell can
// wear out during the write, so the fast path never branches per bit and
// never touches the RNG (draws happen only at fault birth, which keeps the
// fast path bit-identical to the definitional per-bit model by construction).
// See EXPERIMENTS.md "Write-path performance" for the invariant and the
// bit-identity verification procedure.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "pcm/config.hpp"

namespace pcmsim {

/// Outcome of one differential write to a cell range.
struct PcmWriteResult {
  std::size_t programmed_bits = 0;  ///< cells actually pulsed (post-DW bit flips)
  std::size_t new_faults = 0;       ///< cells that wore out during this write
  std::size_t mismatched_bits = 0;  ///< stuck cells whose value differs from the data
};

class PcmArray {
 public:
  explicit PcmArray(const PcmDeviceConfig& config);

  [[nodiscard]] std::size_t lines() const { return config_.lines; }
  [[nodiscard]] const PcmDeviceConfig& config() const { return config_; }

  /// Stored value of bit `bit` of line `line` (stuck cells return their stuck value).
  [[nodiscard]] bool read_bit(std::size_t line, std::size_t bit) const;

  /// Reads `nbits` starting at `bit_off` into `out` (LSB-first packed bytes).
  void read_range(std::size_t line, std::size_t bit_off, std::size_t nbits,
                  std::span<std::uint8_t> out) const;

  /// Differential write of `nbits` (LSB-first packed in `data`) at `bit_off`.
  /// Only differing, non-stuck cells are programmed; each programming pulse
  /// consumes endurance and may create a new stuck-at fault.
  PcmWriteResult write_range(std::size_t line, std::size_t bit_off,
                             std::span<const std::uint8_t> data, std::size_t nbits);

  /// True when the cell is permanently stuck.
  [[nodiscard]] bool is_stuck(std::size_t line, std::size_t bit) const;

  /// Number of stuck cells in [bit_off, bit_off + nbits).
  [[nodiscard]] std::size_t count_stuck(std::size_t line, std::size_t bit_off,
                                        std::size_t nbits) const;

  /// Positions (relative to line start) of stuck cells in the given range.
  /// Test-only convenience (allocates); hot paths use stuck_positions_into().
  [[nodiscard]] std::vector<std::uint16_t> stuck_positions(std::size_t line,
                                                           std::size_t bit_off,
                                                           std::size_t nbits) const;

  /// Allocation-free variant: writes positions into `out` (which must hold
  /// at least count_stuck() entries) and returns how many were written.
  std::size_t stuck_positions_into(std::size_t line, std::size_t bit_off, std::size_t nbits,
                                   std::span<std::uint16_t> out) const;

  /// Remaining endurance of one cell (0 when stuck).
  [[nodiscard]] std::uint32_t remaining_endurance(std::size_t line, std::size_t bit) const;

  /// Forces a cell into the stuck state (fault injection for tests/Monte Carlo).
  void inject_fault(std::size_t line, std::size_t bit, bool stuck_value);

  /// Stuck cells in the line's 512-bit data area. O(1): maintained eagerly at
  /// fault birth, which is what makes window placement O(1) on clean lines.
  [[nodiscard]] std::size_t data_stuck_count(std::size_t line) const {
    return data_stuck_[line];
  }

  /// Per-byte stuck-count prefix sums over the data area: entry `b` is the
  /// number of stuck cells in bytes [0, b), so a (possibly wrapping) window's
  /// fault count is two subtractions. Built lazily, cached until the line's
  /// fault set changes (fault birth or inject_fault).
  [[nodiscard]] std::span<const std::uint16_t> byte_stuck_prefix(std::size_t line) const;

  /// Fast-path wear invariant (test introspection): a lower bound on the
  /// remaining endurance of every non-stuck cell in the line's data area.
  /// While it is >= 2 a differential write cannot wear out any cell.
  [[nodiscard]] std::uint32_t endurance_watermark(std::size_t line) const {
    return watermark_[line];
  }

  /// Total programming pulses issued to this array since construction.
  [[nodiscard]] std::uint64_t total_programmed_bits() const { return total_programmed_; }
  /// Total cells that have worn out since construction.
  [[nodiscard]] std::uint64_t total_faults() const { return total_faults_; }
  /// SET pulses (0 -> 1: long, low-current crystallization).
  [[nodiscard]] std::uint64_t total_set_pulses() const { return total_set_; }
  /// RESET pulses (1 -> 0: short, high-current melt — the wear-out driver).
  [[nodiscard]] std::uint64_t total_reset_pulses() const { return total_reset_; }

  /// Write energy in picojoules under a simple pulse model (energies per bit;
  /// defaults follow the SET/RESET asymmetry of Lee et al. ISCA'09 scaled to
  /// the Table II pulse widths: RESET is short but high-power).
  [[nodiscard]] double write_energy_pj(double set_pj = 13.5, double reset_pj = 19.2) const {
    return static_cast<double>(total_set_) * set_pj +
           static_cast<double>(total_reset_) * reset_pj;
  }

 private:
  [[nodiscard]] std::size_t cell_index(std::size_t line, std::size_t bit) const;
  [[nodiscard]] bool get_value(std::size_t idx) const;
  void set_value(std::size_t idx, bool v);
  [[nodiscard]] bool get_stuck(std::size_t idx) const;
  void set_stuck(std::size_t idx);

  /// Definitional per-bit write used whenever the watermark cannot prove the
  /// range wear-out-free; the only path that births faults (and draws RNG).
  void write_range_slow(std::size_t line, std::size_t base, std::size_t bit_off,
                        std::span<const std::uint8_t> data, std::size_t nbits,
                        PcmWriteResult& result);

  /// Recomputes the exact minimum remaining endurance over the line's
  /// non-stuck data cells (0 when every data cell is stuck).
  void rebuild_watermark(std::size_t line);

  /// Cache maintenance at fault birth (write wear-out or inject_fault).
  void on_fault_born(std::size_t line, std::size_t bit);

  PcmDeviceConfig config_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> stuck_;
  std::vector<std::uint16_t> endurance_;  ///< cells + 64 zeroed tail lanes (SIMD slack)
  std::vector<std::uint16_t> watermark_;    ///< per line, see endurance_watermark()
  std::vector<std::uint16_t> data_stuck_;   ///< per line, exact data-area count
  mutable std::vector<std::uint16_t> prefix_;        ///< lazy, lines x (kBlockBytes+1)
  mutable std::vector<std::uint8_t> prefix_valid_;   ///< per line
  Rng rng_;
  std::uint64_t total_programmed_ = 0;
  std::uint64_t total_faults_ = 0;
  std::uint64_t total_set_ = 0;
  std::uint64_t total_reset_ = 0;
};

}  // namespace pcmsim
