// Flip-N-Write (Cho & Lee, MICRO 2009): chip-level write reduction that, per
// data group, writes either the data or its complement — whichever flips
// fewer cells versus the stored content — and records the choice in one flag
// bit per group. Guarantees at most half the group's bits are programmed.
//
// pcmsim's baseline uses plain differential writes (as the paper assumes);
// FlipNWriteCodec backs the `ablate_writereduce` study.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace pcmsim {

class FlipNWriteCodec {
 public:
  /// `group_bits` must divide 512 and be byte-aligned; the canonical
  /// configuration is 32 or 64. Groups number at most 64 (512 / 8), so the
  /// per-group invert flags pack into one 64-bit mask.
  explicit FlipNWriteCodec(std::size_t group_bits = 64);

  [[nodiscard]] std::size_t group_bits() const { return group_bits_; }
  [[nodiscard]] std::size_t groups_per_block() const { return kBlockBits / group_bits_; }

  struct Encoded {
    Block payload{};                 ///< per-group possibly-inverted data
    std::uint64_t invert_mask = 0;   ///< bit g set = group g stored inverted
  };

  /// Chooses per-group inversion that minimizes flips against `stored`
  /// (with the previous mask `stored_mask` describing how `stored` is coded).
  [[nodiscard]] Encoded encode(const Block& data, const Block& stored,
                               std::uint64_t stored_mask) const;

  /// Reconstructs plain data from a stored payload and its invert mask.
  [[nodiscard]] Block decode(const Block& payload, std::uint64_t mask) const;

  /// Flips that a plain differential write of `data` over `stored` would need.
  [[nodiscard]] static std::size_t dw_flips(const Block& data, const Block& stored);

  /// Flips an encode/write of `data` would need, including flag-bit flips.
  /// Single fused pass: never materializes the encoded payload.
  [[nodiscard]] std::size_t encoded_flips(const Block& data, const Block& stored,
                                          std::uint64_t stored_mask) const;

 private:
  std::size_t group_bits_;
};

}  // namespace pcmsim
