// Portable SIMD layer for the write-path hot kernels.
//
// Three backends implement the same four kernels in separate translation
// units, selected at configure time by the PCMSIM_SIMD CMake option
// (AUTO / AVX2 / FALLBACK / OFF -> compile definition PCMSIM_SIMD_BACKEND):
//
//  * scalar   (simd_scalar.cpp)   — the bit-walk reference implementation;
//    every other backend must be bit-identical to it (tests/simd_kernel_test
//    drives the differential checks, CI runs a forced-scalar job),
//  * fallback (simd_fallback.cpp) — 128-bit GNU vector extensions; compiles
//    to SSE2 on x86 and to NEON on AArch64 without any -m flags,
//  * avx2     (simd_avx2.cpp)     — 256-bit intrinsics, x86-64 only; the TU
//    is compiled with -mavx2 regardless of the active backend so tests can
//    cross-check it (runtime entry is cpuid-gated via compiled_backends()).
//
// `simd::active` aliases the selected backend's namespace, so call sites are
// compile-time dispatched (`simd::active::scan_words(...)`) and LTO can
// inline across the TU boundary. The KernelTable registry exists for the
// differential tests only — never call through it on a hot path.
//
// Kernel contracts (identical across backends):
//
//  endurance_decrement64(lanes, mask)
//    lanes[b] -= 1 for every set bit b of `mask`. Touches exactly 64 u16
//    lanes: lanes whose mask bit is clear are rewritten with their current
//    value (masked store), so the caller must own all 64 lanes — PcmArray
//    pads its endurance array with 64 zeroed tail lanes for ranges ending at
//    the last cell. No lane may underflow (the fast-path watermark >= 2
//    invariant guarantees every masked lane is >= 1).
//
//  masked_min_u16(lanes, skip, words64)
//    Minimum over `words64 * 64` u16 lanes with lanes whose `skip` bit is
//    set saturated to 0xFFFF; returns 0xFFFF when every lane is skipped.
//    Reads exactly words64*64 lanes and words64 mask words.
//
//  scan_words(words8, out)
//    The fused 64-byte block classification (compression probe): per-u32
//    FPC pattern class, FPC stream bits with zero-run folding, BDI base/
//    delta geometry applicability, all-zero / repeated-u64 flags. The class
//    ids in BlockScan::word_class are numerically the FpcPattern values and
//    the geometry bits follow kGeom* below; compression/word_scan.cpp
//    static_asserts the mapping and is the only consumer.
//
//  merge_block_u32(dst, src, mask)
//    dst 4-byte lane i = src lane i for every set bit i of `mask` (16 lanes
//    = one 64-byte block). Lanes with a clear bit are rewritten unchanged.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <span>

namespace pcmsim::simd {

/// Result of one fused block scan. Field semantics mirror
/// compression/word_scan.hpp's WordClassScan; this struct is domain-neutral
/// so the kernel TUs need no compression headers.
struct BlockScan {
  std::array<std::uint8_t, 16> word_class{};  ///< FPC class id per u32 word
  std::uint16_t zero_mask = 0;                ///< bit i: u32 word i == 0
  std::uint32_t fpc_bits = 0;                 ///< FPC stream bits, runs folded
  std::uint8_t geom_ok = 0;                   ///< kGeom* bits: geometry applies
  bool all_zero = false;                      ///< every byte zero
  bool rep8 = false;                          ///< one repeated u64 word
};

/// geom_ok bit indices: base/delta geometries (zeros/rep8 are the flags).
inline constexpr unsigned kGeomB8D1 = 0;
inline constexpr unsigned kGeomB8D2 = 1;
inline constexpr unsigned kGeomB8D4 = 2;
inline constexpr unsigned kGeomB4D1 = 3;
inline constexpr unsigned kGeomB4D2 = 4;
inline constexpr unsigned kGeomB2D1 = 5;

/// FPC stream bits per non-zero word class (3-bit prefix + payload), indexed
/// by class id; class 0 (zero run) contributes via fpc_zero_run_bits instead.
inline constexpr std::array<std::uint8_t, 8> kFpcWordBits = {0,  3 + 4,  3 + 8, 3 + 16,
                                                             3 + 16, 3 + 16, 3 + 8, 3 + 32};

/// FPC stream bits contributed by the zero words of a block: each maximal run
/// of set bits in `zero_mask` costs 6 bits (prefix + 3-bit length) per started
/// group of 8 words — exactly the legacy probe's run folding. Shared by every
/// backend so the folding rule lives in one place.
[[nodiscard]] inline std::uint32_t fpc_zero_run_bits(std::uint32_t zero_mask) {
  std::uint32_t bits = 0;
  while (zero_mask != 0) {
    const unsigned start = static_cast<unsigned>(std::countr_zero(zero_mask));
    const unsigned len = static_cast<unsigned>(std::countr_one(zero_mask >> start));
    bits += 6 * ((len + 7) / 8);
    zero_mask >>= start;
    zero_mask >>= len;
  }
  return bits;
}

/// Differential-test registry entry: one backend's kernels by pointer.
struct KernelTable {
  const char* name;
  void (*endurance_decrement64)(std::uint16_t* lanes, std::uint64_t mask);
  std::uint16_t (*masked_min_u16)(const std::uint16_t* lanes, const std::uint64_t* skip,
                                  std::size_t words64);
  void (*scan_words)(const std::uint64_t* words8, BlockScan& out);
  void (*merge_block_u32)(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t mask);
};

namespace scalar {
void endurance_decrement64(std::uint16_t* lanes, std::uint64_t mask);
std::uint16_t masked_min_u16(const std::uint16_t* lanes, const std::uint64_t* skip,
                             std::size_t words64);
void scan_words(const std::uint64_t* words8, BlockScan& out);
void merge_block_u32(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t mask);
extern const KernelTable kTable;
}  // namespace scalar

namespace fallback {
void endurance_decrement64(std::uint16_t* lanes, std::uint64_t mask);
std::uint16_t masked_min_u16(const std::uint16_t* lanes, const std::uint64_t* skip,
                             std::size_t words64);
void scan_words(const std::uint64_t* words8, BlockScan& out);
void merge_block_u32(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t mask);
extern const KernelTable kTable;
}  // namespace fallback

#if defined(__x86_64__) || defined(__amd64__) || defined(_M_X64)
#define PCMSIM_SIMD_HAS_AVX2 1
namespace avx2 {
void endurance_decrement64(std::uint16_t* lanes, std::uint64_t mask);
std::uint16_t masked_min_u16(const std::uint16_t* lanes, const std::uint64_t* skip,
                             std::size_t words64);
void scan_words(const std::uint64_t* words8, BlockScan& out);
void merge_block_u32(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t mask);
extern const KernelTable kTable;
}  // namespace avx2
#else
#define PCMSIM_SIMD_HAS_AVX2 0
#endif

// Compile-time backend selection (0 = scalar, 1 = fallback, 2 = avx2); the
// definition comes from src/common/CMakeLists.txt via the PCMSIM_SIMD option.
#ifndef PCMSIM_SIMD_BACKEND
#define PCMSIM_SIMD_BACKEND 0
#endif

#if PCMSIM_SIMD_BACKEND == 2
#if !PCMSIM_SIMD_HAS_AVX2
#error "PCMSIM_SIMD_BACKEND=2 (AVX2) requires an x86-64 target"
#endif
namespace active = avx2;
#elif PCMSIM_SIMD_BACKEND == 1
namespace active = fallback;
#else
namespace active = scalar;
#endif

/// Name of the compile-time-selected backend ("scalar", "fallback", "avx2").
[[nodiscard]] const char* backend_name();

/// Backends compiled into this binary AND runnable on this CPU (the avx2
/// entry is dropped when cpuid lacks AVX2). Scalar is always first, so
/// differential tests can use backends()[0] as the oracle.
[[nodiscard]] std::span<const KernelTable* const> compiled_backends();

}  // namespace pcmsim::simd
