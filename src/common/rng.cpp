#include "common/rng.hpp"

#include <cmath>

namespace pcmsim {

double Rng::next_normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::acos(-1.0) * u2;
  cached_normal_ = r * std::sin(theta);
  have_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::next_lognormal_mean_cov(double mean, double cov) {
  expects(mean > 0.0, "lognormal mean must be positive");
  expects(cov >= 0.0, "lognormal cov must be non-negative");
  if (cov == 0.0) return mean;
  // For lognormal with parameters (mu, sigma):
  //   E[X]   = exp(mu + sigma^2/2)
  //   CoV^2  = exp(sigma^2) - 1
  const double sigma2 = std::log1p(cov * cov);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(next_normal(mu, std::sqrt(sigma2)));
}

}  // namespace pcmsim
