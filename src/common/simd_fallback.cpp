// Portable vector backend: 128-bit GNU vector extensions, which lower to
// SSE2 on x86 and NEON on AArch64 with no target-specific flags. Lane math
// mirrors the AVX2 backend at half width; anything that is only 8 lanes of
// u64 work (rep8, the base-8 geometries) stays scalar — at that width the
// bit tricks already run at vector speed.
#include "common/simd.hpp"

#include <cstring>

namespace pcmsim::simd {

namespace fallback {

namespace {

typedef std::uint16_t v8u16 __attribute__((vector_size(16)));
typedef std::int16_t v8s16 __attribute__((vector_size(16)));
typedef std::uint32_t v4u32 __attribute__((vector_size(16)));
typedef std::int32_t v4s32 __attribute__((vector_size(16)));

template <typename V>
V load(const void* p) {
  V v;
  std::memcpy(&v, p, sizeof(V));
  return v;
}

template <typename V>
void store(void* p, V v) {
  std::memcpy(p, &v, sizeof(V));
}

constexpr v8u16 kBit16 = {1, 2, 4, 8, 16, 32, 64, 128};

/// Expands the low 8 bits of `m` into 8 u16 lanes of 0xFFFF / 0x0000.
v8u16 spread8(unsigned m) {
  const auto b = static_cast<std::uint16_t>(m & 0xFFu);
  return (v8u16)((kBit16 & b) == kBit16);
}

/// True-lane test for (v + k) & high == 0 — the shared "fits in the low
/// delta_bytes as a signed value" range check, u32 lanes.
v4u32 fits32(v4u32 v, std::uint32_t k, std::uint32_t high) {
  return (v4u32)(((v + k) & high) == 0);
}

v8u16 fits16(v8u16 v, std::uint16_t k, std::uint16_t high) {
  return (v8u16)(((v + k) & high) == 0);
}

bool fits_u64(std::uint64_t v, unsigned delta_bytes) {
  const std::uint64_t k = 1ull << (delta_bytes * 8 - 1);
  return ((v + k) >> (delta_bytes * 8)) == 0;
}

/// BdiCompressor::layout_applies for one base-8 geometry, on wrapped u64
/// arithmetic (bit-identical to the int64 oracle).
bool geom8_ok(const std::uint64_t* w, unsigned delta_bytes) {
  std::uint64_t base = 0;
  bool have_base = false;
  for (std::size_t i = 0; i < 8; ++i) {
    if (fits_u64(w[i], delta_bytes)) continue;
    if (!have_base) {
      have_base = true;
      base = w[i];
      continue;
    }
    if (!fits_u64(w[i] - base, delta_bytes)) return false;
  }
  return true;
}

}  // namespace

void endurance_decrement64(std::uint16_t* lanes, std::uint64_t mask) {
  for (unsigned g = 0; g < 8; ++g) {
    const auto m8 = static_cast<unsigned>((mask >> (8 * g)) & 0xFFu);
    if (m8 == 0) continue;
    v8u16 e = load<v8u16>(lanes + 8 * g);
    e += spread8(m8);  // 0xFFFF == -1 per masked lane
    store(lanes + 8 * g, e);
  }
}

std::uint16_t masked_min_u16(const std::uint16_t* lanes, const std::uint64_t* skip,
                             std::size_t words64) {
  v8u16 acc = {0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF, 0xFFFF};
  for (std::size_t w = 0; w < words64; ++w) {
    const std::uint64_t s = skip[w];
    for (unsigned g = 0; g < 8; ++g) {
      v8u16 v = load<v8u16>(lanes + w * 64 + 8 * g);
      v |= spread8(static_cast<unsigned>((s >> (8 * g)) & 0xFFu));  // skipped -> 0xFFFF
      const v8u16 lt = (v8u16)(v < acc);
      acc = (v & lt) | (acc & ~lt);
    }
  }
  std::uint16_t min = 0xFFFF;
  for (unsigned i = 0; i < 8; ++i) {
    if (acc[i] < min) min = acc[i];
  }
  return min;
}

void scan_words(const std::uint64_t* w, BlockScan& out) {
  std::uint64_t acc = 0;
  bool rep = true;
  for (std::size_t i = 0; i < 8; ++i) {
    acc |= w[i];
    rep = rep && w[i] == w[0];
  }
  out.all_zero = acc == 0;
  out.rep8 = rep;

  // FPC classes: priority-blend per u32 lane, four lanes per step.
  std::uint16_t zmask = 0;
  std::uint32_t bits = 0;
  v4u32 v[4];
  for (unsigned q = 0; q < 4; ++q) {
    v[q] = load<v4u32>(w + 2 * q);
    const v4u32 m0 = (v4u32)(v[q] == 0);
    const v4u32 m1 = fits32(v[q], 0x8u, 0xFFFFFFF0u);
    const v4u32 m2 = fits32(v[q], 0x80u, 0xFFFFFF00u);
    const v4u32 m3 = fits32(v[q], 0x8000u, 0xFFFF0000u);
    const v4u32 m4 = (v4u32)((v[q] & 0xFFFFu) == 0);
    const v8u16 halves = (v8u16)v[q];
    const v4u32 m5 = (v4u32)((v4u32)((halves + static_cast<std::uint16_t>(0x80)) &
                                     static_cast<std::uint16_t>(0xFF00)) == 0);
    const v4u32 rot = (v[q] << 8) | (v[q] >> 24);
    const v4u32 m6 = (v4u32)(rot == v[q]);
    v4u32 cls = {7, 7, 7, 7};
    cls = (cls & ~m6) | (m6 & 6u);
    cls = (cls & ~m5) | (m5 & 5u);
    cls = (cls & ~m4) | (m4 & 4u);
    cls = (cls & ~m3) | (m3 & 3u);
    cls = (cls & ~m2) | (m2 & 2u);
    cls = (cls & ~m1) | (m1 & 1u);
    cls &= ~m0;
    for (unsigned i = 0; i < 4; ++i) {
      const auto c = static_cast<std::uint8_t>(cls[i]);
      out.word_class[4 * q + i] = c;
      if (c == 0) {
        zmask = static_cast<std::uint16_t>(zmask | (1u << (4 * q + i)));
      } else {
        bits += kFpcWordBits[c];
      }
    }
  }
  out.zero_mask = zmask;
  out.fpc_bits = bits + fpc_zero_run_bits(zmask);

  std::uint8_t geom = 0;
  if (geom8_ok(w, 1)) geom = static_cast<std::uint8_t>(geom | (1u << kGeomB8D1));
  if (geom8_ok(w, 2)) geom = static_cast<std::uint8_t>(geom | (1u << kGeomB8D2));
  if (geom8_ok(w, 4)) geom = static_cast<std::uint8_t>(geom | (1u << kGeomB8D4));

  // Base-4 geometries: an oversized word's delta to the first oversized word
  // must fit; subtraction runs in 32-bit lanes with an explicit signed-
  // overflow test, which is exact for the int64 differences the oracle takes.
  for (unsigned d = 0; d < 2; ++d) {
    const std::uint32_t k = d == 0 ? 0x80u : 0x8000u;
    const std::uint32_t high = d == 0 ? 0xFFFFFF00u : 0xFFFF0000u;
    std::uint32_t over = 0;
    for (unsigned q = 0; q < 4; ++q) {
      const v4u32 f = fits32(v[q], k, high);
      for (unsigned i = 0; i < 4; ++i) {
        if (f[i] == 0) over |= 1u << (4 * q + i);
      }
    }
    bool ok = true;
    if (over != 0) {
      const unsigned first = static_cast<unsigned>(std::countr_zero(over));
      std::uint32_t base;
      std::memcpy(&base, reinterpret_cast<const std::uint8_t*>(w) + 4 * first, 4);
      for (unsigned q = 0; q < 4 && ok; ++q) {
        const v4u32 diff = v[q] - base;
        const v4u32 f = fits32(diff, k, high);
        const v4u32 ovf = (v[q] ^ base) & (v[q] ^ diff);
        const v4u32 good = f & ~(v4u32)((v4s32)ovf >> 31);
        for (unsigned i = 0; i < 4; ++i) {
          if ((over >> (4 * q + i)) & 1u) ok = ok && good[i] != 0;
        }
      }
    }
    if (ok) geom = static_cast<std::uint8_t>(geom | (1u << (d == 0 ? kGeomB4D1 : kGeomB4D2)));
  }

  // Base-2 geometry (delta 1): same structure over 32 u16 lanes.
  {
    std::uint32_t over = 0;
    v8u16 h[4];
    for (unsigned q = 0; q < 4; ++q) {
      h[q] = (v8u16)v[q];
      const v8u16 f = fits16(h[q], 0x80, 0xFF00);
      for (unsigned i = 0; i < 8; ++i) {
        if (f[i] == 0) over |= 1u << (8 * q + i);
      }
    }
    bool ok = true;
    if (over != 0) {
      const unsigned first = static_cast<unsigned>(std::countr_zero(over));
      std::uint16_t base;
      std::memcpy(&base, reinterpret_cast<const std::uint8_t*>(w) + 2 * first, 2);
      for (unsigned q = 0; q < 4 && ok; ++q) {
        const v8u16 diff = h[q] - base;
        const v8u16 f = fits16(diff, 0x80, 0xFF00);
        const v8u16 ovf = (h[q] ^ base) & (h[q] ^ diff);
        const v8u16 good = f & ~(v8u16)((v8s16)ovf >> 15);
        for (unsigned i = 0; i < 8; ++i) {
          if ((over >> (8 * q + i)) & 1u) ok = ok && good[i] != 0;
        }
      }
    }
    if (ok) geom = static_cast<std::uint8_t>(geom | (1u << kGeomB2D1));
  }
  out.geom_ok = geom;
}

void merge_block_u32(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t mask) {
  constexpr v4u32 kBit4 = {1, 2, 4, 8};
  for (unsigned g = 0; g < 4; ++g) {
    const std::uint32_t nib = (static_cast<std::uint32_t>(mask) >> (4 * g)) & 0xFu;
    if (nib == 0) continue;
    const v4u32 sel = (v4u32)((kBit4 & nib) == kBit4);
    v4u32 d = load<v4u32>(dst + 16 * g);
    const v4u32 s = load<v4u32>(src + 16 * g);
    d = (d & ~sel) | (s & sel);
    store(dst + 16 * g, d);
  }
}

const KernelTable kTable = {"fallback", &endurance_decrement64, &masked_min_u16, &scan_words,
                            &merge_block_u32};

}  // namespace fallback

}  // namespace pcmsim::simd
