// Lightweight contract checks used across pcmsim.
//
// Following the C++ Core Guidelines (I.6/I.8), preconditions and invariants
// are expressed as named check functions rather than raw assert() so that the
// failure message carries the call site and stays active in release builds
// (simulation correctness matters more than the nanoseconds saved).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace pcmsim {

/// Thrown when a precondition or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Precondition check: throws ContractViolation when `cond` is false.
inline void expects(bool cond, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw ContractViolation(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": precondition failed: " + what);
  }
}

/// Invariant/postcondition check: throws ContractViolation when `cond` is false.
inline void ensures(bool cond, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) {
    throw ContractViolation(std::string(loc.file_name()) + ":" +
                            std::to_string(loc.line()) + ": invariant failed: " + what);
  }
}

}  // namespace pcmsim
