#include "common/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace pcmsim {

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  expects(n > 0, "Zipf universe must be non-empty");
  expects(theta >= 0.0, "Zipf theta must be non-negative");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against floating point shortfall
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::uint64_t rank) const {
  expects(rank < n_, "Zipf pmf rank out of range");
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

}  // namespace pcmsim
