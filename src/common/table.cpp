#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace pcmsim {

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {
  expects(!header_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  expects(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TablePrinter::fmt(std::uint64_t v) { return std::to_string(v); }

void TablePrinter::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::size_t total = widths.size() * 3 + 1;
  for (auto w : widths) total += w;

  os << "\n" << title << "\n" << std::string(std::max(total, title.size()), '-') << "\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << "\n";
  };
  print_row(header_);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  os << std::string(total, '-') << "\n";
}

void TablePrinter::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace pcmsim
