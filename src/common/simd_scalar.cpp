// Scalar reference backend: the definitional bit-walk implementations every
// vector backend is differentially tested against. Also hosts the backend
// registry, since scalar is the one backend that always exists.
#include "common/simd.hpp"

#include <cstring>

namespace pcmsim::simd {

namespace scalar {

void endurance_decrement64(std::uint16_t* lanes, std::uint64_t mask) {
  while (mask != 0) {
    const unsigned b = static_cast<unsigned>(std::countr_zero(mask));
    mask &= mask - 1;
    --lanes[b];
  }
}

std::uint16_t masked_min_u16(const std::uint16_t* lanes, const std::uint64_t* skip,
                             std::size_t words64) {
  std::uint16_t min = 0xFFFF;
  for (std::size_t w = 0; w < words64; ++w) {
    std::uint64_t live = ~skip[w];
    while (live != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(live));
      live &= live - 1;
      const std::uint16_t v = lanes[w * 64 + b];
      if (v < min) min = v;
    }
  }
  return min;
}

namespace {

/// FPC word class by the numeric rules of FpcCompressor::classify (the
/// mapping is static_asserted where the two meet, in word_scan.cpp).
std::uint8_t classify_u32(std::uint32_t w) {
  if (w == 0) return 0;
  if (((w + 0x8u) & 0xFFFFFFF0u) == 0) return 1;        // 4-bit sign-extended
  if (((w + 0x80u) & 0xFFFFFF00u) == 0) return 2;       // 8-bit sign-extended
  if (((w + 0x8000u) & 0xFFFF0000u) == 0) return 3;     // 16-bit sign-extended
  if ((w & 0xFFFFu) == 0) return 4;                     // zero-padded low half
  // Two signed bytes: each 16-bit half must be tested independently — a
  // single u32-wide add would leak the low half's carry into the high
  // half's range check (e.g. 0xFF7FFFA5 must stay uncompressed).
  if (((((w & 0xFFFFu) + 0x80u) & 0xFF00u) | (((w >> 16) + 0x80u) & 0xFF00u)) == 0) return 5;
  const std::uint32_t rot = (w << 8) | (w >> 24);
  if (rot == w) return 6;                               // repeated byte
  return 7;                                             // uncompressed
}

/// Streaming replica of BdiCompressor::layout_applies for one base/delta
/// geometry (see compression/bdi.cpp): the explicit base is the first word
/// whose own value does not fit the delta width, and every later oversized
/// word must sit within delta reach of it.
struct GeomState {
  bool ok = true;
  bool have_base = false;
  std::int64_t base = 0;

  static bool fits_signed(std::int64_t v, unsigned bytes) {
    const std::int64_t lo = -(std::int64_t{1} << (bytes * 8 - 1));
    const std::int64_t hi = (std::int64_t{1} << (bytes * 8 - 1)) - 1;
    return v >= lo && v <= hi;
  }

  void feed(std::int64_t word, unsigned delta_bytes) {
    if (!ok || fits_signed(word, delta_bytes)) return;
    if (!have_base) {
      have_base = true;
      base = word;  // the base's own delta is 0
      return;
    }
    // Wrapped two's-complement subtraction: identical bit pattern to the
    // int64 subtraction the BDI oracle performs (u64 avoids the formal UB).
    const auto diff = static_cast<std::int64_t>(static_cast<std::uint64_t>(word) -
                                                static_cast<std::uint64_t>(base));
    if (!fits_signed(diff, delta_bytes)) ok = false;
  }
};

}  // namespace

void scan_words(const std::uint64_t* w, BlockScan& out) {
  std::uint64_t acc = 0;
  bool rep = true;
  for (std::size_t i = 0; i < 8; ++i) {
    acc |= w[i];
    rep = rep && w[i] == w[0];
  }
  out.all_zero = acc == 0;
  out.rep8 = rep;

  GeomState b8d1;
  GeomState b8d2;
  GeomState b8d4;
  GeomState b4d1;
  GeomState b4d2;
  GeomState b2d1;
  std::uint32_t bits = 0;
  std::uint16_t zmask = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto sw = static_cast<std::int64_t>(w[i]);
    b8d1.feed(sw, 1);
    b8d2.feed(sw, 2);
    b8d4.feed(sw, 4);
    for (std::size_t h = 0; h < 2; ++h) {
      const auto u32 = static_cast<std::uint32_t>(w[i] >> (32 * h));
      const auto s32 = static_cast<std::int64_t>(static_cast<std::int32_t>(u32));
      b4d1.feed(s32, 1);
      b4d2.feed(s32, 2);
      for (std::size_t q = 0; q < 2; ++q) {
        const auto u16 = static_cast<std::uint16_t>(u32 >> (16 * q));
        b2d1.feed(static_cast<std::int64_t>(static_cast<std::int16_t>(u16)), 1);
      }
      const std::uint8_t cls = classify_u32(u32);
      out.word_class[2 * i + h] = cls;
      if (cls == 0) {
        zmask = static_cast<std::uint16_t>(zmask | (1u << (2 * i + h)));
      } else {
        bits += kFpcWordBits[cls];
      }
    }
  }
  out.zero_mask = zmask;
  out.fpc_bits = bits + fpc_zero_run_bits(zmask);
  out.geom_ok = static_cast<std::uint8_t>(
      (b8d1.ok ? 1u << kGeomB8D1 : 0) | (b8d2.ok ? 1u << kGeomB8D2 : 0) |
      (b8d4.ok ? 1u << kGeomB8D4 : 0) | (b4d1.ok ? 1u << kGeomB4D1 : 0) |
      (b4d2.ok ? 1u << kGeomB4D2 : 0) | (b2d1.ok ? 1u << kGeomB2D1 : 0));
}

void merge_block_u32(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t mask) {
  std::uint32_t m = mask;
  while (m != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(m));
    m &= m - 1;
    std::memcpy(dst + i * 4, src + i * 4, 4);
  }
}

const KernelTable kTable = {"scalar", &endurance_decrement64, &masked_min_u16, &scan_words,
                            &merge_block_u32};

}  // namespace scalar

const char* backend_name() { return active::kTable.name; }

std::span<const KernelTable* const> compiled_backends() {
#if PCMSIM_SIMD_HAS_AVX2
  static const bool have_avx2 = __builtin_cpu_supports("avx2");
  static const KernelTable* const with_avx2[] = {&scalar::kTable, &fallback::kTable,
                                                 &avx2::kTable};
  if (have_avx2) return {with_avx2, 3};
#endif
  static const KernelTable* const portable[] = {&scalar::kTable, &fallback::kTable};
  return {portable, 2};
}

}  // namespace pcmsim::simd
