#include "common/cli.hpp"

#include <stdexcept>

namespace pcmsim {

namespace {

bool looks_like_key(const std::string& s) { return s.rfind("--", 0) == 0 && s.size() > 2; }

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string tok = argv[i];
    if (!looks_like_key(tok)) {
      throw std::invalid_argument("unexpected argument: " + tok);
    }
    tok = tok.substr(2);
    const auto eq = tok.find('=');
    if (eq != std::string::npos) {
      kv_[tok.substr(0, eq)] = tok.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a key; else a bare flag.
    if (i + 1 < argc && !looks_like_key(argv[i + 1])) {
      kv_[tok] = argv[++i];
    } else {
      kv_[tok] = "";
    }
  }
}

bool CliArgs::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string CliArgs::get(const std::string& key, const std::string& dflt) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? dflt : it->second;
}

std::int64_t CliArgs::get_int(const std::string& key, std::int64_t dflt) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? dflt : std::stoll(it->second);
}

double CliArgs::get_double(const std::string& key, double dflt) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? dflt : std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& key, bool dflt) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return dflt;
  return it->second.empty() || it->second == "1" || it->second == "true";
}

}  // namespace pcmsim
