#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <utility>

#include "common/assert.hpp"

namespace pcmsim {

void RunningStat::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

ScopedTimer::ScopedTimer(std::string label, RunningStat* sink)
    : label_(std::move(label)), sink_(sink), start_(std::chrono::steady_clock::now()) {}

double ScopedTimer::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

ScopedTimer::~ScopedTimer() {
  const double s = elapsed_seconds();
  if (sink_) sink_->add(s);
  if (!label_.empty()) {
    std::cerr << "[time] " << label_ << ": " << s << " s\n";
  }
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  expects(hi > lo, "histogram range must be non-empty");
  expects(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x, std::uint64_t weight) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bucket_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = acc + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = counts_[i] ? (target - acc) / static_cast<double>(counts_[i]) : 0.0;
      return bucket_lo(i) + frac * width_;
    }
    acc = next;
  }
  return hi_;
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bucket_hi(i) <= x) {
      acc += static_cast<double>(counts_[i]);
    } else if (bucket_lo(i) < x) {
      acc += static_cast<double>(counts_[i]) * (x - bucket_lo(i)) / width_;
    }
  }
  return acc / static_cast<double>(total_);
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<double>(it - xs_.begin()) / static_cast<double>(xs_.size());
}

double EmpiricalCdf::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  expects(!xs_.empty(), "quantile of empty sample set");
  ensure_sorted();
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

}  // namespace pcmsim
