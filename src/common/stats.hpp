// Streaming statistics accumulators and histograms for simulator metrics.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pcmsim {

/// Welford-style streaming mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to
/// the edge buckets so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Value below which `q` (in [0,1]) of the mass lies (linear within bucket).
  [[nodiscard]] double quantile(double q) const;

  /// Cumulative fraction of samples with value <= x.
  [[nodiscard]] double cdf(double x) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Monotonic wall-clock timer for bench runs. On destruction the elapsed
/// seconds are added to the optional RunningStat sink and, when a label was
/// given, reported on stderr as "[time] <label>: <seconds> s" — table output
/// on stdout stays clean.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label, RunningStat* sink = nullptr);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (monotonic clock).
  [[nodiscard]] double elapsed_seconds() const;

 private:
  std::string label_;
  RunningStat* sink_;
  std::chrono::steady_clock::time_point start_;
};

/// Exact empirical CDF helper for modest sample counts (used for Fig 11).
class EmpiricalCdf {
 public:
  void add(double x) { xs_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x) const;
  /// q-quantile of the sample set, q in [0,1].
  [[nodiscard]] double quantile(double q) const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = true;
  void ensure_sorted() const;
};

}  // namespace pcmsim
