// Deterministic parallel execution primitives for sweeps and Monte Carlo.
//
// A lazily-started global thread pool runs `parallel_for(n, fn)` /
// `parallel_map(items, fn)` regions. Results are written to caller-indexed
// slots, so output ordering — and therefore any reduction done in index
// order — is independent of the worker count. Callers that need randomness
// must derive an independent stream per index (see mix64 in common/rng.hpp);
// together these two rules make every parallelized experiment bit-identical
// to its serial run at any thread count.
//
// Worker-count precedence: set_parallel_threads() (the `--threads` CLI flag)
// > the PCMSIM_THREADS environment variable > hardware_concurrency.
//
// Nested regions run inline on the calling worker (no deadlock, no
// oversubscription), and a region opened while another thread's region is
// active also runs inline — a busy pool degrades to serial execution (same
// results, by the slot rule above) instead of blocking, so regions compose
// freely across threads (e.g. a prefetch worker decoding inside a
// parallel_map task). Exceptions thrown by `fn` cancel the remaining indices
// and are rethrown on the calling thread.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace pcmsim {

class CliArgs;

/// Worker count the next parallel region will use (>= 1).
[[nodiscard]] std::size_t parallel_threads();

/// Overrides the worker count; 0 restores automatic selection
/// (PCMSIM_THREADS env, else hardware_concurrency). Safe to call between
/// regions; an active pool is drained and restarted at the new size.
void set_parallel_threads(std::size_t n);

/// Applies a `--threads N` CLI flag (if present) and returns the resolved
/// worker count. Flag > PCMSIM_THREADS env > hardware_concurrency.
std::size_t set_threads_from_cli(const CliArgs& args);

/// Runs fn(0) .. fn(n-1), distributed over the pool. Blocks until all
/// indices completed. Rethrows the first exception thrown by any fn.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// Maps fn over items, preserving order: out[i] = fn(items[i]).
template <typename T, typename Fn>
[[nodiscard]] auto parallel_map(const std::vector<T>& items, Fn&& fn) {
  using R = std::decay_t<std::invoke_result_t<Fn&, const T&>>;
  std::vector<R> out(items.size());
  parallel_for(items.size(), [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

}  // namespace pcmsim
