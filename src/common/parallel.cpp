#include "common/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "common/cli.hpp"

namespace pcmsim {

namespace {

std::size_t env_threads() {
  const char* s = std::getenv("PCMSIM_THREADS");
  if (!s) return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(s, &end, 10);
  return (end != s && *end == '\0') ? static_cast<std::size_t>(v) : 0;
}

std::size_t auto_threads() {
  const std::size_t env = env_threads();
  if (env > 0) return env;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

/// Set while a thread is inside a parallel region; nested regions run inline.
thread_local bool tls_in_region = false;

class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t threads() {
    std::lock_guard lk(lifecycle_m_);
    return override_ > 0 ? override_ : auto_threads();
  }

  void set_threads(std::size_t n) {
    std::lock_guard run_lk(run_m_);  // never resize under an active region
    stop_workers();
    std::lock_guard lk(lifecycle_m_);
    override_ = n;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t width = threads();
    if (width <= 1 || n == 1 || tls_in_region) {
      run_inline(n, fn);
      return;
    }

    // One region at a time. If another thread's region is already active, run
    // inline instead of blocking on it: that region's tasks may themselves be
    // waiting on this thread's output (a PrefetchTraceSource worker feeding a
    // parallel_map task does exactly this), so blocking here can deadlock.
    // Results are written to caller-indexed slots, so the serial fallback is
    // bit-identical to the fanned-out execution.
    std::unique_lock run_lk(run_m_, std::try_to_lock);
    if (!run_lk.owns_lock()) {
      run_inline(n, fn);
      return;
    }
    ensure_started(width - 1);  // the caller is the width-th worker

    Job job;
    job.fn = &fn;
    job.n = n;
    {
      std::lock_guard lk(m_);
      job_ = &job;
      ++job_seq_;
    }
    cv_.notify_all();

    tls_in_region = true;
    work_on(job);
    tls_in_region = false;

    {
      std::unique_lock lk(m_);
      done_cv_.wait(lk, [&] { return job.attached == 0; });
      job_ = nullptr;
    }
    if (job.error) std::rethrow_exception(job.error);
  }

  ~Pool() { stop_workers(); }

 private:
  static void run_inline(std::size_t n, const std::function<void(std::size_t)>& fn) {
    struct Restore {
      bool prev;
      ~Restore() { tls_in_region = prev; }
    } restore{tls_in_region};
    (void)restore;
    tls_in_region = true;
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }

  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::size_t attached = 0;  ///< workers inside work_on; guarded by m_
    std::exception_ptr error;  ///< first failure; guarded by err_m
    std::mutex err_m;
  };

  static void work_on(Job& job) {
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) return;
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard lk(job.err_m);
        if (!job.error) job.error = std::current_exception();
        job.next.store(job.n, std::memory_order_relaxed);  // cancel the rest
      }
    }
  }

  void worker_main() {
    tls_in_region = true;  // anything a task spawns runs inline
    std::unique_lock lk(m_);
    std::uint64_t seen_seq = 0;
    for (;;) {
      cv_.wait(lk, [&] { return stop_ || (job_ != nullptr && job_seq_ != seen_seq); });
      if (stop_) return;
      seen_seq = job_seq_;
      Job* job = job_;
      ++job->attached;
      lk.unlock();
      work_on(*job);
      lk.lock();
      --job->attached;
      done_cv_.notify_all();
    }
  }

  /// Caller holds run_m_.
  void ensure_started(std::size_t nworkers) {
    if (workers_.size() == nworkers) return;
    stop_workers();
    {
      std::lock_guard lk(m_);
      stop_ = false;
    }
    workers_.reserve(nworkers);
    for (std::size_t i = 0; i < nworkers; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  void stop_workers() {
    {
      std::lock_guard lk(m_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
    workers_.clear();
  }

  std::mutex lifecycle_m_;  ///< guards override_
  std::size_t override_ = 0;

  std::mutex run_m_;  ///< serializes regions and pool resizes
  std::vector<std::thread> workers_;

  std::mutex m_;  ///< guards job_/job_seq_/stop_/attached
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  std::uint64_t job_seq_ = 0;
  bool stop_ = false;
};

}  // namespace

std::size_t parallel_threads() { return Pool::instance().threads(); }

void set_parallel_threads(std::size_t n) { Pool::instance().set_threads(n); }

std::size_t set_threads_from_cli(const CliArgs& args) {
  const std::int64_t n = args.get_int("threads", 0);
  if (n > 0) set_parallel_threads(static_cast<std::size_t>(n));
  return parallel_threads();
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  Pool::instance().run(n, fn);
}

}  // namespace pcmsim
