// Cheap per-stage cycle counters for the write path.
//
// Answers "where did the nanoseconds go" per stage (trace-gen, compress,
// heuristic, place, program, ECC, gap-move) instead of end-to-end only, so
// perf PRs can attribute their wins. Two gates keep it out of the way:
//  * compile-time: the PCMSIM_PROFILE CMake option (default ON) compiles the
//    instrumentation; when OFF every hook is an empty inline no-op;
//  * run-time: counters only tick when enabled via prof::set_enabled(true)
//    (benches expose `--profile`; the PCMSIM_PROFILE environment variable
//    also enables it). Disabled cost is one relaxed load per scope.
//
// Timing uses rdtsc on x86 (reported as "ticks"); stages nest — kGapMove
// includes the place/program/ECC work of the migrated line — so tick totals
// attribute time but do not sum to wall clock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string_view>

#if defined(PCMSIM_PROFILE) && !defined(__x86_64__) && !defined(__i386__)
#include <chrono>
#endif

namespace pcmsim::prof {

enum class Stage : std::uint8_t {
  kTraceGen,   ///< synthetic write-back generation (workload/trace)
  kTraceWait,  ///< consumer-side wait+copy under PrefetchTraceSource
  kTierFilter, ///< DRAM front-tier filtering (tier/front_tier: lookup,
               ///< fingerprint, dedup, victim choice; excludes PCM forwards)
  kCompress,   ///< best-of(BDI,FPC) compression
  kHeuristic,  ///< Fig-8 write decision
  kPlace,      ///< window placement search (find/fits)
  kProgram,    ///< differential write of the window segments
  kEcc,        ///< scheme encode/decode (functional-verify mode)
  kGapMove,    ///< Start-Gap line migration (includes nested stages)
  kCount,
};
inline constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

[[nodiscard]] std::string_view stage_name(Stage s);

#ifdef PCMSIM_PROFILE

inline constexpr bool kCompiled = true;

struct StageCounter {
  std::atomic<std::uint64_t> ticks{0};
  std::atomic<std::uint64_t> calls{0};
};

namespace detail {
extern std::array<StageCounter, kStageCount> g_counters;
extern std::atomic<bool> g_enabled;

inline std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
#endif
}
}  // namespace detail

[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);
void reset();

/// RAII stage scope: samples the cycle counter on entry/exit when enabled.
class ScopedStage {
 public:
  explicit ScopedStage(Stage s) : stage_(s), on_(enabled()) {
    if (on_) t0_ = detail::now_ticks();
  }
  ~ScopedStage() {
    if (on_) {
      auto& c = detail::g_counters[static_cast<std::size_t>(stage_)];
      c.ticks.fetch_add(detail::now_ticks() - t0_, std::memory_order_relaxed);
      c.calls.fetch_add(1, std::memory_order_relaxed);
    }
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  Stage stage_;
  bool on_;
  std::uint64_t t0_ = 0;
};

[[nodiscard]] std::uint64_t stage_ticks(Stage s);
[[nodiscard]] std::uint64_t stage_calls(Stage s);

#else  // !PCMSIM_PROFILE — every hook compiles away.

inline constexpr bool kCompiled = false;

[[nodiscard]] inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void reset() {}

class ScopedStage {
 public:
  explicit ScopedStage(Stage) {}
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;
};

[[nodiscard]] inline constexpr std::uint64_t stage_ticks(Stage) { return 0; }
[[nodiscard]] inline constexpr std::uint64_t stage_calls(Stage) { return 0; }

#endif  // PCMSIM_PROFILE

/// Emits the accumulated counters as one JSON object, e.g.
/// {"unit": "rdtsc_ticks", "compress": {"ticks": N, "calls": M}, ...}.
/// `indent` is prepended to each stage line (benches embed the object in a
/// larger JSON document). Emits {"enabled": false} when profiling is off.
void dump_json(std::ostream& os, std::string_view indent = "  ");

}  // namespace pcmsim::prof
