// Fundamental value types shared by every pcmsim module.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace pcmsim {

/// Size of a memory line / LLC block in bytes (fixed at 64 B, as in the paper).
inline constexpr std::size_t kBlockBytes = 64;
/// Size of a memory line in bits (512).
inline constexpr std::size_t kBlockBits = kBlockBytes * 8;
/// Extra per-line storage provided by the ninth (ECC) chip of an ECC-DIMM.
inline constexpr std::size_t kEccBits = 64;

/// Physical or logical line address (line granularity, not byte granularity).
using LineAddr = std::uint64_t;

/// A 64-byte data block as handed between LLC, memory controller and PCM.
using Block = std::array<std::uint8_t, kBlockBytes>;

/// Returns an all-zero block.
[[nodiscard]] constexpr Block zero_block() { return Block{}; }

/// Reads a little-endian unsigned value of Width bytes at byte offset `off`.
template <typename T>
[[nodiscard]] inline T load_le(std::span<const std::uint8_t> bytes, std::size_t off) {
  T v{};
  std::memcpy(&v, bytes.data() + off, sizeof(T));
  return v;  // host is little-endian on every supported platform
}

/// Writes a little-endian unsigned value at byte offset `off`.
template <typename T>
inline void store_le(std::span<std::uint8_t> bytes, std::size_t off, T v) {
  std::memcpy(bytes.data() + off, &v, sizeof(T));
}

/// Number of differing bits between two equally sized byte ranges.
[[nodiscard]] inline std::size_t hamming_distance(std::span<const std::uint8_t> a,
                                                  std::span<const std::uint8_t> b) {
  std::size_t n = a.size() < b.size() ? a.size() : b.size();
  std::size_t d = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t x;
    std::uint64_t y;
    std::memcpy(&x, a.data() + i, 8);
    std::memcpy(&y, b.data() + i, 8);
    d += static_cast<std::size_t>(std::popcount(x ^ y));
  }
  for (; i < n; ++i) {
    d += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(a[i] ^ b[i])));
  }
  return d;
}

/// Number of differing bits between two blocks.
[[nodiscard]] inline std::size_t hamming_distance(const Block& a, const Block& b) {
  return hamming_distance(std::span<const std::uint8_t>(a), std::span<const std::uint8_t>(b));
}

/// Total set bits in a byte range.
[[nodiscard]] inline std::size_t popcount(std::span<const std::uint8_t> a) {
  std::size_t d = 0;
  for (auto byte : a) d += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(byte)));
  return d;
}

/// Extracts bit `i` (LSB-first within each byte) from a byte range.
[[nodiscard]] inline bool get_bit(std::span<const std::uint8_t> bytes, std::size_t i) {
  return (bytes[i / 8] >> (i % 8)) & 1u;
}

/// Sets bit `i` (LSB-first within each byte) in a byte range.
inline void set_bit(std::span<std::uint8_t> bytes, std::size_t i, bool v) {
  const std::uint8_t mask = static_cast<std::uint8_t>(1u << (i % 8));
  if (v) {
    bytes[i / 8] = static_cast<std::uint8_t>(bytes[i / 8] | mask);
  } else {
    bytes[i / 8] = static_cast<std::uint8_t>(bytes[i / 8] & ~mask);
  }
}

}  // namespace pcmsim
