// Deterministic, fast random number generation for simulation.
//
// xoshiro256** (Blackman & Vigna) seeded through splitmix64. All simulation
// randomness flows through Rng so runs are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace pcmsim {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mixing hash (useful for per-address deterministic noise).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// Combining hashes: derive an independent stream seed from a base seed plus
/// one or two indices (e.g. mix64(seed, app_index, mode) for a sweep cell).
/// Each combination feeds through a full splitmix64 round, so adjacent
/// indices yield uncorrelated streams.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  return mix64(mix64(a) ^ b);
}

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix64(mix64(a, b) ^ c);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<std::uint64_t>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    expects(bound > 0, "next_below requires bound > 0");
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bool(double p) { return next_double() < p; }

  /// Standard normal via Box-Muller (caches the second variate).
  [[nodiscard]] double next_normal();

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double next_normal(double mean, double stddev) {
    return mean + stddev * next_normal();
  }

  /// Lognormal such that the *resulting* distribution has the given mean and
  /// coefficient of variation (stddev/mean). Used for PCM endurance sampling.
  [[nodiscard]] double next_lognormal_mean_cov(double mean, double cov);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace pcmsim
