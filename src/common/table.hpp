// Plain-text and CSV table rendering for the benchmark harness output.
//
// Every figure/table bench prints its rows through TablePrinter so the
// regenerated results look uniform and are machine-parseable with --csv.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pcmsim {

/// Collects rows of stringly-typed cells and renders them aligned or as CSV.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::uint64_t v);

  /// Renders an ASCII table with a title line.
  void print(std::ostream& os, const std::string& title) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pcmsim
