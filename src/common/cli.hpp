// Minimal command-line option parsing shared by the bench/example binaries.
//
// Supports `--flag`, `--key value` and `--key=value` forms; anything else is
// rejected so typos surface instead of silently running a default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pcmsim {

class CliArgs {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& dflt) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  [[nodiscard]] double get_double(const std::string& key, double dflt) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool dflt = false) const;

  /// Name of the binary (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> kv_;
};

}  // namespace pcmsim
