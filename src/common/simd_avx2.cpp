// AVX2 backend: 256-bit lanes, x86-64 only. This TU is always compiled with
// -mavx2 (see src/common/CMakeLists.txt) so the differential tests can run
// it even when another backend is active; runtime entry from outside the
// active alias goes through compiled_backends(), which checks cpuid.
#include "common/simd.hpp"

#if PCMSIM_SIMD_HAS_AVX2

#include <immintrin.h>

#include <cstring>

namespace pcmsim::simd {

namespace avx2 {

namespace {

/// Per-lane bit selectors 1<<0 .. 1<<15 for expanding a 16-bit mask.
__m256i bit16() {
  return _mm256_setr_epi16(0x0001, 0x0002, 0x0004, 0x0008, 0x0010, 0x0020, 0x0040, 0x0080,
                           0x0100, 0x0200, 0x0400, 0x0800, 0x1000, 0x2000, 0x4000,
                           static_cast<short>(0x8000));
}

/// Expands 16 mask bits into 16 u16 lanes of 0xFFFF / 0x0000.
__m256i spread16(unsigned m16) {
  const __m256i sel = bit16();
  const __m256i bm = _mm256_set1_epi16(static_cast<short>(m16));
  return _mm256_cmpeq_epi16(_mm256_and_si256(bm, sel), sel);
}

/// True-lane test for (v + k) & high == 0 per u32 lane — "fits in the low
/// delta bytes as a signed value" for value/delta range checks.
__m256i fits_epi32(__m256i v, std::uint32_t k, std::uint32_t high) {
  const __m256i t = _mm256_and_si256(_mm256_add_epi32(v, _mm256_set1_epi32(static_cast<int>(k))),
                                     _mm256_set1_epi32(static_cast<int>(high)));
  return _mm256_cmpeq_epi32(t, _mm256_setzero_si256());
}

__m256i fits_epi16(__m256i v, short k, short high) {
  const __m256i t =
      _mm256_and_si256(_mm256_add_epi16(v, _mm256_set1_epi16(k)), _mm256_set1_epi16(high));
  return _mm256_cmpeq_epi16(t, _mm256_setzero_si256());
}

__m256i fits_epi64(__m256i v, std::uint64_t k, std::uint64_t high) {
  const __m256i t = _mm256_and_si256(
      _mm256_add_epi64(v, _mm256_set1_epi64x(static_cast<long long>(k))),
      _mm256_set1_epi64x(static_cast<long long>(high)));
  return _mm256_cmpeq_epi64(t, _mm256_setzero_si256());
}

unsigned mask_pd(__m256i cmp) {
  return static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(cmp)));
}

unsigned mask_ps(__m256i cmp) {
  return static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(cmp)));
}

/// 32-bit lane mask (bit per u16 lane, both vectors) from two epi16 compares.
std::uint32_t mask16x32(__m256i cmp_lo, __m256i cmp_hi) {
  // packs interleaves 128-bit halves; 0xD8 restores memory lane order.
  const __m256i packed =
      _mm256_permute4x64_epi64(_mm256_packs_epi16(cmp_lo, cmp_hi), 0xD8);
  return static_cast<std::uint32_t>(_mm256_movemask_epi8(packed));
}

}  // namespace

void endurance_decrement64(std::uint16_t* lanes, std::uint64_t mask) {
  for (unsigned g = 0; g < 4; ++g) {
    const auto m16 = static_cast<unsigned>((mask >> (16 * g)) & 0xFFFFu);
    if (m16 == 0) continue;
    auto* p = reinterpret_cast<__m256i*>(lanes + 16 * g);
    const __m256i e = _mm256_loadu_si256(p);
    // cmpeq lanes are 0xFFFF == -1: adding them is the masked decrement.
    _mm256_storeu_si256(p, _mm256_add_epi16(e, spread16(m16)));
  }
}

std::uint16_t masked_min_u16(const std::uint16_t* lanes, const std::uint64_t* skip,
                             std::size_t words64) {
  __m256i acc = _mm256_set1_epi16(-1);  // 0xFFFF
  for (std::size_t w = 0; w < words64; ++w) {
    const std::uint64_t s = skip[w];
    for (unsigned g = 0; g < 4; ++g) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes + w * 64 + 16 * g));
      const auto m16 = static_cast<unsigned>((s >> (16 * g)) & 0xFFFFu);
      // Skipped lanes saturate to 0xFFFF and never win the min.
      acc = _mm256_min_epu16(acc, _mm256_or_si256(v, spread16(m16)));
    }
  }
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  // phminposuw: horizontal unsigned u16 minimum in lane 0.
  const __m128i min = _mm_minpos_epu16(_mm_min_epu16(lo, hi));
  return static_cast<std::uint16_t>(_mm_extract_epi16(min, 0));
}

void scan_words(const std::uint64_t* w, BlockScan& out) {
  const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + 4));
  const __m256i zero = _mm256_setzero_si256();

  const __m256i any = _mm256_or_si256(a, b);
  out.all_zero = _mm256_testz_si256(any, any) != 0;
  const __m256i first = _mm256_permute4x64_epi64(a, 0x00);
  const __m256i repm =
      _mm256_and_si256(_mm256_cmpeq_epi64(a, first), _mm256_cmpeq_epi64(b, first));
  out.rep8 = mask_pd(repm) == 0xFu;

  // FPC classes: all seven pattern tests as parallel range checks, then a
  // priority blend from lowest-precedence class down to zero.
  __m256i cls32[2];
  __m256i zm[2];
  const __m256i vecs[2] = {a, b};
  for (unsigned q = 0; q < 2; ++q) {
    const __m256i v = vecs[q];
    const __m256i m0 = _mm256_cmpeq_epi32(v, zero);
    const __m256i m1 = fits_epi32(v, 0x8u, 0xFFFFFFF0u);
    const __m256i m2 = fits_epi32(v, 0x80u, 0xFFFFFF00u);
    const __m256i m3 = fits_epi32(v, 0x8000u, 0xFFFF0000u);
    const __m256i m4 =
        _mm256_cmpeq_epi32(_mm256_and_si256(v, _mm256_set1_epi32(0xFFFF)), zero);
    // Both halfwords sign-extend from 8 bits: one epi16 add + mask, compared
    // as a whole u32 lane so the test demands both halves pass.
    const __m256i t5 = _mm256_and_si256(_mm256_add_epi16(v, _mm256_set1_epi16(0x80)),
                                        _mm256_set1_epi16(static_cast<short>(0xFF00)));
    const __m256i m5 = _mm256_cmpeq_epi32(t5, zero);
    const __m256i rot =
        _mm256_or_si256(_mm256_slli_epi32(v, 8), _mm256_srli_epi32(v, 24));
    const __m256i m6 = _mm256_cmpeq_epi32(rot, v);
    __m256i cls = _mm256_set1_epi32(7);
    cls = _mm256_blendv_epi8(cls, _mm256_set1_epi32(6), m6);
    cls = _mm256_blendv_epi8(cls, _mm256_set1_epi32(5), m5);
    cls = _mm256_blendv_epi8(cls, _mm256_set1_epi32(4), m4);
    cls = _mm256_blendv_epi8(cls, _mm256_set1_epi32(3), m3);
    cls = _mm256_blendv_epi8(cls, _mm256_set1_epi32(2), m2);
    cls = _mm256_blendv_epi8(cls, _mm256_set1_epi32(1), m1);
    cls = _mm256_andnot_si256(m0, cls);
    cls32[q] = cls;
    zm[q] = m0;
  }
  const auto zmask =
      static_cast<std::uint16_t>(mask_ps(zm[0]) | (mask_ps(zm[1]) << 8));
  out.zero_mask = zmask;

  // Pack the 16 u32 class lanes to 16 bytes in memory order.
  const __m256i p16 = _mm256_packus_epi32(cls32[0], cls32[1]);
  const __m256i p8 = _mm256_packus_epi16(p16, zero);
  const __m256i ordered =
      _mm256_permutevar8x32_epi32(p8, _mm256_setr_epi32(0, 4, 1, 5, 2, 3, 6, 7));
  const __m128i clsb = _mm256_castsi256_si128(ordered);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out.word_class.data()), clsb);

  // Non-zero word bits via a byte-shuffle LUT + horizontal byte sum; zero
  // words contribute through the shared run-folding helper.
  const __m128i lut = _mm_setr_epi8(0, 3 + 4, 3 + 8, 3 + 16, 3 + 16, 3 + 16, 3 + 8, 3 + 32, 0,
                                    0, 0, 0, 0, 0, 0, 0);
  const __m128i perword = _mm_shuffle_epi8(lut, clsb);
  const __m128i sums = _mm_sad_epu8(perword, _mm_setzero_si128());
  const auto word_bits = static_cast<std::uint32_t>(_mm_extract_epi64(sums, 0) +
                                                    _mm_extract_epi64(sums, 1));
  out.fpc_bits = word_bits + fpc_zero_run_bits(zmask);

  std::uint8_t geom = 0;

  // Base-8 geometries: u64 lanes; wrapped subtraction matches the oracle's
  // int64 delta exactly.
  struct Geom64 {
    unsigned bit;
    std::uint64_t k;
    std::uint64_t high;
  };
  constexpr Geom64 kG8[3] = {{kGeomB8D1, 0x80ull, ~0xFFull},
                             {kGeomB8D2, 0x8000ull, ~0xFFFFull},
                             {kGeomB8D4, 0x80000000ull, ~0xFFFFFFFFull}};
  for (const auto& g : kG8) {
    const unsigned over = (~mask_pd(fits_epi64(a, g.k, g.high)) & 0xFu) |
                          ((~mask_pd(fits_epi64(b, g.k, g.high)) & 0xFu) << 4);
    bool ok = over == 0;
    if (!ok) {
      const __m256i base =
          _mm256_set1_epi64x(static_cast<long long>(w[std::countr_zero(over)]));
      const unsigned good = (mask_pd(fits_epi64(_mm256_sub_epi64(a, base), g.k, g.high))) |
                            (mask_pd(fits_epi64(_mm256_sub_epi64(b, base), g.k, g.high)) << 4);
      ok = (over & ~good) == 0;
    }
    if (ok) geom = static_cast<std::uint8_t>(geom | (1u << g.bit));
  }

  // Base-4 geometries: u32 lanes with an explicit signed-overflow test on the
  // subtraction, exact for the oracle's int64 differences.
  struct Geom32 {
    unsigned bit;
    std::uint32_t k;
    std::uint32_t high;
  };
  constexpr Geom32 kG4[2] = {{kGeomB4D1, 0x80u, 0xFFFFFF00u}, {kGeomB4D2, 0x8000u, 0xFFFF0000u}};
  for (const auto& g : kG4) {
    const unsigned over = (~mask_ps(fits_epi32(a, g.k, g.high)) & 0xFFu) |
                          ((~mask_ps(fits_epi32(b, g.k, g.high)) & 0xFFu) << 8);
    bool ok = over == 0;
    if (!ok) {
      std::uint32_t bw;
      std::memcpy(&bw, reinterpret_cast<const std::uint8_t*>(w) + 4 * std::countr_zero(over),
                  4);
      const __m256i base = _mm256_set1_epi32(static_cast<int>(bw));
      unsigned good = 0;
      for (unsigned q = 0; q < 2; ++q) {
        const __m256i v = vecs[q];
        const __m256i diff = _mm256_sub_epi32(v, base);
        const __m256i ovf =
            _mm256_and_si256(_mm256_xor_si256(v, base), _mm256_xor_si256(v, diff));
        const __m256i lane_ok =
            _mm256_andnot_si256(_mm256_srai_epi32(ovf, 31), fits_epi32(diff, g.k, g.high));
        good |= mask_ps(lane_ok) << (8 * q);
      }
      ok = (over & ~good) == 0;
    }
    if (ok) geom = static_cast<std::uint8_t>(geom | (1u << g.bit));
  }

  // Base-2 geometry (delta 1): 32 u16 lanes, same overflow-checked shape.
  {
    const std::uint32_t over = ~mask16x32(fits_epi16(a, 0x80, static_cast<short>(0xFF00)),
                                          fits_epi16(b, 0x80, static_cast<short>(0xFF00)));
    bool ok = over == 0;
    if (!ok) {
      std::uint16_t bw;
      std::memcpy(&bw, reinterpret_cast<const std::uint8_t*>(w) + 2 * std::countr_zero(over),
                  2);
      const __m256i base = _mm256_set1_epi16(static_cast<short>(bw));
      __m256i lane_ok[2];
      for (unsigned q = 0; q < 2; ++q) {
        const __m256i v = vecs[q];
        const __m256i diff = _mm256_sub_epi16(v, base);
        const __m256i ovf =
            _mm256_and_si256(_mm256_xor_si256(v, base), _mm256_xor_si256(v, diff));
        lane_ok[q] = _mm256_andnot_si256(_mm256_srai_epi16(ovf, 15),
                                         fits_epi16(diff, 0x80, static_cast<short>(0xFF00)));
      }
      const std::uint32_t good = mask16x32(lane_ok[0], lane_ok[1]);
      ok = (over & ~good) == 0;
    }
    if (ok) geom = static_cast<std::uint8_t>(geom | (1u << kGeomB2D1));
  }
  out.geom_ok = geom;
}

void merge_block_u32(std::uint8_t* dst, const std::uint8_t* src, std::uint16_t mask) {
  const __m256i bit8lo = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
  const __m256i bit8hi = _mm256_slli_epi32(bit8lo, 8);
  const __m256i bm = _mm256_set1_epi32(mask);
  const __m256i sel_lo = _mm256_cmpeq_epi32(_mm256_and_si256(bm, bit8lo), bit8lo);
  const __m256i sel_hi = _mm256_cmpeq_epi32(_mm256_and_si256(bm, bit8hi), bit8hi);
  auto* d = reinterpret_cast<__m256i*>(dst);
  const auto* s = reinterpret_cast<const __m256i*>(src);
  _mm256_storeu_si256(
      d, _mm256_blendv_epi8(_mm256_loadu_si256(d), _mm256_loadu_si256(s), sel_lo));
  _mm256_storeu_si256(d + 1, _mm256_blendv_epi8(_mm256_loadu_si256(d + 1),
                                                _mm256_loadu_si256(s + 1), sel_hi));
}

const KernelTable kTable = {"avx2", &endurance_decrement64, &masked_min_u16, &scan_words,
                            &merge_block_u32};

}  // namespace avx2

}  // namespace pcmsim::simd

#endif  // PCMSIM_SIMD_HAS_AVX2
