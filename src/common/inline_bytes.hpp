// Fixed-capacity inline byte buffer for the allocation-free write path.
//
// Compressed images and ECC window images are always at most one 64-byte
// line, so the steady-state write path (compress -> place -> store) keeps
// them on the stack instead of paying a heap round-trip per write.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace pcmsim {

/// Vector-like byte buffer with inline storage for up to kBlockBytes bytes.
/// Growing past the capacity is a contract violation, not a reallocation.
class InlineBytes {
 public:
  using value_type = std::uint8_t;
  static constexpr std::size_t kCapacity = kBlockBytes;

  constexpr InlineBytes() = default;
  explicit InlineBytes(std::span<const std::uint8_t> src) { assign(src); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::uint8_t* data() { return buf_.data(); }
  [[nodiscard]] const std::uint8_t* data() const { return buf_.data(); }
  [[nodiscard]] std::uint8_t* begin() { return buf_.data(); }
  [[nodiscard]] const std::uint8_t* begin() const { return buf_.data(); }
  [[nodiscard]] std::uint8_t* end() { return buf_.data() + size_; }
  [[nodiscard]] const std::uint8_t* end() const { return buf_.data() + size_; }
  [[nodiscard]] std::uint8_t& operator[](std::size_t i) { return buf_[i]; }
  [[nodiscard]] const std::uint8_t& operator[](std::size_t i) const { return buf_[i]; }
  [[nodiscard]] std::uint8_t& back() { return buf_[size_ - 1]; }
  [[nodiscard]] const std::uint8_t& back() const { return buf_[size_ - 1]; }

  void clear() { size_ = 0; }

  /// Grows (zero-filling new bytes) or shrinks to exactly `n` bytes.
  void resize(std::size_t n) {
    expects(n <= kCapacity, "InlineBytes capacity exceeded");
    if (n > size_) std::memset(buf_.data() + size_, 0, n - size_);
    size_ = static_cast<std::uint8_t>(n);
  }

  void assign(std::size_t n, std::uint8_t value) {
    expects(n <= kCapacity, "InlineBytes capacity exceeded");
    std::memset(buf_.data(), value, n);
    size_ = static_cast<std::uint8_t>(n);
  }

  void assign(std::span<const std::uint8_t> src) {
    expects(src.size() <= kCapacity, "InlineBytes capacity exceeded");
    std::memcpy(buf_.data(), src.data(), src.size());
    size_ = static_cast<std::uint8_t>(src.size());
  }

  void push_back(std::uint8_t value) {
    expects(size_ < kCapacity, "InlineBytes capacity exceeded");
    buf_[size_++] = value;
  }

  operator std::span<const std::uint8_t>() const { return {buf_.data(), size_}; }
  operator std::span<std::uint8_t>() { return {buf_.data(), size_}; }

  friend bool operator==(const InlineBytes& a, const InlineBytes& b) {
    return a.size_ == b.size_ && std::memcmp(a.buf_.data(), b.buf_.data(), a.size_) == 0;
  }

  /// Comparison against any contiguous byte range (e.g. std::vector in tests).
  friend bool operator==(const InlineBytes& a, std::span<const std::uint8_t> b) {
    return a.size_ == b.size() &&
           (a.size_ == 0 || std::memcmp(a.buf_.data(), b.data(), a.size_) == 0);
  }

 private:
  std::array<std::uint8_t, kCapacity> buf_;  // first size_ bytes are live
  std::uint8_t size_ = 0;
};

}  // namespace pcmsim
