// Zipfian sampling over a finite universe, used to model hot/cold memory
// line popularity in the synthetic workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace pcmsim {

/// Samples ranks in [0, n) with P(rank k) proportional to 1 / (k+1)^theta.
///
/// Uses a precomputed CDF with binary search; construction is O(n), sampling
/// O(log n). theta = 0 degenerates to the uniform distribution.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta);

  /// Draws one rank (0 is the most popular).
  [[nodiscard]] std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t universe() const { return n_; }
  [[nodiscard]] double theta() const { return theta_; }

  /// Probability mass of a single rank.
  [[nodiscard]] double pmf(std::uint64_t rank) const;

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

}  // namespace pcmsim
