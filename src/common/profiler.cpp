#include "common/profiler.hpp"

#include <cstdlib>

namespace pcmsim::prof {

std::string_view stage_name(Stage s) {
  switch (s) {
    case Stage::kTraceGen: return "trace_gen";
    case Stage::kTraceWait: return "trace_wait";
    case Stage::kTierFilter: return "tier_filter";
    case Stage::kCompress: return "compress";
    case Stage::kHeuristic: return "heuristic";
    case Stage::kPlace: return "place";
    case Stage::kProgram: return "program";
    case Stage::kEcc: return "ecc";
    case Stage::kGapMove: return "gap_move";
    case Stage::kCount: break;
  }
  return "?";
}

#ifdef PCMSIM_PROFILE

namespace detail {
std::array<StageCounter, kStageCount> g_counters;
std::atomic<bool> g_enabled{false};

namespace {
// Honour the PCMSIM_PROFILE environment variable so any binary (not just the
// benches with a --profile flag) can be profiled without a rebuild.
const bool g_env_init = [] {
  const char* e = std::getenv("PCMSIM_PROFILE");
  if (e != nullptr && *e != '\0' && *e != '0') g_enabled.store(true);
  return true;
}();
}  // namespace
}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

void reset() {
  for (auto& c : detail::g_counters) {
    c.ticks.store(0, std::memory_order_relaxed);
    c.calls.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t stage_ticks(Stage s) {
  return detail::g_counters[static_cast<std::size_t>(s)].ticks.load(std::memory_order_relaxed);
}

std::uint64_t stage_calls(Stage s) {
  return detail::g_counters[static_cast<std::size_t>(s)].calls.load(std::memory_order_relaxed);
}

#endif  // PCMSIM_PROFILE

void dump_json(std::ostream& os, std::string_view indent) {
  if (!kCompiled || !enabled()) {
    os << "{\"enabled\": false}";
    return;
  }
#if defined(__x86_64__) || defined(__i386__)
  constexpr std::string_view unit = "rdtsc_ticks";
#else
  constexpr std::string_view unit = "steady_clock_ns";
#endif
  os << "{\n" << indent << "  \"unit\": \"" << unit << "\"";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const auto s = static_cast<Stage>(i);
    os << ",\n"
       << indent << "  \"" << stage_name(s) << "\": {\"ticks\": " << stage_ticks(s)
       << ", \"calls\": " << stage_calls(s) << "}";
  }
  os << "\n" << indent << "}";
}

}  // namespace pcmsim::prof
