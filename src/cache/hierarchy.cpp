#include "cache/hierarchy.hpp"

#include "common/assert.hpp"

namespace pcmsim {

CmpHierarchy::CmpHierarchy(const HierarchyConfig& config, WritebackSink sink)
    : config_(config), l2_("L2", config.l2_bytes, config.l2_assoc), sink_(std::move(sink)) {
  expects(config.cores >= 1, "need at least one core");
  l1s_.reserve(config.cores);
  for (std::uint32_t c = 0; c < config.cores; ++c) {
    l1s_.emplace_back("L1d-" + std::to_string(c), config.l1_bytes, config.l1_assoc);
  }
}

void CmpHierarchy::access(std::uint32_t core, LineAddr line, bool is_store,
                          const Block* store_data, const Block& fill) {
  CacheLevel& l1 = l1s_.at(core);

  // L1 lookup. On an L1 miss the fill content comes from L2 (or memory).
  if (l1.contains(line)) {
    (void)l1.access(line, is_store, store_data, fill);
    return;
  }

  // L2 lookup; L2 is the ordering point for the shared data (snooping MOESI
  // reduces to this in our single-writer synthetic streams).
  Block l2_fill = fill;
  if (const Block* in_l2 = l2_.peek(line)) l2_fill = *in_l2;
  const auto l2_result = l2_.access(line, false, nullptr, l2_fill);
  handle_l2_eviction(l2_result);

  const auto l1_result = l1.access(line, is_store, store_data, l2_fill);
  if (l1_result.writeback) {
    // Dirty L1 victim lands in L2 (write-back, inclusive: line is resident).
    const auto r = l2_.access(l1_result.writeback->line, true, &l1_result.writeback->data,
                              l1_result.writeback->data);
    handle_l2_eviction(r);
  }
}

void CmpHierarchy::handle_l2_eviction(const CacheLevel::AccessResult& result) {
  if (!result.evicted) return;
  // Inclusive hierarchy: every L2 eviction back-invalidates the L1 copies.
  // A dirty copy at ANY level must reach memory; the L1 copy (most recent)
  // supersedes the L2 content.
  std::optional<Block> dirty;
  if (result.writeback) dirty = result.writeback->data;
  for (auto& l1 : l1s_) {
    if (auto l1_wb = l1.invalidate(*result.evicted)) dirty = l1_wb->data;
  }
  if (dirty) {
    ++wb_count_;
    if (sink_) sink_(Writeback{*result.evicted, *dirty});
  }
}

void CmpHierarchy::reset_stats() {
  l2_.reset_stats();
  for (auto& l1 : l1s_) l1.reset_stats();
  wb_count_ = 0;
}

CmpSimulator::CmpSimulator(const AppProfile& app, const HierarchyConfig& config,
                           std::uint64_t seed, CmpHierarchy::WritebackSink sink)
    : app_(app),
      config_(config),
      hierarchy_(config, std::move(sink)),
      rng_(mix64(seed ^ 0xCACE)),
      zipf_(app.working_set_lines, app.zipf_theta),
      resident_zipf_(std::min<std::uint64_t>(
                         app.working_set_lines,
                         std::max<std::uint64_t>(
                             256, config.l2_bytes / kBlockBytes / 2 / config.cores)),
                     app.zipf_theta),
      classes_(app_, seed),
      seed_(seed) {
  // Two-level locality: most accesses recirculate in a cache-resident hot
  // subset; the "far" stream sweeps the full working set and produces the
  // LLC misses. Its probability is solved from the app's target WPKI
  // (Table III): wpki ~= 1000 x access-rate x store-fraction x P(far).
  // The far stream samples strictly outside the resident set (see run()), so
  // each far STORE is one eventual dirty eviction; far LOADS also evict, and
  // their victims are dirty with probability ~ store_fraction, so a far
  // access yields ~ sf + (1-sf)*sf = sf*(2-sf) write-backs on average.
  const double sf = app.store_fraction;
  far_prob_ = std::min(
      1.0, app.wpki / (1000.0 * app.mem_access_per_inst * sf * (2.0 - sf)));
}

Block CmpSimulator::value_of(LineAddr line) const {
  const auto it = states_.find(line);
  const std::uint32_t shape =
      it != states_.end() ? it->second.shape
                          : static_cast<std::uint32_t>(mix64(line ^ seed_ ^ 0xBEEFull));
  const std::uint32_t version = it != states_.end() ? it->second.version : 0;
  return generate_value(classes_.of(line), line, shape, version);
}

Block CmpSimulator::next_store_value(LineAddr line) {
  auto [it, fresh] = states_.try_emplace(line);
  if (fresh) {
    it->second.shape = static_cast<std::uint32_t>(mix64(line ^ seed_ ^ 0xBEEFull));
    it->second.version = 0;
  } else {
    ++it->second.version;
    if (rng_.next_bool(app_.shape_redraw_prob)) {
      it->second.shape = static_cast<std::uint32_t>(rng_());
      it->second.version = 0;
    }
  }
  return value_of(line);
}

void CmpSimulator::run(std::uint64_t instructions_per_core) {
  // Cores interleave instruction-by-instruction; each runs the same program
  // over a disjoint (hashed) slice of the working set (Section IV).
  for (std::uint64_t inst = 0; inst < instructions_per_core; ++inst) {
    for (std::uint32_t core = 0; core < config_.cores; ++core) {
      ++instructions_;
      if (!rng_.next_bool(app_.mem_access_per_inst)) continue;
      // Far ranks are offset past the resident universe so they always leave
      // the cached footprint; resident ranks recirculate within it.
      const std::uint64_t rank =
          rng_.next_bool(far_prob_)
              ? resident_zipf_.universe() + zipf_.sample(rng_)
              : resident_zipf_.sample(rng_);
      const LineAddr line =
          mix64(rank ^ (static_cast<std::uint64_t>(core) << 48) ^ seed_ * 31);
      const bool is_store = rng_.next_bool(app_.store_fraction);
      const Block fill = value_of(line);
      if (is_store) {
        const Block data = next_store_value(line);
        hierarchy_.access(core, line, true, &data, fill);
      } else {
        hierarchy_.access(core, line, false, nullptr, fill);
      }
    }
  }
}

void CmpSimulator::reset_stats() {
  hierarchy_.reset_stats();
  instructions_ = 0;
}

double CmpSimulator::wpki() const {
  return instructions_ ? 1000.0 * static_cast<double>(hierarchy_.writebacks_to_memory()) /
                             static_cast<double>(instructions_)
                       : 0.0;
}

double CmpSimulator::l2_miss_rate() const {
  const auto& l2 = hierarchy_.l2();
  const double total = static_cast<double>(l2.hits() + l2.misses());
  return total > 0 ? static_cast<double>(l2.misses()) / total : 0.0;
}

}  // namespace pcmsim
