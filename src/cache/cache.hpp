// Set-associative write-back cache model with LRU replacement.
//
// Substitute for the paper's gem5/Ruby memory hierarchy (Table II): its job
// is to filter the cores' load/store streams into the LLC write-back traffic
// (with 64-byte data payloads) that drives the PCM lifetime analysis. Data
// contents are tracked so the write-backs carry real values to compress.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pcmsim {

/// A dirty line evicted from a cache level.
struct Writeback {
  LineAddr line = 0;
  Block data{};
};

class CacheLevel {
 public:
  /// `size_bytes` total capacity; `assoc` ways; 64-byte lines.
  CacheLevel(std::string name, std::size_t size_bytes, std::size_t assoc);

  struct AccessResult {
    bool hit = false;
    std::optional<LineAddr> evicted;     ///< any valid victim that was replaced
    std::optional<Writeback> writeback;  ///< its data, when the victim was dirty
  };

  /// Looks up `line`; on miss, installs it with `fill` content. On a store,
  /// the line's content is replaced by `store_data` and marked dirty.
  AccessResult access(LineAddr line, bool is_store, const Block* store_data, const Block& fill);

  /// Probe without side effects.
  [[nodiscard]] bool contains(LineAddr line) const;
  /// Current content of a resident line (nullptr if absent).
  [[nodiscard]] const Block* peek(LineAddr line) const;

  /// Invalidates a resident line, returning it if dirty (back-invalidation).
  std::optional<Writeback> invalidate(LineAddr line);

  /// Zeroes hit/miss/writeback counters (content stays warm).
  void reset_stats() { hits_ = misses_ = writebacks_ = 0; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const { return writebacks_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t sets() const { return sets_; }
  [[nodiscard]] std::size_t assoc() const { return assoc_; }

 private:
  struct Way {
    LineAddr tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // larger = more recently used
    Block data{};
  };

  [[nodiscard]] std::size_t set_of(LineAddr line) const;

  std::string name_;
  std::size_t sets_;
  std::size_t assoc_;
  std::vector<Way> ways_;  // sets_ x assoc_, row-major
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace pcmsim
