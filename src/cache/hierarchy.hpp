// 16-core CMP cache hierarchy (Table II): private L1 data caches over a
// shared, inclusive L2; dirty L2 victims are the PCM write-back traffic.
//
// This is the gem5/Ruby substitute: per-core synthetic load/store streams
// (address locality and value contents from the app profile) are filtered by
// the hierarchy, and the emitted write-backs — with real 64-byte payloads —
// feed the lifetime simulator or a trace file. WPKI falls out of the same
// run (Table III).
#pragma once

#include <functional>
#include <unordered_map>

#include "cache/cache.hpp"
#include "common/rng.hpp"
#include "common/zipf.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {

struct HierarchyConfig {
  std::uint32_t cores = 16;
  std::size_t l1_bytes = 32 * 1024;  ///< per core, 2-way (Table II)
  std::size_t l1_assoc = 2;
  std::size_t l2_bytes = 4 * 1024 * 1024;  ///< shared, 8-way
  std::size_t l2_assoc = 8;
};

class CmpHierarchy {
 public:
  using WritebackSink = std::function<void(const Writeback&)>;

  CmpHierarchy(const HierarchyConfig& config, WritebackSink sink);

  /// One load/store from `core`. `fill` supplies memory content on an L2
  /// miss; `store_data` is the line's new content for stores.
  void access(std::uint32_t core, LineAddr line, bool is_store, const Block* store_data,
              const Block& fill);

  /// Zeroes all statistics; cache contents stay warm.
  void reset_stats();

  [[nodiscard]] const CacheLevel& l2() const { return l2_; }
  [[nodiscard]] const CacheLevel& l1(std::uint32_t core) const { return l1s_.at(core); }
  [[nodiscard]] std::uint64_t writebacks_to_memory() const { return wb_count_; }

 private:
  void handle_l2_eviction(const CacheLevel::AccessResult& result);

  HierarchyConfig config_;
  std::vector<CacheLevel> l1s_;
  CacheLevel l2_;
  WritebackSink sink_;
  std::uint64_t wb_count_ = 0;
};

/// Drives a CmpHierarchy with the app profile's synthetic core streams and
/// measures WPKI; optionally forwards write-backs to a sink (lifetime sim or
/// trace file).
class CmpSimulator {
 public:
  CmpSimulator(const AppProfile& app, const HierarchyConfig& config, std::uint64_t seed,
               CmpHierarchy::WritebackSink sink = nullptr);

  // Non-copyable: the class assigner points into the stored profile copy.
  CmpSimulator(const CmpSimulator&) = delete;
  CmpSimulator& operator=(const CmpSimulator&) = delete;

  /// Runs `instructions` per core (all cores run the same program, Section IV).
  void run(std::uint64_t instructions_per_core);

  /// Zeroes WPKI/miss statistics after warmup; cache contents stay warm.
  void reset_stats();

  [[nodiscard]] double wpki() const;
  [[nodiscard]] double l2_miss_rate() const;
  [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
  [[nodiscard]] const CmpHierarchy& hierarchy() const { return hierarchy_; }

 private:
  struct LineState {
    std::uint32_t shape = 0;
    std::uint32_t version = 0;
  };

  [[nodiscard]] Block value_of(LineAddr line) const;
  [[nodiscard]] Block next_store_value(LineAddr line);

  AppProfile app_;
  HierarchyConfig config_;
  CmpHierarchy hierarchy_;
  Rng rng_;
  ZipfSampler zipf_;           ///< full working set ("far" stream)
  ZipfSampler resident_zipf_;  ///< cache-resident hot subset
  double far_prob_;            ///< P(access leaves the resident set)
  ClassAssigner classes_;
  std::unordered_map<LineAddr, LineState> states_;
  std::uint64_t instructions_ = 0;
  std::uint64_t seed_;
};

}  // namespace pcmsim
