#include "cache/cache.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace pcmsim {

CacheLevel::CacheLevel(std::string name, std::size_t size_bytes, std::size_t assoc)
    : name_(std::move(name)), sets_(size_bytes / kBlockBytes / assoc), assoc_(assoc) {
  expects(assoc >= 1, "associativity must be at least 1");
  expects(sets_ >= 1, "cache must have at least one set");
  expects(std::has_single_bit(sets_), "set count must be a power of two");
  ways_.resize(sets_ * assoc_);
}

std::size_t CacheLevel::set_of(LineAddr line) const {
  // Hash the index bits so folded synthetic regions spread over all sets.
  return static_cast<std::size_t>(mix64(line) & (sets_ - 1));
}

CacheLevel::AccessResult CacheLevel::access(LineAddr line, bool is_store,
                                            const Block* store_data, const Block& fill) {
  AccessResult result;
  const std::size_t base = set_of(line) * assoc_;
  ++tick_;

  Way* victim = nullptr;
  for (std::size_t w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + w];
    if (way.valid && way.tag == line) {
      ++hits_;
      way.lru = tick_;
      if (is_store) {
        expects(store_data != nullptr, "store access requires data");
        way.data = *store_data;
        way.dirty = true;
      }
      result.hit = true;
      return result;
    }
    // Victim preference: any invalid way, else the least recently used.
    if (victim == nullptr || (victim->valid && (!way.valid || way.lru < victim->lru))) {
      victim = &way;
    }
  }

  ++misses_;
  if (victim->valid) {
    result.evicted = victim->tag;
    if (victim->dirty) {
      ++writebacks_;
      result.writeback = Writeback{victim->tag, victim->data};
    }
  }
  victim->valid = true;
  victim->tag = line;
  victim->lru = tick_;
  victim->data = fill;
  victim->dirty = false;
  if (is_store) {
    expects(store_data != nullptr, "store access requires data");
    victim->data = *store_data;
    victim->dirty = true;
  }
  return result;
}

bool CacheLevel::contains(LineAddr line) const {
  const std::size_t base = set_of(line) * assoc_;
  for (std::size_t w = 0; w < assoc_; ++w) {
    const Way& way = ways_[base + w];
    if (way.valid && way.tag == line) return true;
  }
  return false;
}

const Block* CacheLevel::peek(LineAddr line) const {
  const std::size_t base = set_of(line) * assoc_;
  for (std::size_t w = 0; w < assoc_; ++w) {
    const Way& way = ways_[base + w];
    if (way.valid && way.tag == line) return &way.data;
  }
  return nullptr;
}

std::optional<Writeback> CacheLevel::invalidate(LineAddr line) {
  const std::size_t base = set_of(line) * assoc_;
  for (std::size_t w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + w];
    if (way.valid && way.tag == line) {
      way.valid = false;
      if (way.dirty) {
        way.dirty = false;
        return Writeback{way.tag, way.data};
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace pcmsim
