// Shared experiment configuration for the bench harness: one place defines
// the simulation scale used by every lifetime-based figure so results are
// directly comparable across benches.
#pragma once

#include <string>
#include <vector>

#include "sim/lifetime.hpp"

namespace pcmsim {

/// Scale of a lifetime experiment. Normalized lifetimes are insensitive to
/// the scale (see bench/ablate_endurance_scale); it only trades wall-clock
/// time against statistical smoothness.
struct ExperimentScale {
  double endurance_mean = 400;
  std::uint64_t physical_lines = 512;
  double endurance_cov = 0.15;
  std::uint64_t seed = 1;

  /// ~4x faster, noisier — for smoke runs.
  [[nodiscard]] static ExperimentScale fast();
  /// The scale used for the committed EXPERIMENTS.md numbers.
  [[nodiscard]] static ExperimentScale paper();
  /// Resolve from --fast / --paper style flags.
  [[nodiscard]] static ExperimentScale from_flag(const std::string& which);
};

/// One (workload, mode) lifetime measurement.
struct LifetimeCell {
  std::string app;
  SystemMode mode;
  LifetimeResult result;
  LifetimeConfig config;  ///< as run (for months conversion)
};

/// Runs `modes` x `apps` lifetime simulations at the given scale, one cell
/// per thread-pool task. Every cell's RNG streams derive from
/// mix64(scale.seed, app_index, mode), so results are bit-identical at any
/// thread count. Progress lines go to stderr so table output stays clean.
/// `ecc_spec` is a registry scheme spec (ecc/registry.hpp).
[[nodiscard]] std::vector<LifetimeCell> run_lifetime_matrix(
    const std::vector<std::string>& apps, const std::vector<SystemMode>& modes,
    const ExperimentScale& scale, const std::string& ecc_spec = "ecp6");

/// Compat shim for pre-registry callers holding the deprecated EccKind.
[[nodiscard]] inline std::vector<LifetimeCell> run_lifetime_matrix(
    const std::vector<std::string>& apps, const std::vector<SystemMode>& modes,
    const ExperimentScale& scale, EccKind ecc) {
  return run_lifetime_matrix(apps, modes, scale, std::string(canonical_spec(ecc)));
}

/// Convenience: the result for (app, mode) in a matrix.
[[nodiscard]] const LifetimeCell& matrix_cell(const std::vector<LifetimeCell>& cells,
                                              const std::string& app, SystemMode mode);

/// Names of all 15 workloads in the paper's figure order.
[[nodiscard]] std::vector<std::string> all_app_names();

}  // namespace pcmsim
