#include "sim/lifetime.hpp"

#include <algorithm>
#include <array>
#include <optional>

#include "common/assert.hpp"
#include "trace/prefetch_source.hpp"
#include "trace/sampled_source.hpp"
#include "trace/trace_source.hpp"

namespace pcmsim {

namespace {

/// Core loop shared by every source kind: drain `source` in batches into the
/// system until 50% of lines are dead, the write cap is hit, or a finite
/// trace runs dry. Batching amortizes the source's virtual call and profiler
/// scope; event generation is independent of system state, so pre-generating
/// a batch leaves the serviced write sequence identical to one-at-a-time.
LifetimeResult run_lifetime_on(PcmSystem& system, TraceSource& source,
                               const LifetimeConfig& config) {
  const std::uint64_t logical_lines = system.logical_lines();
  std::array<WritebackEvent, 256> batch;

  LifetimeResult result;
  bool exhausted = false;
  std::optional<FrontTier> tier;
  if (config.tier.enabled()) {
    tier.emplace(config.tier, [&system, logical_lines](const FrontTier::Forward& fwd) {
      (void)system.write(fwd.line % logical_lines, fwd.data);
    });
  }
  // With a tier, max_writes caps *offered* write-backs (the workload-facing
  // traffic) rather than PCM-serviced writes; without one the two counters
  // are the same stream, and polling the offered count keeps this loop
  // byte-identical to the pre-tier simulator (PcmSystem::write bumps
  // stats().writes unconditionally, even for writes a dead region rejects).
  std::uint64_t offered = 0;
  while (!result.reached_failure && !exhausted && offered < config.max_writes) {
    const std::uint64_t remaining = config.max_writes - offered;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(batch.size(), remaining));
    const std::size_t n = source.next_batch(std::span(batch.data(), want));
    if (n == 0) {
      exhausted = true;  // finite trace ran dry before failure/cap
      break;
    }
    for (std::size_t i = 0; i < n; ++i) {
      // Folding keeps replayed captures valid on regions smaller than the one
      // they were recorded against; for synthetic sources the line is already
      // in range and the modulo is the identity.
      if (tier) {
        (void)tier->put(batch[i].line % logical_lines, batch[i].data);
      } else {
        (void)system.write(batch[i].line % logical_lines, batch[i].data);
      }
      ++offered;
      if (offered % config.check_interval == 0 && system.failed()) {
        result.reached_failure = true;
        break;
      }
    }
  }
  // The tier is deliberately NOT flushed at end of run: lines still resident
  // in DRAM at PCM death never cost PCM writes, and flushing into a failed
  // region would only distort the failure-time statistics.
  result.offered_writes = offered;
  if (tier) {
    tier->finish_timing();
    result.tier = tier->stats();
    if (const MemoryController* mc = tier->controller()) {
      result.tier_write_latency_cycles = mc->write_latency().mean();
    }
  }
  // The polled check can miss a failure that lands between the last interval
  // boundary and the max_writes cap; settle it with one final check.
  if (!result.reached_failure && system.failed()) result.reached_failure = true;
  const SystemStats& st = system.stats();
  result.writes_to_failure = st.writes;
  result.programmed_bits = static_cast<std::uint64_t>(st.flips_per_write.sum());
  result.uncorrectable_events = st.uncorrectable_events;
  result.recycled_lines = st.recycled_lines;
  result.mean_faults_at_death = st.faults_at_death.mean();
  result.mean_flips_per_write = st.flips_per_write.mean();
  const double stored = static_cast<double>(st.compressed_writes + st.uncompressed_writes);
  result.compressed_fraction =
      stored > 0 ? static_cast<double>(st.compressed_writes) / stored : 0.0;
  result.mean_compressed_size = st.compressed_size.mean();
  result.energy_pj_per_write =
      st.writes > 0 ? system.array().write_energy_pj() / static_cast<double>(st.writes) : 0.0;
  return result;
}

}  // namespace

LifetimeResult run_lifetime(TraceSource& source, const LifetimeConfig& config) {
  PcmSystem system(config.system);
  if (config.prefetch) {
    PrefetchTraceSource prefetched(source);
    return run_lifetime_on(system, prefetched, config);
  }
  return run_lifetime_on(system, source, config);
}

LifetimeResult run_lifetime(const AppProfile& app, const LifetimeConfig& config,
                            std::uint64_t trace_seed) {
  PcmSystem system(config.system);
  SampledTraceSource source(app, system.logical_lines(), trace_seed);
  if (config.prefetch) {
    PrefetchTraceSource prefetched(source);
    return run_lifetime_on(system, prefetched, config);
  }
  return run_lifetime_on(system, source, config);
}

LifetimeResult run_lifetime_legacy(const AppProfile& app, const LifetimeConfig& config,
                                   std::uint64_t trace_seed) {
  PcmSystem system(config.system);
  GeneratorTraceSource source(app, system.logical_lines(), trace_seed);
  return run_lifetime_on(system, source, config);
}

double lifetime_months(const LifetimeResult& result, const LifetimeConfig& config,
                       const AppProfile& app, const MonthsModel& model) {
  // Writes the full-size memory would absorb before 50% capacity death:
  // simulated writes, scaled by endurance (linear in per-cell cycles) and by
  // region size (a k-times larger region absorbs k times the traffic for the
  // same per-line wear profile).
  const double endurance_scale = model.physical_endurance / config.system.device.endurance_mean;
  const double region_scale = static_cast<double>(model.physical_lines) /
                              static_cast<double>(config.system.device.lines);
  const double physical_writes =
      static_cast<double>(result.writes_to_failure) * endurance_scale * region_scale;

  // Write-back rate of the 16-core CMP running this workload (Table II/III).
  const double instr_per_sec = model.cores * model.clock_hz * model.ipc;
  const double writes_per_sec = instr_per_sec * app.wpki / 1000.0;
  expects(writes_per_sec > 0, "workload write rate must be positive");

  const double seconds = physical_writes / writes_per_sec;
  return seconds / (30.44 * 24 * 3600);
}

}  // namespace pcmsim
