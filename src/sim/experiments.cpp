#include "sim/experiments.hpp"

#include <iostream>
#include <mutex>
#include <sstream>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace pcmsim {

ExperimentScale ExperimentScale::fast() {
  ExperimentScale s;
  s.endurance_mean = 300;
  s.physical_lines = 384;
  return s;
}

ExperimentScale ExperimentScale::paper() {
  ExperimentScale s;
  s.endurance_mean = 1000;
  s.physical_lines = 1024;
  return s;
}

ExperimentScale ExperimentScale::from_flag(const std::string& which) {
  if (which == "fast") return fast();
  if (which == "paper") return paper();
  return ExperimentScale{};
}

std::vector<LifetimeCell> run_lifetime_matrix(const std::vector<std::string>& apps,
                                              const std::vector<SystemMode>& modes,
                                              const ExperimentScale& scale,
                                              const std::string& ecc_spec) {
  struct CellSpec {
    std::string app;
    SystemMode mode;
    std::size_t app_index;
  };
  std::vector<CellSpec> specs;
  specs.reserve(apps.size() * modes.size());
  for (std::size_t ai = 0; ai < apps.size(); ++ai) {
    for (const auto mode : modes) specs.push_back(CellSpec{apps[ai], mode, ai});
  }

  // Each (app, mode) cell is an independent simulation with its own RNG
  // streams derived from mix64(seed, app_index, mode): no state is shared
  // across cells, so the matrix is bit-identical at any thread count (and a
  // cell's result does not depend on which other cells run alongside it).
  std::mutex log_m;
  auto cells = parallel_map(specs, [&](const CellSpec& spec) {
    const AppProfile& app = profile_by_name(spec.app);
    const std::uint64_t cell_seed =
        mix64(scale.seed, spec.app_index, static_cast<std::uint64_t>(spec.mode));
    LifetimeConfig lc;
    lc.system.mode = spec.mode;
    lc.system.ecc_spec = ecc_spec;
    lc.system.device.lines = scale.physical_lines;
    lc.system.device.endurance_mean = scale.endurance_mean;
    lc.system.device.endurance_cov = scale.endurance_cov;
    lc.system.device.seed = mix64(cell_seed, 17);
    lc.system.seed = cell_seed;
    lc.max_writes = 4'000'000'000ull;
    const auto result = run_lifetime(app, lc, mix64(cell_seed, 99));
    {
      std::ostringstream line;
      line << "[lifetime] " << spec.app << " / " << to_string(spec.mode) << ": "
           << result.writes_to_failure << " writes\n";
      const std::lock_guard lk(log_m);
      std::cerr << line.str();
    }
    return LifetimeCell{spec.app, spec.mode, result, lc};
  });
  return cells;
}

const LifetimeCell& matrix_cell(const std::vector<LifetimeCell>& cells, const std::string& app,
                                SystemMode mode) {
  for (const auto& c : cells) {
    if (c.app == app && c.mode == mode) return c;
  }
  expects(false, "missing matrix cell");
  return cells.front();
}

std::vector<std::string> all_app_names() {
  std::vector<std::string> names;
  for (const auto& app : spec2006_profiles()) names.push_back(app.name);
  return names;
}

}  // namespace pcmsim
