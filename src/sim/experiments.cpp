#include "sim/experiments.hpp"

#include <iostream>

#include "common/assert.hpp"

namespace pcmsim {

ExperimentScale ExperimentScale::fast() {
  ExperimentScale s;
  s.endurance_mean = 300;
  s.physical_lines = 384;
  return s;
}

ExperimentScale ExperimentScale::paper() {
  ExperimentScale s;
  s.endurance_mean = 1000;
  s.physical_lines = 1024;
  return s;
}

ExperimentScale ExperimentScale::from_flag(const std::string& which) {
  if (which == "fast") return fast();
  if (which == "paper") return paper();
  return ExperimentScale{};
}

std::vector<LifetimeCell> run_lifetime_matrix(const std::vector<std::string>& apps,
                                              const std::vector<SystemMode>& modes,
                                              const ExperimentScale& scale, EccKind ecc) {
  std::vector<LifetimeCell> cells;
  for (const auto& name : apps) {
    const AppProfile& app = profile_by_name(name);
    for (const auto mode : modes) {
      LifetimeConfig lc;
      lc.system.mode = mode;
      lc.system.ecc = ecc;
      lc.system.device.lines = scale.physical_lines;
      lc.system.device.endurance_mean = scale.endurance_mean;
      lc.system.device.endurance_cov = scale.endurance_cov;
      lc.system.device.seed = scale.seed + 17;
      lc.system.seed = scale.seed;
      lc.max_writes = 4'000'000'000ull;
      std::cerr << "[lifetime] " << name << " / " << to_string(mode) << "..." << std::flush;
      const auto result = run_lifetime(app, lc, scale.seed + 99);
      std::cerr << " " << result.writes_to_failure << " writes\n";
      cells.push_back(LifetimeCell{name, mode, result, lc});
    }
  }
  return cells;
}

const LifetimeCell& matrix_cell(const std::vector<LifetimeCell>& cells, const std::string& app,
                                SystemMode mode) {
  for (const auto& c : cells) {
    if (c.app == app && c.mode == mode) return c;
  }
  expects(false, "missing matrix cell");
  return cells.front();
}

std::vector<std::string> all_app_names() {
  std::vector<std::string> names;
  for (const auto& app : spec2006_profiles()) names.push_back(app.name);
  return names;
}

}  // namespace pcmsim
