#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <vector>

#include "common/assert.hpp"

namespace pcmsim {

bool mc_trial_survives(const HardErrorScheme& scheme, std::size_t data_bytes,
                       std::span<const std::uint16_t> positions, bool wrap_windows) {
  const std::size_t window_bits = data_bytes * 8;

  // Faults per byte, for a fast per-window fault count via prefix sums.
  std::array<std::uint16_t, kBlockBytes + 1> prefix{};
  for (auto p : positions) ++prefix[p / 8 + 1];
  for (std::size_t i = 1; i <= kBlockBytes; ++i) {
    prefix[i] = static_cast<std::uint16_t>(prefix[i] + prefix[i - 1]);
  }
  const auto count_in = [&](std::size_t start_byte) -> std::size_t {
    const std::size_t end = start_byte + data_bytes;
    if (end <= kBlockBytes) return prefix[end] - prefix[start_byte];
    // wrapping window
    return static_cast<std::size_t>(prefix[kBlockBytes] - prefix[start_byte]) +
           prefix[end - kBlockBytes];
  };

  const std::size_t starts = wrap_windows
                                 ? kBlockBytes
                                 : (data_bytes <= kBlockBytes ? kBlockBytes - data_bytes + 1 : 0);
  const std::size_t guaranteed = scheme.guaranteed_correctable();

  std::vector<FaultCell> faults;
  for (std::size_t start = 0; start < starts; ++start) {
    const std::size_t n = count_in(start);
    if (n <= guaranteed) return true;  // every pattern of that size is correctable

    // Build window-relative fault positions for the full tolerance check.
    faults.clear();
    const std::size_t start_bit = start * 8;
    for (auto p : positions) {
      const std::size_t rel =
          p >= start_bit ? p - start_bit : p + kBlockBits - start_bit;  // wrap distance
      if (rel < window_bits) faults.push_back(FaultCell{static_cast<std::uint16_t>(rel), false});
    }
    std::sort(faults.begin(), faults.end(),
              [](const FaultCell& a, const FaultCell& b) { return a.pos < b.pos; });
    if (scheme.can_tolerate(faults, window_bits)) return true;
  }
  return false;
}

double mc_failure_probability(const HardErrorScheme& scheme, std::size_t data_bytes,
                              std::size_t nerrors, const MonteCarloConfig& config, Rng& rng) {
  expects(data_bytes >= 1 && data_bytes <= kBlockBytes, "data size must be 1..64 bytes");
  expects(nerrors <= kBlockBits, "cannot inject more faults than cells");

  // Partial Fisher-Yates over the 512 cell indices, reused across trials.
  std::array<std::uint16_t, kBlockBits> cells{};
  std::iota(cells.begin(), cells.end(), std::uint16_t{0});

  std::size_t failures = 0;
  std::vector<std::uint16_t> positions(nerrors);
  for (std::size_t t = 0; t < config.trials; ++t) {
    for (std::size_t i = 0; i < nerrors; ++i) {
      const std::size_t j = i + rng.next_below(kBlockBits - i);
      std::swap(cells[i], cells[j]);
      positions[i] = cells[i];
    }
    if (!mc_trial_survives(scheme, data_bytes, positions, config.wrap_windows)) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(config.trials);
}

}  // namespace pcmsim
