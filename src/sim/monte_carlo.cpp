#include "sim/monte_carlo.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/parallel.hpp"

namespace pcmsim {

namespace {

/// Per-trial buffers reused across a whole chunk of trials so the inner loop
/// allocates nothing.
struct TrialScratch {
  std::vector<FaultCell> faults;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> windows;  ///< (count, start)
};

bool trial_survives(const HardErrorScheme& scheme, std::size_t data_bytes,
                    std::span<const std::uint16_t> positions, bool wrap_windows,
                    TrialScratch& scratch) {
  const std::size_t guaranteed = scheme.guaranteed_correctable();
  // Every pattern at or below the guaranteed bound is correctable no matter
  // where the window lands — skip the window sweep entirely.
  if (positions.size() <= guaranteed) return true;

  const std::size_t window_bits = data_bytes * 8;

  // Faults per byte, for a fast per-window fault count via prefix sums.
  std::array<std::uint16_t, kBlockBytes + 1> prefix{};
  for (auto p : positions) ++prefix[p / 8 + 1];
  for (std::size_t i = 1; i <= kBlockBytes; ++i) {
    prefix[i] = static_cast<std::uint16_t>(prefix[i] + prefix[i - 1]);
  }
  const auto count_in = [&](std::size_t start_byte) -> std::size_t {
    const std::size_t end = start_byte + data_bytes;
    if (end <= kBlockBytes) return prefix[end] - prefix[start_byte];
    // wrapping window
    return static_cast<std::size_t>(prefix[kBlockBytes] - prefix[start_byte]) +
           prefix[end - kBlockBytes];
  };

  const std::size_t starts = wrap_windows
                                 ? kBlockBytes
                                 : (data_bytes <= kBlockBytes ? kBlockBytes - data_bytes + 1 : 0);

  // Pass 1: prefix-sum counts only. A window whose count already passed the
  // guaranteed bound decides the trial without the full tolerance check.
  scratch.windows.clear();
  for (std::size_t start = 0; start < starts; ++start) {
    const std::size_t n = count_in(start);
    if (n <= guaranteed) return true;
    scratch.windows.emplace_back(static_cast<std::uint16_t>(n),
                                 static_cast<std::uint16_t>(start));
  }

  // Pass 2: full per-pattern check, fewest-fault windows first — the sweep
  // stops at the first tolerable window, and low-count windows are the most
  // likely to tolerate, so most can_tolerate calls are skipped. Order cannot
  // change the outcome: the result is "does any window tolerate".
  std::stable_sort(scratch.windows.begin(), scratch.windows.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  auto& faults = scratch.faults;
  for (const auto& [n, start] : scratch.windows) {
    faults.clear();
    const std::size_t start_bit = static_cast<std::size_t>(start) * 8;
    for (auto p : positions) {
      const std::size_t rel =
          p >= start_bit ? p - start_bit : p + kBlockBits - start_bit;  // wrap distance
      if (rel < window_bits) faults.push_back(FaultCell{static_cast<std::uint16_t>(rel), false});
    }
    std::sort(faults.begin(), faults.end(),
              [](const FaultCell& a, const FaultCell& b) { return a.pos < b.pos; });
    if (scheme.can_tolerate(faults, window_bits)) return true;
  }
  return false;
}

std::uint64_t chunk_failures(const HardErrorScheme& scheme, std::size_t data_bytes,
                             std::size_t nerrors, bool wrap_windows, std::size_t trials,
                             Rng& rng) {
  // Partial Fisher-Yates over the 512 cell indices, reused across trials.
  std::array<std::uint16_t, kBlockBits> cells{};
  std::iota(cells.begin(), cells.end(), std::uint16_t{0});

  TrialScratch scratch;
  std::vector<std::uint16_t> positions(nerrors);
  std::uint64_t failures = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < nerrors; ++i) {
      const std::size_t j = i + rng.next_below(kBlockBits - i);
      std::swap(cells[i], cells[j]);
      positions[i] = cells[i];
    }
    if (!trial_survives(scheme, data_bytes, positions, wrap_windows, scratch)) ++failures;
  }
  return failures;
}

}  // namespace

bool mc_trial_survives(const HardErrorScheme& scheme, std::size_t data_bytes,
                       std::span<const std::uint16_t> positions, bool wrap_windows) {
  TrialScratch scratch;
  return trial_survives(scheme, data_bytes, positions, wrap_windows, scratch);
}

double mc_failure_probability(const HardErrorScheme& scheme, std::size_t data_bytes,
                              std::size_t nerrors, const MonteCarloConfig& config, Rng& rng) {
  expects(data_bytes >= 1 && data_bytes <= kBlockBytes, "data size must be 1..64 bytes");
  expects(nerrors <= kBlockBits, "cannot inject more faults than cells");
  expects(config.trials > 0, "need at least one trial");

  // Trials shard into fixed-size chunks; chunk c owns the splitmix64-derived
  // stream mix64(base, c), so the failure count of every chunk — and the
  // index-ordered sum below — is the same at any thread count.
  const std::uint64_t base = rng();  // single draw, whatever the chunking
  const std::size_t chunk = std::max<std::size_t>(std::size_t{1}, config.chunk_trials);
  const std::size_t nchunks = (config.trials + chunk - 1) / chunk;

  std::vector<std::uint64_t> failures(nchunks, 0);
  parallel_for(nchunks, [&](std::size_t c) {
    Rng chunk_rng(mix64(base, c));
    const std::size_t begin = c * chunk;
    const std::size_t count = std::min(chunk, config.trials - begin);
    failures[c] = chunk_failures(scheme, data_bytes, nerrors, config.wrap_windows, count,
                                 chunk_rng);
  });
  const std::uint64_t total = std::accumulate(failures.begin(), failures.end(), std::uint64_t{0});
  return static_cast<double>(total) / static_cast<double>(config.trials);
}

}  // namespace pcmsim
