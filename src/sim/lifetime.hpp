// Trace-driven PCM lifetime simulation (paper Section IV, "Fault model").
//
// A calibrated write-back stream drives a PcmSystem until 50% of the region's
// lines are dead (the paper's system-failure criterion) or a write cap is
// hit. Endurance is scaled down so a run finishes in seconds; because every
// wear mechanism is linear in per-cell write counts, normalized lifetimes
// (Fig 10/13) are scale-invariant — bench/ablate_endurance_scale demonstrates
// this empirically — and physical months (Table IV) are recovered by scaling
// back up and dividing by the workload's write rate.
#pragma once

#include <cstdint>

#include "core/system.hpp"
#include "tier/front_tier.hpp"
#include "workload/app_profile.hpp"
#include "workload/trace.hpp"

namespace pcmsim {

struct LifetimeConfig {
  SystemConfig system;
  std::uint64_t max_writes = 400'000'000;  ///< safety cap (reported if hit)
  std::uint64_t check_interval = 1024;     ///< failure-poll cadence
  /// Wrap the trace source in a PrefetchTraceSource so event generation runs
  /// on a background thread, overlapped with write execution. Off by default:
  /// the delivered stream is byte-identical either way (tests pin this), so
  /// this is purely a wall-clock knob.
  bool prefetch = false;
  /// Content-aware DRAM front tier between the trace stream and PcmSystem
  /// (tier/front_tier.hpp). Disabled by default (capacity_lines == 0), in
  /// which case the run is byte-identical to the pre-tier simulator; when
  /// enabled, write-backs are offered to the tier and only its evictions
  /// reach PCM, so `max_writes` caps *offered* write-backs.
  FrontTierConfig tier;
};

struct LifetimeResult {
  std::uint64_t writes_to_failure = 0;  ///< serviced write-backs until 50% dead
  bool reached_failure = false;         ///< false when max_writes capped the run
  std::uint64_t programmed_bits = 0;
  std::uint64_t uncorrectable_events = 0;
  std::uint64_t recycled_lines = 0;
  double mean_faults_at_death = 0.0;    ///< Fig 12 metric
  double mean_flips_per_write = 0.0;
  double compressed_fraction = 0.0;
  double mean_compressed_size = 0.0;
  /// Mean programming energy per serviced write (pJ), SET/RESET pulse model.
  double energy_pj_per_write = 0.0;

  // Front-tier accounting (meaningful only when config.tier is enabled; all
  // zero otherwise — except offered_writes, which then equals
  // writes_to_failure so lifetime-amplification ratios are uniform).
  /// Write-backs offered by the workload until failure/cap. With a tier this
  /// is the lifetime-amplification numerator: the tier absorbs part of the
  /// stream, so PCM death (writes_to_failure counts PCM-serviced writes)
  /// arrives after more offered traffic.
  std::uint64_t offered_writes = 0;
  FrontTierStats tier;  ///< absorbed/coalesced/forwarded counters
  /// Modeled DRAM write latency of the tier (controller cycles, mean).
  double tier_write_latency_cycles = 0.0;
};

class TraceSource;

/// Runs one workload on one system configuration to end of life.
/// Drives the system with the calibrated SampledTraceSource stream — the
/// default trace path for every figure/table bench. The sampled stream is
/// statistically equivalent to the legacy generator (the calibration tests
/// pin rank distribution, value classes, and flip rates) but not
/// bit-identical to it; figure outputs were re-pinned when the default
/// flipped. Generation cost is ~4.6x cheaper than the legacy walk.
[[nodiscard]] LifetimeResult run_lifetime(const AppProfile& app, const LifetimeConfig& config,
                                          std::uint64_t trace_seed);

/// The quarantined legacy path: drives the system with the original
/// TraceGenerator stream (via GeneratorTraceSource), bit-identical to the
/// pre-migration per-event loop. Reachable only through explicit opt-in
/// (`--source legacy` in the examples/benches); kept as the calibration
/// oracle the sampled source is validated against.
[[nodiscard]] LifetimeResult run_lifetime_legacy(const AppProfile& app,
                                                 const LifetimeConfig& config,
                                                 std::uint64_t trace_seed);

/// Same simulation driven by an arbitrary source (sampled, file replay,
/// looped replay). A finite source that runs dry before failure reports
/// reached_failure = false with the writes it managed to service. Replayed
/// line addresses are folded onto the configured region with a modulo.
/// Honours config.prefetch by decorating `source` with PrefetchTraceSource.
[[nodiscard]] LifetimeResult run_lifetime(TraceSource& source, const LifetimeConfig& config);

/// Parameters converting simulated writes-to-failure into physical months.
struct MonthsModel {
  double physical_endurance = 1e7;          ///< Table II
  std::uint64_t physical_lines = (4ull << 30) / 64;  ///< 4 GB of 64 B lines
  double cores = 16;
  double clock_hz = 2.5e9;
  double ipc = 0.4;  ///< effective per-core IPC of the memory-intensive mixes
};

/// Table IV conversion: lifetime in months for a measured simulation result.
[[nodiscard]] double lifetime_months(const LifetimeResult& result, const LifetimeConfig& config,
                                     const AppProfile& app, const MonthsModel& model = {});

}  // namespace pcmsim
