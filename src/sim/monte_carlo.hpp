// Monte-Carlo fault injection for a single memory line (paper Fig 9).
//
// For a 512-bit line with N uniformly placed stuck cells (perfect intra-line
// wear-leveling) and compressed data of S bytes, a trial *fails* when no
// byte-aligned window of S bytes exists whose faults the error scheme can
// still tolerate. The paper runs 100,000 injections per (scheme, S, N) point.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "ecc/scheme.hpp"

namespace pcmsim {

struct MonteCarloConfig {
  std::size_t trials = 100'000;
  bool wrap_windows = true;  ///< rotation-style windows may wrap the line end
  /// Trials per parallel shard. Each shard derives its own splitmix64 RNG
  /// stream from a single draw off the caller's Rng, so the result is a pure
  /// function of (config, rng state) — bit-identical at any thread count.
  std::size_t chunk_trials = 8192;
};

/// Failure probability (1 - reliability) of storing `data_bytes` in a line
/// with exactly `nerrors` random stuck cells under `scheme`. Trials run on
/// the global thread pool (see common/parallel.hpp); consumes exactly one
/// draw from `rng` regardless of trial or thread count.
[[nodiscard]] double mc_failure_probability(const HardErrorScheme& scheme,
                                            std::size_t data_bytes, std::size_t nerrors,
                                            const MonteCarloConfig& config, Rng& rng);

/// One injection trial; exposed for tests. `positions` are the stuck-cell
/// bit positions (values irrelevant for the tolerance decision).
[[nodiscard]] bool mc_trial_survives(const HardErrorScheme& scheme, std::size_t data_bytes,
                                     std::span<const std::uint16_t> positions,
                                     bool wrap_windows);

}  // namespace pcmsim
