#include "sim/sharded_engine.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "trace/prefetch_source.hpp"
#include "trace/sampled_source.hpp"

namespace pcmsim {

/// One event as routed to its owning shard: the shard-local line plus the
/// global dispatch index that orders it on the shard's controller clock.
struct ShardEvent {
  std::uint64_t local = 0;
  std::uint64_t order = 0;
  std::uint32_t tenant = 0;
  Block data{};
};

/// Per-shard, per-tenant accounting slots. Each shard writes only its own
/// row, so the execute phase needs no synchronization; sums across shards
/// happen on the caller thread at epoch boundaries and at the end.
struct TenantAcc {
  std::uint64_t writes = 0;
  std::uint64_t stored = 0;
  std::uint64_t dropped = 0;
  std::uint64_t deaths = 0;
  std::uint64_t flips = 0;
  std::uint64_t absorbed = 0;  ///< write-backs the shard's front tier ate
};

struct ShardedPcmEngine::Shard {
  Shard(const SystemConfig& sys, const ControllerConfig& ctrl, std::uint32_t ntenants)
      : system(std::make_unique<PcmSystem>(sys)), controller(ctrl), acc(ntenants) {}

  std::unique_ptr<PcmSystem> system;
  MemoryController controller;
  std::vector<ShardEvent> front;  ///< executing this epoch
  std::vector<ShardEvent> back;   ///< being filled by the dispatcher
  std::vector<TenantAcc> acc;
  std::uint64_t events = 0;
  /// Optional per-shard front tier; its forward sink drives this shard's
  /// controller + PcmSystem, so tier state is as shard-private as the rest.
  std::optional<FrontTier> tier;
  std::uint64_t cur_order = 0;  ///< order of the event being executed (sink arrival)
};

struct ShardedPcmEngine::Tenant {
  std::unique_ptr<TraceSource> source;
  std::unique_ptr<PrefetchTraceSource> prefetched;  ///< after source: destroyed first
  TraceSource* active = nullptr;
  bool exhausted = false;
};

ShardedPcmEngine::ShardedPcmEngine(const ShardedEngineConfig& config) : config_(config) {
  config_.map.validate();
  expects(config_.tenants >= 1, "need at least one tenant stream");
  expects(config_.tenant_batch >= 1, "tenant batch must be at least one event");
  expects(config_.queue_capacity >= 1, "shard queues need capacity for at least one event");
  expects(config_.shard_system.device.lines >= 2,
          "each shard needs at least one logical line plus the gap");
  expects(global_logical_lines() >= config_.tenants,
          "need at least one logical line per tenant");

  ControllerConfig ctrl = config_.controller;
  ctrl.banks = 1;  // a shard IS one bank; cross-bank parallelism is the shards
  const std::uint32_t nshards = config_.map.shards();
  shards_.reserve(nshards);
  for (std::uint32_t s = 0; s < nshards; ++s) {
    SystemConfig sys = config_.shard_system;
    sys.seed = mix64(config_.seed, s, kShardStartGapSalt);
    sys.device.seed = mix64(config_.seed, s, kShardEnduranceSalt);
    shards_.emplace_back(sys, ctrl, config_.tenants);
    shards_.back().front.reserve(config_.queue_capacity + config_.tenant_batch);
    shards_.back().back.reserve(config_.queue_capacity + config_.tenant_batch);
  }
  if (config_.tier.enabled()) {
    // Tiers are wired after the shard vector is final (reserve above) so the
    // sink's captured Shard* stays valid for the engine's lifetime. The sink
    // runs inside execute_shard, so everything it touches is shard-private.
    FrontTierConfig tier_cfg = config_.tier;
    // The engine passes its global dispatch order to put_at, so the tier's
    // DRAM clock must tick at the engine's arrival pacing, not its own.
    tier_cfg.arrival_gap_cycles = config_.arrival_gap_cycles;
    for (Shard& s : shards_) {
      Shard* sp = &s;
      sp->tier.emplace(tier_cfg, [this, sp](const FrontTier::Forward& fwd) {
        MemRequest req;
        req.arrival_cycle = sp->cur_order * config_.arrival_gap_cycles;
        req.is_read = false;
        req.bank = 0;
        sp->controller.submit(req);
        const auto out = sp->system->write(fwd.line % sp->system->logical_lines(), fwd.data);
        TenantAcc& acc = sp->acc[fwd.tag];
        if (out.stored) {
          ++acc.stored;
          acc.flips += out.flips;
        } else {
          ++acc.dropped;
        }
        if (out.line_died) ++acc.deaths;
      });
    }
  }
  tenants_.reserve(config_.tenants);
}

ShardedPcmEngine::~ShardedPcmEngine() = default;

std::uint64_t ShardedPcmEngine::global_logical_lines() const {
  // Each shard's Start-Gap keeps one spare slot, exactly as a standalone
  // PcmSystem does.
  return static_cast<std::uint64_t>(config_.shard_system.device.lines - 1) *
         config_.map.shards();
}

std::uint64_t ShardedPcmEngine::tenant_region_lines() const {
  return global_logical_lines() / config_.tenants;
}

void ShardedPcmEngine::add_tenant(std::unique_ptr<TraceSource> source) {
  expects(!ran_, "tenants must be registered before run()");
  expects(tenants_.size() < config_.tenants, "all configured tenant slots are filled");
  expects(source != nullptr, "tenant source must not be null");
  Tenant t;
  t.source = std::move(source);
  if (config_.prefetch) {
    t.prefetched = std::make_unique<PrefetchTraceSource>(*t.source);
    t.active = t.prefetched.get();
  } else {
    t.active = t.source.get();
  }
  tenants_.push_back(std::move(t));
}

void ShardedPcmEngine::add_sampled_tenants(const std::vector<AppProfile>& apps) {
  expects(!apps.empty(), "need at least one app profile");
  const std::uint64_t region = tenant_region_lines();
  for (std::uint32_t t = static_cast<std::uint32_t>(tenants_.size()); t < config_.tenants;
       ++t) {
    add_tenant(std::make_unique<SampledTraceSource>(
        apps[t % apps.size()], region, mix64(config_.seed, kTenantSeedSalt, t)));
  }
}

void ShardedPcmEngine::dispatch_window(std::uint64_t max_events) {
  const std::uint64_t region = tenant_region_lines();
  std::vector<WritebackEvent> batch(config_.tenant_batch);
  const auto any_queue_at_capacity = [&] {
    return std::any_of(shards_.begin(), shards_.end(), [&](const Shard& s) {
      return s.back.size() >= config_.queue_capacity;
    });
  };

  // The round-robin cursor persists across windows (rr_cursor_): a window
  // that stops mid-round resumes with the next tenant, so the global dispatch
  // sequence — and therefore every modeled result — depends only on the
  // seed, the tenant set, and tenant_batch, never on where the capacity
  // watermark happened to fall (asserted by the epoch-partitioning
  // invariance test).
  while (dispatched_ < max_events && !any_queue_at_capacity()) {
    bool progressed = false;
    for (std::size_t visited = 0; visited < tenants_.size(); ++visited) {
      const std::uint32_t t = rr_cursor_;
      rr_cursor_ = (rr_cursor_ + 1) % static_cast<std::uint32_t>(tenants_.size());
      Tenant& tenant = tenants_[t];
      if (tenant.exhausted) continue;
      const std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
          config_.tenant_batch, max_events - dispatched_));
      const std::size_t n = tenant.active->next_batch(std::span(batch.data(), want));
      if (n < want) tenant.exhausted = true;  // finite source ran dry
      for (std::size_t i = 0; i < n; ++i) {
        // Fold onto the tenant's disjoint logical slice, then interleave the
        // global address across the shards. For sources constructed against
        // tenant_region_lines() the fold is the identity.
        const std::uint64_t global =
            static_cast<std::uint64_t>(t) * region + batch[i].line % region;
        Shard& shard = shards_[config_.map.shard_of(global)];
        shard.back.push_back(ShardEvent{config_.map.local_of(global), dispatched_, t,
                                        batch[i].data});
        ++dispatched_;
      }
      if (n > 0) progressed = true;
      if (dispatched_ >= max_events || any_queue_at_capacity()) return;
    }
    if (!progressed) return;  // every source ran dry
  }
}

void ShardedPcmEngine::execute_shard(Shard& shard) {
  if (shard.tier) {
    // Tiered path: the event is offered to the shard's front tier at its
    // global dispatch order (DRAM latency is charged by the tier's embedded
    // controller); only evictions reach the bank model + PcmSystem, through
    // the forward sink wired in the constructor. The victim a forward
    // charges may belong to a different tenant than the event that evicted
    // it — the Forward's tag carries the victim's last writer.
    for (const ShardEvent& ev : shard.front) {
      shard.cur_order = ev.order;
      TenantAcc& acc = shard.acc[ev.tenant];
      ++acc.writes;
      const auto outcome = shard.tier->put_at(ev.order, ev.local, ev.data, ev.tenant);
      if (outcome != FrontTier::Outcome::kInserted) ++acc.absorbed;
    }
    shard.events += shard.front.size();
    return;
  }
  for (const ShardEvent& ev : shard.front) {
    // Charge the DDR-style bank model first (queueing + turnaround on this
    // shard's bank), then execute the write against the shard's PcmSystem.
    MemRequest req;
    req.arrival_cycle = ev.order * config_.arrival_gap_cycles;
    req.is_read = false;
    req.bank = 0;
    shard.controller.submit(req);

    const auto out = shard.system->write(ev.local, ev.data);
    TenantAcc& acc = shard.acc[ev.tenant];
    ++acc.writes;
    if (out.stored) {
      ++acc.stored;
      acc.flips += out.flips;
    } else {
      ++acc.dropped;
    }
    if (out.line_died) ++acc.deaths;
  }
  shard.events += shard.front.size();
}

void ShardedPcmEngine::check_tenant_failures(
    std::vector<ShardedTenantResult>& tenants) const {
  // A tenant fails when its cumulative line deaths reach the capacity
  // criterion applied to its own logical slice — the per-tenant analogue of
  // PcmSystem::failed(). Checked at epoch boundaries only, so the recorded
  // failure point is identical at any thread count.
  const auto threshold = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(config_.shard_system.dead_capacity_fraction *
                                    static_cast<double>(tenant_region_lines())));
  for (std::uint32_t t = 0; t < tenants.size(); ++t) {
    if (tenants[t].failed) continue;
    std::uint64_t deaths = 0;
    std::uint64_t writes = 0;
    for (const Shard& s : shards_) {
      deaths += s.acc[t].deaths;
      writes += s.acc[t].writes;
    }
    if (deaths >= threshold) {
      tenants[t].failed = true;
      tenants[t].writes_at_failure = writes;
    }
  }
}

ShardedRunResult ShardedPcmEngine::run(std::uint64_t max_events) {
  expects(!ran_, "a ShardedPcmEngine can only run once");
  expects(tenants_.size() == config_.tenants,
          "run() requires every configured tenant slot to be filled");
  ran_ = true;

  ShardedRunResult result;
  result.tenants.resize(config_.tenants);

  // Priming window: fill the back queues serially, then promote them.
  dispatch_window(max_events);
  for (Shard& s : shards_) std::swap(s.front, s.back);

  const auto any_front = [&] {
    return std::any_of(shards_.begin(), shards_.end(),
                       [](const Shard& s) { return !s.front.empty(); });
  };

  while (any_front()) {
    ++result.epochs;
    // One pool region per epoch: index 0 dispatches the next window into the
    // back queues while indices 1..S execute the front queues. No index
    // touches another index's state; the region join is the epoch barrier.
    parallel_for(shards_.size() + 1, [&](std::size_t idx) {
      if (idx == 0) {
        dispatch_window(max_events);
      } else {
        execute_shard(shards_[idx - 1]);
      }
    });
    check_tenant_failures(result.tenants);
    for (Shard& s : shards_) {
      s.front.clear();
      std::swap(s.front, s.back);
    }
  }

  // Assemble: controllers drain, stats merge exactly in shard order, tenant
  // rows sum across shards in shard order — all fixed-order reductions.
  result.events = dispatched_;
  result.shards.reserve(shards_.size());
  for (Shard& s : shards_) {
    s.controller.finish();
    ShardedShardResult row;
    row.stats = s.system->stats();
    row.events = s.events;
    row.write_latency_mean = s.controller.write_latency().mean();
    row.busy_cycles = s.controller.busy_cycles();
    row.drained_at = s.controller.drained_at();
    row.utilization = row.drained_at > 0 ? static_cast<double>(row.busy_cycles) /
                                               static_cast<double>(row.drained_at)
                                         : 0.0;
    if (s.tier) {
      // Like run_lifetime, the tier is not flushed: lines still resident in
      // DRAM at the end never cost PCM writes.
      s.tier->finish_timing();
      row.tier = s.tier->stats();
      if (const MemoryController* mc = s.tier->controller()) {
        row.tier_write_latency_mean = mc->write_latency().mean();
      }
      result.tier.merge(row.tier);
    }
    result.total.merge(row.stats);
    result.shards.push_back(std::move(row));
  }
  for (std::uint32_t t = 0; t < config_.tenants; ++t) {
    ShardedTenantResult& row = result.tenants[t];
    for (const Shard& s : shards_) {
      const TenantAcc& acc = s.acc[t];
      row.writes += acc.writes;
      row.stored_writes += acc.stored;
      row.dropped_writes += acc.dropped;
      row.line_deaths += acc.deaths;
      row.flips += acc.flips;
      row.absorbed_writes += acc.absorbed;
    }
    row.exhausted = tenants_[t].exhausted;
  }

  // Deterministic digest: integer-valued observables only (no floats), in
  // fixed shard/tenant order.
  std::uint64_t h = 0x53484152445A31ull;  // "SHARDZ1"
  const auto fold = [&h](std::uint64_t v) { h = mix64(h, v); };
  fold(result.events);
  fold(result.epochs);
  for (const ShardedShardResult& s : result.shards) {
    fold(s.stats.writes);
    fold(s.stats.compressed_writes);
    fold(s.stats.uncompressed_writes);
    fold(s.stats.dropped_writes);
    fold(s.stats.uncorrectable_events);
    fold(s.stats.window_slides);
    fold(s.stats.recycled_lines);
    fold(s.stats.gap_moves);
    fold(s.stats.lines_dead);
    fold(static_cast<std::uint64_t>(s.stats.flips_per_write.sum()));
    fold(static_cast<std::uint64_t>(s.stats.compressed_size.sum()));
    fold(s.events);
    fold(s.busy_cycles);
    fold(s.drained_at);
  }
  for (const ShardedTenantResult& t : result.tenants) {
    fold(t.writes);
    fold(t.stored_writes);
    fold(t.dropped_writes);
    fold(t.line_deaths);
    fold(t.flips);
    fold(t.writes_at_failure);
    fold(t.failed ? 1 : 0);
    fold(t.exhausted ? 1 : 0);
  }
  // Tier observables join the digest only when the tier runs: a disabled-tier
  // run folds exactly the same sequence as the pre-tier engine, so the pinned
  // no-tier checksums survive unchanged.
  if (config_.tier.enabled()) {
    for (const ShardedShardResult& s : result.shards) {
      fold(s.tier.offered);
      fold(s.tier.hits);
      fold(s.tier.silent_hits);
      fold(s.tier.silent_drops);
      fold(s.tier.inserts);
      fold(s.tier.evictions);
      fold(s.tier.dedup_shares);
      fold(s.tier.fp_false_hits);
      fold(s.tier.words_forwarded);
      fold(s.tier.words_touched);
    }
    for (const ShardedTenantResult& t : result.tenants) fold(t.absorbed_writes);
  }
  result.checksum = h;
  return result;
}

}  // namespace pcmsim
