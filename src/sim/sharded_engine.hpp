// Sharded multi-bank memory-system engine: the production-scale execution
// spine over PcmSystem.
//
// Where PcmSystem models one flat region driven by one trace stream, the
// sharded engine promotes the bank dimension to the unit of execution:
// physical lines interleave across `channels x banks` shards through the
// shared AddressMap (core/address_map.hpp — the same mapping the controller
// timing bench uses), and each shard owns
//   * its own PcmSystem slice with split RNG streams (mix64(seed, shard) for
//     both Start-Gap randomization and endurance sampling), and
//   * its own single-bank MemoryController instance, charging DDR-style
//     queueing/turnaround service cycles to the shard's event stream so a
//     run reports modeled latency and per-bank utilization alongside
//     simulated lifetime.
//
// Many concurrent tenants drive the engine: one TraceSource per tenant
// (sampled, file replay, or prefetch-wrapped — anything behind the seam),
// each folded onto a disjoint slice of the global logical address space so
// tenants wear shared banks without aliasing each other's lines.
//
// Execution model and the determinism argument
// --------------------------------------------
// The run alternates double-buffered windows on the PR-1 deterministic
// thread pool. Within one pool region of `shards + 1` indices, index 0 (the
// dispatcher) drains tenant sources round-robin and routes events into each
// shard's *back* queue (bounded by `queue_capacity`), while indices 1..S
// execute their shard's *front* queue: submit the event to the shard
// controller, then PcmSystem::write. The epoch barrier swaps the buffers.
// Determinism at any --threads follows from three facts:
//   1. the dispatcher is a single logical task, so the per-shard event
//      order is fixed by tenant order and the address map, never by timing;
//   2. a shard's queue is consumed by exactly one region index, and each
//      shard's PcmSystem/controller/RNG state is touched by no other index
//      (the pool may run an index on any worker, but the region join
//      sequences epochs, so there is no concurrent access and no ordering
//      freedom);
//   3. per-shard SystemStats are merged exactly (SystemStats::merge, shard
//      order) only after the run, and per-tenant accounting is accumulated
//      in per-shard slots and summed at epoch boundaries — both reductions
//      are in fixed index order.
// Hence byte-identical results at --threads 1 and --threads 64; CI pins this
// with a checksum gate on bench/multi_tenant.
//
// Within an epoch there is no lock, no atomic, and no cross-index traffic in
// the steady state — the only synchronization is the epoch barrier itself,
// and dispatch overlaps execution across it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "controller/controller.hpp"
#include "core/address_map.hpp"
#include "core/system.hpp"
#include "tier/front_tier.hpp"
#include "trace/trace_source.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {

class PrefetchTraceSource;

struct ShardedEngineConfig {
  /// Per-shard system template. `device.lines` is the line count of ONE
  /// shard (including its Start-Gap spare); seeds are ignored and replaced
  /// by the split per-shard streams mix64(seed, shard, salt).
  SystemConfig shard_system;
  /// Channel x bank geometry; shards() = channels * banks_per_channel.
  AddressMap map;
  /// Timing model charged per shard (each shard is one bank of this config).
  ControllerConfig controller;
  /// Modeled controller cycles between consecutive globally-dispatched
  /// events; sets the aggregate front-end demand the bank queues see.
  std::uint64_t arrival_gap_cycles = 16;
  /// Per-shard dispatch-queue watermark: the dispatcher stops a window once
  /// any back queue reaches this many events (the round in flight completes,
  /// so momentary overshoot is bounded by tenants * tenant_batch).
  std::size_t queue_capacity = 4096;
  /// Events pulled from one tenant per dispatch round (batch amortization).
  std::size_t tenant_batch = 256;
  /// Wrap every tenant source in PrefetchTraceSource so generation runs on
  /// background threads too. Stream-identical; purely a wall-clock knob.
  bool prefetch = false;
  /// Number of tenant streams the run will be driven by. Fixed up front so
  /// each tenant's disjoint logical slice (tenant_region_lines()) is known
  /// before any source is constructed; run() requires exactly this many
  /// add_tenant calls.
  std::uint32_t tenants = 16;
  /// Master seed; every per-shard and per-tenant stream derives from it.
  std::uint64_t seed = 1;
  /// Optional content-aware DRAM front tier, instantiated once per shard
  /// (capacity_lines is the per-shard payload budget). Disabled by default;
  /// when disabled the run — and its pinned checksum — is byte-identical to
  /// the tier-less engine. When enabled, each shard's tier sits between the
  /// dispatch queue and the shard's controller+PcmSystem: only tier
  /// evictions reach the bank, tagged with the tenant that last wrote them.
  FrontTierConfig tier;
};

/// Cumulative per-tenant accounting, summed across shards in shard order.
struct ShardedTenantResult {
  std::uint64_t writes = 0;          ///< write-backs dispatched for this tenant
  std::uint64_t stored_writes = 0;   ///< serviced and durably stored
  std::uint64_t dropped_writes = 0;  ///< lost to dead/unrecyclable lines
  std::uint64_t line_deaths = 0;     ///< line deaths triggered by this tenant
  std::uint64_t flips = 0;           ///< programming pulses charged to it
  /// Lifetime proxy: the tenant's write count when its cumulative line
  /// deaths crossed dead_capacity_fraction of its logical slice (checked at
  /// epoch boundaries, so it is thread-count independent). 0 while alive.
  std::uint64_t writes_at_failure = 0;
  bool failed = false;
  bool exhausted = false;  ///< finite source ran dry before the run ended
  /// Write-backs the front tier absorbed for this tenant (tier runs only).
  /// writes = stored + dropped + absorbed + lines still tier-resident at end.
  std::uint64_t absorbed_writes = 0;
};

struct ShardedShardResult {
  SystemStats stats;                ///< the shard's own PcmSystem stats
  std::uint64_t events = 0;         ///< events routed to this shard
  double write_latency_mean = 0.0;  ///< modeled controller cycles
  std::uint64_t busy_cycles = 0;    ///< bank busy time (service bursts)
  std::uint64_t drained_at = 0;     ///< cycle the bank went idle
  double utilization = 0.0;         ///< busy / drained
  FrontTierStats tier;              ///< this shard's tier counters (if enabled)
  double tier_write_latency_mean = 0.0;  ///< modeled DRAM tier cycles
};

struct ShardedRunResult {
  SystemStats total;  ///< exact merge of every shard's stats (shard order)
  FrontTierStats tier;  ///< exact sum of per-shard tier counters (shard order)
  std::vector<ShardedShardResult> shards;
  std::vector<ShardedTenantResult> tenants;
  std::uint64_t events = 0;  ///< total events dispatched
  std::uint64_t epochs = 0;  ///< dispatch/execute windows executed
  /// Deterministic digest over per-shard stats, controller timing, and
  /// per-tenant accounting — byte-identical at any thread count; the CI
  /// gate pins it.
  std::uint64_t checksum = 0;
};

class ShardedPcmEngine {
 public:
  explicit ShardedPcmEngine(const ShardedEngineConfig& config);
  ~ShardedPcmEngine();
  ShardedPcmEngine(const ShardedPcmEngine&) = delete;
  ShardedPcmEngine& operator=(const ShardedPcmEngine&) = delete;

  /// Registers one tenant stream. Sources should be constructed against
  /// tenant_region_lines(); replayed addresses are folded onto the slice
  /// with a modulo either way. Call before run().
  void add_tenant(std::unique_ptr<TraceSource> source);

  /// Convenience population: fills all config.tenants slots with sampled
  /// tenants cycling through `apps` (tenant t runs apps[t % apps.size()]
  /// with stream seed mix64(seed, kTenantSeedSalt, t)).
  void add_sampled_tenants(const std::vector<AppProfile>& apps);

  /// Drives every tenant until `max_events` total write-backs have been
  /// dispatched (or every finite source ran dry). Callable once per engine.
  [[nodiscard]] ShardedRunResult run(std::uint64_t max_events);

  [[nodiscard]] std::uint32_t shards() const { return config_.map.shards(); }
  [[nodiscard]] std::uint32_t tenants() const { return config_.tenants; }
  /// Logical lines across all shards (per-shard logical lines x shards).
  [[nodiscard]] std::uint64_t global_logical_lines() const;
  /// Size of each tenant's disjoint logical slice.
  [[nodiscard]] std::uint64_t tenant_region_lines() const;

  static constexpr std::uint64_t kTenantSeedSalt = 0x7e4a;
  /// Salts separating the per-shard derived streams from each other and from
  /// every existing mix64 consumer (lifetime matrices use (seed, app, mode)).
  /// Public so equivalence tests can reconstruct a shard's exact seeds.
  static constexpr std::uint64_t kShardStartGapSalt = 0x5bA9;
  static constexpr std::uint64_t kShardEnduranceSalt = 0xeD17;

 private:
  struct Shard;
  struct Tenant;

  /// Pulls tenant batches round-robin into the back queues until the budget,
  /// the capacity watermark, or source exhaustion stops the window. Runs as
  /// region index 0 (or serially for the priming window).
  void dispatch_window(std::uint64_t max_events);
  void execute_shard(Shard& shard);
  void check_tenant_failures(std::vector<ShardedTenantResult>& tenants) const;

  ShardedEngineConfig config_;
  std::vector<Shard> shards_;
  std::vector<Tenant> tenants_;
  std::uint64_t dispatched_ = 0;  ///< global dispatch counter (arrival order)
  std::uint32_t rr_cursor_ = 0;   ///< round-robin position, persists across windows
  bool ran_ = false;
};

}  // namespace pcmsim
