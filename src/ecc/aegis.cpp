#include "ecc/aegis.hpp"

#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"

namespace pcmsim {

AegisScheme::AegisScheme(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  expects(rows >= 2 && cols >= 2, "grid must be at least 2x2");
  expects(std::gcd(rows, cols) == 1, "grid dimensions must be coprime (CRT mapping)");
  expects(rows * cols >= kBlockBits, "grid must cover a 512-bit line");
  expects(cols <= 58, "flip bits + direction id must fit the 64-bit budget");
  name_ = "Aegis-" + std::to_string(rows) + "x" + std::to_string(cols);
}

std::size_t AegisScheme::metadata_bits() const {
  // Direction id (cols+1 choices -> 6 bits is enough for 17x31) + one flip
  // bit per group; slope directions have `cols` groups, vertical has `rows`.
  return 6 + std::max(rows_, cols_);
}

std::size_t AegisScheme::guaranteed_correctable() const {
  // f faults invalidate at most f(f-1)/2 of the (cols+1) directions.
  std::size_t f = 1;
  while ((f + 1) * f / 2 <= cols_) ++f;
  return f;
}

std::size_t AegisScheme::group_of(std::size_t pos, unsigned dir) const {
  const std::size_t x = pos % rows_;
  const std::size_t y = pos % cols_;
  if (dir == cols_) return x;  // vertical direction
  return (y + static_cast<std::size_t>(dir) * x) % cols_;
}

std::optional<unsigned> AegisScheme::find_direction(std::span<const FaultCell> faults) const {
  for (unsigned dir = 0; dir <= cols_; ++dir) {
    const std::size_t groups = (dir == cols_) ? rows_ : cols_;
    if (faults.size() > groups) continue;
    std::unordered_set<std::size_t> seen;
    bool ok = true;
    for (const auto& f : faults) {
      if (!seen.insert(group_of(f.pos, dir)).second) {
        ok = false;
        break;
      }
    }
    if (ok) return dir;
  }
  return std::nullopt;
}

bool AegisScheme::can_tolerate(std::span<const FaultCell> faults,
                               std::size_t window_bits) const {
  expects(window_bits <= rows_ * cols_, "window exceeds the Aegis grid");
  if (faults.size() <= 1) return true;
  return find_direction(faults).has_value();
}

std::optional<HardErrorScheme::EncodeResult> AegisScheme::encode(
    std::span<const std::uint8_t> data, std::size_t window_bits,
    std::span<const FaultCell> faults) const {
  expects(window_bits <= rows_ * cols_, "window exceeds the Aegis grid");
  const auto dir = find_direction(faults);
  if (!dir) return std::nullopt;

  const std::size_t groups = (*dir == cols_) ? rows_ : cols_;
  std::vector<std::uint8_t> flip(groups, 0);
  for (const auto& f : faults) {
    flip[group_of(f.pos, *dir)] = get_bit(data, f.pos) != f.stuck_value ? 1 : 0;
  }

  EncodeResult out;
  out.image.assign((window_bits + 7) / 8, 0);
  for (std::size_t i = 0; i < window_bits; ++i) {
    set_bit(out.image, i, get_bit(data, i) ^ (flip[group_of(i, *dir)] != 0));
  }
  std::uint64_t meta = *dir & 0x3Fu;
  for (std::size_t g = 0; g < groups; ++g) {
    if (flip[g]) meta |= 1ull << (6 + g);
  }
  out.meta = meta;
  return out;
}

InlineBytes AegisScheme::decode(std::span<const std::uint8_t> raw,
                                              std::size_t window_bits, std::uint64_t meta,
                                              std::span<const FaultCell> /*faults*/) const {
  const auto dir = static_cast<unsigned>(meta & 0x3Fu);
  expects(dir <= cols_, "corrupt Aegis metadata: bad direction");
  InlineBytes out;
  out.assign((window_bits + 7) / 8, 0);
  for (std::size_t i = 0; i < window_bits; ++i) {
    const bool flip = (meta >> (6 + group_of(i, dir))) & 1u;
    set_bit(out, i, get_bit(raw, i) ^ flip);
  }
  return out;
}

}  // namespace pcmsim
