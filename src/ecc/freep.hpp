// FREE-p: Fine-grained Remapping with ECC and Embedded Pointers
// (Yoon et al., HPCA 2011) — one of the hard-error tolerant schemes the
// paper cites ([10]) as compatible with its compression mechanism.
//
// Idea: when a line's error correction is exhausted, don't waste a whole
// spare row — store a *remap pointer* inside the dead line itself and point
// it at a spare line. The pointer must survive the very stuck cells that
// killed the line, so it is stored replicated across the 512-bit data area
// and recovered by bitwise majority vote: with <= ~50 stuck cells and 31
// replicas of each pointer bit, the probability of a majority of any bit's
// replicas being stuck *and* wrong is negligible.
//
// This module is an extension beyond the paper's evaluated set: it manages
// the remap table/pointer encoding over a PcmArray region and is evaluated
// standalone (tests + bench), not inside PcmSystem.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "pcm/array.hpp"

namespace pcmsim {

/// Pointer image: `kPointerBits`-wide line index, each bit replicated
/// `kReplicas` times, interleaved across the 512-bit data area.
class FreePPointerCodec {
 public:
  static constexpr std::size_t kPointerBits = 16;  ///< up to 64 Ki lines
  static constexpr std::size_t kReplicas = kBlockBits / kPointerBits;  // 32

  /// Builds the 512-bit replicated image of `target`.
  [[nodiscard]] static std::vector<std::uint8_t> encode(std::uint16_t target);

  /// Majority-vote decode from a raw (possibly fault-corrupted) line image.
  [[nodiscard]] static std::uint16_t decode(std::span<const std::uint8_t> raw);
};

/// Remap manager over a PcmArray: `spares` lines at the top of the region
/// are reserved; dead lines chain to spares via embedded pointers.
class FreePRemapper {
 public:
  /// Reserves the last `spares` lines of `array`'s region.
  FreePRemapper(PcmArray& array, std::size_t spares);

  /// Where `line`'s data actually lives (follows the remap chain).
  [[nodiscard]] std::size_t resolve(std::size_t line) const;

  /// Declares the line holding `line`'s data dead; allocates a spare, writes
  /// the embedded pointer into the dead line, and returns the new location.
  /// Returns nullopt when no spare is available (capacity exhausted).
  std::optional<std::size_t> remap(std::size_t line);

  /// Re-reads the pointer chain from the array (what a cold boot would do)
  /// and checks it against the in-memory table. True when consistent.
  [[nodiscard]] bool verify_chain(std::size_t line) const;

  [[nodiscard]] std::size_t spares_left() const { return spares_left_; }
  [[nodiscard]] std::size_t data_lines() const { return first_spare_; }

 private:
  PcmArray* array_;
  std::size_t first_spare_;
  std::size_t spares_left_;
  std::size_t next_spare_;
  std::vector<std::uint16_t> remap_to_;  // kNoRemap when not remapped
  static constexpr std::uint16_t kNoRemap = 0xFFFF;
};

}  // namespace pcmsim
