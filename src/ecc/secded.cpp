#include "ecc/secded.hpp"

#include <bit>

#include "common/assert.hpp"

namespace pcmsim {

SecdedScheme::SecdedScheme() {
  // Hsiao construction: assign each of the 64 data bits a distinct odd-weight
  // 8-bit column, skipping the 8 weight-1 columns reserved for check bits.
  // Weight-3 columns alone provide C(8,3) = 56; the remaining 8 use weight 5.
  std::size_t next = 0;
  for (int weight : {3, 5}) {
    for (unsigned c = 1; c < 256 && next < column_.size(); ++c) {
      if (std::popcount(c) == weight) {
        column_[next] = static_cast<std::uint8_t>(c);
        ++next;
      }
    }
  }
  ensures(next == column_.size(), "Hsiao column assignment incomplete");
  for (std::size_t b = 0; b < column_.size(); ++b) {
    for (std::size_t c = 0; c < parity_mask_.size(); ++c) {
      if ((column_[b] >> c) & 1u) parity_mask_[c] |= std::uint64_t{1} << b;
    }
  }
}

std::uint8_t SecdedScheme::compute_check(std::uint64_t word) const {
  std::uint8_t check = 0;
  for (std::size_t c = 0; c < parity_mask_.size(); ++c) {
    const auto parity = static_cast<unsigned>(std::popcount(word & parity_mask_[c])) & 1u;
    check = static_cast<std::uint8_t>(check | (parity << c));
  }
  return check;
}

std::optional<SecdedScheme::Corrected> SecdedScheme::correct(std::uint64_t word,
                                                             std::uint8_t check) const {
  const std::uint8_t syndrome = static_cast<std::uint8_t>(compute_check(word) ^ check);
  if (syndrome == 0) return Corrected{word, false};
  if (std::popcount(static_cast<unsigned>(syndrome)) == 1) {
    // Error in the check bit itself; data is intact.
    return Corrected{word, false};
  }
  for (std::size_t i = 0; i < column_.size(); ++i) {
    if (column_[i] == syndrome) {
      return Corrected{word ^ (1ull << i), true};
    }
  }
  return std::nullopt;  // even-weight or unknown syndrome: uncorrectable
}

bool SecdedScheme::can_tolerate(std::span<const FaultCell> faults,
                                std::size_t window_bits) const {
  expects(window_bits == kBlockBits, "SECDED operates on whole 512-bit lines");
  std::array<int, 8> per_word{};
  for (const auto& f : faults) {
    if (++per_word[f.pos / 64] > 1) return false;
  }
  return true;
}

std::optional<HardErrorScheme::EncodeResult> SecdedScheme::encode(
    std::span<const std::uint8_t> data, std::size_t window_bits,
    std::span<const FaultCell> faults) const {
  if (!can_tolerate(faults, window_bits)) return std::nullopt;
  EncodeResult out;
  out.image.assign(data);
  std::uint64_t meta = 0;
  for (std::size_t w = 0; w < 8; ++w) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(data[w * 8 + b]) << (8 * b);
    }
    meta |= static_cast<std::uint64_t>(compute_check(word)) << (8 * w);
  }
  out.meta = meta;
  return out;
}

InlineBytes SecdedScheme::decode(std::span<const std::uint8_t> raw,
                                               std::size_t window_bits, std::uint64_t meta,
                                               std::span<const FaultCell> /*faults*/) const {
  expects(window_bits == kBlockBits, "SECDED operates on whole 512-bit lines");
  InlineBytes out(raw);
  for (std::size_t w = 0; w < 8; ++w) {
    std::uint64_t word = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      word |= static_cast<std::uint64_t>(raw[w * 8 + b]) << (8 * b);
    }
    const auto check = static_cast<std::uint8_t>((meta >> (8 * w)) & 0xFFu);
    const auto corrected = correct(word, check);
    expects(corrected.has_value(), "SECDED decode hit an uncorrectable word");
    for (std::size_t b = 0; b < 8; ++b) {
      out[w * 8 + b] = static_cast<std::uint8_t>((corrected->word >> (8 * b)) & 0xFFu);
    }
  }
  return out;
}

}  // namespace pcmsim
