#include "ecc/scheme.hpp"

#include "common/assert.hpp"

namespace pcmsim {

InlineBytes apply_faults(std::span<const std::uint8_t> image, std::size_t window_bits,
                         std::span<const FaultCell> faults) {
  expects(image.size() * 8 >= window_bits, "image too small for window");
  InlineBytes out(image);
  for (const auto& f : faults) {
    expects(f.pos < window_bits, "fault outside window");
    set_bit(out, f.pos, f.stuck_value);
  }
  return out;
}

}  // namespace pcmsim
