#include "ecc/scheme.hpp"

#include "common/assert.hpp"

namespace pcmsim {

std::vector<std::uint8_t> apply_faults(std::span<const std::uint8_t> image,
                                       std::size_t window_bits,
                                       std::span<const FaultCell> faults) {
  expects(image.size() * 8 >= window_bits, "image too small for window");
  std::vector<std::uint8_t> out(image.begin(), image.end());
  for (const auto& f : faults) {
    expects(f.pos < window_bits, "fault outside window");
    set_bit(out, f.pos, f.stuck_value);
  }
  return out;
}

}  // namespace pcmsim
