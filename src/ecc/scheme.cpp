#include "ecc/scheme.hpp"

#include "common/assert.hpp"

namespace pcmsim {

SchemeTraits HardErrorScheme::traits() const {
  SchemeTraits t;
  t.metadata_bits = metadata_bits();
  t.guaranteed_correctable = guaranteed_correctable();
  return t;
}

bool HardErrorScheme::can_tolerate_with(std::span<const FaultCell> faults,
                                        std::size_t window_bits,
                                        std::span<const std::uint8_t> /*word_content*/) const {
  return can_tolerate(faults, window_bits);
}

void HardErrorScheme::word_content_bits(const WordClassScan& /*scan*/,
                                        std::span<std::uint8_t> /*out*/) const {
  expects(false, "scheme has no word-granularity slack seam");
}

InlineBytes apply_faults(std::span<const std::uint8_t> image, std::size_t window_bits,
                         std::span<const FaultCell> faults) {
  expects(image.size() * 8 >= window_bits, "image too small for window");
  InlineBytes out(image);
  for (const auto& f : faults) {
    expects(f.pos < window_bits, "fault outside window");
    set_bit(out, f.pos, f.stuck_value);
  }
  return out;
}

}  // namespace pcmsim
