#include "ecc/bch.hpp"

#include "common/assert.hpp"

namespace pcmsim {

namespace {
// Primitive polynomial of GF(2^10): x^10 + x^3 + 1.
constexpr unsigned kPrimitivePoly = 0x409;
constexpr std::uint32_t kRhsBit = 1u << 31;  // rhs flag in a GF(2) system row
}  // namespace

BchScheme::BchScheme(std::size_t t) : t_(t) {
  expects(t >= 1 && t <= 6, "BCH-t syndromes must fit the 64-bit budget (t in 1..6)");
  name_ = "BCH-t" + std::to_string(t);
  unsigned x = 1;
  for (std::size_t k = 0; k < exp_.size(); ++k) {
    exp_[k] = static_cast<std::uint16_t>(x);
    x <<= 1;
    if (x & (1u << kSymbolBits)) x ^= kPrimitivePoly;
  }
}

std::uint16_t BchScheme::alpha_pow(std::size_t exponent) const {
  return exp_[exponent % kFieldOrder];
}

std::uint64_t BchScheme::syndromes(std::span<const std::uint8_t> data,
                                   std::size_t window_bits) const {
  // S_j = sum over set bits i of alpha^(j*i) for j = 1, 3, ..., 2t-1. The
  // exponents advance incrementally (e_k += j mod 1023) so no multiplies or
  // table lookups beyond one per set bit per syndrome are needed.
  std::array<std::uint16_t, 6> acc{};
  std::array<std::uint16_t, 6> exponent{};  // (j * i) mod 1023 for current i
  for (std::size_t i = 0; i < window_bits; ++i) {
    if (get_bit(data, i)) {
      for (std::size_t k = 0; k < t_; ++k) acc[k] ^= exp_[exponent[k]];
    }
    for (std::size_t k = 0; k < t_; ++k) {
      exponent[k] = static_cast<std::uint16_t>(exponent[k] + 2 * k + 1);
      if (exponent[k] >= kFieldOrder) exponent[k] -= kFieldOrder;
    }
  }
  std::uint64_t packed = 0;
  for (std::size_t k = 0; k < t_; ++k) {
    packed |= static_cast<std::uint64_t>(acc[k]) << (k * kSymbolBits);
  }
  return packed;
}

bool BchScheme::can_tolerate(std::span<const FaultCell> faults,
                             std::size_t window_bits) const {
  expects(window_bits <= kBlockBits, "BCH symbols address at most 512 data bits");
  // Known-position stuck cells are erasures: designed distance 2t+1 corrects
  // up to 2t of them for every pattern, data-independently.
  return faults.size() <= 2 * t_;
}

std::optional<HardErrorScheme::EncodeResult> BchScheme::encode(
    std::span<const std::uint8_t> data, std::size_t window_bits,
    std::span<const FaultCell> faults) const {
  if (!can_tolerate(faults, window_bits)) return std::nullopt;
  for (const auto& f : faults) expects(f.pos < window_bits, "fault outside window");
  EncodeResult out;
  out.image.assign(data);
  out.meta = syndromes(data, window_bits);
  return out;
}

InlineBytes BchScheme::decode(std::span<const std::uint8_t> raw, std::size_t window_bits,
                              std::uint64_t meta, std::span<const FaultCell> faults) const {
  InlineBytes out(raw);
  const std::uint64_t diff = syndromes(raw, window_bits) ^ meta;
  if (diff == 0) return out;

  // The error vector is supported on the known fault positions. Solve the
  // GF(2) system sum_k e_k * alpha^(j*p_k) = S_j(raw) - S_j(data) — 10t
  // binary equations in |faults| <= 2t unknowns. Any <= 2t such columns are
  // linearly independent (BCH bound), so the binary solution is unique.
  const std::size_t nuk = faults.size();
  expects(nuk > 0 && nuk <= 2 * t_, "BCH syndrome mismatch without matching erasures");
  std::array<std::uint32_t, 6 * kSymbolBits> rows{};
  const std::size_t nrows = t_ * kSymbolBits;
  for (std::size_t k = 0; k < t_; ++k) {
    const auto rhs = static_cast<std::uint16_t>((diff >> (k * kSymbolBits)) &
                                                ((1u << kSymbolBits) - 1));
    std::array<std::uint16_t, 24> col{};
    for (std::size_t u = 0; u < nuk; ++u) {
      col[u] = alpha_pow((2 * k + 1) * faults[u].pos);
    }
    for (std::size_t b = 0; b < kSymbolBits; ++b) {
      std::uint32_t row = ((rhs >> b) & 1u) ? kRhsBit : 0u;
      for (std::size_t u = 0; u < nuk; ++u) row |= ((col[u] >> b) & 1u) << u;
      rows[k * kSymbolBits + b] = row;
    }
  }

  // Gauss-Jordan over GF(2); pivots exist for every unknown (independence).
  std::array<std::size_t, 12> pivot_row{};
  std::size_t rank = 0;
  for (std::size_t c = 0; c < nuk; ++c) {
    std::size_t p = rank;
    while (p < nrows && !(rows[p] & (1u << c))) ++p;
    expects(p < nrows, "BCH erasure system is singular (stale fault list?)");
    std::swap(rows[p], rows[rank]);
    for (std::size_t r = 0; r < nrows; ++r) {
      if (r != rank && (rows[r] & (1u << c))) rows[r] ^= rows[rank];
    }
    pivot_row[c] = rank++;
  }
  for (std::size_t r = rank; r < nrows; ++r) {
    ensures(!(rows[r] & kRhsBit), "BCH erasure system inconsistent (stale fault list?)");
  }
  for (std::size_t c = 0; c < nuk; ++c) {
    if (rows[pivot_row[c]] & kRhsBit) {
      expects(faults[c].pos < window_bits, "fault outside window");
      set_bit(out, faults[c].pos, !get_bit(raw, faults[c].pos));
    }
  }
  return out;
}

}  // namespace pcmsim
