// Error-Correcting Pointers (Schechter et al., ISCA 2010).
//
// Each correction entry pairs a pointer to a failed cell with a replacement
// bit stored in (reliable) ECC-chip cells. ECP-6 on a 512-bit line uses
// 6 x (9-bit pointer + 1-bit replacement) = 60 bits plus a full/active field,
// fitting the 12.5% ECC-DIMM budget; it corrects any 6 stuck cells.
#pragma once

#include <string>

#include "ecc/scheme.hpp"

namespace pcmsim {

class EcpScheme final : public HardErrorScheme {
 public:
  /// `entries` is the correction strength (6 for the paper's ECP-6).
  explicit EcpScheme(std::size_t entries = 6);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::size_t metadata_bits() const override;
  [[nodiscard]] std::size_t guaranteed_correctable() const override { return entries_; }
  [[nodiscard]] bool can_tolerate(std::span<const FaultCell> faults,
                                  std::size_t window_bits) const override;
  [[nodiscard]] std::optional<EncodeResult> encode(
      std::span<const std::uint8_t> data, std::size_t window_bits,
      std::span<const FaultCell> faults) const override;
  [[nodiscard]] InlineBytes decode(std::span<const std::uint8_t> raw,
                                                 std::size_t window_bits, std::uint64_t meta,
                                                 std::span<const FaultCell> faults) const override;

 private:
  std::size_t entries_;
  std::string name_;
};

}  // namespace pcmsim
