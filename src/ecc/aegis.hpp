// Aegis (Fan et al., MICRO 2013): partition-based stuck-at recovery using a
// two-dimensional cell layout.
//
// Aegis 17x31 maps cell i (< 527) onto the grid point (x, y) = (i mod 17,
// i mod 31) — unique by CRT since gcd(17, 31) = 1 — and partitions the line
// along one of 32 "directions": slope s in [0, 31) puts cell i in group
// (y + s*x) mod 31 (31 groups), and the vertical direction groups by x
// (17 groups). Any two distinct cells collide in at most ONE direction, so f
// faults rule out at most f(f-1)/2 of the 32 directions: 8 faults are always
// separable, and far more in the common case — with fewer metadata bits than
// SAFER (5-bit direction + 31 flip bits = 36).
#pragma once

#include <string>

#include "ecc/scheme.hpp"

namespace pcmsim {

class AegisScheme final : public HardErrorScheme {
 public:
  /// Grid dimensions; the paper's configuration for 512-bit lines is 17x31.
  AegisScheme(std::size_t rows = 17, std::size_t cols = 31);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::size_t metadata_bits() const override;
  [[nodiscard]] std::size_t guaranteed_correctable() const override;
  [[nodiscard]] bool can_tolerate(std::span<const FaultCell> faults,
                                  std::size_t window_bits) const override;
  [[nodiscard]] std::optional<EncodeResult> encode(
      std::span<const std::uint8_t> data, std::size_t window_bits,
      std::span<const FaultCell> faults) const override;
  [[nodiscard]] InlineBytes decode(std::span<const std::uint8_t> raw,
                                                 std::size_t window_bits, std::uint64_t meta,
                                                 std::span<const FaultCell> faults) const override;

  /// Direction index separating all faults (cols = vertical), or nullopt.
  [[nodiscard]] std::optional<unsigned> find_direction(std::span<const FaultCell> faults) const;

  /// Group of cell `pos` under direction `dir` (dir == cols() means vertical).
  [[nodiscard]] std::size_t group_of(std::size_t pos, unsigned dir) const;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::string name_;
};

}  // namespace pcmsim
