#include "ecc/ecp.hpp"

#include "common/assert.hpp"

namespace pcmsim {

namespace {
constexpr unsigned kPointerBits = 9;  // addresses any cell of a 512-bit line
}

EcpScheme::EcpScheme(std::size_t entries) : entries_(entries) {
  expects(entries >= 1 && entries <= 12,
          "ECP supports 1..12 entries (beyond 6 exceeds the 64-bit budget; "
          "laboratory configurations only)");
  name_ = "ECP-" + std::to_string(entries);
}

std::size_t EcpScheme::metadata_bits() const {
  // entries x (pointer + replacement) + active-entry count (3 bits up to 6
  // entries, 4 beyond). This is the honest hardware cost even for the >6
  // laboratory variants whose simulated meta word uses a compact packing.
  return entries_ * (kPointerBits + 1) + (entries_ > 6 ? 4 : 3);
}

bool EcpScheme::can_tolerate(std::span<const FaultCell> faults,
                             std::size_t window_bits) const {
  expects(window_bits <= kBlockBits, "ECP pointers cover at most 512 bits");
  return faults.size() <= entries_;
}

std::optional<HardErrorScheme::EncodeResult> EcpScheme::encode(
    std::span<const std::uint8_t> data, std::size_t window_bits,
    std::span<const FaultCell> faults) const {
  if (!can_tolerate(faults, window_bits)) return std::nullopt;
  EncodeResult out;
  out.image.assign(data);
  std::uint64_t meta = 0;
  std::size_t used = 0;
  if (entries_ <= 6) {
    // Self-contained packing: each entry is a 9-bit pointer + replacement bit,
    // plus a 3-bit active count above the entries.
    for (const auto& f : faults) {
      expects(f.pos < window_bits, "fault outside window");
      const bool replacement = get_bit(data, f.pos);
      const std::uint64_t entry = (static_cast<std::uint64_t>(f.pos)) |
                                  (static_cast<std::uint64_t>(replacement) << kPointerBits);
      meta |= entry << (used * (kPointerBits + 1));
      ++used;
    }
    meta |= static_cast<std::uint64_t>(used) << (entries_ * (kPointerBits + 1));
  } else {
    // Laboratory packing for 7..12 entries: 12 x 10-bit pointer entries do
    // not fit a 64-bit word, so the simulated meta stores only the
    // replacement bits in fault order (4-bit count at the bottom); decode
    // reconstructs the pointers from its fault list, which the write-verify
    // loop guarantees matches the one seen here. Hardware would store real
    // pointers — metadata_bits() reports that honest cost.
    for (const auto& f : faults) {
      expects(f.pos < window_bits, "fault outside window");
      meta |= static_cast<std::uint64_t>(get_bit(data, f.pos)) << (4 + used);
      ++used;
    }
    meta |= static_cast<std::uint64_t>(used);
  }
  out.meta = meta;
  return out;
}

InlineBytes EcpScheme::decode(std::span<const std::uint8_t> raw,
                                            std::size_t window_bits, std::uint64_t meta,
                                            std::span<const FaultCell> faults) const {
  InlineBytes out(raw);
  if (entries_ <= 6) {
    const auto used = static_cast<std::size_t>((meta >> (entries_ * (kPointerBits + 1))) & 0x7u);
    expects(used <= entries_, "corrupt ECP metadata: too many active entries");
    for (std::size_t i = 0; i < used; ++i) {
      const std::uint64_t entry = (meta >> (i * (kPointerBits + 1)));
      const auto pos = static_cast<std::size_t>(entry & ((1u << kPointerBits) - 1));
      const bool replacement = (entry >> kPointerBits) & 1u;
      expects(pos < window_bits, "corrupt ECP metadata: pointer outside window");
      set_bit(out, pos, replacement);
    }
    return out;
  }
  const auto used = static_cast<std::size_t>(meta & 0xFu);
  expects(used <= entries_, "corrupt ECP metadata: too many active entries");
  expects(used == faults.size(), "ECP-N>6 decode requires the encode-time fault list");
  for (std::size_t i = 0; i < used; ++i) {
    expects(faults[i].pos < window_bits, "fault outside window");
    set_bit(out, faults[i].pos, ((meta >> (4 + i)) & 1u) != 0);
  }
  return out;
}

}  // namespace pcmsim
