#include "ecc/ecp.hpp"

#include "common/assert.hpp"

namespace pcmsim {

namespace {
constexpr unsigned kPointerBits = 9;  // addresses any cell of a 512-bit line
}

EcpScheme::EcpScheme(std::size_t entries) : entries_(entries) {
  expects(entries >= 1 && entries <= 6, "ECP supports 1..6 entries in the 64-bit budget");
  name_ = "ECP-" + std::to_string(entries);
}

std::size_t EcpScheme::metadata_bits() const {
  // entries x (pointer + replacement) + 3-bit active-entry count.
  return entries_ * (kPointerBits + 1) + 3;
}

bool EcpScheme::can_tolerate(std::span<const FaultCell> faults,
                             std::size_t window_bits) const {
  expects(window_bits <= kBlockBits, "ECP pointers cover at most 512 bits");
  return faults.size() <= entries_;
}

std::optional<HardErrorScheme::EncodeResult> EcpScheme::encode(
    std::span<const std::uint8_t> data, std::size_t window_bits,
    std::span<const FaultCell> faults) const {
  if (!can_tolerate(faults, window_bits)) return std::nullopt;
  EncodeResult out;
  out.image.assign(data);
  std::uint64_t meta = 0;
  std::size_t used = 0;
  for (const auto& f : faults) {
    expects(f.pos < window_bits, "fault outside window");
    const bool replacement = get_bit(data, f.pos);
    const std::uint64_t entry =
        (static_cast<std::uint64_t>(f.pos)) | (static_cast<std::uint64_t>(replacement) << kPointerBits);
    meta |= entry << (used * (kPointerBits + 1));
    ++used;
  }
  meta |= static_cast<std::uint64_t>(used) << (entries_ * (kPointerBits + 1));
  out.meta = meta;
  return out;
}

InlineBytes EcpScheme::decode(std::span<const std::uint8_t> raw,
                                            std::size_t window_bits, std::uint64_t meta,
                                            std::span<const FaultCell> /*faults*/) const {
  InlineBytes out(raw);
  const auto used = static_cast<std::size_t>((meta >> (entries_ * (kPointerBits + 1))) & 0x7u);
  expects(used <= entries_, "corrupt ECP metadata: too many active entries");
  for (std::size_t i = 0; i < used; ++i) {
    const std::uint64_t entry = (meta >> (i * (kPointerBits + 1)));
    const auto pos = static_cast<std::size_t>(entry & ((1u << kPointerBits) - 1));
    const bool replacement = (entry >> kPointerBits) & 1u;
    expects(pos < window_bits, "corrupt ECP metadata: pointer outside window");
    set_bit(out, pos, replacement);
  }
  return out;
}

}  // namespace pcmsim
