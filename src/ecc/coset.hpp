// Word-level restricted coset coding (after Seyedzadeh et al., "Enabling
// Fine-Grain Restricted Coset Coding Through Word-Level Compression for PCM").
//
// Instead of packing the line into one compressed window, each 32-bit cell is
// stored *in place* as [3-bit FPC tag][payload][slack bits]: compressible
// cells (FPC classes) leave 13-29 upper bits free per cell, and those free
// bits are don't-cares that absorb stuck cells at zero coding cost. On top,
// every w-byte word carries one flip bit selecting between the word and its
// complement (a 2-element coset), which matches any single stuck cell even in
// fully incompressible words. The scheme therefore guarantees one fault per
// word data-independently (16 faults per line for w=4 in the best case) and
// tolerates unboundedly many faults that land in compression slack — a
// word-granularity counterpart to the paper's line-granularity sliding
// window, trading the compaction benefit for fine-grain don't-cares.
//
// Granularity is kWord: PcmSystem routes these lines through the word-slack
// store path (full-line, non-sliding) and feeds the per-cell content sizes
// from the phase-1 WordClassScan via word_content_bits().
#pragma once

#include <string>

#include "ecc/scheme.hpp"

namespace pcmsim {

class CosetScheme final : public HardErrorScheme {
 public:
  /// `word_bytes` is the flip-bit granularity: 4 or 8 bytes per coset word.
  explicit CosetScheme(std::size_t word_bytes = 4);

  [[nodiscard]] std::string_view name() const override { return name_; }
  /// Per-cell coded flags + per-word flip bits for a full 512-bit line.
  [[nodiscard]] std::size_t metadata_bits() const override {
    return kBlockBits / 32 + kBlockBits / (8 * word_bytes_);
  }
  [[nodiscard]] std::size_t guaranteed_correctable() const override { return 1; }
  [[nodiscard]] bool can_tolerate(std::span<const FaultCell> faults,
                                  std::size_t window_bits) const override;
  [[nodiscard]] std::optional<EncodeResult> encode(
      std::span<const std::uint8_t> data, std::size_t window_bits,
      std::span<const FaultCell> faults) const override;
  [[nodiscard]] InlineBytes decode(std::span<const std::uint8_t> raw,
                                   std::size_t window_bits, std::uint64_t meta,
                                   std::span<const FaultCell> faults) const override;

  [[nodiscard]] SchemeTraits traits() const override {
    SchemeTraits t = HardErrorScheme::traits();
    t.granularity = SchemeGranularity::kWord;
    t.composes_with_window = false;
    t.requires_compression = true;
    return t;
  }

  [[nodiscard]] bool can_tolerate_with(std::span<const FaultCell> faults,
                                       std::size_t window_bits,
                                       std::span<const std::uint8_t> word_content) const override;
  void word_content_bits(const WordClassScan& scan,
                         std::span<std::uint8_t> out) const override;

  /// Content bits (tag + in-place payload) of one 32-bit cell holding `word`;
  /// 32 for incompressible cells. Exposed for tests.
  [[nodiscard]] static std::uint8_t cell_content_bits(std::uint32_t word);

 private:
  std::size_t word_bytes_;
  std::string name_;
};

}  // namespace pcmsim
