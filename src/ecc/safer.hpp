// SAFER: Stuck-At-Fault Error Recovery (Seong et al., MICRO 2010).
//
// SAFER-32 partitions the 512-bit line into 32 groups by selecting 5 of the
// 9 cell-address bits; two faulty cells land in different groups whenever
// their addresses differ in at least one selected bit. Each group stores data
// either plain or inverted (one flip bit per group) so a single stuck cell per
// group can always be matched to the data. 6 faults are separable for every
// pattern; up to 32 probabilistically.
//
// Two field-selection strategies are provided:
//  * kGreedy (default) — the hardware algorithm: faults are processed in
//    order, and when a new fault collides with an earlier one, the lowest
//    address bit distinguishing the pair is appended to the selection. This
//    separates fields+1 faults deterministically and degrades quickly past
//    ~8, matching SAFER's published behaviour (and Fig 9's SAFER < Aegis).
//  * kExhaustive — searches all C(address_bits, fields) selections; an
//    idealized upper bound used by the ablation benches.
#pragma once

#include <string>
#include <vector>

#include "ecc/scheme.hpp"

namespace pcmsim {

class SaferScheme final : public HardErrorScheme {
 public:
  enum class Strategy : std::uint8_t { kGreedy, kExhaustive };

  /// `partitions` must be a power of two (32 for the paper's SAFER-32).
  explicit SaferScheme(std::size_t partitions = 32, Strategy strategy = Strategy::kGreedy);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::size_t metadata_bits() const override;
  [[nodiscard]] std::size_t guaranteed_correctable() const override { return fields_ + 1; }
  [[nodiscard]] bool can_tolerate(std::span<const FaultCell> faults,
                                  std::size_t window_bits) const override;
  [[nodiscard]] std::optional<EncodeResult> encode(
      std::span<const std::uint8_t> data, std::size_t window_bits,
      std::span<const FaultCell> faults) const override;
  [[nodiscard]] InlineBytes decode(std::span<const std::uint8_t> raw,
                                                 std::size_t window_bits, std::uint64_t meta,
                                                 std::span<const FaultCell> faults) const override;

  /// Finds a field selection separating all faults; exposed for tests.
  /// Returns the selected address-bit indices, or nullopt if none separates.
  [[nodiscard]] std::optional<std::vector<unsigned>> find_partitioning(
      std::span<const FaultCell> faults, std::size_t window_bits) const;

 private:
  [[nodiscard]] static unsigned address_bits_for(std::size_t window_bits);
  [[nodiscard]] unsigned fields_for(std::size_t window_bits) const;
  [[nodiscard]] std::optional<std::vector<unsigned>> greedy_partitioning(
      std::span<const FaultCell> faults, std::size_t window_bits) const;
  [[nodiscard]] std::optional<std::vector<unsigned>> exhaustive_partitioning(
      std::span<const FaultCell> faults, std::size_t window_bits) const;

  std::size_t partitions_;
  unsigned fields_;  // log2(partitions)
  Strategy strategy_;
  std::string name_;
};

}  // namespace pcmsim
