// Binary BCH over GF(2^10) used as a stuck-at *erasure* corrector.
//
// A BCH code with designed distance 2t+1 stores t odd-power syndromes
// S_j = sum over set data bits i of alpha^(j*i), j = 1, 3, ..., 2t-1, each a
// 10-bit GF(2^10) element (the 1023-cell field covers the 512-bit line).
// Classic BCH decoding locates t unknown error positions; PCM stuck-at
// faults are *erasures* — the verify read tells the controller exactly which
// cells are stuck — and a distance-(2t+1) code corrects up to 2t erasures.
// So for the same t*10-bit metadata budget the erasure decoder guarantees
// double ECP-style strength: BCH-t6 spends 60 bits (ECP-6 spends 63) and
// guarantees 12 arbitrary stuck cells against ECP's 6.
//
// Encode stores the data image unmodified (the check symbols live in the
// reliable ECC-chip area, like ECP's pointers); decode re-computes the
// syndromes of the raw read, XORs against the stored ones, and solves the
// resulting GF(2) linear system restricted to the known fault positions.
#pragma once

#include <array>
#include <string>

#include "ecc/scheme.hpp"

namespace pcmsim {

class BchScheme final : public HardErrorScheme {
 public:
  /// `t` odd syndromes (designed distance 2t+1): corrects 2t erasures.
  /// t in 1..6 so the t x 10-bit syndromes fit the 64-bit metadata word.
  explicit BchScheme(std::size_t t = 2);

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::size_t metadata_bits() const override { return t_ * kSymbolBits; }
  [[nodiscard]] std::size_t guaranteed_correctable() const override { return 2 * t_; }
  [[nodiscard]] bool can_tolerate(std::span<const FaultCell> faults,
                                  std::size_t window_bits) const override;
  [[nodiscard]] std::optional<EncodeResult> encode(
      std::span<const std::uint8_t> data, std::size_t window_bits,
      std::span<const FaultCell> faults) const override;
  [[nodiscard]] InlineBytes decode(std::span<const std::uint8_t> raw,
                                   std::size_t window_bits, std::uint64_t meta,
                                   std::span<const FaultCell> faults) const override;

  /// GF(2^10) element alpha^((j * pos) mod 1023); exposed for tests.
  [[nodiscard]] std::uint16_t alpha_pow(std::size_t exponent) const;

 private:
  static constexpr std::size_t kSymbolBits = 10;  // GF(2^10)
  static constexpr std::size_t kFieldOrder = 1023;

  /// Packs the t odd syndromes of `data` (LSB-first window image) into a u64.
  [[nodiscard]] std::uint64_t syndromes(std::span<const std::uint8_t> data,
                                        std::size_t window_bits) const;

  std::size_t t_;
  std::string name_;
  // exp_[k] = alpha^k (k < 2*1022 to skip mod in products); log_ unused by
  // the erasure decoder but kept for completeness of the field tables.
  std::array<std::uint16_t, 2 * kFieldOrder> exp_{};
};

}  // namespace pcmsim
