#include "ecc/safer.hpp"

#include <algorithm>
#include <bit>
#include <unordered_set>

#include "common/assert.hpp"

namespace pcmsim {

namespace {

/// Group id of a cell address under a field selection (indices of address bits).
std::size_t group_of(std::size_t pos, std::span<const unsigned> fields) {
  std::size_t g = 0;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    g |= static_cast<std::size_t>((pos >> fields[i]) & 1u) << i;
  }
  return g;
}

}  // namespace

SaferScheme::SaferScheme(std::size_t partitions, Strategy strategy)
    : partitions_(partitions), strategy_(strategy) {
  expects(partitions >= 2 && std::has_single_bit(partitions), "partitions must be a power of two");
  fields_ = static_cast<unsigned>(std::countr_zero(partitions));
  expects(fields_ * 4 + partitions_ <= 64, "SAFER metadata exceeds the 64-bit budget");
  name_ = "SAFER-" + std::to_string(partitions);
  if (strategy == Strategy::kExhaustive) name_ += "-ideal";
}

std::size_t SaferScheme::metadata_bits() const { return fields_ * 4 + partitions_; }

unsigned SaferScheme::address_bits_for(std::size_t window_bits) {
  expects(window_bits >= 1 && window_bits <= kBlockBits, "window must be 1..512 bits");
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < window_bits) ++bits;
  return bits;
}

unsigned SaferScheme::fields_for(std::size_t window_bits) const {
  return std::min(fields_, address_bits_for(window_bits));
}

std::optional<std::vector<unsigned>> SaferScheme::exhaustive_partitioning(
    std::span<const FaultCell> faults, std::size_t window_bits) const {
  const unsigned abits = address_bits_for(window_bits);
  const unsigned use = fields_for(window_bits);
  if (faults.size() > (std::size_t{1} << use)) return std::nullopt;

  // All selections of `use` address bits out of `abits` (<= 2^9 masks).
  for (unsigned mask = 0; mask < (1u << abits); ++mask) {
    if (std::popcount(mask) != static_cast<int>(use)) continue;
    std::vector<unsigned> fields;
    for (unsigned b = 0; b < abits; ++b) {
      if ((mask >> b) & 1u) fields.push_back(b);
    }
    std::unordered_set<std::size_t> seen;
    bool ok = true;
    for (const auto& f : faults) {
      if (!seen.insert(group_of(f.pos, fields)).second) {
        ok = false;
        break;
      }
    }
    if (ok) return fields;
  }
  // use == abits means every cell already has a unique group; reaching here
  // with that selection failing implies duplicate fault positions.
  return std::nullopt;
}

std::optional<std::vector<unsigned>> SaferScheme::greedy_partitioning(
    std::span<const FaultCell> faults, std::size_t window_bits) const {
  const unsigned abits = address_bits_for(window_bits);
  const unsigned max_fields = fields_for(window_bits);

  // Hardware algorithm: faults arrive one at a time (here: position order, an
  // unbiased stand-in for wear-out order). A new fault colliding with an
  // earlier one appends the lowest address bit that distinguishes the pair.
  // Chosen bits only ever refine the partition, so previously separated
  // pairs stay separated and each collision consumes at most one field.
  std::vector<unsigned> chosen;
  for (std::size_t i = 0; i < faults.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (group_of(faults[i].pos, chosen) != group_of(faults[j].pos, chosen)) continue;
      // Collision: previous faults are pairwise separated, so j is unique.
      const auto diff =
          static_cast<unsigned>(faults[i].pos ^ faults[j].pos);
      if (diff == 0) return std::nullopt;  // duplicate position
      if (chosen.size() >= max_fields) return std::nullopt;
      chosen.push_back(static_cast<unsigned>(std::countr_zero(diff)));
      break;
    }
  }
  // Pad with unused address bits: extra fields only refine groups further.
  for (unsigned b = 0; b < abits && chosen.size() < max_fields; ++b) {
    if (std::find(chosen.begin(), chosen.end(), b) == chosen.end()) chosen.push_back(b);
  }
  return chosen;
}

std::optional<std::vector<unsigned>> SaferScheme::find_partitioning(
    std::span<const FaultCell> faults, std::size_t window_bits) const {
  return strategy_ == Strategy::kGreedy ? greedy_partitioning(faults, window_bits)
                                        : exhaustive_partitioning(faults, window_bits);
}

bool SaferScheme::can_tolerate(std::span<const FaultCell> faults,
                               std::size_t window_bits) const {
  if (faults.size() <= 1) return true;
  return find_partitioning(faults, window_bits).has_value();
}

std::optional<HardErrorScheme::EncodeResult> SaferScheme::encode(
    std::span<const std::uint8_t> data, std::size_t window_bits,
    std::span<const FaultCell> faults) const {
  const auto fields = find_partitioning(faults, window_bits);
  if (!fields) return std::nullopt;

  // Pick each group's inversion so its (single) stuck cell matches the data.
  std::vector<std::uint8_t> flip(partitions_, 0);
  for (const auto& f : faults) {
    const std::size_t g = group_of(f.pos, *fields);
    flip[g] = get_bit(data, f.pos) != f.stuck_value ? 1 : 0;
  }

  EncodeResult out;
  out.image.assign((window_bits + 7) / 8, 0);
  for (std::size_t i = 0; i < window_bits; ++i) {
    const bool bit = get_bit(data, i) ^ (flip[group_of(i, *fields)] != 0);
    set_bit(out.image, i, bit);
  }

  std::uint64_t meta = 0;
  for (std::size_t i = 0; i < fields->size(); ++i) {
    meta |= static_cast<std::uint64_t>((*fields)[i] & 0xFu) << (i * 4);
  }
  for (std::size_t g = 0; g < partitions_; ++g) {
    if (flip[g]) meta |= 1ull << (fields_ * 4 + g);
  }
  out.meta = meta;
  return out;
}

InlineBytes SaferScheme::decode(std::span<const std::uint8_t> raw,
                                              std::size_t window_bits, std::uint64_t meta,
                                              std::span<const FaultCell> /*faults*/) const {
  const unsigned use = fields_for(window_bits);
  std::vector<unsigned> fields(use);
  for (unsigned i = 0; i < use; ++i) {
    fields[i] = static_cast<unsigned>((meta >> (i * 4)) & 0xFu);
  }
  InlineBytes out;
  out.assign((window_bits + 7) / 8, 0);
  for (std::size_t i = 0; i < window_bits; ++i) {
    const std::size_t g = group_of(i, fields);
    const bool flip = (meta >> (fields_ * 4 + g)) & 1u;
    set_bit(out, i, get_bit(raw, i) ^ flip);
  }
  return out;
}

}  // namespace pcmsim
