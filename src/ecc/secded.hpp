// SECDED (72,64) Hsiao code, applied independently to each 64-bit word of the
// line (8 words x 8 check bits = the full 64-bit ECC-chip budget).
//
// Included as the conventional-DRAM baseline the paper argues *against* for
// PCM (Section II-C): it corrects at most one stuck cell per 64-bit word and
// its check bits are written on every data update. The `ablate_ecc_scheme`
// bench quantifies that argument.
#pragma once

#include <array>

#include "ecc/scheme.hpp"

namespace pcmsim {

class SecdedScheme final : public HardErrorScheme {
 public:
  SecdedScheme();

  [[nodiscard]] std::string_view name() const override { return "SECDED-72.64"; }
  [[nodiscard]] std::size_t metadata_bits() const override { return 64; }
  [[nodiscard]] std::size_t guaranteed_correctable() const override { return 1; }
  /// Check bits span fixed 64-bit words of the whole line: no sub-line
  /// windows, and only the Baseline (uncompressed, non-sliding) mode is legal.
  [[nodiscard]] SchemeTraits traits() const override {
    SchemeTraits t = HardErrorScheme::traits();
    t.composes_with_window = false;
    t.baseline_only = true;
    return t;
  }
  [[nodiscard]] bool can_tolerate(std::span<const FaultCell> faults,
                                  std::size_t window_bits) const override;
  [[nodiscard]] std::optional<EncodeResult> encode(
      std::span<const std::uint8_t> data, std::size_t window_bits,
      std::span<const FaultCell> faults) const override;
  [[nodiscard]] InlineBytes decode(std::span<const std::uint8_t> raw,
                                                 std::size_t window_bits, std::uint64_t meta,
                                                 std::span<const FaultCell> faults) const override;

  /// Check bits for one 64-bit data word.
  [[nodiscard]] std::uint8_t compute_check(std::uint64_t word) const;

  /// Corrects up to one flipped bit in (word, check). Returns nullopt on an
  /// uncorrectable (double) error.
  struct Corrected {
    std::uint64_t word;
    bool corrected_data_bit;
  };
  [[nodiscard]] std::optional<Corrected> correct(std::uint64_t word, std::uint8_t check) const;

 private:
  // column_[i] is the 8-bit odd-weight syndrome column of data bit i;
  // check bit j has the weight-1 column (1 << j).
  std::array<std::uint8_t, 64> column_{};
  // Transpose of column_: bit i of parity_mask_[j] is bit j of column_[i],
  // so check bit j is the parity of (word & parity_mask_[j]) — 8 popcounts
  // per word instead of a column XOR per set data bit.
  std::array<std::uint64_t, 8> parity_mask_{};
};

}  // namespace pcmsim
