#include "ecc/registry.hpp"

#include <array>
#include <charconv>
#include <string>

#include "common/assert.hpp"
#include "ecc/aegis.hpp"
#include "ecc/bch.hpp"
#include "ecc/coset.hpp"
#include "ecc/ecp.hpp"
#include "ecc/safer.hpp"
#include "ecc/secded.hpp"

namespace pcmsim {

namespace {

constexpr SchemeTraits line_traits(std::size_t meta, std::size_t guaranteed) {
  return SchemeTraits{meta, guaranteed, SchemeGranularity::kLine, true, false, false};
}

// The canonical laboratory, in bench enumeration order. Names and traits are
// snapshots; tests/ecc_registry_test asserts they match the constructed
// schemes exactly.
constexpr std::array<SchemeSpecInfo, 8> kRegistry = {{
    {"ecp6", "ECP-6", "6 pointer+replacement entries (paper baseline, 63 meta bits)",
     line_traits(63, 6)},
    {"ecp12", "ECP-12", "12 ECP entries (2x budget: what pointers alone buy)",
     line_traits(124, 12)},
    {"safer32", "SAFER-32", "32 address-bit partitions, greedy field selection",
     line_traits(52, 6)},
    {"aegis17x31", "Aegis-17x31", "CRT grid partitions, 8 guaranteed in 37 meta bits",
     line_traits(37, 8)},
    {"secded", "SECDED-72.64", "Hsiao (72,64) per word; DRAM baseline, whole lines only",
     SchemeTraits{64, 1, SchemeGranularity::kLine, false, true, false}},
    {"bch-t2", "BCH-t2", "2 odd syndromes over GF(2^10): 4 erasures in 20 meta bits",
     line_traits(20, 4)},
    {"bch-t6", "BCH-t6", "6 odd syndromes: 12 erasures in 60 meta bits (2x ECP-6)",
     line_traits(60, 12)},
    {"coset-w4", "Coset-W4", "word-level restricted coset coding over per-word FPC slack",
     SchemeTraits{32, 1, SchemeGranularity::kWord, false, false, true}},
}};

/// Parses the decimal integer that is the whole remainder of `s`.
std::optional<std::size_t> parse_num(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::size_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::unique_ptr<HardErrorScheme> parse_scheme(std::string_view spec) {
  if (spec == "secded") return std::make_unique<SecdedScheme>();
  if (starts_with(spec, "ecp")) {
    const auto n = parse_num(spec.substr(3));
    expects(n.has_value(), "malformed ecp<N> spec");
    return std::make_unique<EcpScheme>(*n);
  }
  if (starts_with(spec, "safer")) {
    std::string_view rest = spec.substr(5);
    SaferScheme::Strategy strategy = SaferScheme::Strategy::kGreedy;
    constexpr std::string_view kIdeal = "-ideal";
    if (rest.size() > kIdeal.size() &&
        rest.substr(rest.size() - kIdeal.size()) == kIdeal) {
      strategy = SaferScheme::Strategy::kExhaustive;
      rest = rest.substr(0, rest.size() - kIdeal.size());
    }
    const auto p = parse_num(rest);
    expects(p.has_value(), "malformed safer<P>[-ideal] spec");
    return std::make_unique<SaferScheme>(*p, strategy);
  }
  if (starts_with(spec, "aegis")) {
    const std::string_view rest = spec.substr(5);
    const std::size_t x = rest.find('x');
    expects(x != std::string_view::npos, "malformed aegis<R>x<C> spec");
    const auto rows = parse_num(rest.substr(0, x));
    const auto cols = parse_num(rest.substr(x + 1));
    expects(rows.has_value() && cols.has_value(), "malformed aegis<R>x<C> spec");
    return std::make_unique<AegisScheme>(*rows, *cols);
  }
  if (starts_with(spec, "bch-t")) {
    const auto t = parse_num(spec.substr(5));
    expects(t.has_value(), "malformed bch-t<T> spec");
    return std::make_unique<BchScheme>(*t);
  }
  if (starts_with(spec, "coset-w")) {
    const auto w = parse_num(spec.substr(7));
    expects(w.has_value(), "malformed coset-w<W> spec");
    return std::make_unique<CosetScheme>(*w);
  }
  expects(false, "unknown ECC scheme spec (try ecp6, ecp12, safer32, safer32-ideal, "
                 "aegis17x31, secded, bch-t2, bch-t6, coset-w4)");
  return nullptr;
}

}  // namespace

std::span<const SchemeSpecInfo> registered_schemes() { return kRegistry; }

const SchemeSpecInfo* find_scheme_info(std::string_view spec) {
  for (const auto& info : kRegistry) {
    if (info.spec == spec) return &info;
  }
  return nullptr;
}

std::unique_ptr<HardErrorScheme> make_scheme(std::string_view spec) {
  return parse_scheme(spec);
}

bool is_scheme_spec(std::string_view spec) {
  try {
    (void)parse_scheme(spec);
    return true;
  } catch (const ContractViolation&) {
    return false;
  }
}

SchemeTraits scheme_traits(std::string_view spec) {
  if (const auto* info = find_scheme_info(spec)) return info->traits;
  return make_scheme(spec)->traits();
}

std::string_view canonical_spec(EccKind kind) {
  switch (kind) {
    case EccKind::kEcp6: return "ecp6";
    case EccKind::kSafer32: return "safer32";
    case EccKind::kAegis17x31: return "aegis17x31";
    case EccKind::kSecded: return "secded";
  }
  expects(false, "unknown ECC kind");
  return "";
}

std::unique_ptr<HardErrorScheme> make_scheme(EccKind kind) {
  return make_scheme(canonical_spec(kind));
}

}  // namespace pcmsim
