#include "ecc/freep.hpp"

#include "common/assert.hpp"

namespace pcmsim {

std::vector<std::uint8_t> FreePPointerCodec::encode(std::uint16_t target) {
  // Bit b of the pointer occupies positions b, b+16, b+32, ... so that a
  // contiguous cluster of stuck cells hits different pointer bits rather
  // than many replicas of the same bit.
  std::vector<std::uint8_t> image(kBlockBytes, 0);
  for (std::size_t r = 0; r < kReplicas; ++r) {
    for (std::size_t b = 0; b < kPointerBits; ++b) {
      if ((target >> b) & 1u) set_bit(image, r * kPointerBits + b, true);
    }
  }
  return image;
}

std::uint16_t FreePPointerCodec::decode(std::span<const std::uint8_t> raw) {
  expects(raw.size() * 8 >= kBlockBits, "pointer image must cover the data area");
  std::uint16_t out = 0;
  for (std::size_t b = 0; b < kPointerBits; ++b) {
    std::size_t ones = 0;
    for (std::size_t r = 0; r < kReplicas; ++r) {
      ones += get_bit(raw, r * kPointerBits + b) ? 1u : 0u;
    }
    if (ones * 2 > kReplicas) out = static_cast<std::uint16_t>(out | (1u << b));
  }
  return out;
}

FreePRemapper::FreePRemapper(PcmArray& array, std::size_t spares)
    : array_(&array),
      first_spare_(array.lines() - spares),
      spares_left_(spares),
      next_spare_(array.lines() - spares),
      remap_to_(array.lines(), kNoRemap) {
  expects(spares > 0 && spares < array.lines(), "spare count must be 1..lines-1");
  expects(array.lines() <= (std::size_t{1} << FreePPointerCodec::kPointerBits),
          "region too large for the 16-bit embedded pointer");
}

std::size_t FreePRemapper::resolve(std::size_t line) const {
  expects(line < remap_to_.size(), "line out of range");
  std::size_t cur = line;
  std::size_t hops = 0;
  while (remap_to_[cur] != kNoRemap) {
    cur = remap_to_[cur];
    ensures(++hops <= remap_to_.size(), "remap chain contains a cycle");
  }
  return cur;
}

std::optional<std::size_t> FreePRemapper::remap(std::size_t line) {
  const std::size_t dead = resolve(line);
  if (spares_left_ == 0) return std::nullopt;
  const std::size_t target = next_spare_++;
  --spares_left_;

  // Embed the pointer in the dead line. Stuck cells simply refuse the write;
  // the replication makes the majority decode come out right regardless.
  const auto image = FreePPointerCodec::encode(static_cast<std::uint16_t>(target));
  (void)array_->write_range(dead, 0, image, kBlockBits);
  remap_to_[dead] = static_cast<std::uint16_t>(target);
  return target;
}

bool FreePRemapper::verify_chain(std::size_t line) const {
  std::size_t cur = line;
  std::size_t hops = 0;
  while (remap_to_[cur] != kNoRemap) {
    std::vector<std::uint8_t> raw(kBlockBytes);
    array_->read_range(cur, 0, kBlockBits, raw);
    if (FreePPointerCodec::decode(raw) != remap_to_[cur]) return false;
    cur = remap_to_[cur];
    if (++hops > remap_to_.size()) return false;
  }
  return true;
}

}  // namespace pcmsim
