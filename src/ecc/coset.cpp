#include "ecc/coset.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "compression/fpc.hpp"
#include "compression/word_scan.hpp"

namespace pcmsim {

namespace {

/// In-place payload bits per FPC class. Differs from the stream format only
/// for zero cells: there is no run folding in place, so a zero cell needs no
/// payload at all (the tag alone says "this cell is 0").
unsigned inplace_payload_bits(FpcPattern p) {
  switch (p) {
    case FpcPattern::kZeroRun: return 0;
    case FpcPattern::kSign4: return 4;
    case FpcPattern::kSign8: return 8;
    case FpcPattern::kSign16: return 16;
    case FpcPattern::kHighHalfZeroPad: return 16;
    case FpcPattern::kTwoSignedBytes: return 16;
    case FpcPattern::kRepeatedByte: return 8;
    case FpcPattern::kUncompressed: return 32;
  }
  return 32;
}

std::uint32_t inplace_payload(FpcPattern p, std::uint32_t word) {
  switch (p) {
    case FpcPattern::kZeroRun: return 0;
    case FpcPattern::kSign4: return word & 0xFu;
    case FpcPattern::kSign8: return word & 0xFFu;
    case FpcPattern::kSign16: return word & 0xFFFFu;
    case FpcPattern::kHighHalfZeroPad: return word >> 16;
    case FpcPattern::kTwoSignedBytes: return (word & 0xFFu) | (((word >> 16) & 0xFFu) << 8);
    case FpcPattern::kRepeatedByte: return word & 0xFFu;
    case FpcPattern::kUncompressed: return word;
  }
  return word;
}

std::uint32_t sign_extend32(std::uint32_t v, unsigned bits) {
  const std::uint32_t mask = (1u << bits) - 1;
  std::uint32_t x = v & mask;
  if (x & (1u << (bits - 1))) x |= ~mask;
  return x;
}

std::uint32_t inplace_reconstruct(FpcPattern p, std::uint32_t payload) {
  switch (p) {
    case FpcPattern::kZeroRun: return 0;
    case FpcPattern::kSign4: return sign_extend32(payload, 4);
    case FpcPattern::kSign8: return sign_extend32(payload, 8);
    case FpcPattern::kSign16: return sign_extend32(payload, 16);
    case FpcPattern::kHighHalfZeroPad: return (payload & 0xFFFFu) << 16;
    case FpcPattern::kTwoSignedBytes:
      return (sign_extend32(payload & 0xFFu, 8) & 0xFFFFu) |
             ((sign_extend32((payload >> 8) & 0xFFu, 8) & 0xFFFFu) << 16);
    case FpcPattern::kRepeatedByte: return (payload & 0xFFu) * 0x01010101u;
    case FpcPattern::kUncompressed: return payload;
  }
  return payload;
}

std::uint32_t load_cell(std::span<const std::uint8_t> bytes, std::size_t cell) {
  std::uint32_t w = 0;
  std::memcpy(&w, bytes.data() + cell * 4, 4);
  return w;
}

void store_cell(std::span<std::uint8_t> bytes, std::size_t cell, std::uint32_t w) {
  std::memcpy(bytes.data() + cell * 4, &w, 4);
}

}  // namespace

CosetScheme::CosetScheme(std::size_t word_bytes) : word_bytes_(word_bytes) {
  expects(word_bytes == 4 || word_bytes == 8, "coset word granularity is 4 or 8 bytes");
  name_ = "Coset-W" + std::to_string(word_bytes);
}

std::uint8_t CosetScheme::cell_content_bits(std::uint32_t word) {
  const FpcPattern p = FpcCompressor::classify(word);
  if (p == FpcPattern::kUncompressed) return 32;
  return static_cast<std::uint8_t>(3 + inplace_payload_bits(p));
}

bool CosetScheme::can_tolerate(std::span<const FaultCell> faults,
                               std::size_t window_bits) const {
  const std::size_t word_bits = word_bytes_ * 8;
  expects(window_bits >= word_bits && window_bits <= kBlockBits &&
              window_bits % word_bits == 0,
          "coset windows are whole words up to one line");
  // Data-independent bound: the flip bit matches one stuck cell per word even
  // when every cell is incompressible (no slack at all).
  std::size_t prev_word = static_cast<std::size_t>(-1);
  for (const auto& f : faults) {
    const std::size_t w = f.pos / word_bits;
    if (w == prev_word) return false;  // positions are strictly increasing
    prev_word = w;
  }
  return true;
}

bool CosetScheme::can_tolerate_with(std::span<const FaultCell> faults,
                                    std::size_t window_bits,
                                    std::span<const std::uint8_t> word_content) const {
  if (word_content.empty()) return can_tolerate(faults, window_bits);
  const std::size_t word_bits = word_bytes_ * 8;
  expects(word_content.size() >= window_bits / 32, "content span too small for window");
  // Faults landing in a cell's slack region are free; at most one fault per
  // word may hit encoded content (the flip bit covers it).
  std::size_t prev_word = static_cast<std::size_t>(-1);
  for (const auto& f : faults) {
    if (f.pos >= window_bits) return false;
    const std::size_t cell = f.pos / 32;
    if ((f.pos % 32) >= word_content[cell]) continue;  // slack: don't-care
    const std::size_t w = f.pos / word_bits;
    if (w == prev_word) return false;
    prev_word = w;
  }
  return true;
}

void CosetScheme::word_content_bits(const WordClassScan& scan,
                                    std::span<std::uint8_t> out) const {
  expects(out.size() >= scan.word_class.size(), "content output span too small");
  for (std::size_t i = 0; i < scan.word_class.size(); ++i) {
    const auto p = static_cast<FpcPattern>(scan.word_class[i]);
    out[i] = p == FpcPattern::kUncompressed
                 ? 32
                 : static_cast<std::uint8_t>(3 + inplace_payload_bits(p));
  }
}

std::optional<HardErrorScheme::EncodeResult> CosetScheme::encode(
    std::span<const std::uint8_t> data, std::size_t window_bits,
    std::span<const FaultCell> faults) const {
  const std::size_t word_bits = word_bytes_ * 8;
  const std::size_t cells = window_bits / 32;
  const std::size_t cells_per_word = word_bytes_ / 4;

  // Derive per-cell classes from the data itself; by the WordClassScan
  // invariant this matches the phase-1 scan the placement check used.
  std::array<FpcPattern, kBlockBits / 32> cls{};
  std::array<std::uint8_t, kBlockBits / 32> content{};
  for (std::size_t c = 0; c < cells; ++c) {
    const std::uint32_t w = load_cell(data, c);
    cls[c] = FpcCompressor::classify(w);
    content[c] = cls[c] == FpcPattern::kUncompressed
                     ? 32
                     : static_cast<std::uint8_t>(3 + inplace_payload_bits(cls[c]));
  }
  if (!can_tolerate_with(faults, window_bits, {content.data(), cells})) return std::nullopt;

  EncodeResult out;
  out.image.resize(window_bits / 8);
  std::uint64_t coded_mask = 0;
  std::uint64_t flip_mask = 0;

  // Pass 1: per-cell encoded content, slack bits pre-set to their stuck
  // values (zero elsewhere) so the programmed image matches what the array
  // will hold and slack cells cost no programming pulses.
  std::array<std::uint32_t, kBlockBits / 32> enc{};
  for (std::size_t c = 0; c < cells; ++c) {
    const std::uint32_t w = load_cell(data, c);
    if (cls[c] == FpcPattern::kUncompressed) {
      enc[c] = w;
    } else {
      enc[c] = static_cast<std::uint32_t>(cls[c]) |
               (inplace_payload(cls[c], w) << 3);
      coded_mask |= 1ull << c;
    }
  }
  for (const auto& f : faults) {
    const std::size_t cell = f.pos / 32;
    const unsigned bit = static_cast<unsigned>(f.pos % 32);
    if (bit >= content[cell]) {
      enc[cell] = (enc[cell] & ~(1u << bit)) |
                  (static_cast<std::uint32_t>(f.stuck_value) << bit);
    }
  }

  // Pass 2: pick each word's coset (flip bit) to match its at-most-one
  // content-region fault, then store the (possibly inverted) content bits.
  for (const auto& f : faults) {
    const std::size_t cell = f.pos / 32;
    const unsigned bit = static_cast<unsigned>(f.pos % 32);
    if (bit >= content[cell]) continue;
    const bool current = (enc[cell] >> bit) & 1u;
    if (current != f.stuck_value) flip_mask |= 1ull << (f.pos / word_bits);
  }
  for (std::size_t c = 0; c < cells; ++c) {
    std::uint32_t v = enc[c];
    if ((flip_mask >> (c / cells_per_word)) & 1u) {
      // Invert content bits only: slack bits stay at their stuck/zero values
      // (decode never reads them, and inverting them would cost programming).
      const std::uint32_t m =
          content[c] >= 32 ? ~0u : ((1u << content[c]) - 1u);
      v ^= m;
    }
    store_cell(out.image, c, v);
  }
  out.meta = coded_mask | (flip_mask << cells);
  return out;
}

InlineBytes CosetScheme::decode(std::span<const std::uint8_t> raw, std::size_t window_bits,
                                std::uint64_t meta,
                                std::span<const FaultCell> /*faults*/) const {
  const std::size_t cells = window_bits / 32;
  const std::size_t cells_per_word = word_bytes_ / 4;
  InlineBytes out;
  out.resize(window_bits / 8);
  for (std::size_t c = 0; c < cells; ++c) {
    const bool coded = (meta >> c) & 1u;
    const bool flip = (meta >> (cells + c / cells_per_word)) & 1u;
    // Undo the coset inversion on the whole cell; only content bits are read
    // below, so inverting slack bits too is harmless.
    const std::uint32_t v = load_cell(raw, c) ^ (flip ? ~0u : 0u);
    if (!coded) {
      store_cell(out, c, v);
      continue;
    }
    const auto p = static_cast<FpcPattern>(v & 0x7u);
    const unsigned pay = inplace_payload_bits(p);
    const std::uint32_t payload = pay == 0 ? 0 : (v >> 3) & ((1u << pay) - 1u);
    store_cell(out, c, inplace_reconstruct(p, payload));
  }
  return out;
}

}  // namespace pcmsim
