// String-keyed, parameterized hard-error scheme registry — the front door of
// the ECC laboratory.
//
// A *spec* is a short string like "ecp6", "safer32", "bch-t2" or "coset-w4"
// that parses into a scheme factory. The registry serves two audiences:
//  * PcmSystem constructs the scheme for SystemConfig::ecc_spec and checks
//    the scheme's SchemeTraits instead of hard-coding per-scheme guards;
//  * benches/tests enumerate registered_schemes() to drive scheme-by-workload
//    matrices without instantiating anything — each entry carries the display
//    name and a traits snapshot (both test-enforced to match the constructed
//    scheme).
//
// Grammar (parameterized; the canonical list below is just the registered
// subset): ecp<N> (N in 1..12), safer<P>[-ideal] (P a power of two),
// aegis<R>x<C>, secded, bch-t<T> (T in 1..6), coset-w<W> (W in {4, 8}).
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "ecc/scheme.hpp"

namespace pcmsim {

/// Deprecated: the closed pre-registry scheme enum, kept only as a compat
/// shim for older config structs and bench flags. New code should pass a
/// spec string (SystemConfig::ecc_spec / make_scheme(spec)); each enumerator
/// maps onto its canonical spec via canonical_spec().
enum class EccKind : std::uint8_t { kEcp6, kSafer32, kAegis17x31, kSecded };

/// One registered (canonical) scheme spec. `name` and `traits` are static
/// snapshots of the constructed scheme's name()/traits() — equality is
/// enforced by the registry round-trip test — so callers can print tables or
/// pick a legal SystemMode without building a scheme.
struct SchemeSpecInfo {
  std::string_view spec;     ///< registry key, e.g. "bch-t2"
  std::string_view name;     ///< display name, == make_scheme(spec)->name()
  std::string_view summary;  ///< one-liner for bench/CLI listings
  SchemeTraits traits;       ///< == make_scheme(spec)->traits()
};

/// The canonical scheme list, in bench enumeration order.
[[nodiscard]] std::span<const SchemeSpecInfo> registered_schemes();

/// Registry entry for a canonical spec, or nullptr (parameterized specs that
/// are valid but not in the canonical list return nullptr too).
[[nodiscard]] const SchemeSpecInfo* find_scheme_info(std::string_view spec);

/// Parses `spec` and constructs the scheme. Throws ContractViolation on an
/// unknown spec or out-of-range parameters.
[[nodiscard]] std::unique_ptr<HardErrorScheme> make_scheme(std::string_view spec);

/// True when make_scheme(spec) would succeed.
[[nodiscard]] bool is_scheme_spec(std::string_view spec);

/// Traits of `spec` without keeping the scheme: canonical specs answer from
/// the registry table; other valid specs construct once.
[[nodiscard]] SchemeTraits scheme_traits(std::string_view spec);

/// Compat shim: canonical spec string of a legacy EccKind.
[[nodiscard]] std::string_view canonical_spec(EccKind kind);

/// Compat shim: builds the scheme selected by a legacy EccKind.
[[nodiscard]] std::unique_ptr<HardErrorScheme> make_scheme(EccKind kind);

}  // namespace pcmsim
