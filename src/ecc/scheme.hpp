// Hard-error tolerance scheme interface.
//
// PCM hard errors are *stuck-at* faults: the cell still reads reliably but no
// longer programs, and the mismatch is detected by the chip's verify read.
// A scheme therefore knows, at write time, exactly which cells are stuck and
// at which value, and must arrange the stored image (replacement entries,
// partition inversion, ...) so that a later read recovers the data exactly.
//
// The paper's baseline uses ECP-6 (Schechter et al., ISCA'10); SAFER
// (Seong et al., MICRO'10) and Aegis (Fan et al., MICRO'13) are evaluated as
// stronger partition-based alternatives (Section III-A.4, Figure 9).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "common/inline_bytes.hpp"
#include "common/types.hpp"

namespace pcmsim {

struct WordClassScan;  // compression/word_scan.hpp (word-granularity seam)

/// One stuck-at cell: position within the protected window and latched value.
struct FaultCell {
  std::uint16_t pos = 0;
  bool stuck_value = false;

  friend bool operator==(const FaultCell&, const FaultCell&) = default;
};

/// Protected-unit granularity of a scheme.
enum class SchemeGranularity : std::uint8_t {
  kLine,  ///< protects one (possibly sliding) window as a whole
  kWord,  ///< protects fixed words in place, consuming per-word slack
};

/// Capability descriptor a scheme declares about itself. PcmSystem's
/// constructor checks these instead of hard-coding per-scheme guards, and the
/// registry snapshots them so benches can reason about a scheme (pick a legal
/// mode, skip invalid combinations) without constructing it.
struct SchemeTraits {
  std::size_t metadata_bits = 0;          ///< == metadata_bits()
  std::size_t guaranteed_correctable = 0; ///< == guaranteed_correctable()
  SchemeGranularity granularity = SchemeGranularity::kLine;
  /// Works on sub-line windows, i.e. composes with the paper's sliding
  /// compression window. False for whole-line-only codes (SECDED, coset).
  bool composes_with_window = true;
  /// Only legal in SystemMode::kBaseline (e.g. SECDED: check bits cover the
  /// full 512-bit line; a moving sub-window would invalidate them).
  bool baseline_only = false;
  /// Needs the compression scan's per-word slack to function — the system
  /// must run with compression enabled (word-level restricted coset coding).
  bool requires_compression = false;

  friend bool operator==(const SchemeTraits&, const SchemeTraits&) = default;
};

class HardErrorScheme {
 public:
  virtual ~HardErrorScheme() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Metadata bits consumed in the line's 64-bit ECC-chip area.
  [[nodiscard]] virtual std::size_t metadata_bits() const = 0;

  /// Fault count the scheme corrects for *every* fault pattern.
  [[nodiscard]] virtual std::size_t guaranteed_correctable() const = 0;

  /// True when a window of `window_bits` cells containing exactly the given
  /// stuck cells can still store arbitrary data. Positions are window-relative
  /// and strictly increasing. Data-independent for all implemented schemes.
  [[nodiscard]] virtual bool can_tolerate(std::span<const FaultCell> faults,
                                          std::size_t window_bits) const = 0;

  /// Produces the bit image to store so that, after the stuck cells impose
  /// their values, decode() recovers `data` exactly. Returns nullopt when the
  /// fault pattern is uncorrectable. `image` and `data` are LSB-first packed
  /// `window_bits`-long buffers; `meta` receives scheme metadata.
  struct EncodeResult {
    InlineBytes image;       ///< bits to program into the window (<= 64 bytes)
    std::uint64_t meta = 0;  ///< metadata word (<= metadata_bits() used)
  };
  [[nodiscard]] virtual std::optional<EncodeResult> encode(
      std::span<const std::uint8_t> data, std::size_t window_bits,
      std::span<const FaultCell> faults) const = 0;

  /// Recovers the original data from a raw read of the window plus metadata.
  [[nodiscard]] virtual InlineBytes decode(std::span<const std::uint8_t> raw,
                                           std::size_t window_bits, std::uint64_t meta,
                                           std::span<const FaultCell> faults) const = 0;

  /// Capability descriptor; the default derives it from the virtuals above
  /// (line granularity, no restrictions). Schemes with placement or mode
  /// restrictions override this.
  [[nodiscard]] virtual SchemeTraits traits() const;

  // --- Word-granularity slack seam (SchemeGranularity::kWord only) ---------

  /// can_tolerate() refined with per-u32-cell content sizes: `word_content[i]`
  /// is how many of cell i's 32 bits carry encoded content (the rest are
  /// compression slack the scheme may treat as don't-cares). An empty span
  /// means "content unknown" and must fall back to the data-independent
  /// can_tolerate(). Line-granularity schemes ignore the span entirely.
  [[nodiscard]] virtual bool can_tolerate_with(std::span<const FaultCell> faults,
                                               std::size_t window_bits,
                                               std::span<const std::uint8_t> word_content) const;

  /// Fills `out[i]` with the content bits of u32 cell i implied by the
  /// compression scan (phase-1 word classes). Only meaningful for word-
  /// granularity schemes; the default throws.
  virtual void word_content_bits(const WordClassScan& scan,
                                 std::span<std::uint8_t> out) const;
};

/// Applies stuck-at faults to an image: what the array would actually hold.
[[nodiscard]] InlineBytes apply_faults(std::span<const std::uint8_t> image,
                                       std::size_t window_bits,
                                       std::span<const FaultCell> faults);

}  // namespace pcmsim
