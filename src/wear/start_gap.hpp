// Start-Gap inter-line wear-leveling (Qureshi et al., MICRO 2009).
//
// One spare "gap" line is kept in the physical region; every `gap_interval`
// writes the gap migrates one slot (copying its neighbour's content), and a
// start pointer advances each full revolution. The logical->physical mapping
// is pure arithmetic — exactly the hardware formulation:
//
//   pa = (la + start) mod P;   if (pa >= gap) pa = (pa + 1) mod P
//
// An optional static randomization layer (4-round Feistel network with
// cycle-walking) decorrelates logically-adjacent hot lines first, as the
// Start-Gap paper recommends for adversarial/clustered write patterns.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"

namespace pcmsim {

/// Invertible pseudo-random permutation over [0, n) (Feistel + cycle-walk).
class StaticRandomizer {
 public:
  StaticRandomizer(std::uint64_t n, std::uint64_t seed);

  [[nodiscard]] std::uint64_t map(std::uint64_t x) const;
  [[nodiscard]] std::uint64_t unmap(std::uint64_t y) const;
  [[nodiscard]] std::uint64_t universe() const { return n_; }

 private:
  [[nodiscard]] std::uint64_t feistel(std::uint64_t x, bool forward) const;

  std::uint64_t n_;
  unsigned half_bits_;  // each Feistel half is this wide
  std::uint64_t keys_[4]{};
};

class StartGap {
 public:
  /// Manages `logical_lines` lines over `logical_lines + 1` physical slots.
  /// `gap_interval` is psi (the paper of record uses 100).
  StartGap(std::uint64_t logical_lines, std::uint64_t gap_interval = 100,
           bool randomize = true, std::uint64_t seed = 0);

  [[nodiscard]] std::uint64_t logical_lines() const { return n_; }
  [[nodiscard]] std::uint64_t physical_lines() const { return n_ + 1; }

  /// Current logical -> physical mapping.
  [[nodiscard]] std::uint64_t map(std::uint64_t logical) const;

  /// One gap migration: content of `from` must be copied to `to` by the owner
  /// of the storage (which costs one line write of wear).
  struct GapMove {
    std::uint64_t from;
    std::uint64_t to;
  };

  /// Records one serviced write; returns a move when the gap must migrate.
  [[nodiscard]] std::optional<GapMove> on_write();

  [[nodiscard]] std::uint64_t gap() const { return gap_; }
  [[nodiscard]] std::uint64_t start() const { return start_; }
  [[nodiscard]] std::uint64_t total_moves() const { return moves_; }

 private:
  std::uint64_t n_;
  std::uint64_t interval_;
  std::optional<StaticRandomizer> randomizer_;
  std::uint64_t start_ = 0;
  std::uint64_t gap_;
  std::uint64_t writes_since_move_ = 0;
  std::uint64_t moves_ = 0;
};

}  // namespace pcmsim
