// Intra-line wear-leveling (paper Section III-A.2).
//
// Compression confines bit flips to the low end of each line, so the window
// start must rotate over time. To avoid per-line write counters, the paper
// keeps ONE counter per bank: every `threshold` writes to the bank, the
// bank's rotation offset advances by `step_bytes`; a line adopts the bank's
// current offset the next time it is written (its 6-bit start pointer
// metadata records where its window currently begins).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace pcmsim {

class IntraLineRotator {
 public:
  /// `threshold` is the bank-counter saturation value (the paper uses a
  /// 16-bit counter, i.e. 65536; lifetime runs scale it with endurance).
  IntraLineRotator(std::uint32_t banks, std::uint64_t threshold = std::uint64_t{1} << 16,
                   std::uint32_t step_bytes = 1)
      : threshold_(threshold), step_bytes_(step_bytes), counters_(banks, 0),
        offsets_(banks, 0), rotations_(banks, 0) {
    expects(banks > 0, "need at least one bank");
    expects(threshold > 0, "rotation threshold must be positive");
    expects(step_bytes > 0 && step_bytes < kBlockBytes, "step must be 1..63 bytes");
  }

  /// Offset (in bytes, < 64) new writes to this bank should start at.
  [[nodiscard]] std::uint32_t offset_bytes(std::uint32_t bank) const {
    return offsets_.at(bank);
  }

  /// Records one write to `bank`; advances the offset on counter saturation.
  void on_write(std::uint32_t bank) {
    auto& c = counters_.at(bank);
    if (++c >= threshold_) {
      c = 0;
      offsets_[bank] = (offsets_[bank] + step_bytes_) % kBlockBytes;
      ++rotations_[bank];
    }
  }

  [[nodiscard]] std::uint64_t rotations(std::uint32_t bank) const { return rotations_.at(bank); }
  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }
  [[nodiscard]] std::uint32_t banks() const { return static_cast<std::uint32_t>(counters_.size()); }

 private:
  std::uint64_t threshold_;
  std::uint32_t step_bytes_;
  std::vector<std::uint64_t> counters_;
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint64_t> rotations_;
};

}  // namespace pcmsim
