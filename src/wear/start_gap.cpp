#include "wear/start_gap.hpp"

#include "common/assert.hpp"

namespace pcmsim {

StaticRandomizer::StaticRandomizer(std::uint64_t n, std::uint64_t seed) : n_(n) {
  expects(n > 0, "randomizer universe must be non-empty");
  unsigned total_bits = 1;
  while ((std::uint64_t{1} << total_bits) < n) ++total_bits;
  if (total_bits % 2 != 0) ++total_bits;  // Feistel needs an even split
  half_bits_ = total_bits / 2;
  std::uint64_t sm = seed ^ 0xfe157e1fe157e1ull;
  for (auto& k : keys_) k = splitmix64(sm);
}

std::uint64_t StaticRandomizer::feistel(std::uint64_t x, bool forward) const {
  const std::uint64_t half_mask = (std::uint64_t{1} << half_bits_) - 1;
  std::uint64_t left = (x >> half_bits_) & half_mask;
  std::uint64_t right = x & half_mask;
  for (int r = 0; r < 4; ++r) {
    const std::uint64_t key = forward ? keys_[r] : keys_[3 - r];
    const std::uint64_t f = mix64(right ^ key) & half_mask;
    const std::uint64_t new_right = left ^ f;
    left = right;
    right = new_right;
  }
  // The swap structure above is an involution-friendly unbalanced form; undo
  // the final swap so forward/backward are inverses.
  return (right << half_bits_) | left;
}

std::uint64_t StaticRandomizer::map(std::uint64_t x) const {
  expects(x < n_, "randomizer input out of range");
  std::uint64_t y = x;
  do {
    y = feistel(y, true);
  } while (y >= n_);  // cycle-walking keeps the permutation closed over [0, n)
  return y;
}

std::uint64_t StaticRandomizer::unmap(std::uint64_t y) const {
  expects(y < n_, "randomizer input out of range");
  std::uint64_t x = y;
  do {
    x = feistel(x, false);
  } while (x >= n_);
  return x;
}

StartGap::StartGap(std::uint64_t logical_lines, std::uint64_t gap_interval, bool randomize,
                   std::uint64_t seed)
    : n_(logical_lines), interval_(gap_interval), gap_(logical_lines) {
  expects(logical_lines > 0, "StartGap needs at least one line");
  expects(gap_interval > 0, "gap interval must be positive");
  if (randomize) randomizer_.emplace(logical_lines, seed);
}

std::uint64_t StartGap::map(std::uint64_t logical) const {
  expects(logical < n_, "logical line out of range");
  const std::uint64_t la = randomizer_ ? randomizer_->map(logical) : logical;
  // Qureshi's formulation: rotate over the N *logical* slots, then skip the
  // gap with a non-wrapping +1 (PA ranges over [0, N] = all physical slots).
  std::uint64_t pa = (la + start_) % n_;
  if (pa >= gap_) pa += 1;
  return pa;
}

std::optional<StartGap::GapMove> StartGap::on_write() {
  if (++writes_since_move_ < interval_) return std::nullopt;
  writes_since_move_ = 0;
  ++moves_;
  const std::uint64_t to = gap_;
  const std::uint64_t from = gap_ == 0 ? n_ : gap_ - 1;
  gap_ = from;
  if (to == 0) {
    // Gap wrapped from the top: one full revolution completed.
    start_ = (start_ + 1) % n_;
  }
  return GapMove{from, to};
}

}  // namespace pcmsim
