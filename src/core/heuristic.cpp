#include "core/heuristic.hpp"

#include <cstdlib>

namespace pcmsim {

namespace {

std::uint8_t sc_step(const HeuristicConfig& cfg, std::uint8_t comp_size, std::uint8_t old_size,
                     std::uint8_t sc) {
  const int delta = std::abs(static_cast<int>(comp_size) - static_cast<int>(old_size));
  if (delta < static_cast<int>(cfg.threshold2_bytes)) {
    return sc > 0 ? static_cast<std::uint8_t>(sc - 1) : 0;
  }
  return sc < 3 ? static_cast<std::uint8_t>(sc + 1) : 3;
}

}  // namespace

WriteDecision decide_write(const HeuristicConfig& cfg, std::uint8_t comp_size,
                           std::uint8_t old_size, std::uint8_t sc) {
  if (!cfg.enabled) return WriteDecision{true, sc};

  // Extension: a near-line-sized image cannot dodge faults anyway.
  if (cfg.threshold3_bytes != 0 && comp_size >= cfg.threshold3_bytes) {
    return WriteDecision{false, cfg.update_always ? sc_step(cfg, comp_size, old_size, sc) : sc};
  }
  // Step 1: strongly compressible data is always stored compressed.
  if (comp_size < cfg.threshold1_bytes) {
    return WriteDecision{true, cfg.update_always ? sc_step(cfg, comp_size, old_size, sc) : sc};
  }
  // Step 2: saturated counter means this line's sizes churn — go uncompressed.
  if (sc == 3) {
    return WriteDecision{false, cfg.update_always ? sc_step(cfg, comp_size, old_size, sc) : sc};
  }
  // Step 3: compress and track size volatility.
  return WriteDecision{true, sc_step(cfg, comp_size, old_size, sc)};
}

}  // namespace pcmsim
