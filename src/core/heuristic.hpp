// The write-decision heuristic of Figure 8 (paper Section III-A.1).
//
// Compression raises data entropy, and for ~20% of write-backs the number of
// post-DW bit flips *increases*. The controller cannot see chip-level flips,
// so the paper predicts harmful writes from compressed-size volatility: a
// 2-bit saturating counter (SC) per line tracks whether consecutive writes
// change size; saturated SC + poorly-compressing data => store uncompressed.
#pragma once

#include <cstdint>

namespace pcmsim {

struct HeuristicConfig {
  bool enabled = true;
  std::uint8_t threshold1_bytes = 16;  ///< always compress below this size
  std::uint8_t threshold2_bytes = 8;   ///< |old - new| size delta counted as "variable"
  /// Extension beyond the paper (0 = off): store uncompressed when the image
  /// is at least this large — a near-line-sized window has no fault-dodging
  /// headroom left, so only the repacking entropy cost remains (this is what
  /// makes lbm lose lifetime under blind compression).
  std::uint8_t threshold3_bytes = 0;
  /// Figure 8 only updates SC on the compressed path; with `update_always`
  /// the size-volatility tracking also runs on the other two paths, so a line
  /// latched into the uncompressed state can recover once its sizes settle.
  /// (Kept configurable for the ablation bench.)
  bool update_always = true;
};

struct WriteDecision {
  bool store_compressed = true;
  std::uint8_t new_sc = 0;
};

/// One step of the Figure 8 flow.
///
/// `comp_size` is the best-of compressed size of the incoming data;
/// `old_size` the size of what the line currently stores (64 if uncompressed
/// or never written); `sc` the line's current counter.
[[nodiscard]] WriteDecision decide_write(const HeuristicConfig& cfg, std::uint8_t comp_size,
                                         std::uint8_t old_size, std::uint8_t sc);

}  // namespace pcmsim
