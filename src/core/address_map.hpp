// The single source of truth for how line addresses map onto the memory
// organization (channels x banks), shared by every layer that reasons about
// bank-level parallelism: PcmSystem's per-bank rotation counters, the
// sec5b controller timing bench, and the sharded multi-tenant engine
// (sim/sharded_engine.hpp). Keeping one helper means the timing model and
// the execution engine can never disagree on which bank a line lives in.
//
// The interleave is DDR-style low-order: consecutive lines land on
// consecutive banks (round-robin across all channels x banks), which is what
// spreads a sequential write-back burst across every bank that could serve
// it in parallel. `local_of` is the per-shard row index that remains after
// the shard bits are peeled off, so a region of `n` global lines shards into
// `shards()` regions of `n / shards()` local lines each.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace pcmsim {

/// Bank of a physical line under round-robin interleave — the one mapping
/// formula every consumer must share. PcmSystem uses it against its own
/// `banks` count for the intra-line rotation counters.
[[nodiscard]] constexpr std::uint32_t bank_of(std::uint64_t physical_line,
                                              std::uint32_t banks) {
  return static_cast<std::uint32_t>(physical_line % banks);
}

/// Channel x bank geometry and the line -> shard mapping derived from it.
/// A "shard" is one (channel, bank) pair: the unit that owns an independent
/// PcmSystem slice in the sharded engine and one bank queue in the
/// controller model.
struct AddressMap {
  std::uint32_t channels = 2;         ///< Table II: 2 channels
  std::uint32_t banks_per_channel = 4;  ///< Table II: 1 rank x 4 banks

  [[nodiscard]] constexpr std::uint32_t shards() const {
    return channels * banks_per_channel;
  }

  /// Shard (global bank index across channels) serving `line`.
  [[nodiscard]] constexpr std::uint32_t shard_of(LineAddr line) const {
    return bank_of(line, shards());
  }

  /// Channel serving `line` (shards interleave across channels first).
  [[nodiscard]] constexpr std::uint32_t channel_of(LineAddr line) const {
    return shard_of(line) % channels;
  }

  /// Bank within its channel serving `line`.
  [[nodiscard]] constexpr std::uint32_t channel_bank_of(LineAddr line) const {
    return shard_of(line) / channels;
  }

  /// Per-shard row index of `line` (its address inside the owning shard).
  [[nodiscard]] constexpr std::uint64_t local_of(LineAddr line) const {
    return line / shards();
  }

  /// Inverse of (shard_of, local_of): the global line address.
  [[nodiscard]] constexpr LineAddr global_of(std::uint32_t shard,
                                             std::uint64_t local) const {
    return local * shards() + shard;
  }

  /// Validates the geometry (constructors of consumers call this once).
  void validate() const {
    expects(channels >= 1, "address map needs at least one channel");
    expects(banks_per_channel >= 1, "address map needs at least one bank per channel");
  }
};

}  // namespace pcmsim
