#include "core/system.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/profiler.hpp"
#include "compression/word_scan.hpp"
#include "core/address_map.hpp"

namespace pcmsim {

std::string_view to_string(SystemMode m) {
  switch (m) {
    case SystemMode::kBaseline: return "Baseline";
    case SystemMode::kComp: return "Comp";
    case SystemMode::kCompW: return "Comp+W";
    case SystemMode::kCompWF: return "Comp+WF";
  }
  return "?";
}

void SystemStats::merge(const SystemStats& other) {
  writes += other.writes;
  compressed_writes += other.compressed_writes;
  uncompressed_writes += other.uncompressed_writes;
  dropped_writes += other.dropped_writes;
  uncorrectable_events += other.uncorrectable_events;
  window_slides += other.window_slides;
  recycled_lines += other.recycled_lines;
  gap_moves += other.gap_moves;
  lines_dead += other.lines_dead;
  faults_at_death.merge(other.faults_at_death);
  flips_per_write.merge(other.flips_per_write);
  compressed_size.merge(other.compressed_size);
}

namespace {

/// The paper's 16-bit bank counter is calibrated against 1e7-cycle cells.
/// Scaled-endurance runs cannot shrink the period proportionally: every
/// rotation re-writes a line's whole window once (a fixed flip cost that does
/// not scale with endurance), so rotating too often inflates wear instead of
/// leveling it, while rotating too rarely leaves wear concentrated. The
/// measured optimum sits on a plateau of ~1-5x the per-cell endurance for
/// the paper's geometry (8 banks, psi=100); 2x is used as the default — see
/// bench/ablate_intraline for the full tradeoff curve.
std::uint64_t auto_rotation_threshold(const SystemConfig& cfg) {
  if (cfg.rotation_threshold != 0) return cfg.rotation_threshold;
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(2.0 * cfg.device.endurance_mean));
}

}  // namespace

PcmSystem::PcmSystem(const SystemConfig& config)
    : config_(config),
      array_(config.device),
      startgap_(config.device.lines - 1, config.gap_interval, config.startgap_randomize,
                config.seed),
      rotator_(config.banks, auto_rotation_threshold(config), config.rotation_step_bytes),
      scheme_(make_scheme(config.resolved_ecc_spec())),
      placer_(*scheme_),
      lines_(config.device.lines) {
  expects(config.device.lines >= 2, "need at least one logical line plus the gap");
  expects(config.dead_capacity_fraction > 0 && config.dead_capacity_fraction <= 1,
          "dead capacity fraction must be in (0,1]");
  const SchemeTraits traits = scheme_->traits();
  word_mode_ = traits.granularity == SchemeGranularity::kWord;
  expects(!traits.baseline_only || config.mode == SystemMode::kBaseline,
          "scheme protects whole lines only; use it with the Baseline mode");
  expects(!traits.requires_compression || config.compression_enabled(),
          "word-granularity scheme consumes compression slack; "
          "use it with a compression-enabled mode");
  if (config.functional_verify) ecc_meta_.assign(config.device.lines, 0);
}

SlidePolicy PcmSystem::slide_policy() const {
  switch (config_.mode) {
    case SystemMode::kBaseline: return SlidePolicy::kStay;
    case SystemMode::kComp: return SlidePolicy::kSlideUp;
    case SystemMode::kCompW:
    case SystemMode::kCompWF: return SlidePolicy::kAnywhere;
  }
  return SlidePolicy::kStay;
}

std::uint8_t PcmSystem::preferred_start(const LineMeta& info, std::uint32_t bank,
                                        std::uint8_t size_bytes) const {
  if (size_bytes == kBlockBytes) return 0;
  if (config_.rotation_enabled()) return static_cast<std::uint8_t>(rotator_.offset_bytes(bank));
  if (info.ever_written && info.compressed) return info.start_byte;
  return 0;  // naive Comp: window initially at the least significant bytes
}

PcmSystem::SegmentWrite PcmSystem::write_window_segments(std::uint64_t physical,
                                                         std::uint8_t start,
                                                         std::span<const std::uint8_t> image,
                                                         std::uint8_t size_bytes) {
  const prof::ScopedStage stage(prof::Stage::kProgram);
  const WindowSegments segs = window_segments(start, size_bytes);
  SegmentWrite out;
  std::size_t image_bit = 0;
  for (std::size_t s = 0; s < segs.count; ++s) {
    const auto res = array_.write_range(physical, segs.seg[s].bit_off,
                                        image.subspan(image_bit / 8), segs.seg[s].nbits);
    out.flips += res.programmed_bits;
    out.new_faults = out.new_faults || res.new_faults > 0;
    image_bit += segs.seg[s].nbits;
  }
  return out;
}

std::optional<std::size_t> PcmSystem::write_window(std::uint64_t physical, std::uint8_t start,
                                                   std::span<const std::uint8_t> image,
                                                   std::uint8_t size_bytes) {
  if (!config_.functional_verify) {
    const auto res = write_window_segments(physical, start, image, size_bytes);
    // A fault born during this write may push the window past the scheme's
    // strength; the verify read detects it and the caller re-places.
    if (res.new_faults) {
      const prof::ScopedStage stage(prof::Stage::kPlace);
      if (!placer_.fits(array_, physical, start, size_bytes)) return std::nullopt;
    }
    return res.flips;
  }

  // Functional mode: store through the scheme's real encoder, re-encoding if
  // the write itself wears out further cells (write-verify-rewrite loop).
  const std::size_t window_bits = static_cast<std::size_t>(size_bytes) * 8;
  std::size_t flips = 0;
  WindowFaultBuffer fault_buf;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const auto faults = window_faults_into(array_, physical, start, size_bytes, fault_buf);
    std::optional<HardErrorScheme::EncodeResult> enc;
    {
      const prof::ScopedStage stage(prof::Stage::kEcc);
      enc = scheme_->encode(image, window_bits, faults);
    }
    if (!enc) return std::nullopt;
    const auto res = write_window_segments(
        physical, start, std::span<const std::uint8_t>(enc->image), size_bytes);
    flips += res.flips;
    if (!res.new_faults) {
      ecc_meta_[physical] = enc->meta;
      return flips;
    }
  }
  return std::nullopt;
}

std::optional<PcmSystem::PlacedWrite> PcmSystem::try_store(std::uint64_t physical,
                                                           std::uint32_t bank,
                                                           std::span<const std::uint8_t> image,
                                                           std::uint8_t size_bytes) {
  return try_store_with(physical, bank, [&image] { return image; }, size_bytes);
}

std::optional<PcmSystem::PlacedWrite> PcmSystem::try_store_words(
    std::uint64_t physical, const Block& data, std::span<const std::uint8_t> word_content) {
  // The whole line is the (non-sliding) protected unit; the scheme's encode
  // runs in both modes because the programmed image *is* the in-place encoded
  // one — flip and energy accounting must see it, not the raw data.
  std::size_t flips = 0;
  WindowFaultBuffer fault_buf;
  for (int attempt = 0; attempt < 8; ++attempt) {
    {
      const prof::ScopedStage stage(prof::Stage::kPlace);
      if (!placer_.fits(array_, physical, 0, kBlockBytes, word_content)) return std::nullopt;
    }
    const auto faults = window_faults_into(array_, physical, 0, kBlockBytes, fault_buf);
    std::optional<HardErrorScheme::EncodeResult> enc;
    {
      const prof::ScopedStage stage(prof::Stage::kEcc);
      enc = scheme_->encode(data, kBlockBits, faults);
    }
    if (!enc) return std::nullopt;
    const auto res = write_window_segments(
        physical, 0, std::span<const std::uint8_t>(enc->image), kBlockBytes);
    flips += res.flips;
    if (!res.new_faults) {
      if (config_.functional_verify) ecc_meta_[physical] = enc->meta;
      return PlacedWrite{0, flips};
    }
    // A cell died while programming: re-check the slack fit and re-encode
    // (the coset/flip choice may have to change for the newborn fault).
  }
  return std::nullopt;
}

void PcmSystem::mark_dead(std::uint64_t physical) {
  auto& info = lines_[physical];
  if (!info.dead) {
    info.dead = true;
    ++stats_.uncorrectable_events;
  }
  // Re-evaluate capacity counting on every failed attempt: a line that was
  // still hostable at its first death wears further while it bounces between
  // recycle attempts, and must eventually count toward the 50% criterion.
  if (info.counted_dead) return;

  // Capacity accounting: every currently-dead line counts toward the 50%
  // worn-capacity criterion (Section IV fault model). Under Comp+WF the line
  // stays in service and leaves the count again when a later, smaller write
  // revives it (Section V-A.3's "return from the dead").
  info.counted_dead = true;
  ++stats_.lines_dead;
  stats_.faults_at_death.add(static_cast<double>(array_.count_stuck(physical, 0, kBlockBits)));
}

PcmSystem::WriteOutcome PcmSystem::write(LineAddr logical, const Block& data) {
  ++stats_.writes;
  const std::uint64_t physical = startgap_.map(logical);
  const std::uint32_t bank = bank_of(physical, config_.banks);
  auto& info = lines_[physical];

  WriteOutcome out;

  // Dead lines: the advanced scheme re-attempts once per inter-line WL epoch
  // (Section III-A.3); other modes drop the write (the OS would remap).
  const auto epoch = static_cast<std::uint32_t>(startgap_.total_moves());
  if (info.dead) {
    if (!config_.recycling_enabled() || info.recycle_epoch == epoch) {
      ++stats_.dropped_writes;
      return out;
    }
    info.recycle_epoch = epoch;
  }

  // --- Word-granularity schemes: in-place encoded store --------------------
  // The compression scan contributes per-word slack (don't-care bits) rather
  // than a packed window; the line never slides and is stored full-size.
  if (word_mode_) {
    std::array<std::uint8_t, kBlockBits / 32> content;
    {
      const prof::ScopedStage stage(prof::Stage::kCompress);
      const WordClassScan scan = scan_block(data);
      scheme_->word_content_bits(scan, content);
    }
    const auto placed = try_store_words(physical, data, content);
    if (!placed) {
      const bool was_dead = info.dead;
      mark_dead(physical);
      out.line_died = !was_dead;
      return out;
    }
    if (info.dead) {
      info.dead = false;
      if (info.counted_dead) {
        info.counted_dead = false;
        --stats_.lines_dead;
      }
      ++stats_.recycled_lines;
    }
    info.ever_written = true;
    info.start_byte = 0;
    // Not `compressed` in the packed-window sense: the scheme's decode alone
    // reconstructs the data, no separate decompressor pass.
    info.compressed = false;
    info.size_bytes = kBlockBytes;
    info.encoding = pack_encoding(CompressionScheme::kNone, 0);

    out.stored = true;
    out.start_byte = 0;
    out.size_bytes = kBlockBytes;
    out.flips = placed->flips;

    // Stats: report the encoded content footprint as the compressed size so
    // the scheme-by-workload matrix shows the slack the coding extracted.
    std::size_t content_bits = 0;
    for (const auto c : content) content_bits += c;
    if (content_bits < kBlockBits) {
      ++stats_.compressed_writes;
      stats_.compressed_size.add(static_cast<double>((content_bits + 7) / 8));
    } else {
      ++stats_.uncompressed_writes;
    }
    stats_.flips_per_write.add(static_cast<double>(placed->flips));

    if (const auto move = startgap_.on_write()) handle_gap_move(*move);
    if (config_.rotation_enabled()) rotator_.on_write(bank);
    return out;
  }

  // --- Compression decision (Fig 8), phase 1 only -------------------------
  // plan() answers the winning scheme and size from one fused scan; the
  // heuristic and placement below run on that size alone. The image bytes are
  // materialized lazily (phase 2) the first time a compressed store reaches
  // the programming step, so writes that end up uncompressed never pack bits.
  std::optional<CompressionPlan> plan;
  std::optional<CompressedBlock> comp;
  bool want_compressed = false;
  std::uint8_t comp_size = kBlockBytes;
  if (config_.compression_enabled()) {
    {
      const prof::ScopedStage stage(prof::Stage::kCompress);
      plan = compressor_.plan(data);
    }
    if (plan) {
      comp_size = static_cast<std::uint8_t>(plan->size_bytes());
      if (config_.heuristic_enabled()) {
        const prof::ScopedStage stage(prof::Stage::kHeuristic);
        const std::uint8_t old_size = info.ever_written ? info.size_bytes : kBlockBytes;
        const auto decision = decide_write(config_.heuristic, comp_size, old_size, info.sc);
        info.sc = decision.new_sc;
        want_compressed = decision.store_compressed;
      } else {
        want_compressed = true;
      }
    }
  }

  // --- Store, falling back to the other representation if needed ----------
  std::optional<PlacedWrite> placed;
  bool stored_compressed = false;
  const auto compressed_image = [&]() -> std::span<const std::uint8_t> {
    if (!comp) {
      const prof::ScopedStage stage(prof::Stage::kCompress);
      comp = compressor_.materialize(data, *plan);
    }
    return comp->bytes;
  };
  for (int pass = 0; pass < 2 && !placed; ++pass) {
    const bool use_comp = pass == 0 ? want_compressed : !want_compressed;
    if (use_comp) {
      if (!plan) continue;
      placed = try_store_with(physical, bank, compressed_image, comp_size);
      if (placed) stored_compressed = true;
    } else {
      placed = try_store(physical, bank, data, kBlockBytes);
    }
    if (pass == 0 && !placed && !config_.compression_enabled()) break;
  }

  if (!placed) {
    const bool was_dead = info.dead;
    mark_dead(physical);
    out.line_died = !was_dead;
    return out;
  }

  // --- Success: update metadata and stats ---------------------------------
  if (info.dead) {
    info.dead = false;
    if (info.counted_dead) {
      info.counted_dead = false;
      --stats_.lines_dead;
    }
    ++stats_.recycled_lines;
  }
  info.ever_written = true;
  info.start_byte = placed->start;
  info.compressed = stored_compressed;
  info.size_bytes = stored_compressed ? comp_size : static_cast<std::uint8_t>(kBlockBytes);
  info.encoding = stored_compressed ? pack_encoding(plan->scheme, plan->encoding)
                                    : pack_encoding(CompressionScheme::kNone, 0);

  out.stored = true;
  out.compressed = stored_compressed;
  out.start_byte = placed->start;
  out.size_bytes = info.size_bytes;
  out.flips = placed->flips;

  if (stored_compressed) {
    ++stats_.compressed_writes;
    stats_.compressed_size.add(static_cast<double>(comp_size));
  } else {
    ++stats_.uncompressed_writes;
  }
  stats_.flips_per_write.add(static_cast<double>(placed->flips));

  // --- Wear-leveling bookkeeping ------------------------------------------
  if (const auto move = startgap_.on_write()) handle_gap_move(*move);
  if (config_.rotation_enabled()) rotator_.on_write(bank);
  return out;
}

void PcmSystem::handle_gap_move(const StartGap::GapMove& move) {
  const prof::ScopedStage stage(prof::Stage::kGapMove);
  ++stats_.gap_moves;
  LineMeta content = lines_[move.from];

  // The `from` slot becomes the new gap: physical wear state stays, content
  // metadata is cleared.
  {
    auto& f = lines_[move.from];
    const bool dead = f.dead;
    const bool counted = f.counted_dead;
    const auto epoch = f.recycle_epoch;
    f = LineMeta{};
    f.dead = dead;
    f.counted_dead = counted;
    f.recycle_epoch = epoch;
  }

  if (!content.ever_written) return;

  // Read the stored image out of `from` and restore it into `to`. In
  // functional mode decode first so the destination re-encodes cleanly.
  InlineBytes image;
  image.resize(content.size_bytes);
  read_window_image(array_, move.from, content.start_byte, content.size_bytes, image);
  if (config_.functional_verify) {
    WindowFaultBuffer fault_buf;
    const auto faults =
        window_faults_into(array_, move.from, content.start_byte, content.size_bytes, fault_buf);
    const prof::ScopedStage ecc_stage(prof::Stage::kEcc);
    image = scheme_->decode(image, static_cast<std::size_t>(content.size_bytes) * 8,
                            ecc_meta_[move.from], faults);
  }

  const std::uint32_t bank = bank_of(move.to, config_.banks);
  auto& t = lines_[move.to];
  const bool was_dead = t.dead;
  if (was_dead && !config_.recycling_enabled()) {
    // Comp / Comp+W mark blocks permanently dead (Section V-A.3): migrating
    // data cannot revive the slot, so this logical line's content is lost.
    t.ever_written = false;
    return;
  }
  const auto placed = try_store(move.to, bank, image, content.size_bytes);
  if (!placed) {
    // Migration failed: the destination cannot hold this data.
    mark_dead(move.to);
    t.ever_written = false;
    return;
  }
  if (was_dead) {
    t.dead = false;
    if (t.counted_dead) {
      t.counted_dead = false;
      --stats_.lines_dead;
    }
    ++stats_.recycled_lines;
  }
  t.ever_written = true;
  t.start_byte = placed->start;
  t.size_bytes = content.size_bytes;
  t.compressed = content.compressed;
  t.encoding = content.encoding;
  t.sc = content.sc;
}

Block PcmSystem::read(LineAddr logical) const {
  expects(config_.functional_verify, "read() requires functional-verify mode");
  const std::uint64_t physical = startgap_.map(logical);
  const auto& info = lines_[physical];
  if (!info.ever_written) return zero_block();
  expects(!info.dead, "reading a dead line");

  InlineBytes raw;
  raw.resize(info.size_bytes);
  read_window_image(array_, physical, info.start_byte, info.size_bytes, raw);
  WindowFaultBuffer fault_buf;
  const auto faults =
      window_faults_into(array_, physical, info.start_byte, info.size_bytes, fault_buf);
  const auto decoded = scheme_->decode(raw, static_cast<std::size_t>(info.size_bytes) * 8,
                                       ecc_meta_[physical], faults);

  if (!info.compressed) {
    Block out{};
    std::copy_n(decoded.begin(), kBlockBytes, out.begin());
    return out;
  }
  CompressedBlock cb;
  cb.bytes = decoded;
  cb.scheme = unpack_scheme(info.encoding);
  cb.encoding = unpack_layout(info.encoding);
  return compressor_.decompress(cb);
}

double PcmSystem::dead_fraction() const {
  return static_cast<double>(stats_.lines_dead) / static_cast<double>(lines_.size());
}

bool PcmSystem::failed() const {
  return dead_fraction() >= config_.dead_capacity_fraction;
}

}  // namespace pcmsim
