// The proposed PCM memory system (paper Section III): compression-window
// writes, the Figure-8 write-decision heuristic, intra-line wear-leveling by
// bank-counter rotation, sliding-window hard-error tolerance, and dead-block
// recycling — composed over the substrates (PCM array, Start-Gap, ECC scheme,
// BDI/FPC compression).
//
// PcmSystem models one simulated memory region (a sampled slice of the 4 GB
// DIMM) and is driven by write-back events. Two operating modes:
//  * lifetime mode (default): plain data images are written and hard-error
//    tolerability is tracked via can_tolerate() — fast enough to wear a whole
//    region out, the paper's own methodology;
//  * functional-verify mode: every window is stored through the error
//    scheme's real encode() and read back through decode(), so tests can
//    assert end-to-end data integrity in the presence of stuck cells.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/profiler.hpp"
#include "common/stats.hpp"
#include "compression/best_of.hpp"
#include "core/heuristic.hpp"
#include "core/line_meta.hpp"
#include "core/window.hpp"
#include "ecc/registry.hpp"
#include "pcm/array.hpp"
#include "wear/rotation.hpp"
#include "wear/start_gap.hpp"

namespace pcmsim {

/// Which of the paper's four evaluated systems to model (Section IV).
enum class SystemMode : std::uint8_t {
  kBaseline,  ///< DW + Start-Gap + ECC, no compression
  kComp,      ///< + naive compression (window at LSB, slide-up only)
  kCompW,     ///< + intra-line wear-leveling (rotation, wrap-around windows)
  kCompWF,    ///< + write heuristic + advanced tolerance (dead-block recycling)
};

[[nodiscard]] std::string_view to_string(SystemMode m);

struct SystemConfig {
  SystemMode mode = SystemMode::kCompWF;
  /// Deprecated compat shim: consulted only while `ecc_spec` is empty.
  EccKind ecc = EccKind::kEcp6;
  /// Hard-error scheme spec resolved through the ECC registry ("ecp6",
  /// "bch-t2", "coset-w4", ... — see ecc/registry.hpp). Takes precedence
  /// over the legacy `ecc` enum when non-empty.
  std::string ecc_spec;
  PcmDeviceConfig device;         ///< device.lines = physical lines (incl. gap)
  std::uint32_t banks = 8;        ///< Table II: 2 channels x 1 rank x 4 banks
  std::uint64_t gap_interval = 100;
  bool startgap_randomize = true;
  /// Bank-counter saturation for intra-line rotation. 0 = auto-scale the
  /// paper's 2^16 with endurance (2^16 * endurance_mean / 1e7, min 1).
  std::uint64_t rotation_threshold = 0;
  std::uint32_t rotation_step_bytes = 1;
  HeuristicConfig heuristic;      ///< active in kCompWF (and ablations)
  double dead_capacity_fraction = 0.5;  ///< system fails at 50% worn capacity
  bool functional_verify = false;
  std::uint64_t seed = 1;

  /// Per-mode feature switches (derived from `mode` unless overridden).
  [[nodiscard]] bool compression_enabled() const { return mode != SystemMode::kBaseline; }
  [[nodiscard]] bool rotation_enabled() const {
    return mode == SystemMode::kCompW || mode == SystemMode::kCompWF;
  }
  [[nodiscard]] bool heuristic_enabled() const {
    return mode == SystemMode::kCompWF && heuristic.enabled;
  }
  [[nodiscard]] bool recycling_enabled() const { return mode == SystemMode::kCompWF; }

  /// The scheme spec this config selects (ecc_spec, else the legacy enum).
  [[nodiscard]] std::string resolved_ecc_spec() const {
    return ecc_spec.empty() ? std::string(canonical_spec(ecc)) : ecc_spec;
  }
};

struct SystemStats {
  std::uint64_t writes = 0;
  std::uint64_t compressed_writes = 0;
  std::uint64_t uncompressed_writes = 0;
  std::uint64_t dropped_writes = 0;       ///< writes to dead, unrecycled lines
  std::uint64_t uncorrectable_events = 0; ///< line deaths (data loss events)
  std::uint64_t window_slides = 0;        ///< placements away from the preferred start
  std::uint64_t recycled_lines = 0;       ///< dead lines brought back by a smaller write
  std::uint64_t gap_moves = 0;
  std::uint64_t lines_dead = 0;           ///< currently dead physical lines
  RunningStat faults_at_death;            ///< stuck cells per line when it died (Fig 12)
  RunningStat flips_per_write;            ///< programmed bits per serviced write
  RunningStat compressed_size;            ///< bytes per compressed write

  /// Exact merge of another system's stats into this one (counters sum, the
  /// RunningStats combine via the parallel-variance formula). Merging the
  /// per-shard stats of a sharded run in shard order yields one aggregate
  /// that is independent of how many threads executed the shards.
  void merge(const SystemStats& other);
};

class PcmSystem {
 public:
  explicit PcmSystem(const SystemConfig& config);

  struct WriteOutcome {
    bool stored = false;       ///< data is durably held somewhere in the line
    bool line_died = false;    ///< this write killed the line
    bool compressed = false;
    std::uint8_t start_byte = 0;
    std::uint8_t size_bytes = 0;
    std::size_t flips = 0;     ///< programming pulses issued (incl. gap copies)
  };

  /// Services one LLC write-back.
  WriteOutcome write(LineAddr logical, const Block& data);

  /// Functional-verify mode only: reads back a line's logical content.
  [[nodiscard]] Block read(LineAddr logical) const;

  /// Fraction of physical lines currently dead.
  [[nodiscard]] double dead_fraction() const;
  /// True when the system has reached its end of life (Section IV fault model).
  [[nodiscard]] bool failed() const;

  [[nodiscard]] const SystemStats& stats() const { return stats_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }
  [[nodiscard]] const PcmArray& array() const { return array_; }
  [[nodiscard]] const HardErrorScheme& scheme() const { return *scheme_; }
  [[nodiscard]] std::uint64_t logical_lines() const { return startgap_.logical_lines(); }

  /// Per-line introspection (benches/tests).
  [[nodiscard]] const LineMeta& line_meta(std::uint64_t physical) const {
    return lines_.at(physical);
  }
  [[nodiscard]] std::uint64_t physical_of(LineAddr logical) const {
    return startgap_.map(logical);
  }

 private:
  struct PlacedWrite {
    std::uint8_t start = 0;
    std::size_t flips = 0;
  };

  /// Core write path for one physical line. Returns nullopt when the line
  /// cannot hold the data (caller marks it dead).
  std::optional<PlacedWrite> try_store(std::uint64_t physical, std::uint32_t bank,
                                       std::span<const std::uint8_t> image,
                                       std::uint8_t size_bytes);

  /// Word-granularity store path (SchemeGranularity::kWord schemes): the
  /// whole line is encoded in place through the scheme, with `word_content`
  /// (per-u32 content bits from the compression scan) telling the placement
  /// check which stuck cells fall into compression slack.
  std::optional<PlacedWrite> try_store_words(std::uint64_t physical, const Block& data,
                                             std::span<const std::uint8_t> word_content);

  /// try_store generalized over a deferred image: placement runs on
  /// `size_bytes` alone and `image_of()` is first invoked only when a window
  /// has been found and is about to be programmed — this is what lets the
  /// compressed path delay materialization past the placement search.
  template <typename ImageFn>
  std::optional<PlacedWrite> try_store_with(std::uint64_t physical, std::uint32_t bank,
                                            ImageFn&& image_of, std::uint8_t size_bytes) {
    const SlidePolicy policy =
        size_bytes == kBlockBytes ? SlidePolicy::kStay : slide_policy();
    const std::uint8_t preferred = preferred_start(lines_[physical], bank, size_bytes);
    for (int attempt = 0; attempt < 4; ++attempt) {
      std::optional<std::uint8_t> start;
      {
        const prof::ScopedStage stage(prof::Stage::kPlace);
        start = placer_.find(array_, physical, size_bytes, preferred, policy);
      }
      if (!start) return std::nullopt;
      if (*start != preferred) ++stats_.window_slides;
      const auto flips = write_window(physical, *start, image_of(), size_bytes);
      if (flips) return PlacedWrite{*start, *flips};
      // Window became intolerable mid-write; search again with the fresh
      // faults.
    }
    return std::nullopt;
  }

  /// Writes `image` into the window at `start` (splitting wrap segments);
  /// returns programming pulses. In functional mode routes through encode().
  std::optional<std::size_t> write_window(std::uint64_t physical, std::uint8_t start,
                                          std::span<const std::uint8_t> image,
                                          std::uint8_t size_bytes);

  /// One segmented differential write of a window image (the program stage).
  struct SegmentWrite {
    std::size_t flips = 0;
    bool new_faults = false;
  };
  SegmentWrite write_window_segments(std::uint64_t physical, std::uint8_t start,
                                     std::span<const std::uint8_t> image,
                                     std::uint8_t size_bytes);

  void handle_gap_move(const StartGap::GapMove& move);
  void mark_dead(std::uint64_t physical);
  [[nodiscard]] SlidePolicy slide_policy() const;
  [[nodiscard]] std::uint8_t preferred_start(const LineMeta& info, std::uint32_t bank,
                                             std::uint8_t size_bytes) const;

  SystemConfig config_;
  PcmArray array_;
  StartGap startgap_;
  IntraLineRotator rotator_;
  std::unique_ptr<HardErrorScheme> scheme_;
  BestOfCompressor compressor_;
  WindowPlacer placer_;
  std::vector<LineMeta> lines_;           // indexed by physical line
  std::vector<std::uint64_t> ecc_meta_;   // functional mode: per-line scheme metadata
  bool word_mode_ = false;                // scheme granularity == kWord
  SystemStats stats_;
};

}  // namespace pcmsim
