#include "core/window.hpp"

#include "common/assert.hpp"

namespace pcmsim {

WindowSegments window_segments(std::uint8_t start_byte, std::uint8_t size_bytes) {
  expects(start_byte < kBlockBytes, "window start must be inside the line");
  expects(size_bytes >= 1 && size_bytes <= kBlockBytes, "window size must be 1..64 bytes");
  WindowSegments out;
  const std::size_t start_bit = static_cast<std::size_t>(start_byte) * 8;
  const std::size_t nbits = static_cast<std::size_t>(size_bytes) * 8;
  if (start_bit + nbits <= kBlockBits) {
    out.seg[0] = {start_bit, nbits};
    out.count = 1;
  } else {
    const std::size_t first = kBlockBits - start_bit;
    out.seg[0] = {start_bit, first};
    out.seg[1] = {0, nbits - first};
    out.count = 2;
  }
  return out;
}

std::vector<FaultCell> window_faults(const PcmArray& array, std::size_t line,
                                     std::uint8_t start_byte, std::uint8_t size_bytes) {
  WindowFaultBuffer buf;
  const auto faults = window_faults_into(array, line, start_byte, size_bytes, buf);
  return {faults.begin(), faults.end()};
}

std::span<const FaultCell> window_faults_into(const PcmArray& array, std::size_t line,
                                              std::uint8_t start_byte, std::uint8_t size_bytes,
                                              WindowFaultBuffer& buf) {
  const WindowSegments segs = window_segments(start_byte, size_bytes);
  std::array<std::uint16_t, kBlockBits> positions;
  buf.count = 0;
  std::size_t window_pos = 0;
  for (std::size_t s = 0; s < segs.count; ++s) {
    const std::size_t n =
        array.stuck_positions_into(line, segs.seg[s].bit_off, segs.seg[s].nbits, positions);
    for (std::size_t i = 0; i < n; ++i) {
      const auto rel =
          static_cast<std::uint16_t>(window_pos + (positions[i] - segs.seg[s].bit_off));
      buf.cells[buf.count++] = FaultCell{rel, array.read_bit(line, positions[i])};
    }
    window_pos += segs.seg[s].nbits;
  }
  return {buf.cells.data(), buf.count};
}

bool WindowPlacer::fits(const PcmArray& array, std::size_t line, std::uint8_t start,
                        std::uint8_t size_bytes) const {
  const WindowSegments segs = window_segments(start, size_bytes);
  std::size_t stuck = 0;
  for (std::size_t s = 0; s < segs.count; ++s) {
    stuck += array.count_stuck(line, segs.seg[s].bit_off, segs.seg[s].nbits);
  }
  if (stuck == 0) return true;
  // Fast path: every implemented scheme tolerates any pattern of up to
  // guaranteed_correctable() faults, so only larger sets need positions.
  if (stuck <= scheme_->guaranteed_correctable()) return true;
  WindowFaultBuffer buf;
  const auto faults = window_faults_into(array, line, start, size_bytes, buf);
  return scheme_->can_tolerate(faults, static_cast<std::size_t>(size_bytes) * 8);
}

std::optional<std::uint8_t> WindowPlacer::find(const PcmArray& array, std::size_t line,
                                               std::uint8_t size_bytes, std::uint8_t preferred,
                                               SlidePolicy policy) const {
  expects(preferred < kBlockBytes, "preferred start must be inside the line");
  switch (policy) {
    case SlidePolicy::kStay: {
      if (fits(array, line, preferred, size_bytes)) return preferred;
      return std::nullopt;
    }
    case SlidePolicy::kSlideUp: {
      // Slide toward higher-order bytes only, never wrapping (Fig 4, step 3).
      for (std::uint8_t start = preferred;
           static_cast<std::size_t>(start) + size_bytes <= kBlockBytes; ++start) {
        if (fits(array, line, start, size_bytes)) return start;
      }
      return std::nullopt;
    }
    case SlidePolicy::kAnywhere: {
      for (std::size_t i = 0; i < kBlockBytes; ++i) {
        const auto start = static_cast<std::uint8_t>((preferred + i) % kBlockBytes);
        if (fits(array, line, start, size_bytes)) return start;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace pcmsim
