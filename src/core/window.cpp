#include "core/window.hpp"

#include "common/assert.hpp"

namespace pcmsim {

WindowSegments window_segments(std::uint8_t start_byte, std::uint8_t size_bytes) {
  expects(start_byte < kBlockBytes, "window start must be inside the line");
  expects(size_bytes >= 1 && size_bytes <= kBlockBytes, "window size must be 1..64 bytes");
  WindowSegments out;
  const std::size_t start_bit = static_cast<std::size_t>(start_byte) * 8;
  const std::size_t nbits = static_cast<std::size_t>(size_bytes) * 8;
  if (start_bit + nbits <= kBlockBits) {
    out.seg[0] = {start_bit, nbits};
    out.count = 1;
  } else {
    const std::size_t first = kBlockBits - start_bit;
    out.seg[0] = {start_bit, first};
    out.seg[1] = {0, nbits - first};
    out.count = 2;
  }
  return out;
}

std::vector<FaultCell> window_faults(const PcmArray& array, std::size_t line,
                                     std::uint8_t start_byte, std::uint8_t size_bytes) {
  WindowFaultBuffer buf;
  const auto faults = window_faults_into(array, line, start_byte, size_bytes, buf);
  return {faults.begin(), faults.end()};
}

void read_window_image(const PcmArray& array, std::size_t line, std::uint8_t start_byte,
                       std::uint8_t size_bytes, std::span<std::uint8_t> out) {
  expects(out.size() >= size_bytes, "window image buffer too small");
  const WindowSegments segs = window_segments(start_byte, size_bytes);
  std::size_t image_bit = 0;
  for (std::size_t s = 0; s < segs.count; ++s) {
    array.read_range(line, segs.seg[s].bit_off, segs.seg[s].nbits,
                     out.subspan(image_bit / 8));
    image_bit += segs.seg[s].nbits;
  }
}

std::span<const FaultCell> window_faults_into(const PcmArray& array, std::size_t line,
                                              std::uint8_t start_byte, std::uint8_t size_bytes,
                                              WindowFaultBuffer& buf) {
  const WindowSegments segs = window_segments(start_byte, size_bytes);
  std::array<std::uint16_t, kBlockBits> positions;
  buf.count = 0;
  std::size_t window_pos = 0;
  for (std::size_t s = 0; s < segs.count; ++s) {
    const std::size_t n =
        array.stuck_positions_into(line, segs.seg[s].bit_off, segs.seg[s].nbits, positions);
    for (std::size_t i = 0; i < n; ++i) {
      const auto rel =
          static_cast<std::uint16_t>(window_pos + (positions[i] - segs.seg[s].bit_off));
      buf.cells[buf.count++] = FaultCell{rel, array.read_bit(line, positions[i])};
    }
    window_pos += segs.seg[s].nbits;
  }
  return {buf.cells.data(), buf.count};
}

namespace {

/// Window fault count from the line's per-byte prefix sums (wrap-aware).
std::size_t window_stuck_from_prefix(std::span<const std::uint16_t> prefix,
                                     std::size_t start_byte, std::size_t size_bytes) {
  const std::size_t end = start_byte + size_bytes;
  if (end <= kBlockBytes) {
    return static_cast<std::size_t>(prefix[end] - prefix[start_byte]);
  }
  return static_cast<std::size_t>(prefix[kBlockBytes] - prefix[start_byte]) +
         prefix[end - kBlockBytes];
}

}  // namespace

bool WindowPlacer::fits(const PcmArray& array, std::size_t line, std::uint8_t start,
                        std::uint8_t size_bytes) const {
  return fits(array, line, start, size_bytes, {});
}

bool WindowPlacer::fits(const PcmArray& array, std::size_t line, std::uint8_t start,
                        std::uint8_t size_bytes,
                        std::span<const std::uint8_t> word_content) const {
  // O(1) fast path: a window can hold at most the line's total stuck cells,
  // and every implemented scheme tolerates any pattern of up to
  // guaranteed_correctable() faults — the common zero/low-fault line never
  // scans a single window word. (The guarantee is data-independent, so the
  // fast paths stay valid in the slack-aware case too.)
  const std::size_t line_stuck = array.data_stuck_count(line);
  if (line_stuck <= scheme_->guaranteed_correctable()) return true;
  const std::size_t stuck =
      window_stuck_from_prefix(array.byte_stuck_prefix(line), start, size_bytes);
  if (stuck <= scheme_->guaranteed_correctable()) return true;
  WindowFaultBuffer buf;
  const auto faults = window_faults_into(array, line, start, size_bytes, buf);
  return scheme_->can_tolerate_with(faults, static_cast<std::size_t>(size_bytes) * 8,
                                    word_content);
}

std::optional<std::uint8_t> WindowPlacer::find(const PcmArray& array, std::size_t line,
                                               std::uint8_t size_bytes, std::uint8_t preferred,
                                               SlidePolicy policy) const {
  expects(preferred < kBlockBytes, "preferred start must be inside the line");
  const std::size_t guaranteed = scheme_->guaranteed_correctable();
  const bool clean = array.data_stuck_count(line) <= guaranteed;

  // Each policy tries `preferred` first, so when the whole line is below the
  // guaranteed bound the answer is the first start its search order visits —
  // no per-start work at all.
  switch (policy) {
    case SlidePolicy::kStay: {
      if (clean) return preferred;
      if (fits(array, line, preferred, size_bytes)) return preferred;
      return std::nullopt;
    }
    case SlidePolicy::kSlideUp: {
      // Slide toward higher-order bytes only, never wrapping (Fig 4, step 3).
      if (static_cast<std::size_t>(preferred) + size_bytes > kBlockBytes) return std::nullopt;
      if (clean) return preferred;
      const auto prefix = array.byte_stuck_prefix(line);
      WindowFaultBuffer buf;
      for (std::uint8_t start = preferred;
           static_cast<std::size_t>(start) + size_bytes <= kBlockBytes; ++start) {
        if (window_stuck_from_prefix(prefix, start, size_bytes) <= guaranteed) return start;
        const auto faults = window_faults_into(array, line, start, size_bytes, buf);
        if (scheme_->can_tolerate(faults, static_cast<std::size_t>(size_bytes) * 8)) return start;
      }
      return std::nullopt;
    }
    case SlidePolicy::kAnywhere: {
      if (clean) return preferred;
      const auto prefix = array.byte_stuck_prefix(line);
      WindowFaultBuffer buf;
      for (std::size_t i = 0; i < kBlockBytes; ++i) {
        const auto start = static_cast<std::uint8_t>((preferred + i) % kBlockBytes);
        if (window_stuck_from_prefix(prefix, start, size_bytes) <= guaranteed) return start;
        const auto faults = window_faults_into(array, line, start, size_bytes, buf);
        if (scheme_->can_tolerate(faults, static_cast<std::size_t>(size_bytes) * 8)) return start;
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace pcmsim
