// Per-line metadata of the proposed architecture (paper Section III-B).
//
// 13 bits live at the head of each memory line: a 6-bit window start pointer,
// 5 bits of compression encoding, and the 2-bit saturating counter; one more
// bit (one of the 3 bits ECP-6 leaves unused in the ECC chip) flags whether
// the line holds compressed data. The stored *size* is not kept in PCM — the
// controller learns the old size from the LLC annotation path the paper
// describes (1 byte appended per line on fills) — but the simulator tracks it
// in the same struct for convenience.
#pragma once

#include <cstdint>

#include "common/assert.hpp"

namespace pcmsim {

struct LineMeta {
  std::uint8_t start_byte = 0;   ///< window start (6 bits, byte granularity)
  std::uint8_t encoding = 0;     ///< packed compression encoding (5 bits)
  std::uint8_t sc = 0;           ///< saturating counter (2 bits)
  bool compressed = false;       ///< spare ECC-chip bit
  // Controller-side state (LLC annotation / controller tables, not PCM bits):
  std::uint8_t size_bytes = 0;   ///< stored image size (64 when uncompressed)
  bool dead = false;             ///< no window currently fits the last write
  bool counted_dead = false;     ///< counted toward the 50% capacity criterion
  bool ever_written = false;
  std::uint32_t recycle_epoch = 0;  ///< last inter-line WL epoch we re-checked at
};

/// Packs the PCM-resident 14 bits (13 + compressed flag) for storage.
[[nodiscard]] inline std::uint16_t pack_meta(const LineMeta& m) {
  expects(m.start_byte < 64, "start pointer must fit 6 bits");
  expects(m.encoding < 32, "encoding must fit 5 bits");
  expects(m.sc < 4, "saturating counter must fit 2 bits");
  return static_cast<std::uint16_t>(m.start_byte | (m.encoding << 6) | (m.sc << 11) |
                                    (static_cast<std::uint16_t>(m.compressed) << 13));
}

/// Inverse of pack_meta (controller-side fields are left defaulted).
[[nodiscard]] inline LineMeta unpack_meta(std::uint16_t raw) {
  LineMeta m;
  m.start_byte = raw & 0x3Fu;
  m.encoding = (raw >> 6) & 0x1Fu;
  m.sc = (raw >> 11) & 0x3u;
  m.compressed = (raw >> 13) & 0x1u;
  return m;
}

}  // namespace pcmsim
