// Compression-window placement over a PCM line (paper Section III-A, Fig 4).
//
// A window is `size_bytes` contiguous bytes of the 512-bit data area starting
// at `start_byte`; with intra-line rotation enabled it may wrap around the
// end of the line. A window "fits" when the hard-error scheme can still store
// arbitrary data given the stuck cells inside it — faults outside the window
// are simply dodged, which is how the design tolerates far more than the
// scheme's nominal correction strength.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ecc/scheme.hpp"
#include "pcm/array.hpp"

namespace pcmsim {

/// A (possibly wrapping) window maps to one or two bit ranges in the line.
struct WindowSegments {
  struct Seg {
    std::size_t bit_off;
    std::size_t nbits;
  };
  std::array<Seg, 2> seg{};
  std::size_t count = 0;
};

[[nodiscard]] WindowSegments window_segments(std::uint8_t start_byte, std::uint8_t size_bytes);

/// Stuck cells inside the window, positions *window-relative* (so the error
/// scheme sees a contiguous protected unit), with their latched values.
/// Test-only convenience (allocates); hot paths use window_faults_into().
[[nodiscard]] std::vector<FaultCell> window_faults(const PcmArray& array, std::size_t line,
                                                   std::uint8_t start_byte,
                                                   std::uint8_t size_bytes);

/// Reads the raw image of a (possibly wrapping) window into `out`, which must
/// hold `size_bytes` bytes — the one segmented-read loop shared by the verify,
/// gap-move, and read paths.
void read_window_image(const PcmArray& array, std::size_t line, std::uint8_t start_byte,
                       std::uint8_t size_bytes, std::span<std::uint8_t> out);

/// Fixed-capacity fault storage: a 512-bit window holds at most 512 stuck
/// cells, so per-write paths collect faults on the stack instead of a vector.
struct WindowFaultBuffer {
  std::array<FaultCell, kBlockBits> cells;
  std::size_t count = 0;
};

/// Allocation-free window_faults(): fills `buf` and returns the live span.
[[nodiscard]] std::span<const FaultCell> window_faults_into(const PcmArray& array,
                                                            std::size_t line,
                                                            std::uint8_t start_byte,
                                                            std::uint8_t size_bytes,
                                                            WindowFaultBuffer& buf);

/// How the controller may move the window when the current position fails.
enum class SlidePolicy : std::uint8_t {
  kStay,     ///< only the preferred start (plain Comp before any slide)
  kSlideUp,  ///< slide toward higher-order bytes, no wrap (naive Comp, Fig 4-3)
  kAnywhere, ///< any start, wrap allowed (Comp+W / Comp+WF with rotation)
};

class WindowPlacer {
 public:
  explicit WindowPlacer(const HardErrorScheme& scheme) : scheme_(&scheme) {}

  /// True when the window at `start` can store arbitrary data.
  [[nodiscard]] bool fits(const PcmArray& array, std::size_t line, std::uint8_t start,
                          std::uint8_t size_bytes) const;

  /// Slack-aware fits: `word_content[i]` is the number of content bits in u32
  /// cell i of the window (word-granularity schemes treat the remainder as
  /// don't-cares). Empty span == the data-independent overload above.
  [[nodiscard]] bool fits(const PcmArray& array, std::size_t line, std::uint8_t start,
                          std::uint8_t size_bytes,
                          std::span<const std::uint8_t> word_content) const;

  /// Finds a start position per the slide policy, trying `preferred` first.
  [[nodiscard]] std::optional<std::uint8_t> find(const PcmArray& array, std::size_t line,
                                                 std::uint8_t size_bytes,
                                                 std::uint8_t preferred,
                                                 SlidePolicy policy) const;

  [[nodiscard]] const HardErrorScheme& scheme() const { return *scheme_; }

 private:
  const HardErrorScheme* scheme_;
};

}  // namespace pcmsim
