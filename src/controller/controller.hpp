// DDR3-style PCM memory-controller timing model (Table II), used for the
// Section V-B performance-overhead analysis.
//
// Per-bank 8-entry read and 32-entry write queues; reads have priority and
// writes drain opportunistically (or forcibly at a high watermark, stalling
// reads, as in write-queue-based PCM controllers). Decompression sits on the
// read critical path: +1 CPU cycle for BDI images, +5 for FPC (Table I),
// converted into controller cycles at the configured clock ratio.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hpp"
#include "pcm/config.hpp"

namespace pcmsim {

struct ControllerConfig {
  PcmTimingConfig timing;
  std::uint32_t banks = 8;            ///< 2 channels x 1 rank x 4 banks
  std::size_t read_queue_cap = 8;     ///< per bank (Table II)
  std::size_t write_queue_cap = 32;   ///< per bank
  std::size_t write_drain_watermark = 28;
  double cpu_ghz = 2.5;               ///< CPU clock for decompression latency
};

/// One memory transaction presented to the controller.
struct MemRequest {
  std::uint64_t arrival_cycle = 0;  ///< controller clock
  bool is_read = true;
  std::uint32_t bank = 0;
  std::uint32_t decompression_cpu_cycles = 0;  ///< 0 raw, 1 BDI, 5 FPC
};

/// Cycle-level queueing simulation over a request stream (arrival order).
class MemoryController {
 public:
  explicit MemoryController(const ControllerConfig& config);

  /// Presents one request. Preconditions (ContractViolation on breach, the
  /// queueing state is never silently corrupted): arrival cycles are
  /// non-decreasing across the whole stream, the bank index is in range, and
  /// the controller has not been finish()ed.
  void submit(const MemRequest& request);

  /// Drains everything still queued. After finish() the controller is a
  /// sealed report: further submits throw ContractViolation.
  void finish();

  /// Average read latency in controller cycles (queueing + service + decomp).
  [[nodiscard]] const RunningStat& read_latency() const { return read_latency_; }
  [[nodiscard]] const RunningStat& write_latency() const { return write_latency_; }
  [[nodiscard]] std::uint64_t read_stalls() const { return read_stalls_; }

  /// Cycles any bank spent servicing bursts (sum over banks). With the drain
  /// cycle below this yields modeled utilization: busy / (drained * banks).
  [[nodiscard]] std::uint64_t busy_cycles() const { return busy_cycles_; }
  /// Cycle at which the last bank went idle; valid after finish().
  [[nodiscard]] std::uint64_t drained_at() const { return drained_at_; }

  /// Service time of a read/write burst in controller cycles.
  [[nodiscard]] std::uint32_t read_service_cycles() const;
  [[nodiscard]] std::uint32_t write_service_cycles() const;

 private:
  struct Bank {
    std::uint64_t free_at = 0;
    std::deque<MemRequest> reads;
    std::deque<MemRequest> writes;
  };

  void pump(Bank& bank, std::uint64_t now);

  ControllerConfig config_;
  std::vector<Bank> banks_;
  RunningStat read_latency_;
  RunningStat write_latency_;
  std::uint64_t read_stalls_ = 0;
  std::uint64_t last_arrival_ = 0;
  std::uint64_t busy_cycles_ = 0;
  std::uint64_t drained_at_ = 0;
  bool finished_ = false;
};

}  // namespace pcmsim
