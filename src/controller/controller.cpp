#include "controller/controller.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace pcmsim {

MemoryController::MemoryController(const ControllerConfig& config)
    : config_(config), banks_(config.banks) {
  expects(config.banks >= 1, "need at least one bank");
  expects(config.write_drain_watermark <= config.write_queue_cap,
          "drain watermark cannot exceed the write queue capacity");
}

std::uint32_t MemoryController::read_service_cycles() const {
  const auto& t = config_.timing;
  return t.t_rdc + t.t_cl + t.burst_length / 2 + t.t_rtp;
}

std::uint32_t MemoryController::write_service_cycles() const {
  const auto& t = config_.timing;
  // The long PCM write (SET dominates) is hidden behind t_rp at precharge.
  return t.t_wl + t.burst_length / 2 + t.t_rp;
}

void MemoryController::pump(Bank& bank, std::uint64_t now) {
  // Service whatever the bank can start before `now`. Reads first; writes
  // drain when no read is pending or when the write queue passes the
  // watermark (at which point they block reads — the stall the 32-entry
  // buffer exists to avoid).
  while (true) {
    const bool force_writes = bank.writes.size() >= config_.write_drain_watermark;
    if (!bank.reads.empty() && !force_writes) {
      const MemRequest req = bank.reads.front();
      const std::uint64_t start = std::max(bank.free_at, req.arrival_cycle);
      if (start > now) break;
      bank.reads.pop_front();
      bank.free_at = start + read_service_cycles();
      busy_cycles_ += read_service_cycles();
      const double decomp =
          static_cast<double>(req.decompression_cpu_cycles) *
          (static_cast<double>(config_.timing.clock_mhz) / 1000.0 / config_.cpu_ghz);
      read_latency_.add(static_cast<double>(bank.free_at - req.arrival_cycle) + decomp);
      continue;
    }
    if (!bank.writes.empty() && (bank.reads.empty() || force_writes)) {
      const MemRequest req = bank.writes.front();
      const std::uint64_t start = std::max(bank.free_at, req.arrival_cycle);
      if (start > now) break;
      bank.writes.pop_front();
      bank.free_at = start + write_service_cycles();
      busy_cycles_ += write_service_cycles();
      write_latency_.add(static_cast<double>(bank.free_at - req.arrival_cycle));
      if (force_writes && !bank.reads.empty()) ++read_stalls_;
      continue;
    }
    break;
  }
}

void MemoryController::submit(const MemRequest& request) {
  expects(!finished_, "submit after finish(): the controller is sealed");
  expects(request.arrival_cycle >= last_arrival_,
          "requests must arrive in non-decreasing cycle order");
  expects(request.bank < config_.banks, "bank out of range");
  last_arrival_ = request.arrival_cycle;
  Bank& bank = banks_[request.bank];
  pump(bank, request.arrival_cycle);
  if (request.is_read) {
    // A full read queue back-pressures the core; model as an arrival delay.
    MemRequest r = request;
    while (bank.reads.size() >= config_.read_queue_cap) {
      pump(bank, bank.free_at);
      r.arrival_cycle = std::max(r.arrival_cycle, bank.free_at);
    }
    bank.reads.push_back(r);
  } else {
    MemRequest w = request;
    while (bank.writes.size() >= config_.write_queue_cap) {
      pump(bank, bank.free_at);
      w.arrival_cycle = std::max(w.arrival_cycle, bank.free_at);
    }
    bank.writes.push_back(w);
  }
  pump(bank, request.arrival_cycle);
}

void MemoryController::finish() {
  for (auto& bank : banks_) {
    while (!bank.reads.empty() || !bank.writes.empty()) {
      pump(bank, bank.free_at + 1'000'000);
    }
    drained_at_ = std::max(drained_at_, bank.free_at);
  }
  finished_ = true;
}

}  // namespace pcmsim
