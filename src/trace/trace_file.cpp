#include "trace/trace_file.hpp"

#include <array>
#include <cstring>

#include "common/assert.hpp"

namespace pcmsim {

namespace {

constexpr std::uint64_t kChunkHeaderBytes = 12;  // records + payload_bytes + crc
constexpr std::uint64_t kHeaderBytes = 16;       // magic + version + chunk_records
constexpr std::uint64_t kFooterBytes = 32;
constexpr std::uint64_t kDirEntryBytes = 16;  // offset + records + payload_bytes
constexpr std::uint8_t kRawValueTag = 0xFF;   // pack_encoding values are < 32

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    t[i] = c;
  }
  return t;
}
constexpr std::array<std::uint32_t, 256> kCrcTable = make_crc_table();

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80u);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Decodes a varint from raw[pos...]; advances pos. Running off the end of the
/// payload means the chunk lied about its contents.
[[nodiscard]] std::uint64_t get_varint(std::span<const std::uint8_t> raw, std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    expects(pos < raw.size(), "trace chunk payload truncated inside a varint");
    expects(shift < 64, "trace chunk varint overlong");
    const std::uint8_t b = raw[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) return v;
    shift += 7;
  }
}

template <typename T>
void put_le(std::ofstream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
[[nodiscard]] T get_le(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = kCrcTable[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

TraceFileWriter::TraceFileWriter(const std::string& path, std::uint32_t chunk_records)
    : out_(path, std::ios::binary), chunk_records_(chunk_records) {
  expects(out_.good(), "cannot open trace file for writing");
  expects(chunk_records_ > 0, "chunk must hold at least one record");
  put_le(out_, kTraceV2Magic);
  put_le(out_, kTraceV2Version);
  put_le(out_, chunk_records_);
  expects(out_.good(), "trace file write failed (disk full or I/O error)");
  offset_ = kHeaderBytes;
  payload_.reserve(static_cast<std::size_t>(chunk_records_) * (kBlockBytes + 4));
}

TraceFileWriter::~TraceFileWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; close() explicitly to observe failures.
  }
}

void TraceFileWriter::append(const WritebackEvent& ev) {
  expects(!closed_, "trace writer already closed");
  put_varint(payload_, zigzag(static_cast<std::int64_t>(ev.line) -
                              static_cast<std::int64_t>(prev_line_)));
  prev_line_ = ev.line;
  if (const auto plan = best_.plan(ev.data)) {
    const CompressedBlock cb = best_.materialize(ev.data, *plan);
    payload_.push_back(pack_encoding(cb.scheme, cb.encoding));
    payload_.push_back(static_cast<std::uint8_t>(cb.size_bytes()));
    payload_.insert(payload_.end(), cb.bytes.data(), cb.bytes.data() + cb.bytes.size());
  } else {
    payload_.push_back(kRawValueTag);
    payload_.insert(payload_.end(), ev.data.data(), ev.data.data() + ev.data.size());
  }
  ++total_records_;
  if (++in_chunk_ == chunk_records_) flush_chunk();
}

void TraceFileWriter::flush_chunk() {
  if (in_chunk_ == 0) return;
  const std::uint32_t payload_bytes = static_cast<std::uint32_t>(payload_.size());
  put_le(out_, in_chunk_);
  put_le(out_, payload_bytes);
  put_le(out_, crc32(payload_));
  out_.write(reinterpret_cast<const char*>(payload_.data()),
             static_cast<std::streamsize>(payload_.size()));
  expects(out_.good(), "trace file write failed (disk full or I/O error)");
  directory_.push_back({offset_, in_chunk_, payload_bytes});
  offset_ += kChunkHeaderBytes + payload_bytes;
  payload_.clear();
  prev_line_ = 0;
  in_chunk_ = 0;
}

void TraceFileWriter::close() {
  if (closed_) return;
  flush_chunk();
  closed_ = true;
  // Serialize the directory through the same byte layout the reader CRCs.
  std::vector<std::uint8_t> dir_bytes;
  dir_bytes.reserve(directory_.size() * kDirEntryBytes);
  for (const TraceChunkInfo& c : directory_) {
    const auto push = [&dir_bytes](const void* p, std::size_t n) {
      const auto* b = static_cast<const std::uint8_t*>(p);
      dir_bytes.insert(dir_bytes.end(), b, b + n);
    };
    push(&c.offset, 8);
    push(&c.records, 4);
    push(&c.payload_bytes, 4);
  }
  const std::uint64_t dir_offset = offset_;
  out_.write(reinterpret_cast<const char*>(dir_bytes.data()),
             static_cast<std::streamsize>(dir_bytes.size()));
  put_le(out_, dir_offset);
  put_le(out_, static_cast<std::uint32_t>(directory_.size()));
  put_le(out_, crc32(dir_bytes));
  put_le(out_, total_records_);
  put_le(out_, kTraceV2FooterMagic);
  out_.close();
  ensures(out_.good(), "trace file close failed (disk full or I/O error)");
}

TraceFileIndex::TraceFileIndex(const std::string& path) : path_(path) {
  std::ifstream in(path, std::ios::binary);
  expects(in.good(), "cannot open trace file for reading");
  in.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(in.tellg());
  expects(file_bytes >= kHeaderBytes + kFooterBytes, "trace file truncated (no v2 header/footer)");

  in.seekg(0);
  expects(get_le<std::uint64_t>(in) == kTraceV2Magic, "not a pcmsim v2 trace file");
  expects(get_le<std::uint32_t>(in) == kTraceV2Version, "unsupported trace format version");
  chunk_records_ = get_le<std::uint32_t>(in);
  expects(chunk_records_ > 0, "corrupt v2 header: zero chunk size");

  in.seekg(static_cast<std::streamoff>(file_bytes - kFooterBytes));
  const auto dir_offset = get_le<std::uint64_t>(in);
  const auto chunk_count = get_le<std::uint32_t>(in);
  const auto dir_crc = get_le<std::uint32_t>(in);
  total_records_ = get_le<std::uint64_t>(in);
  const auto footer_magic = get_le<std::uint64_t>(in);
  expects(in.good(), "trace file truncated (short v2 footer)");
  expects(footer_magic == kTraceV2FooterMagic,
          "v2 trace footer missing (file truncated or not finalized)");
  expects(dir_offset >= kHeaderBytes &&
              dir_offset + chunk_count * kDirEntryBytes + kFooterBytes == file_bytes,
          "v2 trace directory does not match file length (truncated or corrupt)");

  std::vector<std::uint8_t> dir_bytes(chunk_count * kDirEntryBytes);
  in.seekg(static_cast<std::streamoff>(dir_offset));
  in.read(reinterpret_cast<char*>(dir_bytes.data()),
          static_cast<std::streamsize>(dir_bytes.size()));
  expects(in.good(), "trace file truncated (short v2 directory)");
  expects(crc32(dir_bytes) == dir_crc, "v2 trace directory CRC mismatch (corrupt file)");

  directory_.resize(chunk_count);
  std::uint64_t expect_offset = kHeaderBytes;
  std::uint64_t dir_records = 0;
  for (std::uint32_t i = 0; i < chunk_count; ++i) {
    TraceChunkInfo& c = directory_[i];
    std::memcpy(&c.offset, dir_bytes.data() + i * kDirEntryBytes, 8);
    std::memcpy(&c.records, dir_bytes.data() + i * kDirEntryBytes + 8, 4);
    std::memcpy(&c.payload_bytes, dir_bytes.data() + i * kDirEntryBytes + 12, 4);
    expects(c.offset == expect_offset, "v2 trace chunk offsets are inconsistent");
    expects(c.records > 0 && c.records <= chunk_records_, "v2 trace chunk record count corrupt");
    expect_offset += kChunkHeaderBytes + c.payload_bytes;
    dir_records += c.records;
  }
  expects(expect_offset == dir_offset, "v2 trace chunks do not fill the file (truncated)");
  expects(dir_records == total_records_, "v2 trace record total does not match directory");
}

TraceChunkDecoder::TraceChunkDecoder(std::shared_ptr<const TraceFileIndex> index)
    : index_(std::move(index)), in_(index_->path(), std::ios::binary) {
  expects(in_.good(), "cannot open trace file for reading");
}

void TraceChunkDecoder::decode(std::size_t chunk_index, std::vector<WritebackEvent>& out) {
  expects(chunk_index < index_->chunk_count(), "trace chunk index out of range");
  const TraceChunkInfo& info = index_->directory()[chunk_index];
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(info.offset));
  const auto records = get_le<std::uint32_t>(in_);
  const auto payload_bytes = get_le<std::uint32_t>(in_);
  const auto crc = get_le<std::uint32_t>(in_);
  expects(in_.good(), "trace file truncated (short chunk header)");
  expects(records == info.records && payload_bytes == info.payload_bytes,
          "trace chunk header disagrees with directory (corrupt file)");
  raw_.resize(payload_bytes);
  in_.read(reinterpret_cast<char*>(raw_.data()), static_cast<std::streamsize>(raw_.size()));
  expects(in_.good(), "trace file truncated (short chunk payload)");
  expects(crc32(raw_) == crc, "trace chunk CRC mismatch (corrupt file)");

  out.clear();
  out.reserve(records);
  std::size_t pos = 0;
  std::uint64_t prev_line = 0;
  for (std::uint32_t r = 0; r < records; ++r) {
    WritebackEvent ev;
    const std::int64_t delta = unzigzag(get_varint(raw_, pos));
    ev.line = static_cast<LineAddr>(static_cast<std::int64_t>(prev_line) + delta);
    prev_line = ev.line;
    expects(pos < raw_.size(), "trace chunk payload truncated before value tag");
    const std::uint8_t tag = raw_[pos++];
    if (tag == kRawValueTag) {
      expects(pos + kBlockBytes <= raw_.size(), "trace chunk payload truncated inside raw value");
      std::memcpy(ev.data.data(), raw_.data() + pos, kBlockBytes);
      pos += kBlockBytes;
    } else {
      expects(pos < raw_.size(), "trace chunk payload truncated before image size");
      const std::uint8_t size = raw_[pos++];
      expects(size > 0 && size < kBlockBytes, "trace chunk value image size corrupt");
      expects(pos + size <= raw_.size(), "trace chunk payload truncated inside value image");
      CompressedBlock cb;
      cb.bytes.assign(std::span<const std::uint8_t>(raw_.data() + pos, size));
      cb.scheme = unpack_scheme(tag);
      cb.encoding = unpack_layout(tag);
      expects(cb.scheme != CompressionScheme::kNone, "trace chunk value tag corrupt");
      ev.data = best_.decompress(cb);
      pos += size;
    }
    out.push_back(ev);
  }
  expects(pos == raw_.size(), "trace chunk payload has trailing bytes (corrupt file)");
}

TraceFileReader::TraceFileReader(const std::string& path)
    : index_(std::make_shared<const TraceFileIndex>(path)), decoder_(index_) {}

bool TraceFileReader::next(WritebackEvent& ev) {
  while (buffer_pos_ >= buffer_.size()) {
    if (next_chunk_ >= index_->chunk_count()) return false;
    decoder_.decode(next_chunk_++, buffer_);
    buffer_pos_ = 0;
  }
  ev = buffer_[buffer_pos_++];
  return true;
}

std::vector<WritebackEvent> TraceFileReader::read_chunk(std::size_t index) {
  std::vector<WritebackEvent> out;
  decoder_.decode(index, out);
  return out;
}

void TraceFileReader::reset() {
  next_chunk_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
}

}  // namespace pcmsim
