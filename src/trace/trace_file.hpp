// Chunked, seekable, integrity-checked trace file format (v2).
//
// Layout (all integers little-endian):
//
//   FileHeader   { u64 magic "PCMTRC2\0"; u32 version = 2; u32 chunk_records }
//   Chunk*       { u32 records; u32 payload_bytes; u32 payload_crc32;
//                  u8 payload[payload_bytes] }
//   Directory    { u64 chunk_offset; u32 records; u32 payload_bytes } * chunks
//   Footer       { u64 dir_offset; u32 chunk_count; u32 dir_crc32;
//                  u64 total_records; u64 footer_magic "PCMTRC2E" }
//
// Chunk payload, per record:
//   varint(zigzag(line - prev_line_in_chunk))   -- delta restarts at 0 per
//                                                  chunk, so chunks decode
//                                                  independently
//   u8 tag: 0xFF -> 64 raw value bytes follow (incompressible fallback);
//           else tag = pack_encoding(scheme, layout) (< 32), followed by
//           u8 image_size (1..63) and the BestOf compressed image.
//
// Values run through the repo's own BestOfCompressor plan/materialize
// pipeline, so compressible workloads store 3-20x smaller than v1's fixed
// 72 B/record. Every chunk carries its own CRC32 and record count; the
// trailing directory (itself CRC'd, located via the fixed-size footer) makes
// chunks independently addressable.
//
// The read side is split along the parallel-decode seam:
//   * TraceFileIndex — the validated, immutable view of the container (header
//     fields + directory). Built once per file; safe to share across threads.
//   * TraceChunkDecoder — the per-worker decode state (its own ifstream,
//     varint cursor, CRC check, BestOf scratch). One decoder per worker lets
//     a sweep fan read_chunk indices over the parallel engine with zero
//     shared mutable state (see trace/file_source.hpp's parallel mode).
//   * TraceFileReader — the original streaming façade over one index + one
//     decoder; unchanged API for serial consumers.
// Truncation or corruption anywhere is a hard ContractViolation at open or
// decode time, never a silent short read.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "compression/best_of.hpp"
#include "workload/trace.hpp"

namespace pcmsim {

inline constexpr std::uint64_t kTraceV2Magic = 0x00324352544d4350ull;        // "PCMTRC2\0"
inline constexpr std::uint64_t kTraceV2FooterMagic = 0x45324352544d4350ull;  // "PCMTRC2E"
inline constexpr std::uint32_t kTraceV2Version = 2;
inline constexpr std::uint32_t kTraceV2DefaultChunkRecords = 4096;

/// One directory entry: where a chunk lives and what it holds.
struct TraceChunkInfo {
  std::uint64_t offset = 0;  ///< file offset of the chunk's 12-byte header
  std::uint32_t records = 0;
  std::uint32_t payload_bytes = 0;
};

/// CRC-32 (IEEE 802.3 polynomial) over a byte range; guards chunk payloads
/// and the directory.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Streaming v2 writer: buffers one chunk in memory, flushes it (with CRC and
/// counts) every `chunk_records` events, and finalizes the directory+footer
/// in close(). Stream failures (disk full, I/O errors) fail loudly.
class TraceFileWriter {
 public:
  explicit TraceFileWriter(const std::string& path,
                           std::uint32_t chunk_records = kTraceV2DefaultChunkRecords);
  ~TraceFileWriter();
  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  void append(const WritebackEvent& ev);
  void close();  ///< flushes the last chunk, writes directory + footer

  [[nodiscard]] std::uint64_t records() const { return total_records_; }

 private:
  void flush_chunk();

  std::ofstream out_;
  BestOfCompressor best_;
  std::vector<std::uint8_t> payload_;
  std::vector<TraceChunkInfo> directory_;
  std::uint64_t prev_line_ = 0;  ///< delta base, restarts at 0 each chunk
  std::uint64_t offset_ = 0;     ///< current file offset
  std::uint64_t total_records_ = 0;
  std::uint32_t chunk_records_;
  std::uint32_t in_chunk_ = 0;
  bool closed_ = false;
};

/// Validated, immutable description of a v2 trace file: header fields plus
/// the CRC-checked chunk directory. Construction performs every structural
/// check the streaming reader used to do at open (magic, version, footer,
/// directory CRC, offset/record-count consistency); after that the object is
/// read-only and safe to share across any number of decoder threads.
class TraceFileIndex {
 public:
  explicit TraceFileIndex(const std::string& path);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint32_t chunk_records() const { return chunk_records_; }
  [[nodiscard]] std::uint64_t total_records() const { return total_records_; }
  [[nodiscard]] const std::vector<TraceChunkInfo>& directory() const { return directory_; }
  [[nodiscard]] std::size_t chunk_count() const { return directory_.size(); }

 private:
  std::string path_;
  std::vector<TraceChunkInfo> directory_;
  std::uint64_t total_records_ = 0;
  std::uint32_t chunk_records_ = 0;
};

/// Per-worker chunk decode state: an independent file handle, payload
/// scratch, and BestOf decompressor over a shared index. Not thread-safe
/// itself — the parallel pattern is one TraceChunkDecoder per worker, all
/// pointing at the same TraceFileIndex. Chunks decode independently (the
/// line-delta base restarts per chunk), so any decoder can decode any chunk
/// in any order.
class TraceChunkDecoder {
 public:
  explicit TraceChunkDecoder(std::shared_ptr<const TraceFileIndex> index);
  TraceChunkDecoder(const TraceChunkDecoder&) = delete;
  TraceChunkDecoder& operator=(const TraceChunkDecoder&) = delete;

  [[nodiscard]] const TraceFileIndex& index() const { return *index_; }

  /// Decodes chunk `chunk_index` into `out` (cleared first). CRC or layout
  /// mismatch anywhere is a ContractViolation.
  void decode(std::size_t chunk_index, std::vector<WritebackEvent>& out);

 private:
  std::shared_ptr<const TraceFileIndex> index_;
  std::ifstream in_;
  BestOfCompressor best_;
  std::vector<std::uint8_t> raw_;  ///< chunk payload scratch
};

/// Buffered v2 reader: the streaming façade over one index + one decoder.
/// Validates the container at open (via TraceFileIndex); validates each
/// chunk's CRC and record count as it streams. Any mismatch (truncation, bit
/// rot) is a ContractViolation, not a silent EOF.
class TraceFileReader {
 public:
  explicit TraceFileReader(const std::string& path);
  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  [[nodiscard]] std::uint64_t total_records() const { return index_->total_records(); }
  [[nodiscard]] std::size_t chunk_count() const { return index_->chunk_count(); }
  [[nodiscard]] const std::vector<TraceChunkInfo>& directory() const {
    return index_->directory();
  }
  /// The shared validated index — hand this to per-worker TraceChunkDecoders
  /// to decode chunks concurrently without re-validating the container.
  [[nodiscard]] std::shared_ptr<const TraceFileIndex> index() const { return index_; }

  /// Streaming access: fills `ev` and returns true, or returns false at the
  /// clean end of the trace. Decodes chunk-at-a-time internally.
  [[nodiscard]] bool next(WritebackEvent& ev);

  /// Random access: decodes chunk `index` in isolation.
  [[nodiscard]] std::vector<WritebackEvent> read_chunk(std::size_t index);

  void reset();  ///< rewinds streaming access to the first record

 private:
  std::shared_ptr<const TraceFileIndex> index_;
  TraceChunkDecoder decoder_;
  std::vector<WritebackEvent> buffer_;  ///< decoded chunk for streaming
  std::size_t next_chunk_ = 0;          ///< next chunk to stream-decode
  std::size_t buffer_pos_ = 0;
};

}  // namespace pcmsim
