// Replay of on-disk trace captures through the TraceSource interface.
//
// FileTraceSource auto-detects the container by magic: legacy v1
// ("PCMTRACE", fixed 72-byte records) or chunked v2 ("PCMTRC2\0",
// trace_file.hpp). Both replay the identical event stream a capture recorded.
//
// v2 chunks are independently decodable, so the source offers two decode
// modes:
//   * TraceDecode::kSerial   — one TraceChunkDecoder streams chunks in order
//     (the original path; v1 files always use this).
//   * TraceDecode::kParallel — a window of upcoming chunks is fanned out over
//     the deterministic parallel engine (common/parallel.hpp), one
//     slot-pinned TraceChunkDecoder per window slot (own ifstream, varint
//     cursor, CRC check, BestOf scratch — zero shared mutable state), then
//     reassembled in directory order. The delivered event stream is
//     byte-identical to serial decode at any thread count; only the wall
//     clock changes. A corrupt chunk anywhere in the window surfaces as a
//     ContractViolation from next_batch (rethrown by parallel_for), exactly
//     as the serial path would.
//
// LoopedFileTraceSource makes a finite capture drive an unbounded lifetime
// run. Replaying a recorded trace verbatim a second time is degenerate under
// differential writes — every rewrite stores the identical value and flips
// zero cells — so each pass >= 1 re-versions the values: a deterministic
// per-(line, pass) mutation flips the low byte of a few nonzero data words.
// Zero words are never touched, which preserves each block's zero structure
// (and hence its compressibility class); all-zero blocks therefore replay
// unchanged by design. The mutation depends only on (line, pass), so looped
// replay over a parallel-decoding file source stays byte-identical to the
// serial order too.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace_file.hpp"
#include "trace/trace_source.hpp"

namespace pcmsim {

/// Reads the leading 8-byte magic of `path` (0 if the file is too short).
[[nodiscard]] std::uint64_t trace_file_magic(const std::string& path);

/// How FileTraceSource turns v2 chunks back into events (see file header).
enum class TraceDecode { kSerial, kParallel };

/// Finite replay of a v1 or v2 trace file. next_batch() underfills at end of
/// trace and returns 0 thereafter; reset() rewinds to the first record.
class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(const std::string& path,
                           TraceDecode decode = TraceDecode::kSerial);
  FileTraceSource(const FileTraceSource&) = delete;
  FileTraceSource& operator=(const FileTraceSource&) = delete;

  std::size_t next_batch(std::span<WritebackEvent> out) override;
  [[nodiscard]] std::uint64_t events() const override { return events_; }
  void reset() override;

  /// Records stored in the file (one full pass).
  [[nodiscard]] std::uint64_t total_records() const { return total_records_; }

  /// The decode mode actually in effect (v1 files fall back to kSerial).
  [[nodiscard]] TraceDecode decode_mode() const { return decode_; }

 private:
  void decode_next_window();

  std::string path_;
  TraceDecode decode_ = TraceDecode::kSerial;
  std::optional<TraceReader> v1_;  // v1 files: streaming reader (serial only)
  std::optional<TraceFileReader> v2_;  // v2 serial: streaming reader
  // v2 parallel: shared index + slot-pinned decoders + in-order window.
  std::shared_ptr<const TraceFileIndex> index_;
  std::vector<std::unique_ptr<TraceChunkDecoder>> decoders_;
  std::vector<std::vector<WritebackEvent>> window_;  ///< decoded chunks, in order
  std::size_t window_chunks_ = 0;     ///< valid entries in window_
  std::size_t window_chunk_pos_ = 0;  ///< chunk being consumed
  std::size_t window_event_pos_ = 0;  ///< next event within that chunk
  std::size_t next_chunk_ = 0;        ///< next chunk index to decode
  std::uint64_t total_records_ = 0;
  std::uint64_t events_ = 0;
};

/// Unbounded replay: cycles the file, re-versioning values on every pass
/// after the first so rewrites keep flipping cells (see file header).
class LoopedFileTraceSource final : public TraceSource {
 public:
  explicit LoopedFileTraceSource(const std::string& path,
                                 TraceDecode decode = TraceDecode::kSerial);
  LoopedFileTraceSource(const LoopedFileTraceSource&) = delete;
  LoopedFileTraceSource& operator=(const LoopedFileTraceSource&) = delete;

  std::size_t next_batch(std::span<WritebackEvent> out) override;
  [[nodiscard]] std::uint64_t events() const override { return events_; }
  void reset() override;

  [[nodiscard]] std::uint64_t pass() const { return pass_; }
  [[nodiscard]] std::uint64_t records_per_pass() const { return file_.total_records(); }

 private:
  void reversion(WritebackEvent& ev) const;

  FileTraceSource file_;
  std::uint64_t pass_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace pcmsim
