// Replay of on-disk trace captures through the TraceSource interface.
//
// FileTraceSource auto-detects the container by magic: legacy v1
// ("PCMTRACE", fixed 72-byte records) or chunked v2 ("PCMTRC2\0",
// trace_file.hpp). Both replay the identical event stream a capture recorded.
//
// LoopedFileTraceSource makes a finite capture drive an unbounded lifetime
// run. Replaying a recorded trace verbatim a second time is degenerate under
// differential writes — every rewrite stores the identical value and flips
// zero cells — so each pass >= 1 re-versions the values: a deterministic
// per-(line, pass) mutation flips the low byte of a few nonzero data words.
// Zero words are never touched, which preserves each block's zero structure
// (and hence its compressibility class); all-zero blocks therefore replay
// unchanged by design.
#pragma once

#include <optional>
#include <string>

#include "trace/trace_file.hpp"
#include "trace/trace_source.hpp"

namespace pcmsim {

/// Reads the leading 8-byte magic of `path` (0 if the file is too short).
[[nodiscard]] std::uint64_t trace_file_magic(const std::string& path);

/// Finite replay of a v1 or v2 trace file. next_batch() underfills at end of
/// trace and returns 0 thereafter; reset() rewinds to the first record.
class FileTraceSource final : public TraceSource {
 public:
  explicit FileTraceSource(const std::string& path);
  FileTraceSource(const FileTraceSource&) = delete;
  FileTraceSource& operator=(const FileTraceSource&) = delete;

  std::size_t next_batch(std::span<WritebackEvent> out) override;
  [[nodiscard]] std::uint64_t events() const override { return events_; }
  void reset() override;

  /// Records stored in the file (one full pass).
  [[nodiscard]] std::uint64_t total_records() const { return total_records_; }

 private:
  std::string path_;
  std::optional<TraceReader> v1_;       // exactly one of v1_/v2_ is engaged
  std::optional<TraceFileReader> v2_;
  std::uint64_t total_records_ = 0;
  std::uint64_t events_ = 0;
};

/// Unbounded replay: cycles the file, re-versioning values on every pass
/// after the first so rewrites keep flipping cells (see file header).
class LoopedFileTraceSource final : public TraceSource {
 public:
  explicit LoopedFileTraceSource(const std::string& path);
  LoopedFileTraceSource(const LoopedFileTraceSource&) = delete;
  LoopedFileTraceSource& operator=(const LoopedFileTraceSource&) = delete;

  std::size_t next_batch(std::span<WritebackEvent> out) override;
  [[nodiscard]] std::uint64_t events() const override { return events_; }
  void reset() override;

  [[nodiscard]] std::uint64_t pass() const { return pass_; }
  [[nodiscard]] std::uint64_t records_per_pass() const { return file_.total_records(); }

 private:
  void reversion(WritebackEvent& ev) const;

  FileTraceSource file_;
  std::uint64_t pass_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace pcmsim
