#include "trace/sampled_source.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/profiler.hpp"
#include "common/simd.hpp"

namespace pcmsim {

SampledTraceSource::SampledTraceSource(const AppProfile& app, std::uint64_t region_lines,
                                       std::uint64_t seed)
    : app_(app),
      region_lines_(region_lines),
      seed_(seed),
      rank_rng_(mix64(seed ^ 0x7ac3ull)),
      state_rng_(mix64(seed ^ 0x51a7e5ull)),
      classes_(app_, seed) {
  expects(region_lines > 0, "region must be non-empty");
  expects(app_.classes.size() <= 256, "class index must fit a byte");
  build_alias();
  states_.resize(region_lines_);
  ctx_.resize(region_lines_);
  base_.resize(region_lines_);
  current_.resize(region_lines_);
}

void SampledTraceSource::build_alias() {
  // Walker/Vose alias construction over the Zipf weights 1/(k+1)^theta.
  // O(n) setup amortized over every draw; each draw is then O(1) instead of
  // the CDF sampler's O(log n) binary search over a multi-MB array.
  const std::uint64_t n = app_.working_set_lines;
  expects(n > 0, "Zipf universe must be non-empty");
  expects(n <= (std::uint64_t{1} << 32), "alias table index must fit 32 bits");
  std::vector<double> w(n);
  double total = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    w[k] = 1.0 / std::pow(static_cast<double>(k + 1), app_.zipf_theta);
    total += w[k];
  }
  alias_prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::uint64_t k = 0; k < n; ++k) alias_[k] = static_cast<std::uint32_t>(k);

  const double scale = static_cast<double>(n) / total;
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::uint64_t k = 0; k < n; ++k) {
    alias_prob_[k] = w[k] * scale;
    (alias_prob_[k] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(k));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    alias_[s] = l;
    alias_prob_[l] -= 1.0 - alias_prob_[s];
    (alias_prob_[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are 1.0 up to rounding; clamp so they always take their own slot.
  for (const std::uint32_t k : small) alias_prob_[k] = 1.0;
  for (const std::uint32_t k : large) alias_prob_[k] = 1.0;
}

std::uint64_t SampledTraceSource::draw_rank() {
  const std::uint64_t i = rank_rng_.next_below(alias_.size());
  return rank_rng_.next_double() < alias_prob_[i] ? i : alias_[i];
}

void SampledTraceSource::rebuild_base(LineAddr line, LineState& st) {
  const ValueClassSpec& spec = app_.classes[st.class_index];
  ctx_[line] = make_gen_context(spec, line, st.shape);
  Block& base = base_[line];
  base = Block{};
  generate_static_base(spec, ctx_[line], base);
  current_[line] = base;
  st.touched = apply_dynamic(spec, ctx_[line], line, st.shape, st.version, current_[line]);
}

void SampledTraceSource::produce(LineAddr line, WritebackEvent& ev) {
  LineState& st = states_[line];
  if (!st.initialized) {
    st.initialized = true;
    ++touched_lines_;
    st.shape = initial_line_shape(line, seed_);
    st.version = 0;
    const ValueClassSpec& cls = classes_.of(line);
    st.class_index = static_cast<std::uint8_t>(&cls - app_.classes.data());
    rebuild_base(line, st);
  } else {
    ++st.version;
    if (state_rng_.next_bool(app_.shape_redraw_prob)) {
      ++shape_redraws_;
      st.shape = static_cast<std::uint32_t>(state_rng_());
      st.version = 0;
      rebuild_base(line, st);
    } else {
      // Revert the previous version's dynamic words to the static base, then
      // overlay the new version — bit-identical to resynthesizing the value
      // from scratch (see value_model.hpp's decomposition contract). The
      // revert is a masked blend of base_ into current_ over the 16 u32
      // lanes rather than a per-word memcpy bit-walk.
      Block& cur = current_[line];
      const Block& base = base_[line];
      if (st.touched != 0) simd::active::merge_block_u32(cur.data(), base.data(), st.touched);
      const ValueClassSpec& spec = app_.classes[st.class_index];
      st.touched = apply_dynamic(spec, ctx_[line], line, st.shape, st.version, cur);
    }
  }
  ev.line = line;
  ev.data = current_[line];
}

std::size_t SampledTraceSource::next_batch(std::span<WritebackEvent> out) {
  const prof::ScopedStage stage(prof::Stage::kTraceGen);
  // Tile the batch: draw a run of ranks back-to-back (tight RNG/alias loop),
  // then run the state updates. Keeps the hot alias arrays in cache across a
  // tile instead of interleaving them with 64-byte block traffic.
  std::array<LineAddr, 64> lines;
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t tile = std::min(lines.size(), out.size() - done);
    for (std::size_t i = 0; i < tile; ++i) {
      lines[i] = fold_rank(draw_rank(), seed_, region_lines_);
    }
    for (std::size_t i = 0; i < tile; ++i) produce(lines[i], out[done + i]);
    done += tile;
  }
  events_ += out.size();
  return out.size();
}

void SampledTraceSource::reset() {
  rank_rng_.reseed(mix64(seed_ ^ 0x7ac3ull));
  state_rng_.reseed(mix64(seed_ ^ 0x51a7e5ull));
  std::fill(states_.begin(), states_.end(), LineState{});
  events_ = 0;
  shape_redraws_ = 0;
  touched_lines_ = 0;
}

const ValueClassSpec& SampledTraceSource::class_of(LineAddr line) const {
  return classes_.of(line);
}

Block SampledTraceSource::current_value(LineAddr line) const {
  expects(line < region_lines_, "line outside region");
  if (!states_[line].initialized) return zero_block();
  return current_[line];
}

}  // namespace pcmsim
