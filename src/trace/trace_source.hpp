// Unified write-back stream abstraction for the trace subsystem.
//
// The paper's methodology is trace-driven: "we collect traces of main memory
// accesses in Gem5, which are then fed to a lightweight memory simulator".
// TraceSource is the simulator-facing seam for every way such a stream can be
// produced:
//   * SampledTraceSource (sampled_source.hpp) — the batched flat-state
//     sampler, statistically calibrated against the legacy generator and
//     ~4x+ cheaper per event. The default source for every figure/table
//     bench and lifetime run.
//   * GeneratorTraceSource — the original per-event TraceGenerator behind
//     the batch interface. Quarantined: reachable only via explicit opt-in
//     (`--source legacy` in lifetime_study / micro_tracegen,
//     run_lifetime_legacy in code); kept as the calibration oracle the
//     sampled source is validated against (tests/trace_sampler_test.cpp).
//   * FileTraceSource / LoopedFileTraceSource (file_source.hpp) — replay of
//     on-disk captures (v1 or chunked v2; v2 optionally chunk-parallel).
//   * PrefetchTraceSource (prefetch_source.hpp) — decorator that fills the
//     next batch on a background thread, overlapping generation/decode with
//     the consumer's write execution.
//
// Sources produce events in batches (next_batch) so per-event virtual-call
// and profiler overhead amortizes across a span. Every source's stream is
// independent of how it is batched — the decorators above rely on this.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "workload/app_profile.hpp"
#include "workload/trace.hpp"

namespace pcmsim {

/// Polymorphic write-back stream. Batch-oriented: callers hand in a span and
/// get back how many leading entries were filled.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Fills up to out.size() events; returns the count filled. A return of 0
  /// means the source is exhausted (finite traces only — synthetic samplers
  /// and looped replays always fill the whole span).
  virtual std::size_t next_batch(std::span<WritebackEvent> out) = 0;

  /// Total events produced since construction (or the last reset()).
  [[nodiscard]] virtual std::uint64_t events() const = 0;

  /// Rewinds the source to its initial state (re-seeds samplers, reopens
  /// files); the stream after reset() is identical to a fresh instance.
  virtual void reset() = 0;
};

/// Per-event cursor over any batched TraceSource, for consumers that want a
/// next()-style loop (the figure benches follow individual hot lines). Pulls
/// events in fixed tiles; the delivered stream is exactly the source's
/// stream, so a cursor loop and a next_batch loop see identical events.
class TraceCursor {
 public:
  explicit TraceCursor(TraceSource& source, std::size_t tile = 256)
      : source_(source), buf_(tile) {}

  /// Fills `ev` with the next event; false at the end of a finite source.
  [[nodiscard]] bool next(WritebackEvent& ev) {
    if (pos_ >= size_) {
      size_ = source_.next_batch(std::span(buf_.data(), buf_.size()));
      pos_ = 0;
      if (size_ == 0) return false;
    }
    ev = buf_[pos_++];
    return true;
  }

  /// Convenience for unbounded sources (samplers, looped replay), which by
  /// contract always fill the whole span.
  [[nodiscard]] WritebackEvent next() {
    WritebackEvent ev;
    expects(next(ev), "trace source exhausted mid-cursor");
    return ev;
  }

 private:
  TraceSource& source_;
  std::vector<WritebackEvent> buf_;
  std::size_t pos_ = 0;
  std::size_t size_ = 0;
};

/// The legacy per-event TraceGenerator behind the TraceSource interface.
/// Event content and ordering are bit-identical to calling
/// TraceGenerator::next() in a loop. Quarantined to explicit `--source
/// legacy` opt-ins; the calibration tests keep it honest as the oracle.
class GeneratorTraceSource final : public TraceSource {
 public:
  GeneratorTraceSource(const AppProfile& app, std::uint64_t region_lines, std::uint64_t seed)
      : app_(app), region_lines_(region_lines), seed_(seed) {
    gen_.emplace(app_, region_lines_, seed_);
  }

  std::size_t next_batch(std::span<WritebackEvent> out) override {
    for (auto& ev : out) ev = gen_->next();
    return out.size();
  }

  [[nodiscard]] std::uint64_t events() const override { return gen_->events(); }

  void reset() override { gen_.emplace(app_, region_lines_, seed_); }

  [[nodiscard]] const TraceGenerator& generator() const { return *gen_; }

 private:
  AppProfile app_;  // owned copy: reset() re-constructs the generator from it
  std::uint64_t region_lines_;
  std::uint64_t seed_;
  std::optional<TraceGenerator> gen_;  // optional: emplace() implements reset()
};

}  // namespace pcmsim
