// Unified write-back stream abstraction for the trace subsystem.
//
// The paper's methodology is trace-driven: "we collect traces of main memory
// accesses in Gem5, which are then fed to a lightweight memory simulator".
// TraceSource is the simulator-facing seam for every way such a stream can be
// produced:
//   * GeneratorTraceSource — the original per-event TraceGenerator behind the
//     batch interface; figure benches keep it so their stdout stays pinned
//     bit-for-bit (fig09/table4 gates).
//   * SampledTraceSource (sampled_source.hpp) — the batched flat-state
//     sampler, statistically calibrated against the generator and ~4x+
//     cheaper per event.
//   * FileTraceSource / LoopedFileTraceSource (file_source.hpp) — replay of
//     on-disk captures (v1 or chunked v2).
//
// Sources produce events in batches (next_batch) so per-event virtual-call
// and profiler overhead amortizes across a span.
#pragma once

#include <optional>
#include <span>

#include "workload/app_profile.hpp"
#include "workload/trace.hpp"

namespace pcmsim {

/// Polymorphic write-back stream. Batch-oriented: callers hand in a span and
/// get back how many leading entries were filled.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Fills up to out.size() events; returns the count filled. A return of 0
  /// means the source is exhausted (finite traces only — synthetic samplers
  /// and looped replays always fill the whole span).
  virtual std::size_t next_batch(std::span<WritebackEvent> out) = 0;

  /// Total events produced since construction (or the last reset()).
  [[nodiscard]] virtual std::uint64_t events() const = 0;

  /// Rewinds the source to its initial state (re-seeds samplers, reopens
  /// files); the stream after reset() is identical to a fresh instance.
  virtual void reset() = 0;
};

/// The legacy per-event TraceGenerator behind the TraceSource interface.
/// Event content and ordering are bit-identical to calling
/// TraceGenerator::next() in a loop, which is what keeps the figure benches'
/// pinned outputs (fig09/table4, writepath checksum) unchanged.
class GeneratorTraceSource final : public TraceSource {
 public:
  GeneratorTraceSource(const AppProfile& app, std::uint64_t region_lines, std::uint64_t seed)
      : app_(app), region_lines_(region_lines), seed_(seed) {
    gen_.emplace(app_, region_lines_, seed_);
  }

  std::size_t next_batch(std::span<WritebackEvent> out) override {
    for (auto& ev : out) ev = gen_->next();
    return out.size();
  }

  [[nodiscard]] std::uint64_t events() const override { return gen_->events(); }

  void reset() override { gen_.emplace(app_, region_lines_, seed_); }

  [[nodiscard]] const TraceGenerator& generator() const { return *gen_; }

 private:
  AppProfile app_;  // owned copy: reset() re-constructs the generator from it
  std::uint64_t region_lines_;
  std::uint64_t seed_;
  std::optional<TraceGenerator> gen_;  // optional: emplace() implements reset()
};

}  // namespace pcmsim
