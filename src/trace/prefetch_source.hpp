// PrefetchTraceSource: a double-buffered decorator that overlaps trace
// generation (or file decode) with the consumer's write execution.
//
// A background worker thread fills buffer N+1 by draining the inner source
// while the consumer copies events out of buffer N; the consumer only blocks
// when it outruns the producer. The hard invariant — enforced by
// tests/trace_prefetch_test.cpp at threads in {1, 2, 7} — is that the
// delivered event stream is byte-identical to calling the undecorated source
// with any batching: the worker fills each buffer by calling
// inner.next_batch() repeatedly in order, and buffers are handed to the
// consumer strictly in fill order, so batch boundaries are the only thing
// that changes. Every source in this repo produces a stream independent of
// how it is batched (SampledTraceSource splits its RNG streams for exactly
// this reason; file replay and the legacy generator are per-event
// deterministic), which is the property the decorator relies on.
//
// Profiling: the inner source's generation cost still lands in kTraceGen,
// but it now accrues on the worker thread, overlapped with write execution.
// The consumer-visible cost of trace ingestion becomes kTraceWait — the time
// next_batch spends blocked on (plus copying from) a buffer. On a lifetime
// run where writes are slower than generation, kTraceWait collapses to the
// memcpy cost and trace ingestion disappears from the critical path.
//
// Errors: an exception thrown by the inner source on the worker thread (a
// ContractViolation from a corrupt trace file, say) is captured, the stream
// is end-marked, and the exception is rethrown from the consumer's next
// next_batch() call — the same contract as calling the inner source
// directly. The failing fill is discarded, so the consumer never sees a
// partial batch from it, and the rethrow is sticky: every later call throws
// again until reset().
//
// Lifecycle: the destructor and reset() stop the worker cleanly mid-stream
// (shutdown latency is bounded by one buffer fill). The decorator borrows
// the inner source; it must outlive the decorator's last use.
#pragma once

#include <array>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "trace/trace_source.hpp"

namespace pcmsim {

class PrefetchTraceSource final : public TraceSource {
 public:
  /// `buffer_events` is the size of each of the two swap buffers; the default
  /// holds a few milliseconds of sampled generation — large enough to
  /// amortize handoffs, small enough to stay cache- and memory-friendly.
  explicit PrefetchTraceSource(TraceSource& inner, std::size_t buffer_events = 4096);
  ~PrefetchTraceSource() override;
  PrefetchTraceSource(const PrefetchTraceSource&) = delete;
  PrefetchTraceSource& operator=(const PrefetchTraceSource&) = delete;

  std::size_t next_batch(std::span<WritebackEvent> out) override;
  [[nodiscard]] std::uint64_t events() const override { return events_; }

  /// Stops the worker, resets the inner source, and restarts; the stream
  /// after reset() is identical to a fresh decorator over a fresh source.
  void reset() override;

 private:
  enum class Slot : std::uint8_t { kFree, kReady };

  struct Buffer {
    std::vector<WritebackEvent> events;
    std::size_t size = 0;  ///< filled prefix of events
    bool end = false;      ///< inner source ran dry while filling
    Slot state = Slot::kFree;
  };

  void start();
  void stop();
  void worker_main();

  TraceSource& inner_;
  const std::size_t capacity_;
  std::array<Buffer, 2> buffers_;

  std::mutex m_;
  std::condition_variable ready_cv_;  ///< worker -> consumer: buffer filled
  std::condition_variable free_cv_;   ///< consumer -> worker: buffer drained
  std::thread worker_;
  std::size_t fill_idx_ = 0;  ///< worker's next buffer (alternates)
  std::size_t read_idx_ = 0;  ///< consumer's current buffer (alternates)
  std::size_t read_pos_ = 0;  ///< consumed prefix of the current buffer
  bool stop_ = false;
  bool drained_ = false;        ///< consumer reached the end-marked buffer
  std::exception_ptr error_;    ///< worker-side failure, rethrown to the consumer
  std::uint64_t events_ = 0;
};

}  // namespace pcmsim
