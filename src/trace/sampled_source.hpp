// Batched rewrite-pattern sampler: the fast synthetic write-back source.
//
// TraceGenerator (workload/trace.hpp) pays three per-event costs that this
// class removes while keeping the workload model:
//   1. an unordered_map lookup per event        -> flat arrays indexed by the
//      folded line (the region is small by construction: traces fold the
//      app's working set onto the simulated PCM region);
//   2. an O(log n) binary search over a multi-MB Zipf CDF (cache-missing)
//      -> an O(1) Walker/Vose alias table, built once per app;
//   3. full value resynthesis per event (up to ~16 hashed word writes)
//      -> cached static base + current blocks per line, advanced one version
//      incrementally via value_model's apply_dynamic (revert the previous
//      version's touched words, apply the new overlay).
//
// Calibration contract: the sampler shares fold_rank/initial_line_shape/
// ClassAssigner with TraceGenerator, so per-line value classes, shapes and
// the (line, shape, version) -> Block value function are *identical*; the
// Zipf alias table draws from the same popularity pmf; shape redraws use the
// same per-rewrite probability. Only the RNG consumption order differs, so
// the two sources are statistically equivalent (asserted by
// tests/trace_sampler_test.cpp) but not bit-identical streams — figure
// benches that pin stdout keep GeneratorTraceSource.
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "trace/trace_source.hpp"
#include "workload/app_profile.hpp"
#include "workload/value_model.hpp"

namespace pcmsim {

class SampledTraceSource final : public TraceSource {
 public:
  /// `region_lines` folds the app's working set onto the simulated PCM
  /// region, exactly as TraceGenerator does. Memory is O(region_lines)
  /// for the cached per-line blocks plus O(working_set_lines) for the
  /// alias table.
  SampledTraceSource(const AppProfile& app, std::uint64_t region_lines, std::uint64_t seed);

  SampledTraceSource(const SampledTraceSource&) = delete;
  SampledTraceSource& operator=(const SampledTraceSource&) = delete;

  std::size_t next_batch(std::span<WritebackEvent> out) override;
  [[nodiscard]] std::uint64_t events() const override { return events_; }
  void reset() override;

  [[nodiscard]] const AppProfile& app() const { return app_; }
  [[nodiscard]] std::uint64_t region_lines() const { return region_lines_; }

  /// The value class governing `line`'s contents (same assignment as
  /// TraceGenerator::class_of at equal seed).
  [[nodiscard]] const ValueClassSpec& class_of(LineAddr line) const;

  /// Value most recently produced for `line` (all-zero if never written).
  [[nodiscard]] Block current_value(LineAddr line) const;

  /// Calibration introspection (compared against TraceGenerator).
  [[nodiscard]] std::uint64_t shape_redraws() const { return shape_redraws_; }
  [[nodiscard]] std::uint64_t touched_lines() const { return touched_lines_; }

 private:
  struct LineState {
    std::uint32_t shape = 0;
    std::uint32_t version = 0;
    std::uint16_t touched = 0;  ///< 4-byte words written by the last apply_dynamic
    std::uint8_t class_index = 0;
    bool initialized = false;
  };

  void build_alias();
  [[nodiscard]] std::uint64_t draw_rank();
  void rebuild_base(LineAddr line, LineState& st);
  void produce(LineAddr line, WritebackEvent& ev);

  AppProfile app_;
  std::uint64_t region_lines_;
  std::uint64_t seed_;
  // Two independent streams: rank draws and per-line state updates. The
  // batch loop tiles rank draws ahead of state updates, so a single stream
  // would make the event sequence depend on the caller's batch size; with
  // split streams each is consumed strictly in event order and the stream is
  // identical for any batching.
  Rng rank_rng_;
  Rng state_rng_;
  ClassAssigner classes_;
  // Walker/Vose alias table over Zipf ranks: P(rank k) proportional to
  // 1/(k+1)^theta, identical pmf to common/zipf.hpp's CDF sampler.
  std::vector<double> alias_prob_;
  std::vector<std::uint32_t> alias_;
  // Flat per-line state, indexed by folded line address.
  std::vector<LineState> states_;
  std::vector<ValueGenContext> ctx_;
  std::vector<Block> base_;     ///< static base of (line, shape)
  std::vector<Block> current_;  ///< base + current version's dynamic overlay
  std::uint64_t events_ = 0;
  std::uint64_t shape_redraws_ = 0;
  std::uint64_t touched_lines_ = 0;
};

}  // namespace pcmsim
