#include "trace/file_source.hpp"

#include <cstring>
#include <fstream>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace pcmsim {

std::uint64_t trace_file_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  expects(in.good(), "cannot open trace file for reading");
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), 8);
  return in.good() ? magic : 0;
}

FileTraceSource::FileTraceSource(const std::string& path) : path_(path) {
  const std::uint64_t magic = trace_file_magic(path);
  if (magic == kTraceV2Magic) {
    v2_.emplace(path_);
    total_records_ = v2_->total_records();
  } else if (magic == kTraceV1Magic) {
    v1_.emplace(path_);
    total_records_ = v1_->count();
  } else {
    expects(false, "unrecognized trace file magic (neither v1 nor v2)");
  }
}

std::size_t FileTraceSource::next_batch(std::span<WritebackEvent> out) {
  std::size_t n = 0;
  if (v2_) {
    while (n < out.size() && v2_->next(out[n])) ++n;
  } else {
    while (n < out.size()) {
      const auto ev = v1_->next();
      if (!ev) break;
      out[n++] = *ev;
    }
  }
  events_ += n;
  return n;
}

void FileTraceSource::reset() {
  if (v2_) {
    v2_->reset();
  } else {
    v1_.emplace(path_);  // v1 reader has no rewind; reopen
  }
  events_ = 0;
}

LoopedFileTraceSource::LoopedFileTraceSource(const std::string& path) : file_(path) {
  expects(file_.total_records() > 0, "cannot loop an empty trace file");
}

void LoopedFileTraceSource::reversion(WritebackEvent& ev) const {
  // Deterministic per-(line, pass) mutation: flip the low byte of 1-4 nonzero
  // 32-bit words. Skipping zero words keeps the block's zero structure (and
  // compressibility class) intact; all-zero blocks pass through unchanged.
  const std::uint64_t h = mix64(ev.line ^ (pass_ * 0x9E3779B97F4A7C15ull));
  const unsigned k = 1 + static_cast<unsigned>(h & 3);
  for (unsigned i = 0; i < k; ++i) {
    const std::size_t w = static_cast<std::size_t>((h >> (8 + i * 6)) & 15u);
    std::uint32_t word = 0;
    std::memcpy(&word, ev.data.data() + w * 4, 4);
    if (word == 0) continue;
    const auto flip = static_cast<std::uint8_t>(1u + ((h >> (40 + i * 5)) & 0x7Fu));
    word ^= flip;
    // XOR with a nonzero byte can only zero the word if the word equalled
    // `flip`; re-flip a higher bit instead so nonzero words stay nonzero.
    if (word == 0) word = static_cast<std::uint32_t>(flip) << 8;
    std::memcpy(ev.data.data() + w * 4, &word, 4);
  }
}

std::size_t LoopedFileTraceSource::next_batch(std::span<WritebackEvent> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t n = file_.next_batch(out.subspan(done));
    if (n == 0) {
      file_.reset();
      ++pass_;
      continue;
    }
    if (pass_ > 0) {
      for (std::size_t i = done; i < done + n; ++i) reversion(out[i]);
    }
    done += n;
  }
  events_ += out.size();
  return out.size();
}

void LoopedFileTraceSource::reset() {
  file_.reset();
  pass_ = 0;
  events_ = 0;
}

}  // namespace pcmsim
