#include "trace/file_source.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace pcmsim {

std::uint64_t trace_file_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  expects(in.good(), "cannot open trace file for reading");
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), 8);
  return in.good() ? magic : 0;
}

FileTraceSource::FileTraceSource(const std::string& path, TraceDecode decode)
    : path_(path), decode_(decode) {
  const std::uint64_t magic = trace_file_magic(path);
  if (magic == kTraceV2Magic) {
    if (decode_ == TraceDecode::kParallel) {
      index_ = std::make_shared<const TraceFileIndex>(path_);
      total_records_ = index_->total_records();
    } else {
      v2_.emplace(path_);
      total_records_ = v2_->total_records();
    }
  } else if (magic == kTraceV1Magic) {
    decode_ = TraceDecode::kSerial;  // v1 has no chunk structure to fan out
    v1_.emplace(path_);
    total_records_ = v1_->count();
  } else {
    expects(false, "unrecognized trace file magic (neither v1 nor v2)");
  }
}

void FileTraceSource::decode_next_window() {
  // Fan the next window of chunk indices over the pool. The window is sized
  // to keep every worker busy while staying a small multiple of one chunk's
  // memory; slot i always uses decoder i, so a slot's decoder state is only
  // ever touched by the one task that owns the slot in this region.
  const std::size_t chunks = index_->chunk_count();
  const std::size_t width = std::max<std::size_t>(std::size_t{1}, parallel_threads());
  const std::size_t want = std::min(chunks - next_chunk_, 2 * width);
  if (window_.size() < want) window_.resize(want);
  while (decoders_.size() < want) {
    decoders_.push_back(std::make_unique<TraceChunkDecoder>(index_));
  }
  const std::size_t base = next_chunk_;
  parallel_for(want, [&](std::size_t i) { decoders_[i]->decode(base + i, window_[i]); });
  // Only reached when every chunk decoded cleanly — a CRC/layout violation is
  // rethrown by parallel_for above and no window state advances.
  next_chunk_ += want;
  window_chunks_ = want;
  window_chunk_pos_ = 0;
  window_event_pos_ = 0;
}

std::size_t FileTraceSource::next_batch(std::span<WritebackEvent> out) {
  std::size_t n = 0;
  if (index_) {  // v2, parallel window decode with in-order reassembly
    while (n < out.size()) {
      if (window_chunk_pos_ >= window_chunks_) {
        if (next_chunk_ >= index_->chunk_count()) break;
        decode_next_window();
      }
      const std::vector<WritebackEvent>& chunk = window_[window_chunk_pos_];
      const std::size_t take =
          std::min(out.size() - n, chunk.size() - window_event_pos_);
      std::copy_n(chunk.begin() + static_cast<std::ptrdiff_t>(window_event_pos_), take,
                  out.begin() + static_cast<std::ptrdiff_t>(n));
      window_event_pos_ += take;
      n += take;
      if (window_event_pos_ >= chunk.size()) {
        ++window_chunk_pos_;
        window_event_pos_ = 0;
      }
    }
  } else if (v2_) {
    while (n < out.size() && v2_->next(out[n])) ++n;
  } else {
    while (n < out.size()) {
      const auto ev = v1_->next();
      if (!ev) break;
      out[n++] = *ev;
    }
  }
  events_ += n;
  return n;
}

void FileTraceSource::reset() {
  if (index_) {
    next_chunk_ = 0;
    window_chunks_ = 0;
    window_chunk_pos_ = 0;
    window_event_pos_ = 0;
  } else if (v2_) {
    v2_->reset();
  } else {
    v1_.emplace(path_);  // v1 reader has no rewind; reopen
  }
  events_ = 0;
}

LoopedFileTraceSource::LoopedFileTraceSource(const std::string& path, TraceDecode decode)
    : file_(path, decode) {
  expects(file_.total_records() > 0, "cannot loop an empty trace file");
}

void LoopedFileTraceSource::reversion(WritebackEvent& ev) const {
  // Deterministic per-(line, pass) mutation: flip the low byte of 1-4 nonzero
  // 32-bit words. Skipping zero words keeps the block's zero structure (and
  // compressibility class) intact; all-zero blocks pass through unchanged.
  const std::uint64_t h = mix64(ev.line ^ (pass_ * 0x9E3779B97F4A7C15ull));
  const unsigned k = 1 + static_cast<unsigned>(h & 3);
  for (unsigned i = 0; i < k; ++i) {
    const std::size_t w = static_cast<std::size_t>((h >> (8 + i * 6)) & 15u);
    std::uint32_t word = 0;
    std::memcpy(&word, ev.data.data() + w * 4, 4);
    if (word == 0) continue;
    const auto flip = static_cast<std::uint8_t>(1u + ((h >> (40 + i * 5)) & 0x7Fu));
    word ^= flip;
    // XOR with a nonzero byte can only zero the word if the word equalled
    // `flip`; re-flip a higher bit instead so nonzero words stay nonzero.
    if (word == 0) word = static_cast<std::uint32_t>(flip) << 8;
    std::memcpy(ev.data.data() + w * 4, &word, 4);
  }
}

std::size_t LoopedFileTraceSource::next_batch(std::span<WritebackEvent> out) {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t n = file_.next_batch(out.subspan(done));
    if (n == 0) {
      file_.reset();
      ++pass_;
      continue;
    }
    if (pass_ > 0) {
      for (std::size_t i = done; i < done + n; ++i) reversion(out[i]);
    }
    done += n;
  }
  events_ += out.size();
  return out.size();
}

void LoopedFileTraceSource::reset() {
  file_.reset();
  pass_ = 0;
  events_ = 0;
}

}  // namespace pcmsim
