#include "trace/prefetch_source.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/profiler.hpp"

namespace pcmsim {

PrefetchTraceSource::PrefetchTraceSource(TraceSource& inner, std::size_t buffer_events)
    : inner_(inner), capacity_(buffer_events) {
  expects(capacity_ > 0, "prefetch buffer must hold at least one event");
  for (Buffer& b : buffers_) b.events.resize(capacity_);
  start();
}

PrefetchTraceSource::~PrefetchTraceSource() { stop(); }

void PrefetchTraceSource::start() {
  stop_ = false;
  drained_ = false;
  fill_idx_ = 0;
  read_idx_ = 0;
  read_pos_ = 0;
  error_ = nullptr;
  for (Buffer& b : buffers_) {
    b.size = 0;
    b.end = false;
    b.state = Slot::kFree;
  }
  worker_ = std::thread([this] { worker_main(); });
}

void PrefetchTraceSource::stop() {
  {
    std::lock_guard<std::mutex> lock(m_);
    stop_ = true;
  }
  free_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void PrefetchTraceSource::worker_main() {
  // Each iteration claims the next free buffer, fills it from the inner
  // source OUTSIDE the lock (this is the work being overlapped), then
  // publishes it. The inner source is only ever touched from this thread
  // while the worker is alive, so no lock is needed around next_batch.
  for (;;) {
    Buffer* buf = nullptr;
    {
      std::unique_lock<std::mutex> lock(m_);
      free_cv_.wait(lock, [&] { return stop_ || buffers_[fill_idx_].state == Slot::kFree; });
      if (stop_) return;
      buf = &buffers_[fill_idx_];
      fill_idx_ ^= 1;
    }
    std::size_t filled = 0;
    bool end = false;
    std::exception_ptr error;
    try {
      while (filled < capacity_) {
        const std::size_t n = inner_.next_batch(
            std::span<WritebackEvent>(buf->events.data() + filled, capacity_ - filled));
        if (n == 0) {
          end = true;
          break;
        }
        filled += n;
      }
    } catch (...) {
      // The exception must not escape the thread function (std::terminate).
      // Discard the partial fill, end-mark the stream, and hand the error to
      // the consumer, which rethrows it from next_batch.
      error = std::current_exception();
      filled = 0;
      end = true;
    }
    {
      std::lock_guard<std::mutex> lock(m_);
      if (error) error_ = error;
      buf->size = filled;
      buf->end = end;
      buf->state = Slot::kReady;
    }
    ready_cv_.notify_all();
    if (end) return;  // the end-marked buffer is the last one; worker retires
  }
}

std::size_t PrefetchTraceSource::next_batch(std::span<WritebackEvent> out) {
  // kTraceWait is the consumer-visible cost of trace ingestion under
  // prefetch: block-on-producer time plus the copy out of the ready buffer.
  // The inner source's own generation cost still accrues in kTraceGen, on
  // the worker thread, overlapped with the caller's work.
  prof::ScopedStage stage(prof::Stage::kTraceWait);
  std::size_t n = 0;
  while (n < out.size()) {
    if (drained_) break;
    Buffer& buf = buffers_[read_idx_];
    {
      std::unique_lock<std::mutex> lock(m_);
      ready_cv_.wait(lock, [&] { return buf.state == Slot::kReady; });
    }
    const std::size_t take = std::min(out.size() - n, buf.size - read_pos_);
    std::copy_n(buf.events.begin() + static_cast<std::ptrdiff_t>(read_pos_), take,
                out.begin() + static_cast<std::ptrdiff_t>(n));
    read_pos_ += take;
    n += take;
    if (read_pos_ >= buf.size) {
      if (buf.end) {
        drained_ = true;
      } else {
        std::lock_guard<std::mutex> lock(m_);
        buf.state = Slot::kFree;
        read_idx_ ^= 1;
        read_pos_ = 0;
        free_cv_.notify_all();
      }
    }
  }
  // A worker-side failure end-marks the stream with its fill discarded, so
  // the consumer first drains whatever earlier buffers delivered, then every
  // subsequent call rethrows — never a partial batch from the failing fill.
  if (drained_ && error_ && n == 0) std::rethrow_exception(error_);
  events_ += n;
  return n;
}

void PrefetchTraceSource::reset() {
  stop();
  inner_.reset();
  events_ = 0;
  start();
}

}  // namespace pcmsim
