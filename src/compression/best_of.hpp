// The paper's "BEST" compressor: run BDI and FPC in parallel, store whichever
// image is smaller (ties go to BDI for its 1-cycle decompression).
#pragma once

#include <memory>

#include "compression/bdi.hpp"
#include "compression/fpc.hpp"

namespace pcmsim {

/// Combined 5-bit encoding id carried in per-line metadata: bits [4:3] scheme,
/// bits [2:0] scheme-specific layout. Section III-B budgets exactly 5 bits.
[[nodiscard]] std::uint8_t pack_encoding(CompressionScheme scheme, std::uint8_t layout);
[[nodiscard]] CompressionScheme unpack_scheme(std::uint8_t packed);
[[nodiscard]] std::uint8_t unpack_layout(std::uint8_t packed);

/// Size-only compression result: what probe() learns without materializing
/// the winning image's bytes.
struct SizeProbe {
  std::size_t size_bytes = 0;
  CompressionScheme scheme = CompressionScheme::kNone;
};

class BestOfCompressor final : public Compressor {
 public:
  [[nodiscard]] std::optional<CompressedBlock> compress(const Block& block) const override;
  [[nodiscard]] std::optional<std::size_t> probe_size(const Block& block) const override;

  /// Size-only probe keeping the winning scheme (for latency studies);
  /// winner/tie rules match compress() exactly (ties go to BDI).
  [[nodiscard]] std::optional<SizeProbe> probe(const Block& block) const;

  [[nodiscard]] Block decompress(const CompressedBlock& cb) const override;
  [[nodiscard]] std::string_view name() const override { return "BEST(BDI,FPC)"; }

  /// Worst-case read-path latency; per-block latency depends on the winner.
  [[nodiscard]] std::uint32_t decompression_latency_cycles() const override { return 5; }

  /// Latency for a specific image (1 cycle for BDI, 5 for FPC, 0 for raw).
  [[nodiscard]] std::uint32_t latency_for(const CompressedBlock& cb) const;

  [[nodiscard]] const BdiCompressor& bdi() const { return bdi_; }
  [[nodiscard]] const FpcCompressor& fpc() const { return fpc_; }

 private:
  BdiCompressor bdi_;
  FpcCompressor fpc_;
};

}  // namespace pcmsim
