// The paper's "BEST" compressor: run BDI and FPC in parallel, store whichever
// image is smaller (ties go to BDI for its 1-cycle decompression).
//
// Implemented as a two-phase probe -> materialize pipeline: plan() answers
// the winning scheme/layout/size from one fused WordClassScan pass without
// packing any bits, and materialize() turns an accepted plan into the actual
// CompressedBlock on demand. compress() is plan() + materialize() and remains
// bit-identical to running both legacy compressors to completion.
#pragma once

#include <memory>

#include "compression/bdi.hpp"
#include "compression/fpc.hpp"
#include "compression/word_scan.hpp"

namespace pcmsim {

/// Combined 5-bit encoding id carried in per-line metadata: bits [4:3] scheme,
/// bits [2:0] scheme-specific layout. Section III-B budgets exactly 5 bits.
[[nodiscard]] std::uint8_t pack_encoding(CompressionScheme scheme, std::uint8_t layout);
[[nodiscard]] CompressionScheme unpack_scheme(std::uint8_t packed);
[[nodiscard]] std::uint8_t unpack_layout(std::uint8_t packed);

/// Size-only compression result: what probe() learns without materializing
/// the winning image's bytes.
struct SizeProbe {
  std::size_t size_bytes = 0;
  CompressionScheme scheme = CompressionScheme::kNone;
};

/// Phase-1 output: the best-of decision (winning scheme, scheme-specific
/// layout id, image size) plus the scan it was derived from, so phase 2 can
/// materialize the image without re-walking the block. The winner, size, and
/// tie-breaking (BDI wins ties) match compress() exactly.
struct CompressionPlan {
  std::uint8_t size = 0;  ///< winning image size in bytes (< kBlockBytes)
  CompressionScheme scheme = CompressionScheme::kNone;
  std::uint8_t encoding = 0;  ///< scheme-specific layout id (BdiLayout / 0)
  WordClassScan scan;

  [[nodiscard]] std::size_t size_bytes() const { return size; }
};

/// Both schemes' probe sizes from one fused scan (fig03's per-scheme columns).
struct ProbePair {
  std::optional<std::size_t> bdi;
  std::optional<std::size_t> fpc;
};

class BestOfCompressor final : public Compressor {
 public:
  [[nodiscard]] std::optional<CompressedBlock> compress(const Block& block) const override;
  [[nodiscard]] std::optional<std::size_t> probe_size(const Block& block) const override;

  /// Phase 1: one fused pass answering scheme, layout, and size; no bits are
  /// packed. nullopt exactly when compress() declines.
  [[nodiscard]] std::optional<CompressionPlan> plan(const Block& block) const;

  /// Phase 2: materializes the plan's image. Precondition: `p` came from
  /// plan() on this same block. Bit-identical to compress()'s image.
  [[nodiscard]] CompressedBlock materialize(const Block& block, const CompressionPlan& p) const;

  /// Per-scheme probe sizes from a single scan (one pass instead of two).
  [[nodiscard]] ProbePair probe_both(const Block& block) const;

  /// Size-only probe keeping the winning scheme (for latency studies);
  /// winner/tie rules match compress() exactly (ties go to BDI).
  [[nodiscard]] std::optional<SizeProbe> probe(const Block& block) const;

  [[nodiscard]] Block decompress(const CompressedBlock& cb) const override;
  [[nodiscard]] std::string_view name() const override { return "BEST(BDI,FPC)"; }

  /// Worst-case read-path latency; per-block latency depends on the winner.
  [[nodiscard]] std::uint32_t decompression_latency_cycles() const override { return 5; }

  /// Latency for a specific image (1 cycle for BDI, 5 for FPC, 0 for raw).
  [[nodiscard]] std::uint32_t latency_for(const CompressedBlock& cb) const;

  [[nodiscard]] const BdiCompressor& bdi() const { return bdi_; }
  [[nodiscard]] const FpcCompressor& fpc() const { return fpc_; }

 private:
  BdiCompressor bdi_;
  FpcCompressor fpc_;
};

}  // namespace pcmsim
