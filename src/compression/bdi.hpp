// Base-Delta-Immediate compression (Pekhimenko et al., PACT 2012).
//
// A 64-byte block is viewed as n words of k bytes; each word is stored as a
// small signed delta from one of two bases: an implicit zero base (capturing
// small immediates) and one explicit base (the first word that does not fit
// the zero base). A per-word mask selects the base. Eight layouts are tried
// (zeros, repeated word, and the 6 base/delta geometries of the paper); the
// smallest applicable one wins.
#pragma once

#include "compression/compressor.hpp"
#include "compression/word_scan.hpp"

namespace pcmsim {

/// BDI layout ids (stored in CompressedBlock::encoding).
enum class BdiLayout : std::uint8_t {
  kZeros = 0,  ///< whole block is zero (1-byte image)
  kRep8 = 1,   ///< one repeated 8-byte word (8-byte image)
  kB8D1 = 2,
  kB8D2 = 3,
  kB8D4 = 4,
  kB4D1 = 5,
  kB4D2 = 6,
  kB2D1 = 7,
};

[[nodiscard]] std::string_view to_string(BdiLayout layout);

/// Compressed image size in bytes for a given layout (fixed per layout).
[[nodiscard]] std::size_t bdi_layout_size(BdiLayout layout);

class BdiCompressor final : public Compressor {
 public:
  [[nodiscard]] std::optional<CompressedBlock> compress(const Block& block) const override;
  [[nodiscard]] std::optional<std::size_t> probe_size(const Block& block) const override;
  [[nodiscard]] Block decompress(const CompressedBlock& cb) const override;
  [[nodiscard]] std::string_view name() const override { return "BDI"; }
  [[nodiscard]] std::uint32_t decompression_latency_cycles() const override { return 1; }

  /// Attempts exactly one layout; exposed for tests and ablation studies.
  [[nodiscard]] std::optional<CompressedBlock> compress_with_layout(const Block& block,
                                                                    BdiLayout layout) const;

  /// True when `layout` can represent the block (image size is fixed per
  /// layout, so this is the size-only probe for one layout).
  [[nodiscard]] static bool layout_applies(const Block& block, BdiLayout layout);

  /// First applicable layout in the pinned nondecreasing-size order, answered
  /// from a fused scan without re-walking the block. Agrees exactly with
  /// compress()'s winning layout (ties keep the earlier layout).
  [[nodiscard]] static std::optional<BdiLayout> probe_layout(const WordClassScan& scan);

  /// Compressed size from a scan; same nullopt cases and sizes as
  /// probe_size(block).
  [[nodiscard]] static std::optional<std::size_t> probe_size(const WordClassScan& scan);
};

}  // namespace pcmsim
