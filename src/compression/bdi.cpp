#include "compression/bdi.hpp"

#include <array>
#include <cstring>

#include "common/assert.hpp"

namespace pcmsim {

namespace {

struct Geometry {
  std::size_t base_bytes;
  std::size_t delta_bytes;
};

/// Base/delta geometry for the parameterized layouts; zeros/rep handled apart.
Geometry geometry_of(BdiLayout layout) {
  switch (layout) {
    case BdiLayout::kB8D1: return {8, 1};
    case BdiLayout::kB8D2: return {8, 2};
    case BdiLayout::kB8D4: return {8, 4};
    case BdiLayout::kB4D1: return {4, 1};
    case BdiLayout::kB4D2: return {4, 2};
    case BdiLayout::kB2D1: return {2, 1};
    default: break;
  }
  expects(false, "layout has no base/delta geometry");
  return {};
}

/// Sign-extends the low `bytes` bytes of v.
std::int64_t sign_extend(std::uint64_t v, std::size_t bytes) {
  const unsigned bits = static_cast<unsigned>(bytes * 8);
  if (bits >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t mask = (1ull << bits) - 1;
  std::uint64_t x = v & mask;
  const std::uint64_t sign = 1ull << (bits - 1);
  if (x & sign) x |= ~mask;
  return static_cast<std::int64_t>(x);
}

/// True when `delta` survives truncation to `bytes` bytes and sign extension.
bool fits_signed(std::int64_t delta, std::size_t bytes) {
  if (bytes >= 8) return true;
  const std::int64_t lo = -(1ll << (bytes * 8 - 1));
  const std::int64_t hi = (1ll << (bytes * 8 - 1)) - 1;
  return delta >= lo && delta <= hi;
}

/// Loads word `i` of `base_bytes` bytes as an unsigned value.
std::uint64_t load_word(const Block& block, std::size_t i, std::size_t base_bytes) {
  std::uint64_t v = 0;
  std::memcpy(&v, block.data() + i * base_bytes, base_bytes);
  return v;
}

void store_word(Block& block, std::size_t i, std::size_t base_bytes, std::uint64_t v) {
  std::memcpy(block.data() + i * base_bytes, &v, base_bytes);
}

/// Layouts in nondecreasing image-size order: zeros 1, rep8 8, b8d1 17,
/// b4d1 22, b8d2 25, b2d1 38, b4d2 38, b8d4 41 bytes.
constexpr BdiLayout kOrder[] = {
    BdiLayout::kZeros, BdiLayout::kRep8, BdiLayout::kB8D1, BdiLayout::kB4D1,
    BdiLayout::kB8D2,  BdiLayout::kB2D1, BdiLayout::kB4D2, BdiLayout::kB8D4,
};

}  // namespace

std::string_view to_string(BdiLayout layout) {
  switch (layout) {
    case BdiLayout::kZeros: return "zeros";
    case BdiLayout::kRep8: return "rep8";
    case BdiLayout::kB8D1: return "b8d1";
    case BdiLayout::kB8D2: return "b8d2";
    case BdiLayout::kB8D4: return "b8d4";
    case BdiLayout::kB4D1: return "b4d1";
    case BdiLayout::kB4D2: return "b4d2";
    case BdiLayout::kB2D1: return "b2d1";
  }
  return "?";
}

std::size_t bdi_layout_size(BdiLayout layout) {
  switch (layout) {
    case BdiLayout::kZeros: return 1;
    case BdiLayout::kRep8: return 8;
    default: break;
  }
  const auto [k, d] = geometry_of(layout);
  const std::size_t n = kBlockBytes / k;
  return k + n * d + (n + 7) / 8;  // base + deltas + base-selector mask
}

std::optional<CompressedBlock> BdiCompressor::compress_with_layout(const Block& block,
                                                                   BdiLayout layout) const {
  CompressedBlock out;
  out.scheme = CompressionScheme::kBdi;
  out.encoding = static_cast<std::uint8_t>(layout);

  if (layout == BdiLayout::kZeros) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kBlockBytes / 8; ++i) acc |= load_word(block, i, 8);
    if (acc != 0) return std::nullopt;
    out.bytes.assign(1, 0);
    return out;
  }

  if (layout == BdiLayout::kRep8) {
    const std::uint64_t first = load_word(block, 0, 8);
    for (std::size_t i = 1; i < kBlockBytes / 8; ++i) {
      if (load_word(block, i, 8) != first) return std::nullopt;
    }
    out.bytes.resize(8);
    std::memcpy(out.bytes.data(), &first, 8);
    return out;
  }

  const auto [k, d] = geometry_of(layout);
  const std::size_t n = kBlockBytes / k;

  // Single pass: the explicit base is the first word too large for the zero
  // base (its own delta is 0, which always fits); deltas stream straight
  // into the image and the base-selector mask accumulates in a register
  // (n <= 32 words).
  out.bytes.resize(bdi_layout_size(layout));
  bool have_base = false;
  std::uint64_t base = 0;
  std::int64_t base_value = 0;
  std::uint64_t uses_base = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t word = sign_extend(load_word(block, i, k), k);
    std::int64_t delta = word;  // zero base
    if (!fits_signed(word, d)) {
      if (!have_base) {
        have_base = true;
        base = load_word(block, i, k);
        base_value = sign_extend(base, k);
      }
      delta = word - base_value;
      if (!fits_signed(delta, d)) return std::nullopt;
      uses_base |= 1ull << i;
    }
    const auto raw = static_cast<std::uint64_t>(delta);
    std::memcpy(out.bytes.data() + k + i * d, &raw, d);
  }
  std::memcpy(out.bytes.data(), &base, k);
  std::memcpy(out.bytes.data() + k + n * d, &uses_base, (n + 7) / 8);
  return out;
}

bool BdiCompressor::layout_applies(const Block& block, BdiLayout layout) {
  if (layout == BdiLayout::kZeros) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < kBlockBytes / 8; ++i) acc |= load_word(block, i, 8);
    return acc == 0;
  }

  if (layout == BdiLayout::kRep8) {
    const std::uint64_t first = load_word(block, 0, 8);
    for (std::size_t i = 1; i < kBlockBytes / 8; ++i) {
      if (load_word(block, i, 8) != first) return false;
    }
    return true;
  }

  const auto [k, d] = geometry_of(layout);
  const std::size_t n = kBlockBytes / k;
  bool have_base = false;
  std::int64_t base_value = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t word = sign_extend(load_word(block, i, k), k);
    if (fits_signed(word, d)) continue;
    if (!have_base) {
      have_base = true;
      base_value = word;  // the base's own delta is 0
      continue;
    }
    if (!fits_signed(word - base_value, d)) return false;
  }
  return true;
}

std::optional<CompressedBlock> BdiCompressor::compress(const Block& block) const {
  // kOrder is nondecreasing in image size and the exhaustive scan's strict-<
  // comparison kept the first of equal-size candidates, so stopping at the
  // first applicable layout is bit-identical to trying all eight. Every
  // layout size is < kBlockBytes, so no final size check is needed.
  for (const auto layout : kOrder) {
    if (auto candidate = compress_with_layout(block, layout)) return candidate;
  }
  return std::nullopt;
}

std::optional<std::size_t> BdiCompressor::probe_size(const Block& block) const {
  for (const auto layout : kOrder) {
    if (layout_applies(block, layout)) return bdi_layout_size(layout);
  }
  return std::nullopt;
}

std::optional<BdiLayout> BdiCompressor::probe_layout(const WordClassScan& scan) {
  // Same walk as compress()/probe_size(block), but each layout's
  // applicability comes from the scan's precomputed bit instead of a fresh
  // pass over the block.
  for (const auto layout : kOrder) {
    if (scan.bdi_applies & (1u << static_cast<std::uint8_t>(layout))) return layout;
  }
  return std::nullopt;
}

std::optional<std::size_t> BdiCompressor::probe_size(const WordClassScan& scan) {
  const auto layout = probe_layout(scan);
  if (!layout) return std::nullopt;
  return bdi_layout_size(*layout);
}

Block BdiCompressor::decompress(const CompressedBlock& cb) const {
  expects(cb.scheme == CompressionScheme::kBdi, "not a BDI image");
  const auto layout = static_cast<BdiLayout>(cb.encoding);
  expects(cb.bytes.size() == bdi_layout_size(layout), "BDI image size mismatch");
  Block block{};

  if (layout == BdiLayout::kZeros) return block;

  if (layout == BdiLayout::kRep8) {
    std::uint64_t word = 0;
    std::memcpy(&word, cb.bytes.data(), 8);
    for (std::size_t i = 0; i < kBlockBytes / 8; ++i) store_word(block, i, 8, word);
    return block;
  }

  const auto [k, d] = geometry_of(layout);
  const std::size_t n = kBlockBytes / k;
  std::uint64_t base_raw = 0;
  std::memcpy(&base_raw, cb.bytes.data(), k);
  const std::int64_t base = sign_extend(base_raw, k);
  const std::uint8_t* mask = cb.bytes.data() + k + n * d;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t delta_raw = 0;
    std::memcpy(&delta_raw, cb.bytes.data() + k + i * d, d);
    const std::int64_t delta = sign_extend(delta_raw, d);
    const bool uses_base = (mask[i / 8] >> (i % 8)) & 1u;
    const std::int64_t word = (uses_base ? base : 0) + delta;
    store_word(block, i, k, static_cast<std::uint64_t>(word));
  }
  return block;
}

}  // namespace pcmsim
