#include "compression/bdi.hpp"

#include <array>
#include <cstring>

#include "common/assert.hpp"

namespace pcmsim {

namespace {

struct Geometry {
  std::size_t base_bytes;
  std::size_t delta_bytes;
};

/// Base/delta geometry for the parameterized layouts; zeros/rep handled apart.
Geometry geometry_of(BdiLayout layout) {
  switch (layout) {
    case BdiLayout::kB8D1: return {8, 1};
    case BdiLayout::kB8D2: return {8, 2};
    case BdiLayout::kB8D4: return {8, 4};
    case BdiLayout::kB4D1: return {4, 1};
    case BdiLayout::kB4D2: return {4, 2};
    case BdiLayout::kB2D1: return {2, 1};
    default: break;
  }
  expects(false, "layout has no base/delta geometry");
  return {};
}

/// Sign-extends the low `bytes` bytes of v.
std::int64_t sign_extend(std::uint64_t v, std::size_t bytes) {
  const unsigned bits = static_cast<unsigned>(bytes * 8);
  if (bits >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t mask = (1ull << bits) - 1;
  std::uint64_t x = v & mask;
  const std::uint64_t sign = 1ull << (bits - 1);
  if (x & sign) x |= ~mask;
  return static_cast<std::int64_t>(x);
}

/// True when `delta` survives truncation to `bytes` bytes and sign extension.
bool fits_signed(std::int64_t delta, std::size_t bytes) {
  if (bytes >= 8) return true;
  const std::int64_t lo = -(1ll << (bytes * 8 - 1));
  const std::int64_t hi = (1ll << (bytes * 8 - 1)) - 1;
  return delta >= lo && delta <= hi;
}

/// Loads word `i` of `base_bytes` bytes as an unsigned value.
std::uint64_t load_word(const Block& block, std::size_t i, std::size_t base_bytes) {
  std::uint64_t v = 0;
  std::memcpy(&v, block.data() + i * base_bytes, base_bytes);
  return v;
}

void store_word(Block& block, std::size_t i, std::size_t base_bytes, std::uint64_t v) {
  std::memcpy(block.data() + i * base_bytes, &v, base_bytes);
}

}  // namespace

std::string_view to_string(BdiLayout layout) {
  switch (layout) {
    case BdiLayout::kZeros: return "zeros";
    case BdiLayout::kRep8: return "rep8";
    case BdiLayout::kB8D1: return "b8d1";
    case BdiLayout::kB8D2: return "b8d2";
    case BdiLayout::kB8D4: return "b8d4";
    case BdiLayout::kB4D1: return "b4d1";
    case BdiLayout::kB4D2: return "b4d2";
    case BdiLayout::kB2D1: return "b2d1";
  }
  return "?";
}

std::size_t bdi_layout_size(BdiLayout layout) {
  switch (layout) {
    case BdiLayout::kZeros: return 1;
    case BdiLayout::kRep8: return 8;
    default: break;
  }
  const auto [k, d] = geometry_of(layout);
  const std::size_t n = kBlockBytes / k;
  return k + n * d + (n + 7) / 8;  // base + deltas + base-selector mask
}

std::optional<CompressedBlock> BdiCompressor::compress_with_layout(const Block& block,
                                                                   BdiLayout layout) const {
  CompressedBlock out;
  out.scheme = CompressionScheme::kBdi;
  out.encoding = static_cast<std::uint8_t>(layout);

  if (layout == BdiLayout::kZeros) {
    for (auto b : block) {
      if (b != 0) return std::nullopt;
    }
    out.bytes.assign(1, 0);
    return out;
  }

  if (layout == BdiLayout::kRep8) {
    const std::uint64_t first = load_word(block, 0, 8);
    for (std::size_t i = 1; i < kBlockBytes / 8; ++i) {
      if (load_word(block, i, 8) != first) return std::nullopt;
    }
    out.bytes.resize(8);
    std::memcpy(out.bytes.data(), &first, 8);
    return out;
  }

  const auto [k, d] = geometry_of(layout);
  const std::size_t n = kBlockBytes / k;

  // Pass 1: find the explicit base — the first word too large for the zero
  // base — then check every word fits one of the two bases.
  bool have_base = false;
  std::uint64_t base = 0;
  std::vector<std::int64_t> deltas(n);
  std::vector<bool> uses_base(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const auto word = static_cast<std::int64_t>(sign_extend(load_word(block, i, k), k));
    if (fits_signed(word, d)) {
      deltas[i] = word;  // zero base
      continue;
    }
    if (!have_base) {
      have_base = true;
      base = load_word(block, i, k);
    }
    const auto delta =
        word - static_cast<std::int64_t>(sign_extend(base, k));
    if (!fits_signed(delta, d)) return std::nullopt;
    deltas[i] = delta;
    uses_base[i] = true;
  }

  out.bytes.assign(bdi_layout_size(layout), 0);
  std::memcpy(out.bytes.data(), &base, k);
  for (std::size_t i = 0; i < n; ++i) {
    const auto raw = static_cast<std::uint64_t>(deltas[i]);
    std::memcpy(out.bytes.data() + k + i * d, &raw, d);
  }
  std::uint8_t* mask = out.bytes.data() + k + n * d;
  for (std::size_t i = 0; i < n; ++i) {
    if (uses_base[i]) mask[i / 8] = static_cast<std::uint8_t>(mask[i / 8] | (1u << (i % 8)));
  }
  return out;
}

std::optional<CompressedBlock> BdiCompressor::compress(const Block& block) const {
  // Try layouts in increasing image size so the first hit is the best.
  static constexpr BdiLayout kOrder[] = {
      BdiLayout::kZeros, BdiLayout::kRep8, BdiLayout::kB8D1, BdiLayout::kB4D1,
      BdiLayout::kB8D2,  BdiLayout::kB2D1, BdiLayout::kB4D2, BdiLayout::kB8D4,
  };
  std::optional<CompressedBlock> best;
  for (auto layout : kOrder) {
    auto candidate = compress_with_layout(block, layout);
    if (candidate && (!best || candidate->size_bytes() < best->size_bytes())) {
      best = std::move(candidate);
    }
  }
  if (best && best->size_bytes() >= kBlockBytes) return std::nullopt;
  return best;
}

Block BdiCompressor::decompress(const CompressedBlock& cb) const {
  expects(cb.scheme == CompressionScheme::kBdi, "not a BDI image");
  const auto layout = static_cast<BdiLayout>(cb.encoding);
  expects(cb.bytes.size() == bdi_layout_size(layout), "BDI image size mismatch");
  Block block{};

  if (layout == BdiLayout::kZeros) return block;

  if (layout == BdiLayout::kRep8) {
    std::uint64_t word = 0;
    std::memcpy(&word, cb.bytes.data(), 8);
    for (std::size_t i = 0; i < kBlockBytes / 8; ++i) store_word(block, i, 8, word);
    return block;
  }

  const auto [k, d] = geometry_of(layout);
  const std::size_t n = kBlockBytes / k;
  std::uint64_t base_raw = 0;
  std::memcpy(&base_raw, cb.bytes.data(), k);
  const std::int64_t base = sign_extend(base_raw, k);
  const std::uint8_t* mask = cb.bytes.data() + k + n * d;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t delta_raw = 0;
    std::memcpy(&delta_raw, cb.bytes.data() + k + i * d, d);
    const std::int64_t delta = sign_extend(delta_raw, d);
    const bool uses_base = (mask[i / 8] >> (i % 8)) & 1u;
    const std::int64_t word = (uses_base ? base : 0) + delta;
    store_word(block, i, k, static_cast<std::uint64_t>(word));
  }
  return block;
}

}  // namespace pcmsim
