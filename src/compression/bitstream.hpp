// LSB-first bit packing used by the FPC compressed image.
//
// Both ends run over caller-provided storage: the writer ORs 64-bit chunks
// into a zeroed stack buffer, the reader walks any contiguous byte span, so
// a compress/decompress round-trip performs no heap allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

#include "common/assert.hpp"

namespace pcmsim {

/// Append-only bit writer (LSB-first within each byte) over external storage.
///
/// The buffer must start zeroed (bits are ORed in) and keep 8 bytes of slack
/// past the last addressable bit: each put() stores through unaligned 64-bit
/// words, so capacity is (buf.size() - 8) * 8 bits.
class BitWriter {
 public:
  explicit BitWriter(std::span<std::uint8_t> buf) : buf_(buf) {
    expects(buf.size() >= 8, "BitWriter buffer must hold the 64-bit store slack");
  }

  /// Appends the low `nbits` bits of `value`.
  void put(std::uint64_t value, unsigned nbits) {
    expects(nbits <= 64, "put supports at most 64 bits");
    expects(pos_ + nbits <= (buf_.size() - 8) * 8, "BitWriter overflow");
    if (nbits == 0) return;
    if (nbits < 64) value &= (1ull << nbits) - 1;
    const std::size_t byte = pos_ / 8;
    const unsigned shift = pos_ % 8;
    std::uint64_t lo = 0;
    std::memcpy(&lo, buf_.data() + byte, 8);
    lo |= value << shift;
    std::memcpy(buf_.data() + byte, &lo, 8);
    if (shift + nbits > 64) {
      std::uint64_t hi = 0;
      std::memcpy(&hi, buf_.data() + byte + 8, 8);
      hi |= value >> (64 - shift);
      std::memcpy(buf_.data() + byte + 8, &hi, 8);
    }
    pos_ += nbits;
  }

  [[nodiscard]] std::size_t bit_count() const { return pos_; }
  [[nodiscard]] std::size_t byte_count() const { return (pos_ + 7) / 8; }

 private:
  std::span<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Sequential bit reader matching BitWriter's layout.
class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  /// Reads `nbits` bits; reading past the end is a contract violation.
  [[nodiscard]] std::uint64_t get(unsigned nbits) {
    expects(nbits <= 64, "get supports at most 64 bits");
    expects(pos_ + nbits <= bytes_.size() * 8, "bit read past end of stream");
    if (nbits == 0) return 0;
    // Gather the (at most 9) bytes covering [pos_, pos_ + nbits) one at a
    // time: the span may end at the last touched byte, so a blind unaligned
    // 64-bit load could run past it. The shift stays < 64: the last byte
    // starts at output bit 8*(last-first) - skip <= 64 - skip (skip > 0
    // whenever 9 bytes are covered); bits pushed past 64 fall off, matching
    // the final nbits mask.
    const std::size_t first = pos_ / 8;
    const std::size_t last = (pos_ + nbits - 1) / 8;
    std::uint64_t v = 0;
    unsigned out = 0;
    unsigned skip = pos_ % 8;
    for (std::size_t b = first; b <= last; ++b) {
      v |= static_cast<std::uint64_t>(bytes_[b] >> skip) << out;
      out += 8 - skip;
      skip = 0;
    }
    if (nbits < 64) v &= (1ull << nbits) - 1;
    pos_ += nbits;
    return v;
  }

  [[nodiscard]] std::size_t bits_left() const { return bytes_.size() * 8 - pos_; }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace pcmsim
