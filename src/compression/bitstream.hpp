// LSB-first bit packing used by the FPC compressed image.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace pcmsim {

/// Append-only bit writer (LSB-first within each byte).
class BitWriter {
 public:
  /// Appends the low `nbits` bits of `value`.
  void put(std::uint64_t value, unsigned nbits) {
    expects(nbits <= 64, "put supports at most 64 bits");
    if (nbits == 0) return;
    if (nbits < 64) value &= (1ull << nbits) - 1;
    const std::size_t end_byte = (pos_ + nbits + 7) / 8;
    if (end_byte > bytes_.size()) bytes_.resize(end_byte, 0);
    unsigned written = 0;
    while (written < nbits) {
      const std::size_t byte = (pos_ + written) / 8;
      const unsigned bit_in_byte = (pos_ + written) % 8;
      const unsigned take = std::min(8u - bit_in_byte, nbits - written);
      const auto chunk = static_cast<std::uint8_t>(((value >> written) & ((1u << take) - 1u))
                                                   << bit_in_byte);
      bytes_[byte] = static_cast<std::uint8_t>(bytes_[byte] | chunk);
      written += take;
    }
    pos_ += nbits;
  }

  [[nodiscard]] std::size_t bit_count() const { return pos_; }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Sequential bit reader matching BitWriter's layout.
class BitReader {
 public:
  explicit BitReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  /// Reads `nbits` bits; reading past the end is a contract violation.
  [[nodiscard]] std::uint64_t get(unsigned nbits) {
    expects(nbits <= 64, "get supports at most 64 bits");
    expects(pos_ + nbits <= bytes_.size() * 8, "bit read past end of stream");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < nbits; ++i) {
      const bool bit = (bytes_[pos_ / 8] >> (pos_ % 8)) & 1u;
      if (bit) v |= (1ull << i);
      ++pos_;
    }
    return v;
  }

  [[nodiscard]] std::size_t bits_left() const { return bytes_.size() * 8 - pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace pcmsim
