#include "compression/best_of.hpp"

#include <utility>

#include "common/assert.hpp"

namespace pcmsim {

std::uint8_t pack_encoding(CompressionScheme scheme, std::uint8_t layout) {
  expects(layout < 8, "layout must fit 3 bits");
  return static_cast<std::uint8_t>((static_cast<std::uint8_t>(scheme) << 3) | layout);
}

CompressionScheme unpack_scheme(std::uint8_t packed) {
  return static_cast<CompressionScheme>((packed >> 3) & 0x3u);
}

std::uint8_t unpack_layout(std::uint8_t packed) { return packed & 0x7u; }

std::optional<CompressionPlan> BestOfCompressor::plan(const Block& block) const {
  CompressionPlan p;
  p.scan = scan_block(block);
  const auto bdi_layout = BdiCompressor::probe_layout(p.scan);
  const auto fpc_size = FpcCompressor::probe_size(p.scan);
  const auto bdi_size = bdi_layout ? std::optional<std::size_t>(bdi_layout_size(*bdi_layout))
                                   : std::nullopt;
  if (!bdi_size && !fpc_size) return std::nullopt;
  if (bdi_size && (!fpc_size || *bdi_size <= *fpc_size)) {
    p.size = static_cast<std::uint8_t>(*bdi_size);
    p.scheme = CompressionScheme::kBdi;
    p.encoding = static_cast<std::uint8_t>(*bdi_layout);
  } else {
    p.size = static_cast<std::uint8_t>(*fpc_size);
    p.scheme = CompressionScheme::kFpc;
    p.encoding = 0;
  }
  return p;
}

CompressedBlock BestOfCompressor::materialize(const Block& block, const CompressionPlan& p) const {
  if (p.scheme == CompressionScheme::kBdi) {
    auto out = bdi_.compress_with_layout(block, static_cast<BdiLayout>(p.encoding));
    expects(out.has_value() && out->size_bytes() == p.size,
            "BDI materialization disagrees with the plan");
    return std::move(*out);
  }
  expects(p.scheme == CompressionScheme::kFpc, "cannot materialize a kNone plan");
  return fpc_.materialize(block, p.scan);
}

std::optional<CompressedBlock> BestOfCompressor::compress(const Block& block) const {
  const auto p = plan(block);
  if (!p) return std::nullopt;
  return materialize(block, *p);
}

ProbePair BestOfCompressor::probe_both(const Block& block) const {
  const auto scan = scan_block(block);
  return ProbePair{BdiCompressor::probe_size(scan), FpcCompressor::probe_size(scan)};
}

std::optional<SizeProbe> BestOfCompressor::probe(const Block& block) const {
  const auto p = plan(block);
  if (!p) return std::nullopt;
  return SizeProbe{p->size_bytes(), p->scheme};
}

std::optional<std::size_t> BestOfCompressor::probe_size(const Block& block) const {
  const auto p = probe(block);
  if (!p) return std::nullopt;
  return p->size_bytes;
}

Block BestOfCompressor::decompress(const CompressedBlock& cb) const {
  switch (cb.scheme) {
    case CompressionScheme::kBdi: return bdi_.decompress(cb);
    case CompressionScheme::kFpc: return fpc_.decompress(cb);
    case CompressionScheme::kNone: break;
  }
  expects(false, "cannot decompress a raw image");
  return {};
}

std::uint32_t BestOfCompressor::latency_for(const CompressedBlock& cb) const {
  switch (cb.scheme) {
    case CompressionScheme::kBdi: return bdi_.decompression_latency_cycles();
    case CompressionScheme::kFpc: return fpc_.decompression_latency_cycles();
    case CompressionScheme::kNone: return 0;
  }
  return 0;
}

}  // namespace pcmsim
