#include "compression/best_of.hpp"

#include "common/assert.hpp"

namespace pcmsim {

std::uint8_t pack_encoding(CompressionScheme scheme, std::uint8_t layout) {
  expects(layout < 8, "layout must fit 3 bits");
  return static_cast<std::uint8_t>((static_cast<std::uint8_t>(scheme) << 3) | layout);
}

CompressionScheme unpack_scheme(std::uint8_t packed) {
  return static_cast<CompressionScheme>((packed >> 3) & 0x3u);
}

std::uint8_t unpack_layout(std::uint8_t packed) { return packed & 0x7u; }

std::optional<CompressedBlock> BestOfCompressor::compress(const Block& block) const {
  auto a = bdi_.compress(block);
  auto b = fpc_.compress(block);
  if (!a) return b;
  if (!b) return a;
  return a->size_bytes() <= b->size_bytes() ? a : b;
}

std::optional<SizeProbe> BestOfCompressor::probe(const Block& block) const {
  const auto a = bdi_.probe_size(block);
  const auto b = fpc_.probe_size(block);
  if (!a && !b) return std::nullopt;
  if (a && (!b || *a <= *b)) return SizeProbe{*a, CompressionScheme::kBdi};
  return SizeProbe{*b, CompressionScheme::kFpc};
}

std::optional<std::size_t> BestOfCompressor::probe_size(const Block& block) const {
  const auto p = probe(block);
  if (!p) return std::nullopt;
  return p->size_bytes;
}

Block BestOfCompressor::decompress(const CompressedBlock& cb) const {
  switch (cb.scheme) {
    case CompressionScheme::kBdi: return bdi_.decompress(cb);
    case CompressionScheme::kFpc: return fpc_.decompress(cb);
    case CompressionScheme::kNone: break;
  }
  expects(false, "cannot decompress a raw image");
  return {};
}

std::uint32_t BestOfCompressor::latency_for(const CompressedBlock& cb) const {
  switch (cb.scheme) {
    case CompressionScheme::kBdi: return bdi_.decompression_latency_cycles();
    case CompressionScheme::kFpc: return fpc_.decompression_latency_cycles();
    case CompressionScheme::kNone: return 0;
  }
  return 0;
}

}  // namespace pcmsim
