// Phase 1 of the two-phase compression pipeline: a single fused pass over the
// 8 u64 words of a block that classifies every word once and accumulates the
// state both compressors need, so BDI, FPC, and best-of size questions are all
// answered without re-walking the block and without touching a BitWriter.
//
// The scan is the probe side of the probe -> materialize split: PcmSystem and
// the benches run placement and the Figure-8 heuristic on sizes derived from
// the scan alone, and only pay the bit-packing (phase 2, materialize) when a
// compressed store is actually accepted and placed.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace pcmsim {

/// Per-block classification produced by one fused pass (scan_block).
///
/// Invariants (asserted by the plan/materialize equivalence tests):
///  * `word_class[i]` is exactly `FpcCompressor::classify()` of u32 word i
///    (zero / sign-extended-narrow / halfword / repeated-byte / raw classes),
///  * `fpc_bits` equals the legacy FPC probe's bit total (zero runs folded,
///    8 words max per run),
///  * bit L of `bdi_applies` is exactly `BdiCompressor::layout_applies()` for
///    BdiLayout L — for every layout, not just the winning one — so a probe
///    that walks the layouts in size order is bit-identical to the legacy
///    early-exit walk.
struct WordClassScan {
  /// FpcPattern id per 4-byte word (run folding happens in `fpc_bits`).
  std::array<std::uint8_t, kBlockBytes / 4> word_class{};
  /// Total FPC stream bits with zero runs folded; the compressed byte count
  /// is max(1, ceil(fpc_bits / 8)), incompressible when that reaches 64.
  std::uint32_t fpc_bits = 0;
  /// Bit per BdiLayout id: layout can represent the block.
  std::uint8_t bdi_applies = 0;
  bool all_zero = false;  ///< convenience mirror of the kZeros bit
  bool rep8 = false;      ///< convenience mirror of the kRep8 bit
};

/// Runs the fused classification pass. All-zero blocks short-circuit (every
/// derived field is still exact); everything else takes the single full pass.
[[nodiscard]] WordClassScan scan_block(const Block& block);

}  // namespace pcmsim
