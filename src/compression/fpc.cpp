#include "compression/fpc.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/assert.hpp"
#include "compression/bitstream.hpp"

namespace pcmsim {

namespace {

constexpr std::size_t kWords = kBlockBytes / 4;

std::uint32_t load_word(const Block& block, std::size_t i) {
  std::uint32_t w = 0;
  std::memcpy(&w, block.data() + i * 4, 4);
  return w;
}

void store_word(Block& block, std::size_t i, std::uint32_t w) {
  std::memcpy(block.data() + i * 4, &w, 4);
}

bool fits_signed_bits(std::int32_t v, unsigned bits) {
  const std::int32_t lo = -(1 << (bits - 1));
  const std::int32_t hi = (1 << (bits - 1)) - 1;
  return v >= lo && v <= hi;
}

std::int32_t sign_extend(std::uint32_t v, unsigned bits) {
  const std::uint32_t mask = bits >= 32 ? ~0u : (1u << bits) - 1;
  std::uint32_t x = v & mask;
  if (bits < 32 && (x & (1u << (bits - 1)))) x |= ~mask;
  return static_cast<std::int32_t>(x);
}

}  // namespace

FpcPattern FpcCompressor::classify(std::uint32_t word) {
  const auto sword = static_cast<std::int32_t>(word);
  if (word == 0) return FpcPattern::kZeroRun;
  if (fits_signed_bits(sword, 4)) return FpcPattern::kSign4;
  if (fits_signed_bits(sword, 8)) return FpcPattern::kSign8;
  if (fits_signed_bits(sword, 16)) return FpcPattern::kSign16;
  if ((word & 0xFFFFu) == 0) return FpcPattern::kHighHalfZeroPad;
  {
    const auto lo_half = static_cast<std::uint16_t>(word & 0xFFFFu);
    const auto hi_half = static_cast<std::uint16_t>(word >> 16);
    const bool lo_ok = fits_signed_bits(sign_extend(lo_half, 16), 8);
    const bool hi_ok = fits_signed_bits(sign_extend(hi_half, 16), 8);
    if (lo_ok && hi_ok) return FpcPattern::kTwoSignedBytes;
  }
  {
    const auto b0 = static_cast<std::uint8_t>(word);
    const auto b1 = static_cast<std::uint8_t>(word >> 8);
    const auto b2 = static_cast<std::uint8_t>(word >> 16);
    const auto b3 = static_cast<std::uint8_t>(word >> 24);
    if (b0 == b1 && b1 == b2 && b2 == b3) return FpcPattern::kRepeatedByte;
  }
  return FpcPattern::kUncompressed;
}

unsigned FpcCompressor::payload_bits(FpcPattern p) {
  switch (p) {
    case FpcPattern::kZeroRun: return 3;
    case FpcPattern::kSign4: return 4;
    case FpcPattern::kSign8: return 8;
    case FpcPattern::kSign16: return 16;
    case FpcPattern::kHighHalfZeroPad: return 16;
    case FpcPattern::kTwoSignedBytes: return 16;
    case FpcPattern::kRepeatedByte: return 8;
    case FpcPattern::kUncompressed: return 32;
  }
  return 32;
}

std::optional<CompressedBlock> FpcCompressor::compress(const Block& block) const {
  // Worst case is 16 uncompressed words = 16 * (3 + 32) = 560 bits = 70
  // bytes (rejected below, but only after the image is fully built), plus
  // the writer's 8-byte store slack: 80 bytes of zeroed stack scratch.
  std::array<std::uint8_t, 80> raw{};
  BitWriter bw(raw);
  std::size_t i = 0;
  while (i < kWords) {
    const std::uint32_t word = load_word(block, i);
    const FpcPattern p = classify(word);
    bw.put(static_cast<std::uint64_t>(p), 3);
    switch (p) {
      case FpcPattern::kZeroRun: {
        std::size_t run = 1;
        while (run < 8 && i + run < kWords && load_word(block, i + run) == 0) ++run;
        bw.put(run - 1, 3);
        i += run;
        continue;
      }
      case FpcPattern::kSign4:
        bw.put(word & 0xFu, 4);
        break;
      case FpcPattern::kSign8:
        bw.put(word & 0xFFu, 8);
        break;
      case FpcPattern::kSign16:
        bw.put(word & 0xFFFFu, 16);
        break;
      case FpcPattern::kHighHalfZeroPad:
        bw.put(word >> 16, 16);
        break;
      case FpcPattern::kTwoSignedBytes:
        bw.put(word & 0xFFu, 8);
        bw.put((word >> 16) & 0xFFu, 8);
        break;
      case FpcPattern::kRepeatedByte:
        bw.put(word & 0xFFu, 8);
        break;
      case FpcPattern::kUncompressed:
        bw.put(word, 32);
        break;
    }
    ++i;
  }

  // 16 zero words fold to 2x6 bits; keep at least one byte so the image is
  // never empty.
  const std::size_t nbytes = std::max<std::size_t>(1, bw.byte_count());
  if (nbytes >= kBlockBytes) return std::nullopt;
  CompressedBlock out;
  out.scheme = CompressionScheme::kFpc;
  out.encoding = 0;
  out.bytes.assign(std::span<const std::uint8_t>(raw.data(), nbytes));
  return out;
}

std::optional<std::size_t> FpcCompressor::probe_size(const Block& block) const {
  // Mirrors compress() exactly, summing field widths instead of packing.
  std::size_t bits = 0;
  std::size_t i = 0;
  while (i < kWords) {
    const std::uint32_t word = load_word(block, i);
    const FpcPattern p = classify(word);
    if (p == FpcPattern::kZeroRun) {
      std::size_t run = 1;
      while (run < 8 && i + run < kWords && load_word(block, i + run) == 0) ++run;
      bits += 3 + 3;
      i += run;
      continue;
    }
    bits += 3 + payload_bits(p);
    ++i;
  }
  const std::size_t nbytes = std::max<std::size_t>(1, (bits + 7) / 8);
  if (nbytes >= kBlockBytes) return std::nullopt;
  return nbytes;
}

std::optional<std::size_t> FpcCompressor::probe_size(const WordClassScan& scan) {
  const std::size_t nbytes = std::max<std::size_t>(1, (scan.fpc_bits + 7) / 8);
  if (nbytes >= kBlockBytes) return std::nullopt;
  return nbytes;
}

CompressedBlock FpcCompressor::materialize(const Block& block, const WordClassScan& scan) const {
  // Same packing loop as compress(), but the per-word pattern comes from the
  // scan instead of re-classifying, and the caller has already probed the
  // size so the >= kBlockBytes reject cannot trigger.
  std::array<std::uint8_t, 80> raw{};
  BitWriter bw(raw);
  std::size_t i = 0;
  while (i < kWords) {
    const std::uint32_t word = load_word(block, i);
    const auto p = static_cast<FpcPattern>(scan.word_class[i]);
    bw.put(static_cast<std::uint64_t>(p), 3);
    switch (p) {
      case FpcPattern::kZeroRun: {
        std::size_t run = 1;
        while (run < 8 && i + run < kWords &&
               scan.word_class[i + run] == static_cast<std::uint8_t>(FpcPattern::kZeroRun)) {
          ++run;
        }
        bw.put(run - 1, 3);
        i += run;
        continue;
      }
      case FpcPattern::kSign4:
        bw.put(word & 0xFu, 4);
        break;
      case FpcPattern::kSign8:
        bw.put(word & 0xFFu, 8);
        break;
      case FpcPattern::kSign16:
        bw.put(word & 0xFFFFu, 16);
        break;
      case FpcPattern::kHighHalfZeroPad:
        bw.put(word >> 16, 16);
        break;
      case FpcPattern::kTwoSignedBytes:
        bw.put(word & 0xFFu, 8);
        bw.put((word >> 16) & 0xFFu, 8);
        break;
      case FpcPattern::kRepeatedByte:
        bw.put(word & 0xFFu, 8);
        break;
      case FpcPattern::kUncompressed:
        bw.put(word, 32);
        break;
    }
    ++i;
  }

  const std::size_t nbytes = std::max<std::size_t>(1, bw.byte_count());
  expects(nbytes == std::max<std::size_t>(1, (scan.fpc_bits + 7) / 8) && nbytes < kBlockBytes,
          "materialize size disagrees with the scan's probe");
  CompressedBlock out;
  out.scheme = CompressionScheme::kFpc;
  out.encoding = 0;
  out.bytes.assign(std::span<const std::uint8_t>(raw.data(), nbytes));
  return out;
}

Block FpcCompressor::decompress(const CompressedBlock& cb) const {
  expects(cb.scheme == CompressionScheme::kFpc, "not an FPC image");
  Block block{};
  BitReader br(cb.bytes);
  std::size_t i = 0;
  while (i < kWords) {
    const auto p = static_cast<FpcPattern>(br.get(3));
    switch (p) {
      case FpcPattern::kZeroRun: {
        const std::size_t run = br.get(3) + 1;
        expects(i + run <= kWords, "FPC zero run overflows block");
        i += run;  // block starts zeroed
        continue;
      }
      case FpcPattern::kSign4:
        store_word(block, i, static_cast<std::uint32_t>(sign_extend(
                                 static_cast<std::uint32_t>(br.get(4)), 4)));
        break;
      case FpcPattern::kSign8:
        store_word(block, i, static_cast<std::uint32_t>(sign_extend(
                                 static_cast<std::uint32_t>(br.get(8)), 8)));
        break;
      case FpcPattern::kSign16:
        store_word(block, i, static_cast<std::uint32_t>(sign_extend(
                                 static_cast<std::uint32_t>(br.get(16)), 16)));
        break;
      case FpcPattern::kHighHalfZeroPad:
        store_word(block, i, static_cast<std::uint32_t>(br.get(16)) << 16);
        break;
      case FpcPattern::kTwoSignedBytes: {
        const auto lo = static_cast<std::uint32_t>(
            sign_extend(static_cast<std::uint32_t>(br.get(8)), 8));
        const auto hi = static_cast<std::uint32_t>(
            sign_extend(static_cast<std::uint32_t>(br.get(8)), 8));
        store_word(block, i, (lo & 0xFFFFu) | (hi << 16));
        break;
      }
      case FpcPattern::kRepeatedByte: {
        const auto b = static_cast<std::uint32_t>(br.get(8));
        store_word(block, i, b | (b << 8) | (b << 16) | (b << 24));
        break;
      }
      case FpcPattern::kUncompressed:
        store_word(block, i, static_cast<std::uint32_t>(br.get(32)));
        break;
    }
    ++i;
  }
  return block;
}

}  // namespace pcmsim
