// Block-compression interface used by the memory controller.
//
// The paper (Table I) evaluates two hardware cache/memory compressors, BDI
// (Pekhimenko et al., PACT'12) and FPC (Alameldeen & Wood, ISCA'04), and always
// stores the smaller of the two outputs ("BEST"). Both are implemented here
// bit-accurately with full round-trip decompression.
//
// The interface is split into two phases:
//  * probe (phase 1): size/scheme questions answered from a single fused
//    WordClassScan pass over the block (word_scan.hpp) — no bit-packing. The
//    write path's Figure-8 heuristic and window placement consume only this.
//  * materialize (phase 2): producing the actual CompressedBlock image, paid
//    only when a compressed store is accepted (BestOfCompressor::plan() /
//    materialize()). compress() below remains the one-shot combination and
//    the bit-identity reference for both phases.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/inline_bytes.hpp"
#include "common/types.hpp"

namespace pcmsim {

/// Which algorithm produced a compressed image.
enum class CompressionScheme : std::uint8_t {
  kNone = 0,  ///< stored raw (incompressible or policy chose uncompressed)
  kBdi = 1,
  kFpc = 2,
};

[[nodiscard]] constexpr std::string_view to_string(CompressionScheme s) {
  switch (s) {
    case CompressionScheme::kNone: return "none";
    case CompressionScheme::kBdi: return "bdi";
    case CompressionScheme::kFpc: return "fpc";
  }
  return "?";
}

/// A compressed 64-byte block image plus the metadata needed to decompress it.
///
/// `encoding` is scheme-specific (e.g. which BDI base/delta layout) and fits
/// the 5-bit per-line metadata budget the paper allocates (Section III-B).
struct CompressedBlock {
  InlineBytes bytes;  ///< payload, bytes.size() <= kBlockBytes, stored inline
  CompressionScheme scheme = CompressionScheme::kNone;
  std::uint8_t encoding = 0;  ///< scheme-specific layout id (< 32)

  [[nodiscard]] std::size_t size_bytes() const { return bytes.size(); }
};

/// Abstract compressor: compress may decline (returns nullopt) when the block
/// does not match any of the scheme's patterns or would not shrink.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Attempts to compress; a returned image is always strictly smaller than
  /// kBlockBytes and round-trips exactly through decompress().
  [[nodiscard]] virtual std::optional<CompressedBlock> compress(const Block& block) const = 0;

  /// Compressed size in bytes without materializing the image, for callers
  /// that only study sizes (fig03/fig11 CDFs, Table III). Agrees exactly with
  /// compress(): same nullopt cases, same winning size.
  [[nodiscard]] virtual std::optional<std::size_t> probe_size(const Block& block) const {
    const auto c = compress(block);
    if (!c) return std::nullopt;
    return c->size_bytes();
  }

  /// Reconstructs the original 64-byte block.
  /// Precondition: `cb` was produced by this compressor's compress().
  [[nodiscard]] virtual Block decompress(const CompressedBlock& cb) const = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Decompression latency in CPU cycles (Table I: BDI 1, FPC 5).
  [[nodiscard]] virtual std::uint32_t decompression_latency_cycles() const = 0;
};

}  // namespace pcmsim
