#include "compression/word_scan.hpp"

#include <cstring>

#include "common/simd.hpp"
#include "compression/bdi.hpp"
#include "compression/fpc.hpp"

namespace pcmsim {

namespace {

// The SIMD kernel reports FPC classes and BDI geometries with plain integer
// ids; pin them to the domain enums here, where the two vocabularies meet.
static_assert(static_cast<std::uint8_t>(FpcPattern::kZeroRun) == 0);
static_assert(static_cast<std::uint8_t>(FpcPattern::kSign4) == 1);
static_assert(static_cast<std::uint8_t>(FpcPattern::kSign8) == 2);
static_assert(static_cast<std::uint8_t>(FpcPattern::kSign16) == 3);
static_assert(static_cast<std::uint8_t>(FpcPattern::kHighHalfZeroPad) == 4);
static_assert(static_cast<std::uint8_t>(FpcPattern::kTwoSignedBytes) == 5);
static_assert(static_cast<std::uint8_t>(FpcPattern::kRepeatedByte) == 6);
static_assert(static_cast<std::uint8_t>(FpcPattern::kUncompressed) == 7);
static_assert(sizeof(WordClassScan{}.word_class) == sizeof(simd::BlockScan{}.word_class));

constexpr std::uint8_t layout_bit(BdiLayout layout) {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(layout));
}

constexpr std::uint8_t geom_bit(const simd::BlockScan& k, unsigned geom, BdiLayout layout) {
  return (k.geom_ok >> geom) & 1u ? layout_bit(layout) : std::uint8_t{0};
}

}  // namespace

WordClassScan scan_block(const Block& block) {
  WordClassScan s;
  std::array<std::uint64_t, kBlockBytes / 8> w;
  std::memcpy(w.data(), block.data(), kBlockBytes);

  simd::BlockScan k;
  simd::active::scan_words(w.data(), k);

  s.all_zero = k.all_zero;
  s.rep8 = k.rep8;
  if (k.all_zero) {
    // word_class is already all kZeroRun (= 0); 16 zero words fold into two
    // 8-word runs of 3+3 bits, and a zero delta fits every geometry.
    s.fpc_bits = 12;
    s.bdi_applies = 0xFF;
    return s;
  }

  std::memcpy(s.word_class.data(), k.word_class.data(), k.word_class.size());
  s.fpc_bits = k.fpc_bits;
  s.bdi_applies = static_cast<std::uint8_t>(
      (k.rep8 ? layout_bit(BdiLayout::kRep8) : 0) |
      geom_bit(k, simd::kGeomB8D1, BdiLayout::kB8D1) |
      geom_bit(k, simd::kGeomB8D2, BdiLayout::kB8D2) |
      geom_bit(k, simd::kGeomB8D4, BdiLayout::kB8D4) |
      geom_bit(k, simd::kGeomB4D1, BdiLayout::kB4D1) |
      geom_bit(k, simd::kGeomB4D2, BdiLayout::kB4D2) |
      geom_bit(k, simd::kGeomB2D1, BdiLayout::kB2D1));
  return s;
}

}  // namespace pcmsim
