#include "compression/word_scan.hpp"

#include <cstring>

#include "compression/bdi.hpp"
#include "compression/fpc.hpp"

namespace pcmsim {

namespace {

/// True when `v` survives truncation to `bytes` bytes and sign extension
/// (same contract as the BDI compressor's internal helper).
bool fits_signed(std::int64_t v, unsigned bytes) {
  const std::int64_t lo = -(1ll << (bytes * 8 - 1));
  const std::int64_t hi = (1ll << (bytes * 8 - 1)) - 1;
  return v >= lo && v <= hi;
}

/// Streaming replica of BdiCompressor::layout_applies for one base/delta
/// geometry: the explicit base is the first word whose own value does not fit
/// the zero base, and every later oversized word must sit within delta reach
/// of it. Feeding words in block order is exactly the legacy per-layout walk.
struct GeomState {
  bool ok = true;
  bool have_base = false;
  std::int64_t base = 0;

  void feed(std::int64_t word, unsigned delta_bytes) {
    if (!ok || fits_signed(word, delta_bytes)) return;
    if (!have_base) {
      have_base = true;
      base = word;  // the base's own delta is 0
      return;
    }
    if (!fits_signed(word - base, delta_bytes)) ok = false;
  }
};

constexpr std::uint8_t layout_bit(BdiLayout layout) {
  return static_cast<std::uint8_t>(1u << static_cast<std::uint8_t>(layout));
}

}  // namespace

WordClassScan scan_block(const Block& block) {
  WordClassScan s;
  std::array<std::uint64_t, kBlockBytes / 8> w;
  std::memcpy(w.data(), block.data(), kBlockBytes);

  std::uint64_t acc = 0;
  bool rep = true;
  for (std::size_t i = 0; i < w.size(); ++i) {
    acc |= w[i];
    rep = rep && w[i] == w[0];
  }
  s.all_zero = acc == 0;
  s.rep8 = rep;
  if (s.all_zero) {
    // word_class is already all kZeroRun (= 0); 16 zero words fold into two
    // 8-word runs of 3+3 bits, and a zero delta fits every geometry.
    s.fpc_bits = 12;
    s.bdi_applies = 0xFF;
    return s;
  }

  GeomState b8d1;
  GeomState b8d2;
  GeomState b8d4;
  GeomState b4d1;
  GeomState b4d2;
  GeomState b2d1;
  std::uint32_t bits = 0;
  unsigned run = 0;  // current zero-run length, 0 = not in a run
  for (std::size_t i = 0; i < w.size(); ++i) {
    const std::int64_t sw = static_cast<std::int64_t>(w[i]);
    b8d1.feed(sw, 1);
    b8d2.feed(sw, 2);
    b8d4.feed(sw, 4);
    for (std::size_t h = 0; h < 2; ++h) {
      const auto u32 = static_cast<std::uint32_t>(w[i] >> (32 * h));
      const auto s32 = static_cast<std::int64_t>(static_cast<std::int32_t>(u32));
      b4d1.feed(s32, 1);
      b4d2.feed(s32, 2);
      for (std::size_t q = 0; q < 2; ++q) {
        const auto u16 = static_cast<std::uint16_t>(u32 >> (16 * q));
        b2d1.feed(static_cast<std::int64_t>(static_cast<std::int16_t>(u16)), 1);
      }
      // FPC: classify the u32 word, folding zero runs exactly like the legacy
      // probe (6 bits per run, runs capped at 8 words).
      const FpcPattern p = FpcCompressor::classify(u32);
      s.word_class[2 * i + h] = static_cast<std::uint8_t>(p);
      if (p == FpcPattern::kZeroRun) {
        if (run == 0) bits += 3 + 3;
        if (++run == 8) run = 0;
      } else {
        run = 0;
        bits += 3 + FpcCompressor::payload_bits(p);
      }
    }
  }
  s.fpc_bits = bits;
  s.bdi_applies = static_cast<std::uint8_t>(
      (rep ? layout_bit(BdiLayout::kRep8) : 0) | (b8d1.ok ? layout_bit(BdiLayout::kB8D1) : 0) |
      (b8d2.ok ? layout_bit(BdiLayout::kB8D2) : 0) | (b8d4.ok ? layout_bit(BdiLayout::kB8D4) : 0) |
      (b4d1.ok ? layout_bit(BdiLayout::kB4D1) : 0) | (b4d2.ok ? layout_bit(BdiLayout::kB4D2) : 0) |
      (b2d1.ok ? layout_bit(BdiLayout::kB2D1) : 0));
  return s;
}

}  // namespace pcmsim
