// Frequent Pattern Compression (Alameldeen & Wood, ISCA 2004 / TR-1500).
//
// Each 4-byte word is encoded as a 3-bit prefix plus a variable-length data
// field; runs of zero words collapse into a single prefix. The compressed
// image is a packed bit stream (LSB-first), padded to a whole byte count.
#pragma once

#include "compression/compressor.hpp"
#include "compression/word_scan.hpp"

namespace pcmsim {

/// FPC word pattern prefixes (3 bits on the wire).
enum class FpcPattern : std::uint8_t {
  kZeroRun = 0,        ///< 1-8 consecutive all-zero words; data = 3-bit length-1
  kSign4 = 1,          ///< 4-bit sign-extended immediate
  kSign8 = 2,          ///< 8-bit sign-extended immediate
  kSign16 = 3,         ///< 16-bit sign-extended immediate
  kHighHalfZeroPad = 4,///< non-zero upper halfword, zero lower halfword
  kTwoSignedBytes = 5, ///< two halfwords, each a sign-extended byte
  kRepeatedByte = 6,   ///< all four bytes identical
  kUncompressed = 7,   ///< raw 32-bit word
};

class FpcCompressor final : public Compressor {
 public:
  [[nodiscard]] std::optional<CompressedBlock> compress(const Block& block) const override;
  [[nodiscard]] std::optional<std::size_t> probe_size(const Block& block) const override;
  [[nodiscard]] Block decompress(const CompressedBlock& cb) const override;
  [[nodiscard]] std::string_view name() const override { return "FPC"; }
  [[nodiscard]] std::uint32_t decompression_latency_cycles() const override { return 5; }

  /// Classifies one 4-byte word (ignoring zero-run folding); exposed for tests.
  [[nodiscard]] static FpcPattern classify(std::uint32_t word);

  /// Payload bits for a pattern (excluding the 3-bit prefix).
  [[nodiscard]] static unsigned payload_bits(FpcPattern p);

  /// Compressed size from a fused scan (phase 1): same nullopt cases and
  /// sizes as probe_size(block), derived from scan.fpc_bits alone.
  [[nodiscard]] static std::optional<std::size_t> probe_size(const WordClassScan& scan);

  /// Phase 2: packs the image using the scan's per-word classes (no
  /// re-classification). Precondition: probe_size(scan) returned a value.
  /// Bit-identical to compress(block)'s image.
  [[nodiscard]] CompressedBlock materialize(const Block& block, const WordClassScan& scan) const;
};

}  // namespace pcmsim
