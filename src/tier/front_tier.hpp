// Content-aware DRAM front tier: a set-associative write-back buffer that
// absorbs LLC write-back traffic before it reaches PCM (ROADMAP item 4).
//
// Every production PCM deployment fronts the array with a DRAM/eDRAM
// write-back tier; CARAM showed that making that tier *content-aware* —
// deduplicating and coalescing write-backs by payload — multiplies PCM
// lifetime beyond what raw buffering gives. FrontTier models that tier as a
// sets x ways buffer of full 64-byte payloads with pluggable policies:
//
//   * kLru    — plain LRU write-back buffer; the content-blind control.
//               Absorption comes only from write coalescing on tier hits.
//   * kSilent — LRU plus silent/partial-store elimination: a miss whose
//               payload matches the PCM-resident line (cheap 64-bit content
//               fingerprint, verified word-by-word) is dropped outright, and
//               partially-overlapping misses/updates track a touched-word
//               mask so the tier reports how much of each eviction the PCM
//               write path actually needs (the differential write makes the
//               shrink free of charge downstream).
//   * kComp   — silent elimination plus compressibility-aware retention:
//               victims are chosen among the least-recently-used half of the
//               set by *smallest compressed-size probe first*, so
//               poorly-compressible lines — the ones that burn the most PCM
//               flips and energy per write-back — stay in DRAM longer.
//   * kDedup  — silent elimination plus CARAM-style payload deduplication:
//               within a set, entries whose payloads are byte-identical
//               share one payload slot (fingerprint-indexed, refcounted).
//               The tag array is over-provisioned (dedup_tag_ways >= ways)
//               while the payload budget — the DRAM bytes — stays equal to
//               the other policies, so dedup turns content redundancy into
//               effective capacity.
//
// The tier charges DRAM write-hit latency through its own MemoryController
// instance (a second controller next to the PCM one), so runs report modeled
// latency alongside lifetime amplification. Everything is deterministic:
// the structure is driven synchronously by put(), victim choice and payload
// allocation scan in fixed order, and no RNG is involved.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "compression/best_of.hpp"
#include "controller/controller.hpp"

namespace pcmsim {

/// Victim-selection / content-awareness policy of the front tier.
enum class TierPolicy : std::uint8_t {
  kLru,     ///< plain LRU write-back buffer (control)
  kSilent,  ///< + silent/partial-store elimination against the PCM copy
  kComp,    ///< + compressibility-aware retention (evict compressible first)
  kDedup,   ///< + per-set payload dedup with over-provisioned tags
};

[[nodiscard]] std::string_view to_string(TierPolicy p);
/// Parses "lru" / "silent" / "comp" / "dedup"; throws ContractViolation on
/// anything else.
[[nodiscard]] TierPolicy tier_policy_from_string(std::string_view s);

/// DDR3-DRAM-flavoured controller timings for the tier (same 400 MHz command
/// clock as the PCM model, but without PCM's slow programming commit). Only
/// the relative DRAM-vs-PCM service gap matters for the modeled latency.
[[nodiscard]] ControllerConfig dram_tier_controller_config();

struct FrontTierConfig {
  /// Payload capacity in 64-byte lines; 0 disables the tier everywhere it is
  /// embedded (run_lifetime, the sharded engine) — the default, so every
  /// pinned checksum predates of the tier is unchanged.
  std::size_t capacity_lines = 0;
  std::size_t ways = 8;  ///< payload slots per set (set-associativity)
  TierPolicy policy = TierPolicy::kLru;
  /// Tag entries per set under kDedup (>= ways). Tags are ~8 bytes against
  /// 64-byte payloads, so over-provisioning them is how dedup converts
  /// payload sharing into extra resident lines at equal DRAM capacity.
  std::size_t dedup_tag_ways = 16;
  /// Model DRAM write latency through an embedded MemoryController.
  bool model_latency = true;
  ControllerConfig controller = dram_tier_controller_config();
  /// Controller cycles between consecutive offered write-backs (arrival
  /// pacing for the embedded controller; the sharded engine passes its own
  /// global dispatch order instead).
  std::uint64_t arrival_gap_cycles = 16;

  [[nodiscard]] bool enabled() const { return capacity_lines > 0; }

  /// Convenience: a tier of `kb` DRAM kilobytes under `policy`.
  [[nodiscard]] static FrontTierConfig for_kb(std::size_t kb, TierPolicy policy);
};

/// Counters the tier reports; all integers so digests can fold them exactly.
struct FrontTierStats {
  std::uint64_t offered = 0;       ///< write-backs presented to the tier
  std::uint64_t hits = 0;          ///< coalesced into a resident entry
  std::uint64_t silent_hits = 0;   ///< hit with byte-identical payload
  std::uint64_t silent_drops = 0;  ///< miss dropped: payload == PCM-resident
  std::uint64_t inserts = 0;       ///< misses that allocated an entry
  std::uint64_t evictions = 0;     ///< victims forwarded to PCM
  std::uint64_t flushes = 0;       ///< lines forwarded by flush()
  std::uint64_t invalidates = 0;   ///< lines removed by invalidate()
  std::uint64_t dedup_shares = 0;  ///< inserts/updates that shared a payload
  std::uint64_t fp_false_hits = 0; ///< fingerprint matched, bytes differed
  /// Partial-store shrink accounting: of the 16 u32 words in every forwarded
  /// line, how many were actually touched since the PCM-resident copy (only
  /// maintained by the content-aware policies; kLru forwards full lines).
  std::uint64_t words_forwarded = 0;
  std::uint64_t words_touched = 0;

  /// Write-backs the tier absorbed (never reached PCM as a write).
  [[nodiscard]] std::uint64_t absorbed() const { return hits + silent_drops; }

  /// Exact sum of another tier's counters (the sharded engine aggregates its
  /// per-shard tiers in shard order).
  void merge(const FrontTierStats& other) {
    offered += other.offered;
    hits += other.hits;
    silent_hits += other.silent_hits;
    silent_drops += other.silent_drops;
    inserts += other.inserts;
    evictions += other.evictions;
    flushes += other.flushes;
    invalidates += other.invalidates;
    dedup_shares += other.dedup_shares;
    fp_false_hits += other.fp_false_hits;
    words_forwarded += other.words_forwarded;
    words_touched += other.words_touched;
  }
};

/// The front tier itself. Write-backs enter via put(); evicted dirty lines
/// leave through the forward sink (the PCM write path).
class FrontTier {
 public:
  /// A line leaving the tier toward PCM. `tag` is an opaque caller id carried
  /// from put() to the sink (the sharded engine stores the tenant index).
  struct Forward {
    LineAddr line = 0;
    std::uint32_t tag = 0;
    Block data{};
  };
  using ForwardSink = std::function<void(const Forward&)>;

  FrontTier(const FrontTierConfig& config, ForwardSink sink);

  enum class Outcome : std::uint8_t {
    kHit,         ///< coalesced into a resident entry (absorbed)
    kSilentHit,   ///< hit, payload already identical (absorbed)
    kSilentDrop,  ///< miss, payload matches PCM-resident copy (absorbed)
    kInserted,    ///< miss, allocated (a victim may have been forwarded)
  };

  /// Offers one write-back; arrival time for the latency model is paced by
  /// the internal offered counter.
  Outcome put(LineAddr line, const Block& data, std::uint32_t tag = 0);
  /// Same, with an explicit arrival order (the sharded engine's global
  /// dispatch index). `order` must be non-decreasing across calls.
  Outcome put_at(std::uint64_t order, LineAddr line, const Block& data,
                 std::uint32_t tag = 0);

  /// Forwards every resident line to the sink (set order, then tag-way
  /// order) and empties the tier.
  void flush();

  /// Removes `line` if resident, returning its content without forwarding
  /// (back-invalidation). Dedup refcounts are released exactly as eviction
  /// does.
  std::optional<Forward> invalidate(LineAddr line);

  /// Seals the embedded latency model; call before reading controller().
  /// Idempotent; put() after finish_timing() throws via the controller.
  void finish_timing();

  [[nodiscard]] const FrontTierStats& stats() const { return stats_; }
  [[nodiscard]] const FrontTierConfig& config() const { return config_; }
  /// The embedded DRAM controller (model_latency only; nullptr otherwise).
  [[nodiscard]] const MemoryController* controller() const {
    return controller_ ? &*controller_ : nullptr;
  }

  // Introspection for tests and benches.
  [[nodiscard]] bool contains(LineAddr line) const;
  [[nodiscard]] const Block* peek(LineAddr line) const;
  [[nodiscard]] std::size_t sets() const { return sets_; }
  [[nodiscard]] std::size_t tag_ways() const { return tag_ways_; }
  [[nodiscard]] std::size_t payload_ways() const { return config_.ways; }
  [[nodiscard]] std::size_t resident_lines() const { return resident_; }
  [[nodiscard]] std::size_t unique_payloads() const { return payloads_used_; }
  /// The tier's view of the PCM-resident content of `line` (what it last
  /// forwarded), if any. The silent-store differential test compares this
  /// against a filterless reference model.
  [[nodiscard]] const Block* pcm_resident(LineAddr line) const;

  /// Content fingerprint used for silent-store candidacy and dedup indexing;
  /// exposed so tests can construct colliding/matching payloads.
  [[nodiscard]] static std::uint64_t fingerprint(const Block& data);

 private:
  struct TagEntry {
    LineAddr line = 0;
    bool valid = false;
    std::uint32_t payload = 0;   ///< payload slot index within the set
    std::uint32_t tag = 0;       ///< caller id (tenant) of the last writer
    std::uint64_t lru = 0;       ///< global tick; larger = more recent
    std::uint16_t touched = 0;   ///< u32-word mask touched since PCM copy
  };
  struct PayloadSlot {
    Block data{};
    std::uint64_t fp = 0;
    std::uint8_t plan_size = kBlockBytes;  ///< compressed-size probe
    std::uint16_t refs = 0;                ///< sharing entries (kDedup > 1)
  };
  struct ResidentLine {
    std::uint64_t fp = 0;
    Block data{};
  };

  [[nodiscard]] std::size_t set_of(LineAddr line) const;
  [[nodiscard]] TagEntry* find(std::size_t set, LineAddr line);
  [[nodiscard]] const TagEntry* find(std::size_t set, LineAddr line) const;
  /// Policy victim among the valid entries of `set`; never called on an
  /// empty set.
  [[nodiscard]] std::size_t choose_victim(std::size_t set) const;
  /// Forwards entry `idx` of `set` to the sink and frees it (refcounted).
  void evict(std::size_t set, std::size_t idx, bool count_as_flush = false);
  void release_payload(std::size_t set, std::uint32_t slot);
  /// Finds a shareable payload slot (kDedup) or claims a free one, evicting
  /// LRU entries (skipping `keep`) until one frees. Returns the slot index
  /// and whether it was shared.
  struct SlotClaim {
    std::uint32_t slot = 0;
    bool shared = false;
  };
  SlotClaim claim_payload(std::size_t set, const Block& data, std::uint64_t fp,
                          std::uint8_t plan_size, const TagEntry* keep);
  void charge_latency(std::uint64_t order);
  [[nodiscard]] std::uint16_t touched_words(const Block& before, const Block& after) const;
  [[nodiscard]] std::uint8_t probe_plan_size(const Block& data) const;

  Outcome put_impl(std::uint64_t order, LineAddr line, const Block& data, std::uint32_t tag);
  /// Filtering body of put (runs under the kTierFilter profiler stage);
  /// evictions it triggers are queued and forwarded by drain_forwards()
  /// outside the stage scope, so the stage measures pure filter cost.
  Outcome filter(LineAddr line, const Block& data, std::uint32_t tag);
  void drain_forwards();

  [[nodiscard]] bool content_aware() const { return config_.policy != TierPolicy::kLru; }

  FrontTierConfig config_;
  ForwardSink sink_;
  std::size_t sets_ = 0;
  std::size_t tag_ways_ = 0;
  std::vector<TagEntry> tags_;        ///< sets_ x tag_ways_, row-major
  std::vector<PayloadSlot> payloads_; ///< sets_ x config_.ways, row-major
  std::unordered_map<LineAddr, ResidentLine> pcm_resident_;
  std::vector<Forward> pending_;  ///< evictions awaiting the sink
  BestOfCompressor compressor_;
  FrontTierStats stats_;
  std::optional<MemoryController> controller_;
  std::uint64_t tick_ = 0;       ///< LRU clock
  std::uint64_t last_order_ = 0; ///< last arrival order charged
  bool sealed_ = false;          ///< finish_timing() ran
  std::size_t resident_ = 0;
  std::size_t payloads_used_ = 0;
};

}  // namespace pcmsim
