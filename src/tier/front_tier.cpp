#include "tier/front_tier.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"

namespace pcmsim {

std::string_view to_string(TierPolicy p) {
  switch (p) {
    case TierPolicy::kLru: return "lru";
    case TierPolicy::kSilent: return "silent";
    case TierPolicy::kComp: return "comp";
    case TierPolicy::kDedup: return "dedup";
  }
  return "?";
}

TierPolicy tier_policy_from_string(std::string_view s) {
  if (s == "lru") return TierPolicy::kLru;
  if (s == "silent") return TierPolicy::kSilent;
  if (s == "comp") return TierPolicy::kComp;
  if (s == "dedup") return TierPolicy::kDedup;
  expects(false, "tier policy must be lru, silent, comp, or dedup");
  return TierPolicy::kLru;  // unreachable
}

ControllerConfig dram_tier_controller_config() {
  ControllerConfig cfg;
  cfg.banks = 1;  // the tier is one buffer, not a banked device
  // DDR3-1600-flavoured service at the shared 400 MHz command clock: no PCM
  // programming commit, so writes retire in a burst + write-recovery window
  // instead of PCM's 60-cycle precharge.
  cfg.timing.t_rdc = 20;
  cfg.timing.t_rp = 6;
  cfg.timing.t_cl = 5;
  cfg.timing.t_wl = 4;
  return cfg;
}

FrontTierConfig FrontTierConfig::for_kb(std::size_t kb, TierPolicy policy) {
  FrontTierConfig cfg;
  cfg.capacity_lines = kb * 1024 / kBlockBytes;
  cfg.policy = policy;
  return cfg;
}

std::uint64_t FrontTier::fingerprint(const Block& data) {
  std::uint64_t h = 0x46504d5449455231ull;  // "FPMTIER1"
  for (std::size_t i = 0; i < kBlockBytes; i += 8) {
    h = mix64(h, load_le<std::uint64_t>(data, i));
  }
  return h;
}

FrontTier::FrontTier(const FrontTierConfig& config, ForwardSink sink)
    : config_(config), sink_(std::move(sink)) {
  expects(config_.enabled(), "FrontTier requires capacity_lines > 0 (use the "
                             "embedding seam's disabled default instead)");
  expects(config_.ways >= 1, "tier needs at least one way");
  expects(config_.capacity_lines >= config_.ways,
          "tier capacity must hold at least one full set");
  expects(sink_ != nullptr, "tier needs a forward sink");
  sets_ = config_.capacity_lines / config_.ways;
  tag_ways_ = config_.policy == TierPolicy::kDedup
                  ? std::max(config_.dedup_tag_ways, config_.ways)
                  : config_.ways;
  tags_.resize(sets_ * tag_ways_);
  payloads_.resize(sets_ * config_.ways);
  if (config_.model_latency) controller_.emplace(config_.controller);
}

std::size_t FrontTier::set_of(LineAddr line) const {
  // Hash the index so tenant-sliced (contiguous) address spaces spread
  // across sets instead of aliasing set 0 per slice.
  return static_cast<std::size_t>(mix64(line) % sets_);
}

FrontTier::TagEntry* FrontTier::find(std::size_t set, LineAddr line) {
  TagEntry* base = tags_.data() + set * tag_ways_;
  for (std::size_t w = 0; w < tag_ways_; ++w) {
    if (base[w].valid && base[w].line == line) return base + w;
  }
  return nullptr;
}

const FrontTier::TagEntry* FrontTier::find(std::size_t set, LineAddr line) const {
  return const_cast<FrontTier*>(this)->find(set, line);
}

std::size_t FrontTier::choose_victim(std::size_t set) const {
  const TagEntry* base = tags_.data() + set * tag_ways_;
  if (config_.policy == TierPolicy::kComp) {
    // Compressibility-aware retention: among the least-recently-used half of
    // the resident entries, evict the one whose payload compresses smallest
    // (cheapest to rewrite in PCM); ties go to the older entry. Incompressible
    // lines therefore survive roughly twice as long as plain LRU would keep
    // them, at the same capacity.
    std::vector<std::size_t> valid;
    valid.reserve(tag_ways_);
    for (std::size_t w = 0; w < tag_ways_; ++w) {
      if (base[w].valid) valid.push_back(w);
    }
    std::sort(valid.begin(), valid.end(),
              [&](std::size_t a, std::size_t b) { return base[a].lru < base[b].lru; });
    const std::size_t half = (valid.size() + 1) / 2;
    std::size_t best = valid[0];
    const PayloadSlot* slots = payloads_.data() + set * config_.ways;
    for (std::size_t i = 1; i < half; ++i) {
      const std::size_t w = valid[i];
      if (slots[base[w].payload].plan_size < slots[base[best].payload].plan_size) best = w;
    }
    return best;
  }
  std::size_t best = tag_ways_;
  for (std::size_t w = 0; w < tag_ways_; ++w) {
    if (!base[w].valid) continue;
    if (best == tag_ways_ || base[w].lru < base[best].lru) best = w;
  }
  ensures(best != tag_ways_, "choose_victim called on an empty set");
  return best;
}

void FrontTier::release_payload(std::size_t set, std::uint32_t slot) {
  PayloadSlot& p = payloads_[set * config_.ways + slot];
  ensures(p.refs > 0, "payload refcount underflow");
  if (--p.refs == 0) --payloads_used_;
}

void FrontTier::evict(std::size_t set, std::size_t idx, bool count_as_flush) {
  TagEntry& e = tags_[set * tag_ways_ + idx];
  ensures(e.valid, "evicting an invalid tier entry");
  const PayloadSlot& p = payloads_[set * config_.ways + e.payload];
  Forward fwd;
  fwd.line = e.line;
  fwd.tag = e.tag;
  fwd.data = p.data;
  if (content_aware()) {
    pcm_resident_[e.line] = ResidentLine{p.fp, p.data};
    stats_.words_touched += static_cast<std::uint64_t>(std::popcount(e.touched));
  } else {
    stats_.words_touched += kBlockBytes / 4;  // content-blind: full line
  }
  stats_.words_forwarded += kBlockBytes / 4;
  if (count_as_flush) {
    ++stats_.flushes;
  } else {
    ++stats_.evictions;
  }
  release_payload(set, e.payload);
  e.valid = false;
  --resident_;
  pending_.push_back(fwd);
}

void FrontTier::drain_forwards() {
  // The sink (the PCM write path) may be arbitrarily heavy; it runs outside
  // the kTierFilter profiler scope and outside the structure mutation, in
  // eviction order.
  for (const Forward& fwd : pending_) sink_(fwd);
  pending_.clear();
}

FrontTier::SlotClaim FrontTier::claim_payload(std::size_t set, const Block& data,
                                              std::uint64_t fp, std::uint8_t plan_size,
                                              const TagEntry* keep) {
  PayloadSlot* slots = payloads_.data() + set * config_.ways;
  if (config_.policy == TierPolicy::kDedup) {
    for (std::size_t s = 0; s < config_.ways; ++s) {
      if (slots[s].refs == 0 || slots[s].fp != fp) continue;
      if (std::memcmp(slots[s].data.data(), data.data(), kBlockBytes) == 0) {
        ++slots[s].refs;
        ++stats_.dedup_shares;
        return SlotClaim{static_cast<std::uint32_t>(s), true};
      }
      ++stats_.fp_false_hits;
    }
  }
  for (;;) {
    for (std::size_t s = 0; s < config_.ways; ++s) {
      if (slots[s].refs != 0) continue;
      slots[s].data = data;
      slots[s].fp = fp;
      slots[s].plan_size = plan_size;
      slots[s].refs = 1;
      ++payloads_used_;
      return SlotClaim{static_cast<std::uint32_t>(s), false};
    }
    // Every payload slot is referenced (possible only under kDedup's tag
    // over-provisioning): evict LRU entries — never the one being updated —
    // until a slot frees.
    const TagEntry* base = tags_.data() + set * tag_ways_;
    std::size_t victim = tag_ways_;
    for (std::size_t w = 0; w < tag_ways_; ++w) {
      if (!base[w].valid || base + w == keep) continue;
      if (victim == tag_ways_ || base[w].lru < base[victim].lru) victim = w;
    }
    ensures(victim != tag_ways_, "tier payload slots exhausted with no evictable entry");
    evict(set, victim);
  }
}

void FrontTier::charge_latency(std::uint64_t order) {
  if (!controller_) return;
  MemRequest req;
  req.arrival_cycle = order * config_.arrival_gap_cycles;
  req.is_read = false;
  req.bank = 0;
  controller_->submit(req);
}

std::uint16_t FrontTier::touched_words(const Block& before, const Block& after) const {
  std::uint16_t mask = 0;
  for (std::size_t w = 0; w < kBlockBytes / 4; ++w) {
    if (load_le<std::uint32_t>(before, w * 4) != load_le<std::uint32_t>(after, w * 4)) {
      mask = static_cast<std::uint16_t>(mask | (1u << w));
    }
  }
  return mask;
}

std::uint8_t FrontTier::probe_plan_size(const Block& data) const {
  const auto size = compressor_.probe_size(data);
  return static_cast<std::uint8_t>(size ? *size : kBlockBytes);
}

FrontTier::Outcome FrontTier::put(LineAddr line, const Block& data, std::uint32_t tag) {
  return put_impl(stats_.offered, line, data, tag);
}

FrontTier::Outcome FrontTier::put_at(std::uint64_t order, LineAddr line, const Block& data,
                                     std::uint32_t tag) {
  expects(order >= last_order_, "tier arrival order must be non-decreasing");
  return put_impl(order, line, data, tag);
}

FrontTier::Outcome FrontTier::put_impl(std::uint64_t order, LineAddr line, const Block& data,
                                       std::uint32_t tag) {
  ++stats_.offered;
  last_order_ = order;
  charge_latency(order);
  Outcome out;
  {
    const prof::ScopedStage stage(prof::Stage::kTierFilter);
    out = filter(line, data, tag);
  }
  drain_forwards();
  return out;
}

FrontTier::Outcome FrontTier::filter(LineAddr line, const Block& data, std::uint32_t tag) {
  const std::size_t set = set_of(line);
  if (TagEntry* e = find(set, line)) {
    // Hit: the write-back coalesces in DRAM. Content-aware policies compare
    // payloads first so byte-identical rewrites don't even touch the stored
    // copy (and are reported as silent hits).
    ++stats_.hits;
    e->lru = ++tick_;
    e->tag = tag;
    PayloadSlot& old = payloads_[set * config_.ways + e->payload];
    if (content_aware()) {
      const std::uint64_t fp = fingerprint(data);
      if (old.fp == fp && std::memcmp(old.data.data(), data.data(), kBlockBytes) == 0) {
        ++stats_.silent_hits;
        return Outcome::kSilentHit;
      }
      e->touched = static_cast<std::uint16_t>(e->touched | touched_words(old.data, data));
      const std::uint8_t psize = probe_plan_size(data);
      if (config_.policy == TierPolicy::kDedup) {
        release_payload(set, e->payload);
        const SlotClaim claim = claim_payload(set, data, fp, psize, e);
        e->payload = claim.slot;
      } else {
        old.data = data;
        old.fp = fp;
        old.plan_size = psize;
      }
    } else {
      old.data = data;
    }
    return Outcome::kHit;
  }

  std::uint16_t touched = static_cast<std::uint16_t>((1u << (kBlockBytes / 4)) - 1);
  std::uint64_t fp = 0;
  if (content_aware()) {
    fp = fingerprint(data);
    // Silent/partial-store elimination: a miss whose payload matches what PCM
    // already holds is dropped outright (fingerprint gate, then a verifying
    // word compare); a partial overlap shrinks the entry's touched-word mask
    // to the words that actually differ.
    const auto it = pcm_resident_.find(line);
    if (it != pcm_resident_.end()) {
      if (it->second.fp == fp) {
        if (std::memcmp(it->second.data.data(), data.data(), kBlockBytes) == 0) {
          ++stats_.silent_drops;
          return Outcome::kSilentDrop;
        }
        ++stats_.fp_false_hits;
      }
      touched = touched_words(it->second.data, data);
    }
  }

  // Miss: allocate a tag entry (evicting the policy victim when the set is
  // full), then attach a payload (shared under kDedup when an identical one
  // is already resident).
  TagEntry* base = tags_.data() + set * tag_ways_;
  std::size_t idx = tag_ways_;
  for (std::size_t w = 0; w < tag_ways_; ++w) {
    if (!base[w].valid) {
      idx = w;
      break;
    }
  }
  if (idx == tag_ways_) {
    idx = choose_victim(set);
    evict(set, idx);
  }
  const std::uint8_t psize = content_aware() ? probe_plan_size(data) : kBlockBytes;
  const SlotClaim claim = claim_payload(set, data, fp, psize, nullptr);
  TagEntry& e = tags_[set * tag_ways_ + idx];
  e.line = line;
  e.valid = true;
  e.payload = claim.slot;
  e.tag = tag;
  e.lru = ++tick_;
  e.touched = touched;
  ++resident_;
  ++stats_.inserts;
  return Outcome::kInserted;
}

void FrontTier::flush() {
  for (std::size_t set = 0; set < sets_; ++set) {
    for (std::size_t w = 0; w < tag_ways_; ++w) {
      if (tags_[set * tag_ways_ + w].valid) evict(set, w, /*count_as_flush=*/true);
    }
  }
  drain_forwards();
}

std::optional<FrontTier::Forward> FrontTier::invalidate(LineAddr line) {
  const std::size_t set = set_of(line);
  TagEntry* e = find(set, line);
  if (e == nullptr) return std::nullopt;
  Forward fwd;
  fwd.line = e->line;
  fwd.tag = e->tag;
  fwd.data = payloads_[set * config_.ways + e->payload].data;
  release_payload(set, e->payload);
  e->valid = false;
  --resident_;
  ++stats_.invalidates;
  return fwd;
}

void FrontTier::finish_timing() {
  if (controller_ && !sealed_) {
    controller_->finish();
    sealed_ = true;
  }
}

bool FrontTier::contains(LineAddr line) const {
  return find(set_of(line), line) != nullptr;
}

const Block* FrontTier::peek(LineAddr line) const {
  const std::size_t set = set_of(line);
  const TagEntry* e = find(set, line);
  if (e == nullptr) return nullptr;
  return &payloads_[set * config_.ways + e->payload].data;
}

const Block* FrontTier::pcm_resident(LineAddr line) const {
  const auto it = pcm_resident_.find(line);
  return it == pcm_resident_.end() ? nullptr : &it->second.data;
}

}  // namespace pcmsim
