// Adapters closing the cache → tier → PCM loop.
//
// CmpHierarchy emits dirty L2 victims through a WritebackSink; FrontTier
// emits evicted lines through a ForwardSink; PcmSystem::write consumes them.
// These two helpers snap the three seams together so a hierarchy-driven run
// (the table3/WPKI path) can feed the tier exactly like a TraceSource stream
// does in run_lifetime.
//
// Header-only on purpose: it is the one place the tier touches cache and
// core types, so pcmsim_tier itself stays free of those dependencies and the
// binaries that already link pcmsim_cache + pcmsim_core pay nothing extra.
#pragma once

#include "cache/cache.hpp"
#include "core/system.hpp"
#include "tier/front_tier.hpp"

namespace pcmsim {

/// A CmpHierarchy::WritebackSink that offers every dirty L2 victim to `tier`.
[[nodiscard]] inline std::function<void(const Writeback&)> tier_writeback_sink(
    FrontTier& tier) {
  return [&tier](const Writeback& wb) { (void)tier.put(wb.line, wb.data); };
}

/// A FrontTier::ForwardSink landing tier evictions on `system`, folding the
/// line onto the system's logical space (identity for in-range addresses).
[[nodiscard]] inline FrontTier::ForwardSink pcm_forward_sink(PcmSystem& system) {
  return [&system](const FrontTier::Forward& fwd) {
    (void)system.write(fwd.line % system.logical_lines(), fwd.data);
  };
}

}  // namespace pcmsim
