#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "common/zipf.hpp"

namespace pcmsim {
namespace {

// ---------------------------------------------------------------- RNG
TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(124);
  EXPECT_NE(a(), c());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW((void)rng.next_below(0), ContractViolation);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 600);
    EXPECT_LT(c, n / 10 + 600);
  }
}

TEST(Rng, NormalHasRequestedMoments) {
  Rng rng(13);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(rng.next_normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalMatchesMeanAndCov) {
  Rng rng(17);
  RunningStat s;
  for (int i = 0; i < 200000; ++i) s.add(rng.next_lognormal_mean_cov(1000.0, 0.15));
  EXPECT_NEAR(s.mean(), 1000.0, 5.0);
  EXPECT_NEAR(s.stddev() / s.mean(), 0.15, 0.01);
  EXPECT_GT(s.min(), 0.0);
}

TEST(Rng, LognormalZeroCovIsDegenerate) {
  Rng rng(19);
  EXPECT_DOUBLE_EQ(rng.next_lognormal_mean_cov(42.0, 0.0), 42.0);
}

// ---------------------------------------------------------------- Zipf
TEST(Zipf, PmfDecreasesWithRank) {
  ZipfSampler z(100, 0.8);
  for (std::uint64_t k = 1; k < 100; ++k) EXPECT_GE(z.pmf(k - 1), z.pmf(k));
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfSampler z(50, 0.0);
  for (std::uint64_t k = 0; k < 50; ++k) EXPECT_NEAR(z.pmf(k), 1.0 / 50, 1e-12);
}

TEST(Zipf, HigherThetaConcentratesMass) {
  Rng rng(3);
  ZipfSampler flat(1000, 0.2);
  ZipfSampler steep(1000, 1.2);
  int flat_top = 0;
  int steep_top = 0;
  for (int i = 0; i < 20000; ++i) {
    flat_top += flat.sample(rng) < 10 ? 1 : 0;
    steep_top += steep.sample(rng) < 10 ? 1 : 0;
  }
  EXPECT_GT(steep_top, flat_top * 3);
}

TEST(Zipf, SamplesCoverUniverse) {
  Rng rng(5);
  ZipfSampler z(8, 0.5);
  bool seen[8] = {};
  for (int i = 0; i < 5000; ++i) seen[z.sample(rng)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

// ---------------------------------------------------------------- Stats
TEST(RunningStat, MatchesClosedForm) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, MergeEqualsSingleAccumulator) {
  Rng rng(9);
  RunningStat whole;
  RunningStat a;
  RunningStat b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(Histogram, QuantileAndCdfAgree) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.cdf(50.0), 0.5, 0.02);
  EXPECT_NEAR(h.cdf(100.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0, 10, 10);
  h.add(-5);
  h.add(15);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(EmpiricalCdf, QuantilesInterpolate) {
  EmpiricalCdf c;
  for (double x : {10.0, 20.0, 30.0, 40.0}) c.add(x);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 25.0);
  EXPECT_DOUBLE_EQ(c.at(20.0), 0.5);
  EXPECT_DOUBLE_EQ(c.at(9.0), 0.0);
  EXPECT_DOUBLE_EQ(c.at(45.0), 1.0);
}

// ---------------------------------------------------------------- types.hpp
TEST(Bits, HammingDistanceCountsDifferences) {
  Block a{};
  Block b{};
  EXPECT_EQ(hamming_distance(a, b), 0u);
  b[0] = 0xFF;
  b[63] = 0x0F;
  EXPECT_EQ(hamming_distance(a, b), 12u);
}

TEST(Bits, GetSetBitRoundTrips) {
  std::vector<std::uint8_t> buf(8, 0);
  for (std::size_t i : {0u, 1u, 7u, 8u, 35u, 63u}) {
    set_bit(buf, i, true);
    EXPECT_TRUE(get_bit(buf, i));
    set_bit(buf, i, false);
    EXPECT_FALSE(get_bit(buf, i));
  }
}

TEST(Bits, LoadStoreLittleEndian) {
  std::vector<std::uint8_t> buf(16, 0);
  store_le<std::uint32_t>(buf, 4, 0xA1B2C3D4u);
  EXPECT_EQ(buf[4], 0xD4);
  EXPECT_EQ(buf[7], 0xA1);
  EXPECT_EQ(load_le<std::uint32_t>(buf, 4), 0xA1B2C3D4u);
}

// ---------------------------------------------------------------- table/CLI
TEST(Table, RendersAlignedAndCsv) {
  TablePrinter t({"a", "bb"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print(os, "T");
  EXPECT_NE(os.str().find("| a | bb |"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "a,bb\n1,2\n");
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--csv", "--writes", "100", "--rate=0.5", "--name", "milc"};
  CliArgs args(7, argv);
  EXPECT_TRUE(args.get_bool("csv"));
  EXPECT_EQ(args.get_int("writes", 0), 100);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0), 0.5);
  EXPECT_EQ(args.get("name", ""), "milc");
  EXPECT_EQ(args.get_int("absent", 7), 7);
  EXPECT_FALSE(args.get_bool("absent"));
}

TEST(Cli, RejectsStrayPositionals) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(CliArgs(2, argv), std::invalid_argument);
}

}  // namespace
}  // namespace pcmsim
