#include "compression/best_of.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"

namespace pcmsim {
namespace {

TEST(BestOf, PicksSmallerOfBdiAndFpc) {
  BestOfCompressor best;
  // Narrow 8-byte deltas: BDI b8d1 (17 B) beats FPC (raw 35-bit words).
  Block bdi_friendly{};
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t v = 0x4141'4141'0000'0000ull + i * 5;
    std::memcpy(bdi_friendly.data() + i * 8, &v, 8);
  }
  const auto r1 = best.compress(bdi_friendly);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->scheme, CompressionScheme::kBdi);

  // Mostly-zero with scattered small words: FPC beats every BDI layout.
  Block fpc_friendly{};
  const std::uint32_t w = 3;
  std::memcpy(fpc_friendly.data() + 20, &w, 4);
  const auto r2 = best.compress(fpc_friendly);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->scheme, CompressionScheme::kFpc);
  EXPECT_LT(r2->size_bytes(), 8u);
}

TEST(BestOf, DecompressDispatchesOnScheme) {
  BestOfCompressor best;
  Rng rng(31);
  for (int iter = 0; iter < 200; ++iter) {
    Block b{};
    const std::uint64_t base = rng();
    for (std::size_t i = 0; i < 8; ++i) {
      const std::uint64_t v = (iter % 2) ? base + rng.next_below(100)
                                         : rng.next_below(50);
      std::memcpy(b.data() + i * 8, &v, 8);
    }
    const auto r = best.compress(b);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(best.decompress(*r), b);
  }
}

TEST(BestOf, LatencyMatchesWinner) {
  BestOfCompressor best;
  CompressedBlock bdi;
  bdi.scheme = CompressionScheme::kBdi;
  CompressedBlock fpc;
  fpc.scheme = CompressionScheme::kFpc;
  CompressedBlock raw;
  EXPECT_EQ(best.latency_for(bdi), 1u);
  EXPECT_EQ(best.latency_for(fpc), 5u);
  EXPECT_EQ(best.latency_for(raw), 0u);
}

TEST(Encoding, PackUnpackRoundTrips) {
  for (auto scheme : {CompressionScheme::kNone, CompressionScheme::kBdi, CompressionScheme::kFpc}) {
    for (std::uint8_t layout = 0; layout < 8; ++layout) {
      const std::uint8_t packed = pack_encoding(scheme, layout);
      EXPECT_LT(packed, 32) << "must fit the 5-bit metadata budget";
      EXPECT_EQ(unpack_scheme(packed), scheme);
      EXPECT_EQ(unpack_layout(packed), layout);
    }
  }
}

TEST(BestOf, ImageNeverGrowsToBlockSize) {
  BestOfCompressor best;
  Rng rng(77);
  for (int iter = 0; iter < 500; ++iter) {
    Block b{};
    for (auto& byte : b) byte = static_cast<std::uint8_t>(rng.next_below(4) ? 0 : rng());
    const auto r = best.compress(b);
    if (r) EXPECT_LT(r->size_bytes(), kBlockBytes);
  }
}

}  // namespace
}  // namespace pcmsim
