// The determinism contract of the parallel engine: every parallelized
// experiment is bit-identical to its serial run at any thread count, because
// each task derives its own RNG stream and results reduce in index order.
#include <gtest/gtest.h>

#include <vector>

#include "common/parallel.hpp"
#include "ecc/ecp.hpp"
#include "ecc/safer.hpp"
#include "sim/experiments.hpp"
#include "sim/monte_carlo.hpp"

namespace pcmsim {
namespace {

const std::vector<std::size_t> kThreadCounts = {1, 2, 7};

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

TEST_F(ParallelEquivalenceTest, McFailureProbabilityBitIdenticalAcrossThreadCounts) {
  EcpScheme ecp(6);
  SaferScheme safer(32);
  MonteCarloConfig mc;
  mc.trials = 6000;
  mc.chunk_trials = 512;  // several shards even at this trial count

  std::vector<double> ecp_p;
  std::vector<double> safer_p;
  for (const std::size_t threads : kThreadCounts) {
    set_parallel_threads(threads);
    Rng r1(17);
    Rng r2(17);
    ecp_p.push_back(mc_failure_probability(ecp, 32, 20, mc, r1));
    safer_p.push_back(mc_failure_probability(safer, 24, 40, mc, r2));
  }
  for (std::size_t i = 1; i < kThreadCounts.size(); ++i) {
    EXPECT_EQ(ecp_p[i], ecp_p[0]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(safer_p[i], safer_p[0]) << "threads=" << kThreadCounts[i];
  }
  // Sanity: the probed points are non-degenerate, so the comparison is real.
  EXPECT_GT(ecp_p[0], 0.0);
  EXPECT_LT(ecp_p[0], 1.0);
}

TEST_F(ParallelEquivalenceTest, McConsumesOneRngDrawRegardlessOfThreads) {
  EcpScheme ecp(6);
  MonteCarloConfig mc;
  mc.trials = 1000;
  mc.chunk_trials = 128;
  for (const std::size_t threads : kThreadCounts) {
    set_parallel_threads(threads);
    Rng used(99);
    (void)mc_failure_probability(ecp, 32, 20, mc, used);
    Rng reference(99);
    (void)reference();
    EXPECT_EQ(used(), reference()) << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, LifetimeMatrixBitIdenticalAcrossThreadCounts) {
  ExperimentScale tiny;
  tiny.endurance_mean = 60;
  tiny.physical_lines = 96;
  tiny.seed = 5;
  const std::vector<std::string> apps = {"milc", "lbm"};
  const std::vector<SystemMode> modes = {SystemMode::kBaseline, SystemMode::kCompWF};

  std::vector<std::vector<LifetimeCell>> runs;
  for (const std::size_t threads : kThreadCounts) {
    set_parallel_threads(threads);
    runs.push_back(run_lifetime_matrix(apps, modes, tiny));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t c = 0; c < runs[0].size(); ++c) {
      const auto& a = runs[0][c];
      const auto& b = runs[r][c];
      EXPECT_EQ(a.app, b.app);
      EXPECT_EQ(a.mode, b.mode);
      EXPECT_EQ(a.result.writes_to_failure, b.result.writes_to_failure)
          << a.app << " threads=" << kThreadCounts[r];
      EXPECT_EQ(a.result.programmed_bits, b.result.programmed_bits);
      EXPECT_EQ(a.result.uncorrectable_events, b.result.uncorrectable_events);
      EXPECT_EQ(a.result.recycled_lines, b.result.recycled_lines);
      EXPECT_EQ(a.result.mean_faults_at_death, b.result.mean_faults_at_death);
      EXPECT_EQ(a.result.mean_flips_per_write, b.result.mean_flips_per_write);
      EXPECT_EQ(a.result.mean_compressed_size, b.result.mean_compressed_size);
      EXPECT_EQ(a.result.energy_pj_per_write, b.result.energy_pj_per_write);
    }
  }
}

TEST_F(ParallelEquivalenceTest, MatrixCellSeedIndependentOfModeSubset) {
  // A cell's seed depends only on (seed, app_index, mode), so the same cell
  // simulated as part of different mode lists must produce the same result.
  ExperimentScale tiny;
  tiny.endurance_mean = 60;
  tiny.physical_lines = 96;
  tiny.seed = 7;
  const auto full = run_lifetime_matrix({"milc"}, {SystemMode::kBaseline, SystemMode::kCompWF},
                                        tiny);
  const auto wf_only = run_lifetime_matrix({"milc"}, {SystemMode::kCompWF}, tiny);
  EXPECT_EQ(matrix_cell(full, "milc", SystemMode::kCompWF).result.writes_to_failure,
            matrix_cell(wf_only, "milc", SystemMode::kCompWF).result.writes_to_failure);
}

}  // namespace
}  // namespace pcmsim
