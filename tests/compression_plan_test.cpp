// Plan/materialize equivalence: the two-phase pipeline (fused WordClassScan
// probe -> deferred materialization) must be bit-identical to the legacy
// one-shot compressors in every observable — nullopt cases, winning scheme,
// layout/encoding id, image size, image bytes, and tie-breaking (BDI beats
// FPC at equal size; within BDI the earlier layout of the pinned size order
// wins, as locked in by PR 2's exhaustive-scan test).
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "compression/best_of.hpp"
#include "compression/word_scan.hpp"
#include "workload/value_model.hpp"

namespace pcmsim {
namespace {

Block block_of_u64(std::uint64_t base, unsigned delta_bits) {
  Block b{};
  for (std::size_t i = 0; i < kBlockBytes / 8; ++i) {
    const std::uint64_t v = base + (delta_bits ? (i & ((1ull << delta_bits) - 1)) : 0);
    std::memcpy(b.data() + i * 8, &v, 8);
  }
  return b;
}

/// Independent reference: the pre-refactor best-of rule composed from the
/// (unchanged) legacy single-scheme compressors.
std::optional<CompressedBlock> legacy_best(const BestOfCompressor& best, const Block& b) {
  auto a = best.bdi().compress(b);
  auto f = best.fpc().compress(b);
  if (!a) return f;
  if (!f) return a;
  return a->size_bytes() <= f->size_bytes() ? a : f;
}

/// Asserts every phase-1 and phase-2 observable against the legacy reference.
void expect_plan_equivalent(const BestOfCompressor& best, const Block& b, const char* what) {
  const auto ref = legacy_best(best, b);
  const auto plan = best.plan(b);
  ASSERT_EQ(plan.has_value(), ref.has_value()) << what;

  // Scan-level probes vs the legacy per-scheme walks.
  const WordClassScan scan = scan_block(b);
  EXPECT_EQ(BdiCompressor::probe_size(scan), best.bdi().probe_size(b)) << what;
  EXPECT_EQ(FpcCompressor::probe_size(scan), best.fpc().probe_size(b)) << what;
  for (int l = 0; l < 8; ++l) {
    const auto layout = static_cast<BdiLayout>(l);
    EXPECT_EQ((scan.bdi_applies >> l) & 1u, BdiCompressor::layout_applies(b, layout) ? 1u : 0u)
        << what << " layout " << to_string(layout);
  }
  for (std::size_t i = 0; i < kBlockBytes / 4; ++i) {
    std::uint32_t w = 0;
    std::memcpy(&w, b.data() + i * 4, 4);
    EXPECT_EQ(scan.word_class[i], static_cast<std::uint8_t>(FpcCompressor::classify(w)))
        << what << " word " << i;
  }

  if (!ref) return;
  EXPECT_EQ(plan->scheme, ref->scheme) << what;
  EXPECT_EQ(plan->encoding, ref->encoding) << what;
  EXPECT_EQ(plan->size_bytes(), ref->size_bytes()) << what;

  const CompressedBlock image = best.materialize(b, *plan);
  EXPECT_EQ(image.scheme, ref->scheme) << what;
  EXPECT_EQ(image.encoding, ref->encoding) << what;
  EXPECT_EQ(image.bytes, ref->bytes) << what;
  EXPECT_EQ(best.decompress(image), b) << what;

  // compress() is now plan()+materialize(); it must still match the reference.
  const auto combined = best.compress(b);
  ASSERT_TRUE(combined.has_value()) << what;
  EXPECT_EQ(combined->bytes, ref->bytes) << what;
  EXPECT_EQ(combined->encoding, ref->encoding) << what;
}

TEST(CompressionPlan, AdversarialBlocks) {
  BestOfCompressor best;
  expect_plan_equivalent(best, zero_block(), "zeros");
  expect_plan_equivalent(best, block_of_u64(0xDEADBEEFCAFEF00Dull, 0), "rep8");
  expect_plan_equivalent(best, block_of_u64(0x7000'0000'0000'0000ull, 3), "b8d1");
  expect_plan_equivalent(best, block_of_u64(0x1234'5678'0000'0000ull, 0), "rep8-split-halves");

  // Only the late b2d1 BDI layout applies (PR 2's adversarial case).
  Block late{};
  for (std::size_t i = 0; i < 32; ++i) {
    const auto v = static_cast<std::uint16_t>(0x0100 + (i % 3) * 0x30);
    std::memcpy(late.data() + i * 2, &v, 2);
  }
  expect_plan_equivalent(best, late, "late-b2d1");

  // The equal-size b2d1/b4d2 tie (both 38 bytes): the earlier layout must win
  // in the plan exactly as in compress().
  Block tie{};
  for (std::size_t i = 0; i < 32; ++i) {
    const std::uint16_t v = (i % 2 == 1) ? std::uint16_t{0x1234}
                            : (i % 4 == 0) ? static_cast<std::uint16_t>(5 + i / 4)
                                           : static_cast<std::uint16_t>(0x1234 + (i % 8));
    std::memcpy(tie.data() + i * 2, &v, 2);
  }
  {
    ASSERT_TRUE(BdiCompressor::layout_applies(tie, BdiLayout::kB2D1));
    ASSERT_TRUE(BdiCompressor::layout_applies(tie, BdiLayout::kB4D2));
    const auto plan = best.plan(tie);
    ASSERT_TRUE(plan.has_value());
    if (plan->scheme == CompressionScheme::kBdi) {
      EXPECT_EQ(static_cast<BdiLayout>(plan->encoding), BdiLayout::kB2D1);
    }
  }
  expect_plan_equivalent(best, tie, "b2d1-b4d2-tie");

  // FPC zero-run boundaries: runs of exactly 8, 9, and 16 zero words, and a
  // run interrupted mid-block.
  for (const std::size_t zeros : {8u, 9u, 15u, 16u}) {
    Block b{};
    for (std::size_t i = zeros; i < kBlockBytes / 4; ++i) {
      const std::uint32_t v = 0x0102'0304u + static_cast<std::uint32_t>(i) * 0x01010101u;
      std::memcpy(b.data() + i * 4, &v, 4);
    }
    expect_plan_equivalent(best, b, "fpc-zero-run");
  }

  // Alternating halfword patterns (kHighHalfZeroPad / kTwoSignedBytes mix).
  Block halves{};
  for (std::size_t i = 0; i < kBlockBytes / 4; ++i) {
    const std::uint32_t v = (i % 2 == 0) ? 0x7FFF'0000u : 0x0012'FF80u;
    std::memcpy(halves.data() + i * 4, &v, 4);
  }
  expect_plan_equivalent(best, halves, "halfword-mix");

  Rng rng(99);
  Block incompressible{};
  for (auto& byte : incompressible) byte = static_cast<std::uint8_t>(rng());
  expect_plan_equivalent(best, incompressible, "incompressible");
}

TEST(CompressionPlan, RandomizedSweep) {
  BestOfCompressor best;
  Rng rng(0x9E3779B9u);
  for (int iter = 0; iter < 3000; ++iter) {
    Block b{};
    if (iter % 4 == 0) {
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
    } else {
      // Random base with random-width deltas in 2/4/8-byte granularity — the
      // family that exercises every BDI layout and most FPC classes.
      const std::size_t k = std::size_t{1} << (1 + rng.next_below(3));  // 2,4,8
      const std::uint64_t base = rng();
      const unsigned delta_bits = 1 + static_cast<unsigned>(rng.next_below(40));
      for (std::size_t i = 0; i < kBlockBytes / k; ++i) {
        const std::uint64_t v = base + (rng() & ((1ull << delta_bits) - 1));
        std::memcpy(b.data() + i * k, &v, k);
      }
    }
    expect_plan_equivalent(best, b, "random");
  }
}

TEST(CompressionPlan, ValueModelCorpus) {
  BestOfCompressor best;
  const std::pair<ValueClass, std::uint8_t> cases[] = {
      {ValueClass::kZeroPage, 4},    {ValueClass::kSmallInt, 4},
      {ValueClass::kNarrowInt64, 7}, {ValueClass::kNarrowInt32, 3},
      {ValueClass::kPointerHeap, 7}, {ValueClass::kFloatArray, 6},
      {ValueClass::kFpcMixed, 8},    {ValueClass::kRandom, 1},
  };
  for (const auto& [cls, param_hi] : cases) {
    ValueClassSpec spec;
    spec.cls = cls;
    spec.param_lo = 1;
    spec.param_hi = param_hi;
    spec.aux = 2;
    for (std::uint32_t i = 0; i < 200; ++i) {
      const Block b = generate_value(spec, i, 0xC0FFEEu + i / 7, i % 5);
      expect_plan_equivalent(best, b, to_string(cls).data());
    }
  }
}

}  // namespace
}  // namespace pcmsim
