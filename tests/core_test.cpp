// Unit tests for the paper's core mechanisms: per-line metadata packing, the
// Figure-8 write heuristic, and compression-window placement.
#include <gtest/gtest.h>

#include "core/heuristic.hpp"
#include "core/line_meta.hpp"
#include "core/window.hpp"
#include "ecc/ecp.hpp"

namespace pcmsim {
namespace {

TEST(LineMeta, PackUnpackRoundTrips) {
  for (std::uint8_t start : {0, 1, 33, 63}) {
    for (std::uint8_t enc : {0, 5, 31}) {
      for (std::uint8_t sc : {0, 1, 2, 3}) {
        for (bool comp : {false, true}) {
          LineMeta m;
          m.start_byte = start;
          m.encoding = enc;
          m.sc = sc;
          m.compressed = comp;
          const LineMeta back = unpack_meta(pack_meta(m));
          EXPECT_EQ(back.start_byte, start);
          EXPECT_EQ(back.encoding, enc);
          EXPECT_EQ(back.sc, sc);
          EXPECT_EQ(back.compressed, comp);
        }
      }
    }
  }
}

TEST(LineMeta, PackRejectsOutOfRangeFields) {
  LineMeta m;
  m.start_byte = 64;
  EXPECT_THROW(pack_meta(m), ContractViolation);
  m.start_byte = 0;
  m.encoding = 32;
  EXPECT_THROW(pack_meta(m), ContractViolation);
  m.encoding = 0;
  m.sc = 4;
  EXPECT_THROW(pack_meta(m), ContractViolation);
}

// ---------------------------------------------------------------------------
TEST(Heuristic, SmallDataAlwaysCompresses) {
  HeuristicConfig cfg;
  const auto d = decide_write(cfg, /*comp=*/8, /*old=*/64, /*sc=*/3);
  EXPECT_TRUE(d.store_compressed);  // below Threshold1 even with saturated SC
}

TEST(Heuristic, SaturatedCounterGoesUncompressed) {
  HeuristicConfig cfg;
  const auto d = decide_write(cfg, /*comp=*/40, /*old=*/20, /*sc=*/3);
  EXPECT_FALSE(d.store_compressed);
}

TEST(Heuristic, StableSizesDecrementCounter) {
  HeuristicConfig cfg;
  const auto d = decide_write(cfg, /*comp=*/40, /*old=*/42, /*sc=*/2);
  EXPECT_TRUE(d.store_compressed);
  EXPECT_EQ(d.new_sc, 1);
}

TEST(Heuristic, VolatileSizesIncrementCounter) {
  HeuristicConfig cfg;
  const auto d = decide_write(cfg, /*comp=*/40, /*old=*/20, /*sc=*/1);
  EXPECT_TRUE(d.store_compressed);
  EXPECT_EQ(d.new_sc, 2);
}

TEST(Heuristic, CounterSaturatesAtBothEnds) {
  HeuristicConfig cfg;
  EXPECT_EQ(decide_write(cfg, 40, 40, 0).new_sc, 0);
  EXPECT_EQ(decide_write(cfg, 60, 20, 3).new_sc, 3);
}

TEST(Heuristic, VolatileLineConvergesToUncompressed) {
  HeuristicConfig cfg;
  std::uint8_t sc = 0;
  std::uint8_t old_size = 20;
  bool went_uncompressed = false;
  for (int i = 0; i < 8; ++i) {
    const std::uint8_t comp = (i % 2) ? 20 : 50;  // churn
    const auto d = decide_write(cfg, comp, old_size, sc);
    sc = d.new_sc;
    old_size = comp;
    if (!d.store_compressed) went_uncompressed = true;
  }
  EXPECT_TRUE(went_uncompressed);
}

TEST(Heuristic, RecoveryAfterSizesSettle) {
  HeuristicConfig cfg;  // update_always = true
  std::uint8_t sc = 3;
  for (int i = 0; i < 3; ++i) {
    const auto d = decide_write(cfg, 40, 40, sc);
    sc = d.new_sc;
  }
  const auto d = decide_write(cfg, 40, 40, sc);
  EXPECT_TRUE(d.store_compressed) << "stable sizes must drain the counter";
}

TEST(Heuristic, UpperCapExtensionDivertsHugeImages) {
  HeuristicConfig cfg;
  cfg.threshold3_bytes = 52;
  EXPECT_FALSE(decide_write(cfg, /*comp=*/53, /*old=*/53, /*sc=*/0).store_compressed);
  EXPECT_TRUE(decide_write(cfg, /*comp=*/51, /*old=*/51, /*sc=*/0).store_compressed);
  cfg.threshold3_bytes = 0;  // off by default: paper-faithful behaviour
  EXPECT_TRUE(decide_write(cfg, 60, 60, 0).store_compressed);
}

TEST(Heuristic, DisabledAlwaysCompresses) {
  HeuristicConfig cfg;
  cfg.enabled = false;
  const auto d = decide_write(cfg, 63, 10, 3);
  EXPECT_TRUE(d.store_compressed);
  EXPECT_EQ(d.new_sc, 3) << "disabled heuristic must not touch SC";
}

// ---------------------------------------------------------------------------
TEST(WindowSegments, NonWrappingWindowIsOneSegment) {
  const auto segs = window_segments(10, 20);
  ASSERT_EQ(segs.count, 1u);
  EXPECT_EQ(segs.seg[0].bit_off, 80u);
  EXPECT_EQ(segs.seg[0].nbits, 160u);
}

TEST(WindowSegments, WrappingWindowSplitsAtLineEnd) {
  const auto segs = window_segments(60, 10);
  ASSERT_EQ(segs.count, 2u);
  EXPECT_EQ(segs.seg[0].bit_off, 480u);
  EXPECT_EQ(segs.seg[0].nbits, 32u);
  EXPECT_EQ(segs.seg[1].bit_off, 0u);
  EXPECT_EQ(segs.seg[1].nbits, 48u);
}

TEST(WindowSegments, FullLineWindow) {
  const auto segs = window_segments(0, 64);
  ASSERT_EQ(segs.count, 1u);
  EXPECT_EQ(segs.seg[0].nbits, kBlockBits);
}

class WindowPlacerTest : public ::testing::Test {
 protected:
  WindowPlacerTest() : array_(make_config()), placer_(scheme_) {}

  static PcmDeviceConfig make_config() {
    PcmDeviceConfig cfg;
    cfg.lines = 2;
    cfg.endurance_mean = 1000;
    cfg.endurance_cov = 0;
    return cfg;
  }

  void poison_range(std::size_t from_bit, std::size_t to_bit) {
    for (std::size_t b = from_bit; b < to_bit; ++b) array_.inject_fault(0, b, false);
  }

  EcpScheme scheme_{6};
  PcmArray array_;
  WindowPlacer placer_;
};

TEST_F(WindowPlacerTest, CleanLineFitsAnywhere) {
  for (std::uint8_t start : {0, 17, 63}) {
    EXPECT_TRUE(placer_.fits(array_, 0, start, 16));
  }
}

TEST_F(WindowPlacerTest, WindowFaultsAreWindowRelative) {
  array_.inject_fault(0, 85, true);  // byte 10, bit 5
  const auto faults = window_faults(array_, 0, 10, 8);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].pos, 5u);
  EXPECT_TRUE(faults[0].stuck_value);
}

TEST_F(WindowPlacerTest, WrappingWindowCollectsBothSegments) {
  array_.inject_fault(0, 500, false);  // inside first segment of a 60+10 window
  array_.inject_fault(0, 3, true);     // inside wrapped segment
  const auto faults = window_faults(array_, 0, 60, 10);
  ASSERT_EQ(faults.size(), 2u);
  EXPECT_EQ(faults[0].pos, 20u);   // 500 - 480
  EXPECT_EQ(faults[1].pos, 35u);   // 32 + 3
}

TEST_F(WindowPlacerTest, SlideUpFindsCleanRegionAboveFaults) {
  poison_range(0, 64);  // first 8 bytes fully worn
  const auto found = placer_.find(array_, 0, 16, /*preferred=*/0, SlidePolicy::kSlideUp);
  ASSERT_TRUE(found.has_value());
  EXPECT_GE(*found, 8);
  EXPECT_TRUE(placer_.fits(array_, 0, *found, 16));
}

TEST_F(WindowPlacerTest, SlideUpNeverWraps) {
  poison_range(128, 512);  // only bytes 0..15 healthy
  EXPECT_FALSE(placer_.find(array_, 0, 16, /*preferred=*/20, SlidePolicy::kSlideUp).has_value());
  // kAnywhere finds the healthy low region by wrapping the search.
  const auto found = placer_.find(array_, 0, 16, 20, SlidePolicy::kAnywhere);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 0);
}

TEST_F(WindowPlacerTest, StayPolicyOnlyChecksPreferred) {
  poison_range(0, 64);
  EXPECT_FALSE(placer_.find(array_, 0, 16, 0, SlidePolicy::kStay).has_value());
  EXPECT_TRUE(placer_.find(array_, 0, 16, 8, SlidePolicy::kStay).has_value());
}

TEST_F(WindowPlacerTest, FitsToleratesUpToSchemeCapability) {
  for (std::size_t b = 0; b < 6; ++b) array_.inject_fault(0, b * 13, false);
  EXPECT_TRUE(placer_.fits(array_, 0, 0, 16));
  array_.inject_fault(0, 6 * 13, false);  // 7th fault in the window
  EXPECT_FALSE(placer_.fits(array_, 0, 0, 16));
}

TEST_F(WindowPlacerTest, DodgingFaultsBeatsNominalCapability) {
  // 30 faults clustered in bytes 0..9: far beyond ECP-6, yet a 16-byte
  // window placed above the cluster still works — the paper's key effect.
  for (std::size_t b = 0; b < 30; ++b) array_.inject_fault(0, b * 2, false);
  EXPECT_FALSE(placer_.fits(array_, 0, 0, 16));
  const auto found = placer_.find(array_, 0, 16, 0, SlidePolicy::kAnywhere);
  ASSERT_TRUE(found.has_value());
}

}  // namespace
}  // namespace pcmsim
