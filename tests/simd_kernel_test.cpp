// Differential tests for the portable SIMD layer (common/simd.hpp): every
// compiled backend must be bit-identical to the scalar reference on the
// endurance decrement, watermark min-reduce, fused block scan, and masked
// block merge kernels — over randomized inputs, adversarial lane patterns
// (sign boundaries, bit 63/64 straddles, sub-word masks), and the value-model
// corpus. The scan kernel is additionally checked against the compression
// oracles (FpcCompressor::classify / probe_size, BdiCompressor::layout_applies)
// so the scalar reference itself cannot drift from the domain definitions.
#include "common/simd.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "compression/bdi.hpp"
#include "compression/fpc.hpp"
#include "compression/word_scan.hpp"
#include "trace/trace_source.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {
namespace {

using simd::BlockScan;
using simd::KernelTable;

std::vector<const KernelTable*> backends() {
  const auto span = simd::compiled_backends();
  return {span.begin(), span.end()};
}

/// Adversarial 32-bit lane values: every FPC class boundary, sign-overflow
/// drivers for the base/delta subtraction, and bit-pattern edge cases.
const std::uint32_t kEdgeWords[] = {
    0x00000000u, 0x00000001u, 0x00000007u, 0x00000008u, 0xFFFFFFF8u, 0xFFFFFFF7u, 0x0000007Fu,
    0x00000080u, 0xFFFFFF80u, 0xFFFFFF7Fu, 0x00007FFFu, 0x00008000u, 0xFFFF8000u, 0xFFFF7FFFu,
    0x00010000u, 0xABCD0000u, 0x007F007Fu, 0x0080007Fu, 0x00800080u, 0xFF80FF80u, 0x7F7F7F7Fu,
    0xABABABABu, 0x80000000u, 0x7FFFFFFFu, 0xFFFFFFFFu, 0xDEADBEEFu, 0x00FF00FFu, 0x01020304u,
    // Two-signed-bytes carry traps: the low half's +0x80 carries out while
    // the high half sits exactly on the accept/reject boundary, so any
    // u32-wide range check misclassifies these (regression: astar lifetime
    // diverged between backends on 0xFF7FFFA5-shaped words).
    0xFF7FFFA5u, 0x007FFF80u, 0xFF7FFF80u, 0x0080FFFFu,
};

Block block_from_words(const std::uint64_t* w) {
  Block b;
  std::memcpy(b.data(), w, kBlockBytes);
  return b;
}

/// Checks one backend's scan against the scalar reference AND the domain
/// oracles on a single block.
void check_scan(const KernelTable& kt, const std::uint64_t* w) {
  BlockScan got;
  kt.scan_words(w, got);

  BlockScan ref;
  simd::scalar::scan_words(w, ref);
  ASSERT_EQ(got.word_class, ref.word_class) << kt.name;
  EXPECT_EQ(got.zero_mask, ref.zero_mask) << kt.name;
  EXPECT_EQ(got.fpc_bits, ref.fpc_bits) << kt.name;
  EXPECT_EQ(got.geom_ok, ref.geom_ok) << kt.name;
  EXPECT_EQ(got.all_zero, ref.all_zero) << kt.name;
  EXPECT_EQ(got.rep8, ref.rep8) << kt.name;

  // Domain oracles: per-word FPC classes and per-layout BDI applicability.
  const Block block = block_from_words(w);
  for (std::size_t i = 0; i < 16; ++i) {
    std::uint32_t word;
    std::memcpy(&word, block.data() + 4 * i, 4);
    EXPECT_EQ(got.word_class[i], static_cast<std::uint8_t>(FpcCompressor::classify(word)))
        << kt.name << " word " << i;
  }
  const struct {
    unsigned geom;
    BdiLayout layout;
  } kGeomMap[] = {
      {simd::kGeomB8D1, BdiLayout::kB8D1}, {simd::kGeomB8D2, BdiLayout::kB8D2},
      {simd::kGeomB8D4, BdiLayout::kB8D4}, {simd::kGeomB4D1, BdiLayout::kB4D1},
      {simd::kGeomB4D2, BdiLayout::kB4D2}, {simd::kGeomB2D1, BdiLayout::kB2D1},
  };
  for (const auto& m : kGeomMap) {
    EXPECT_EQ((got.geom_ok >> m.geom) & 1u,
              BdiCompressor::layout_applies(block, m.layout) ? 1u : 0u)
        << kt.name << " layout " << to_string(m.layout);
  }
  EXPECT_EQ(got.all_zero, BdiCompressor::layout_applies(block, BdiLayout::kZeros)) << kt.name;
  EXPECT_EQ(got.rep8, BdiCompressor::layout_applies(block, BdiLayout::kRep8)) << kt.name;

  // End-to-end: scan_block (through the active backend) must agree with the
  // legacy FPC probe on the folded bit total.
  const WordClassScan s = scan_block(block);
  EXPECT_EQ(s.fpc_bits, got.fpc_bits);
  const auto fpc_probe = FpcCompressor{}.probe_size(block);
  const auto scan_probe = FpcCompressor::probe_size(s);
  EXPECT_EQ(fpc_probe, scan_probe);
}

TEST(SimdKernel, BackendsCompiled) {
  const auto all = backends();
  ASSERT_GE(all.size(), 2u);
  EXPECT_STREQ(all[0]->name, "scalar");
  EXPECT_STREQ(all[1]->name, "fallback");
  // The active backend must be one of the compiled set (sanity for the
  // CMake option wiring).
  bool active_listed = false;
  for (const auto* kt : all) active_listed |= std::strcmp(kt->name, simd::backend_name()) == 0;
  EXPECT_TRUE(active_listed) << simd::backend_name();
}

TEST(SimdKernel, EnduranceDecrementRandomMasks) {
  Rng rng(0xDECAFu);
  for (const auto* kt : backends()) {
    for (int iter = 0; iter < 2000; ++iter) {
      // +64 tail lanes per the kernel contract (masked store slack).
      std::vector<std::uint16_t> got(128, 0);
      for (auto& v : got) v = static_cast<std::uint16_t>(rng.next_below(0xFFFE) + 1);
      std::vector<std::uint16_t> want = got;
      std::uint64_t mask = rng();
      switch (iter % 5) {
        case 0: break;
        case 1: mask &= 0xFFull; break;                  // sub-word chunk
        case 2: mask = 1ull << rng.next_below(64); break;  // single lane
        case 3: mask = ~0ull; break;                     // every lane
        case 4: mask = 0x8000000000000001ull; break;     // lanes 0 and 63
      }
      const std::size_t off = rng.next_below(64);  // arbitrary lane alignment
      simd::scalar::endurance_decrement64(want.data() + off, mask);
      kt->endurance_decrement64(got.data() + off, mask);
      ASSERT_EQ(got, want) << kt->name << " iter " << iter;
    }
  }
}

TEST(SimdKernel, EnduranceDecrementZeroMaskTouchesNothing) {
  for (const auto* kt : backends()) {
    std::vector<std::uint16_t> lanes(128, 7);
    kt->endurance_decrement64(lanes.data(), 0);
    for (const auto v : lanes) ASSERT_EQ(v, 7) << kt->name;
  }
}

TEST(SimdKernel, MaskedMinRandom) {
  Rng rng(0x317Bu);
  for (const auto* kt : backends()) {
    for (int iter = 0; iter < 2000; ++iter) {
      const std::size_t words = 1 + rng.next_below(8);
      std::vector<std::uint16_t> lanes(words * 64);
      for (auto& v : lanes) v = static_cast<std::uint16_t>(rng.next_below(0x10000));
      std::vector<std::uint64_t> skip(words);
      for (auto& s : skip) {
        switch (iter % 4) {
          case 0: s = rng(); break;
          case 1: s = 0; break;
          case 2: s = ~0ull; break;          // fully skipped word
          case 3: s = rng() | rng(); break;  // dense skip
        }
      }
      const std::uint16_t want = simd::scalar::masked_min_u16(lanes.data(), skip.data(), words);
      const std::uint16_t got = kt->masked_min_u16(lanes.data(), skip.data(), words);
      ASSERT_EQ(got, want) << kt->name << " iter " << iter;
    }
  }
}

TEST(SimdKernel, MaskedMinBoundaryLanes) {
  for (const auto* kt : backends()) {
    std::vector<std::uint16_t> lanes(512, 0xFFFF);
    std::vector<std::uint64_t> skip(8, 0);
    // Minimum in the very first and very last lane; 0xFFFF live lanes must
    // not be confused with the all-skipped sentinel.
    lanes[0] = 3;
    EXPECT_EQ(kt->masked_min_u16(lanes.data(), skip.data(), 8), 3) << kt->name;
    lanes[0] = 0xFFFF;
    lanes[511] = 5;
    EXPECT_EQ(kt->masked_min_u16(lanes.data(), skip.data(), 8), 5) << kt->name;
    skip[7] = 1ull << 63;  // skip exactly the minimum lane
    EXPECT_EQ(kt->masked_min_u16(lanes.data(), skip.data(), 8), 0xFFFF) << kt->name;
    std::fill(skip.begin(), skip.end(), ~0ull);  // everything skipped
    EXPECT_EQ(kt->masked_min_u16(lanes.data(), skip.data(), 8), 0xFFFF) << kt->name;
  }
}

TEST(SimdKernel, ScanAdversarialLanePatterns) {
  // Every edge word replicated, paired, and placed in every lane position —
  // exercises base selection (first oversized word), overflow in the delta
  // subtraction, and class priority on boundary values.
  Rng rng(0x5CABu);
  for (const auto* kt : backends()) {
    for (const std::uint32_t a : kEdgeWords) {
      for (const std::uint32_t b : kEdgeWords) {
        std::uint64_t w[8];
        for (std::size_t i = 0; i < 8; ++i) {
          w[i] = (static_cast<std::uint64_t>(b) << 32) | a;
        }
        // Scatter one odd word to vary the base position.
        w[rng.next_below(8)] = (static_cast<std::uint64_t>(a) << 32) | b;
        check_scan(*kt, w);
      }
    }
  }
}

TEST(SimdKernel, ScanRandomized) {
  Rng rng(0xF00Du);
  for (const auto* kt : backends()) {
    for (int iter = 0; iter < 3000; ++iter) {
      std::uint64_t w[8];
      for (auto& v : w) {
        switch (iter % 4) {
          case 0: v = rng(); break;
          case 1: v = rng() & 0x00FF00FF00FF00FFull; break;  // compressible-ish
          case 2: v = kEdgeWords[rng.next_below(std::size(kEdgeWords))] *
                      0x100000001ull; break;
          case 3: v = rng.next_bool(0.5) ? 0 : rng(); break;  // zero runs
        }
      }
      check_scan(*kt, w);
    }
  }
}

TEST(SimdKernel, ScanValueModelCorpus) {
  // Realistic blocks from the calibrated value model (Table III app mix).
  for (const char* app : {"gcc", "milc", "lbm", "mcf"}) {
    GeneratorTraceSource gen(profile_by_name(app), 512, 0xC0DE);
    std::vector<WritebackEvent> events(512);
    ASSERT_EQ(gen.next_batch(events), events.size());
    for (const auto* kt : backends()) {
      for (const auto& ev : events) {
        std::uint64_t w[8];
        std::memcpy(w, ev.data.data(), kBlockBytes);
        check_scan(*kt, w);
      }
    }
  }
}

TEST(SimdKernel, MergeBlockRandomMasks) {
  Rng rng(0xB1E4Du);
  for (const auto* kt : backends()) {
    for (int iter = 0; iter < 2000; ++iter) {
      Block dst;
      Block src;
      for (auto& v : dst) v = static_cast<std::uint8_t>(rng.next_below(256));
      for (auto& v : src) v = static_cast<std::uint8_t>(rng.next_below(256));
      std::uint16_t mask;
      switch (iter % 4) {
        case 0: mask = static_cast<std::uint16_t>(rng.next_below(0x10000)); break;
        case 1: mask = 0; break;
        case 2: mask = 0xFFFF; break;
        case 3: mask = static_cast<std::uint16_t>(1u << rng.next_below(16)); break;
      }
      Block want = dst;
      simd::scalar::merge_block_u32(want.data(), src.data(), mask);
      Block got = dst;
      kt->merge_block_u32(got.data(), src.data(), mask);
      ASSERT_EQ(got, want) << kt->name << " mask " << mask;
    }
  }
}

}  // namespace
}  // namespace pcmsim
