// Trace file layer: v2 chunked container round-trips, corruption/truncation
// rejection, v1 hardening, and looped-replay re-versioning.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "trace/file_source.hpp"
#include "trace/trace_file.hpp"
#include "workload/trace.hpp"

namespace pcmsim {
namespace {

class TraceFileTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto p = std::filesystem::temp_directory_path() / ("pcmsim_test_" + name);
    paths_.push_back(p.string());
    return p.string();
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

/// Mixed corpus: compressible patterns (zeros, narrow ints) and random
/// (incompressible) blocks, with line addresses that exercise both small and
/// large deltas in both directions.
std::vector<WritebackEvent> make_events(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WritebackEvent> events(n);
  for (std::size_t i = 0; i < n; ++i) {
    WritebackEvent& ev = events[i];
    ev.line = (i % 3 == 0) ? i : rng.next_below(std::uint64_t{1} << 40);
    switch (i % 4) {
      case 0: ev.data = zero_block(); break;
      case 1: {  // narrow values: BDI/FPC-friendly
        for (std::size_t w = 0; w < kBlockBytes / 8; ++w) {
          const std::uint64_t v = rng.next_below(256);
          std::memcpy(ev.data.data() + w * 8, &v, 8);
        }
        break;
      }
      default:  // random: incompressible, forces the raw-value fallback
        for (auto& b : ev.data) b = static_cast<std::uint8_t>(rng());
        break;
    }
  }
  return events;
}

void write_v2(const std::string& path, const std::vector<WritebackEvent>& events,
              std::uint32_t chunk_records) {
  TraceFileWriter writer(path, chunk_records);
  for (const auto& ev : events) writer.append(ev);
  writer.close();
}

std::vector<WritebackEvent> read_v2(const std::string& path) {
  TraceFileReader reader(path);
  std::vector<WritebackEvent> out;
  WritebackEvent ev;
  while (reader.next(ev)) out.push_back(ev);
  return out;
}

void expect_same(const std::vector<WritebackEvent>& a, const std::vector<WritebackEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].line, b[i].line) << "record " << i;
    EXPECT_EQ(a[i].data, b[i].data) << "record " << i;
  }
}

TEST_F(TraceFileTest, EmptyRoundTrip) {
  const auto path = temp_path("v2_empty.trace");
  write_v2(path, {}, 64);
  TraceFileReader reader(path);
  EXPECT_EQ(reader.total_records(), 0u);
  EXPECT_EQ(reader.chunk_count(), 0u);
  WritebackEvent ev;
  EXPECT_FALSE(reader.next(ev));
}

TEST_F(TraceFileTest, SingleEventRoundTrip) {
  const auto path = temp_path("v2_one.trace");
  const auto events = make_events(1, 7);
  write_v2(path, events, 64);
  expect_same(events, read_v2(path));
}

TEST_F(TraceFileTest, MultiChunkRoundTrip) {
  const auto path = temp_path("v2_multi.trace");
  const auto events = make_events(1000, 11);  // 1000 records, 128/chunk -> 8 chunks
  write_v2(path, events, 128);
  TraceFileReader reader(path);
  EXPECT_EQ(reader.total_records(), 1000u);
  EXPECT_EQ(reader.chunk_count(), 8u);
  expect_same(events, read_v2(path));
}

TEST_F(TraceFileTest, IncompressibleValuesRoundTripRaw) {
  const auto path = temp_path("v2_raw.trace");
  Rng rng(99);
  std::vector<WritebackEvent> events(50);
  for (auto& ev : events) {
    ev.line = rng.next_below(1 << 20);
    for (auto& b : ev.data) b = static_cast<std::uint8_t>(rng());
  }
  write_v2(path, events, 16);
  expect_same(events, read_v2(path));
}

TEST_F(TraceFileTest, ChunksDecodeIndependently) {
  const auto path = temp_path("v2_chunks.trace");
  const auto events = make_events(300, 3);
  write_v2(path, events, 100);
  TraceFileReader reader(path);
  ASSERT_EQ(reader.chunk_count(), 3u);
  // Read out of order: each chunk must decode without the preceding ones.
  for (const std::size_t idx : {2u, 0u, 1u}) {
    const auto chunk = reader.read_chunk(idx);
    ASSERT_EQ(chunk.size(), 100u);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      EXPECT_EQ(chunk[i].line, events[idx * 100 + i].line);
      EXPECT_EQ(chunk[i].data, events[idx * 100 + i].data);
    }
  }
}

TEST_F(TraceFileTest, ReaderResetReplaysIdentically) {
  const auto path = temp_path("v2_reset.trace");
  const auto events = make_events(200, 5);
  write_v2(path, events, 64);
  TraceFileReader reader(path);
  WritebackEvent ev;
  std::size_t first_pass = 0;
  while (reader.next(ev)) ++first_pass;
  EXPECT_EQ(first_pass, events.size());
  reader.reset();
  std::vector<WritebackEvent> second;
  while (reader.next(ev)) second.push_back(ev);
  expect_same(events, second);
}

TEST_F(TraceFileTest, CorruptChunkPayloadIsRejected) {
  const auto path = temp_path("v2_corrupt.trace");
  const auto events = make_events(200, 13);
  write_v2(path, events, 64);
  TraceFileReader clean(path);
  const auto dir = clean.directory();
  ASSERT_FALSE(dir.empty());
  {  // flip one payload byte in the middle of the first chunk
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(dir[0].offset + 12 + dir[0].payload_bytes / 2));
    const int byte = f.get();
    f.seekp(static_cast<std::streamoff>(dir[0].offset + 12 + dir[0].payload_bytes / 2));
    f.put(static_cast<char>(byte ^ 0x40));
  }
  TraceFileReader reader(path);  // directory is intact, open succeeds
  WritebackEvent ev;
  EXPECT_THROW((void)reader.next(ev), ContractViolation);
}

TEST_F(TraceFileTest, TruncatedFileIsRejectedAtOpen) {
  const auto path = temp_path("v2_trunc.trace");
  const auto events = make_events(500, 17);
  write_v2(path, events, 64);
  const auto full = std::filesystem::file_size(path);
  for (const double frac : {0.95, 0.5, 0.1}) {
    std::filesystem::resize_file(path, static_cast<std::uintmax_t>(full * frac));
    EXPECT_THROW(TraceFileReader reader(path), ContractViolation) << "frac " << frac;
  }
  std::filesystem::resize_file(path, 0);
  EXPECT_THROW(TraceFileReader reader(path), ContractViolation);
}

TEST_F(TraceFileTest, CorruptFooterOrDirectoryIsRejected) {
  const auto path = temp_path("v2_footer.trace");
  write_v2(path, make_events(100, 19), 32);
  const auto size = std::filesystem::file_size(path);
  {  // corrupt a directory byte (footer stays valid -> CRC must catch it)
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(size - 32 - 8));
    const int byte = f.get();
    f.seekp(static_cast<std::streamoff>(size - 32 - 8));
    f.put(static_cast<char>(byte ^ 0x5A));
  }
  EXPECT_THROW(TraceFileReader reader(path), ContractViolation);
}

TEST_F(TraceFileTest, WrongMagicIsRejected) {
  const auto path = temp_path("v2_magic.trace");
  std::ofstream f(path, std::ios::binary);
  for (int i = 0; i < 64; ++i) f.put(static_cast<char>(i));
  f.close();
  EXPECT_THROW(TraceFileReader reader(path), ContractViolation);
  EXPECT_THROW(FileTraceSource source(path), ContractViolation);
}

// --- v1 hardening (workload/trace.{hpp,cpp}) -------------------------------

TEST_F(TraceFileTest, V1TruncationIsRejectedAtOpen) {
  const auto path = temp_path("v1_trunc.trace");
  {
    TraceWriter writer(path);
    for (const auto& ev : make_events(20, 23)) writer.append(ev);
    writer.close();
  }
  EXPECT_NO_THROW(TraceReader reader(path));
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full - 1);  // drop one payload byte
  EXPECT_THROW(TraceReader reader(path), ContractViolation);
  std::filesystem::resize_file(path, 8);  // shorter than the header
  EXPECT_THROW(TraceReader reader(path), ContractViolation);
}

TEST_F(TraceFileTest, V1WrongMagicIsRejected) {
  const auto path = temp_path("v1_magic.trace");
  std::ofstream f(path, std::ios::binary);
  const std::uint64_t bogus = 0x1122334455667788ull;
  f.write(reinterpret_cast<const char*>(&bogus), 8);
  f.write(reinterpret_cast<const char*>(&bogus), 8);
  f.close();
  EXPECT_THROW(TraceReader reader(path), ContractViolation);
}

TEST_F(TraceFileTest, WriterFailsLoudlyOnIoError) {
  // /dev/full accepts the open but fails writes once the stream buffer
  // flushes; both writers must surface that instead of silently truncating.
  if (!std::filesystem::exists("/dev/full")) GTEST_SKIP() << "no /dev/full";
  const auto events = make_events(2000, 29);
  EXPECT_THROW(
      {
        TraceWriter writer("/dev/full");
        for (const auto& ev : events) writer.append(ev);
        writer.close();
      },
      ContractViolation);
  EXPECT_THROW(
      {
        TraceFileWriter writer("/dev/full", 64);
        for (const auto& ev : events) writer.append(ev);
        writer.close();
      },
      ContractViolation);
}

// --- FileTraceSource / LoopedFileTraceSource -------------------------------

TEST_F(TraceFileTest, FileSourceReadsBothVersions) {
  const auto events = make_events(150, 31);
  const auto v1 = temp_path("src_v1.trace");
  const auto v2 = temp_path("src_v2.trace");
  {
    TraceWriter writer(v1);
    for (const auto& ev : events) writer.append(ev);
    writer.close();
  }
  write_v2(v2, events, 64);
  for (const auto& path : {v1, v2}) {
    FileTraceSource source(path);
    EXPECT_EQ(source.total_records(), events.size());
    std::vector<WritebackEvent> got(events.size() + 10);
    const std::size_t n = source.next_batch(got);
    EXPECT_EQ(n, events.size());  // underfills at end of trace
    got.resize(n);
    expect_same(events, got);
    EXPECT_EQ(source.next_batch(got), 0u);  // exhausted
    source.reset();
    got.resize(events.size() + 10);
    EXPECT_EQ(source.next_batch(got), events.size());
  }
}

TEST_F(TraceFileTest, LoopedReplayReversionsValues) {
  const auto path = temp_path("loop.trace");
  const auto events = make_events(64, 37);
  write_v2(path, events, 32);

  LoopedFileTraceSource source(path);
  std::vector<WritebackEvent> pass0(events.size());
  std::vector<WritebackEvent> pass1(events.size());
  std::vector<WritebackEvent> pass2(events.size());
  ASSERT_EQ(source.next_batch(pass0), events.size());
  ASSERT_EQ(source.next_batch(pass1), events.size());
  ASSERT_EQ(source.next_batch(pass2), events.size());
  expect_same(events, pass0);  // pass 0 replays the capture verbatim

  std::size_t changed1 = 0;
  std::size_t changed2 = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(pass1[i].line, events[i].line);  // addresses never change
    if (!(pass1[i].data == events[i].data)) ++changed1;
    if (!(pass2[i].data == pass1[i].data)) ++changed2;
    if (events[i].data == zero_block()) {
      // All-zero blocks replay unchanged by design (no nonzero word to flip).
      EXPECT_EQ(pass1[i].data, events[i].data);
    } else {
      // Zero structure is preserved: a zero word stays zero, a nonzero word
      // stays nonzero (compressibility class is retained).
      for (std::size_t w = 0; w < kBlockBytes / 4; ++w) {
        std::uint32_t before = 0;
        std::uint32_t after = 0;
        std::memcpy(&before, events[i].data.data() + w * 4, 4);
        std::memcpy(&after, pass1[i].data.data() + w * 4, 4);
        EXPECT_EQ(before == 0, after == 0) << "event " << i << " word " << w;
      }
    }
  }
  // Non-degeneracy: most nonzero blocks must actually change each pass, so
  // differential writes keep flipping cells instead of storing identical data.
  EXPECT_GT(changed1, events.size() / 2);
  EXPECT_GT(changed2, events.size() / 2);

  // Determinism: a reset source re-produces the identical pass sequence.
  source.reset();
  std::vector<WritebackEvent> again0(events.size());
  std::vector<WritebackEvent> again1(events.size());
  ASSERT_EQ(source.next_batch(again0), events.size());
  ASSERT_EQ(source.next_batch(again1), events.size());
  expect_same(pass0, again0);
  expect_same(pass1, again1);
}

TEST_F(TraceFileTest, LoopedReplayRejectsEmptyTrace) {
  const auto path = temp_path("loop_empty.trace");
  write_v2(path, {}, 32);
  EXPECT_THROW(LoopedFileTraceSource source(path), ContractViolation);
}

// --- Parallel v2 chunk decode ----------------------------------------------

/// Drains a source with a batch size chosen to straddle chunk boundaries.
std::vector<WritebackEvent> drain(TraceSource& source, std::size_t batch_size) {
  std::vector<WritebackEvent> got;
  std::vector<WritebackEvent> batch(batch_size);
  for (;;) {
    const std::size_t n = source.next_batch(std::span(batch.data(), batch.size()));
    if (n == 0) break;
    got.insert(got.end(), batch.begin(),
               batch.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return got;
}

TEST_F(TraceFileTest, ParallelDecodeMatchesSerialAtManyThreadCounts) {
  const auto path = temp_path("par_decode.trace");
  const auto events = make_events(1000, 41);
  write_v2(path, events, 64);  // 16 chunks: more chunks than any window
  const std::size_t saved = parallel_threads();
  for (const std::size_t threads : {1u, 2u, 7u}) {
    set_parallel_threads(threads);
    FileTraceSource source(path, TraceDecode::kParallel);
    EXPECT_EQ(source.decode_mode(), TraceDecode::kParallel);
    EXPECT_EQ(source.total_records(), events.size());
    // 97 never divides the 64-record chunks, so every batch straddles
    // chunk (and window) boundaries somewhere in the stream.
    expect_same(events, drain(source, 97));
    EXPECT_EQ(source.events(), events.size());
    // reset() replays the identical stream, including the window state.
    source.reset();
    expect_same(events, drain(source, 33));
  }
  set_parallel_threads(saved);
}

TEST_F(TraceFileTest, ParallelDecodeOnV1FallsBackToSerial) {
  const auto path = temp_path("par_v1.trace");
  const auto events = make_events(50, 43);
  {
    TraceWriter writer(path);
    for (const auto& ev : events) writer.append(ev);
    writer.close();
  }
  FileTraceSource source(path, TraceDecode::kParallel);
  EXPECT_EQ(source.decode_mode(), TraceDecode::kSerial);  // v1 has no chunks
  expect_same(events, drain(source, 16));
}

TEST_F(TraceFileTest, LoopedParallelReplayMatchesLoopedSerial) {
  const auto path = temp_path("par_loop.trace");
  write_v2(path, make_events(256, 47), 32);
  LoopedFileTraceSource serial(path, TraceDecode::kSerial);
  const std::size_t saved = parallel_threads();
  set_parallel_threads(7);
  LoopedFileTraceSource parallel(path, TraceDecode::kParallel);
  // Three full passes plus a partial one: the re-versioning depends only on
  // (line, pass), so parallel decode must stay byte-identical across loops.
  std::vector<WritebackEvent> a(900);
  std::vector<WritebackEvent> b(900);
  ASSERT_EQ(serial.next_batch(a), a.size());
  ASSERT_EQ(parallel.next_batch(b), b.size());
  expect_same(a, b);
  set_parallel_threads(saved);
}

TEST_F(TraceFileTest, ConcurrentReadChunkFromManyThreads) {
  // The documented parallel pattern: one shared immutable TraceFileIndex,
  // one TraceChunkDecoder per thread, chunks claimed in any order.
  const auto path = temp_path("par_chunks.trace");
  const auto events = make_events(960, 53);
  write_v2(path, events, 60);  // 16 chunks
  TraceFileReader reader(path);
  const auto index = reader.index();
  ASSERT_EQ(index->chunk_count(), 16u);

  constexpr std::size_t kThreads = 7;
  std::vector<std::vector<WritebackEvent>> per_chunk(index->chunk_count());
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      TraceChunkDecoder decoder(index);
      for (;;) {
        const std::size_t c = next.fetch_add(1);
        if (c >= index->chunk_count()) return;
        decoder.decode(c, per_chunk[c]);
      }
    });
  }
  for (auto& th : pool) th.join();

  std::vector<WritebackEvent> got;
  for (const auto& chunk : per_chunk) {
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  expect_same(events, got);
}

TEST_F(TraceFileTest, CorruptChunkCrcFailsLoudlyUnderParallelDecode) {
  const auto path = temp_path("par_corrupt.trace");
  const auto events = make_events(640, 59);
  write_v2(path, events, 64);  // 10 chunks
  std::size_t corrupt_chunk = 0;
  {
    TraceFileReader clean(path);
    const auto dir = clean.directory();
    corrupt_chunk = dir.size() / 2;  // mid-file: lands mid-window
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const auto pos = static_cast<std::streamoff>(dir[corrupt_chunk].offset + 12 +
                                                 dir[corrupt_chunk].payload_bytes / 2);
    f.seekg(pos);
    const int byte = f.get();
    f.seekp(pos);
    f.put(static_cast<char>(byte ^ 0x40));
  }
  const std::size_t saved = parallel_threads();
  for (const std::size_t threads : {2u, 7u}) {
    set_parallel_threads(threads);
    FileTraceSource source(path, TraceDecode::kParallel);  // directory intact
    std::vector<WritebackEvent> batch(64);
    std::size_t delivered = 0;
    bool threw = false;
    try {
      for (;;) {
        const std::size_t n = source.next_batch(std::span(batch.data(), batch.size()));
        if (n == 0) break;
        // Everything delivered before the violation is the clean prefix.
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(batch[i].line, events[delivered].line);
          ASSERT_EQ(batch[i].data, events[delivered].data);
          ++delivered;
        }
      }
    } catch (const ContractViolation&) {
      threw = true;
    }
    EXPECT_TRUE(threw) << "corrupt CRC must throw, not end the stream";
    EXPECT_LE(delivered, corrupt_chunk * 64);  // never events past the bad chunk
    // The violation is sticky for the affected window: retrying throws again
    // instead of hanging or delivering a partial batch.
    EXPECT_THROW((void)source.next_batch(std::span(batch.data(), batch.size())),
                 ContractViolation);
  }
  set_parallel_threads(saved);
}

TEST_F(TraceFileTest, CompressedStorageIsSmallerThanV1) {
  // The v2 container stores BestOf-compressed values; on a compressible
  // corpus it must beat v1's fixed 72 bytes/record by a wide margin.
  std::vector<WritebackEvent> events(512);
  for (std::size_t i = 0; i < events.size(); ++i) {
    events[i].line = i;
    events[i].data = zero_block();
  }
  const auto v1 = temp_path("size_v1.trace");
  const auto v2 = temp_path("size_v2.trace");
  {
    TraceWriter writer(v1);
    for (const auto& ev : events) writer.append(ev);
    writer.close();
  }
  write_v2(v2, events, 128);
  const auto v1_size = std::filesystem::file_size(v1);
  const auto v2_size = std::filesystem::file_size(v2);
  EXPECT_LT(v2_size * 5, v1_size) << "v2 " << v2_size << " vs v1 " << v1_size;
  expect_same(events, read_v2(v2));
}

}  // namespace
}  // namespace pcmsim
