// Sharded multi-tenant engine suite: thread-count determinism across the
// shards x threads matrix, exact equivalence of the degenerate single-shard
// engine against a plain PcmSystem, SystemStats::merge exactness, window
// (epoch) partitioning invariance, finite-source handling, and the
// registration/run contracts.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/system.hpp"
#include "sim/sharded_engine.hpp"
#include "trace/sampled_source.hpp"
#include "trace/trace_source.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {
namespace {

/// Restores automatic worker-count selection when a test returns.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

ShardedEngineConfig small_config(std::uint32_t shards, std::uint32_t tenants,
                                 std::uint64_t seed) {
  ShardedEngineConfig cfg;
  cfg.shard_system.device.lines = 65;  // 64 logical lines + the Start-Gap spare
  cfg.shard_system.device.endurance_mean = 60;  // low so lines actually die
  cfg.shard_system.device.endurance_cov = 0.2;
  cfg.map.channels = shards % 2 == 0 ? 2 : 1;
  cfg.map.banks_per_channel = shards / cfg.map.channels;
  cfg.tenants = tenants;
  cfg.seed = seed;
  cfg.queue_capacity = 256;  // small: forces several dispatch/execute epochs
  cfg.tenant_batch = 64;
  return cfg;
}

ShardedRunResult run_engine(const ShardedEngineConfig& cfg, std::uint64_t events) {
  ShardedPcmEngine engine(cfg);
  engine.add_sampled_tenants({profile_by_name("gcc"), profile_by_name("milc")});
  return engine.run(events);
}

/// Finite source: `total` events round-robining the region with fixed data.
class FiniteSource final : public TraceSource {
 public:
  FiniteSource(std::uint64_t total, std::uint64_t region_lines)
      : total_(total), region_lines_(region_lines) {}

  std::size_t next_batch(std::span<WritebackEvent> out) override {
    std::size_t filled = 0;
    while (filled < out.size() && events_ < total_) {
      WritebackEvent& ev = out[filled++];
      ev.line = events_ % region_lines_;
      ev.data.fill(static_cast<std::uint8_t>(events_));
      ++events_;
    }
    return filled;
  }

  [[nodiscard]] std::uint64_t events() const override { return events_; }
  void reset() override { events_ = 0; }

 private:
  std::uint64_t total_;
  std::uint64_t region_lines_;
  std::uint64_t events_ = 0;
};

TEST(ShardedEngine, DeterministicAcrossThreadsAndShards) {
  // The headline property: byte-identical results at any worker count, for
  // every shard geometry. 256-deep queues over 6000 events force several
  // epochs, so the dispatch/execute overlap is genuinely exercised.
  const ThreadGuard guard;
  for (const std::uint32_t shards : {1u, 8u, 32u}) {
    std::uint64_t reference = 0;
    for (const std::size_t threads : {1u, 2u, 7u}) {
      set_parallel_threads(threads);
      const ShardedRunResult r = run_engine(small_config(shards, 8, 7), 6000);
      EXPECT_EQ(r.events, 6000u);
      if (threads == 1) {
        reference = r.checksum;
      } else {
        EXPECT_EQ(r.checksum, reference)
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedEngine, SingleShardMatchesMonolithicSystem) {
  // With one shard and one tenant the engine degenerates to a plain
  // PcmSystem fed by one SampledTraceSource: the address fold is the
  // identity, so replaying the same derived seeds outside the engine must
  // reproduce its stats bit-for-bit.
  const ThreadGuard guard;
  set_parallel_threads(3);
  const std::uint64_t kSeed = 99;
  const std::uint64_t kEvents = 4000;

  ShardedEngineConfig cfg = small_config(1, 1, kSeed);
  ShardedPcmEngine engine(cfg);
  engine.add_sampled_tenants({profile_by_name("gcc")});
  const std::uint64_t region = engine.tenant_region_lines();
  const ShardedRunResult sharded = engine.run(kEvents);

  SystemConfig sys = cfg.shard_system;
  sys.seed = mix64(kSeed, 0, ShardedPcmEngine::kShardStartGapSalt);
  sys.device.seed = mix64(kSeed, 0, ShardedPcmEngine::kShardEnduranceSalt);
  PcmSystem mono(sys);
  SampledTraceSource src(profile_by_name("gcc"), region,
                         mix64(kSeed, ShardedPcmEngine::kTenantSeedSalt, 0));
  TraceCursor cursor(src);
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    const WritebackEvent ev = cursor.next();
    (void)mono.write(ev.line, ev.data);
  }

  const SystemStats& a = sharded.total;
  const SystemStats& b = mono.stats();
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.compressed_writes, b.compressed_writes);
  EXPECT_EQ(a.uncompressed_writes, b.uncompressed_writes);
  EXPECT_EQ(a.dropped_writes, b.dropped_writes);
  EXPECT_EQ(a.uncorrectable_events, b.uncorrectable_events);
  EXPECT_EQ(a.window_slides, b.window_slides);
  EXPECT_EQ(a.recycled_lines, b.recycled_lines);
  EXPECT_EQ(a.gap_moves, b.gap_moves);
  EXPECT_EQ(a.lines_dead, b.lines_dead);
  EXPECT_EQ(a.flips_per_write.count(), b.flips_per_write.count());
  EXPECT_DOUBLE_EQ(a.flips_per_write.sum(), b.flips_per_write.sum());
  EXPECT_DOUBLE_EQ(a.flips_per_write.mean(), b.flips_per_write.mean());
  EXPECT_DOUBLE_EQ(a.compressed_size.sum(), b.compressed_size.sum());
}

TEST(ShardedEngine, StatsMergeMatchesMonolithicAccumulation) {
  // SystemStats::merge must behave as if one accumulator had seen both
  // systems' samples: counters sum exactly; the RunningStats combine via the
  // parallel-variance formula, which agrees with sequential Welford up to
  // floating-point associativity.
  SystemConfig sys_a;
  sys_a.device.lines = 65;
  sys_a.device.endurance_mean = 80;
  sys_a.seed = 5;
  sys_a.device.seed = 1005;
  SystemConfig sys_b = sys_a;
  sys_b.seed = 6;
  sys_b.device.seed = 1006;

  PcmSystem a(sys_a);
  PcmSystem b(sys_b);
  RunningStat ref_flips;
  const auto drive = [&ref_flips](PcmSystem& system, std::uint64_t seed) {
    SampledTraceSource src(profile_by_name("milc"), system.logical_lines(), seed);
    TraceCursor cursor(src);
    for (int i = 0; i < 3000; ++i) {
      const WritebackEvent ev = cursor.next();
      const auto out = system.write(ev.line, ev.data);
      if (out.stored) ref_flips.add(static_cast<double>(out.flips));
    }
  };
  drive(a, 21);
  drive(b, 22);

  SystemStats merged = a.stats();
  merged.merge(b.stats());
  EXPECT_EQ(merged.writes, a.stats().writes + b.stats().writes);
  EXPECT_EQ(merged.lines_dead, a.stats().lines_dead + b.stats().lines_dead);
  EXPECT_EQ(merged.recycled_lines, a.stats().recycled_lines + b.stats().recycled_lines);
  EXPECT_EQ(merged.flips_per_write.count(), ref_flips.count());
  EXPECT_NEAR(merged.flips_per_write.mean(), ref_flips.mean(),
              1e-9 * ref_flips.mean());
  EXPECT_NEAR(merged.flips_per_write.variance(), ref_flips.variance(),
              1e-6 * ref_flips.variance());
  EXPECT_DOUBLE_EQ(merged.flips_per_write.min(), ref_flips.min());
  EXPECT_DOUBLE_EQ(merged.flips_per_write.max(), ref_flips.max());
}

TEST(ShardedEngine, EpochPartitioningDoesNotChangeModeledBehavior) {
  // Queue capacity only decides where the epoch barriers fall; the per-shard
  // event sequences — and everything modeled from them — must not move.
  const ThreadGuard guard;
  set_parallel_threads(2);
  ShardedEngineConfig tight = small_config(8, 8, 11);
  tight.queue_capacity = 128;
  ShardedEngineConfig wide = small_config(8, 8, 11);
  wide.queue_capacity = 1 << 20;

  const ShardedRunResult t = run_engine(tight, 5000);
  const ShardedRunResult w = run_engine(wide, 5000);
  EXPECT_GT(t.epochs, w.epochs);
  EXPECT_EQ(t.total.writes, w.total.writes);
  EXPECT_EQ(t.total.lines_dead, w.total.lines_dead);
  EXPECT_DOUBLE_EQ(t.total.flips_per_write.sum(), w.total.flips_per_write.sum());
  ASSERT_EQ(t.shards.size(), w.shards.size());
  for (std::size_t s = 0; s < t.shards.size(); ++s) {
    EXPECT_EQ(t.shards[s].events, w.shards[s].events);
    EXPECT_EQ(t.shards[s].busy_cycles, w.shards[s].busy_cycles);
    EXPECT_EQ(t.shards[s].drained_at, w.shards[s].drained_at);
  }
  ASSERT_EQ(t.tenants.size(), w.tenants.size());
  for (std::size_t i = 0; i < t.tenants.size(); ++i) {
    EXPECT_EQ(t.tenants[i].writes, w.tenants[i].writes);
    EXPECT_EQ(t.tenants[i].line_deaths, w.tenants[i].line_deaths);
    EXPECT_EQ(t.tenants[i].writes_at_failure, w.tenants[i].writes_at_failure);
  }
}

TEST(ShardedEngine, FiniteSourceRunsDryAndIsReported) {
  const ThreadGuard guard;
  set_parallel_threads(2);
  ShardedEngineConfig cfg = small_config(8, 2, 13);
  ShardedPcmEngine engine(cfg);
  const std::uint64_t region = engine.tenant_region_lines();
  engine.add_tenant(std::make_unique<FiniteSource>(500, region));
  engine.add_sampled_tenants({profile_by_name("lbm")});

  const ShardedRunResult r = engine.run(10000);
  EXPECT_EQ(r.events, 10000u);
  EXPECT_TRUE(r.tenants[0].exhausted);
  EXPECT_EQ(r.tenants[0].writes, 500u);
  EXPECT_FALSE(r.tenants[1].exhausted);
  EXPECT_EQ(r.tenants[1].writes, 9500u);
}

TEST(ShardedEngine, AllSourcesDryEndsRunEarly) {
  const ThreadGuard guard;
  set_parallel_threads(1);
  ShardedEngineConfig cfg = small_config(4, 1, 17);
  ShardedPcmEngine engine(cfg);
  engine.add_tenant(std::make_unique<FiniteSource>(300, engine.tenant_region_lines()));
  const ShardedRunResult r = engine.run(10000);
  EXPECT_EQ(r.events, 300u);
  EXPECT_TRUE(r.tenants[0].exhausted);
  EXPECT_EQ(r.total.writes, 300u);
}

TEST(ShardedEngine, RegistrationAndRunContracts) {
  ShardedEngineConfig cfg = small_config(4, 2, 19);
  ShardedPcmEngine engine(cfg);
  engine.add_sampled_tenants({profile_by_name("gcc")});
  // All slots filled: one more registration must be rejected.
  EXPECT_THROW(engine.add_tenant(std::make_unique<FiniteSource>(
                   10, engine.tenant_region_lines())),
               ContractViolation);
  (void)engine.run(200);
  // An engine runs once: shard wear state is consumed.
  EXPECT_THROW((void)engine.run(200), ContractViolation);

  // run() before every tenant slot is filled is a contract violation too.
  ShardedPcmEngine unfilled(cfg);
  unfilled.add_tenant(std::make_unique<FiniteSource>(10, unfilled.tenant_region_lines()));
  EXPECT_THROW((void)unfilled.run(100), ContractViolation);
}

}  // namespace
}  // namespace pcmsim
