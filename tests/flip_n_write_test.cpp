#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hpp"
#include "pcm/flip_n_write.hpp"

namespace pcmsim {
namespace {

Block random_block(Rng& rng) {
  Block b{};
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
  return b;
}

TEST(FlipNWrite, EncodeDecodeRoundTrips) {
  FlipNWriteCodec codec(64);
  Rng rng(1);
  Block stored{};
  std::uint64_t flags = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Block data = random_block(rng);
    const auto enc = codec.encode(data, stored, flags);
    EXPECT_EQ(codec.decode(enc.payload, enc.invert_mask), data);
    stored = enc.payload;
    flags = enc.invert_mask;
  }
}

TEST(FlipNWrite, NeverWorseThanDifferentialWrite) {
  FlipNWriteCodec codec(64);
  Rng rng(2);
  Block stored{};
  std::uint64_t flags = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const Block data = random_block(rng);
    const std::size_t dw = FlipNWriteCodec::dw_flips(data, stored);
    const std::size_t fnw = codec.encoded_flips(data, stored, flags);
    // FNW may pay one flag flip per group but saves when a group inverts.
    EXPECT_LE(fnw, dw + codec.groups_per_block());
    const auto enc = codec.encode(data, stored, flags);
    stored = enc.payload;
    flags = enc.invert_mask;
  }
}

TEST(FlipNWrite, BoundsFlipsToHalfGroupPlusFlag) {
  FlipNWriteCodec codec(32);
  Rng rng(3);
  Block stored{};
  std::uint64_t flags = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Block data = random_block(rng);
    const std::size_t fnw = codec.encoded_flips(data, stored, flags);
    // Per group: at most group_bits/2 data flips + 1 flag flip.
    EXPECT_LE(fnw, codec.groups_per_block() * (codec.group_bits() / 2 + 1));
    const auto enc = codec.encode(data, stored, flags);
    stored = enc.payload;
    flags = enc.invert_mask;
  }
}

TEST(FlipNWrite, InvertedStorageBeatsDwOnComplementWrites) {
  FlipNWriteCodec codec(64);
  Block stored{};
  stored.fill(0x00);
  std::uint64_t flags = 0;
  Block data{};
  data.fill(0xFF);  // complement of stored: DW flips everything
  EXPECT_EQ(FlipNWriteCodec::dw_flips(data, stored), kBlockBits);
  // FNW writes the inversion instead: only the flag cells flip.
  EXPECT_EQ(codec.encoded_flips(data, stored, flags), codec.groups_per_block());
}

TEST(FlipNWrite, EncodedFlipsMatchesDefinitionAcrossGroupSizes) {
  // The fused encoded_flips() must equal the definition computed from the
  // actual encoding: payload cells that change plus flag cells that change.
  Rng rng(4);
  for (const std::size_t gb : {8, 16, 32, 64, 128, 512}) {
    FlipNWriteCodec codec(gb);
    Block stored{};
    std::uint64_t flags = 0;
    for (int iter = 0; iter < 100; ++iter) {
      const Block data = random_block(rng);
      const std::size_t fused = codec.encoded_flips(data, stored, flags);
      const auto enc = codec.encode(data, stored, flags);
      const std::size_t direct = FlipNWriteCodec::dw_flips(enc.payload, stored) +
                                 static_cast<std::size_t>(std::popcount(enc.invert_mask ^ flags));
      EXPECT_EQ(fused, direct) << "group_bits=" << gb;
      EXPECT_EQ(codec.decode(enc.payload, enc.invert_mask), data);
      stored = enc.payload;
      flags = enc.invert_mask;
    }
  }
}

TEST(FlipNWrite, GroupSizeMustDivideBlock) {
  EXPECT_NO_THROW(FlipNWriteCodec(32));
  EXPECT_NO_THROW(FlipNWriteCodec(128));
  EXPECT_THROW(FlipNWriteCodec(48), ContractViolation);
  EXPECT_THROW(FlipNWriteCodec(0), ContractViolation);
}

}  // namespace
}  // namespace pcmsim
