#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "wear/rotation.hpp"
#include "wear/start_gap.hpp"

namespace pcmsim {
namespace {

TEST(StaticRandomizer, IsAPermutation) {
  for (std::uint64_t n : {1ull, 7ull, 64ull, 1000ull, 4096ull}) {
    StaticRandomizer r(n, 99);
    std::set<std::uint64_t> seen;
    for (std::uint64_t x = 0; x < n; ++x) {
      const std::uint64_t y = r.map(x);
      ASSERT_LT(y, n);
      EXPECT_TRUE(seen.insert(y).second) << "collision at " << x;
      EXPECT_EQ(r.unmap(y), x);
    }
  }
}

TEST(StaticRandomizer, DifferentSeedsDiffer) {
  StaticRandomizer a(1024, 1);
  StaticRandomizer b(1024, 2);
  int same = 0;
  for (std::uint64_t x = 0; x < 1024; ++x) {
    if (a.map(x) == b.map(x)) ++same;
  }
  EXPECT_LT(same, 32);  // ~1/1024 chance per element
}

TEST(StartGap, MappingIsAlwaysInjectiveAndAvoidsGap) {
  StartGap sg(100, /*gap_interval=*/3, /*randomize=*/false, 0);
  for (int step = 0; step < 500; ++step) {
    std::set<std::uint64_t> used;
    for (std::uint64_t la = 0; la < 100; ++la) {
      const std::uint64_t pa = sg.map(la);
      ASSERT_LT(pa, 101u);
      ASSERT_NE(pa, sg.gap());
      ASSERT_TRUE(used.insert(pa).second);
    }
    (void)sg.on_write();
  }
}

TEST(StartGap, GapMovesEveryInterval) {
  StartGap sg(10, /*gap_interval=*/5, false, 0);
  int moves = 0;
  for (int w = 0; w < 50; ++w) {
    if (sg.on_write()) ++moves;
  }
  EXPECT_EQ(moves, 10);
  EXPECT_EQ(sg.total_moves(), 10u);
}

TEST(StartGap, MoveSourceBecomesNewGap) {
  StartGap sg(4, 1, false, 0);  // physical = 5 slots, gap starts at 4
  const auto mv = sg.on_write();
  ASSERT_TRUE(mv.has_value());
  EXPECT_EQ(mv->to, 4u);
  EXPECT_EQ(mv->from, 3u);
  EXPECT_EQ(sg.gap(), 3u);
}

TEST(StartGap, FullRevolutionAdvancesStart) {
  StartGap sg(4, 1, false, 0);
  const std::uint64_t p = 5;
  EXPECT_EQ(sg.start(), 0u);
  for (std::uint64_t i = 0; i < p; ++i) (void)sg.on_write();
  EXPECT_EQ(sg.start(), 1u);
  for (std::uint64_t i = 0; i < p; ++i) (void)sg.on_write();
  EXPECT_EQ(sg.start(), 2u);
}

TEST(StartGap, EveryLineVisitsEveryPhysicalSlot) {
  // After enough revolutions, logical line 0 must have occupied every slot —
  // the core wear-leveling property.
  StartGap sg(8, 1, false, 0);
  std::set<std::uint64_t> slots;
  for (int w = 0; w < 9 * 9 + 1; ++w) {
    slots.insert(sg.map(0));
    (void)sg.on_write();
  }
  EXPECT_EQ(slots.size(), 9u);
}

TEST(Rotation, AdvancesOffsetOnSaturation) {
  IntraLineRotator rot(2, /*threshold=*/4, /*step=*/1);
  EXPECT_EQ(rot.offset_bytes(0), 0u);
  for (int i = 0; i < 3; ++i) rot.on_write(0);
  EXPECT_EQ(rot.offset_bytes(0), 0u);
  rot.on_write(0);
  EXPECT_EQ(rot.offset_bytes(0), 1u);
  EXPECT_EQ(rot.rotations(0), 1u);
  EXPECT_EQ(rot.offset_bytes(1), 0u) << "banks are independent";
}

TEST(Rotation, OffsetWrapsAroundTheLine) {
  IntraLineRotator rot(1, 1, /*step=*/7);
  for (int i = 0; i < 64; ++i) rot.on_write(0);
  // 64 rotations of 7 bytes: 64*7 mod 64 = 0.
  EXPECT_EQ(rot.offset_bytes(0), 0u);
  EXPECT_EQ(rot.rotations(0), 64u);
}

TEST(Rotation, CoversAllBytePositions) {
  IntraLineRotator rot(1, 1, 1);
  std::set<std::uint32_t> offsets;
  for (int i = 0; i < 64; ++i) {
    offsets.insert(rot.offset_bytes(0));
    rot.on_write(0);
  }
  EXPECT_EQ(offsets.size(), 64u);
}

}  // namespace
}  // namespace pcmsim
