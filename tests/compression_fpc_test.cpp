#include "compression/fpc.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"

namespace pcmsim {
namespace {

Block block_of_u32(std::initializer_list<std::uint32_t> words) {
  Block b{};
  std::size_t i = 0;
  for (auto w : words) {
    std::memcpy(b.data() + i * 4, &w, 4);
    if (++i == 16) break;
  }
  return b;
}

TEST(Fpc, ClassifiesPatterns) {
  using P = FpcPattern;
  EXPECT_EQ(FpcCompressor::classify(0), P::kZeroRun);
  EXPECT_EQ(FpcCompressor::classify(7), P::kSign4);
  EXPECT_EQ(FpcCompressor::classify(static_cast<std::uint32_t>(-3)), P::kSign4);
  EXPECT_EQ(FpcCompressor::classify(100), P::kSign8);
  EXPECT_EQ(FpcCompressor::classify(static_cast<std::uint32_t>(-100)), P::kSign8);
  EXPECT_EQ(FpcCompressor::classify(30000), P::kSign16);
  EXPECT_EQ(FpcCompressor::classify(static_cast<std::uint32_t>(-30000)), P::kSign16);
  EXPECT_EQ(FpcCompressor::classify(0x7FFF0000u), P::kHighHalfZeroPad);
  EXPECT_EQ(FpcCompressor::classify(0x00450012u), P::kTwoSignedBytes);
  EXPECT_EQ(FpcCompressor::classify(0xABABABABu), P::kRepeatedByte);
  EXPECT_EQ(FpcCompressor::classify(0x12345678u), P::kUncompressed);
}

TEST(Fpc, ZeroBlockFoldsToTinyImage) {
  FpcCompressor c;
  const auto r = c.compress(zero_block());
  ASSERT_TRUE(r.has_value());
  // 16 zero words -> two zero-run tokens (max run 8) = 12 bits = 2 bytes.
  EXPECT_EQ(r->size_bytes(), 2u);
  EXPECT_EQ(c.decompress(*r), zero_block());
}

TEST(Fpc, SmallIntsCompressWell) {
  FpcCompressor c;
  Block b{};
  for (std::size_t i = 0; i < 16; ++i) {
    const auto v = static_cast<std::uint32_t>(i % 8);  // all fit sign4
    std::memcpy(b.data() + i * 4, &v, 4);
  }
  const auto r = c.compress(b);
  ASSERT_TRUE(r.has_value());
  EXPECT_LE(r->size_bytes(), 16u);
  EXPECT_EQ(c.decompress(*r), b);
}

TEST(Fpc, MixedPatternsRoundTrip) {
  FpcCompressor c;
  const Block b = block_of_u32({0, 0, 0x7FFF0000u, 0xABABABABu, 0x00450012u, 25000u,
                                static_cast<std::uint32_t>(-90), 0x12345678u, 0, 3u,
                                0xFFFF0000u, 0x01010101u, 0x00120034u, 0,
                                static_cast<std::uint32_t>(-2), 0x89ABCDEFu});
  const auto r = c.compress(b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(c.decompress(*r), b);
}

TEST(Fpc, PureRandomDoesNotCompress) {
  FpcCompressor c;
  Rng rng(99);
  Block b{};
  for (std::size_t i = 0; i < 16; ++i) {
    // Force all-uncompressed words: 16 * (3+32) = 560 bits > 512.
    std::uint32_t w = static_cast<std::uint32_t>(rng()) | 0x01000000u;
    if (FpcCompressor::classify(w) != FpcPattern::kUncompressed) w = 0x12345678u + static_cast<std::uint32_t>(i);
    std::memcpy(b.data() + i * 4, &w, 4);
  }
  EXPECT_FALSE(c.compress(b).has_value());
}

TEST(Fpc, PayloadBitsMatchSpecification) {
  using P = FpcPattern;
  EXPECT_EQ(FpcCompressor::payload_bits(P::kZeroRun), 3u);
  EXPECT_EQ(FpcCompressor::payload_bits(P::kSign4), 4u);
  EXPECT_EQ(FpcCompressor::payload_bits(P::kSign8), 8u);
  EXPECT_EQ(FpcCompressor::payload_bits(P::kSign16), 16u);
  EXPECT_EQ(FpcCompressor::payload_bits(P::kHighHalfZeroPad), 16u);
  EXPECT_EQ(FpcCompressor::payload_bits(P::kTwoSignedBytes), 16u);
  EXPECT_EQ(FpcCompressor::payload_bits(P::kRepeatedByte), 8u);
  EXPECT_EQ(FpcCompressor::payload_bits(P::kUncompressed), 32u);
}

// Property: every compressible block round-trips bit-exactly.
class FpcRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FpcRoundTrip, PatternMixesRoundTrip) {
  FpcCompressor c;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  int compressed = 0;
  for (int iter = 0; iter < 400; ++iter) {
    Block b{};
    for (std::size_t i = 0; i < 16; ++i) {
      std::uint32_t w = 0;
      switch (rng.next_below(6)) {
        case 0: w = 0; break;
        case 1: w = static_cast<std::uint32_t>(rng.next_below(16)) - 8u; break;
        case 2: w = static_cast<std::uint32_t>(rng.next_below(65536)) - 32768u; break;
        case 3: w = static_cast<std::uint32_t>(rng()) << 16; break;
        case 4: {
          const auto byte = static_cast<std::uint32_t>(rng.next_below(256));
          w = byte * 0x01010101u;
          break;
        }
        default: w = static_cast<std::uint32_t>(rng()); break;
      }
      std::memcpy(b.data() + i * 4, &w, 4);
    }
    const auto r = c.compress(b);
    if (r) {
      ++compressed;
      EXPECT_EQ(c.decompress(*r), b);
    }
  }
  EXPECT_GT(compressed, 300);  // most mixes compress
}

INSTANTIATE_TEST_SUITE_P(Seeds, FpcRoundTrip, ::testing::Range(0, 8));

}  // namespace
}  // namespace pcmsim
