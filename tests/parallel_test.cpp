// Unit tests for the global thread pool: index coverage and result ordering,
// exception propagation, nested-region safety, and runtime resizing.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"

namespace pcmsim {
namespace {

/// Restores automatic thread selection after each test.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

TEST_F(ParallelTest, ForRunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    set_parallel_threads(threads);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    parallel_for(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_F(ParallelTest, ForWithZeroOrOneIndex) {
  set_parallel_threads(4);
  int calls = 0;
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallel_for(1, [&](std::size_t i) { calls += static_cast<int>(i) + 1; });
  EXPECT_EQ(calls, 1);
}

TEST_F(ParallelTest, MapPreservesResultOrdering) {
  set_parallel_threads(7);
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  const auto out = parallel_map(items, [](const int x) { return x * x; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(out[i], items[i] * items[i]);
  }
}

TEST_F(ParallelTest, ExceptionPropagatesAndPoolSurvives) {
  set_parallel_threads(4);
  EXPECT_THROW(parallel_for(100,
                            [](std::size_t i) {
                              if (i == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must stay usable after a failed region.
  std::atomic<int> sum{0};
  parallel_for(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST_F(ParallelTest, NestedRegionsRunInlineWithoutDeadlock) {
  set_parallel_threads(4);
  constexpr std::size_t outer = 8;
  constexpr std::size_t inner = 16;
  std::vector<std::atomic<int>> counts(outer);
  parallel_for(outer, [&](std::size_t o) {
    parallel_for(inner, [&](std::size_t) { ++counts[o]; });
  });
  for (std::size_t o = 0; o < outer; ++o) EXPECT_EQ(counts[o].load(), inner);
}

TEST_F(ParallelTest, ForeignThreadRegionDegradesToInlineWhilePoolBusy) {
  // A region opened from a thread the pool does not own, while another
  // region is active, must run inline instead of blocking: the active
  // region's tasks may be waiting on that thread's output (the prefetch
  // decorator's worker does exactly this). Index 0 is always claimed first,
  // so the helper thread runs while the other tasks hold the region open;
  // with a blocking pool this test deadlocks.
  set_parallel_threads(4);
  std::atomic<bool> done{false};
  std::atomic<int> inner_sum{0};
  parallel_for(4, [&](std::size_t o) {
    if (o != 0) {
      while (!done.load()) std::this_thread::yield();
      return;
    }
    std::thread helper([&] {
      parallel_for(64, [&](std::size_t i) { inner_sum += static_cast<int>(i); });
      done.store(true);
    });
    helper.join();
  });
  EXPECT_EQ(inner_sum.load(), 64 * 63 / 2);
}

TEST_F(ParallelTest, SetThreadsOverridesAndZeroRestoresAuto) {
  set_parallel_threads(3);
  EXPECT_EQ(parallel_threads(), 3u);
  set_parallel_threads(1);
  EXPECT_EQ(parallel_threads(), 1u);
  set_parallel_threads(0);
  EXPECT_GE(parallel_threads(), 1u);
}

TEST_F(ParallelTest, CliFlagSetsThreadCount) {
  const char* argv[] = {"prog", "--threads", "5"};
  const CliArgs args(3, argv);
  EXPECT_EQ(set_threads_from_cli(args), 5u);
  EXPECT_EQ(parallel_threads(), 5u);
}

TEST_F(ParallelTest, CliWithoutFlagKeepsCurrentCount) {
  set_parallel_threads(2);
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_EQ(set_threads_from_cli(args), 2u);
}

}  // namespace
}  // namespace pcmsim
