#include <gtest/gtest.h>

#include "sim/experiments.hpp"

namespace pcmsim {
namespace {

TEST(ExperimentScale, FlagsResolveToDistinctScales) {
  const auto dflt = ExperimentScale::from_flag("default");
  const auto fast = ExperimentScale::from_flag("fast");
  const auto paper = ExperimentScale::from_flag("paper");
  EXPECT_LT(fast.endurance_mean, dflt.endurance_mean);
  EXPECT_LT(dflt.endurance_mean, paper.endurance_mean);
  EXPECT_LT(fast.physical_lines, paper.physical_lines);
  EXPECT_DOUBLE_EQ(dflt.endurance_cov, 0.15);
}

TEST(Experiments, AppNamesMatchProfiles) {
  const auto names = all_app_names();
  EXPECT_EQ(names.size(), 15u);
  EXPECT_EQ(names.front(), "GemsFDTD");
  EXPECT_EQ(names.back(), "cactusADM");
  for (const auto& n : names) EXPECT_NO_THROW((void)profile_by_name(n));
}

TEST(Experiments, MatrixRunsAndIndexes) {
  ExperimentScale tiny;
  tiny.endurance_mean = 60;
  tiny.physical_lines = 96;
  const auto cells = run_lifetime_matrix({"milc", "lbm"},
                                         {SystemMode::kBaseline, SystemMode::kCompWF}, tiny);
  ASSERT_EQ(cells.size(), 4u);
  for (const auto& c : cells) {
    EXPECT_TRUE(c.result.reached_failure) << c.app;
    EXPECT_GT(c.result.writes_to_failure, 0u);
  }
  const auto& wf = matrix_cell(cells, "milc", SystemMode::kCompWF);
  EXPECT_EQ(wf.app, "milc");
  EXPECT_EQ(wf.mode, SystemMode::kCompWF);
  EXPECT_THROW((void)matrix_cell(cells, "gcc", SystemMode::kComp), ContractViolation);
}

TEST(Lifetime, FinalFailureCheckCatchesDeathAtWriteCap) {
  // A failure landing between the last check_interval boundary and the
  // max_writes cap must still be reported. Reproduce: find the failure point
  // with normal polling, then rerun capped exactly there with a poll interval
  // too large to ever fire — only the final check can set reached_failure.
  LifetimeConfig lc;
  lc.system.device.lines = 96;
  lc.system.device.endurance_mean = 60;
  const auto first = run_lifetime(profile_by_name("milc"), lc, 11);
  ASSERT_TRUE(first.reached_failure);

  LifetimeConfig capped = lc;
  capped.max_writes = first.writes_to_failure;
  capped.check_interval = first.writes_to_failure + 1;  // never polls mid-run
  const auto second = run_lifetime(profile_by_name("milc"), capped, 11);
  EXPECT_EQ(second.writes_to_failure, first.writes_to_failure);
  EXPECT_TRUE(second.reached_failure);
}

TEST(Experiments, MatrixIsDeterministicForFixedSeed) {
  ExperimentScale tiny;
  tiny.endurance_mean = 60;
  tiny.physical_lines = 96;
  tiny.seed = 5;
  const auto a = run_lifetime_matrix({"milc"}, {SystemMode::kBaseline}, tiny);
  const auto b = run_lifetime_matrix({"milc"}, {SystemMode::kBaseline}, tiny);
  EXPECT_EQ(a[0].result.writes_to_failure, b[0].result.writes_to_failure);
}

}  // namespace
}  // namespace pcmsim
