// Front-tier suite: policy-ordered victim choice, silent-store elimination
// correctness against a filterless reference, dedup refcount safety across
// eviction/invalidation/flush, the tier's accounting identities, thread-count
// determinism of the tiered sharded engine, and the cache -> tier -> PCM
// plumb through the writeback_sink adapters.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/hierarchy.hpp"
#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/system.hpp"
#include "sim/lifetime.hpp"
#include "sim/sharded_engine.hpp"
#include "tier/front_tier.hpp"
#include "tier/writeback_sink.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {
namespace {

/// Restores automatic worker-count selection when a test returns.
struct ThreadGuard {
  ~ThreadGuard() { set_parallel_threads(0); }
};

/// A single-set tier config: capacity == ways, so every line lands in set 0
/// and eviction order is fully observable.
FrontTierConfig one_set(std::size_t ways, TierPolicy policy) {
  FrontTierConfig cfg;
  cfg.capacity_lines = ways;
  cfg.ways = ways;
  cfg.policy = policy;
  cfg.model_latency = false;  // structure-only tests
  return cfg;
}

Block filled(std::uint8_t b) {
  Block d;
  d.fill(b);
  return d;
}

/// An incompressible payload: every u32 word is a distinct mix64 draw, so
/// neither BDI nor FPC finds a pattern and the probe reports 64 bytes.
Block random_block(std::uint64_t seed) {
  Block d;
  for (std::size_t i = 0; i < kBlockBytes; i += 8) {
    store_le(d, i, mix64(seed, i));
  }
  return d;
}

TEST(FrontTier, LruEvictsOldestWhenSetFills) {
  std::vector<FrontTier::Forward> out;
  FrontTier tier(one_set(3, TierPolicy::kLru),
                 [&](const FrontTier::Forward& f) { out.push_back(f); });
  EXPECT_EQ(tier.put(1, filled(1)), FrontTier::Outcome::kInserted);
  EXPECT_EQ(tier.put(2, filled(2)), FrontTier::Outcome::kInserted);
  EXPECT_EQ(tier.put(3, filled(3)), FrontTier::Outcome::kInserted);
  EXPECT_TRUE(out.empty());

  // Refresh line 1 so line 2 becomes the LRU victim.
  EXPECT_EQ(tier.put(1, filled(11)), FrontTier::Outcome::kHit);
  EXPECT_EQ(tier.put(4, filled(4)), FrontTier::Outcome::kInserted);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 2u);
  EXPECT_EQ(out[0].data, filled(2));
  EXPECT_TRUE(tier.contains(1));
  ASSERT_NE(tier.peek(1), nullptr);
  EXPECT_EQ(*tier.peek(1), filled(11));  // hit coalesced the newer payload
}

TEST(FrontTier, CompPolicyEvictsCompressibleBeforeOlderIncompressible) {
  std::vector<FrontTier::Forward> out;
  FrontTier tier(one_set(4, TierPolicy::kComp),
                 [&](const FrontTier::Forward& f) { out.push_back(f); });
  const Block incompressible = random_block(99);
  tier.put(1, incompressible);   // oldest, but expensive to rewrite in PCM
  tier.put(2, filled(0));        // second-oldest, compresses to almost nothing
  tier.put(3, random_block(3));
  tier.put(4, random_block(4));

  // The LRU-half candidates are lines {1, 2}; comp retention keeps the
  // incompressible line 1 and sacrifices the compressible line 2, where plain
  // LRU would have evicted line 1.
  tier.put(5, random_block(5));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 2u);
  EXPECT_TRUE(tier.contains(1));

  std::vector<FrontTier::Forward> lru_out;
  FrontTier lru(one_set(4, TierPolicy::kLru),
                [&](const FrontTier::Forward& f) { lru_out.push_back(f); });
  lru.put(1, incompressible);
  lru.put(2, filled(0));
  lru.put(3, random_block(3));
  lru.put(4, random_block(4));
  lru.put(5, random_block(5));
  ASSERT_EQ(lru_out.size(), 1u);
  EXPECT_EQ(lru_out[0].line, 1u);  // the control evicts by age alone
}

TEST(FrontTier, SilentStoreEliminationMatchesFilterlessReference) {
  // Differential check: a deterministic stream with heavy payload reuse runs
  // through a kSilent tier whose sink models PCM content exactly. Every
  // silent drop must happen only when PCM already holds the dropped payload,
  // and at the end every line's logical content (tier-resident copy, else
  // PCM copy) must equal the filterless reference (last offered value).
  std::unordered_map<LineAddr, Block> pcm;
  FrontTierConfig cfg;
  cfg.capacity_lines = 32;
  cfg.ways = 4;
  cfg.policy = TierPolicy::kSilent;
  cfg.model_latency = false;
  FrontTier tier(cfg, [&](const FrontTier::Forward& f) { pcm[f.line] = f.data; });

  std::unordered_map<LineAddr, Block> reference;
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const LineAddr line = mix64(7, i) % 48;        // more lines than capacity
    const std::uint64_t value = mix64(11, i) % 3;  // tiny pool: rewrites repeat
    const Block data = filled(static_cast<std::uint8_t>(line * 4 + value));
    const auto outcome = tier.put(line, data);
    if (outcome == FrontTier::Outcome::kSilentDrop) {
      const auto it = pcm.find(line);
      ASSERT_NE(it, pcm.end()) << "silent drop with no PCM-resident copy";
      EXPECT_EQ(it->second, data) << "silent drop of a payload PCM does not hold";
    }
    reference[line] = data;
  }
  EXPECT_GT(tier.stats().silent_drops, 0u);
  EXPECT_GT(tier.stats().evictions, 0u);

  for (const auto& [line, want] : reference) {
    const Block* resident = tier.peek(line);
    if (resident != nullptr) {
      EXPECT_EQ(*resident, want) << "line " << line;
    } else {
      const auto it = pcm.find(line);
      ASSERT_NE(it, pcm.end()) << "line " << line << " lost";
      EXPECT_EQ(it->second, want) << "line " << line;
    }
  }

  // The tier's shadow of PCM content must agree with the sink-side model for
  // every line PCM has seen (this is what makes dropping safe at all).
  for (const auto& [line, data] : pcm) {
    const Block* shadow = tier.pcm_resident(line);
    ASSERT_NE(shadow, nullptr) << "line " << line;
    EXPECT_EQ(*shadow, data) << "line " << line;
  }
}

TEST(FrontTier, DedupSharesPayloadsAndSurvivesInvalidateAndEviction) {
  FrontTierConfig cfg = one_set(4, TierPolicy::kDedup);
  cfg.dedup_tag_ways = 8;
  std::vector<FrontTier::Forward> out;
  FrontTier tier(cfg, [&](const FrontTier::Forward& f) { out.push_back(f); });

  // Six lines, one payload: the tag over-provisioning holds all six resident
  // on a single shared payload slot.
  const Block shared = filled(0xAB);
  for (LineAddr line = 1; line <= 6; ++line) {
    EXPECT_EQ(tier.put(line, shared), FrontTier::Outcome::kInserted);
  }
  EXPECT_EQ(tier.resident_lines(), 6u);
  EXPECT_EQ(tier.unique_payloads(), 1u);
  EXPECT_EQ(tier.stats().dedup_shares, 5u);
  EXPECT_TRUE(out.empty());

  // Removing one sharer must not disturb the others' payload.
  const auto inv = tier.invalidate(3);
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(inv->data, shared);
  EXPECT_EQ(tier.resident_lines(), 5u);
  EXPECT_EQ(tier.unique_payloads(), 1u);
  ASSERT_NE(tier.peek(1), nullptr);
  EXPECT_EQ(*tier.peek(1), shared);

  // Rewriting a sharer with distinct content re-claims a fresh slot and
  // releases its share; the remaining sharers keep the original bytes.
  const Block distinct = random_block(17);
  EXPECT_EQ(tier.put(1, distinct), FrontTier::Outcome::kHit);
  EXPECT_EQ(tier.unique_payloads(), 2u);
  ASSERT_NE(tier.peek(2), nullptr);
  EXPECT_EQ(*tier.peek(2), shared);
  ASSERT_NE(tier.peek(1), nullptr);
  EXPECT_EQ(*tier.peek(1), distinct);

  // Exhaust the payload slots with distinct content: claim_payload must evict
  // LRU sharers to free slots rather than corrupt refcounts (the ensures
  // guards in release_payload would fire on any miscount).
  for (LineAddr line = 10; line < 14; ++line) {
    (void)tier.put(line, random_block(line));
  }
  EXPECT_LE(tier.unique_payloads(), tier.payload_ways());

  // Flush forwards everything that is left exactly once and empties the tier.
  const std::size_t resident = tier.resident_lines();
  const std::size_t forwarded_before = out.size();
  tier.flush();
  EXPECT_EQ(out.size(), forwarded_before + resident);
  EXPECT_EQ(tier.resident_lines(), 0u);
  EXPECT_EQ(tier.unique_payloads(), 0u);
  EXPECT_EQ(tier.stats().flushes, resident);
}

TEST(FrontTier, SilentRewritesAreAbsorbedWithoutForwarding) {
  std::vector<FrontTier::Forward> out;
  FrontTier tier(one_set(2, TierPolicy::kSilent),
                 [&](const FrontTier::Forward& f) { out.push_back(f); });
  tier.put(1, filled(7));
  EXPECT_EQ(tier.put(1, filled(7)), FrontTier::Outcome::kSilentHit);
  // Evict line 1 to PCM, then re-offer the identical payload: dropped against
  // the PCM-resident copy without reallocation.
  tier.put(2, filled(2));
  tier.put(3, filled(3));  // evicts line 1
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].line, 1u);
  EXPECT_EQ(tier.put(1, filled(7)), FrontTier::Outcome::kSilentDrop);
  EXPECT_FALSE(tier.contains(1));
  EXPECT_EQ(tier.stats().silent_hits, 1u);
  EXPECT_EQ(tier.stats().silent_drops, 1u);
  EXPECT_EQ(tier.stats().absorbed(), tier.stats().hits + 1);
}

TEST(FrontTier, AccountingIdentitiesHold) {
  // offered = hits + silent_drops + inserts, and every allocated entry is
  // still resident or left through exactly one of eviction/flush/invalidate.
  FrontTierConfig cfg;
  cfg.capacity_lines = 16;
  cfg.ways = 4;
  cfg.policy = TierPolicy::kComp;
  cfg.model_latency = false;
  std::uint64_t forwards = 0;
  FrontTier tier(cfg, [&](const FrontTier::Forward&) { ++forwards; });
  for (std::uint64_t i = 0; i < 3000; ++i) {
    (void)tier.put(mix64(3, i) % 64, filled(static_cast<std::uint8_t>(mix64(5, i) % 5)));
    if (i % 97 == 0) (void)tier.invalidate(mix64(3, i / 2) % 64);
  }
  const FrontTierStats& st = tier.stats();
  EXPECT_EQ(st.offered, st.hits + st.silent_drops + st.inserts);
  EXPECT_EQ(st.inserts,
            st.evictions + st.flushes + st.invalidates + tier.resident_lines());
  EXPECT_EQ(forwards, st.evictions + st.flushes);
  EXPECT_LE(st.silent_hits, st.hits);
  EXPECT_LE(st.words_touched, st.words_forwarded);
  EXPECT_GT(st.words_forwarded, 0u);
}

TEST(FrontTier, TieredLifetimeIsDeterministicAndAmplifies) {
  // run_lifetime with a tier: offered >= serviced, the absorbed count closes
  // the gap with the still-resident lines, and the same config reproduces the
  // same result exactly.
  LifetimeConfig lc;
  lc.system.device.lines = 128;
  lc.system.device.endurance_mean = 80;
  lc.max_writes = 2'000'000;
  lc.tier = FrontTierConfig::for_kb(4, TierPolicy::kComp);
  const AppProfile& app = profile_by_name("gcc");
  const LifetimeResult a = run_lifetime(app, lc, 42);
  const LifetimeResult b = run_lifetime(app, lc, 42);
  EXPECT_EQ(a.offered_writes, b.offered_writes);
  EXPECT_EQ(a.writes_to_failure, b.writes_to_failure);
  EXPECT_EQ(a.tier.hits, b.tier.hits);
  EXPECT_TRUE(a.reached_failure);
  EXPECT_GT(a.offered_writes, a.writes_to_failure);  // the tier absorbed traffic
  EXPECT_GT(a.tier.absorbed(), 0u);
  EXPECT_GT(a.tier_write_latency_cycles, 0.0);

  // And the disabled-tier run reports offered == serviced (uniform ratios).
  LifetimeConfig off = lc;
  off.tier = FrontTierConfig{};
  const LifetimeResult c = run_lifetime(app, off, 42);
  EXPECT_EQ(c.offered_writes, c.writes_to_failure);
  EXPECT_EQ(c.tier.offered, 0u);
}

TEST(FrontTier, ShardedEngineWithTierDeterministicAcrossThreads) {
  const ThreadGuard guard;
  ShardedEngineConfig cfg;
  cfg.shard_system.device.lines = 65;
  cfg.shard_system.device.endurance_mean = 60;
  cfg.shard_system.device.endurance_cov = 0.2;
  cfg.map.channels = 2;
  cfg.map.banks_per_channel = 4;
  cfg.tenants = 8;
  cfg.seed = 7;
  cfg.queue_capacity = 256;  // several epochs, so dispatch/execute overlap runs
  cfg.tenant_batch = 64;
  cfg.tier = FrontTierConfig::for_kb(8, TierPolicy::kDedup);

  std::uint64_t reference = 0;
  std::uint64_t reference_absorbed = 0;
  for (const std::size_t threads : {1u, 2u, 7u}) {
    set_parallel_threads(threads);
    ShardedPcmEngine engine(cfg);
    engine.add_sampled_tenants({profile_by_name("gcc"), profile_by_name("milc")});
    const ShardedRunResult r = engine.run(6000);
    EXPECT_EQ(r.tier.offered, 6000u);
    EXPECT_GT(r.tier.absorbed(), 0u);
    std::uint64_t absorbed = 0;
    for (const ShardedTenantResult& t : r.tenants) absorbed += t.absorbed_writes;
    EXPECT_EQ(absorbed, r.tier.absorbed());
    if (threads == 1) {
      reference = r.checksum;
      reference_absorbed = absorbed;
    } else {
      EXPECT_EQ(r.checksum, reference) << "threads=" << threads;
      EXPECT_EQ(absorbed, reference_absorbed) << "threads=" << threads;
    }
  }
}

TEST(FrontTier, HierarchyWritebacksFlowThroughTierIntoPcm) {
  // The full loop: CmpSimulator's dirty L2 victims -> tier_writeback_sink ->
  // FrontTier -> pcm_forward_sink -> PcmSystem. Every PCM write must be a
  // tier forward, and the tier's absorption shows up as PCM writes saved.
  SystemConfig sys;
  sys.device.lines = 1025;
  PcmSystem pcm(sys);
  FrontTier tier(FrontTierConfig::for_kb(8, TierPolicy::kComp), pcm_forward_sink(pcm));
  CmpSimulator sim(profile_by_name("gcc"), HierarchyConfig{}, 3,
                   tier_writeback_sink(tier));
  sim.run(150000);
  const FrontTierStats& st = tier.stats();
  EXPECT_GT(st.offered, 0u);
  EXPECT_GT(st.evictions, 0u);
  EXPECT_EQ(pcm.stats().writes, st.evictions + st.flushes);
  EXPECT_EQ(st.offered, st.hits + st.silent_drops + st.inserts);
  EXPECT_LT(pcm.stats().writes, st.offered);
}

TEST(FrontTier, ConfigContractsAreEnforced) {
  EXPECT_THROW(FrontTier(FrontTierConfig{}, [](const FrontTier::Forward&) {}),
               ContractViolation);
  FrontTierConfig cfg = one_set(2, TierPolicy::kLru);
  EXPECT_THROW(FrontTier(cfg, nullptr), ContractViolation);
  cfg.capacity_lines = 1;
  cfg.ways = 4;
  EXPECT_THROW(FrontTier(cfg, [](const FrontTier::Forward&) {}), ContractViolation);

  // put_at arrival order is a contract, matching the controller's.
  FrontTier tier(one_set(2, TierPolicy::kLru), [](const FrontTier::Forward&) {});
  (void)tier.put_at(5, 1, filled(1));
  EXPECT_THROW((void)tier.put_at(4, 2, filled(2)), ContractViolation);
}

}  // namespace
}  // namespace pcmsim
