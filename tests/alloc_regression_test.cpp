// Guards the allocation-free steady-state write path: after warm-up, a
// system.write() (compress -> heuristic -> place -> FnW/DW store, including
// gap moves and fault handling) must never touch the heap. A counting
// operator new would catch any vector sneaking back into the hot loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace pcmsim {
namespace {

/// Mixed traffic: compressible deltas, sparse blocks, and incompressible
/// noise, so every branch of the write path (BDI, FPC, uncompressed store,
/// heuristic flips) runs during the counted phase.
Block make_block(Rng& rng, int flavor) {
  Block b{};
  switch (flavor % 3) {
    case 0:  // base + narrow deltas (BDI territory)
      for (std::size_t i = 0; i < 8; ++i) {
        const std::uint64_t v = 0x1122'3344'0000'0000ull + (rng() & 0xFFFF);
        std::memcpy(b.data() + i * 8, &v, 8);
      }
      break;
    case 1:  // mostly zero words (FPC territory)
      for (std::size_t i = 0; i < 8; i += 2) {
        const std::uint32_t v = static_cast<std::uint32_t>(rng() & 0xFF);
        std::memcpy(b.data() + i * 8, &v, 4);
      }
      break;
    default:  // incompressible
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
      break;
  }
  return b;
}

TEST(AllocRegression, SteadyStateWriteIsAllocationFree) {
  SystemConfig cfg;  // Comp+WF over ECP-6, the paper's headline system
  cfg.device.lines = 1024 + 1;
  cfg.device.endurance_mean = 100;  // wear in real faults during warm-up
  cfg.device.seed = 7;
  cfg.seed = 7;
  PcmSystem system(cfg);
  const auto logical = system.logical_lines();

  // Pre-generate the counted workload: generation itself may allocate.
  Rng rng(42);
  std::vector<std::pair<LineAddr, Block>> events;
  events.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    events.emplace_back(LineAddr{rng.next_below(logical)}, make_block(rng, i));
  }

  // Warm-up: touch every line and push enough traffic through to trigger
  // gap moves, rotation, faults, slides, and the occasional line death.
  for (std::uint64_t l = 0; l < logical; ++l) {
    (void)system.write(LineAddr{l}, make_block(rng, static_cast<int>(l)));
  }
  for (int i = 0; i < 150000; ++i) {
    (void)system.write(LineAddr{rng.next_below(logical)}, make_block(rng, i));
  }
  ASSERT_GT(system.array().total_faults(), 0u) << "warm-up should wear in stuck cells";

  g_alloc_count.store(0);
  g_counting.store(true);
  for (const auto& [addr, data] : events) (void)system.write(addr, data);
  g_counting.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "steady-state write path allocated on the heap";
  EXPECT_GT(system.stats().compressed_writes, 0u);
  EXPECT_GT(system.stats().uncompressed_writes, 0u);
  EXPECT_GT(system.stats().gap_moves, 0u);
}

}  // namespace
}  // namespace pcmsim
