// End-to-end data-integrity sweeps: PcmSystem in functional-verify mode over
// every hard-error scheme and every system mode — each stored line must read
// back bit-exactly even while cells wear out mid-run.
#include <gtest/gtest.h>

#include <map>

#include "core/system.hpp"
#include "workload/trace.hpp"

namespace pcmsim {
namespace {

struct Case {
  const char* ecc;  ///< registry scheme spec (ecc/registry.hpp)
  SystemMode mode;
  const char* app;
  double endurance;
};

class FunctionalSweep : public ::testing::TestWithParam<Case> {};

TEST_P(FunctionalSweep, ReadBackIsExactUnderWear) {
  const auto& param = GetParam();
  SystemConfig cfg;
  cfg.mode = param.mode;
  cfg.ecc_spec = param.ecc;
  cfg.device.lines = 48;
  cfg.device.endurance_mean = param.endurance;
  cfg.device.endurance_cov = 0.15;
  cfg.device.seed = 21;
  cfg.banks = 4;
  cfg.gap_interval = 40;
  cfg.seed = 21;
  cfg.functional_verify = true;
  PcmSystem sys(cfg);

  const auto& app = profile_by_name(param.app);
  TraceGenerator gen(app, sys.logical_lines(), 31);

  std::map<LineAddr, Block> expected;
  for (int i = 0; i < 12000 && !sys.failed(); ++i) {
    const auto ev = gen.next();
    const auto out = sys.write(ev.line, ev.data);
    if (out.stored) {
      expected[ev.line] = ev.data;
    } else {
      expected.erase(ev.line);
    }
    // Migration (gap moves) can kill or drop lines; prune stale entries.
    for (auto it = expected.begin(); it != expected.end();) {
      const auto& meta = sys.line_meta(sys.physical_of(it->first));
      it = (meta.dead || !meta.ever_written) ? expected.erase(it) : std::next(it);
    }
    // Spot-check a line every 50 writes to catch corruption early.
    if (i % 50 == 0 && !expected.empty()) {
      const auto& [line, data] = *expected.begin();
      ASSERT_EQ(sys.read(line), data) << "iteration " << i;
    }
  }
  ASSERT_FALSE(expected.empty());
  for (const auto& [line, data] : expected) {
    EXPECT_EQ(sys.read(line), data);
  }
  if (param.endurance < 120) {
    EXPECT_GT(sys.array().total_faults(), 0u) << "low-endurance case must exercise faults";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndModes, FunctionalSweep,
    ::testing::Values(
        // Every scheme on the full proposal, with wear.
        Case{"ecp6", SystemMode::kCompWF, "milc", 80},
        Case{"safer32", SystemMode::kCompWF, "milc", 80},
        Case{"aegis17x31", SystemMode::kCompWF, "milc", 80},
        // Every mode on ECP-6.
        Case{"ecp6", SystemMode::kBaseline, "gcc", 100},
        Case{"ecp6", SystemMode::kComp, "gcc", 100},
        Case{"ecp6", SystemMode::kCompW, "gcc", 100},
        // SECDED only protects whole lines (Baseline).
        Case{"secded", SystemMode::kBaseline, "astar", 200},
        // High-endurance smoke on the volatile workload (heuristic active).
        Case{"ecp6", SystemMode::kCompWF, "bzip2", 5000},
        Case{"aegis17x31", SystemMode::kCompWF, "zeusmp", 60},
        // Registry extensions: BCH-t erasure correction (10t metadata bits,
        // 2t guaranteed) and word-level coset coding (consumes per-word
        // compression slack, so it needs a compression-enabled mode).
        Case{"ecp12", SystemMode::kCompWF, "milc", 80},
        Case{"bch-t2", SystemMode::kCompWF, "milc", 80},
        Case{"bch-t6", SystemMode::kCompWF, "milc", 80},
        Case{"bch-t6", SystemMode::kCompW, "gcc", 100},
        Case{"coset-w4", SystemMode::kCompWF, "milc", 80},
        Case{"coset-w4", SystemMode::kComp, "gcc", 100},
        Case{"coset-w8", SystemMode::kCompWF, "gcc", 100}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string n = std::string(make_scheme(info.param.ecc)->name()) + "_" +
                      std::string(to_string(info.param.mode)) + "_" + info.param.app;
      for (auto& c : n) {
        if (c == '-' || c == '+' || c == '.') c = '_';
      }
      return n;
    });

TEST(FunctionalEcc, SecdedWithCompressionIsRejected) {
  SystemConfig cfg;
  cfg.ecc_spec = "secded";
  cfg.mode = SystemMode::kCompWF;
  cfg.device.lines = 8;
  EXPECT_THROW(PcmSystem sys(cfg), ContractViolation);
}

TEST(FunctionalEcc, CosetWithoutCompressionIsRejected) {
  SystemConfig cfg;
  cfg.ecc_spec = "coset-w4";
  cfg.mode = SystemMode::kBaseline;
  cfg.device.lines = 8;
  EXPECT_THROW(PcmSystem sys(cfg), ContractViolation);
}

TEST(FunctionalEcc, LegacyEccKindStillSelectsTheSameScheme) {
  SystemConfig cfg;
  cfg.ecc = EccKind::kSafer32;  // deprecated enum path, no spec set
  EXPECT_EQ(cfg.resolved_ecc_spec(), "safer32");
  cfg.ecc_spec = "bch-t2";  // a non-empty spec wins over the enum
  EXPECT_EQ(cfg.resolved_ecc_spec(), "bch-t2");
}

}  // namespace
}  // namespace pcmsim
