// SampledTraceSource calibration against TraceGenerator, plus the value-model
// decomposition identity the sampler's incremental advance relies on.
//
// The two sources share fold_rank / initial_line_shape / ClassAssigner and
// the (line, shape, version) -> Block value function, so class assignment is
// exactly equal and value trajectories are identical functions of state. Only
// the RNG consumption order differs, which leaves the *distributions* —
// line popularity, shape-redraw rate, per-line rewrite counts — equivalent
// without the streams being bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include "trace/sampled_source.hpp"
#include "trace/trace_source.hpp"
#include "workload/app_profile.hpp"
#include "workload/value_model.hpp"

namespace pcmsim {
namespace {

constexpr std::uint64_t kRegion = 512;
constexpr std::uint64_t kSeed = 97;

std::vector<WritebackEvent> drain(TraceSource& source, std::size_t n,
                                  std::size_t batch_size = 256) {
  std::vector<WritebackEvent> out(n);
  std::size_t done = 0;
  while (done < n) {
    const std::size_t want = std::min(batch_size, n - done);
    done += source.next_batch(std::span(out.data() + done, want));
  }
  return out;
}

// The decomposition contract: generate_static_base + apply_dynamic must equal
// generate_value at every version, and reverting the touched words of version
// v then applying version v+1 must equal generate_value at v+1. This is
// precisely the incremental step SampledTraceSource::produce runs.
TEST(ValueModelDecomposition, MatchesFromScratchGenerationIncrementally) {
  for (const char* name : {"gcc", "milc", "lbm", "zeusmp", "mcf"}) {
    const AppProfile& app = profile_by_name(name);
    for (std::uint64_t line = 0; line < 40; ++line) {
      const ValueClassSpec& spec = app.classes[line % app.classes.size()];
      const auto shape = initial_line_shape(line, kSeed);
      const ValueGenContext ctx = make_gen_context(spec, line, shape);
      Block base{};
      generate_static_base(spec, ctx, base);

      Block incremental = base;
      std::uint16_t touched = apply_dynamic(spec, ctx, line, shape, 0, incremental);
      for (std::uint32_t version = 0; version < 24; ++version) {
        ASSERT_EQ(incremental, generate_value(spec, line, shape, version))
            << name << " line " << line << " version " << version;
        // Advance: revert touched words to base, overlay the next version.
        std::uint16_t m = touched;
        while (m != 0) {
          const unsigned w = static_cast<unsigned>(std::countr_zero(m));
          m = static_cast<std::uint16_t>(m & (m - 1));
          std::memcpy(incremental.data() + w * 4, base.data() + w * 4, 4);
        }
        touched = apply_dynamic(spec, ctx, line, shape, version + 1, incremental);
      }
    }
  }
}

TEST(SampledTraceSource, ClassAssignmentMatchesGeneratorExactly) {
  const AppProfile& app = profile_by_name("gcc");
  TraceGenerator gen(app, kRegion, kSeed);
  SampledTraceSource sampled(app, kRegion, kSeed);
  for (std::uint64_t line = 0; line < kRegion; ++line) {
    EXPECT_EQ(&gen.class_of(line) - gen.app().classes.data(),
              &sampled.class_of(line) - sampled.app().classes.data())
        << "line " << line;
  }
}

TEST(SampledTraceSource, PopularityDistributionMatchesGenerator) {
  const AppProfile& app = profile_by_name("milc");
  constexpr std::size_t kEvents = 200000;

  TraceGenerator gen(app, kRegion, kSeed);
  std::vector<std::uint64_t> gen_counts(kRegion, 0);
  for (std::size_t i = 0; i < kEvents; ++i) ++gen_counts[gen.next().line];

  SampledTraceSource sampled(app, kRegion, kSeed);
  std::vector<std::uint64_t> sam_counts(kRegion, 0);
  for (const auto& ev : drain(sampled, kEvents)) ++sam_counts[ev.line];

  // Two-sample KS over the line-index ordering: both sources draw ranks from
  // the same Zipf pmf and fold them with the same hash, so their per-line
  // distributions agree. D_crit at alpha=0.001 for n=m=200k is ~0.0062; 0.02
  // leaves wide margin while still catching any real miscalibration (e.g. a
  // wrong theta changes head mass by far more).
  double cdf_gap = 0.0;
  double cg = 0.0;
  double cs = 0.0;
  for (std::uint64_t line = 0; line < kRegion; ++line) {
    cg += static_cast<double>(gen_counts[line]) / kEvents;
    cs += static_cast<double>(sam_counts[line]) / kEvents;
    cdf_gap = std::max(cdf_gap, std::abs(cg - cs));
  }
  EXPECT_LT(cdf_gap, 0.02);

  // The popular-head mass must also agree pointwise (relative), not just in
  // the aggregate CDF: compare every line that holds >=1% of the traffic.
  for (std::uint64_t line = 0; line < kRegion; ++line) {
    const double pg = static_cast<double>(gen_counts[line]) / kEvents;
    const double ps = static_cast<double>(sam_counts[line]) / kEvents;
    if (pg >= 0.01) {
      EXPECT_NEAR(ps / pg, 1.0, 0.15) << "line " << line;
    }
  }
}

TEST(SampledTraceSource, RedrawAndTouchRatesMatchGenerator) {
  const AppProfile& app = profile_by_name("gcc");
  constexpr std::size_t kEvents = 200000;

  TraceGenerator gen(app, kRegion, kSeed);
  for (std::size_t i = 0; i < kEvents; ++i) (void)gen.next();
  SampledTraceSource sampled(app, kRegion, kSeed);
  (void)drain(sampled, kEvents);

  // Shape redraws happen per *rewrite* with probability shape_redraw_prob in
  // both sources; at 200k events over 512 lines nearly every event is a
  // rewrite, so both rates concentrate tightly around the configured value.
  const double gen_rate = static_cast<double>(gen.shape_redraws()) / kEvents;
  const double sam_rate = static_cast<double>(sampled.shape_redraws()) / kEvents;
  EXPECT_NEAR(gen_rate, app.shape_redraw_prob, 0.2 * app.shape_redraw_prob + 1e-4);
  EXPECT_NEAR(sam_rate, app.shape_redraw_prob, 0.2 * app.shape_redraw_prob + 1e-4);
  EXPECT_NEAR(sam_rate, gen_rate, 0.25 * gen_rate + 1e-4);

  // Both working sets fold onto the same region with the same hash, so the
  // set of lines ever touched is the same size (every fold target is hit
  // eventually; at 200k events both have saturated the reachable set).
  EXPECT_EQ(gen.touched_lines(), sampled.touched_lines());
}

TEST(SampledTraceSource, ValueStreamIsDistributionallyCalibrated) {
  // Same-class lines produce values from the same model, so summary
  // statistics of the value stream — here mean zero-byte fraction, the main
  // driver of compressibility — must agree between sources.
  const AppProfile& app = profile_by_name("zeusmp");
  constexpr std::size_t kEvents = 50000;

  TraceGenerator gen(app, kRegion, kSeed);
  std::uint64_t gen_zeros = 0;
  for (std::size_t i = 0; i < kEvents; ++i) {
    for (const auto b : gen.next().data) gen_zeros += (b == 0);
  }
  SampledTraceSource sampled(app, kRegion, kSeed);
  std::uint64_t sam_zeros = 0;
  for (const auto& ev : drain(sampled, kEvents)) {
    for (const auto b : ev.data) sam_zeros += (b == 0);
  }
  const double gen_frac = static_cast<double>(gen_zeros) / (kEvents * kBlockBytes);
  const double sam_frac = static_cast<double>(sam_zeros) / (kEvents * kBlockBytes);
  EXPECT_NEAR(sam_frac, gen_frac, 0.03) << "gen " << gen_frac << " sam " << sam_frac;
}

TEST(SampledTraceSource, DeterministicAcrossBatchSizesAndReset) {
  const AppProfile& app = profile_by_name("gcc");
  constexpr std::size_t kEvents = 5000;

  SampledTraceSource a(app, kRegion, kSeed);
  SampledTraceSource b(app, kRegion, kSeed);
  const auto ea = drain(a, kEvents, 256);
  const auto eb = drain(b, kEvents, 17);  // ragged batches: same stream
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].line, eb[i].line) << i;
    ASSERT_EQ(ea[i].data, eb[i].data) << i;
  }

  a.reset();
  EXPECT_EQ(a.events(), 0u);
  const auto again = drain(a, kEvents, 64);
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i].line, again[i].line) << i;
    ASSERT_EQ(ea[i].data, again[i].data) << i;
  }
  EXPECT_EQ(a.events(), kEvents);
}

TEST(SampledTraceSource, CurrentValueTracksLastEvent) {
  const AppProfile& app = profile_by_name("milc");
  SampledTraceSource sampled(app, kRegion, kSeed);
  std::vector<Block> last(kRegion);
  bool seen[kRegion] = {};
  for (const auto& ev : drain(sampled, 20000)) {
    last[ev.line] = ev.data;
    seen[ev.line] = true;
  }
  for (std::uint64_t line = 0; line < kRegion; ++line) {
    if (seen[line]) {
      EXPECT_EQ(sampled.current_value(line), last[line]) << "line " << line;
    } else {
      EXPECT_EQ(sampled.current_value(line), zero_block()) << "line " << line;
    }
  }
}

TEST(GeneratorTraceSource, MatchesRawGeneratorBitExactly) {
  const AppProfile& app = profile_by_name("gcc");
  TraceGenerator gen(app, kRegion, kSeed);
  GeneratorTraceSource source(app, kRegion, kSeed);
  const auto events = drain(source, 3000, 100);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const WritebackEvent expect = gen.next();
    ASSERT_EQ(events[i].line, expect.line) << i;
    ASSERT_EQ(events[i].data, expect.data) << i;
  }
  // reset() restores the stream from the top.
  source.reset();
  std::vector<WritebackEvent> head(10);
  (void)source.next_batch(head);
  for (std::size_t i = 0; i < head.size(); ++i) {
    ASSERT_EQ(head[i].line, events[i].line);
    ASSERT_EQ(head[i].data, events[i].data);
  }
}

}  // namespace
}  // namespace pcmsim
