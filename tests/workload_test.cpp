#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "compression/best_of.hpp"
#include "workload/app_profile.hpp"
#include "workload/trace.hpp"

namespace pcmsim {
namespace {

TEST(AppProfiles, AllFifteenWorkloadsPresent) {
  const auto& apps = spec2006_profiles();
  EXPECT_EQ(apps.size(), 15u);
  for (const char* name : {"GemsFDTD", "lbm", "bzip2", "leslie3d", "hmmer", "mcf", "gobmk",
                           "bwaves", "astar", "calculix", "sjeng", "gcc", "zeusmp", "milc",
                           "cactusADM"}) {
    EXPECT_NO_THROW((void)profile_by_name(name));
  }
  EXPECT_THROW((void)profile_by_name("perlbench"), std::out_of_range);
}

TEST(AppProfiles, BucketsMatchTableThree) {
  // CR < 0.3 -> H; CR >= 0.7 -> L; else M (Section IV; Table III labels the
  // 0.70-CR apps GemsFDTD and leslie3d as L).
  for (const auto& app : spec2006_profiles()) {
    if (app.table_cr < 0.3) {
      EXPECT_EQ(app.bucket, Compressibility::kHigh) << app.name;
    } else if (app.table_cr >= 0.7) {
      EXPECT_EQ(app.bucket, Compressibility::kLow) << app.name;
    } else {
      EXPECT_EQ(app.bucket, Compressibility::kMedium) << app.name;
    }
  }
}

TEST(ValueModel, GenerationIsDeterministic) {
  const auto& app = profile_by_name("gcc");
  for (const auto& spec : app.classes) {
    const Block a = generate_value(spec, 123, 456, 7);
    const Block b = generate_value(spec, 123, 456, 7);
    EXPECT_EQ(a, b);
    const Block c = generate_value(spec, 123, 456, 8);
    EXPECT_NE(a, c) << "a rewrite must change the content";
  }
}

TEST(ValueModel, RewritesTouchBoundedWordCount) {
  ValueClassSpec spec;
  spec.cls = ValueClass::kRandom;
  spec.mutate_min = 2;
  spec.mutate_max = 5;
  for (std::uint32_t v = 1; v < 40; ++v) {
    const Block base = generate_value(spec, 9, 1, 0);
    const Block now = generate_value(spec, 9, 1, v);
    std::size_t words_changed = 0;
    for (std::size_t w = 0; w < 16; ++w) {
      if (std::memcmp(base.data() + w * 4, now.data() + w * 4, 4) != 0) ++words_changed;
    }
    EXPECT_GE(words_changed, 1u);
    EXPECT_LE(words_changed, 5u);
  }
}

TEST(TraceGenerator, DeterministicAcrossInstances) {
  const auto& app = profile_by_name("milc");
  TraceGenerator g1(app, 4096, 11);
  TraceGenerator g2(app, 4096, 11);
  for (int i = 0; i < 200; ++i) {
    const auto e1 = g1.next();
    const auto e2 = g2.next();
    EXPECT_EQ(e1.line, e2.line);
    EXPECT_EQ(e1.data, e2.data);
  }
}

TEST(TraceGenerator, AddressesStayInRegion) {
  const auto& app = profile_by_name("lbm");
  TraceGenerator gen(app, 1000, 3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(gen.next().line, 1000u);
  }
}

TEST(TraceGenerator, CurrentValueTracksLastEvent) {
  const auto& app = profile_by_name("hmmer");
  TraceGenerator gen(app, 512, 5);
  std::map<LineAddr, Block> last;
  for (int i = 0; i < 2000; ++i) {
    const auto ev = gen.next();
    last[ev.line] = ev.data;
  }
  for (const auto& [line, data] : last) {
    EXPECT_EQ(gen.current_value(line), data);
  }
}

TEST(TraceGenerator, ZipfSkewConcentratesWrites) {
  const auto& app = profile_by_name("gobmk");  // theta 0.85
  TraceGenerator gen(app, 1 << 14, 9);
  std::map<LineAddr, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[gen.next().line];
  // Top 1% of touched lines should absorb well over 1% of writes.
  std::vector<int> sorted;
  for (const auto& [_, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  const std::size_t top = std::max<std::size_t>(1, sorted.size() / 100);
  int top_writes = 0;
  for (std::size_t i = 0; i < top; ++i) top_writes += sorted[i];
  EXPECT_GT(static_cast<double>(top_writes) / n, 0.05);
}

TEST(TraceFile, RoundTripsThroughDisk) {
  const auto& app = profile_by_name("astar");
  TraceGenerator gen(app, 256, 21);
  const std::string path = ::testing::TempDir() + "/pcmsim_trace_test.bin";
  std::vector<WritebackEvent> events;
  {
    TraceWriter w(path);
    for (int i = 0; i < 300; ++i) {
      events.push_back(gen.next());
      w.append(events.back());
    }
  }
  TraceReader r(path);
  EXPECT_EQ(r.count(), 300u);
  for (const auto& expected : events) {
    const auto got = r.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->line, expected.line);
    EXPECT_EQ(got->data, expected.data);
  }
  EXPECT_FALSE(r.next().has_value());
  std::remove(path.c_str());
}

// Calibration: measured best-of compressed sizes must land near Table III's
// per-app compression ratios. Tolerance is generous here; the fig03 bench
// reports exact values (see EXPERIMENTS.md).
class Calibration : public ::testing::TestWithParam<const char*> {};

TEST_P(Calibration, CompressedSizeNearTableThree) {
  const auto& app = profile_by_name(GetParam());
  TraceGenerator gen(app, 1 << 14, 1234);
  BestOfCompressor best;
  double total = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto ev = gen.next();
    const auto c = best.compress(ev.data);
    total += c ? static_cast<double>(c->size_bytes()) : 64.0;
  }
  const double measured_cr = total / n / 64.0;
  EXPECT_NEAR(measured_cr, app.table_cr, 0.12)
      << app.name << ": measured CR " << measured_cr << " vs Table III " << app.table_cr;
}

INSTANTIATE_TEST_SUITE_P(AllApps, Calibration,
                         ::testing::Values("GemsFDTD", "lbm", "bzip2", "leslie3d", "hmmer",
                                           "mcf", "gobmk", "bwaves", "astar", "calculix",
                                           "sjeng", "gcc", "zeusmp", "milc", "cactusADM"));

TEST(Calibration, SizeVolatilityRankingMatchesFigureSix) {
  // bzip2 and gcc must churn sizes far more than hmmer (Fig 6/7).
  BestOfCompressor best;
  auto change_prob = [&](const char* name) {
    const auto& app = profile_by_name(name);
    TraceGenerator gen(app, 1 << 12, 77);
    std::map<LineAddr, std::size_t> last_size;
    int changes = 0;
    int pairs = 0;
    for (int i = 0; i < 30000; ++i) {
      const auto ev = gen.next();
      const auto c = best.compress(ev.data);
      const std::size_t size = c ? c->size_bytes() : 64;
      const auto it = last_size.find(ev.line);
      if (it != last_size.end()) {
        ++pairs;
        if (it->second != size) ++changes;
      }
      last_size[ev.line] = size;
    }
    return pairs ? static_cast<double>(changes) / pairs : 0.0;
  };
  const double bzip2 = change_prob("bzip2");
  const double gcc = change_prob("gcc");
  const double hmmer = change_prob("hmmer");
  EXPECT_GT(bzip2, hmmer + 0.15);
  EXPECT_GT(gcc, hmmer + 0.15);
}

}  // namespace
}  // namespace pcmsim
