// Cross-cutting property sweeps over the compression substrate, driven by
// the same value classes the workload models use — so the compressors are
// exercised on exactly the content families the experiments rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "compression/best_of.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {
namespace {

struct ClassCase {
  ValueClass cls;
  std::uint8_t plo;
  std::uint8_t phi;
  std::uint8_t aux;
  std::size_t max_expected_size;  // best-of image must stay below this
  bool always_compressible;
};

class PerClass : public ::testing::TestWithParam<ClassCase> {};

TEST_P(PerClass, RoundTripAndSizeEnvelope) {
  const auto& param = GetParam();
  ValueClassSpec spec;
  spec.cls = param.cls;
  spec.param_lo = param.plo;
  spec.param_hi = param.phi;
  spec.aux = param.aux;
  spec.mutate_min = 1;
  spec.mutate_max = 6;

  BestOfCompressor best;
  int compressed = 0;
  int total = 0;
  for (std::uint64_t line = 0; line < 40; ++line) {
    for (std::uint32_t version = 0; version < 10; ++version) {
      const Block b = generate_value(spec, line, 777, version);
      const auto c = best.compress(b);
      ++total;
      if (param.always_compressible) {
        ASSERT_TRUE(c.has_value()) << "line " << line << " v" << version;
      }
      if (c) {
        ++compressed;
        EXPECT_LE(c->size_bytes(), param.max_expected_size);
        EXPECT_EQ(best.decompress(*c), b) << to_string(param.cls);
        EXPECT_LT(c->encoding, 8) << "scheme-local encoding must fit 3 bits";
      }
    }
  }
  if (!param.always_compressible) {
    EXPECT_LT(compressed, total) << "kRandom content should sometimes be incompressible";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ValueClasses, PerClass,
    ::testing::Values(ClassCase{ValueClass::kZeroPage, 0, 3, 0, 16, true},
                      ClassCase{ValueClass::kSmallInt, 1, 2, 0, 24, true},
                      ClassCase{ValueClass::kSmallInt, 4, 4, 0, 40, true},
                      ClassCase{ValueClass::kNarrowInt64, 1, 1, 0, 18, true},
                      ClassCase{ValueClass::kNarrowInt64, 2, 2, 0, 26, true},
                      ClassCase{ValueClass::kNarrowInt64, 4, 4, 0, 42, true},
                      ClassCase{ValueClass::kNarrowInt32, 1, 1, 0, 23, true},
                      ClassCase{ValueClass::kNarrowInt32, 2, 2, 0, 39, true},
                      ClassCase{ValueClass::kPointerHeap, 2, 4, 0, 42, true},
                      ClassCase{ValueClass::kFloatArray, 4, 4, 0, 42, true},
                      ClassCase{ValueClass::kFpcMixed, 8, 10, 4, 48, true},
                      ClassCase{ValueClass::kRandom, 1, 1, 0, 64, false}),
    [](const ::testing::TestParamInfo<ClassCase>& info) {
      std::string name = std::string(to_string(info.param.cls)) + "_p" +
                         std::to_string(info.param.plo) + "_" +
                         std::to_string(info.param.phi) + "_a" +
                         std::to_string(info.param.aux);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// The BEST selector must never be larger than either constituent.
TEST(BestOfProperty, NeverWorseThanEitherScheme) {
  BestOfCompressor best;
  for (const auto& app : spec2006_profiles()) {
    for (const auto& spec : app.classes) {
      for (std::uint64_t line = 0; line < 20; ++line) {
        const Block b = generate_value(spec, line, 99, 3);
        const auto combined = best.compress(b);
        const auto bdi = best.bdi().compress(b);
        const auto fpc = best.fpc().compress(b);
        if (bdi) {
          ASSERT_TRUE(combined.has_value());
          EXPECT_LE(combined->size_bytes(), bdi->size_bytes());
        }
        if (fpc) {
          ASSERT_TRUE(combined.has_value());
          EXPECT_LE(combined->size_bytes(), fpc->size_bytes());
        }
      }
    }
  }
}

// Compressed images must be deterministic: same block, same image.
TEST(BestOfProperty, CompressionIsDeterministic) {
  BestOfCompressor best;
  const auto& app = profile_by_name("gcc");
  for (std::uint64_t line = 0; line < 50; ++line) {
    const Block b = generate_value(app.classes[0], line, 5, 2);
    const auto c1 = best.compress(b);
    const auto c2 = best.compress(b);
    ASSERT_EQ(c1.has_value(), c2.has_value());
    if (c1) {
      EXPECT_EQ(c1->bytes, c2->bytes);
      EXPECT_EQ(c1->scheme, c2->scheme);
      EXPECT_EQ(c1->encoding, c2->encoding);
    }
  }
}

}  // namespace
}  // namespace pcmsim
