// Property tests on the Fig-9 Monte-Carlo engine: failure probability must be
// monotone in fault count, anti-monotone in data size, and ordered across
// schemes the way the paper reports.
#include <gtest/gtest.h>

#include "ecc/aegis.hpp"
#include "ecc/ecp.hpp"
#include "ecc/safer.hpp"
#include "sim/monte_carlo.hpp"

namespace pcmsim {
namespace {

MonteCarloConfig quick() {
  MonteCarloConfig mc;
  mc.trials = 2000;
  return mc;
}

TEST(MonteCarlo, NoFaultsNeverFails) {
  EcpScheme ecp(6);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(mc_failure_probability(ecp, 64, 0, quick(), rng), 0.0);
  EXPECT_DOUBLE_EQ(mc_failure_probability(ecp, 1, 6, quick(), rng), 0.0);
}

TEST(MonteCarlo, FullLineFailsExactlyAboveCapability) {
  EcpScheme ecp(6);
  Rng rng(2);
  EXPECT_DOUBLE_EQ(mc_failure_probability(ecp, 64, 6, quick(), rng), 0.0);
  EXPECT_DOUBLE_EQ(mc_failure_probability(ecp, 64, 7, quick(), rng), 1.0);
}

TEST(MonteCarlo, FailureMonotoneInFaultCount) {
  EcpScheme ecp(6);
  Rng rng(3);
  double prev = 0.0;
  for (std::size_t n = 8; n <= 64; n += 8) {
    const double p = mc_failure_probability(ecp, 32, n, quick(), rng);
    EXPECT_GE(p, prev - 0.05);  // allow MC noise
    prev = p;
  }
  EXPECT_GT(prev, 0.9);
}

TEST(MonteCarlo, SmallerDataToleratesMoreFaults) {
  EcpScheme ecp(6);
  Rng rng(4);
  const double p8 = mc_failure_probability(ecp, 8, 30, quick(), rng);
  const double p32 = mc_failure_probability(ecp, 32, 30, quick(), rng);
  const double p64 = mc_failure_probability(ecp, 64, 30, quick(), rng);
  EXPECT_LT(p8, p32);
  EXPECT_LT(p32, p64);
  EXPECT_DOUBLE_EQ(p64, 1.0);
}

TEST(MonteCarlo, SchemeOrderingMatchesFigureNine) {
  // At 32B data and 24 faults, the paper's ordering is Aegis <= SAFER <= ECP
  // in failure probability.
  EcpScheme ecp(6);
  SaferScheme safer(32);
  AegisScheme aegis(17, 31);
  Rng r1(5);
  Rng r2(5);
  Rng r3(5);
  const double pe = mc_failure_probability(ecp, 32, 24, quick(), r1);
  const double ps = mc_failure_probability(safer, 32, 24, quick(), r2);
  const double pa = mc_failure_probability(aegis, 32, 24, quick(), r3);
  EXPECT_LE(pa, ps + 0.05);
  EXPECT_LT(ps, pe);
}

TEST(MonteCarlo, PaperAnchorEcp32B) {
  // Paper (Fig 9a): with 32-byte data, ECP-6 crosses Pfail = 0.5 around 18
  // faults. Verify the crossover lands in a sane band.
  EcpScheme ecp(6);
  MonteCarloConfig mc;
  mc.trials = 4000;
  Rng rng(6);
  const double p14 = mc_failure_probability(ecp, 32, 14, mc, rng);
  const double p26 = mc_failure_probability(ecp, 32, 26, mc, rng);
  EXPECT_LT(p14, 0.5);
  EXPECT_GT(p26, 0.5);
}

TEST(MonteCarlo, TrialHelperFindsFittingWindow) {
  EcpScheme ecp(6);
  // 30 faults packed into the first 10 bytes: a 16-byte window fits above.
  std::vector<std::uint16_t> pos;
  for (std::uint16_t i = 0; i < 30; ++i) pos.push_back(static_cast<std::uint16_t>(i * 2));
  EXPECT_TRUE(mc_trial_survives(ecp, 16, pos, true));
  EXPECT_TRUE(mc_trial_survives(ecp, 16, pos, false));
  // ...but a 63-byte window cannot dodge the cluster.
  EXPECT_FALSE(mc_trial_survives(ecp, 63, pos, true));
}

TEST(MonteCarlo, WrapWindowsHelpEdgeStraddlingData) {
  EcpScheme ecp(6);
  // Faults in the middle of the line; a 24-byte window fits only if it can
  // wrap around the line end.
  std::vector<std::uint16_t> pos;
  for (std::uint16_t i = 0; i < 30; ++i) {
    pos.push_back(static_cast<std::uint16_t>(170 + i * 6));  // bytes ~21..43
  }
  const bool wrap = mc_trial_survives(ecp, 24, pos, true);
  const bool nowrap = mc_trial_survives(ecp, 24, pos, false);
  EXPECT_TRUE(wrap || nowrap);
  EXPECT_TRUE(!nowrap || wrap) << "wrap must dominate non-wrap";
}

}  // namespace
}  // namespace pcmsim
