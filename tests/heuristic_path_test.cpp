// Heuristic-path equivalence: the Figure-8 write decision and its per-line
// 2-bit saturating counter must evolve identically whether the compressed
// size comes from the legacy materialize-first path (full compress(), then
// read size_bytes()) or from the size-only plan() probe the write path now
// uses. Deferred materialization can only be observationally equivalent if
// this holds for whole decision *sequences*, since each decision feeds the
// next through old_size and SC.
#include <gtest/gtest.h>

#include <vector>

#include "compression/best_of.hpp"
#include "core/heuristic.hpp"
#include "workload/trace.hpp"

namespace pcmsim {
namespace {

struct LineState {
  std::uint8_t sc = 0;
  std::uint8_t size_bytes = kBlockBytes;
  bool ever_written = false;
};

/// One Figure-8 step given a compressed size probe, mirroring
/// PcmSystem::write's bookkeeping (old_size = stored size, SC persisted).
WriteDecision step(const HeuristicConfig& cfg, LineState& st,
                   const std::optional<std::size_t>& comp_size) {
  if (!comp_size) {
    // Incompressible: stored raw, no heuristic step (as in PcmSystem::write).
    st.size_bytes = kBlockBytes;
    st.ever_written = true;
    return WriteDecision{false, st.sc};
  }
  const auto size = static_cast<std::uint8_t>(*comp_size);
  const std::uint8_t old_size = st.ever_written ? st.size_bytes : kBlockBytes;
  const auto decision = decide_write(cfg, size, old_size, st.sc);
  st.sc = decision.new_sc;
  st.size_bytes = decision.store_compressed ? size : kBlockBytes;
  st.ever_written = true;
  return decision;
}

void run_app(const std::string& app_name, const HeuristicConfig& cfg, int writes) {
  const AppProfile& app = profile_by_name(app_name);
  BestOfCompressor best;
  TraceGenerator gen(app, 1 << 12, 0xFEEDu);

  std::vector<LineState> legacy(1 << 12);
  std::vector<LineState> planned(1 << 12);
  for (int i = 0; i < writes; ++i) {
    const auto ev = gen.next();
    const auto idx = static_cast<std::size_t>(ev.line);

    // Legacy path: materialize first, then decide on the image's size.
    const auto image = best.compress(ev.data);
    const auto legacy_size =
        image ? std::optional<std::size_t>(image->size_bytes()) : std::nullopt;
    const auto a = step(cfg, legacy.at(idx), legacy_size);

    // Size-only path: decide on the plan's size, no materialization.
    const auto plan = best.plan(ev.data);
    const auto plan_size = plan ? std::optional<std::size_t>(plan->size_bytes()) : std::nullopt;
    const auto b = step(cfg, planned.at(idx), plan_size);

    ASSERT_EQ(legacy_size, plan_size) << app_name << " write " << i;
    ASSERT_EQ(a.store_compressed, b.store_compressed) << app_name << " write " << i;
    ASSERT_EQ(a.new_sc, b.new_sc) << app_name << " write " << i;
  }
  for (std::size_t l = 0; l < legacy.size(); ++l) {
    ASSERT_EQ(legacy[l].sc, planned[l].sc) << app_name << " line " << l;
    ASSERT_EQ(legacy[l].size_bytes, planned[l].size_bytes) << app_name << " line " << l;
  }
}

TEST(HeuristicPath, SizeOnlyDecisionsMatchMaterializeFirst) {
  const HeuristicConfig cfg;  // paper defaults (threshold1=16, threshold2=8)
  for (const char* app : {"gcc", "milc", "lbm", "zeusmp"}) {
    run_app(app, cfg, 20000);
  }
}

TEST(HeuristicPath, SizeOnlyDecisionsMatchUnderAblatedThresholds) {
  // The ablation bench's alternative configurations stress different branches
  // of Figure 8 (threshold3 cut-off, Figure-8-only SC updates).
  HeuristicConfig cfg;
  cfg.threshold1_bytes = 24;
  cfg.threshold2_bytes = 4;
  cfg.threshold3_bytes = 56;
  cfg.update_always = false;
  for (const char* app : {"gcc", "milc"}) {
    run_app(app, cfg, 20000);
  }
}

}  // namespace
}  // namespace pcmsim
