#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller/controller.hpp"

namespace pcmsim {
namespace {

MemRequest read_at(std::uint64_t cycle, std::uint32_t bank = 0, std::uint32_t decomp = 0) {
  MemRequest r;
  r.arrival_cycle = cycle;
  r.is_read = true;
  r.bank = bank;
  r.decompression_cpu_cycles = decomp;
  return r;
}

MemRequest write_at(std::uint64_t cycle, std::uint32_t bank = 0) {
  MemRequest w;
  w.arrival_cycle = cycle;
  w.is_read = false;
  w.bank = bank;
  return w;
}

TEST(Controller, IdleReadTakesServiceLatency) {
  MemoryController mc({});
  mc.submit(read_at(100));
  mc.finish();
  EXPECT_EQ(mc.read_latency().count(), 1u);
  EXPECT_DOUBLE_EQ(mc.read_latency().mean(), static_cast<double>(mc.read_service_cycles()));
}

TEST(Controller, BackToBackReadsQueueUp) {
  MemoryController mc({});
  mc.submit(read_at(0));
  mc.submit(read_at(0));
  mc.submit(read_at(0));
  mc.finish();
  const double svc = mc.read_service_cycles();
  EXPECT_DOUBLE_EQ(mc.read_latency().mean(), (svc + 2 * svc + 3 * svc) / 3.0);
}

TEST(Controller, BanksServeInParallel) {
  MemoryController mc({});
  mc.submit(read_at(0, 0));
  mc.submit(read_at(0, 1));
  mc.finish();
  EXPECT_DOUBLE_EQ(mc.read_latency().max(), static_cast<double>(mc.read_service_cycles()));
}

TEST(Controller, DecompressionAddsConvertedCycles) {
  ControllerConfig cfg;  // 400 MHz controller, 2.5 GHz CPU -> 6.25 CPU/cycle
  MemoryController plain(cfg);
  plain.submit(read_at(0, 0, 0));
  plain.finish();
  MemoryController fpc(cfg);
  fpc.submit(read_at(0, 0, 5));
  fpc.finish();
  EXPECT_NEAR(fpc.read_latency().mean() - plain.read_latency().mean(), 5.0 * 0.4 / 2.5, 1e-9);
}

TEST(Controller, ReadsPrioritizedOverQueuedWrites) {
  MemoryController mc({});
  mc.submit(write_at(0));
  mc.submit(write_at(0));  // both buffered; bank takes the first
  mc.submit(read_at(1));   // must bypass the remaining queued write
  mc.finish();
  // One write may already occupy the bank, but the read must not also wait
  // behind the second write.
  EXPECT_LT(mc.read_latency().mean(),
            static_cast<double>(mc.write_service_cycles() * 2 + mc.read_service_cycles()));
}

TEST(Controller, WatermarkForcesWriteDrain) {
  ControllerConfig cfg;
  cfg.write_drain_watermark = 4;
  cfg.write_queue_cap = 8;
  MemoryController mc(cfg);
  for (int i = 0; i < 6; ++i) mc.submit(write_at(0));
  mc.submit(read_at(0));  // queue above watermark: writes drain first
  mc.finish();
  EXPECT_GT(mc.read_latency().mean(), static_cast<double>(mc.write_service_cycles()));
}

TEST(Controller, FullWriteQueueBackpressures) {
  ControllerConfig cfg;
  cfg.write_queue_cap = 4;
  cfg.write_drain_watermark = 4;
  MemoryController mc(cfg);
  for (int i = 0; i < 20; ++i) mc.submit(write_at(0));
  mc.finish();
  EXPECT_EQ(mc.write_latency().count(), 20u);
}

TEST(Controller, RejectsOutOfOrderArrivals) {
  MemoryController mc({});
  mc.submit(read_at(100));
  EXPECT_THROW(mc.submit(read_at(50)), ContractViolation);
}

TEST(Controller, EqualCycleArrivalsAreInOrder) {
  // Non-decreasing, not strictly increasing: same-cycle bursts are legal.
  MemoryController mc({});
  mc.submit(read_at(100));
  EXPECT_NO_THROW(mc.submit(read_at(100, 1)));
}

TEST(Controller, RejectsSubmitAfterFinish) {
  MemoryController mc({});
  mc.submit(read_at(0));
  mc.finish();
  EXPECT_THROW(mc.submit(read_at(1000)), ContractViolation);
}

TEST(Controller, RejectsBankOutOfRange) {
  ControllerConfig cfg;
  cfg.banks = 4;
  MemoryController mc(cfg);
  EXPECT_THROW(mc.submit(read_at(0, 4)), ContractViolation);
}

TEST(Controller, ExactlyAtWatermarkForcesDrain) {
  // The drain condition is >= watermark: a queue holding exactly the
  // watermark count must already block reads behind the forced write drain.
  ControllerConfig cfg;
  cfg.write_drain_watermark = 4;
  cfg.write_queue_cap = 8;
  // The first write services at submit time (idle bank), so +1 write leaves
  // exactly `watermark` (resp. watermark-1) entries queued at the read's
  // arrival.
  MemoryController at(cfg);
  for (int i = 0; i < 5; ++i) at.submit(write_at(0));
  at.submit(read_at(0));
  at.finish();

  MemoryController below(cfg);
  for (int i = 0; i < 4; ++i) below.submit(write_at(0));
  below.submit(read_at(0));
  below.finish();

  // One below the watermark the read bypasses the queued writes (it waits at
  // most behind the write already occupying the bank); exactly at the
  // watermark it waits behind the full forced drain.
  EXPECT_GT(at.read_latency().mean(),
            static_cast<double>(3 * at.write_service_cycles()));
  EXPECT_LE(below.read_latency().mean(),
            static_cast<double>(below.write_service_cycles() + below.read_service_cycles()));
}

TEST(Controller, QueueFullStallDelaysArrival) {
  // A full write queue back-pressures the producer: the overflowing request's
  // effective arrival is pushed to the cycle a slot freed, so its latency is
  // measured from when it could actually enter the queue, not from cycle 0.
  ControllerConfig cfg;
  cfg.write_queue_cap = 4;
  cfg.write_drain_watermark = 4;
  MemoryController mc(cfg);
  for (int i = 0; i < 6; ++i) mc.submit(write_at(0));
  mc.finish();
  const double svc = mc.write_service_cycles();
  EXPECT_EQ(mc.write_latency().count(), 6u);
  // Trace: w1 services at submit; w2..w5 queue (w5 fills the queue). w6
  // stalls until w2 drains at 2*svc, enters, and services at 5*svc-6*svc —
  // latency 4*svc. The longest wait is w5's full-queue 5*svc; without the
  // arrival adjustment w6 would be charged 6*svc from cycle 0.
  EXPECT_DOUBLE_EQ(mc.write_latency().max(), 5 * svc);
}

TEST(Controller, DrainAtFinishFlushesBelowWatermarkWrites) {
  // Writes parked below the watermark with no reads pending drain
  // opportunistically; finish() must account every one of them exactly once
  // and record the cycle the last bank went idle.
  ControllerConfig cfg;
  cfg.write_drain_watermark = 28;
  MemoryController mc(cfg);
  for (int i = 0; i < 5; ++i) mc.submit(write_at(10, static_cast<std::uint32_t>(i % 2)));
  mc.finish();
  EXPECT_EQ(mc.write_latency().count(), 5u);
  EXPECT_GE(mc.drained_at(), 10u + mc.write_service_cycles());
  EXPECT_EQ(mc.busy_cycles(), 5u * mc.write_service_cycles());
}

TEST(Controller, BusyCyclesSumServicedBursts) {
  MemoryController mc({});
  mc.submit(read_at(0, 0));
  mc.submit(write_at(0, 1));
  mc.submit(read_at(5, 2));
  mc.finish();
  EXPECT_EQ(mc.busy_cycles(),
            2u * mc.read_service_cycles() + mc.write_service_cycles());
}

TEST(Controller, SteadyStreamStaysStable) {
  // Below-saturation Bernoulli arrivals must produce a bounded mean latency.
  ControllerConfig cfg;
  MemoryController mc(cfg);
  Rng rng(3);
  for (std::uint64_t cycle = 0; cycle < 200000; ++cycle) {
    if (rng.next_bool(0.04)) {
      mc.submit(read_at(cycle, static_cast<std::uint32_t>(rng.next_below(cfg.banks))));
    }
    if (rng.next_bool(0.02)) {
      mc.submit(write_at(cycle, static_cast<std::uint32_t>(rng.next_below(cfg.banks))));
    }
  }
  mc.finish();
  EXPECT_GT(mc.read_latency().count(), 5000u);
  EXPECT_LT(mc.read_latency().mean(), 5.0 * mc.read_service_cycles());
}

}  // namespace
}  // namespace pcmsim
