#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller/controller.hpp"

namespace pcmsim {
namespace {

MemRequest read_at(std::uint64_t cycle, std::uint32_t bank = 0, std::uint32_t decomp = 0) {
  MemRequest r;
  r.arrival_cycle = cycle;
  r.is_read = true;
  r.bank = bank;
  r.decompression_cpu_cycles = decomp;
  return r;
}

MemRequest write_at(std::uint64_t cycle, std::uint32_t bank = 0) {
  MemRequest w;
  w.arrival_cycle = cycle;
  w.is_read = false;
  w.bank = bank;
  return w;
}

TEST(Controller, IdleReadTakesServiceLatency) {
  MemoryController mc({});
  mc.submit(read_at(100));
  mc.finish();
  EXPECT_EQ(mc.read_latency().count(), 1u);
  EXPECT_DOUBLE_EQ(mc.read_latency().mean(), static_cast<double>(mc.read_service_cycles()));
}

TEST(Controller, BackToBackReadsQueueUp) {
  MemoryController mc({});
  mc.submit(read_at(0));
  mc.submit(read_at(0));
  mc.submit(read_at(0));
  mc.finish();
  const double svc = mc.read_service_cycles();
  EXPECT_DOUBLE_EQ(mc.read_latency().mean(), (svc + 2 * svc + 3 * svc) / 3.0);
}

TEST(Controller, BanksServeInParallel) {
  MemoryController mc({});
  mc.submit(read_at(0, 0));
  mc.submit(read_at(0, 1));
  mc.finish();
  EXPECT_DOUBLE_EQ(mc.read_latency().max(), static_cast<double>(mc.read_service_cycles()));
}

TEST(Controller, DecompressionAddsConvertedCycles) {
  ControllerConfig cfg;  // 400 MHz controller, 2.5 GHz CPU -> 6.25 CPU/cycle
  MemoryController plain(cfg);
  plain.submit(read_at(0, 0, 0));
  plain.finish();
  MemoryController fpc(cfg);
  fpc.submit(read_at(0, 0, 5));
  fpc.finish();
  EXPECT_NEAR(fpc.read_latency().mean() - plain.read_latency().mean(), 5.0 * 0.4 / 2.5, 1e-9);
}

TEST(Controller, ReadsPrioritizedOverQueuedWrites) {
  MemoryController mc({});
  mc.submit(write_at(0));
  mc.submit(write_at(0));  // both buffered; bank takes the first
  mc.submit(read_at(1));   // must bypass the remaining queued write
  mc.finish();
  // One write may already occupy the bank, but the read must not also wait
  // behind the second write.
  EXPECT_LT(mc.read_latency().mean(),
            static_cast<double>(mc.write_service_cycles() * 2 + mc.read_service_cycles()));
}

TEST(Controller, WatermarkForcesWriteDrain) {
  ControllerConfig cfg;
  cfg.write_drain_watermark = 4;
  cfg.write_queue_cap = 8;
  MemoryController mc(cfg);
  for (int i = 0; i < 6; ++i) mc.submit(write_at(0));
  mc.submit(read_at(0));  // queue above watermark: writes drain first
  mc.finish();
  EXPECT_GT(mc.read_latency().mean(), static_cast<double>(mc.write_service_cycles()));
}

TEST(Controller, FullWriteQueueBackpressures) {
  ControllerConfig cfg;
  cfg.write_queue_cap = 4;
  cfg.write_drain_watermark = 4;
  MemoryController mc(cfg);
  for (int i = 0; i < 20; ++i) mc.submit(write_at(0));
  mc.finish();
  EXPECT_EQ(mc.write_latency().count(), 20u);
}

TEST(Controller, RejectsOutOfOrderArrivals) {
  MemoryController mc({});
  mc.submit(read_at(100));
  EXPECT_THROW(mc.submit(read_at(50)), ContractViolation);
}

TEST(Controller, SteadyStreamStaysStable) {
  // Below-saturation Bernoulli arrivals must produce a bounded mean latency.
  ControllerConfig cfg;
  MemoryController mc(cfg);
  Rng rng(3);
  for (std::uint64_t cycle = 0; cycle < 200000; ++cycle) {
    if (rng.next_bool(0.04)) {
      mc.submit(read_at(cycle, static_cast<std::uint32_t>(rng.next_below(cfg.banks))));
    }
    if (rng.next_bool(0.02)) {
      mc.submit(write_at(cycle, static_cast<std::uint32_t>(rng.next_below(cfg.banks))));
    }
  }
  mc.finish();
  EXPECT_GT(mc.read_latency().count(), 5000u);
  EXPECT_LT(mc.read_latency().mean(), 5.0 * mc.read_service_cycles());
}

}  // namespace
}  // namespace pcmsim
