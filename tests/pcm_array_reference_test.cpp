// Differential reference-model test for the word-level PcmArray write kernel.
//
// ReferenceArray is a deliberately naive, definitional implementation: one
// cell per vector slot, one branchy loop per bit, faults born inline. It
// replays the exact constructor sampling and per-bit RNG draw order the real
// array uses (draws happen only at fault birth, ascending bit order within a
// write), so after any operation sequence the two must agree on every value,
// stuck flag, endurance counter, result field, and global tally — bit for
// bit. Any divergence means the fast path's watermark proof or its masked
// XOR/popcount algebra is wrong.
#include "pcm/array.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"

namespace pcmsim {
namespace {

/// Definitional per-cell model of PcmArray. Mirrors the documented contract,
/// not the implementation: differential write, one endurance unit per pulse,
/// stuck-at latch on exhaustion with an RNG draw for the latched value.
class ReferenceArray {
 public:
  explicit ReferenceArray(const PcmDeviceConfig& config) : config_(config), rng_(config.seed) {
    const std::size_t cells = config.lines * kLineTotalBits;
    value_.assign(cells, 0);
    stuck_.assign(cells, 0);
    endurance_.resize(cells);
    for (auto& e : endurance_) {
      const double sample =
          rng_.next_lognormal_mean_cov(config.endurance_mean, config.endurance_cov);
      const double clamped = std::clamp(
          sample, 1.0, static_cast<double>(std::numeric_limits<std::uint16_t>::max()));
      e = static_cast<std::uint16_t>(clamped);
    }
  }

  PcmWriteResult write_range(std::size_t line, std::size_t bit_off,
                             std::span<const std::uint8_t> data, std::size_t nbits) {
    PcmWriteResult result;
    for (std::size_t i = 0; i < nbits; ++i) {
      const bool want = (data[i / 8] >> (i % 8)) & 1u;
      const std::size_t idx = line * kLineTotalBits + bit_off + i;
      if (stuck_[idx]) {
        if (value_[idx] != static_cast<std::uint8_t>(want)) ++result.mismatched_bits;
        continue;
      }
      if (value_[idx] == static_cast<std::uint8_t>(want)) continue;
      ++result.programmed_bits;
      ++total_programmed_;
      if (want) {
        ++total_set_;
      } else {
        ++total_reset_;
      }
      if (endurance_[idx] > 1) {
        --endurance_[idx];
        value_[idx] = want;
        continue;
      }
      endurance_[idx] = 0;
      stuck_[idx] = 1;
      ++result.new_faults;
      ++total_faults_;
      const bool stuck_value = !rng_.next_bool(config_.stuck_at_reset_fraction);
      value_[idx] = stuck_value;
      if (stuck_value != want) ++result.mismatched_bits;
    }
    return result;
  }

  void inject_fault(std::size_t line, std::size_t bit, bool stuck_value) {
    const std::size_t idx = line * kLineTotalBits + bit;
    if (!stuck_[idx]) {
      stuck_[idx] = 1;
      ++total_faults_;
    }
    endurance_[idx] = 0;
    value_[idx] = stuck_value;
  }

  [[nodiscard]] bool read_bit(std::size_t line, std::size_t bit) const {
    return value_[line * kLineTotalBits + bit] != 0;
  }
  [[nodiscard]] bool is_stuck(std::size_t line, std::size_t bit) const {
    return stuck_[line * kLineTotalBits + bit] != 0;
  }
  [[nodiscard]] std::uint32_t remaining_endurance(std::size_t line, std::size_t bit) const {
    return endurance_[line * kLineTotalBits + bit];
  }
  [[nodiscard]] std::uint64_t total_programmed_bits() const { return total_programmed_; }
  [[nodiscard]] std::uint64_t total_faults() const { return total_faults_; }
  [[nodiscard]] std::uint64_t total_set_pulses() const { return total_set_; }
  [[nodiscard]] std::uint64_t total_reset_pulses() const { return total_reset_; }

 private:
  PcmDeviceConfig config_;
  std::vector<std::uint8_t> value_;
  std::vector<std::uint8_t> stuck_;
  std::vector<std::uint16_t> endurance_;
  Rng rng_;
  std::uint64_t total_programmed_ = 0;
  std::uint64_t total_faults_ = 0;
  std::uint64_t total_set_ = 0;
  std::uint64_t total_reset_ = 0;
};

void expect_same_state(const PcmArray& real, const ReferenceArray& ref, std::size_t lines) {
  for (std::size_t line = 0; line < lines; ++line) {
    for (std::size_t bit = 0; bit < kLineTotalBits; ++bit) {
      ASSERT_EQ(real.read_bit(line, bit), ref.read_bit(line, bit))
          << "value mismatch at line " << line << " bit " << bit;
      ASSERT_EQ(real.is_stuck(line, bit), ref.is_stuck(line, bit))
          << "stuck mismatch at line " << line << " bit " << bit;
      ASSERT_EQ(real.remaining_endurance(line, bit), ref.remaining_endurance(line, bit))
          << "endurance mismatch at line " << line << " bit " << bit;
    }
  }
  EXPECT_EQ(real.total_programmed_bits(), ref.total_programmed_bits());
  EXPECT_EQ(real.total_faults(), ref.total_faults());
  EXPECT_EQ(real.total_set_pulses(), ref.total_set_pulses());
  EXPECT_EQ(real.total_reset_pulses(), ref.total_reset_pulses());
}

/// The watermark must never exceed the endurance of any live data cell (it is
/// a lower bound; vacuously fine when the line has no live data cells).
void expect_watermark_invariant(const PcmArray& real, std::size_t lines) {
  for (std::size_t line = 0; line < lines; ++line) {
    const std::uint32_t wm = real.endurance_watermark(line);
    for (std::size_t bit = 0; bit < kBlockBits; ++bit) {
      if (real.is_stuck(line, bit)) continue;
      ASSERT_LE(wm, real.remaining_endurance(line, bit))
          << "watermark above live-cell endurance at line " << line << " bit " << bit;
    }
  }
}

/// Drives both models through an identical randomized operation sequence and
/// checks agreement after every operation, full state periodically.
void run_differential(const PcmDeviceConfig& cfg, std::size_t ops, bool with_injects,
                      std::uint64_t driver_seed) {
  PcmArray real(cfg);
  ReferenceArray ref(cfg);
  expect_same_state(real, ref, cfg.lines);

  Rng driver(driver_seed);
  std::vector<std::uint8_t> data(kLineTotalBits / 8);
  for (std::size_t op = 0; op < ops; ++op) {
    const std::size_t line = driver.next_below(cfg.lines);
    if (with_injects && driver.next_below(16) == 0) {
      const std::size_t bit = driver.next_below(kLineTotalBits);
      const bool v = driver.next_bool(0.5);
      real.inject_fault(line, bit, v);
      ref.inject_fault(line, bit, v);
    } else {
      // Mix of range shapes: aligned full-block (the fast path's steady
      // state), arbitrary unaligned, and full-line including the ECC area
      // (always the slow path).
      std::size_t bit_off = 0;
      std::size_t nbits = 0;
      switch (driver.next_below(4)) {
        case 0:
          nbits = kBlockBits;
          break;
        case 1:
          nbits = kLineTotalBits;
          break;
        default:
          bit_off = driver.next_below(kLineTotalBits);
          nbits = 1 + driver.next_below(kLineTotalBits - bit_off);
          break;
      }
      for (auto& b : data) b = static_cast<std::uint8_t>(driver.next_below(256));
      const PcmWriteResult r_real = real.write_range(line, bit_off, data, nbits);
      const PcmWriteResult r_ref = ref.write_range(line, bit_off, data, nbits);
      ASSERT_EQ(r_real.programmed_bits, r_ref.programmed_bits) << "op " << op;
      ASSERT_EQ(r_real.new_faults, r_ref.new_faults) << "op " << op;
      ASSERT_EQ(r_real.mismatched_bits, r_ref.mismatched_bits) << "op " << op;
    }
    EXPECT_EQ(real.total_programmed_bits(), ref.total_programmed_bits()) << "op " << op;
    EXPECT_EQ(real.total_faults(), ref.total_faults()) << "op " << op;
    if (op % 64 == 0) {
      expect_same_state(real, ref, cfg.lines);
      expect_watermark_invariant(real, cfg.lines);
    }
  }
  expect_same_state(real, ref, cfg.lines);
  expect_watermark_invariant(real, cfg.lines);
}

TEST(PcmArrayReference, FaultFreeFastPathIsBitIdentical) {
  // Endurance far above the write count: every data-area write takes the
  // watermark fast path, and the models must still agree cell for cell.
  PcmDeviceConfig cfg;
  cfg.lines = 4;
  cfg.endurance_mean = 5000;
  cfg.endurance_cov = 0.2;
  cfg.seed = 11;
  run_differential(cfg, 600, /*with_injects=*/false, /*driver_seed=*/101);
}

TEST(PcmArrayReference, WearOutAndFaultBirthMatchDefinitionalModel) {
  // Endurance low enough that cells wear out mid-run: exercises the slow
  // path, fault births (and their RNG draw order), and the watermark rebuild
  // that re-arms the fast path between births.
  PcmDeviceConfig cfg;
  cfg.lines = 6;
  cfg.endurance_mean = 40;
  cfg.endurance_cov = 0.3;
  cfg.seed = 7;
  run_differential(cfg, 2500, /*with_injects=*/false, /*driver_seed=*/202);
}

TEST(PcmArrayReference, InjectedFaultsInterleavedWithWrites) {
  // inject_fault invalidates the placement caches and removes cells from the
  // watermark's live set without a rebuild; interleaving it with wear-out
  // writes must keep both models and the invariant in lockstep.
  PcmDeviceConfig cfg;
  cfg.lines = 5;
  cfg.endurance_mean = 60;
  cfg.endurance_cov = 0.25;
  cfg.seed = 23;
  run_differential(cfg, 2000, /*with_injects=*/true, /*driver_seed=*/303);
}

TEST(PcmArrayReference, WatermarkDecrementsOnFastPathWrites) {
  PcmDeviceConfig cfg;
  cfg.lines = 1;
  cfg.endurance_mean = 1000;
  cfg.endurance_cov = 0.0;
  cfg.seed = 3;
  PcmArray a(cfg);
  const std::uint32_t wm0 = a.endurance_watermark(0);
  ASSERT_GE(wm0, 2u);
  std::vector<std::uint8_t> ones(kBlockBytes, 0xFF);
  std::vector<std::uint8_t> zeros(kBlockBytes, 0x00);
  a.write_range(0, 0, ones, kBlockBits);
  EXPECT_EQ(a.endurance_watermark(0), wm0 - 1);
  // A write that programs nothing must not burn watermark headroom.
  a.write_range(0, 0, ones, kBlockBits);
  EXPECT_EQ(a.endurance_watermark(0), wm0 - 1);
  a.write_range(0, 0, zeros, kBlockBits);
  EXPECT_EQ(a.endurance_watermark(0), wm0 - 2);
}

}  // namespace
}  // namespace pcmsim
