// System-level invariants checked across modes and seeds: accounting must
// balance, dead fractions stay bounded, runs are reproducible, and the
// per-mode feature switches derived from SystemMode hold.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "core/system.hpp"
#include "workload/trace.hpp"

namespace pcmsim {
namespace {

SystemConfig cfg_for(SystemMode mode, std::uint64_t seed, double endurance = 120.0) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.device.lines = 96;
  cfg.device.endurance_mean = endurance;
  cfg.device.endurance_cov = 0.15;
  cfg.device.seed = seed;
  cfg.banks = 4;
  cfg.gap_interval = 50;
  cfg.seed = seed;
  return cfg;
}

class AllModes : public ::testing::TestWithParam<SystemMode> {};

TEST_P(AllModes, AccountingBalances) {
  PcmSystem sys(cfg_for(GetParam(), 3));
  const auto& app = profile_by_name("gcc");
  TraceGenerator gen(app, sys.logical_lines(), 3);
  for (int i = 0; i < 40000 && !sys.failed(); ++i) {
    const auto ev = gen.next();
    (void)sys.write(ev.line, ev.data);
  }
  const auto& st = sys.stats();
  // Every accepted write is stored exactly once; drops and deaths cover the rest.
  EXPECT_LE(st.compressed_writes + st.uncompressed_writes + st.dropped_writes, st.writes);
  const std::uint64_t failed_writes =
      st.writes - st.compressed_writes - st.uncompressed_writes - st.dropped_writes;
  // Failed writes are first deaths or failed recycle attempts on dead lines;
  // either way at least one uncorrectable event must have been recorded.
  if (failed_writes > 0) {
    EXPECT_GT(st.uncorrectable_events, 0u);
  }
  // Dead-line count must match a direct scan.
  std::uint64_t dead_scan = 0;
  for (std::uint64_t p = 0; p < sys.config().device.lines; ++p) {
    dead_scan += sys.line_meta(p).dead ? 1u : 0u;
  }
  EXPECT_EQ(dead_scan, st.lines_dead);
  EXPECT_GE(sys.dead_fraction(), 0.0);
  EXPECT_LE(sys.dead_fraction(), 1.0);
}

TEST_P(AllModes, RunsAreReproducible) {
  const auto mode = GetParam();
  auto run = [&](std::uint64_t seed) {
    PcmSystem sys(cfg_for(mode, seed));
    const auto& app = profile_by_name("milc");
    TraceGenerator gen(app, sys.logical_lines(), seed);
    for (int i = 0; i < 20000 && !sys.failed(); ++i) {
      const auto ev = gen.next();
      (void)sys.write(ev.line, ev.data);
    }
    return std::tuple(sys.stats().writes, sys.stats().lines_dead,
                      sys.array().total_programmed_bits(), sys.array().total_faults());
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(std::get<2>(run(7)), std::get<2>(run(8)));
}

TEST_P(AllModes, FeatureSwitchesMatchMode) {
  const auto cfg = cfg_for(GetParam(), 1);
  switch (cfg.mode) {
    case SystemMode::kBaseline:
      EXPECT_FALSE(cfg.compression_enabled());
      EXPECT_FALSE(cfg.rotation_enabled());
      EXPECT_FALSE(cfg.heuristic_enabled());
      EXPECT_FALSE(cfg.recycling_enabled());
      break;
    case SystemMode::kComp:
      EXPECT_TRUE(cfg.compression_enabled());
      EXPECT_FALSE(cfg.rotation_enabled());
      EXPECT_FALSE(cfg.heuristic_enabled());
      EXPECT_FALSE(cfg.recycling_enabled());
      break;
    case SystemMode::kCompW:
      EXPECT_TRUE(cfg.compression_enabled());
      EXPECT_TRUE(cfg.rotation_enabled());
      EXPECT_FALSE(cfg.heuristic_enabled());
      EXPECT_FALSE(cfg.recycling_enabled());
      break;
    case SystemMode::kCompWF:
      EXPECT_TRUE(cfg.compression_enabled());
      EXPECT_TRUE(cfg.rotation_enabled());
      EXPECT_TRUE(cfg.heuristic_enabled());
      EXPECT_TRUE(cfg.recycling_enabled());
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, AllModes,
                         ::testing::Values(SystemMode::kBaseline, SystemMode::kComp,
                                           SystemMode::kCompW, SystemMode::kCompWF),
                         [](const ::testing::TestParamInfo<SystemMode>& info) {
                           std::string n(to_string(info.param));
                           n.erase(std::remove(n.begin(), n.end(), '+'), n.end());
                           return n;
                         });

TEST(SystemInvariants, NonRecyclingModesNeverRevive) {
  for (auto mode : {SystemMode::kBaseline, SystemMode::kComp, SystemMode::kCompW}) {
    PcmSystem sys(cfg_for(mode, 5, /*endurance=*/60.0));
    const auto& app = profile_by_name("lbm");
    TraceGenerator gen(app, sys.logical_lines(), 5);
    std::uint64_t max_dead = 0;
    for (int i = 0; i < 120000 && !sys.failed(); ++i) {
      const auto ev = gen.next();
      (void)sys.write(ev.line, ev.data);
      // Without recycling the dead count is monotone non-decreasing.
      EXPECT_GE(sys.stats().lines_dead, max_dead) << to_string(mode);
      max_dead = std::max(max_dead, sys.stats().lines_dead);
    }
    EXPECT_EQ(sys.stats().recycled_lines, 0u) << to_string(mode);
  }
}

TEST(SystemInvariants, FlipsNeverExceedWindowBits) {
  PcmSystem sys(cfg_for(SystemMode::kCompWF, 9, 1e4));
  const auto& app = profile_by_name("bzip2");
  TraceGenerator gen(app, sys.logical_lines(), 9);
  for (int i = 0; i < 5000; ++i) {
    const auto ev = gen.next();
    const auto out = sys.write(ev.line, ev.data);
    if (out.stored) {
      EXPECT_LE(out.flips, static_cast<std::size_t>(out.size_bytes) * 8 + kBlockBits)
          << "flips bounded by window plus one gap-move copy";
    }
  }
}

TEST(SystemInvariants, GapMovesHappenAtConfiguredInterval) {
  auto cfg = cfg_for(SystemMode::kBaseline, 2, 1e4);
  cfg.gap_interval = 25;
  PcmSystem sys(cfg);
  const auto& app = profile_by_name("astar");
  TraceGenerator gen(app, sys.logical_lines(), 2);
  for (int i = 0; i < 1000; ++i) {
    const auto ev = gen.next();
    (void)sys.write(ev.line, ev.data);
  }
  EXPECT_EQ(sys.stats().gap_moves, 1000u / 25u);
}

}  // namespace
}  // namespace pcmsim
