#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ecc/freep.hpp"

namespace pcmsim {
namespace {

PcmDeviceConfig small(double endurance = 1e4) {
  PcmDeviceConfig cfg;
  cfg.lines = 32;
  cfg.endurance_mean = endurance;
  cfg.endurance_cov = 0.0;
  cfg.seed = 4;
  return cfg;
}

TEST(FreePCodec, EncodeDecodeRoundTripsCleanly) {
  for (std::uint16_t t : {std::uint16_t{0}, std::uint16_t{1}, std::uint16_t{31},
                          std::uint16_t{0xABCD}, std::uint16_t{0xFFFF}}) {
    const auto image = FreePPointerCodec::encode(t);
    EXPECT_EQ(FreePPointerCodec::decode(image), t);
  }
}

TEST(FreePCodec, MajorityVoteSurvivesManyStuckCells) {
  Rng rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    const auto target = static_cast<std::uint16_t>(rng());
    auto image = FreePPointerCodec::encode(target);
    // Corrupt up to 100 random bits (stuck-at random values). Each pointer
    // bit has 32 replicas; 100 corruptions can flip at most ~6 replicas of
    // any single bit on average — far from the 16 needed to flip a majority.
    for (int k = 0; k < 100; ++k) {
      set_bit(image, rng.next_below(kBlockBits), rng.next_bool(0.5));
    }
    EXPECT_EQ(FreePPointerCodec::decode(image), target) << "iter " << iter;
  }
}

TEST(FreePRemapper, ResolveFollowsChains) {
  PcmArray array(small());
  FreePRemapper remap(array, 8);
  EXPECT_EQ(remap.data_lines(), 24u);
  EXPECT_EQ(remap.resolve(3), 3u);

  const auto first = remap.remap(3);
  ASSERT_TRUE(first.has_value());
  EXPECT_GE(*first, 24u);
  EXPECT_EQ(remap.resolve(3), *first);

  // The spare itself can die and re-remap (chained pointers).
  const auto second = remap.remap(3);
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);
  EXPECT_EQ(remap.resolve(3), *second);
  EXPECT_EQ(remap.spares_left(), 6u);
}

TEST(FreePRemapper, ExhaustsSpares) {
  PcmArray array(small());
  FreePRemapper remap(array, 2);
  EXPECT_TRUE(remap.remap(0).has_value());
  EXPECT_TRUE(remap.remap(1).has_value());
  EXPECT_FALSE(remap.remap(2).has_value());
  EXPECT_EQ(remap.spares_left(), 0u);
}

TEST(FreePRemapper, EmbeddedPointerSurvivesWornLine) {
  PcmArray array(small());
  FreePRemapper remap(array, 4);
  // Wear line 7 badly before remapping: 120 stuck cells at random positions.
  Rng rng(9);
  for (int k = 0; k < 120; ++k) {
    array.inject_fault(7, rng.next_below(kBlockBits), rng.next_bool(0.5));
  }
  const auto target = remap.remap(7);
  ASSERT_TRUE(target.has_value());
  // A cold reboot re-reads pointers from the (faulty) array: must match.
  EXPECT_TRUE(remap.verify_chain(7));
}

TEST(FreePRemapper, ChainsRecoverableAcrossTheWholeRegion) {
  PcmArray array(small());
  FreePRemapper remap(array, 16);
  Rng rng(11);
  for (std::size_t line = 0; line < 8; ++line) {
    for (int k = 0; k < 60; ++k) {
      array.inject_fault(line, rng.next_below(kBlockBits), rng.next_bool(0.5));
    }
    ASSERT_TRUE(remap.remap(line).has_value());
    EXPECT_TRUE(remap.verify_chain(line)) << "line " << line;
  }
  EXPECT_EQ(remap.spares_left(), 8u);
}

}  // namespace
}  // namespace pcmsim
