// Shared property tests over all hard-error schemes plus scheme-specific
// capability tests (ECP-6, SAFER-32, Aegis 17x31, SECDED).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "common/rng.hpp"
#include "ecc/aegis.hpp"
#include "ecc/ecp.hpp"
#include "ecc/safer.hpp"
#include "ecc/secded.hpp"

namespace pcmsim {
namespace {

std::vector<FaultCell> random_faults(Rng& rng, std::size_t n, std::size_t window_bits) {
  std::vector<std::uint16_t> pos(window_bits);
  std::iota(pos.begin(), pos.end(), std::uint16_t{0});
  std::vector<FaultCell> out;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + rng.next_below(window_bits - i);
    std::swap(pos[i], pos[j]);
    out.push_back(FaultCell{pos[i], rng.next_bool(0.5)});
  }
  std::sort(out.begin(), out.end(),
            [](const FaultCell& a, const FaultCell& b) { return a.pos < b.pos; });
  return out;
}

std::vector<std::uint8_t> random_data(Rng& rng, std::size_t window_bits) {
  std::vector<std::uint8_t> d((window_bits + 7) / 8);
  for (auto& b : d) b = static_cast<std::uint8_t>(rng());
  if (window_bits % 8) d.back() &= static_cast<std::uint8_t>((1u << (window_bits % 8)) - 1);
  return d;
}

// ---------------------------------------------------------------------------
// Cross-scheme property: whenever encode() succeeds, the data survives the
// stuck cells bit-exactly through apply_faults + decode.
struct SchemeCase {
  std::string name;
  std::function<std::unique_ptr<HardErrorScheme>()> make;
  std::size_t window_bits;
  std::size_t max_faults;  // sweep up to here (may exceed guarantees)
};

class SchemeRecovery : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(SchemeRecovery, EncodedDataSurvivesStuckCells) {
  const auto& param = GetParam();
  const auto scheme = param.make();
  Rng rng(0xEC0DE + param.window_bits);
  int successes = 0;
  for (std::size_t nfaults = 0; nfaults <= param.max_faults; ++nfaults) {
    for (int iter = 0; iter < 40; ++iter) {
      const auto faults = random_faults(rng, nfaults, param.window_bits);
      const auto data = random_data(rng, param.window_bits);
      const auto enc = scheme->encode(data, param.window_bits, faults);
      EXPECT_EQ(enc.has_value(), scheme->can_tolerate(faults, param.window_bits));
      if (!enc) continue;
      ++successes;
      const auto stored = apply_faults(enc->image, param.window_bits, faults);
      const auto decoded = scheme->decode(stored, param.window_bits, enc->meta, faults);
      ASSERT_EQ(decoded, data) << param.name << " failed with " << nfaults << " faults";
    }
  }
  EXPECT_GT(successes, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeRecovery,
    ::testing::Values(
        SchemeCase{"ecp6-512", [] { return std::make_unique<EcpScheme>(6); }, 512, 8},
        SchemeCase{"ecp6-128", [] { return std::make_unique<EcpScheme>(6); }, 128, 8},
        SchemeCase{"safer32-512", [] { return std::make_unique<SaferScheme>(32); }, 512, 16},
        SchemeCase{"safer32-200", [] { return std::make_unique<SaferScheme>(32); }, 200, 16},
        SchemeCase{"safer32-17", [] { return std::make_unique<SaferScheme>(32); }, 17, 10},
        SchemeCase{"aegis-512", [] { return std::make_unique<AegisScheme>(17, 31); }, 512, 20},
        SchemeCase{"aegis-100", [] { return std::make_unique<AegisScheme>(17, 31); }, 100, 16},
        SchemeCase{"secded-512", [] { return std::make_unique<SecdedScheme>(); }, 512, 8}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      std::string n = info.param.name;
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

// ---------------------------------------------------------------------------
// ECP specifics.
TEST(Ecp, MetadataFitsEccBudget) {
  EcpScheme ecp(6);
  EXPECT_LE(ecp.metadata_bits(), kEccBits);
  EXPECT_EQ(ecp.guaranteed_correctable(), 6u);
}

TEST(Ecp, ToleratesExactlySixFaults) {
  EcpScheme ecp(6);
  Rng rng(1);
  for (std::size_t n = 0; n <= 6; ++n) {
    EXPECT_TRUE(ecp.can_tolerate(random_faults(rng, n, 512), 512));
  }
  EXPECT_FALSE(ecp.can_tolerate(random_faults(rng, 7, 512), 512));
}

TEST(Ecp, WeakerVariantsHaveLowerCapability) {
  for (std::size_t n = 1; n <= 6; ++n) {
    EcpScheme ecp(n);
    EXPECT_EQ(ecp.guaranteed_correctable(), n);
    EXPECT_LE(ecp.metadata_bits(), kEccBits);
  }
}

// ---------------------------------------------------------------------------
// SAFER specifics.
TEST(Safer, MetadataFitsEccBudget) {
  SaferScheme safer(32);
  EXPECT_LE(safer.metadata_bits(), kEccBits);
  EXPECT_EQ(safer.guaranteed_correctable(), 6u);  // 5 fields + 1
}

TEST(Safer, SeparatesSixArbitraryFaultsDeterministically) {
  SaferScheme safer(32);
  Rng rng(2);
  for (int iter = 0; iter < 300; ++iter) {
    const auto faults = random_faults(rng, 6, 512);
    EXPECT_TRUE(safer.can_tolerate(faults, 512));
  }
}

TEST(Safer, ToleratesManyFaultsProbabilistically) {
  SaferScheme safer(32);
  Rng rng(3);
  int tolerated = 0;
  for (int iter = 0; iter < 200; ++iter) {
    if (safer.can_tolerate(random_faults(rng, 12, 512), 512)) ++tolerated;
  }
  // The greedy hardware algorithm separates 12 faults only sometimes —
  // "the chances of correcting more than 8 bit failures are very small".
  EXPECT_GT(tolerated, 3);
  EXPECT_LT(tolerated, 150);
}

TEST(Safer, ExhaustiveStrategyDominatesGreedy) {
  SaferScheme greedy(32, SaferScheme::Strategy::kGreedy);
  SaferScheme ideal(32, SaferScheme::Strategy::kExhaustive);
  Rng rng(14);
  int greedy_ok = 0;
  int ideal_ok = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const auto faults = random_faults(rng, 11, 512);
    const bool g = greedy.can_tolerate(faults, 512);
    const bool e = ideal.can_tolerate(faults, 512);
    EXPECT_TRUE(!g || e) << "greedy success implies an exhaustive selection exists";
    greedy_ok += g;
    ideal_ok += e;
  }
  EXPECT_GT(ideal_ok, greedy_ok);
}

TEST(Safer, NeverToleratesMoreThanPartitionCount) {
  SaferScheme safer(32);
  Rng rng(4);
  EXPECT_FALSE(safer.can_tolerate(random_faults(rng, 33, 512), 512));
}

TEST(Safer, AdjacentFaultsAreHardestToSeparate) {
  SaferScheme safer(32);
  // 7 faults in consecutive cells differ only in low address bits; finding a
  // separating 5-field selection must fail (pigeonhole on 3 low bits).
  std::vector<FaultCell> faults;
  for (std::uint16_t i = 0; i < 7; ++i) faults.push_back({i, false});
  // Positions 0..6 differ only within address bits 0..2: any 5-bit selection
  // containing those 3 bits maps them to at most 8 distinct groups — still
  // separable. Verify via the exhaustive search rather than asserting failure.
  const auto partition = safer.find_partitioning(faults, 512);
  ASSERT_TRUE(partition.has_value());
  EXPECT_TRUE(safer.can_tolerate(faults, 512));
  // 9 consecutive cells cannot fit in 8 groups formed by the 3 low bits
  // alone, but selections using bits 0..3 give 16 groups; verify capability
  // grows until the cluster exceeds 2^5 = 32 consecutive positions.
  faults.clear();
  for (std::uint16_t i = 0; i < 33; ++i) faults.push_back({i, false});
  EXPECT_FALSE(safer.can_tolerate(faults, 512));
}

// ---------------------------------------------------------------------------
// Aegis specifics.
TEST(Aegis, MetadataFitsEccBudget) {
  AegisScheme aegis(17, 31);
  EXPECT_LE(aegis.metadata_bits(), kEccBits);
  EXPECT_EQ(aegis.guaranteed_correctable(), 8u);  // C(8,2)=28 <= 31 directions
}

TEST(Aegis, GridMappingIsInjective) {
  AegisScheme aegis(17, 31);
  // CRT: (i mod 17, i mod 31) unique for i < 527; group ids within a
  // direction must tile the line into <= 31 groups of <= 17 cells.
  for (unsigned dir = 0; dir <= 31; ++dir) {
    std::vector<int> sizes(32, 0);
    for (std::size_t i = 0; i < 512; ++i) {
      const std::size_t g = aegis.group_of(i, dir);
      ASSERT_LT(g, dir == 31 ? 17u : 31u);
      ++sizes[g];
    }
    for (int s : sizes) EXPECT_LE(s, dir == 31 ? 31 : 17);
  }
}

TEST(Aegis, EightArbitraryFaultsAlwaysSeparable) {
  AegisScheme aegis(17, 31);
  Rng rng(5);
  for (int iter = 0; iter < 300; ++iter) {
    EXPECT_TRUE(aegis.can_tolerate(random_faults(rng, 8, 512), 512));
  }
}

TEST(Aegis, BeatsSaferOnLargeFaultCounts) {
  AegisScheme aegis(17, 31);
  SaferScheme safer(32);
  Rng rng(6);
  int aegis_ok = 0;
  int safer_ok = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const auto faults = random_faults(rng, 16, 512);
    if (aegis.can_tolerate(faults, 512)) ++aegis_ok;
    if (safer.can_tolerate(faults, 512)) ++safer_ok;
  }
  EXPECT_GT(aegis_ok, safer_ok);  // the paper's Fig 9 ordering
}

// ---------------------------------------------------------------------------
// SECDED specifics.
TEST(Secded, CheckBitsDetectAndCorrectSingleError) {
  SecdedScheme s;
  Rng rng(7);
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t word = rng();
    const std::uint8_t check = s.compute_check(word);
    // No error.
    auto ok = s.correct(word, check);
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->word, word);
    // Single data-bit error.
    const unsigned bit = static_cast<unsigned>(rng.next_below(64));
    auto fixed = s.correct(word ^ (1ull << bit), check);
    ASSERT_TRUE(fixed.has_value());
    EXPECT_EQ(fixed->word, word);
    EXPECT_TRUE(fixed->corrected_data_bit);
  }
}

TEST(Secded, DoubleErrorsAreDetectedNotMiscorrected) {
  SecdedScheme s;
  Rng rng(8);
  int detected = 0;
  for (int iter = 0; iter < 500; ++iter) {
    const std::uint64_t word = rng();
    const std::uint8_t check = s.compute_check(word);
    unsigned b1 = static_cast<unsigned>(rng.next_below(64));
    unsigned b2 = static_cast<unsigned>(rng.next_below(64));
    if (b1 == b2) continue;
    const auto r = s.correct(word ^ (1ull << b1) ^ (1ull << b2), check);
    // Hsiao odd-weight columns: double errors give even-weight syndromes,
    // which never match a data column -> uncorrectable (detected).
    EXPECT_FALSE(r.has_value());
    ++detected;
  }
  EXPECT_GT(detected, 400);
}

TEST(Secded, ToleratesOneFaultPerWordOnly) {
  SecdedScheme s;
  std::vector<FaultCell> one_per_word;
  for (std::uint16_t w = 0; w < 8; ++w) one_per_word.push_back({static_cast<std::uint16_t>(w * 64 + 5), false});
  EXPECT_TRUE(s.can_tolerate(one_per_word, 512));
  one_per_word.push_back({6, true});  // second fault in word 0
  EXPECT_FALSE(s.can_tolerate(one_per_word, 512));
}

}  // namespace
}  // namespace pcmsim
