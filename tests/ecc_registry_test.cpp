// The ECC registry's contracts: every registered spec round-trips through
// make_scheme with a name/traits snapshot that matches the constructed
// scheme, the parameterized grammar accepts/rejects what it documents, and
// every scheme (old families and the BCH-t / coset extensions alike) survives
// a randomized encode -> stuck-cells -> decode property sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ecc/bch.hpp"
#include "ecc/coset.hpp"
#include "ecc/registry.hpp"

namespace pcmsim {
namespace {

std::vector<FaultCell> random_faults(Rng& rng, std::size_t n, std::size_t window_bits) {
  std::vector<std::uint16_t> pos(window_bits);
  std::iota(pos.begin(), pos.end(), std::uint16_t{0});
  std::vector<FaultCell> out;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + rng.next_below(window_bits - i);
    std::swap(pos[i], pos[j]);
    out.push_back(FaultCell{pos[i], rng.next_bool(0.5)});
  }
  std::sort(out.begin(), out.end(),
            [](const FaultCell& a, const FaultCell& b) { return a.pos < b.pos; });
  return out;
}

std::vector<std::uint8_t> random_data(Rng& rng, std::size_t window_bits) {
  std::vector<std::uint8_t> d((window_bits + 7) / 8);
  for (auto& b : d) b = static_cast<std::uint8_t>(rng());
  return d;
}

// ---------------------------------------------------------------------------
// Registry round-trip: the static table is an honest snapshot of the schemes.

TEST(Registry, EveryRegisteredSpecConstructsAndMatchesItsSnapshot) {
  const auto schemes = registered_schemes();
  ASSERT_GE(schemes.size(), 7u);
  for (const auto& info : schemes) {
    SCOPED_TRACE(std::string(info.spec));
    EXPECT_TRUE(is_scheme_spec(info.spec));
    const auto scheme = make_scheme(info.spec);
    EXPECT_EQ(scheme->name(), info.name);
    EXPECT_EQ(scheme->traits(), info.traits);
    // The traits snapshot must agree with the scheme's own virtuals.
    EXPECT_EQ(info.traits.metadata_bits, scheme->metadata_bits());
    EXPECT_EQ(info.traits.guaranteed_correctable, scheme->guaranteed_correctable());
    // find_scheme_info resolves canonical specs to the same entry.
    const auto* found = find_scheme_info(info.spec);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->name, info.name);
    // scheme_traits answers from the table without construction.
    EXPECT_EQ(scheme_traits(info.spec), info.traits);
  }
}

TEST(Registry, ParameterizedSpecsOutsideTheCanonicalListParse) {
  for (const char* spec : {"ecp1", "ecp3", "ecp9", "safer16", "safer32-ideal",
                           "aegis19x29", "bch-t1", "bch-t4", "coset-w8"}) {
    SCOPED_TRACE(spec);
    EXPECT_TRUE(is_scheme_spec(spec));
    EXPECT_NE(make_scheme(spec), nullptr);
    EXPECT_EQ(find_scheme_info(spec), nullptr) << "not a canonical entry";
  }
}

TEST(Registry, MalformedOrOutOfRangeSpecsAreRejected) {
  // safer64 is grammar-valid but unconstructible: 64 partitions blow the
  // 64-bit metadata budget, so the registry reports it as not-a-spec too.
  for (const char* spec : {"", "ecp", "ecp0", "ecp13", "ecp6x", "safer0", "safer31",
                           "safer64", "aegis17", "aegis0x31", "bch", "bch-t0", "bch-t7",
                           "coset-w5", "coset-w0", "hamming", "ECP6"}) {
    SCOPED_TRACE(spec);
    EXPECT_FALSE(is_scheme_spec(spec));
    EXPECT_THROW((void)make_scheme(spec), ContractViolation);
  }
}

TEST(Registry, LegacyEccKindMapsOntoCanonicalSpecs) {
  EXPECT_EQ(canonical_spec(EccKind::kEcp6), "ecp6");
  EXPECT_EQ(canonical_spec(EccKind::kSafer32), "safer32");
  EXPECT_EQ(canonical_spec(EccKind::kAegis17x31), "aegis17x31");
  EXPECT_EQ(canonical_spec(EccKind::kSecded), "secded");
  for (const auto kind : {EccKind::kEcp6, EccKind::kSafer32, EccKind::kAegis17x31,
                          EccKind::kSecded}) {
    EXPECT_EQ(make_scheme(kind)->name(), make_scheme(canonical_spec(kind))->name());
  }
}

// ---------------------------------------------------------------------------
// Cross-registry property: up to guaranteed_correctable() faults, encode must
// succeed and the data must survive the stuck cells bit-exactly; past the
// guarantee, encode may refuse, but whenever it accepts the round-trip must
// still be exact (no silent corruption, ever).

class RegisteredSchemeRecovery : public ::testing::TestWithParam<std::string> {};

TEST_P(RegisteredSchemeRecovery, GuaranteedFaultsAlwaysRoundTrip) {
  const auto scheme = make_scheme(GetParam());
  Rng rng(0x5EC + scheme->metadata_bits());
  const std::size_t guaranteed = scheme->guaranteed_correctable();
  for (std::size_t nfaults = 0; nfaults <= guaranteed; ++nfaults) {
    for (int iter = 0; iter < 30; ++iter) {
      const auto faults = random_faults(rng, nfaults, kBlockBits);
      const auto data = random_data(rng, kBlockBits);
      EXPECT_TRUE(scheme->can_tolerate(faults, kBlockBits));
      const auto enc = scheme->encode(data, kBlockBits, faults);
      ASSERT_TRUE(enc.has_value())
          << GetParam() << " refused " << nfaults << " <= guaranteed faults";
      const auto stored = apply_faults(enc->image, kBlockBits, faults);
      const auto decoded = scheme->decode(stored, kBlockBits, enc->meta, faults);
      ASSERT_EQ(decoded, data) << GetParam() << " with " << nfaults << " faults";
    }
  }
}

TEST_P(RegisteredSchemeRecovery, PastGuaranteeIsRefusedOrStillExact) {
  const auto scheme = make_scheme(GetParam());
  Rng rng(0xFA17 + scheme->metadata_bits());
  const std::size_t guaranteed = scheme->guaranteed_correctable();
  int refused = 0;
  int exact = 0;
  for (std::size_t nfaults = guaranteed + 1; nfaults <= guaranteed + 4; ++nfaults) {
    for (int iter = 0; iter < 30; ++iter) {
      const auto faults = random_faults(rng, nfaults, kBlockBits);
      const auto data = random_data(rng, kBlockBits);
      const auto enc = scheme->encode(data, kBlockBits, faults);
      // encode may only be *stronger* than the data-independent check (the
      // coset scheme accepts extra faults that land in compression slack).
      EXPECT_TRUE(!scheme->can_tolerate(faults, kBlockBits) || enc.has_value());
      if (!enc) {
        ++refused;
        continue;
      }
      const auto stored = apply_faults(enc->image, kBlockBits, faults);
      ASSERT_EQ(scheme->decode(stored, kBlockBits, enc->meta, faults), data);
      ++exact;
    }
  }
  EXPECT_GT(refused + exact, 0);
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, RegisteredSchemeRecovery,
                         ::testing::Values("ecp6", "ecp12", "safer32", "aegis17x31",
                                           "secded", "bch-t2", "bch-t6", "coset-w4"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string n = info.param;
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

// ---------------------------------------------------------------------------
// BCH-t specifics: 2t stuck cells are erasures under a distance-(2t+1) code,
// so capability is exactly 2t at a metadata cost of 10t bits.

TEST(Bch, CapabilityIsExactlyTwoTErasures) {
  Rng rng(11);
  for (std::size_t t = 1; t <= 6; ++t) {
    const BchScheme bch(t);
    EXPECT_EQ(bch.guaranteed_correctable(), 2 * t);
    EXPECT_EQ(bch.metadata_bits(), 10 * t);
    for (int iter = 0; iter < 50; ++iter) {
      EXPECT_TRUE(bch.can_tolerate(random_faults(rng, 2 * t, kBlockBits), kBlockBits));
      EXPECT_FALSE(bch.can_tolerate(random_faults(rng, 2 * t + 1, kBlockBits), kBlockBits));
    }
  }
}

TEST(Bch, BeatsEcpSixInBothStrengthAndMetadata) {
  // The laboratory's headline: BCH-t6 guarantees 12 erasures in 60 metadata
  // bits; ECP-6 guarantees 6 in 63.
  const auto bch = make_scheme("bch-t6");
  const auto ecp = make_scheme("ecp6");
  EXPECT_GT(bch->guaranteed_correctable(), ecp->guaranteed_correctable());
  EXPECT_LT(bch->metadata_bits(), ecp->metadata_bits());
}

TEST(Bch, GfExpTableHasFullPeriod) {
  const BchScheme bch(1);
  // alpha generates GF(2^10)*: the powers 0..1022 are pairwise distinct.
  std::vector<bool> seen(1024, false);
  for (std::size_t e = 0; e < 1023; ++e) {
    const auto v = bch.alpha_pow(e);
    ASSERT_GT(v, 0u);
    ASSERT_LT(v, 1024u);
    EXPECT_FALSE(seen[v]) << "alpha^" << e << " repeats";
    seen[v] = true;
  }
  EXPECT_EQ(bch.alpha_pow(0), 1u);
}

// ---------------------------------------------------------------------------
// Coset specifics: beyond the one-per-word data-independent guarantee, any
// number of faults landing in compression slack is absorbed for free.

TEST(Coset, OneFaultPerWordIsToleratedDataIndependently) {
  const CosetScheme coset(4);
  std::vector<FaultCell> one_per_word;
  for (std::uint16_t w = 0; w < kBlockBits / 32; ++w) {
    one_per_word.push_back({static_cast<std::uint16_t>(w * 32 + 7), true});
  }
  EXPECT_TRUE(coset.can_tolerate(one_per_word, kBlockBits));  // 16 faults!
  one_per_word.push_back({9, false});  // second fault in word 0
  std::sort(one_per_word.begin(), one_per_word.end(),
            [](const FaultCell& a, const FaultCell& b) { return a.pos < b.pos; });
  EXPECT_FALSE(coset.can_tolerate(one_per_word, kBlockBits));
}

TEST(Coset, SlackFaultsAreFreeOnCompressibleData) {
  const CosetScheme coset(4);
  // All-zero data: every u32 cell is a 3-bit FPC zero-run tag, so bits 3..31
  // of every cell are slack. Pile two faults into the slack of each word —
  // way past the 1-fault guarantee — and the round-trip must still be exact.
  const std::vector<std::uint8_t> data(kBlockBytes, 0);
  std::vector<FaultCell> faults;
  for (std::uint16_t c = 0; c < kBlockBits / 32; ++c) {
    faults.push_back({static_cast<std::uint16_t>(c * 32 + 12), true});
    faults.push_back({static_cast<std::uint16_t>(c * 32 + 25), true});
  }
  EXPECT_FALSE(coset.can_tolerate(faults, kBlockBits)) << "data-independent check refuses";
  const auto enc = coset.encode(data, kBlockBits, faults);
  ASSERT_TRUE(enc.has_value()) << "slack-aware encode absorbs 32 stuck cells";
  const auto stored = apply_faults(enc->image, kBlockBits, faults);
  EXPECT_EQ(coset.decode(stored, kBlockBits, enc->meta, faults), data);
}

TEST(Coset, CellContentTracksFpcClasses) {
  // Tag (3 bits) + payload: zero run 0, sign-4 4, sign-8 8, halfword forms
  // 16, repeated byte 8; incompressible cells stay uncoded at 32 bits.
  EXPECT_EQ(CosetScheme::cell_content_bits(0u), 3u);
  EXPECT_EQ(CosetScheme::cell_content_bits(5u), 7u);
  EXPECT_EQ(CosetScheme::cell_content_bits(0x7Bu), 11u);
  EXPECT_EQ(CosetScheme::cell_content_bits(0x4321u), 19u);
  EXPECT_EQ(CosetScheme::cell_content_bits(0xABABABABu), 11u);
  EXPECT_EQ(CosetScheme::cell_content_bits(0xDEADBEEFu), 32u);
}

TEST(Coset, WordSizeEightHalvesTheFlipBudget) {
  const CosetScheme w4(4);
  const CosetScheme w8(8);
  EXPECT_EQ(w4.metadata_bits(), 16u + 16u);  // coded flags + one flip per u32
  EXPECT_EQ(w8.metadata_bits(), 16u + 8u);   // coded flags + one flip per u64 word
  // Two faults in the two different u32 halves of one u64 word: fine for w4
  // (separate words), refused by w8 (same word).
  const std::vector<FaultCell> faults = {{3, true}, {40, false}};
  EXPECT_TRUE(w4.can_tolerate(faults, kBlockBits));
  EXPECT_FALSE(w8.can_tolerate(faults, kBlockBits));
}

}  // namespace
}  // namespace pcmsim
