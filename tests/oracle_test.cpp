// Oracle tests: each optimized component is checked against an independent,
// brute-force reference implementation over randomized inputs.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "pcm/array.hpp"
#include "wear/start_gap.hpp"

namespace pcmsim {
namespace {

// ---------------------------------------------------------------------------
// PcmArray's word-at-a-time differential write vs a naive per-bit model.
class BitOracle {
 public:
  BitOracle(std::size_t bits, std::uint32_t endurance) : value_(bits, false), stuck_(bits, false) {
    endurance_.assign(bits, endurance);
  }

  struct Result {
    std::size_t programmed = 0;
    std::size_t mismatched = 0;
  };

  Result write(std::size_t off, const std::vector<bool>& bits, bool stuck_value) {
    Result r;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      const std::size_t idx = off + i;
      if (stuck_[idx]) {
        if (value_[idx] != bits[i]) ++r.mismatched;
        continue;
      }
      if (value_[idx] == bits[i]) continue;
      ++r.programmed;
      if (endurance_[idx] > 1) {
        --endurance_[idx];
        value_[idx] = bits[i];
      } else {
        endurance_[idx] = 0;
        stuck_[idx] = true;
        value_[idx] = stuck_value;
        if (value_[idx] != bits[i]) ++r.mismatched;
      }
    }
    return r;
  }

  std::vector<bool> value_;
  std::vector<bool> stuck_;
  std::vector<std::uint32_t> endurance_;
};

TEST(Oracle, PcmArrayMatchesPerBitModel) {
  PcmDeviceConfig cfg;
  cfg.lines = 1;
  cfg.endurance_mean = 9;
  cfg.endurance_cov = 0.0;              // uniform endurance so the oracle can track it
  cfg.stuck_at_reset_fraction = 1.0;    // deterministic stuck value (0)
  PcmArray array(cfg);
  BitOracle oracle(kLineTotalBits, 9);

  Rng rng(44);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t nbits = 1 + rng.next_below(200);
    const std::size_t off = rng.next_below(kLineTotalBits - nbits + 1);
    std::vector<std::uint8_t> packed((nbits + 7) / 8, 0);
    std::vector<bool> bits(nbits);
    for (std::size_t i = 0; i < nbits; ++i) {
      bits[i] = rng.next_bool(0.5);
      if (bits[i]) packed[i / 8] = static_cast<std::uint8_t>(packed[i / 8] | (1u << (i % 8)));
    }
    const auto got = array.write_range(0, off, packed, nbits);
    const auto want = oracle.write(off, bits, false);
    ASSERT_EQ(got.programmed_bits, want.programmed) << "iter " << iter;
    ASSERT_EQ(got.mismatched_bits, want.mismatched) << "iter " << iter;

    // Full-line state comparison.
    for (std::size_t b = 0; b < kLineTotalBits; ++b) {
      ASSERT_EQ(array.read_bit(0, b), oracle.value_[b]) << "bit " << b << " iter " << iter;
      ASSERT_EQ(array.is_stuck(0, b), oracle.stuck_[b]) << "bit " << b << " iter " << iter;
    }
  }
  EXPECT_GT(array.total_faults(), 50u) << "the sweep must actually wear cells out";
}

// ---------------------------------------------------------------------------
// Start-Gap's arithmetic mapping vs an explicit simulation that literally
// moves line contents between slots.
TEST(Oracle, StartGapMatchesExplicitSlotSimulation) {
  const std::uint64_t n = 23;  // deliberately not a power of two
  StartGap sg(n, /*gap_interval=*/1, /*randomize=*/false, 0);

  // slots[p] = logical line stored at physical slot p (-1 = gap).
  std::vector<std::int64_t> slots(n + 1, -1);
  for (std::uint64_t la = 0; la < n; ++la) slots[la] = static_cast<std::int64_t>(la);

  for (int step = 0; step < 600; ++step) {
    for (std::uint64_t la = 0; la < n; ++la) {
      ASSERT_EQ(slots[sg.map(la)], static_cast<std::int64_t>(la))
          << "step " << step << " la " << la;
    }
    const auto mv = sg.on_write();
    ASSERT_TRUE(mv.has_value());
    ASSERT_EQ(slots[mv->to], -1) << "gap move target must be the gap";
    slots[mv->to] = slots[mv->from];
    slots[mv->from] = -1;
  }
}

// With static randomization the composition must still be a permutation that
// never lands on the gap.
TEST(Oracle, StartGapRandomizedStaysInjective) {
  StartGap sg(100, 2, /*randomize=*/true, 7);
  for (int step = 0; step < 400; ++step) {
    std::set<std::uint64_t> used;
    for (std::uint64_t la = 0; la < 100; ++la) {
      const auto pa = sg.map(la);
      ASSERT_LE(pa, 100u);
      ASSERT_NE(pa, sg.gap());
      ASSERT_TRUE(used.insert(pa).second);
    }
    (void)sg.on_write();
  }
}

}  // namespace
}  // namespace pcmsim
