#include "pcm/array.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pcmsim {
namespace {

PcmDeviceConfig tiny_config(double endurance = 100.0, double cov = 0.0) {
  PcmDeviceConfig cfg;
  cfg.lines = 4;
  cfg.endurance_mean = endurance;
  cfg.endurance_cov = cov;
  cfg.seed = 42;
  return cfg;
}

std::vector<std::uint8_t> bits_of(std::initializer_list<std::uint8_t> bytes) {
  return std::vector<std::uint8_t>(bytes);
}

TEST(PcmArray, FreshArrayReadsZero) {
  PcmArray a(tiny_config());
  std::vector<std::uint8_t> buf(8);
  a.read_range(0, 0, 64, buf);
  for (auto b : buf) EXPECT_EQ(b, 0u);
  EXPECT_EQ(a.count_stuck(0, 0, kLineTotalBits), 0u);
}

TEST(PcmArray, WriteThenReadBack) {
  PcmArray a(tiny_config());
  const auto data = bits_of({0xAB, 0xCD, 0xEF, 0x01});
  a.write_range(1, 0, data, 32);
  std::vector<std::uint8_t> buf(4);
  a.read_range(1, 0, 32, buf);
  EXPECT_EQ(buf, data);
}

TEST(PcmArray, UnalignedRangesWork) {
  PcmArray a(tiny_config());
  const auto data = bits_of({0xFF, 0xFF, 0xFF});
  a.write_range(0, 13, data, 21);  // odd bit offset, odd length
  std::vector<std::uint8_t> buf(3);
  a.read_range(0, 13, 21, buf);
  EXPECT_EQ(buf[0], 0xFF);
  EXPECT_EQ(buf[1], 0xFF);
  EXPECT_EQ(buf[2], 0x1F);  // 21 bits -> top 3 bits of last byte are zero

  // Bits outside the range are untouched: exactly bits 13..33 are set.
  std::vector<std::uint8_t> whole(72);
  a.read_range(0, 0, kLineTotalBits, whole);
  EXPECT_EQ(whole[0], 0x00);
  EXPECT_EQ(whole[1], 0xE0);  // bits 13..15
  EXPECT_EQ(whole[2], 0xFF);  // bits 16..23
  EXPECT_EQ(whole[3], 0xFF);  // bits 24..31
  EXPECT_EQ(whole[4], 0x03);  // bits 32..33
}

TEST(PcmArray, DifferentialWriteProgramsOnlyChangedBits) {
  PcmArray a(tiny_config());
  const auto ones = bits_of({0xFF});
  auto r1 = a.write_range(0, 0, ones, 8);
  EXPECT_EQ(r1.programmed_bits, 8u);
  auto r2 = a.write_range(0, 0, ones, 8);  // identical rewrite
  EXPECT_EQ(r2.programmed_bits, 0u);
  const auto alt = bits_of({0xF0});
  auto r3 = a.write_range(0, 0, alt, 8);
  EXPECT_EQ(r3.programmed_bits, 4u);
}

TEST(PcmArray, CellsWearOutAndStick) {
  PcmArray a(tiny_config(/*endurance=*/3.0, /*cov=*/0.0));
  const auto one = bits_of({0x01});
  const auto zero = bits_of({0x00});
  // Each toggle programs bit 0 once; after 3 pulses it must be stuck.
  std::size_t faults = 0;
  for (int i = 0; i < 5; ++i) {
    faults += a.write_range(0, 0, (i % 2 == 0) ? one : zero, 1).new_faults;
  }
  EXPECT_EQ(faults, 1u);
  EXPECT_TRUE(a.is_stuck(0, 0));
  EXPECT_EQ(a.remaining_endurance(0, 0), 0u);

  // Further writes never program the stuck cell.
  const bool stuck_value = a.read_bit(0, 0);
  const auto flip = bits_of({static_cast<std::uint8_t>(stuck_value ? 0x00 : 0x01)});
  const auto r = a.write_range(0, 0, flip, 1);
  EXPECT_EQ(r.programmed_bits, 0u);
  EXPECT_EQ(r.mismatched_bits, 1u);
  EXPECT_EQ(a.read_bit(0, 0), stuck_value);
}

TEST(PcmArray, InjectFaultSticksCell) {
  PcmArray a(tiny_config());
  a.inject_fault(2, 100, true);
  EXPECT_TRUE(a.is_stuck(2, 100));
  EXPECT_TRUE(a.read_bit(2, 100));
  EXPECT_EQ(a.count_stuck(2, 0, kLineTotalBits), 1u);
  EXPECT_EQ(a.stuck_positions(2, 0, kLineTotalBits),
            std::vector<std::uint16_t>{100});
  // Idempotent.
  a.inject_fault(2, 100, true);
  EXPECT_EQ(a.total_faults(), 1u);
}

TEST(PcmArray, StuckPositionsRespectRange) {
  PcmArray a(tiny_config());
  a.inject_fault(0, 10, false);
  a.inject_fault(0, 200, true);
  a.inject_fault(0, 510, false);
  EXPECT_EQ(a.stuck_positions(0, 0, 512).size(), 3u);
  EXPECT_EQ(a.stuck_positions(0, 100, 200), std::vector<std::uint16_t>{200});
  EXPECT_EQ(a.count_stuck(0, 0, 11), 1u);
  EXPECT_EQ(a.count_stuck(0, 11, 100), 0u);
}

TEST(PcmArray, EnduranceVariationProducesSpread) {
  PcmDeviceConfig cfg;
  cfg.lines = 64;
  cfg.endurance_mean = 1000;
  cfg.endurance_cov = 0.15;
  cfg.seed = 7;
  PcmArray a(cfg);
  double sum = 0;
  double min = 1e18;
  double max = 0;
  const std::size_t n = 64 * kLineTotalBits;
  for (std::size_t line = 0; line < 64; ++line) {
    for (std::size_t bit = 0; bit < kLineTotalBits; ++bit) {
      const double e = a.remaining_endurance(line, bit);
      sum += e;
      min = std::min(min, e);
      max = std::max(max, e);
    }
  }
  const double mean = sum / static_cast<double>(n);
  EXPECT_NEAR(mean, 1000.0, 20.0);
  EXPECT_LT(min, 800.0);  // lognormal CoV 0.15 spreads the tails
  EXPECT_GT(max, 1200.0);
}

TEST(PcmArray, RejectsOverflowingEnduranceConfig) {
  PcmDeviceConfig cfg;
  cfg.lines = 1;
  cfg.endurance_mean = 60000;  // +8 sigma exceeds uint16 at CoV 0.15
  cfg.endurance_cov = 0.15;
  EXPECT_THROW(PcmArray a(cfg), ContractViolation);
}

TEST(PcmArray, SetResetPulsesAreAccountedSeparately) {
  PcmArray a(tiny_config());
  const auto ones = bits_of({0xFF});
  const auto zero = bits_of({0x00});
  a.write_range(0, 0, ones, 8);  // 8 SET pulses (0 -> 1)
  EXPECT_EQ(a.total_set_pulses(), 8u);
  EXPECT_EQ(a.total_reset_pulses(), 0u);
  a.write_range(0, 0, zero, 8);  // 8 RESET pulses (1 -> 0)
  EXPECT_EQ(a.total_set_pulses(), 8u);
  EXPECT_EQ(a.total_reset_pulses(), 8u);
  EXPECT_EQ(a.total_programmed_bits(), a.total_set_pulses() + a.total_reset_pulses());
  EXPECT_DOUBLE_EQ(a.write_energy_pj(1.0, 2.0), 8.0 * 1.0 + 8.0 * 2.0);
}

TEST(PcmArray, StuckValueFollowsFailureModeFraction) {
  PcmDeviceConfig cfg;
  cfg.lines = 8;
  cfg.endurance_mean = 2;
  cfg.endurance_cov = 0.0;
  cfg.stuck_at_reset_fraction = 1.0;  // every failure is stuck-at-RESET (0)
  cfg.seed = 3;
  PcmArray a(cfg);
  const auto one = bits_of({0xFF});
  const auto zero = bits_of({0x00});
  for (int i = 0; i < 8; ++i) a.write_range(0, 0, (i % 2 == 0) ? one : zero, 8);
  for (std::size_t bit = 0; bit < 8; ++bit) {
    ASSERT_TRUE(a.is_stuck(0, bit));
    EXPECT_FALSE(a.read_bit(0, bit)) << "stuck-at-RESET must latch 0";
  }
}

}  // namespace
}  // namespace pcmsim
