// Coherence test for the cached fault state behind window placement.
//
// WindowPlacer::fits/find consult data_stuck_count() and byte_stuck_prefix(),
// which PcmArray maintains incrementally at fault birth (wear-out writes and
// inject_fault). The reference here recomputes every answer definitionally —
// window_faults() scans the stuck bitmap directly and the scheme's
// can_tolerate() is asked for every candidate — so any stale or miscounted
// cache entry shows up as a fits/find divergence. Exercised three ways:
// injected faults, faults born by wear-out writes, and a live PcmSystem with
// Start-Gap moves and intra-line rotation churning the lines.
#include "core/window.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"

namespace pcmsim {
namespace {

constexpr std::uint8_t kSizes[] = {8, 17, 32, 64};
constexpr std::uint8_t kPreferred[] = {0, 13, 47, 63};

bool reference_fits(const HardErrorScheme& scheme, const PcmArray& array, std::size_t line,
                    std::uint8_t start, std::uint8_t size_bytes) {
  const auto faults = window_faults(array, line, start, size_bytes);
  return scheme.can_tolerate(faults, static_cast<std::size_t>(size_bytes) * 8);
}

std::optional<std::uint8_t> reference_find(const HardErrorScheme& scheme, const PcmArray& array,
                                           std::size_t line, std::uint8_t size_bytes,
                                           std::uint8_t preferred, SlidePolicy policy) {
  switch (policy) {
    case SlidePolicy::kStay:
      if (reference_fits(scheme, array, line, preferred, size_bytes)) return preferred;
      return std::nullopt;
    case SlidePolicy::kSlideUp:
      for (std::size_t start = preferred; start + size_bytes <= kBlockBytes; ++start) {
        if (reference_fits(scheme, array, line, static_cast<std::uint8_t>(start), size_bytes)) {
          return static_cast<std::uint8_t>(start);
        }
      }
      return std::nullopt;
    case SlidePolicy::kAnywhere:
      for (std::size_t i = 0; i < kBlockBytes; ++i) {
        const auto start = static_cast<std::uint8_t>((preferred + i) % kBlockBytes);
        if (reference_fits(scheme, array, line, start, size_bytes)) return start;
      }
      return std::nullopt;
  }
  return std::nullopt;
}

/// Checks every (start, size) fits and every (preferred, size, policy) find
/// against the uncached reference for one line.
void expect_line_coherent(const WindowPlacer& placer, const HardErrorScheme& scheme,
                          const PcmArray& array, std::size_t line) {
  for (const std::uint8_t size : kSizes) {
    for (std::size_t start = 0; start < kBlockBytes; ++start) {
      const auto s = static_cast<std::uint8_t>(start);
      ASSERT_EQ(placer.fits(array, line, s, size), reference_fits(scheme, array, line, s, size))
          << "fits mismatch line " << line << " start " << start << " size " << int{size}
          << " (line stuck count " << array.data_stuck_count(line) << ")";
    }
    for (const std::uint8_t preferred : kPreferred) {
      for (const SlidePolicy policy :
           {SlidePolicy::kStay, SlidePolicy::kSlideUp, SlidePolicy::kAnywhere}) {
        ASSERT_EQ(placer.find(array, line, size, preferred, policy),
                  reference_find(scheme, array, line, size, preferred, policy))
            << "find mismatch line " << line << " size " << int{size} << " preferred "
            << int{preferred} << " policy " << static_cast<int>(policy);
      }
    }
  }
}

/// The eagerly maintained per-line count and lazily rebuilt prefix sums must
/// both equal a direct scan of the stuck bitmap.
void expect_cache_matches_scan(const PcmArray& array, std::size_t line) {
  ASSERT_EQ(array.data_stuck_count(line), array.count_stuck(line, 0, kBlockBits));
  const auto prefix = array.byte_stuck_prefix(line);
  ASSERT_EQ(prefix.size(), kBlockBytes + 1);
  for (std::size_t b = 0; b <= kBlockBytes; ++b) {
    ASSERT_EQ(prefix[b], array.count_stuck(line, 0, b * 8))
        << "prefix mismatch line " << line << " byte " << b;
  }
}

TEST(PlacementCache, CoherentUnderInjectedFaults) {
  PcmDeviceConfig cfg;
  cfg.lines = 6;
  cfg.endurance_mean = 1e4;
  cfg.seed = 5;
  PcmArray array(cfg);
  const auto scheme = make_scheme(EccKind::kEcp6);
  const WindowPlacer placer(*scheme);

  Rng driver(404);
  // Densities from clean through "dodge-able" to saturated: the interesting
  // transitions are at guaranteed_correctable() per line and per window.
  for (std::size_t round = 0; round < 10; ++round) {
    for (std::size_t line = 0; line < cfg.lines; ++line) {
      const std::size_t births = 1 + driver.next_below(2 + round);
      for (std::size_t f = 0; f < births; ++f) {
        array.inject_fault(line, driver.next_below(kBlockBits), driver.next_bool(0.5));
      }
      expect_cache_matches_scan(array, line);
      expect_line_coherent(placer, *scheme, array, line);
    }
  }
}

TEST(PlacementCache, CoherentUnderWearOutBirthsAndGapMoves) {
  // Faults born inside PcmSystem's write path (slow-path wear-out) with
  // Start-Gap copies and rotation moving windows around — the cache is
  // updated from on_fault_born, never rebuilt wholesale, so this catches any
  // birth site that forgets the bookkeeping.
  SystemConfig cfg;
  cfg.mode = SystemMode::kCompWF;
  cfg.device.lines = 33;  // 32 logical + gap line
  cfg.device.endurance_mean = 60;
  cfg.device.endurance_cov = 0.2;
  cfg.device.seed = 9;
  cfg.seed = 9;
  PcmSystem system(cfg);
  const auto scheme = make_scheme(EccKind::kEcp6);
  const WindowPlacer placer(*scheme);

  Rng driver(505);
  Block data{};
  const std::uint64_t logical_lines = system.logical_lines();
  for (std::size_t w = 0; w < 6000 && !system.failed(); ++w) {
    for (auto& b : data) b = static_cast<std::uint8_t>(driver.next_below(256));
    (void)system.write(driver.next_below(logical_lines), data);
    if (w % 500 == 0) {
      for (std::size_t line = 0; line < cfg.device.lines; ++line) {
        expect_cache_matches_scan(system.array(), line);
        expect_line_coherent(placer, *scheme, system.array(), line);
      }
    }
  }
  // Final sweep: by now many lines carry double-digit stuck counts.
  std::size_t total_stuck = 0;
  for (std::size_t line = 0; line < cfg.device.lines; ++line) {
    expect_cache_matches_scan(system.array(), line);
    expect_line_coherent(placer, *scheme, system.array(), line);
    total_stuck += system.array().data_stuck_count(line);
  }
  EXPECT_GT(total_stuck, 0u) << "run too short to birth any faults; weaken endurance";
}

TEST(PlacementCache, SlideUpRejectsOverhangEvenOnCleanLines) {
  // Regression guard for the clean-line fast path: kSlideUp must still refuse
  // a window that overhangs the line end, even with zero faults (the old loop
  // never ran its body in that case and returned nullopt).
  PcmDeviceConfig cfg;
  cfg.lines = 1;
  cfg.seed = 2;
  PcmArray array(cfg);
  const auto scheme = make_scheme(EccKind::kEcp6);
  const WindowPlacer placer(*scheme);
  EXPECT_EQ(placer.find(array, 0, 32, 40, SlidePolicy::kSlideUp), std::nullopt);
  EXPECT_EQ(placer.find(array, 0, 32, 32, SlidePolicy::kSlideUp), std::optional<std::uint8_t>{32});
  EXPECT_EQ(placer.find(array, 0, 32, 40, SlidePolicy::kAnywhere),
            std::optional<std::uint8_t>{40});
}

}  // namespace
}  // namespace pcmsim
