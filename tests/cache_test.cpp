#include <gtest/gtest.h>

#include <map>

#include "cache/hierarchy.hpp"

namespace pcmsim {
namespace {

Block block_of(std::uint8_t v) {
  Block b{};
  b.fill(v);
  return b;
}

TEST(CacheLevel, HitsAfterFill) {
  CacheLevel c("t", 8 * kBlockBytes, 2);
  const Block fill = block_of(1);
  EXPECT_FALSE(c.access(100, false, nullptr, fill).hit);
  EXPECT_TRUE(c.access(100, false, nullptr, fill).hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheLevel, StoresMarkDirtyAndWriteBackOnEviction) {
  // Direct-mapped 4-line cache: lines hashing to the same set evict each other.
  CacheLevel c("t", 4 * kBlockBytes, 1);
  const Block fill = block_of(0);
  const Block dirty = block_of(0xAB);

  (void)c.access(1, true, &dirty, fill);
  // Find another address mapping to the same set by brute force.
  LineAddr conflict = 0;
  for (LineAddr a = 2; a < 4096; ++a) {
    CacheLevel probe("p", 4 * kBlockBytes, 1);
    (void)probe.access(1, false, nullptr, fill);
    if (!probe.access(a, false, nullptr, fill).hit && probe.contains(a) && !probe.contains(1)) {
      conflict = a;
      break;
    }
  }
  ASSERT_NE(conflict, 0u);
  const auto r = c.access(conflict, false, nullptr, fill);
  ASSERT_TRUE(r.writeback.has_value());
  EXPECT_EQ(r.writeback->line, 1u);
  EXPECT_EQ(r.writeback->data, dirty);
}

TEST(CacheLevel, LruEvictsLeastRecentlyUsed) {
  // One set of 2 ways: find three addresses in the same set.
  CacheLevel c("t", 2 * kBlockBytes, 2);  // 1 set, 2 ways
  const Block fill = block_of(0);
  (void)c.access(10, false, nullptr, fill);
  (void)c.access(20, false, nullptr, fill);
  (void)c.access(10, false, nullptr, fill);  // 10 is now MRU
  (void)c.access(30, false, nullptr, fill);  // must evict 20
  EXPECT_TRUE(c.contains(10));
  EXPECT_FALSE(c.contains(20));
  EXPECT_TRUE(c.contains(30));
}

TEST(CacheLevel, InvalidateReturnsDirtyData) {
  CacheLevel c("t", 8 * kBlockBytes, 2);
  const Block fill = block_of(0);
  const Block dirty = block_of(7);
  (void)c.access(5, true, &dirty, fill);
  const auto wb = c.invalidate(5);
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(wb->data, dirty);
  EXPECT_FALSE(c.contains(5));
  EXPECT_FALSE(c.invalidate(5).has_value());  // already gone
}

TEST(CacheLevel, PeekDoesNotDisturbState) {
  CacheLevel c("t", 8 * kBlockBytes, 2);
  const Block fill = block_of(3);
  (void)c.access(42, false, nullptr, fill);
  const std::uint64_t hits = c.hits();
  EXPECT_NE(c.peek(42), nullptr);
  EXPECT_EQ(*c.peek(42), fill);
  EXPECT_EQ(c.peek(43), nullptr);
  EXPECT_EQ(c.hits(), hits);
}

TEST(Hierarchy, DirtyDataFlowsL1ToL2ToMemory) {
  HierarchyConfig cfg;
  cfg.cores = 1;
  cfg.l1_bytes = 2 * kBlockBytes;  // tiny caches to force evictions
  cfg.l1_assoc = 1;
  cfg.l2_bytes = 8 * kBlockBytes;
  cfg.l2_assoc = 1;
  std::map<LineAddr, Block> memory_state;
  CmpHierarchy h(cfg, [&](const Writeback& wb) { memory_state[wb.line] = wb.data; });

  // Store distinct data to many lines; evictions must eventually surface
  // every dirty value at the memory interface with the right content.
  std::map<LineAddr, Block> expected;
  for (LineAddr a = 0; a < 64; ++a) {
    Block data{};
    store_le<std::uint64_t>(data, 0, a * 1000 + 7);
    expected[a] = data;
    h.access(0, a, true, &data, block_of(0));
  }
  EXPECT_GT(h.writebacks_to_memory(), 30u);
  for (const auto& [line, data] : memory_state) {
    EXPECT_EQ(data, expected.at(line)) << "line " << line;
  }
}

TEST(Hierarchy, InclusiveBackInvalidationMergesDirtyL1Copy) {
  HierarchyConfig cfg;
  cfg.cores = 2;
  cfg.l1_bytes = 4 * kBlockBytes;
  cfg.l1_assoc = 2;
  cfg.l2_bytes = 2 * kBlockBytes;  // tiny inclusive L2: evictions frequent
  cfg.l2_assoc = 1;
  std::map<LineAddr, Block> memory_state;
  CmpHierarchy h(cfg, [&](const Writeback& wb) { memory_state[wb.line] = wb.data; });

  const Block dirty = block_of(0x5A);
  h.access(0, 1, true, &dirty, block_of(0));
  // Touch other lines until line 1 is evicted from L2 (and back-invalidated
  // from core 0's L1); its dirty L1 content must reach memory.
  for (LineAddr a = 100; a < 140 && !memory_state.count(1); ++a) {
    h.access(1, a, false, nullptr, block_of(0));
  }
  ASSERT_TRUE(memory_state.count(1));
  EXPECT_EQ(memory_state[1], dirty);
}

TEST(CmpSimulator, WpkiTracksTableThreeTargets) {
  // Coarse check on two contrasting apps; the table3 bench reports all 15.
  for (const char* name : {"lbm", "astar"}) {
    const auto& app = profile_by_name(name);
    CmpSimulator sim(app, HierarchyConfig{}, 5);
    sim.run(30000);
    sim.reset_stats();
    sim.run(60000);
    EXPECT_GT(sim.wpki(), app.wpki * 0.3) << name;
    EXPECT_LT(sim.wpki(), app.wpki * 3.0) << name;
  }
}

TEST(CmpSimulator, WritebacksCarryCompressibleValues) {
  const auto& app = profile_by_name("zeusmp");
  std::uint64_t zeroish = 0;
  std::uint64_t total = 0;
  CmpSimulator sim(app, HierarchyConfig{}, 6, [&](const Writeback& wb) {
    ++total;
    std::size_t zero_bytes = 0;
    for (auto b : wb.data) zero_bytes += b == 0 ? 1u : 0u;
    zeroish += zero_bytes > 48 ? 1u : 0u;
  });
  sim.run(40000);
  ASSERT_GT(total, 50u);
  EXPECT_GT(static_cast<double>(zeroish) / static_cast<double>(total), 0.8)
      << "zeusmp write-backs must be zero-dominated";
}

}  // namespace
}  // namespace pcmsim
