// Integration tests of PcmSystem: end-to-end data integrity in functional-
// verify mode, mode-specific behaviours (sliding, rotation, recycling), and
// wear-out ordering between the paper's four configurations.
#include <gtest/gtest.h>

#include <map>

#include "core/system.hpp"
#include "sim/lifetime.hpp"
#include "workload/trace.hpp"

namespace pcmsim {
namespace {

SystemConfig small_config(SystemMode mode, double endurance = 300.0) {
  SystemConfig cfg;
  cfg.mode = mode;
  cfg.device.lines = 64;
  cfg.device.endurance_mean = endurance;
  cfg.device.endurance_cov = 0.15;
  cfg.device.seed = 11;
  cfg.banks = 4;
  cfg.gap_interval = 20;
  cfg.seed = 11;
  return cfg;
}

TEST(System, FunctionalReadBackMatchesWrites) {
  auto cfg = small_config(SystemMode::kCompWF, /*endurance=*/1e4);
  cfg.functional_verify = true;
  PcmSystem sys(cfg);
  const auto& app = profile_by_name("gcc");
  TraceGenerator gen(app, sys.logical_lines(), 42);

  std::map<LineAddr, Block> expected;
  for (int i = 0; i < 3000; ++i) {
    const auto ev = gen.next();
    const auto out = sys.write(ev.line, ev.data);
    ASSERT_TRUE(out.stored);
    expected[ev.line] = ev.data;
  }
  for (const auto& [line, data] : expected) {
    EXPECT_EQ(sys.read(line), data);
  }
}

TEST(System, FunctionalReadBackSurvivesWearOut) {
  // Low endurance: cells die during the run, and the ECP path plus window
  // sliding must keep every stored line recoverable bit-exactly.
  auto cfg = small_config(SystemMode::kCompWF, /*endurance=*/60.0);
  cfg.functional_verify = true;
  PcmSystem sys(cfg);
  const auto& app = profile_by_name("milc");
  TraceGenerator gen(app, sys.logical_lines(), 7);

  std::map<LineAddr, Block> expected;
  for (int i = 0; i < 20000 && !sys.failed(); ++i) {
    const auto ev = gen.next();
    const auto out = sys.write(ev.line, ev.data);
    if (out.stored) {
      expected[ev.line] = ev.data;
    } else {
      expected.erase(ev.line);  // data loss event; line is dead
    }
    // Gap moves may kill migrating lines; drop entries that died.
    for (auto it = expected.begin(); it != expected.end();) {
      if (sys.line_meta(sys.physical_of(it->first)).dead ||
          !sys.line_meta(sys.physical_of(it->first)).ever_written) {
        it = expected.erase(it);
      } else {
        ++it;
      }
    }
  }
  ASSERT_GT(sys.array().total_faults(), 0u) << "test requires real wear-out";
  for (const auto& [line, data] : expected) {
    EXPECT_EQ(sys.read(line), data);
  }
}

TEST(System, BaselineNeverCompresses) {
  PcmSystem sys(small_config(SystemMode::kBaseline, 1e4));
  const auto& app = profile_by_name("zeusmp");  // highly compressible
  TraceGenerator gen(app, sys.logical_lines(), 1);
  for (int i = 0; i < 500; ++i) {
    const auto ev = gen.next();
    const auto out = sys.write(ev.line, ev.data);
    EXPECT_FALSE(out.compressed);
    EXPECT_EQ(out.size_bytes, 64);
  }
  EXPECT_EQ(sys.stats().compressed_writes, 0u);
}

TEST(System, CompStoresCompressibleDataCompressed) {
  PcmSystem sys(small_config(SystemMode::kComp, 1e4));
  const auto& app = profile_by_name("zeusmp");
  TraceGenerator gen(app, sys.logical_lines(), 1);
  for (int i = 0; i < 500; ++i) {
    const auto ev = gen.next();
    (void)sys.write(ev.line, ev.data);
  }
  const auto& st = sys.stats();
  EXPECT_GT(st.compressed_writes, st.uncompressed_writes * 5);
  EXPECT_LT(st.compressed_size.mean(), 10.0);  // zeusmp CR ~0.05
}

TEST(System, CompWindowsSitAtLsbWithoutRotation) {
  PcmSystem sys(small_config(SystemMode::kComp, 1e4));
  const auto& app = profile_by_name("milc");
  TraceGenerator gen(app, sys.logical_lines(), 2);
  for (int i = 0; i < 300; ++i) {
    const auto ev = gen.next();
    const auto out = sys.write(ev.line, ev.data);
    if (out.compressed) {
      EXPECT_EQ(out.start_byte, 0) << "naive Comp maps windows to LSB";
    }
  }
}

TEST(System, RotationMovesWindowStarts) {
  auto cfg = small_config(SystemMode::kCompW, 1e4);
  cfg.rotation_threshold = 50;
  PcmSystem sys(cfg);
  const auto& app = profile_by_name("milc");
  TraceGenerator gen(app, sys.logical_lines(), 2);
  std::set<unsigned> starts;
  for (int i = 0; i < 4000; ++i) {
    const auto ev = gen.next();
    const auto out = sys.write(ev.line, ev.data);
    if (out.compressed) starts.insert(out.start_byte);
  }
  EXPECT_GT(starts.size(), 8u) << "intra-line WL must spread window starts";
}

TEST(System, HeuristicStoresVolatileLinesUncompressed) {
  auto cfg = small_config(SystemMode::kCompWF, 1e4);
  PcmSystem sys(cfg);
  const auto& app = profile_by_name("bzip2");  // high size volatility
  TraceGenerator gen(app, sys.logical_lines(), 3);
  for (int i = 0; i < 5000; ++i) {
    const auto ev = gen.next();
    (void)sys.write(ev.line, ev.data);
  }
  EXPECT_GT(sys.stats().uncompressed_writes, 100u)
      << "Fig 8 heuristic must divert some volatile writes";
}

TEST(System, DeadLinesRecycleUnderCompWF) {
  auto cfg = small_config(SystemMode::kCompWF, /*endurance=*/40.0);
  PcmSystem sys(cfg);
  const auto& app = profile_by_name("milc");
  TraceGenerator gen(app, sys.logical_lines(), 5);
  for (int i = 0; i < 60000 && !sys.failed(); ++i) {
    const auto ev = gen.next();
    (void)sys.write(ev.line, ev.data);
  }
  EXPECT_GT(sys.stats().uncorrectable_events, 0u);
  EXPECT_GT(sys.stats().recycled_lines, 0u) << "Comp+WF revives dead blocks";
}

TEST(System, WearOutKillsTheSystemEventually) {
  auto cfg = small_config(SystemMode::kBaseline, /*endurance=*/30.0);
  PcmSystem sys(cfg);
  const auto& app = profile_by_name("lbm");
  TraceGenerator gen(app, sys.logical_lines(), 6);
  std::uint64_t writes = 0;
  while (!sys.failed() && writes < 2'000'000) {
    const auto ev = gen.next();
    (void)sys.write(ev.line, ev.data);
    ++writes;
  }
  EXPECT_TRUE(sys.failed());
  EXPECT_GE(sys.dead_fraction(), 0.5);
}

TEST(System, TolerableFaultsExceedSchemeCapabilityUnderCompWF) {
  auto cfg = small_config(SystemMode::kCompWF, /*endurance=*/40.0);
  PcmSystem sys(cfg);
  const auto& app = profile_by_name("cactusADM");  // tiny windows dodge faults
  TraceGenerator gen(app, sys.logical_lines(), 8);
  for (int i = 0; i < 80000 && !sys.failed(); ++i) {
    const auto ev = gen.next();
    (void)sys.write(ev.line, ev.data);
  }
  // Lines must have died with far more faults than ECP-6's nominal strength.
  ASSERT_GT(sys.stats().faults_at_death.count(), 0u);
  EXPECT_GT(sys.stats().faults_at_death.mean(), 6.0);
}

TEST(Lifetime, CompWFOutlivesBaselineOnCompressibleWorkload) {
  LifetimeConfig lc;
  lc.system = small_config(SystemMode::kBaseline, 200.0);
  lc.system.device.lines = 256;
  lc.max_writes = 20'000'000;
  const auto& app = profile_by_name("milc");
  const auto base = run_lifetime(app, lc, 99);
  ASSERT_TRUE(base.reached_failure);

  lc.system.mode = SystemMode::kCompWF;
  const auto wf = run_lifetime(app, lc, 99);
  ASSERT_TRUE(wf.reached_failure);
  EXPECT_GT(wf.writes_to_failure, base.writes_to_failure * 2)
      << "Comp+WF must clearly outlive Baseline on milc";
}

TEST(Lifetime, MonthsModelScalesWithEnduranceAndRegion) {
  LifetimeConfig lc;
  lc.system = small_config(SystemMode::kBaseline, 100.0);
  LifetimeResult r;
  r.writes_to_failure = 1'000'000;
  const auto& app = profile_by_name("astar");
  const double months = lifetime_months(r, lc, app);
  EXPECT_GT(months, 0.0);

  LifetimeConfig lc2 = lc;
  lc2.system.device.endurance_mean = 200.0;  // same sim writes, 2x endurance scale
  EXPECT_NEAR(lifetime_months(r, lc2, app), months / 2.0, months * 1e-9);

  LifetimeConfig lc3 = lc;
  lc3.system.device.lines = lc.system.device.lines * 2;
  EXPECT_NEAR(lifetime_months(r, lc3, app), months / 2.0, months * 1e-9);
}

}  // namespace
}  // namespace pcmsim
