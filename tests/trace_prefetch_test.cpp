// PrefetchTraceSource: the double-buffered decorator must deliver a stream
// byte-identical to its inner source at any consumer batch size and any
// parallel-engine thread count, end finite traces cleanly, shut down cleanly
// mid-stream, and leave lifetime results unchanged when enabled.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "common/assert.hpp"
#include "common/parallel.hpp"
#include "sim/lifetime.hpp"
#include "trace/file_source.hpp"
#include "trace/prefetch_source.hpp"
#include "trace/sampled_source.hpp"
#include "trace/trace_file.hpp"
#include "workload/app_profile.hpp"

namespace pcmsim {
namespace {

std::vector<WritebackEvent> drain_n(TraceSource& source, std::size_t total,
                                    std::size_t batch_size) {
  std::vector<WritebackEvent> got;
  std::vector<WritebackEvent> batch(batch_size);
  while (got.size() < total) {
    const std::size_t want = std::min(batch.size(), total - got.size());
    const std::size_t n = source.next_batch(std::span(batch.data(), want));
    if (n == 0) break;
    got.insert(got.end(), batch.begin(), batch.begin() + static_cast<std::ptrdiff_t>(n));
  }
  return got;
}

void expect_same(const std::vector<WritebackEvent>& a,
                 const std::vector<WritebackEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].line, b[i].line) << "event " << i;
    EXPECT_EQ(a[i].data, b[i].data) << "event " << i;
  }
}

TEST(PrefetchTraceSource, ByteIdenticalToInnerAcrossBatchSizesAndThreads) {
  const AppProfile& app = profile_by_name("gcc");
  constexpr std::size_t kEvents = 20000;
  SampledTraceSource reference(app, 1 << 12, 7);
  const auto expected = drain_n(reference, kEvents, 256);

  const std::size_t saved = parallel_threads();
  for (const std::size_t threads : {1u, 2u, 7u}) {
    set_parallel_threads(threads);
    // Batch sizes around, below, and above the decorator's buffer size, plus
    // a prime that never aligns with either buffer or tile boundaries.
    for (const std::size_t batch : {1u, 97u, 256u, 4096u, 5000u}) {
      SampledTraceSource inner(app, 1 << 12, 7);
      PrefetchTraceSource prefetched(inner);
      expect_same(expected, drain_n(prefetched, kEvents, batch));
      EXPECT_EQ(prefetched.events(), kEvents);
    }
  }
  set_parallel_threads(saved);
}

TEST(PrefetchTraceSource, SmallBufferStillDeliversIdenticalStream) {
  // A tiny buffer maximizes producer/consumer handoffs (every few events), so
  // ordering bugs in the swap protocol cannot hide behind large buffers.
  const AppProfile& app = profile_by_name("milc");
  SampledTraceSource reference(app, 1 << 10, 3);
  const auto expected = drain_n(reference, 5000, 256);
  SampledTraceSource inner(app, 1 << 10, 3);
  PrefetchTraceSource prefetched(inner, 16);
  expect_same(expected, drain_n(prefetched, 5000, 61));
}

TEST(PrefetchTraceSource, FiniteSourceEndsCleanly) {
  const auto path =
      (std::filesystem::temp_directory_path() / "pcmsim_prefetch_finite.trace").string();
  {
    SampledTraceSource gen(profile_by_name("lbm"), 1 << 10, 11);
    std::vector<WritebackEvent> batch(700);  // not a multiple of the buffer size
    (void)gen.next_batch(batch);
    TraceFileWriter writer(path, 64);
    for (const auto& ev : batch) writer.append(ev);
    writer.close();
  }
  FileTraceSource reference(path);
  const auto expected = drain_n(reference, 10000, 256);
  ASSERT_EQ(expected.size(), 700u);

  FileTraceSource inner(path);
  PrefetchTraceSource prefetched(inner, 256);
  const auto got = drain_n(prefetched, 10000, 131);
  expect_same(expected, got);
  // Exhausted: every further call returns 0 instead of blocking.
  std::vector<WritebackEvent> more(8);
  EXPECT_EQ(prefetched.next_batch(more), 0u);
  EXPECT_EQ(prefetched.next_batch(more), 0u);
  std::remove(path.c_str());
}

TEST(PrefetchTraceSource, EmptySourceReturnsZeroImmediately) {
  const auto path =
      (std::filesystem::temp_directory_path() / "pcmsim_prefetch_empty.trace").string();
  {
    TraceFileWriter writer(path, 64);
    writer.close();
  }
  FileTraceSource inner(path);
  PrefetchTraceSource prefetched(inner);
  std::vector<WritebackEvent> batch(16);
  EXPECT_EQ(prefetched.next_batch(batch), 0u);
  std::remove(path.c_str());
}

TEST(PrefetchTraceSource, CleanShutdownMidStream) {
  // Destroying the decorator while the worker is mid-fill (and while ready
  // buffers are unconsumed) must join cleanly — no leak, hang, or touch of
  // the inner source after destruction. TSan (ctest -L trace) verifies the
  // handoff ordering.
  const AppProfile& app = profile_by_name("gcc");
  for (int i = 0; i < 20; ++i) {
    SampledTraceSource inner(app, 1 << 10, static_cast<std::uint64_t>(i));
    PrefetchTraceSource prefetched(inner, 64);
    std::vector<WritebackEvent> batch(static_cast<std::size_t>(1 + 17 * i));
    (void)prefetched.next_batch(batch);
    // destructor runs here, mid-stream
  }
}

TEST(PrefetchTraceSource, ResetReplaysIdenticalStream) {
  SampledTraceSource inner(profile_by_name("milc"), 1 << 10, 21);
  PrefetchTraceSource prefetched(inner);
  const auto first = drain_n(prefetched, 3000, 100);
  prefetched.reset();
  EXPECT_EQ(prefetched.events(), 0u);
  const auto second = drain_n(prefetched, 3000, 77);
  expect_same(first, second);
}

TEST(PrefetchTraceSource, LifetimeResultUnchangedByPrefetch) {
  // The end-to-end guarantee the decorator exists to uphold: run_lifetime
  // with config.prefetch on and off consumes the same stream, so every
  // reported statistic is identical.
  const AppProfile& app = profile_by_name("milc");
  LifetimeConfig lc;
  lc.system.device.lines = 256;
  lc.system.device.endurance_mean = 150;
  lc.max_writes = 300000;
  LifetimeConfig pf = lc;
  pf.prefetch = true;

  const LifetimeResult plain = run_lifetime(app, lc, 42);
  const LifetimeResult prefetched = run_lifetime(app, pf, 42);
  EXPECT_EQ(plain.writes_to_failure, prefetched.writes_to_failure);
  EXPECT_EQ(plain.reached_failure, prefetched.reached_failure);
  EXPECT_EQ(plain.programmed_bits, prefetched.programmed_bits);
  EXPECT_EQ(plain.uncorrectable_events, prefetched.uncorrectable_events);
  EXPECT_EQ(plain.recycled_lines, prefetched.recycled_lines);
  EXPECT_DOUBLE_EQ(plain.mean_flips_per_write, prefetched.mean_flips_per_write);
  EXPECT_DOUBLE_EQ(plain.mean_compressed_size, prefetched.mean_compressed_size);
}

TEST(PrefetchTraceSource, ComposesOverParallelFileDecode) {
  // Full pipeline: parallel chunk decode feeding the prefetch decorator must
  // still deliver the serial stream byte-for-byte.
  const auto path =
      (std::filesystem::temp_directory_path() / "pcmsim_prefetch_par.trace").string();
  {
    SampledTraceSource gen(profile_by_name("gcc"), 1 << 12, 13);
    std::vector<WritebackEvent> batch(2000);
    (void)gen.next_batch(batch);
    TraceFileWriter writer(path, 128);
    for (const auto& ev : batch) writer.append(ev);
    writer.close();
  }
  FileTraceSource reference(path, TraceDecode::kSerial);
  const auto expected = drain_n(reference, 5000, 256);

  const std::size_t saved = parallel_threads();
  set_parallel_threads(7);
  FileTraceSource inner(path, TraceDecode::kParallel);
  PrefetchTraceSource prefetched(inner, 192);
  expect_same(expected, drain_n(prefetched, 5000, 89));
  set_parallel_threads(saved);
  std::remove(path.c_str());
}

TEST(PrefetchTraceSource, ComposesInsideOuterParallelMapRegion) {
  // lifetime_study fans its four system modes out with parallel_map; each
  // task wraps a parallel-decode file source in a prefetch decorator. The
  // prefetch workers must not block on the pool the outer region holds (that
  // deadlocked: the outer tasks wait on the workers, the workers on the
  // pool); a busy pool degrades their decode to serial, which delivers the
  // identical stream.
  const auto path =
      (std::filesystem::temp_directory_path() / "pcmsim_prefetch_nested.trace").string();
  {
    SampledTraceSource gen(profile_by_name("gcc"), 1 << 12, 17);
    std::vector<WritebackEvent> batch(2000);
    (void)gen.next_batch(batch);
    TraceFileWriter writer(path, 128);
    for (const auto& ev : batch) writer.append(ev);
    writer.close();
  }
  FileTraceSource reference(path, TraceDecode::kSerial);
  const auto expected = drain_n(reference, 5000, 256);

  const std::size_t saved = parallel_threads();
  for (const std::size_t threads : {2u, 7u}) {
    set_parallel_threads(threads);
    const std::vector<std::size_t> lanes = {0, 1, 2, 3};
    const auto streams = parallel_map(lanes, [&](std::size_t lane) {
      FileTraceSource inner(path, TraceDecode::kParallel);
      PrefetchTraceSource prefetched(inner, 192);
      return drain_n(prefetched, 5000, 83 + lane);
    });
    for (const auto& got : streams) expect_same(expected, got);
  }
  set_parallel_threads(saved);
  std::remove(path.c_str());
}

TEST(PrefetchTraceSource, InnerErrorRethrownFromNextBatch) {
  // A ContractViolation thrown by the inner source on the worker thread must
  // surface from the consumer's next_batch — not std::terminate the process —
  // with no partial batch from the failing fill, and stay sticky afterwards.
  const auto path =
      (std::filesystem::temp_directory_path() / "pcmsim_prefetch_corrupt.trace").string();
  {
    SampledTraceSource gen(profile_by_name("gcc"), 1 << 12, 19);
    std::vector<WritebackEvent> batch(640);
    (void)gen.next_batch(batch);
    TraceFileWriter writer(path, 64);
    for (const auto& ev : batch) writer.append(ev);
    writer.close();
  }
  {  // flip a payload byte in the first chunk: the very first fill hits it
    TraceFileReader clean(path);
    const auto dir = clean.directory();
    ASSERT_FALSE(dir.empty());
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    const auto pos =
        static_cast<std::streamoff>(dir[0].offset + 12 + dir[0].payload_bytes / 2);
    f.seekg(pos);
    const int byte = f.get();
    f.seekp(pos);
    f.put(static_cast<char>(byte ^ 0x40));
  }
  for (const TraceDecode decode : {TraceDecode::kSerial, TraceDecode::kParallel}) {
    FileTraceSource inner(path, decode);
    PrefetchTraceSource prefetched(inner, 256);
    std::vector<WritebackEvent> batch(128);
    EXPECT_THROW(
        {
          while (prefetched.next_batch(std::span(batch.data(), batch.size())) != 0) {
          }
        },
        ContractViolation);
    // Sticky: the stream stays errored instead of hanging or ending quietly.
    EXPECT_THROW((void)prefetched.next_batch(std::span(batch.data(), batch.size())),
                 ContractViolation);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pcmsim
