#include "compression/bdi.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pcmsim {
namespace {

Block block_of_u64(std::uint64_t base, std::uint64_t stride) {
  Block b{};
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t v = base + stride * i;
    std::memcpy(b.data() + i * 8, &v, 8);
  }
  return b;
}

TEST(Bdi, ZeroBlockCompressesToOneByte) {
  BdiCompressor c;
  const auto r = c.compress(zero_block());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size_bytes(), 1u);
  EXPECT_EQ(static_cast<BdiLayout>(r->encoding), BdiLayout::kZeros);
  EXPECT_EQ(c.decompress(*r), zero_block());
}

TEST(Bdi, RepeatedWordCompressesToEightBytes) {
  BdiCompressor c;
  const Block b = block_of_u64(0xDEADBEEFCAFEF00Dull, 0);
  const auto r = c.compress(b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size_bytes(), 8u);
  EXPECT_EQ(static_cast<BdiLayout>(r->encoding), BdiLayout::kRep8);
  EXPECT_EQ(c.decompress(*r), b);
}

TEST(Bdi, NarrowDeltasPickSmallLayout) {
  BdiCompressor c;
  const Block b = block_of_u64(0x7000'0000'0000'0000ull, 3);  // deltas fit 1 byte
  const auto r = c.compress(b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(static_cast<BdiLayout>(r->encoding), BdiLayout::kB8D1);
  EXPECT_EQ(r->size_bytes(), bdi_layout_size(BdiLayout::kB8D1));
  EXPECT_EQ(c.decompress(*r), b);
}

TEST(Bdi, MixedSmallAndBaseValuesUseZeroBase) {
  BdiCompressor c;
  // Alternating small immediates and large near-base values: the dual-base
  // design (explicit base + implicit zero base) must capture both.
  Block b{};
  for (std::size_t i = 0; i < 8; ++i) {
    const std::uint64_t v = (i % 2 == 0) ? i : 0x0123'4567'89AB'0000ull + i;
    std::memcpy(b.data() + i * 8, &v, 8);
  }
  const auto r = c.compress(b);
  ASSERT_TRUE(r.has_value());
  EXPECT_LT(r->size_bytes(), kBlockBytes);
  EXPECT_EQ(c.decompress(*r), b);
}

TEST(Bdi, RandomDataDoesNotCompress) {
  BdiCompressor c;
  Rng rng(7);
  Block b{};
  for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
  EXPECT_FALSE(c.compress(b).has_value());
}

TEST(Bdi, LayoutSizesMatchGeometry) {
  EXPECT_EQ(bdi_layout_size(BdiLayout::kZeros), 1u);
  EXPECT_EQ(bdi_layout_size(BdiLayout::kRep8), 8u);
  EXPECT_EQ(bdi_layout_size(BdiLayout::kB8D1), 8u + 8u + 1u);
  EXPECT_EQ(bdi_layout_size(BdiLayout::kB8D2), 8u + 16u + 1u);
  EXPECT_EQ(bdi_layout_size(BdiLayout::kB8D4), 8u + 32u + 1u);
  EXPECT_EQ(bdi_layout_size(BdiLayout::kB4D1), 4u + 16u + 2u);
  EXPECT_EQ(bdi_layout_size(BdiLayout::kB4D2), 4u + 32u + 2u);
  EXPECT_EQ(bdi_layout_size(BdiLayout::kB2D1), 2u + 32u + 4u);
}

TEST(Bdi, CompressAlwaysReturnsSmallestApplicableLayout) {
  BdiCompressor c;
  const Block b = block_of_u64(0x1122'3344'5566'0000ull, 0x100);  // deltas fit 2 bytes
  const auto best = c.compress(b);
  ASSERT_TRUE(best.has_value());
  for (auto layout : {BdiLayout::kZeros, BdiLayout::kRep8, BdiLayout::kB8D1, BdiLayout::kB8D2,
                      BdiLayout::kB8D4, BdiLayout::kB4D1, BdiLayout::kB4D2, BdiLayout::kB2D1}) {
    const auto alt = c.compress_with_layout(b, layout);
    if (alt) EXPECT_LE(best->size_bytes(), alt->size_bytes()) << to_string(layout);
  }
}

// Exhaustive-scan reference for the early-exit compress(): try every layout,
// keep the strictly smaller image (the first of equal-size candidates wins),
// exactly what compress() did before the early exit.
std::optional<CompressedBlock> exhaustive_compress(const BdiCompressor& c, const Block& b) {
  static constexpr BdiLayout kSizeOrder[] = {
      BdiLayout::kZeros, BdiLayout::kRep8, BdiLayout::kB8D1, BdiLayout::kB4D1,
      BdiLayout::kB8D2,  BdiLayout::kB2D1, BdiLayout::kB4D2, BdiLayout::kB8D4,
  };
  std::optional<CompressedBlock> best;
  for (const auto layout : kSizeOrder) {
    auto cand = c.compress_with_layout(b, layout);
    if (cand && (!best || cand->size_bytes() < best->size_bytes())) best = std::move(cand);
  }
  return best;
}

void expect_matches_exhaustive(const BdiCompressor& c, const Block& b, const char* what) {
  const auto fast = c.compress(b);
  const auto ref = exhaustive_compress(c, b);
  const auto probed = c.probe_size(b);
  ASSERT_EQ(fast.has_value(), ref.has_value()) << what;
  EXPECT_EQ(probed.has_value(), ref.has_value()) << what;
  if (!ref) return;
  EXPECT_EQ(fast->encoding, ref->encoding) << what;
  EXPECT_EQ(fast->size_bytes(), ref->size_bytes()) << what;
  EXPECT_EQ(fast->bytes, ref->bytes) << what;
  EXPECT_EQ(*probed, ref->size_bytes()) << what;
}

TEST(Bdi, EarlyExitMatchesExhaustiveScanOnAdversarialBlocks) {
  BdiCompressor c;
  expect_matches_exhaustive(c, zero_block(), "zeros");
  expect_matches_exhaustive(c, block_of_u64(0xDEADBEEFCAFEF00Dull, 0), "rep8");
  expect_matches_exhaustive(c, block_of_u64(0x7000'0000'0000'0000ull, 3), "b8d1");

  // Only the late b2d1 layout applies: 2-byte words in one narrow cluster
  // around 0x0100, but 4- and 8-byte views need multi-byte deltas.
  Block late{};
  for (std::size_t i = 0; i < 32; ++i) {
    const std::uint16_t v = static_cast<std::uint16_t>(0x0100 + (i % 3) * 0x30);
    std::memcpy(late.data() + i * 2, &v, 2);
  }
  {
    ASSERT_TRUE(BdiCompressor::layout_applies(late, BdiLayout::kB2D1));
    ASSERT_FALSE(BdiCompressor::layout_applies(late, BdiLayout::kB4D2));
    const auto r = c.compress(late);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(static_cast<BdiLayout>(r->encoding), BdiLayout::kB2D1);
  }
  expect_matches_exhaustive(c, late, "late-layout");

  // Equal-size tie: b2d1 and b4d2 are both 38 bytes and both apply (odd
  // 16-bit words pinned to the b2d1 base, even words split between the zero
  // base and the b2d1 base); the tie must go to b2d1, the earlier layout.
  Block tie{};
  for (std::size_t i = 0; i < 32; ++i) {
    const std::uint16_t v = (i % 2 == 1) ? std::uint16_t{0x1234}
                            : (i % 4 == 0) ? static_cast<std::uint16_t>(5 + i / 4)
                                           : static_cast<std::uint16_t>(0x1234 + (i % 8));
    std::memcpy(tie.data() + i * 2, &v, 2);
  }
  {
    ASSERT_TRUE(BdiCompressor::layout_applies(tie, BdiLayout::kB2D1));
    ASSERT_TRUE(BdiCompressor::layout_applies(tie, BdiLayout::kB4D2));
    const auto r = c.compress(tie);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(static_cast<BdiLayout>(r->encoding), BdiLayout::kB2D1);
  }
  expect_matches_exhaustive(c, tie, "tie");

  Rng rng(99);
  Block incompressible{};
  for (auto& byte : incompressible) byte = static_cast<std::uint8_t>(rng());
  expect_matches_exhaustive(c, incompressible, "incompressible");
}

TEST(Bdi, EarlyExitMatchesExhaustiveScanOnRandomBlocks) {
  BdiCompressor c;
  Rng rng(0xB0D1);
  for (int iter = 0; iter < 2000; ++iter) {
    Block b{};
    // Random base with random-width deltas in 2/4/8-byte granularity, the
    // same family the round-trip sweep uses, plus fully random blocks.
    if (iter % 4 == 0) {
      for (auto& byte : b) byte = static_cast<std::uint8_t>(rng());
    } else {
      const std::size_t k = std::size_t{1} << (1 + rng.next_below(3));  // 2,4,8
      const std::uint64_t base = rng();
      const unsigned delta_bits = 1 + static_cast<unsigned>(rng.next_below(40));
      for (std::size_t i = 0; i < kBlockBytes / k; ++i) {
        const std::uint64_t v = base + (rng() & ((1ull << delta_bits) - 1));
        std::memcpy(b.data() + i * k, &v, k);
      }
    }
    expect_matches_exhaustive(c, b, "random");
  }
}

// Property: any compressible block round-trips exactly, across a large sweep
// of structured random content.
class BdiRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BdiRoundTrip, StructuredRandomBlocksRoundTrip) {
  BdiCompressor c;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  int compressed = 0;
  for (int iter = 0; iter < 400; ++iter) {
    Block b{};
    // Random base with random-width deltas, in 2/4/8-byte granularity.
    const std::size_t k = std::size_t{1} << (1 + rng.next_below(3));  // 2,4,8
    const std::uint64_t base = rng();
    const unsigned delta_bits = 1 + static_cast<unsigned>(rng.next_below(40));
    for (std::size_t i = 0; i < kBlockBytes / k; ++i) {
      const std::uint64_t delta = rng() & ((1ull << delta_bits) - 1);
      const std::uint64_t v = base + delta;
      std::memcpy(b.data() + i * k, &v, k);
    }
    const auto r = c.compress(b);
    if (r) {
      ++compressed;
      EXPECT_LT(r->size_bytes(), kBlockBytes);
      EXPECT_EQ(c.decompress(*r), b) << "layout " << int(r->encoding);
    }
  }
  EXPECT_GT(compressed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BdiRoundTrip, ::testing::Range(0, 8));

}  // namespace
}  // namespace pcmsim
