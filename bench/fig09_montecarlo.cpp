// Figure 9: Monte-Carlo failure probability of a single 512-bit line as a
// function of injected stuck-at faults (uniform positions, modeling perfect
// intra-line wear-leveling) and compressed data size, for ECP-6, SAFER-32 and
// Aegis 17x31. One sub-table per scheme; columns are data sizes, rows are
// fault counts. The paper runs 100k injections per point (--trials).
#include <iostream>
#include <memory>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ecc/aegis.hpp"
#include "ecc/ecp.hpp"
#include "ecc/safer.hpp"
#include "sim/monte_carlo.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("fig09_montecarlo");
  MonteCarloConfig mc;
  mc.trials = static_cast<std::size_t>(args.get_int("trials", 20000));
  mc.wrap_windows = !args.get_bool("no-wrap");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const auto step = static_cast<std::size_t>(args.get_int("step", 8));
  const bool csv = args.get_bool("csv");

  const std::vector<std::size_t> sizes = {1, 8, 16, 20, 24, 32, 34, 36, 40, 64};
  std::vector<std::unique_ptr<HardErrorScheme>> schemes;
  schemes.push_back(std::make_unique<EcpScheme>(6));
  schemes.push_back(std::make_unique<SaferScheme>(32));
  schemes.push_back(std::make_unique<AegisScheme>(17, 31));

  for (const auto& scheme : schemes) {
    std::vector<std::string> header = {"errors"};
    for (auto s : sizes) header.push_back(std::to_string(s) + "B");
    TablePrinter table(header);

    // Every (fault count, data size) grid point is an independent MC run with
    // its own seed, so the grid parallelizes without changing any value.
    const std::size_t nrows = 128 / step;
    std::vector<double> grid(nrows * sizes.size());
    parallel_for(grid.size(), [&](std::size_t idx) {
      const std::size_t n = step * (idx / sizes.size() + 1);
      const std::size_t si = idx % sizes.size();
      Rng rng(seed + n * 131 + si);
      grid[idx] = mc_failure_probability(*scheme, sizes[si], n, mc, rng);
    });

    std::vector<std::size_t> half_point(sizes.size(), 0);  // first N with Pfail >= 0.5
    for (std::size_t r = 0; r < nrows; ++r) {
      const std::size_t n = step * (r + 1);
      std::vector<std::string> row = {std::to_string(n)};
      for (std::size_t si = 0; si < sizes.size(); ++si) {
        const double p = grid[r * sizes.size() + si];
        if (half_point[si] == 0 && p >= 0.5) half_point[si] = n;
        row.push_back(TablePrinter::fmt(p, 3));
      }
      table.add_row(std::move(row));
    }
    if (csv) {
      std::cout << scheme->name() << "\n";
      table.print_csv(std::cout);
    } else {
      table.print(std::cout, "Figure 9 (" + std::string(scheme->name()) +
                                 ") — failure probability vs injected faults, by data size");
      std::cout << "faults at Pfail=0.5:";
      for (std::size_t si = 0; si < sizes.size(); ++si) {
        std::cout << "  " << sizes[si] << "B:" << (half_point[si] ? std::to_string(half_point[si]) : ">128");
      }
      std::cout << "\n";
    }
  }
  if (!csv) {
    std::cout << "\nPaper reference (32B data, Pfail=0.5): ECP-6 ~18 faults, SAFER ~38, "
                 "Aegis ~41.\nSmaller data tolerates more faults under every scheme; "
                 "Aegis >= SAFER >= ECP.\n";
  }
  return 0;
}
