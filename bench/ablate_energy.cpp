// Extension bench: write energy. The paper argues compression's bit-flip
// changes translate directly into energy (Section III-A.1: more flips =>
// "increased energy consumption and decreased lifetime"). This bench
// quantifies programming energy per write-back (SET/RESET pulse model) for
// Baseline vs Comp+WF across the compressibility spectrum.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto scale = ExperimentScale::from_flag(args.get_bool("fast") ? "fast" : "default");

  TablePrinter table({"app", "base_pJ/write", "wf_pJ/write", "saving%"});
  double sum = 0;
  const std::vector<std::string> apps = {"cactusADM", "zeusmp", "milc", "gcc", "bzip2", "lbm"};
  for (const auto& name : apps) {
    const AppProfile& app = profile_by_name(name);
    double energy[2] = {0, 0};
    int i = 0;
    for (auto mode : {SystemMode::kBaseline, SystemMode::kCompWF}) {
      LifetimeConfig lc;
      lc.system.mode = mode;
      lc.system.device.lines = scale.physical_lines;
      lc.system.device.endurance_mean = scale.endurance_mean;
      lc.system.device.endurance_cov = scale.endurance_cov;
      lc.system.device.seed = 18;
      lc.max_writes = 4'000'000'000ull;
      std::cerr << "[energy] " << name << " / " << to_string(mode) << "...\n";
      energy[i++] = run_lifetime(app, lc, 100).energy_pj_per_write;
    }
    const double saving = 100.0 * (1.0 - energy[1] / energy[0]);
    sum += saving;
    table.add_row({name, TablePrinter::fmt(energy[0], 0), TablePrinter::fmt(energy[1], 0),
                   TablePrinter::fmt(saving, 1)});
  }
  table.add_row({"Average", "-", "-", TablePrinter::fmt(sum / static_cast<double>(apps.size()), 1)});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Extension — programming energy per write-back "
                           "(SET 13.5 pJ / RESET 19.2 pJ per bit)");
    std::cout << "High-CR apps write far fewer bits compressed; low-CR apps can pay an\n"
                 "energy premium from repacking entropy — the energy face of Fig 5.\n";
  }
  return 0;
}
