// Extension bench: write energy. The paper argues compression's bit-flip
// changes translate directly into energy (Section III-A.1: more flips =>
// "increased energy consumption and decreased lifetime"). This bench
// quantifies programming energy per write-back (SET/RESET pulse model) for
// Baseline vs Comp+WF across the compressibility spectrum.
#include <iostream>
#include <mutex>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("ablate_energy");
  const auto scale = ExperimentScale::from_flag(args.get_bool("fast") ? "fast" : "default");

  const std::vector<std::string> apps = {"cactusADM", "zeusmp", "milc", "gcc", "bzip2", "lbm"};

  // `--ecc <spec>` swaps the compressed lane's hard-error scheme (registry
  // grammar); the Baseline reference lane always runs ECP-6, so the saving
  // column stays comparable across schemes. Line-only schemes (SECDED) run
  // their lane in Baseline mode since they cannot sit behind a window.
  const std::string ecc_spec = args.get("ecc", "ecp6");
  const SystemMode wf_mode = scheme_traits(ecc_spec).baseline_only
                                 ? SystemMode::kBaseline
                                 : SystemMode::kCompWF;
  const std::vector<SystemMode> modes = {SystemMode::kBaseline, wf_mode};

  // Every (app, mode) run has fixed seeds and shares nothing — flatten the
  // grid into independent tasks.
  std::vector<double> energy(apps.size() * modes.size());
  std::mutex log_m;
  parallel_for(energy.size(), [&](std::size_t i) {
    const auto& name = apps[i / modes.size()];
    const auto mode = modes[i % modes.size()];
    LifetimeConfig lc;
    lc.system.mode = mode;
    if (i % modes.size() == 1) lc.system.ecc_spec = ecc_spec;
    lc.system.device.lines = scale.physical_lines;
    lc.system.device.endurance_mean = scale.endurance_mean;
    lc.system.device.endurance_cov = scale.endurance_cov;
    lc.system.device.seed = 18;
    lc.max_writes = 4'000'000'000ull;
    {
      const std::lock_guard lk(log_m);
      std::cerr << "[energy] " << name << " / " << to_string(mode) << "...\n";
    }
    energy[i] = run_lifetime(profile_by_name(name), lc, 100).energy_pj_per_write;
  });

  TablePrinter table({"app", "base_pJ/write", "wf_pJ/write", "saving%"});
  double sum = 0;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double base = energy[a * modes.size()];
    const double wf = energy[a * modes.size() + 1];
    const double saving = 100.0 * (1.0 - wf / base);
    sum += saving;
    table.add_row({apps[a], TablePrinter::fmt(base, 0), TablePrinter::fmt(wf, 0),
                   TablePrinter::fmt(saving, 1)});
  }
  table.add_row({"Average", "-", "-", TablePrinter::fmt(sum / static_cast<double>(apps.size()), 1)});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Extension — programming energy per write-back "
                           "(SET 13.5 pJ / RESET 19.2 pJ per bit)");
    std::cout << "High-CR apps write far fewer bits compressed; low-CR apps can pay an\n"
                 "energy premium from repacking entropy — the energy face of Fig 5.\n";
  }
  return 0;
}
