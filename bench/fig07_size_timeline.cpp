// Figure 7: compressed block size over consecutive writes for three
// representative hot blocks of bzip2 (volatile) and hmmer (stable).
#include <algorithm>
#include <iostream>
#include <map>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "compression/best_of.hpp"
#include "trace/sampled_source.hpp"

using namespace pcmsim;

namespace {

void trace_app(const std::string& name, int samples, std::uint64_t seed, bool csv) {
  const AppProfile& app = profile_by_name(name);
  SampledTraceSource src(app, 1 << 12, seed);
  TraceCursor gen(src);
  BestOfCompressor best;

  // Warm up to find three hot blocks.
  std::map<LineAddr, int> heat;
  for (int i = 0; i < 30000; ++i) ++heat[gen.next().line];
  std::vector<std::pair<int, LineAddr>> ranked;
  for (const auto& [line, count] : heat) ranked.emplace_back(count, line);
  std::sort(ranked.rbegin(), ranked.rend());
  // Follow the hottest *compressible* blocks (the paper plots representative
  // blocks, and an incompressible one would be a flat 64-byte line).
  std::vector<LineAddr> blocks;
  for (const auto& [count, line] : ranked) {
    if (best.probe_size(src.current_value(line)).has_value()) blocks.push_back(line);
    if (blocks.size() == 3) break;
  }

  std::map<LineAddr, std::vector<std::size_t>> sizes;
  while (true) {
    const auto ev = gen.next();
    auto it = sizes.find(ev.line);
    if (std::find(blocks.begin(), blocks.end(), ev.line) == blocks.end()) continue;
    const auto c = best.probe_size(ev.data);
    sizes[ev.line].push_back(c ? *c : kBlockBytes);
    bool done = sizes.size() == 3;
    for (const auto& [_, v] : sizes) done = done && v.size() >= static_cast<std::size_t>(samples);
    if (done) break;
    (void)it;
  }

  TablePrinter table({"write#", "block1_B", "block2_B", "block3_B"});
  for (int i = 0; i < samples; ++i) {
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(i)),
                   TablePrinter::fmt(static_cast<std::uint64_t>(sizes[blocks[0]][static_cast<std::size_t>(i)])),
                   TablePrinter::fmt(static_cast<std::uint64_t>(sizes[blocks[1]][static_cast<std::size_t>(i)])),
                   TablePrinter::fmt(static_cast<std::uint64_t>(sizes[blocks[2]][static_cast<std::size_t>(i)]))});
  }
  if (csv) {
    std::cout << name << "\n";
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Figure 7 (" + name + ") — compressed size of 3 hot blocks over "
                                                 "consecutive writes");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto samples = static_cast<int>(args.get_int("writes", 40));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 5));
  const bool csv = args.get_bool("csv");
  trace_app("bzip2", samples, seed, csv);
  trace_app("hmmer", samples, seed, csv);
  if (!csv) {
    std::cout << "Paper: bzip2 block sizes swing across most of 0..64B; hmmer stays nearly "
                 "flat.\n";
  }
  return 0;
}
