// Figure 12: average number of faulty cells in a failed 512-bit block under
// Comp+WF — the "recovered faulty cells" the sliding window + recycling reap
// beyond ECP-6's nominal strength (paper: ~3x more, i.e. ~18 on average;
// sjeng/milc/cactusADM reach 25-35).
#include <iostream>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("fig12_tolerable_errors");
  auto scale = ExperimentScale::from_flag(
      args.get_bool("paper") ? "paper" : (args.get_bool("fast") ? "fast" : "default"));
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // `--ecc <spec>` swaps the hard-error scheme (ECC registry grammar); the
  // "vs" column normalizes to the selected scheme's guaranteed strength.
  const std::string ecc_spec = args.get("ecc", "ecp6");
  const auto traits = scheme_traits(ecc_spec);
  const auto guaranteed = static_cast<double>(traits.guaranteed_correctable);
  const SystemMode mode =
      traits.baseline_only ? SystemMode::kBaseline : SystemMode::kCompWF;

  const auto apps = all_app_names();
  const auto cells = run_lifetime_matrix(apps, {mode}, scale, ecc_spec);

  // Keep the default invocation's column name and title byte-stable (the
  // committed EXPERIMENTS.md tables reference them).
  const bool is_default = ecc_spec == "ecp6";
  const std::string scheme_name{find_scheme_info(ecc_spec)
                                    ? find_scheme_info(ecc_spec)->name
                                    : std::string_view(ecc_spec)};
  TablePrinter table(
      {"app", "CR_paper", "faults_at_death", is_default ? "vs_ECP6" : "vs_guaranteed"});
  double sum = 0;
  for (const auto& name : apps) {
    const auto& cell = matrix_cell(cells, name, mode);
    const double f = cell.result.mean_faults_at_death;
    sum += f;
    table.add_row({name, TablePrinter::fmt(profile_by_name(name).table_cr, 2),
                   TablePrinter::fmt(f, 1), TablePrinter::fmt(f / guaranteed, 1) + "x"});
  }
  table.add_row({"Average", "-", TablePrinter::fmt(sum / 15.0, 1),
                 TablePrinter::fmt(sum / 15.0 / guaranteed, 1) + "x"});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Figure 12 — average stuck cells in a failed block (" +
                               std::string(to_string(mode)) + ", " + scheme_name + ")");
    if (is_default) {
      std::cout << "Paper: ~3x ECP-6's 6 cells on average; tolerance correlates with "
                   "compressibility (sjeng 25, milc 32, cactusADM 35).\n";
    }
  }
  return 0;
}
