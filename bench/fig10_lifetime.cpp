// Figure 10: lifetime of Comp, Comp+W and Comp+WF normalized to the Baseline
// system, per application and on average (the paper's headline result:
// Comp 1.35x avg but harmful for low-CR apps; Comp+W 3.2x; Comp+WF 4.3x).
#include <iostream>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("fig10_lifetime");
  auto scale = ExperimentScale::from_flag(
      args.get_bool("paper") ? "paper" : (args.get_bool("fast") ? "fast" : "default"));
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::vector<std::string> apps = all_app_names();
  if (args.has("apps")) {
    apps.clear();
    std::string list = args.get("apps", "");
    std::size_t pos = 0;
    while (pos != std::string::npos) {
      const auto comma = list.find(',', pos);
      apps.push_back(list.substr(pos, comma == std::string::npos ? comma : comma - pos));
      pos = comma == std::string::npos ? comma : comma + 1;
    }
  }

  const std::vector<SystemMode> modes = {SystemMode::kBaseline, SystemMode::kComp,
                                         SystemMode::kCompW, SystemMode::kCompWF};
  const auto cells = run_lifetime_matrix(apps, modes, scale);

  TablePrinter table({"app", "Comp", "Comp+W", "Comp+WF"});
  double gm[3] = {0, 0, 0};
  for (const auto& name : apps) {
    const double base =
        static_cast<double>(matrix_cell(cells, name, SystemMode::kBaseline).result.writes_to_failure);
    const double c =
        static_cast<double>(matrix_cell(cells, name, SystemMode::kComp).result.writes_to_failure) / base;
    const double w =
        static_cast<double>(matrix_cell(cells, name, SystemMode::kCompW).result.writes_to_failure) / base;
    const double wf =
        static_cast<double>(matrix_cell(cells, name, SystemMode::kCompWF).result.writes_to_failure) / base;
    gm[0] += c;
    gm[1] += w;
    gm[2] += wf;
    table.add_row({name, TablePrinter::fmt(c, 2), TablePrinter::fmt(w, 2),
                   TablePrinter::fmt(wf, 2)});
  }
  const double n = static_cast<double>(apps.size());
  table.add_row({"Average", TablePrinter::fmt(gm[0] / n, 2), TablePrinter::fmt(gm[1] / n, 2),
                 TablePrinter::fmt(gm[2] / n, 2)});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Figure 10 — lifetime normalized to Baseline");
    std::cout << "Paper averages: Comp 1.35x (but ~0.5x for bzip2/gcc), Comp+W 3.2x, "
                 "Comp+WF 4.3x.\nExpected shape: Comp hurts volatile/low-CR apps; W never "
                 "hurts; WF best, largest for high-CR apps (milc, zeusmp, cactusADM).\n";
  }
  return 0;
}
