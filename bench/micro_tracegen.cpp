// Trace-generation microbenchmark: legacy TraceGenerator vs the batched
// SampledTraceSource on the same workloads, plus v2 trace-file write/read
// throughput. Emits machine-readable JSON (committed numbers live in
// BENCH_tracegen.json).
//
// ROADMAP bottleneck context: at the PR-4 seed, trace generation was the
// single largest stage of every lifetime run (~1.5 us/event, ~230M rdtsc
// ticks per 150k events). The sampled source must cut kTraceGen to <= 1/4 of
// the legacy ticks/event at --events 150000 — this bench measures exactly
// that, per app and overall.
//
// `--expect_checksum N` exits non-zero when the deterministic work checksum
// (a rolling hash over every produced event of both sources) deviates — CI
// runs this so sampler/generator refactors that silently change the streams
// fail loudly. The checksum is machine-independent but does depend on the
// event count, so the gate pins --events too.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "trace/file_source.hpp"
#include "trace/sampled_source.hpp"
#include "trace/trace_file.hpp"
#include "trace/trace_source.hpp"

using namespace pcmsim;

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kApps[] = {"gcc", "milc", "lbm"};

/// Rolling order-sensitive hash over an event stream; deterministic and
/// machine-independent, so it doubles as the CI behaviour gate.
std::uint64_t fold_event(std::uint64_t h, const WritebackEvent& ev) {
  h = mix64(h ^ ev.line);
  for (std::size_t w = 0; w < kBlockBytes; w += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, ev.data.data() + w, 8);
    h = mix64(h ^ word);
  }
  return h;
}

struct SourceRun {
  double ticks_per_event = 0;
  double ns_per_event = 0;
  std::uint64_t checksum = 0;
};

/// Drains `events` events in 256-entry batches with kTraceGen profiling on,
/// returning per-event ticks (profiler) and wall ns.
SourceRun run_source(TraceSource& source, std::size_t events) {
  std::vector<WritebackEvent> batch(256);
  SourceRun run;
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  prof::reset();
  prof::set_enabled(true);
  const auto t0 = Clock::now();
  std::size_t done = 0;
  while (done < events) {
    const std::size_t want = std::min(batch.size(), events - done);
    const std::size_t n = source.next_batch(std::span(batch.data(), want));
    for (std::size_t i = 0; i < n; ++i) h = fold_event(h, batch[i]);
    done += n;
  }
  const auto t1 = Clock::now();
  prof::set_enabled(false);
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  run.ticks_per_event = static_cast<double>(prof::stage_ticks(prof::Stage::kTraceGen)) /
                        static_cast<double>(events);
  run.ns_per_event = static_cast<double>(ns) / static_cast<double>(events);
  run.checksum = h;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto events = static_cast<std::size_t>(args.get_int("events", 150000));
  const auto lines = static_cast<std::uint64_t>(args.get_int("lines", 4096));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string path = args.get("out", "/tmp/pcmsim_tracegen.trace");
  const auto expect_checksum = args.get_int("expect_checksum", -1);
  const std::size_t per_app = events / std::size(kApps);

  // --- Stage 1: legacy vs sampled generation, per app ----------------------
  std::uint64_t checksum = 0;
  double legacy_ticks = 0;
  double sampled_ticks = 0;
  double legacy_ns = 0;
  double sampled_ns = 0;
  std::cout << "{\n  \"events\": " << events << ",\n  \"apps\": {";
  bool first = true;
  for (const char* app_name : kApps) {
    const AppProfile& app = profile_by_name(app_name);
    GeneratorTraceSource legacy(app, lines, seed);
    SampledTraceSource sampled(app, lines, seed);
    const SourceRun lr = run_source(legacy, per_app);
    const SourceRun sr = run_source(sampled, per_app);
    legacy_ticks += lr.ticks_per_event;
    sampled_ticks += sr.ticks_per_event;
    legacy_ns += lr.ns_per_event;
    sampled_ns += sr.ns_per_event;
    checksum = mix64(checksum ^ lr.checksum ^ mix64(sr.checksum));
    std::cout << (first ? "" : ",") << "\n    \"" << app_name << "\": {"
              << "\"legacy_ticks_per_event\": " << lr.ticks_per_event
              << ", \"sampled_ticks_per_event\": " << sr.ticks_per_event
              << ", \"legacy_ns_per_event\": " << lr.ns_per_event
              << ", \"sampled_ns_per_event\": " << sr.ns_per_event << "}";
    first = false;
  }
  const double napps = static_cast<double>(std::size(kApps));
  std::cout << "\n  },\n"
            << "  \"legacy_ticks_per_event\": " << legacy_ticks / napps << ",\n"
            << "  \"sampled_ticks_per_event\": " << sampled_ticks / napps << ",\n"
            << "  \"tick_speedup\": "
            << (sampled_ticks > 0 ? legacy_ticks / sampled_ticks : 0.0) << ",\n"
            << "  \"legacy_ns_per_event\": " << legacy_ns / napps << ",\n"
            << "  \"sampled_ns_per_event\": " << sampled_ns / napps << ",\n"
            << "  \"ns_speedup\": " << (sampled_ns > 0 ? legacy_ns / sampled_ns : 0.0) << ",\n"
            << "  \"profile_compiled\": " << (prof::kCompiled ? "true" : "false") << ",\n";

  // --- Stage 2: v2 trace file write/read throughput ------------------------
  // A sampled gcc stream: mostly compressible, the representative capture
  // case. Throughput is event payload (72 B/record equivalent) over wall
  // time; bytes_per_record reports the on-disk footprint after compression.
  {
    SampledTraceSource source(profile_by_name("gcc"), lines, seed);
    std::vector<WritebackEvent> batch(256);
    const auto w0 = Clock::now();
    TraceFileWriter writer(path);
    std::size_t done = 0;
    while (done < events) {
      const std::size_t n =
          source.next_batch(std::span(batch.data(), std::min(batch.size(), events - done)));
      for (std::size_t i = 0; i < n; ++i) writer.append(batch[i]);
      done += n;
    }
    writer.close();
    const auto w1 = Clock::now();

    std::uint64_t file_checksum = 0x9E3779B97F4A7C15ull;
    const auto r0 = Clock::now();
    TraceFileReader reader(path);
    WritebackEvent ev;
    std::uint64_t read_back = 0;
    while (reader.next(ev)) {
      file_checksum = fold_event(file_checksum, ev);
      ++read_back;
    }
    const auto r1 = Clock::now();
    if (read_back != events) {
      std::cerr << "v2 roundtrip lost records: wrote " << events << ", read " << read_back
                << "\n";
      return 1;
    }
    checksum = mix64(checksum ^ file_checksum);

    std::ifstream f(path, std::ios::binary | std::ios::ate);
    const auto file_bytes = static_cast<double>(f.tellg());
    f.close();
    std::remove(path.c_str());
    const auto wall = [](Clock::time_point a, Clock::time_point b) {
      return static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count()) /
             1e9;
    };
    const double payload_mb =
        static_cast<double>(events) * (8 + kBlockBytes) / (1024.0 * 1024.0);
    std::cout << "  \"v2_file_bytes_per_record\": "
              << file_bytes / static_cast<double>(events) << ",\n"
              << "  \"v2_write_mb_per_sec\": " << payload_mb / wall(w0, w1) << ",\n"
              << "  \"v2_read_mb_per_sec\": " << payload_mb / wall(r0, r1) << ",\n";
  }

  const std::size_t gate = static_cast<std::size_t>(checksum & 0x7FFFFFFFull);
  std::cout << "  \"checksum\": " << gate << "\n}\n";
  if (expect_checksum >= 0 && static_cast<std::size_t>(expect_checksum) != gate) {
    std::cerr << "checksum mismatch: expected " << expect_checksum << ", got " << gate
              << " — trace source or file-format behaviour changed\n";
    return 1;
  }
  return 0;
}
