// Trace-subsystem microbenchmark: generation throughput of the default
// SampledTraceSource (and, on explicit opt-in, the quarantined legacy
// TraceGenerator), v2 trace-file write/read throughput, and chunk-decode
// throughput serial vs parallel at 1/2/4/8 threads. Emits machine-readable
// JSON (committed numbers live in BENCH_tracegen.json).
//
// `--source` selects what stage 1 measures:
//   sampled (default)  the SampledTraceSource every lifetime/figure run uses
//   legacy             sampled AND the legacy generator, plus speedup ratios
//                      (the bench's one flagged legacy entry point)
//   file               skip generation; only the file stages run
//
// ROADMAP bottleneck context: at the PR-4 seed, trace generation was the
// single largest stage of every lifetime run (~1.5 us/event). The sampled
// source cut kTraceGen to ~1/4.5 of the legacy ticks/event; the parallel
// decode stage below measures the remaining ingest cost for replayed files.
//
// `--expect_checksum N` exits non-zero when the deterministic work checksum
// deviates — a rolling hash over every event the default stages produce
// (sampled generation for 3 apps, the v2 file round-trip, and the parallel
// re-decode, which must match the serial stream bit-for-bit). CI runs this so
// sampler/file-format/parallel-decode refactors that silently change a stream
// fail loudly. The checksum is machine- and thread-count-independent but does
// depend on the event count, so the gate pins --events too.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "trace/file_source.hpp"
#include "trace/sampled_source.hpp"
#include "trace/trace_file.hpp"
#include "trace/trace_source.hpp"

using namespace pcmsim;

namespace {

using Clock = std::chrono::steady_clock;

constexpr const char* kApps[] = {"gcc", "milc", "lbm"};

/// Rolling order-sensitive hash over an event stream; deterministic and
/// machine-independent, so it doubles as the CI behaviour gate.
std::uint64_t fold_event(std::uint64_t h, const WritebackEvent& ev) {
  h = mix64(h ^ ev.line);
  for (std::size_t w = 0; w < kBlockBytes; w += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, ev.data.data() + w, 8);
    h = mix64(h ^ word);
  }
  return h;
}

double wall_seconds(Clock::time_point a, Clock::time_point b) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count()) /
         1e9;
}

struct SourceRun {
  double ticks_per_event = 0;
  double ns_per_event = 0;
  std::uint64_t checksum = 0;
  std::size_t events = 0;
};

/// Drains up to `events` events in 256-entry batches with kTraceGen profiling
/// on, returning per-event ticks (profiler), wall ns, and the stream hash.
SourceRun run_source(TraceSource& source, std::size_t events) {
  std::vector<WritebackEvent> batch(256);
  SourceRun run;
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  prof::reset();
  prof::set_enabled(true);
  const auto t0 = Clock::now();
  std::size_t done = 0;
  while (done < events) {
    const std::size_t want = std::min(batch.size(), events - done);
    const std::size_t n = source.next_batch(std::span(batch.data(), want));
    if (n == 0) break;
    for (std::size_t i = 0; i < n; ++i) h = fold_event(h, batch[i]);
    done += n;
  }
  const auto t1 = Clock::now();
  prof::set_enabled(false);
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  run.ticks_per_event = static_cast<double>(prof::stage_ticks(prof::Stage::kTraceGen)) /
                        static_cast<double>(done);
  run.ns_per_event = static_cast<double>(ns) / static_cast<double>(done);
  run.checksum = h;
  run.events = done;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto events = static_cast<std::size_t>(args.get_int("events", 150000));
  const auto lines = static_cast<std::uint64_t>(args.get_int("lines", 4096));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string path = args.get("out", "/tmp/pcmsim_tracegen.trace");
  const std::string source_kind = args.get("source", "sampled");
  const auto expect_checksum = args.get_int("expect_checksum", -1);
  if (source_kind != "sampled" && source_kind != "legacy" && source_kind != "file") {
    std::cerr << "--source must be 'sampled', 'legacy' or 'file'\n";
    return 1;
  }
  const std::size_t per_app = events / std::size(kApps);

  std::uint64_t checksum = 0;
  std::cout << "{\n  \"events\": " << events << ",\n  \"source\": \"" << source_kind
            << "\",\n";

  // --- Stage 1: generation throughput, per app -----------------------------
  // Default: the sampled source only (what every run now uses). `--source
  // legacy` additionally times the quarantined generator and reports the
  // speedup ratios the migration bought. The checksum folds only the sampled
  // streams so the gate value is identical for both modes.
  if (source_kind != "file") {
    const bool with_legacy = source_kind == "legacy";
    double legacy_ticks = 0;
    double sampled_ticks = 0;
    double legacy_ns = 0;
    double sampled_ns = 0;
    std::cout << "  \"apps\": {";
    bool first = true;
    for (const char* app_name : kApps) {
      const AppProfile& app = profile_by_name(app_name);
      SampledTraceSource sampled(app, lines, seed);
      const SourceRun sr = run_source(sampled, per_app);
      sampled_ticks += sr.ticks_per_event;
      sampled_ns += sr.ns_per_event;
      checksum = mix64(checksum ^ mix64(sr.checksum));
      std::cout << (first ? "" : ",") << "\n    \"" << app_name << "\": {"
                << "\"sampled_ticks_per_event\": " << sr.ticks_per_event
                << ", \"sampled_ns_per_event\": " << sr.ns_per_event;
      if (with_legacy) {
        GeneratorTraceSource legacy(app, lines, seed);
        const SourceRun lr = run_source(legacy, per_app);
        legacy_ticks += lr.ticks_per_event;
        legacy_ns += lr.ns_per_event;
        std::cout << ", \"legacy_ticks_per_event\": " << lr.ticks_per_event
                  << ", \"legacy_ns_per_event\": " << lr.ns_per_event;
      }
      std::cout << "}";
      first = false;
    }
    const double napps = static_cast<double>(std::size(kApps));
    std::cout << "\n  },\n"
              << "  \"sampled_ticks_per_event\": " << sampled_ticks / napps << ",\n"
              << "  \"sampled_ns_per_event\": " << sampled_ns / napps << ",\n";
    if (with_legacy) {
      std::cout << "  \"legacy_ticks_per_event\": " << legacy_ticks / napps << ",\n"
                << "  \"legacy_ns_per_event\": " << legacy_ns / napps << ",\n"
                << "  \"tick_speedup\": "
                << (sampled_ticks > 0 ? legacy_ticks / sampled_ticks : 0.0) << ",\n"
                << "  \"ns_speedup\": "
                << (sampled_ns > 0 ? legacy_ns / sampled_ns : 0.0) << ",\n";
    }
    std::cout << "  \"profile_compiled\": " << (prof::kCompiled ? "true" : "false")
              << ",\n";
  }

  // --- Stage 2: v2 trace file write/read throughput ------------------------
  // A sampled gcc stream: mostly compressible, the representative capture
  // case. Throughput is event payload (72 B/record equivalent) over wall
  // time; bytes_per_record reports the on-disk footprint after compression.
  const double payload_mb =
      static_cast<double>(events) * (8 + kBlockBytes) / (1024.0 * 1024.0);
  std::uint64_t serial_checksum = 0;
  {
    SampledTraceSource source(profile_by_name("gcc"), lines, seed);
    std::vector<WritebackEvent> batch(256);
    const auto w0 = Clock::now();
    TraceFileWriter writer(path);
    std::size_t done = 0;
    while (done < events) {
      const std::size_t n =
          source.next_batch(std::span(batch.data(), std::min(batch.size(), events - done)));
      for (std::size_t i = 0; i < n; ++i) writer.append(batch[i]);
      done += n;
    }
    writer.close();
    const auto w1 = Clock::now();

    std::uint64_t file_checksum = 0x9E3779B97F4A7C15ull;
    const auto r0 = Clock::now();
    TraceFileReader reader(path);
    WritebackEvent ev;
    std::uint64_t read_back = 0;
    while (reader.next(ev)) {
      file_checksum = fold_event(file_checksum, ev);
      ++read_back;
    }
    const auto r1 = Clock::now();
    if (read_back != events) {
      std::cerr << "v2 roundtrip lost records: wrote " << events << ", read " << read_back
                << "\n";
      return 1;
    }
    serial_checksum = file_checksum;
    checksum = mix64(checksum ^ file_checksum);

    std::ifstream f(path, std::ios::binary | std::ios::ate);
    const auto file_bytes = static_cast<double>(f.tellg());
    f.close();
    std::cout << "  \"v2_file_bytes_per_record\": "
              << file_bytes / static_cast<double>(events) << ",\n"
              << "  \"v2_write_mb_per_sec\": " << payload_mb / wall_seconds(w0, w1) << ",\n"
              << "  \"v2_read_mb_per_sec\": " << payload_mb / wall_seconds(r0, r1) << ",\n";
  }

  // --- Stage 3: chunk-decode throughput, serial vs parallel ----------------
  // Re-reads the stage-2 file through FileTraceSource in both decode modes.
  // The parallel sweep pins 1/2/4/8 threads; every delivered stream must hash
  // to the serial stream's value (byte-identical reassembly), and that
  // equality is folded into the gate so CI catches ordering bugs at any
  // thread count. events_per_sec counts delivered events; mb_per_sec is the
  // same 72 B/event payload basis as stage 2.
  {
    const std::size_t saved_threads = parallel_threads();
    const auto drain = [&](FileTraceSource& src) {
      std::vector<WritebackEvent> batch(256);
      std::uint64_t h = 0x9E3779B97F4A7C15ull;
      std::size_t done = 0;
      for (;;) {
        const std::size_t n = src.next_batch(std::span(batch.data(), batch.size()));
        if (n == 0) break;
        for (std::size_t i = 0; i < n; ++i) h = fold_event(h, batch[i]);
        done += n;
      }
      return std::pair<std::uint64_t, std::size_t>{h, done};
    };

    FileTraceSource serial(path, TraceDecode::kSerial);
    const auto s0 = Clock::now();
    const auto [sh, sn] = drain(serial);
    const auto s1 = Clock::now();
    if (sh != serial_checksum || sn != events) {
      std::cerr << "serial FileTraceSource diverged from TraceFileReader stream\n";
      return 1;
    }
    const double s_wall = wall_seconds(s0, s1);
    std::cout << "  \"v2_decode_serial_mb_per_sec\": " << payload_mb / s_wall << ",\n"
              << "  \"v2_decode_serial_events_per_sec\": "
              << static_cast<double>(events) / s_wall << ",\n"
              << "  \"v2_decode_parallel\": {";

    bool first = true;
    bool all_equal = true;
    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
      set_parallel_threads(threads);
      FileTraceSource par(path, TraceDecode::kParallel);
      const auto p0 = Clock::now();
      const auto [ph, pn] = drain(par);
      const auto p1 = Clock::now();
      all_equal = all_equal && ph == serial_checksum && pn == events;
      const double p_wall = wall_seconds(p0, p1);
      std::cout << (first ? "" : ",") << "\n    \"t" << threads << "\": {"
                << "\"mb_per_sec\": " << payload_mb / p_wall
                << ", \"events_per_sec\": " << static_cast<double>(events) / p_wall
                << ", \"matches_serial\": " << (ph == serial_checksum ? "true" : "false")
                << "}";
      first = false;
    }
    set_parallel_threads(saved_threads);
    std::cout << "\n  },\n";
    if (!all_equal) {
      std::cerr << "parallel decode stream diverged from serial order\n";
      std::remove(path.c_str());
      return 1;
    }
    // Fold the verified equality (not the thread-dependent timings) into the
    // gate: same value as folding the serial stream twice more.
    checksum = mix64(checksum ^ mix64(serial_checksum));
  }
  std::remove(path.c_str());

  const std::size_t gate = static_cast<std::size_t>(checksum & 0x7FFFFFFFull);
  std::cout << "  \"checksum\": " << gate << "\n}\n";
  if (expect_checksum >= 0 && static_cast<std::size_t>(expect_checksum) != gate) {
    std::cerr << "checksum mismatch: expected " << expect_checksum << ", got " << gate
              << " — trace source, file-format or parallel-decode behaviour changed\n";
    return 1;
  }
  return 0;
}
