// Front-tier matrix bench: lifetime amplification of the content-aware DRAM
// front tier (tier/front_tier.hpp) across tier size x policy x app.
//
// Every cell runs one sampled-trace lifetime simulation to the 50% capacity
// death criterion with the tier in front of the PCM region, plus one
// filterless baseline per app. The figure of merit is lifetime amplification:
//
//   amplification = offered_writes(cell) / offered_writes(baseline)
//
// i.e. how much more write-back traffic the workload pushed through before
// PCM death because the tier absorbed part of the stream. A plain-LRU tier
// already amplifies (write coalescing); the content-aware policies must beat
// it at equal DRAM capacity to earn their keep — EXPERIMENTS.md records the
// measured matrix, and CI pins the digest at --threads 1 and 8 (cells run
// via parallel_map with per-cell deterministic seeds, so the matrix is
// byte-identical at any thread count).
//
//   ./build/bench/front_tier --tier-kbs 8,16,32 --policies lru,comp,dedup
//   ./build/bench/front_tier --expect_checksum <pinned> --threads 8
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "sim/lifetime.hpp"

using namespace pcmsim;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    out.push_back(csv.substr(pos, end - pos));
    pos = end + 1;
  }
  expects(!out.empty(), "csv list must name at least one entry");
  return out;
}

/// One run of the matrix: a (app, kb, policy) cell, or an app's filterless
/// baseline when kb == 0.
struct Job {
  const AppProfile* app = nullptr;
  std::size_t kb = 0;
  TierPolicy policy = TierPolicy::kLru;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t threads = set_threads_from_cli(args);
  if (args.get_bool("profile")) prof::set_enabled(true);

  LifetimeConfig base;
  base.system.device.lines = static_cast<std::uint64_t>(args.get_int("lines", 512));
  base.system.device.endurance_mean = args.get_double("endurance", 200);
  base.system.device.endurance_cov = args.get_double("cov", 0.15);
  base.max_writes = static_cast<std::uint64_t>(args.get_int("max_writes", 100'000'000));
  const std::uint64_t trace_seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::vector<std::size_t> kbs;
  for (const std::string& s : split_csv(args.get("tier-kbs", "8,16,32"))) {
    kbs.push_back(static_cast<std::size_t>(std::stoull(s)));
  }
  std::vector<TierPolicy> policies;
  for (const std::string& s : split_csv(args.get("policies", "lru,silent,comp,dedup"))) {
    policies.push_back(tier_policy_from_string(s));
  }
  std::vector<AppProfile> apps;
  for (const std::string& s : split_csv(args.get("apps", "gcc,milc,lbm"))) {
    apps.push_back(profile_by_name(s));
  }

  // Baselines first, then cells in app-major / size / policy order; the same
  // fixed order drives the JSON, the digest, and the amplification lookup.
  std::vector<Job> jobs;
  for (const AppProfile& app : apps) jobs.push_back({&app, 0, TierPolicy::kLru});
  for (const AppProfile& app : apps) {
    for (const std::size_t kb : kbs) {
      for (const TierPolicy policy : policies) jobs.push_back({&app, kb, policy});
    }
  }

  const ScopedTimer timer("");
  const auto results = parallel_map(jobs, [&](const Job& job) {
    LifetimeConfig lc = base;
    if (job.kb > 0) lc.tier = FrontTierConfig::for_kb(job.kb, job.policy);
    // The trace seed is shared across cells so every run of one app faces
    // the identical write-back stream; only the tier differs.
    return run_lifetime(*job.app, lc, trace_seed);
  });
  const double wall = timer.elapsed_seconds();

  // Digest: integer observables of every job in fixed order. Thread-count
  // independence of the matrix is exactly this value being stable.
  std::uint64_t h = 0x46524f4e54545231ull;  // "FRONTTR1"
  const auto fold = [&h](std::uint64_t v) { h = mix64(h, v); };
  for (const LifetimeResult& r : results) {
    fold(r.offered_writes);
    fold(r.writes_to_failure);
    fold(r.reached_failure ? 1 : 0);
    fold(r.tier.hits);
    fold(r.tier.silent_drops);
    fold(r.tier.inserts);
    fold(r.tier.evictions);
    fold(r.tier.dedup_shares);
    fold(r.tier.fp_false_hits);
    fold(r.tier.words_forwarded);
    fold(r.tier.words_touched);
  }

  std::cout << "{\n"
            << "  \"threads\": " << threads << ",\n"
            << "  \"lines\": " << base.system.device.lines << ",\n"
            << "  \"endurance\": " << base.system.device.endurance_mean << ",\n"
            << "  \"seed\": " << trace_seed << ",\n"
            << "  \"wall_seconds\": " << wall << ",\n"
            << "  \"baselines\": [";
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const LifetimeResult& r = results[a];
    std::cout << (a ? "," : "") << "\n    {\"app\": \"" << apps[a].name
              << "\", \"offered\": " << r.offered_writes
              << ", \"writes_to_failure\": " << r.writes_to_failure
              << ", \"reached_failure\": " << (r.reached_failure ? "true" : "false")
              << "}";
  }
  std::cout << "\n  ],\n  \"cells\": [";
  bool first = true;
  for (std::size_t j = apps.size(); j < jobs.size(); ++j) {
    const Job& job = jobs[j];
    const LifetimeResult& r = results[j];
    // The app's baseline sits at the same index in the leading block.
    std::size_t a = 0;
    while (apps[a].name != job.app->name) ++a;
    const LifetimeResult& b = results[a];
    const double amp = b.offered_writes > 0
                           ? static_cast<double>(r.offered_writes) /
                                 static_cast<double>(b.offered_writes)
                           : 0.0;
    const double absorbed_pct =
        r.tier.offered > 0 ? 100.0 * static_cast<double>(r.tier.absorbed()) /
                                 static_cast<double>(r.tier.offered)
                           : 0.0;
    std::cout << (first ? "" : ",") << "\n    {\"app\": \"" << job.app->name
              << "\", \"tier_kb\": " << job.kb << ", \"policy\": \""
              << to_string(job.policy) << "\", \"offered\": " << r.offered_writes
              << ", \"pcm_writes\": " << r.writes_to_failure
              << ", \"absorbed\": " << r.tier.absorbed()
              << ", \"absorb_pct\": " << absorbed_pct
              << ", \"silent_drops\": " << r.tier.silent_drops
              << ", \"dedup_shares\": " << r.tier.dedup_shares
              << ", \"amplification\": " << amp
              << ", \"tier_lat_cycles\": " << r.tier_write_latency_cycles << "}";
    first = false;
  }
  std::cout << "\n  ],\n  \"checksum\": " << h << "\n}\n";

  if (prof::enabled()) {
    std::cout << "profile: ";
    prof::dump_json(std::cout, "");
    std::cout << "\n";
  }
  if (args.has("expect_checksum")) {
    const std::uint64_t expect = std::stoull(args.get("expect_checksum", "0"));
    if (expect != h) {
      std::cerr << "checksum mismatch: expected " << expect << ", got " << h
                << " — the front-tier matrix's observable behaviour changed\n";
      return 1;
    }
  }
  return 0;
}
