// Ablation: normalized lifetime (Comp+WF / Baseline) across endurance and
// region scales — the empirical justification for running lifetime studies
// with scaled-down endurance (DESIGN.md "Endurance scaling"). The ratio
// should stay roughly flat while absolute writes-to-failure scale linearly.
#include <iostream>
#include <mutex>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("ablate_endurance_scale");
  const std::string app_name = args.get("app", "milc");
  const AppProfile& app = profile_by_name(app_name);

  struct Scale {
    double endurance;
    std::uint64_t lines;
  };
  const std::vector<Scale> scales = {{150, 256}, {300, 384}, {600, 768}, {1200, 768}};
  const std::vector<SystemMode> modes = {SystemMode::kBaseline, SystemMode::kCompWF};

  // Flatten the (scale, mode) grid into independent tasks (fixed seeds).
  std::vector<double> writes(scales.size() * modes.size());
  std::mutex log_m;
  parallel_for(writes.size(), [&](std::size_t i) {
    const auto& s = scales[i / modes.size()];
    const auto mode = modes[i % modes.size()];
    LifetimeConfig lc;
    lc.system.mode = mode;
    lc.system.device.lines = s.lines;
    lc.system.device.endurance_mean = s.endurance;
    lc.system.device.endurance_cov = 0.15;
    lc.system.device.seed = 18;
    lc.system.seed = 1;
    lc.max_writes = 4'000'000'000ull;
    {
      const std::lock_guard lk(log_m);
      std::cerr << "[scale] E=" << s.endurance << " L=" << s.lines << " "
                << to_string(mode) << "...\n";
    }
    writes[i] = static_cast<double>(run_lifetime(app, lc, 100).writes_to_failure);
  });

  TablePrinter table({"endurance", "lines", "base_writes", "wf_writes", "wf_norm"});
  for (std::size_t s = 0; s < scales.size(); ++s) {
    const double base = writes[s * modes.size()];
    const double wf = writes[s * modes.size() + 1];
    table.add_row({TablePrinter::fmt(scales[s].endurance, 0), TablePrinter::fmt(scales[s].lines),
                   TablePrinter::fmt(base, 0), TablePrinter::fmt(wf, 0),
                   TablePrinter::fmt(wf / base, 2)});
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Ablation — endurance/region scale invariance (" + app_name + ")");
    std::cout << "Normalized lifetime should be stable across scales; absolute writes "
                 "scale with endurance x lines.\n";
  }
  return 0;
}
