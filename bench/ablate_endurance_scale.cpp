// Ablation: normalized lifetime (Comp+WF / Baseline) across endurance and
// region scales — the empirical justification for running lifetime studies
// with scaled-down endurance (DESIGN.md "Endurance scaling"). The ratio
// should stay roughly flat while absolute writes-to-failure scale linearly.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string app_name = args.get("app", "milc");
  const AppProfile& app = profile_by_name(app_name);

  struct Scale {
    double endurance;
    std::uint64_t lines;
  };
  const std::vector<Scale> scales = {{150, 256}, {300, 384}, {600, 768}, {1200, 768}};

  TablePrinter table({"endurance", "lines", "base_writes", "wf_writes", "wf_norm"});
  for (const auto& s : scales) {
    double writes[2] = {0, 0};
    int i = 0;
    for (auto mode : {SystemMode::kBaseline, SystemMode::kCompWF}) {
      LifetimeConfig lc;
      lc.system.mode = mode;
      lc.system.device.lines = s.lines;
      lc.system.device.endurance_mean = s.endurance;
      lc.system.device.endurance_cov = 0.15;
      lc.system.device.seed = 18;
      lc.system.seed = 1;
      lc.max_writes = 4'000'000'000ull;
      std::cerr << "[scale] E=" << s.endurance << " L=" << s.lines << " "
                << to_string(mode) << "...\n";
      writes[i++] = static_cast<double>(run_lifetime(app, lc, 100).writes_to_failure);
    }
    table.add_row({TablePrinter::fmt(s.endurance, 0), TablePrinter::fmt(s.lines),
                   TablePrinter::fmt(writes[0], 0), TablePrinter::fmt(writes[1], 0),
                   TablePrinter::fmt(writes[1] / writes[0], 2)});
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Ablation — endurance/region scale invariance (" + app_name + ")");
    std::cout << "Normalized lifetime should be stable across scales; absolute writes "
                 "scale with endurance x lines.\n";
  }
  return 0;
}
