// google-benchmark microbenchmarks for the hard-error schemes' tolerance
// checks and encode paths — the hot operations of window placement.
#include <benchmark/benchmark.h>

#include <numeric>

#include "common/rng.hpp"
#include "ecc/aegis.hpp"
#include "ecc/ecp.hpp"
#include "ecc/safer.hpp"

namespace pcmsim {
namespace {

std::vector<std::vector<FaultCell>> fault_sets(std::size_t nfaults, std::size_t count) {
  Rng rng(nfaults * 7 + 3);
  std::vector<std::vector<FaultCell>> sets;
  std::vector<std::uint16_t> pos(kBlockBits);
  std::iota(pos.begin(), pos.end(), std::uint16_t{0});
  for (std::size_t s = 0; s < count; ++s) {
    std::vector<FaultCell> f;
    for (std::size_t i = 0; i < nfaults; ++i) {
      const std::size_t j = i + rng.next_below(kBlockBits - i);
      std::swap(pos[i], pos[j]);
      f.push_back(FaultCell{pos[i], rng.next_bool(0.5)});
    }
    std::sort(f.begin(), f.end(),
              [](const FaultCell& a, const FaultCell& b) { return a.pos < b.pos; });
    sets.push_back(std::move(f));
  }
  return sets;
}

template <typename Scheme>
void run_can_tolerate(benchmark::State& state, Scheme&& scheme) {
  const auto sets = fault_sets(static_cast<std::size_t>(state.range(0)), 64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.can_tolerate(sets[i++ % sets.size()], kBlockBits));
  }
}

void BM_EcpCanTolerate(benchmark::State& state) { run_can_tolerate(state, EcpScheme(6)); }
BENCHMARK(BM_EcpCanTolerate)->Arg(4)->Arg(8)->Arg(16);

void BM_SaferCanTolerate(benchmark::State& state) { run_can_tolerate(state, SaferScheme(32)); }
BENCHMARK(BM_SaferCanTolerate)->Arg(4)->Arg(8)->Arg(16);

void BM_SaferIdealCanTolerate(benchmark::State& state) {
  run_can_tolerate(state, SaferScheme(32, SaferScheme::Strategy::kExhaustive));
}
BENCHMARK(BM_SaferIdealCanTolerate)->Arg(4)->Arg(8)->Arg(16);

void BM_AegisCanTolerate(benchmark::State& state) {
  run_can_tolerate(state, AegisScheme(17, 31));
}
BENCHMARK(BM_AegisCanTolerate)->Arg(4)->Arg(8)->Arg(16);

void BM_EcpEncode(benchmark::State& state) {
  EcpScheme ecp(6);
  const auto sets = fault_sets(5, 64);
  Rng rng(9);
  std::vector<std::uint8_t> data(kBlockBytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecp.encode(data, kBlockBits, sets[i++ % sets.size()]));
  }
}
BENCHMARK(BM_EcpEncode);

void BM_AegisEncode(benchmark::State& state) {
  AegisScheme aegis(17, 31);
  const auto sets = fault_sets(10, 64);
  Rng rng(9);
  std::vector<std::uint8_t> data(kBlockBytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aegis.encode(data, kBlockBits, sets[i++ % sets.size()]));
  }
}
BENCHMARK(BM_AegisEncode);

}  // namespace
}  // namespace pcmsim

BENCHMARK_MAIN();
