// Microbenchmark for the hard-error schemes' hot operations: the
// can_tolerate() placement check (timed at 4/8/16-fault windows) and the
// functional encode()/decode() round-trip at each scheme's guaranteed fault
// count. Enumerates the full ECC registry by default; `--scheme <spec>`
// narrows to one spec (any registry grammar, not just the canonical list).
// Emits machine-readable JSON like the other micro benches.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <numeric>
#include <vector>

#include "common/assert.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "ecc/registry.hpp"

using namespace pcmsim;

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point t0, Clock::time_point t1, std::size_t ops) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return static_cast<double>(ns) / static_cast<double>(ops);
}

std::vector<std::vector<FaultCell>> fault_sets(std::size_t nfaults, std::size_t count) {
  Rng rng(nfaults * 7 + 3);
  std::vector<std::vector<FaultCell>> sets;
  std::vector<std::uint16_t> pos(kBlockBits);
  std::iota(pos.begin(), pos.end(), std::uint16_t{0});
  for (std::size_t s = 0; s < count; ++s) {
    std::vector<FaultCell> f;
    for (std::size_t i = 0; i < nfaults; ++i) {
      const std::size_t j = i + rng.next_below(kBlockBits - i);
      std::swap(pos[i], pos[j]);
      f.push_back(FaultCell{pos[i], rng.next_bool(0.5)});
    }
    std::sort(f.begin(), f.end(),
              [](const FaultCell& a, const FaultCell& b) { return a.pos < b.pos; });
    sets.push_back(std::move(f));
  }
  return sets;
}

double time_can_tolerate(const HardErrorScheme& scheme, std::size_t nfaults,
                         std::size_t iters) {
  const auto sets = fault_sets(nfaults, 64);
  std::size_t sink = 0;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    sink += scheme.can_tolerate(sets[i % sets.size()], kBlockBits) ? 1u : 0u;
  }
  const auto t1 = Clock::now();
  const double ns = ns_per_op(t0, t1, iters);
  return sink == iters + 1 ? ns + 1e-9 : ns;  // sink defeats dead-code elimination
}

struct CodecTimings {
  double encode_ns = 0;
  double decode_ns = 0;
};

/// Times encode() and decode() at the scheme's guaranteed fault count — the
/// regime every functional-mode window write pays. The decode corpus is the
/// encode output with its faults applied, so decode really corrects.
CodecTimings time_codec(const HardErrorScheme& scheme, std::size_t iters,
                        std::uint64_t seed) {
  const std::size_t nfaults = scheme.guaranteed_correctable();
  const auto sets = fault_sets(nfaults, 64);
  Rng rng(seed);
  std::vector<std::uint8_t> data(kBlockBytes);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  CodecTimings out;
  std::size_t sink = 0;
  const auto e0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const auto enc = scheme.encode(data, kBlockBits, sets[i % sets.size()]);
    sink += static_cast<std::size_t>(enc ? enc->image[0] : 0);
  }
  const auto e1 = Clock::now();
  out.encode_ns = ns_per_op(e0, e1, iters);

  struct Stored {
    InlineBytes raw;
    std::uint64_t meta;
  };
  std::vector<Stored> stored;
  for (const auto& faults : sets) {
    const auto enc = scheme.encode(data, kBlockBits, faults);
    expects(enc.has_value(), "guaranteed fault count must encode");
    stored.push_back(Stored{apply_faults(enc->image, kBlockBits, faults), enc->meta});
  }
  const auto d0 = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const auto& s = stored[i % stored.size()];
    const auto decoded = scheme.decode(s.raw, kBlockBits, s.meta, sets[i % sets.size()]);
    sink += decoded[0];
  }
  const auto d1 = Clock::now();
  out.decode_ns = ns_per_op(d0, d1, iters);
  if (sink == 1) out.decode_ns += 1e-9;  // sink defeats dead-code elimination
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t iters = args.get_bool("fast") ? 2000 : 20000;
  const std::string only = args.get("scheme", "");

  std::vector<std::string> specs;
  if (!only.empty()) {
    if (!is_scheme_spec(only)) {
      std::cerr << "unknown scheme spec: " << only << "\n";
      return 1;
    }
    specs.push_back(only);
  } else {
    for (const auto& info : registered_schemes()) specs.emplace_back(info.spec);
  }

  std::cout << "{\n  \"iters\": " << iters << ",\n  \"schemes\": [";
  bool first = true;
  for (const auto& spec : specs) {
    const auto scheme = make_scheme(spec);
    const double t4 = time_can_tolerate(*scheme, 4, iters);
    const double t8 = time_can_tolerate(*scheme, 8, iters);
    const double t16 = time_can_tolerate(*scheme, 16, iters);
    const auto codec = time_codec(*scheme, iters, 9);
    std::cout << (first ? "" : ",") << "\n    {\"spec\": \"" << spec << "\", \"name\": \""
              << scheme->name() << "\", \"meta_bits\": " << scheme->metadata_bits()
              << ", \"guaranteed\": " << scheme->guaranteed_correctable()
              << ",\n     \"can_tolerate_ns_f4\": " << t4
              << ", \"can_tolerate_ns_f8\": " << t8
              << ", \"can_tolerate_ns_f16\": " << t16
              << ",\n     \"encode_ns\": " << codec.encode_ns
              << ", \"decode_ns\": " << codec.decode_ns << "}";
    first = false;
  }
  std::cout << "\n  ]\n}\n";
  return 0;
}
