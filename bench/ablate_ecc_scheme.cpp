// Ablation: Comp+WF over different hard-error schemes (Section III-A.4's
// qualitative claim, quantified): partition-based SAFER-32 and Aegis 17x31
// should extend lifetimes beyond ECP-6 because compression collocates faults
// into the window, making separation easy.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto scale = ExperimentScale::from_flag(args.get_bool("fast") ? "fast" : "default");

  TablePrinter table({"app", "ecc", "norm_lifetime", "faults_at_death"});
  for (const std::string app_name : {"milc", "gcc", "lbm"}) {
    const AppProfile& app = profile_by_name(app_name);
    LifetimeConfig base;
    base.system.mode = SystemMode::kBaseline;
    base.system.device.lines = scale.physical_lines;
    base.system.device.endurance_mean = scale.endurance_mean;
    base.system.device.endurance_cov = scale.endurance_cov;
    base.system.device.seed = 18;
    base.max_writes = 4'000'000'000ull;
    std::cerr << "[ecc] " << app_name << " baseline (ECP-6)...\n";
    const double base_writes =
        static_cast<double>(run_lifetime(app, base, 100).writes_to_failure);

    for (const auto ecc : {EccKind::kEcp6, EccKind::kSafer32, EccKind::kAegis17x31}) {
      LifetimeConfig lc = base;
      lc.system.mode = SystemMode::kCompWF;
      lc.system.ecc = ecc;
      std::cerr << "[ecc] " << app_name << " Comp+WF / "
                << make_scheme(ecc)->name() << "...\n";
      const auto r = run_lifetime(app, lc, 100);
      table.add_row({app_name, std::string(make_scheme(ecc)->name()),
                     TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / base_writes, 2),
                     TablePrinter::fmt(r.mean_faults_at_death, 1)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Ablation — Comp+WF lifetime by hard-error scheme "
                           "(normalized to ECP-6 Baseline)");
    std::cout << "Expected ordering per Fig 9: Aegis >= SAFER >= ECP-6.\n";
  }
  return 0;
}
