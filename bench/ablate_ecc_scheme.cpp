// The encoding-laboratory matrix: every registered hard-error scheme crossed
// with three workloads spanning the compressibility spectrum. Quantifies
// Section III-A.4 (partition schemes beat ECP once compression collocates
// faults) and the registry extensions — parameterized BCH-t erasure codes and
// word-level coset coding that spends compression slack inside each word.
//
// No scheme object is constructed here: names, metadata costs, and legal
// modes all come from the registry's static SchemeSpecInfo table
// (ecc/registry.hpp), which the registry round-trip test pins against the
// real schemes.
#include <iostream>
#include <mutex>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "ecc/registry.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

namespace {

/// The mode a scheme's matrix lane runs in: line-only schemes that cannot sit
/// behind a sliding window (SECDED) stay in Baseline; everything else gets
/// the full Comp+WF stack (which also satisfies requires_compression).
SystemMode lane_mode(const SchemeTraits& traits) {
  return traits.baseline_only ? SystemMode::kBaseline : SystemMode::kCompWF;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("ablate_ecc_scheme");
  const auto scale = ExperimentScale::from_flag(args.get_bool("fast") ? "fast" : "default");

  const std::vector<std::string> app_names = {"milc", "gcc", "lbm"};
  const auto schemes = registered_schemes();

  // Per app: one ECP-6 Baseline reference (the normalization anchor every
  // other figure uses) + one lane per registered scheme — flattened into
  // independent, identically-seeded tasks.
  const std::size_t per_app = 1 + schemes.size();
  std::vector<LifetimeResult> results(app_names.size() * per_app);
  std::mutex log_m;
  parallel_for(results.size(), [&](std::size_t i) {
    const auto& app_name = app_names[i / per_app];
    const std::size_t vi = i % per_app;  // 0 = reference, else schemes[vi-1]
    LifetimeConfig lc;
    lc.system.mode = SystemMode::kBaseline;
    lc.system.device.lines = scale.physical_lines;
    lc.system.device.endurance_mean = scale.endurance_mean;
    lc.system.device.endurance_cov = scale.endurance_cov;
    lc.system.device.seed = 18;
    lc.max_writes = 4'000'000'000ull;
    std::string what = "reference (ECP-6 Baseline)";
    if (vi > 0) {
      const auto& info = schemes[vi - 1];
      lc.system.mode = lane_mode(info.traits);
      lc.system.ecc_spec = std::string(info.spec);
      what = std::string(to_string(lc.system.mode)) + " / " + std::string(info.name);
    }
    {
      const std::lock_guard lk(log_m);
      std::cerr << "[ecc] " << app_name << " " << what << "...\n";
    }
    results[i] = run_lifetime(profile_by_name(app_name), lc, 100);
  });

  TablePrinter table({"app", "scheme", "mode", "meta_bits", "norm_lifetime",
                      "faults_at_death", "flips/write", "pJ/write"});
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    const double base_writes =
        static_cast<double>(results[a * per_app].writes_to_failure);
    for (std::size_t e = 0; e < schemes.size(); ++e) {
      const auto& info = schemes[e];
      const auto& r = results[a * per_app + 1 + e];
      table.add_row({app_names[a], std::string(info.name),
                     std::string(to_string(lane_mode(info.traits))),
                     std::to_string(info.traits.metadata_bits),
                     TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / base_writes, 2),
                     TablePrinter::fmt(r.mean_faults_at_death, 1),
                     TablePrinter::fmt(r.mean_flips_per_write, 1),
                     TablePrinter::fmt(r.energy_pj_per_write, 0)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Encoding laboratory — lifetime/flip/energy by hard-error scheme "
                           "(normalized to ECP-6 Baseline)");
    std::cout << "Fig 9 ordering: Aegis >= SAFER >= ECP-6; BCH-t6 guarantees 12 erasures in\n"
                 "60 meta bits (vs ECP-6's 6 in 63); Coset-W4 spends compression slack\n"
                 "in-word instead of on a movable window.\n";
  }
  return 0;
}
