// Ablation: Comp+WF over different hard-error schemes (Section III-A.4's
// qualitative claim, quantified): partition-based SAFER-32 and Aegis 17x31
// should extend lifetimes beyond ECP-6 because compression collocates faults
// into the window, making separation easy.
#include <iostream>
#include <mutex>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("ablate_ecc_scheme");
  const auto scale = ExperimentScale::from_flag(args.get_bool("fast") ? "fast" : "default");

  const std::vector<std::string> app_names = {"milc", "gcc", "lbm"};
  const std::vector<EccKind> eccs = {EccKind::kEcp6, EccKind::kSafer32, EccKind::kAegis17x31};

  // Per app: one ECP-6 baseline + one Comp+WF run per scheme, all seeded
  // identically to the serial sweep — flattened into independent tasks.
  const std::size_t per_app = 1 + eccs.size();
  std::vector<LifetimeResult> results(app_names.size() * per_app);
  std::mutex log_m;
  parallel_for(results.size(), [&](std::size_t i) {
    const auto& app_name = app_names[i / per_app];
    const std::size_t vi = i % per_app;  // 0 = baseline, else eccs[vi-1]
    LifetimeConfig lc;
    lc.system.mode = SystemMode::kBaseline;
    lc.system.device.lines = scale.physical_lines;
    lc.system.device.endurance_mean = scale.endurance_mean;
    lc.system.device.endurance_cov = scale.endurance_cov;
    lc.system.device.seed = 18;
    lc.max_writes = 4'000'000'000ull;
    std::string what = "baseline (ECP-6)";
    if (vi > 0) {
      lc.system.mode = SystemMode::kCompWF;
      lc.system.ecc = eccs[vi - 1];
      what = "Comp+WF / " + std::string(make_scheme(lc.system.ecc)->name());
    }
    {
      const std::lock_guard lk(log_m);
      std::cerr << "[ecc] " << app_name << " " << what << "...\n";
    }
    results[i] = run_lifetime(profile_by_name(app_name), lc, 100);
  });

  TablePrinter table({"app", "ecc", "norm_lifetime", "faults_at_death"});
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    const double base_writes =
        static_cast<double>(results[a * per_app].writes_to_failure);
    for (std::size_t e = 0; e < eccs.size(); ++e) {
      const auto& r = results[a * per_app + 1 + e];
      table.add_row({app_names[a], std::string(make_scheme(eccs[e])->name()),
                     TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / base_writes, 2),
                     TablePrinter::fmt(r.mean_faults_at_death, 1)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Ablation — Comp+WF lifetime by hard-error scheme "
                           "(normalized to ECP-6 Baseline)");
    std::cout << "Expected ordering per Fig 9: Aegis >= SAFER >= ECP-6.\n";
  }
  return 0;
}
