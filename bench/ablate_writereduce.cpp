// Ablation: chip-level write-reduction — plain differential writes (the
// baseline the paper assumes) versus Flip-N-Write (Cho & Lee, MICRO'09),
// measured as programmed bits per write-back on raw (uncompressed) traffic.
// FNW bounds flips at half the block plus flag bits; on low-entropy rewrites
// DW alone is already close to optimal.
#include <iostream>
#include <unordered_map>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "pcm/flip_n_write.hpp"
#include "trace/sampled_source.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("ablate_writereduce");
  const auto writes = static_cast<int>(args.get_int("writes", 40000));
  const auto group_bits = static_cast<std::size_t>(args.get_int("group", 64));

  // Each app replays its own fixed-seed trace — one pool task per app.
  struct Flips {
    double dw = 0;
    double fnw = 0;
  };
  const std::vector<AppProfile> profiles = spec2006_profiles();
  const auto flips = parallel_map(profiles, [&](const AppProfile& app) {
    FlipNWriteCodec codec(group_bits);
    SampledTraceSource src(app, 1 << 12, 7);
    TraceCursor gen(src);
    struct State {
      Block stored{};
      std::uint64_t flags = 0;
      bool seen = false;
    };
    std::unordered_map<LineAddr, State> lines;
    RunningStat dw;
    RunningStat fnw;
    for (int i = 0; i < writes; ++i) {
      const auto ev = gen.next();
      auto& st = lines[ev.line];
      if (!st.seen) {
        st.seen = true;
        st.stored = ev.data;
        continue;
      }
      dw.add(static_cast<double>(FlipNWriteCodec::dw_flips(ev.data, st.stored)));
      fnw.add(static_cast<double>(codec.encoded_flips(ev.data, st.stored, st.flags)));
      const auto enc = codec.encode(ev.data, st.stored, st.flags);
      st.stored = enc.payload;
      st.flags = enc.invert_mask;
    }
    return Flips{dw.mean(), fnw.mean()};
  });

  TablePrinter table({"app", "dw_flips", "fnw_flips", "fnw_saving%"});
  double saving_sum = 0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const double saving = 100.0 * (1.0 - flips[i].fnw / flips[i].dw);
    saving_sum += saving;
    table.add_row({profiles[i].name, TablePrinter::fmt(flips[i].dw, 1),
                   TablePrinter::fmt(flips[i].fnw, 1), TablePrinter::fmt(saving, 1)});
  }
  table.add_row({"Average", "-", "-", TablePrinter::fmt(saving_sum / 15.0, 1)});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Ablation — DW vs Flip-N-Write programmed bits per write (" +
                               std::to_string(group_bits) + "-bit groups)");
  }
  return 0;
}
