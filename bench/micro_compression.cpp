// google-benchmark microbenchmarks for the compression substrate: the
// memory controller runs BDI and FPC in parallel on every write-back, so
// their software-model throughput bounds the lifetime simulator's speed.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.hpp"
#include "compression/best_of.hpp"
#include "workload/value_model.hpp"

namespace pcmsim {
namespace {

std::vector<Block> make_corpus(ValueClass cls, std::uint8_t param) {
  ValueClassSpec spec;
  spec.cls = cls;
  spec.param_lo = spec.param_hi = param;
  spec.aux = 2;
  std::vector<Block> blocks;
  for (std::uint32_t i = 0; i < 256; ++i) {
    blocks.push_back(generate_value(spec, i, 12345, i % 7));
  }
  return blocks;
}

void BM_BdiCompress(benchmark::State& state) {
  const auto corpus = make_corpus(ValueClass::kNarrowInt64, 2);
  BdiCompressor c;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.compress(corpus[i++ % corpus.size()]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BdiCompress);

void BM_FpcCompress(benchmark::State& state) {
  const auto corpus = make_corpus(ValueClass::kFpcMixed, 6);
  FpcCompressor c;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.compress(corpus[i++ % corpus.size()]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_FpcCompress);

// The best-of pipeline is measured per phase: probe-only (size question),
// plan (probe + winner/layout), plan+materialize (the full two-phase path),
// and legacy one-shot compress(). Each phase exports a `work` counter — the
// summed winning sizes (64 for incompressible) — so a run can confirm all
// phases computed the same decisions: `work` must match across the four
// benchmarks at equal value class.
std::vector<Block> best_of_corpus(benchmark::State& state) {
  const auto cls = static_cast<ValueClass>(state.range(0));
  return make_corpus(cls, cls == ValueClass::kFpcMixed ? 6 : 2);
}

void finish_best_of(benchmark::State& state, std::size_t work) {
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  // Average winning size per op: the cross-phase work checksum.
  const auto iters = std::max<std::int64_t>(1, state.iterations());
  state.counters["work_per_op"] = static_cast<double>(work) / static_cast<double>(iters);
}

void BM_BestOfProbe(benchmark::State& state) {
  const auto corpus = best_of_corpus(state);
  BestOfCompressor c;
  std::size_t i = 0;
  std::size_t work = 0;
  for (auto _ : state) {
    const auto p = c.probe_size(corpus[i++ % corpus.size()]);
    work += p ? *p : kBlockBytes;
  }
  finish_best_of(state, work);
}

void BM_BestOfPlan(benchmark::State& state) {
  const auto corpus = best_of_corpus(state);
  BestOfCompressor c;
  std::size_t i = 0;
  std::size_t work = 0;
  for (auto _ : state) {
    const auto p = c.plan(corpus[i++ % corpus.size()]);
    work += p ? p->size_bytes() : kBlockBytes;
  }
  finish_best_of(state, work);
}

void BM_BestOfPlanMaterialize(benchmark::State& state) {
  const auto corpus = best_of_corpus(state);
  BestOfCompressor c;
  std::size_t i = 0;
  std::size_t work = 0;
  for (auto _ : state) {
    const Block& b = corpus[i++ % corpus.size()];
    const auto p = c.plan(b);
    if (p) {
      const auto image = c.materialize(b, *p);
      work += image.size_bytes();
      benchmark::DoNotOptimize(image.bytes.data());
    } else {
      work += kBlockBytes;
    }
  }
  finish_best_of(state, work);
}

void BM_BestOfCompress(benchmark::State& state) {
  const auto corpus = best_of_corpus(state);
  BestOfCompressor c;
  std::size_t i = 0;
  std::size_t work = 0;
  for (auto _ : state) {
    const auto r = c.compress(corpus[i++ % corpus.size()]);
    work += r ? r->size_bytes() : kBlockBytes;
    benchmark::DoNotOptimize(r);
  }
  finish_best_of(state, work);
}

#define PCMSIM_BESTOF_ARGS                         \
  ->Arg(static_cast<int>(ValueClass::kZeroPage))   \
      ->Arg(static_cast<int>(ValueClass::kNarrowInt64)) \
      ->Arg(static_cast<int>(ValueClass::kFpcMixed))    \
      ->Arg(static_cast<int>(ValueClass::kRandom))

BENCHMARK(BM_BestOfProbe) PCMSIM_BESTOF_ARGS;
BENCHMARK(BM_BestOfPlan) PCMSIM_BESTOF_ARGS;
BENCHMARK(BM_BestOfPlanMaterialize) PCMSIM_BESTOF_ARGS;
BENCHMARK(BM_BestOfCompress) PCMSIM_BESTOF_ARGS;

void BM_BdiDecompress(benchmark::State& state) {
  const auto corpus = make_corpus(ValueClass::kNarrowInt64, 2);
  BdiCompressor c;
  std::vector<CompressedBlock> images;
  for (const auto& b : corpus) {
    if (auto r = c.compress(b)) images.push_back(std::move(*r));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.decompress(images[i++ % images.size()]));
  }
}
BENCHMARK(BM_BdiDecompress);

void BM_FpcDecompress(benchmark::State& state) {
  const auto corpus = make_corpus(ValueClass::kFpcMixed, 8);
  FpcCompressor c;
  std::vector<CompressedBlock> images;
  for (const auto& b : corpus) {
    if (auto r = c.compress(b)) images.push_back(std::move(*r));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.decompress(images[i++ % images.size()]));
  }
}
BENCHMARK(BM_FpcDecompress);

}  // namespace
}  // namespace pcmsim

BENCHMARK_MAIN();
