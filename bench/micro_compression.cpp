// google-benchmark microbenchmarks for the compression substrate: the
// memory controller runs BDI and FPC in parallel on every write-back, so
// their software-model throughput bounds the lifetime simulator's speed.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "compression/best_of.hpp"
#include "workload/value_model.hpp"

namespace pcmsim {
namespace {

std::vector<Block> make_corpus(ValueClass cls, std::uint8_t param) {
  ValueClassSpec spec;
  spec.cls = cls;
  spec.param_lo = spec.param_hi = param;
  spec.aux = 2;
  std::vector<Block> blocks;
  for (std::uint32_t i = 0; i < 256; ++i) {
    blocks.push_back(generate_value(spec, i, 12345, i % 7));
  }
  return blocks;
}

void BM_BdiCompress(benchmark::State& state) {
  const auto corpus = make_corpus(ValueClass::kNarrowInt64, 2);
  BdiCompressor c;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.compress(corpus[i++ % corpus.size()]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BdiCompress);

void BM_FpcCompress(benchmark::State& state) {
  const auto corpus = make_corpus(ValueClass::kFpcMixed, 6);
  FpcCompressor c;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.compress(corpus[i++ % corpus.size()]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_FpcCompress);

void BM_BestOfCompress(benchmark::State& state) {
  const auto cls = static_cast<ValueClass>(state.range(0));
  const auto corpus = make_corpus(cls, cls == ValueClass::kFpcMixed ? 6 : 2);
  BestOfCompressor c;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.compress(corpus[i++ % corpus.size()]));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_BestOfCompress)
    ->Arg(static_cast<int>(ValueClass::kZeroPage))
    ->Arg(static_cast<int>(ValueClass::kNarrowInt64))
    ->Arg(static_cast<int>(ValueClass::kFpcMixed))
    ->Arg(static_cast<int>(ValueClass::kRandom));

void BM_BdiDecompress(benchmark::State& state) {
  const auto corpus = make_corpus(ValueClass::kNarrowInt64, 2);
  BdiCompressor c;
  std::vector<CompressedBlock> images;
  for (const auto& b : corpus) {
    if (auto r = c.compress(b)) images.push_back(std::move(*r));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.decompress(images[i++ % images.size()]));
  }
}
BENCHMARK(BM_BdiDecompress);

void BM_FpcDecompress(benchmark::State& state) {
  const auto corpus = make_corpus(ValueClass::kFpcMixed, 8);
  FpcCompressor c;
  std::vector<CompressedBlock> images;
  for (const auto& b : corpus) {
    if (auto r = c.compress(b)) images.push_back(std::move(*r));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.decompress(images[i++ % images.size()]));
  }
}
BENCHMARK(BM_FpcDecompress);

}  // namespace
}  // namespace pcmsim

BENCHMARK_MAIN();
