// Figure 3 / Table III: average compressed write-back size per application
// under BDI, FPC, and BEST (smaller of the two), plus the measured
// compression ratio against the paper's Table III target.
#include <iostream>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "compression/best_of.hpp"
#include "trace/sampled_source.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto writes = static_cast<int>(args.get_int("writes", 20000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1234));

  BestOfCompressor best;
  TablePrinter table({"app", "BDI_B", "FPC_B", "BEST_B", "CR_meas", "CR_paper"});
  RunningStat overall;
  for (const auto& app : spec2006_profiles()) {
    SampledTraceSource src(app, 1 << 14, seed);
    TraceCursor gen(src);
    RunningStat bdi_size;
    RunningStat fpc_size;
    RunningStat best_size;
    for (int i = 0; i < writes; ++i) {
      const auto ev = gen.next();
      const auto [b, f] = best.probe_both(ev.data);  // one fused scan, both sizes
      bdi_size.add(b ? static_cast<double>(*b) : 64.0);
      fpc_size.add(f ? static_cast<double>(*f) : 64.0);
      const double bb = b ? static_cast<double>(*b) : 64.0;
      const double ff = f ? static_cast<double>(*f) : 64.0;
      best_size.add(std::min(bb, ff));
    }
    overall.add(best_size.mean() / 64.0);
    table.add_row({app.name, TablePrinter::fmt(bdi_size.mean(), 1),
                   TablePrinter::fmt(fpc_size.mean(), 1),
                   TablePrinter::fmt(best_size.mean(), 1),
                   TablePrinter::fmt(best_size.mean() / 64.0, 2),
                   TablePrinter::fmt(app.table_cr, 2)});
  }
  table.add_row({"Average", "-", "-", TablePrinter::fmt(overall.mean() * 64.0, 1),
                 TablePrinter::fmt(overall.mean(), 2), "0.43"});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Figure 3 — average compressed data size (bytes) for BDI, FPC and BEST");
    std::cout << "Paper: BEST average CR = 0.43; zeusmp/cactusADM smallest, lbm/leslie3d "
                 "largest.\n";
  }
  return 0;
}
