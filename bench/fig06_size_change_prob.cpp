// Figure 6: probability that two consecutive writes to the same block have
// different sizes after compression — the signal the Figure-8 heuristic uses
// to predict bit-flip-increasing writes.
#include <iostream>
#include <unordered_map>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "compression/best_of.hpp"
#include "trace/sampled_source.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto writes = static_cast<int>(args.get_int("writes", 60000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 77));

  BestOfCompressor best;
  TablePrinter table({"app", "P(size_change)"});
  double sum = 0;
  for (const auto& app : spec2006_profiles()) {
    SampledTraceSource src(app, 1 << 12, seed);
    TraceCursor gen(src);
    std::unordered_map<LineAddr, std::size_t> last;
    std::uint64_t changed = 0;
    std::uint64_t pairs = 0;
    for (int i = 0; i < writes; ++i) {
      const auto ev = gen.next();
      const auto c = best.probe_size(ev.data);
      const std::size_t size = c ? *c : kBlockBytes;
      const auto it = last.find(ev.line);
      if (it != last.end()) {
        ++pairs;
        changed += it->second != size ? 1u : 0u;
        it->second = size;
      } else {
        last.emplace(ev.line, size);
      }
    }
    const double p = pairs ? static_cast<double>(changed) / static_cast<double>(pairs) : 0.0;
    sum += p;
    table.add_row({app.name, TablePrinter::fmt(p, 2)});
  }
  table.add_row({"Average", TablePrinter::fmt(sum / 15.0, 2)});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Figure 6 — probability that consecutive writes to a block differ in "
                "compressed size");
    std::cout << "Paper: bzip2 and gcc churn the most; hmmer is nearly stable — that gap\n"
                 "explains why bzip2 sees increased flips while hmmer does not (Fig 7).\n";
  }
  return 0;
}
