// Table III: workload characterization — WPKI measured through the real
// L1/L2 hierarchy (the gem5 substitute) and compression ratio measured with
// best-of-BDI/FPC, against the paper's reported values.
//
// `--tier-kb N [--tier-policy lru|silent|comp|dedup]` closes the full
// cache → DRAM front tier → PCM loop: every dirty L2 victim is offered to a
// FrontTier (tier/writeback_sink.hpp) whose evictions land on a PcmSystem,
// and a second table reports how much of each app's write-back stream the
// tier absorbed before PCM saw it.
#include <iostream>
#include <optional>

#include "cache/hierarchy.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "compression/best_of.hpp"
#include "tier/writeback_sink.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto instructions = static_cast<std::uint64_t>(args.get_int("instructions", 400000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));
  const auto tier_kb = static_cast<std::size_t>(args.get_int("tier-kb", 0));
  const TierPolicy tier_policy =
      tier_policy_from_string(args.get("tier-policy", "lru"));

  BestOfCompressor best;
  TablePrinter table({"app", "WPKI_meas", "WPKI_paper", "CR_meas", "CR_paper", "bucket",
                      "L2_missrate"});
  TablePrinter tier_table({"app", "offered", "absorbed", "absorb_%", "pcm_writes",
                           "mean_flips"});
  for (const auto& app : spec2006_profiles()) {
    RunningStat sizes;
    // The tiered run threads the write-backs through FrontTier into a real
    // PcmSystem; the plain run only probes compressed sizes. Both share the
    // same sink so the measured WPKI/CR columns are identical either way.
    std::optional<PcmSystem> pcm;
    std::optional<FrontTier> tier;
    if (tier_kb > 0) {
      SystemConfig sys;
      sys.device.lines = static_cast<std::uint64_t>(args.get_int("lines", 4097));
      // Characterization run: default (unscaled-down) endurance, so nothing
      // dies over a bench-sized instruction budget.
      pcm.emplace(sys);
      tier.emplace(FrontTierConfig::for_kb(tier_kb, tier_policy),
                   pcm_forward_sink(*pcm));
    }
    CmpSimulator sim(app, HierarchyConfig{}, seed, [&](const Writeback& wb) {
      const auto c = best.probe_size(wb.data);
      sizes.add(c ? static_cast<double>(*c) : 64.0);
      if (tier) (void)tier->put(wb.line, wb.data);
    });
    std::cerr << "[table3] " << app.name << "...\n";
    // Warm the hierarchy first (Section IV warms caches before measuring).
    sim.run(instructions / 2);
    sim.reset_stats();
    sizes = RunningStat{};
    sim.run(instructions);
    const double cr = sizes.count() ? sizes.mean() / 64.0 : 1.0;
    table.add_row({app.name, TablePrinter::fmt(sim.wpki(), 2), TablePrinter::fmt(app.wpki, 2),
                   TablePrinter::fmt(cr, 2), TablePrinter::fmt(app.table_cr, 2),
                   std::string(to_string(app.bucket)), TablePrinter::fmt(sim.l2_miss_rate(), 2)});
    if (tier) {
      tier->finish_timing();
      const FrontTierStats& ts = tier->stats();
      const double pct = ts.offered > 0 ? 100.0 * static_cast<double>(ts.absorbed()) /
                                              static_cast<double>(ts.offered)
                                        : 0.0;
      tier_table.add_row({app.name, TablePrinter::fmt(ts.offered),
                          TablePrinter::fmt(ts.absorbed()), TablePrinter::fmt(pct, 1),
                          TablePrinter::fmt(pcm->stats().writes),
                          TablePrinter::fmt(pcm->stats().flips_per_write.mean(), 1)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Table III — measured WPKI and CR vs paper");
    std::cout << "WPKI is measured on LLC write-backs of the synthetic core streams run\n"
                 "through the 16x32KB L1 + 4MB L2 hierarchy; CR on those write-backs'\n"
                 "payloads (write-back CR can differ slightly from Fig 3's access-stream "
                 "CR).\n";
    if (tier_kb > 0) {
      tier_table.print(std::cout, "Front tier (" + std::to_string(tier_kb) + " KB, " +
                                      std::string(to_string(tier_policy)) +
                                      ") — hierarchy write-backs absorbed before PCM");
    }
  }
  return 0;
}
