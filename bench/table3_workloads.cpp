// Table III: workload characterization — WPKI measured through the real
// L1/L2 hierarchy (the gem5 substitute) and compression ratio measured with
// best-of-BDI/FPC, against the paper's reported values.
#include <iostream>

#include "cache/hierarchy.hpp"
#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "compression/best_of.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto instructions = static_cast<std::uint64_t>(args.get_int("instructions", 400000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  BestOfCompressor best;
  TablePrinter table({"app", "WPKI_meas", "WPKI_paper", "CR_meas", "CR_paper", "bucket",
                      "L2_missrate"});
  for (const auto& app : spec2006_profiles()) {
    RunningStat sizes;
    CmpSimulator sim(app, HierarchyConfig{}, seed, [&](const Writeback& wb) {
      const auto c = best.probe_size(wb.data);
      sizes.add(c ? static_cast<double>(*c) : 64.0);
    });
    std::cerr << "[table3] " << app.name << "...\n";
    // Warm the hierarchy first (Section IV warms caches before measuring).
    sim.run(instructions / 2);
    sim.reset_stats();
    sizes = RunningStat{};
    sim.run(instructions);
    const double cr = sizes.count() ? sizes.mean() / 64.0 : 1.0;
    table.add_row({app.name, TablePrinter::fmt(sim.wpki(), 2), TablePrinter::fmt(app.wpki, 2),
                   TablePrinter::fmt(cr, 2), TablePrinter::fmt(app.table_cr, 2),
                   std::string(to_string(app.bucket)), TablePrinter::fmt(sim.l2_miss_rate(), 2)});
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Table III — measured WPKI and CR vs paper");
    std::cout << "WPKI is measured on LLC write-backs of the synthetic core streams run\n"
                 "through the 16x32KB L1 + 4MB L2 hierarchy; CR on those write-backs'\n"
                 "payloads (write-back CR can differ slightly from Fig 3's access-stream "
                 "CR).\n";
  }
  return 0;
}
