// Multi-tenant sharded-engine benchmark: many concurrent write-back streams
// driving the channels x banks sharded execution spine (sim/sharded_engine).
//
// Reports aggregate serviced-write throughput (wall clock), the modeled
// per-shard bank utilization and write latency from the DDR-style controller
// charge, and per-tenant lifetime (writes until the tenant's logical slice
// crossed the capacity-death criterion). Endurance defaults are scaled far
// down, exactly like the lifetime studies, so tenants age visibly within a
// bench-sized run.
//
// Determinism: the engine's result digest is byte-identical at any
// `--threads` (see sharded_engine.hpp for the argument); CI pins it with
// `--expect_checksum`. Wall-clock rows, by contrast, measure whatever the
// host gives us — on the 1-CPU CI container the parallel rows measure pool
// overhead, not speedup (see BENCH_multitenant.json's caveat).
//
//   ./build/bench/multi_tenant --tenants 64 --shards 8 --threads 8
//   ./build/bench/multi_tenant --tenants 16 --events 20000 --expect_checksum <pinned>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "sim/sharded_engine.hpp"
#include "workload/app_profile.hpp"

using namespace pcmsim;

namespace {

std::vector<AppProfile> parse_apps(const std::string& csv) {
  std::vector<AppProfile> apps;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    apps.push_back(profile_by_name(csv.substr(pos, end - pos)));
    pos = end + 1;
  }
  expects(!apps.empty(), "--apps must name at least one profile");
  return apps;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::size_t threads = set_threads_from_cli(args);

  const auto tenants = static_cast<std::uint32_t>(args.get_int("tenants", 16));
  const auto shards = static_cast<std::uint32_t>(args.get_int("shards", 8));
  const auto events = static_cast<std::uint64_t>(args.get_int("events", 200000));
  const auto lines = static_cast<std::uint64_t>(args.get_int("lines", 257));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::vector<AppProfile> apps = parse_apps(args.get("apps", "gcc,milc,lbm"));

  ShardedEngineConfig cfg;
  cfg.shard_system.device.lines = lines;
  cfg.shard_system.device.endurance_mean = args.get_double("endurance", 300);
  cfg.shard_system.device.endurance_cov = args.get_double("cov", 0.15);
  // Geometry: channels divide the shard count when possible (Table II has 2
  // channels); odd shard counts fall back to a single channel.
  const auto channels = static_cast<std::uint32_t>(args.get_int("channels", 2));
  cfg.map.channels = (shards % channels == 0 && shards >= channels) ? channels : 1;
  cfg.map.banks_per_channel = shards / cfg.map.channels;
  cfg.tenants = tenants;
  cfg.seed = seed;
  cfg.queue_capacity = static_cast<std::size_t>(args.get_int("queue_capacity", 4096));
  cfg.tenant_batch = static_cast<std::size_t>(args.get_int("tenant_batch", 256));
  cfg.arrival_gap_cycles = static_cast<std::uint64_t>(args.get_int("gap_cycles", 16));
  cfg.prefetch = args.get_bool("prefetch");
  // `--tier-kb N --tier-policy lru|silent|comp|dedup` fronts every shard with
  // a content-aware DRAM tier (capacity is per shard). Off by default, which
  // keeps the pre-tier pinned checksum byte-identical.
  const auto tier_kb = static_cast<std::size_t>(args.get_int("tier-kb", 0));
  if (tier_kb > 0) {
    cfg.tier = FrontTierConfig::for_kb(
        tier_kb, tier_policy_from_string(args.get("tier-policy", "lru")));
  }

  ShardedPcmEngine engine(cfg);
  engine.add_sampled_tenants(apps);

  const ScopedTimer timer("");  // empty label: silent; we report elapsed ourselves
  const ShardedRunResult result = engine.run(events);
  const double wall = timer.elapsed_seconds();

  RunningStat util;
  RunningStat lat;
  for (const auto& s : result.shards) {
    util.add(s.utilization);
    lat.add(s.write_latency_mean);
  }
  RunningStat tenant_life;
  std::uint64_t tenants_failed = 0;
  for (const auto& t : result.tenants) {
    if (t.failed) {
      ++tenants_failed;
      tenant_life.add(static_cast<double>(t.writes_at_failure));
    }
  }

  std::cout << "{\n"
            << "  \"tenants\": " << tenants << ",\n"
            << "  \"shards\": " << engine.shards() << ",\n"
            << "  \"channels\": " << cfg.map.channels << ",\n"
            << "  \"threads\": " << threads << ",\n"
            << "  \"events\": " << result.events << ",\n"
            << "  \"epochs\": " << result.epochs << ",\n"
            << "  \"wall_seconds\": " << wall << ",\n"
            << "  \"aggregate_writes_per_sec\": "
            << (wall > 0 ? static_cast<double>(result.events) / wall : 0) << ",\n"
            << "  \"total\": {\n"
            << "    \"writes\": " << result.total.writes << ",\n"
            << "    \"compressed_writes\": " << result.total.compressed_writes << ",\n"
            << "    \"dropped_writes\": " << result.total.dropped_writes << ",\n"
            << "    \"uncorrectable_events\": " << result.total.uncorrectable_events << ",\n"
            << "    \"recycled_lines\": " << result.total.recycled_lines << ",\n"
            << "    \"lines_dead\": " << result.total.lines_dead << ",\n"
            << "    \"mean_flips_per_write\": " << result.total.flips_per_write.mean() << ",\n"
            << "    \"mean_compressed_size\": " << result.total.compressed_size.mean() << "\n"
            << "  },\n"
            << "  \"tier\": {\n"
            << "    \"enabled\": " << (cfg.tier.enabled() ? "true" : "false") << ",\n"
            << "    \"policy\": \"" << (cfg.tier.enabled() ? to_string(cfg.tier.policy)
                                                           : std::string_view("off"))
            << "\",\n"
            << "    \"capacity_lines_per_shard\": " << cfg.tier.capacity_lines << ",\n"
            << "    \"offered\": " << result.tier.offered << ",\n"
            << "    \"absorbed\": " << result.tier.absorbed() << ",\n"
            << "    \"silent_drops\": " << result.tier.silent_drops << ",\n"
            << "    \"dedup_shares\": " << result.tier.dedup_shares << ",\n"
            << "    \"evictions\": " << result.tier.evictions << "\n"
            << "  },\n"
            << "  \"modeled_write_latency_cycles_mean\": " << lat.mean() << ",\n"
            << "  \"shard_utilization_mean\": " << util.mean() << ",\n"
            << "  \"shard_utilization_min\": " << util.min() << ",\n"
            << "  \"shard_utilization_max\": " << util.max() << ",\n"
            << "  \"tenants_failed\": " << tenants_failed << ",\n"
            << "  \"tenant_lifetime_writes_mean\": " << tenant_life.mean() << ",\n"
            << "  \"shards_detail\": [";
  for (std::size_t s = 0; s < result.shards.size(); ++s) {
    const auto& row = result.shards[s];
    std::cout << (s ? "," : "") << "\n    {\"events\": " << row.events
              << ", \"writes_per_sec\": "
              << (wall > 0 ? static_cast<double>(row.events) / wall : 0)
              << ", \"utilization\": " << row.utilization
              << ", \"write_latency_mean\": " << row.write_latency_mean
              << ", \"lines_dead\": " << row.stats.lines_dead << "}";
  }
  std::cout << "\n  ],\n  \"tenants_detail\": [";
  for (std::size_t t = 0; t < result.tenants.size(); ++t) {
    const auto& row = result.tenants[t];
    std::cout << (t ? "," : "") << "\n    {\"app\": \"" << apps[t % apps.size()].name
              << "\", \"writes\": " << row.writes << ", \"absorbed\": " << row.absorbed_writes
              << ", \"dropped\": " << row.dropped_writes
              << ", \"line_deaths\": " << row.line_deaths
              << ", \"writes_at_failure\": " << row.writes_at_failure
              << ", \"failed\": " << (row.failed ? "true" : "false") << "}";
  }
  std::cout << "\n  ],\n  \"checksum\": " << result.checksum << "\n}\n";

  if (args.has("expect_checksum")) {
    const std::uint64_t expect = std::stoull(args.get("expect_checksum", "0"));
    if (expect != result.checksum) {
      std::cerr << "checksum mismatch: expected " << expect << ", got " << result.checksum
                << " — the sharded engine's observable behaviour changed\n";
      return 1;
    }
  }
  return 0;
}
