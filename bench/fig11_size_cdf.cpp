// Figure 11: CDF over memory addresses of the LARGEST compressed size ever
// written to that address, for gcc (uniform spread — little recycling
// headroom) and milc (bimodal 80/20 split — dead blocks stay useful).
#include <iostream>
#include <unordered_map>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "compression/best_of.hpp"
#include "trace/sampled_source.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto writes = static_cast<int>(args.get_int("writes", 200000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 13));
  const bool csv = args.get_bool("csv");

  BestOfCompressor best;
  for (const std::string name : {"gcc", "milc"}) {
    const AppProfile& app = profile_by_name(name);
    SampledTraceSource src(app, 1 << 14, seed);
    TraceCursor gen(src);
    std::unordered_map<LineAddr, std::size_t> max_size;
    for (int i = 0; i < writes; ++i) {
      const auto ev = gen.next();
      const auto c = best.probe_size(ev.data);
      const std::size_t size = c ? *c : kBlockBytes;
      auto& m = max_size[ev.line];
      m = std::max(m, size);
    }
    EmpiricalCdf cdf;
    for (const auto& [_, s] : max_size) cdf.add(static_cast<double>(s));

    TablePrinter table({"size_B", "CDF"});
    for (std::size_t s = 0; s <= 64; s += 4) {
      table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(s)),
                     TablePrinter::fmt(cdf.at(static_cast<double>(s)), 3)});
    }
    if (csv) {
      std::cout << name << "\n";
      table.print_csv(std::cout);
    } else {
      table.print(std::cout, "Figure 11 (" + name +
                                 ") — CDF of max compressed size per memory address");
      std::cout << "fraction of addresses <= 25B: " << TablePrinter::fmt(cdf.at(25.0), 2)
                << "   (paper: milc ~0.8, gcc ~0.1)\n";
    }
  }
  return 0;
}
