// Ablation: the Figure-8 write-decision heuristic. Sweeps Threshold1 and
// Threshold2, and compares against always-compress and heuristic-off, on the
// two size-volatile workloads the heuristic exists for (bzip2, gcc) plus a
// stable one (hmmer) where it should be neutral.
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

namespace {

struct Variant {
  std::string name;
  bool enabled;
  std::uint8_t t1;
  std::uint8_t t2;
  bool update_always;
  std::uint8_t t3 = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto scale = ExperimentScale::from_flag(args.get_bool("fast") ? "fast" : "default");

  const std::vector<Variant> variants = {
      {"always-compress", false, 16, 8, true},
      {"t1=8,t2=8", true, 8, 8, true},
      {"t1=16,t2=8", true, 16, 8, true},  // the paper-default configuration
      {"t1=16,t2=4", true, 16, 4, true},
      {"t1=32,t2=8", true, 32, 8, true},
      {"t1=16,t2=8,fig8-literal", true, 16, 8, false},
      {"t1=16,t2=8,t3=52(ext)", true, 16, 8, true, 52},  // upper-cap extension
  };

  TablePrinter table({"app", "variant", "norm_lifetime", "comp_frac", "flips/write"});
  for (const std::string app_name : {"bzip2", "gcc", "hmmer"}) {
    const AppProfile& app = profile_by_name(app_name);
    // Baseline reference once per app.
    LifetimeConfig base;
    base.system.mode = SystemMode::kBaseline;
    base.system.device.lines = scale.physical_lines;
    base.system.device.endurance_mean = scale.endurance_mean;
    base.system.device.endurance_cov = scale.endurance_cov;
    base.system.device.seed = 18;
    base.max_writes = 4'000'000'000ull;
    std::cerr << "[heuristic] " << app_name << " baseline...\n";
    const double base_writes =
        static_cast<double>(run_lifetime(app, base, 100).writes_to_failure);

    for (const auto& v : variants) {
      LifetimeConfig lc = base;
      lc.system.mode = SystemMode::kCompWF;
      lc.system.heuristic.enabled = v.enabled;
      lc.system.heuristic.threshold1_bytes = v.t1;
      lc.system.heuristic.threshold2_bytes = v.t2;
      lc.system.heuristic.update_always = v.update_always;
      lc.system.heuristic.threshold3_bytes = v.t3;
      std::cerr << "[heuristic] " << app_name << " " << v.name << "...\n";
      const auto r = run_lifetime(app, lc, 100);
      table.add_row({app_name, v.name,
                     TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / base_writes, 2),
                     TablePrinter::fmt(r.compressed_fraction, 2),
                     TablePrinter::fmt(r.mean_flips_per_write, 1)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Ablation — Figure-8 heuristic thresholds (Comp+WF vs Baseline)");
    std::cout << "Expected: the heuristic lowers flips/write on bzip2/gcc versus "
                 "always-compress and is neutral on hmmer.\n";
  }
  return 0;
}
