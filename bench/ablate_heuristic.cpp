// Ablation: the Figure-8 write-decision heuristic. Sweeps Threshold1 and
// Threshold2, and compares against always-compress and heuristic-off, on the
// two size-volatile workloads the heuristic exists for (bzip2, gcc) plus a
// stable one (hmmer) where it should be neutral.
#include <iostream>
#include <mutex>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

namespace {

struct Variant {
  std::string name;
  bool enabled;
  std::uint8_t t1;
  std::uint8_t t2;
  bool update_always;
  std::uint8_t t3 = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("ablate_heuristic");
  const auto scale = ExperimentScale::from_flag(args.get_bool("fast") ? "fast" : "default");

  const std::vector<Variant> variants = {
      {"always-compress", false, 16, 8, true},
      {"t1=8,t2=8", true, 8, 8, true},
      {"t1=16,t2=8", true, 16, 8, true},  // the paper-default configuration
      {"t1=16,t2=4", true, 16, 4, true},
      {"t1=32,t2=8", true, 32, 8, true},
      {"t1=16,t2=8,fig8-literal", true, 16, 8, false},
      {"t1=16,t2=8,t3=52(ext)", true, 16, 8, true, 52},  // upper-cap extension
  };

  // One baseline reference plus all variants per app, flattened into
  // independent pool tasks (same seeds as the serial sweep).
  const std::vector<std::string> app_names = {"bzip2", "gcc", "hmmer"};
  const std::size_t per_app = 1 + variants.size();
  std::vector<LifetimeResult> results(app_names.size() * per_app);
  std::mutex log_m;
  parallel_for(results.size(), [&](std::size_t i) {
    const auto& app_name = app_names[i / per_app];
    const std::size_t vi = i % per_app;  // 0 = baseline, else variants[vi-1]
    LifetimeConfig lc;
    lc.system.mode = SystemMode::kBaseline;
    lc.system.device.lines = scale.physical_lines;
    lc.system.device.endurance_mean = scale.endurance_mean;
    lc.system.device.endurance_cov = scale.endurance_cov;
    lc.system.device.seed = 18;
    lc.max_writes = 4'000'000'000ull;
    if (vi > 0) {
      const Variant& v = variants[vi - 1];
      lc.system.mode = SystemMode::kCompWF;
      lc.system.heuristic.enabled = v.enabled;
      lc.system.heuristic.threshold1_bytes = v.t1;
      lc.system.heuristic.threshold2_bytes = v.t2;
      lc.system.heuristic.update_always = v.update_always;
      lc.system.heuristic.threshold3_bytes = v.t3;
    }
    {
      const std::lock_guard lk(log_m);
      std::cerr << "[heuristic] " << app_name << " "
                << (vi == 0 ? "baseline" : variants[vi - 1].name) << "...\n";
    }
    results[i] = run_lifetime(profile_by_name(app_name), lc, 100);
  });

  TablePrinter table({"app", "variant", "norm_lifetime", "comp_frac", "flips/write"});
  for (std::size_t a = 0; a < app_names.size(); ++a) {
    const double base_writes =
        static_cast<double>(results[a * per_app].writes_to_failure);
    for (std::size_t v = 0; v < variants.size(); ++v) {
      const auto& r = results[a * per_app + 1 + v];
      table.add_row({app_names[a], variants[v].name,
                     TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / base_writes, 2),
                     TablePrinter::fmt(r.compressed_fraction, 2),
                     TablePrinter::fmt(r.mean_flips_per_write, 1)});
    }
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Ablation — Figure-8 heuristic thresholds (Comp+WF vs Baseline)");
    std::cout << "Expected: the heuristic lowers flips/write on bzip2/gcc versus "
                 "always-compress and is neutral on hmmer.\n";
  }
  return 0;
}
