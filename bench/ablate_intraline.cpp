// Ablation: intra-line wear-leveling rotation period. Too-frequent rotation
// inflates flips (each window move re-writes the whole window over stale
// bits); too-rare rotation leaves the line's wear concentrated. This is the
// tradeoff behind core/system.cpp's auto threshold (20x endurance).
#include <iostream>
#include <mutex>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("ablate_intraline");
  const std::string app_name = args.get("app", "milc");
  const auto scale = ExperimentScale::from_flag(args.get_bool("fast") ? "fast" : "default");
  const AppProfile& app = profile_by_name(app_name);

  LifetimeConfig base;
  base.system.mode = SystemMode::kBaseline;
  base.system.device.lines = scale.physical_lines;
  base.system.device.endurance_mean = scale.endurance_mean;
  base.system.device.endurance_cov = scale.endurance_cov;
  base.system.device.seed = 18;
  base.max_writes = 4'000'000'000ull;

  const auto e = static_cast<std::uint64_t>(scale.endurance_mean);
  std::vector<std::uint64_t> thresholds;
  for (const std::uint64_t t : {e / 100, e / 10, e, 5 * e, 20 * e, 100 * e, std::uint64_t{1} << 40}) {
    thresholds.push_back(std::max<std::uint64_t>(1, t));
  }

  // The baseline (index 0) and each rotation-threshold variant are
  // independent runs with identical seeds — run them as pool tasks.
  std::vector<LifetimeResult> results(1 + thresholds.size());
  std::mutex log_m;
  parallel_for(results.size(), [&](std::size_t i) {
    LifetimeConfig lc = base;
    if (i > 0) {
      lc.system.mode = SystemMode::kCompW;
      lc.system.rotation_threshold = thresholds[i - 1];
    }
    {
      const std::lock_guard lk(log_m);
      if (i == 0) {
        std::cerr << "[intraline] baseline...\n";
      } else {
        std::cerr << "[intraline] threshold=" << thresholds[i - 1] << "...\n";
      }
    }
    results[i] = run_lifetime(app, lc, 100);
  });

  const double base_writes = static_cast<double>(results[0].writes_to_failure);
  TablePrinter table({"rotation_threshold", "norm_lifetime", "flips/write"});
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    const auto& r = results[1 + i];
    table.add_row({TablePrinter::fmt(thresholds[i]),
                   TablePrinter::fmt(static_cast<double>(r.writes_to_failure) / base_writes, 2),
                   TablePrinter::fmt(r.mean_flips_per_write, 1)});
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Ablation — Comp+W lifetime vs rotation period (" + app_name + ")");
    std::cout << "The last row (2^40) disables rotation in practice; the best period sits "
                 "between the flip-overhead and no-leveling extremes.\n";
  }
  return 0;
}
