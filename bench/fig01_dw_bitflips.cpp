// Figure 1: number of bit-level updates (post-differential-write flips) for
// consecutive writes to one randomly chosen hot 64-byte block of gobmk.
// The paper's point: under DW the update pattern is random in both position
// and magnitude, which is what makes intra-line wear-leveling hard without
// compression.
#include <iostream>
#include <map>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "trace/sampled_source.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string app_name = args.get("app", "gobmk");
  const auto samples = static_cast<std::size_t>(args.get_int("writes", 64));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  const AppProfile& app = profile_by_name(app_name);
  SampledTraceSource src(app, 1 << 12, seed);
  TraceCursor gen(src);

  // Find the hottest block over a warmup window, then trace its rewrites.
  std::map<LineAddr, int> heat;
  for (int i = 0; i < 20000; ++i) ++heat[gen.next().line];
  LineAddr hot = heat.begin()->first;
  for (const auto& [line, count] : heat) {
    if (count > heat[hot]) hot = line;
  }

  TablePrinter table({"write#", "bit_flips", "flips_low256", "flips_high256"});
  RunningStat stat;
  Block stored = src.current_value(hot);
  std::size_t seen = 0;
  while (seen < samples) {
    const auto ev = gen.next();
    if (ev.line != hot) continue;
    const std::size_t flips = hamming_distance(stored, ev.data);
    const std::size_t low = hamming_distance(
        std::span<const std::uint8_t>(stored.data(), 32),
        std::span<const std::uint8_t>(ev.data.data(), 32));
    table.add_row({TablePrinter::fmt(static_cast<std::uint64_t>(seen)),
                   TablePrinter::fmt(static_cast<std::uint64_t>(flips)),
                   TablePrinter::fmt(static_cast<std::uint64_t>(low)),
                   TablePrinter::fmt(static_cast<std::uint64_t>(flips - low))});
    stat.add(static_cast<double>(flips));
    stored = ev.data;
    ++seen;
  }

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Figure 1 — bit flips per consecutive DW write to one hot " +
                               app_name + " block (line " + std::to_string(hot) + ")");
    std::cout << "mean=" << stat.mean() << " min=" << stat.min() << " max=" << stat.max()
              << " stddev=" << stat.stddev()
              << "  (paper: random scatter across the 0..512 range)\n";
  }
  return 0;
}
