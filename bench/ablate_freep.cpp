// Extension bench: FREE-p fine-grained remapping (HPCA'11, the paper's [10])
// evaluated standalone over a PcmArray region. Each logical line is written
// with random data until ECP-6 can no longer cover its stuck cells; with
// FREE-p the dead line chains to a spare (pointer embedded in the dead line)
// and service continues. Sweeps the spare fraction.
#include <iostream>
#include <memory>
#include <mutex>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/zipf.hpp"
#include "common/table.hpp"
#include "ecc/ecp.hpp"
#include "ecc/freep.hpp"

using namespace pcmsim;

namespace {

/// Writes random full-line data until the FIRST unserviceable write (data
/// loss) — the failure FREE-p exists to postpone; returns served writes.
/// Traffic is Zipf-skewed (theta 0.9): remapping pays off when hot lines die
/// long before cold ones (no inter-line wear-leveling here by design —
/// FREE-p is the alternative to it).
std::uint64_t run_region(double spare_fraction, std::uint64_t seed) {
  PcmDeviceConfig cfg;
  cfg.lines = 512;
  cfg.endurance_mean = 300;
  cfg.endurance_cov = 0.15;
  cfg.seed = seed;
  PcmArray array(cfg);
  EcpScheme ecp(6);

  const auto spares = static_cast<std::size_t>(static_cast<double>(cfg.lines) * spare_fraction);
  std::unique_ptr<FreePRemapper> remap;
  if (spares > 0) remap = std::make_unique<FreePRemapper>(array, spares);
  const std::size_t logical = cfg.lines - spares;

  Rng rng(seed * 31 + 7);
  ZipfSampler zipf(logical, 0.9);
  std::uint64_t writes = 0;
  Block data{};
  while (true) {
    const std::size_t line = zipf.sample(rng);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const std::size_t physical = remap ? remap->resolve(line) : line;
    (void)array.write_range(physical, 0, data, kBlockBits);
    ++writes;
    if (array.count_stuck(physical, 0, kBlockBits) > ecp.guaranteed_correctable()) {
      // Line exhausted ECP-6. FREE-p: chain to a spare; otherwise data loss.
      if (remap && remap->remap(line).has_value()) continue;
      return writes;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("ablate_freep");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  // Each spare-fraction sweep point is an independent region run.
  const std::vector<double> fracs = {0.0, 0.05, 0.125, 0.25};
  std::mutex log_m;
  const auto writes = parallel_map(fracs, [&](const double frac) {
    {
      const std::lock_guard lk(log_m);
      std::cerr << "[freep] spare fraction " << frac << "...\n";
    }
    return run_region(frac, seed);
  });

  TablePrinter table({"spare_fraction", "writes_to_first_loss", "normalized"});
  const double base = static_cast<double>(writes[0]);  // fracs[0] == 0.0
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    table.add_row({TablePrinter::fmt(fracs[i], 3), TablePrinter::fmt(writes[i]),
                   TablePrinter::fmt(static_cast<double>(writes[i]) / base, 2)});
  }
  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Extension — FREE-p remapping: writes until first data loss "
                           "vs spare fraction (raw full-line writes, ECP-6 per line)");
    std::cout << "FREE-p postpones the first uncorrectable error by chaining dead lines\n"
                 "to spares; the paper's Comp+WF postpones it with zero spare area by\n"
                 "shrinking the data instead of moving it.\n";
  }
  return 0;
}
