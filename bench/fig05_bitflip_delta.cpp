// Figure 5: percentage of write-backs whose post-DW bit-flip count increases,
// stays within +/-5%, or decreases when data is stored compressed (naive
// Comp layout: window at the least-significant bytes) instead of raw.
//
// Also reports the paper's Section I claim that ~20% of writes see MORE
// flips under blind compression.
#include <iostream>
#include <unordered_map>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "compression/best_of.hpp"
#include "trace/sampled_source.hpp"

using namespace pcmsim;

namespace {

struct ShadowLine {
  Block raw{};        // what an uncompressed PCM line would hold
  Block comp{};       // what a Comp-style line holds (image + stale tail)
  bool seen = false;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto writes = static_cast<int>(args.get_int("writes", 60000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  BestOfCompressor best;
  TablePrinter table({"app", "increased%", "untouched%", "decreased%"});
  double total_increased = 0;
  for (const auto& app : spec2006_profiles()) {
    SampledTraceSource src(app, 1 << 14, seed);
    TraceCursor gen(src);
    std::unordered_map<LineAddr, ShadowLine> lines;
    std::uint64_t inc = 0;
    std::uint64_t same = 0;
    std::uint64_t dec = 0;
    for (int i = 0; i < writes; ++i) {
      const auto ev = gen.next();
      auto& sh = lines[ev.line];
      if (!sh.seen) {  // first write: no old data to diff against
        sh.seen = true;
        sh.raw = ev.data;
        const auto c0 = best.compress(ev.data);
        sh.comp = zero_block();
        if (c0) {
          std::copy(c0->bytes.begin(), c0->bytes.end(), sh.comp.begin());
        } else {
          sh.comp = ev.data;
        }
        continue;
      }
      const auto flips_raw = hamming_distance(sh.raw, ev.data);
      const auto c = best.compress(ev.data);
      std::size_t flips_comp;
      Block next_comp = sh.comp;
      if (c) {
        flips_comp = hamming_distance(
            std::span<const std::uint8_t>(sh.comp.data(), c->size_bytes()),
            std::span<const std::uint8_t>(c->bytes.data(), c->size_bytes()));
        std::copy(c->bytes.begin(), c->bytes.end(), next_comp.begin());
      } else {
        flips_comp = hamming_distance(sh.comp, ev.data);
        next_comp = ev.data;
      }
      sh.raw = ev.data;
      sh.comp = next_comp;

      const double lo = 0.95 * static_cast<double>(flips_raw);
      const double hi = 1.05 * static_cast<double>(flips_raw);
      const auto fc = static_cast<double>(flips_comp);
      if (fc > hi) {
        ++inc;
      } else if (fc < lo) {
        ++dec;
      } else {
        ++same;
      }
    }
    const double n = static_cast<double>(inc + same + dec);
    total_increased += 100.0 * static_cast<double>(inc) / n;
    table.add_row({app.name, TablePrinter::fmt(100.0 * static_cast<double>(inc) / n, 1),
                   TablePrinter::fmt(100.0 * static_cast<double>(same) / n, 1),
                   TablePrinter::fmt(100.0 * static_cast<double>(dec) / n, 1)});
  }
  table.add_row({"Average", TablePrinter::fmt(total_increased / 15.0, 1), "-", "-"});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout,
                "Figure 5 — write-backs with increased / untouched / decreased bit flips "
                "after compression (+/-5% band)");
    std::cout << "Paper: ~20% of writes increase on average; high-CR apps (sjeng, milc,\n"
                 "cactusADM) mostly decrease; low-CR lbm/GemsFDTD mostly increase;\n"
                 "bzip2/gcc increase despite decent CR (size churn); leslie3d untouched.\n";
  }
  return 0;
}
