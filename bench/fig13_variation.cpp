// Figure 13: Comp+WF lifetime normalized to Baseline under higher process
// variation (endurance CoV = 0.25 instead of 0.15). The paper's point: the
// proposed design's advantage grows when variation worsens (milc/zeusmp/
// cactusADM reach 10-15x).
#include <iostream>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("fig13_variation");
  auto scale = ExperimentScale::from_flag(
      args.get_bool("paper") ? "paper" : (args.get_bool("fast") ? "fast" : "default"));
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  scale.endurance_cov = args.get_double("cov", 0.25);

  const auto apps = all_app_names();
  const auto cells =
      run_lifetime_matrix(apps, {SystemMode::kBaseline, SystemMode::kCompWF}, scale);

  TablePrinter table({"app", "Comp+WF_norm(CoV=" + TablePrinter::fmt(scale.endurance_cov, 2) + ")"});
  double sum = 0;
  for (const auto& name : apps) {
    const double base =
        static_cast<double>(matrix_cell(cells, name, SystemMode::kBaseline).result.writes_to_failure);
    const double wf =
        static_cast<double>(matrix_cell(cells, name, SystemMode::kCompWF).result.writes_to_failure);
    sum += wf / base;
    table.add_row({name, TablePrinter::fmt(wf / base, 2)});
  }
  table.add_row({"Average", TablePrinter::fmt(sum / 15.0, 2)});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Figure 13 — Comp+WF lifetime vs Baseline at CoV=0.25");
    std::cout << "Paper: gains exceed the CoV=0.15 results of Fig 10 (high-CR apps reach "
                 "10-15x) because weak-cell variation punishes the baseline hardest.\n";
  }
  return 0;
}
