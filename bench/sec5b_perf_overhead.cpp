// Section V-B: performance overhead of compression. Decompression (1 cycle
// BDI / 5 cycles FPC at 2.5 GHz) sits on the read critical path; compression
// itself hides behind the 32-entry write queue. The paper reports up to ~2%
// higher read latency and <0.3% overall slowdown.
//
// Method: per app, feed the controller a request stream whose rates derive
// from the app's WPKI (writes) and an LLC-miss read/write ratio; reads to
// compressed lines (fraction + scheme mix measured from the workload) carry
// the winner's decompression latency. Compare against the same stream with
// decompression disabled.
#include <iostream>
#include <mutex>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "compression/best_of.hpp"
#include "controller/controller.hpp"
#include "core/address_map.hpp"
#include "trace/sampled_source.hpp"

using namespace pcmsim;

namespace {

/// Region the synthetic request stream addresses; banks are derived from the
/// drawn line through the shared AddressMap (the same mapping the sharded
/// engine executes on), not an independent uniform draw.
constexpr std::uint64_t kStreamRegionLines = 1 << 12;

struct Mix {
  double compressed_fraction = 0;  ///< of lines, weighted by write traffic
  double bdi_share = 0;            ///< of compressed lines
};

Mix measure_mix(const AppProfile& app, std::uint64_t seed) {
  BestOfCompressor best;
  SampledTraceSource src(app, kStreamRegionLines, seed);
  TraceCursor gen(src);
  std::uint64_t comp = 0;
  std::uint64_t bdi = 0;
  std::uint64_t total = 20000;
  for (std::uint64_t i = 0; i < total; ++i) {
    const auto ev = gen.next();
    if (const auto c = best.probe(ev.data)) {
      ++comp;
      bdi += c->scheme == CompressionScheme::kBdi ? 1u : 0u;
    }
  }
  Mix m;
  m.compressed_fraction = static_cast<double>(comp) / static_cast<double>(total);
  m.bdi_share = comp ? static_cast<double>(bdi) / static_cast<double>(comp) : 0.0;
  return m;
}

double run_stream(const AppProfile& app, const Mix& mix, bool with_decompression,
                  std::uint64_t seed, std::uint64_t cycles) {
  ControllerConfig cfg;
  MemoryController mc(cfg);
  Rng rng(seed);
  const AddressMap map;  // 2 channels x 4 banks (Table II)
  expects(map.shards() == cfg.banks, "controller banks must match the address map");

  // Rates per controller cycle (400 MHz) from the CMP's instruction rate
  // (16 cores x 2.5 GHz x IPC 0.4) and the app's WPKI; reads (LLC misses)
  // arrive at ~2x the write-back rate.
  const double instr_per_cycle = 16.0 * 2.5e9 * 0.4 / 400e6;
  double writes_per_cycle = app.wpki / 1000.0 * instr_per_cycle;
  double reads_per_cycle = 2.0 * writes_per_cycle;
  // Closed-loop throttling: stalled cores cannot over-drive the memory. Cap
  // bank utilization at 60% (an open-loop stream past saturation would only
  // measure queue caps, not the decompression effect).
  const double demand = reads_per_cycle * (cfg.timing.t_rdc + cfg.timing.t_cl + 7.0) +
                        writes_per_cycle * (cfg.timing.t_wl + cfg.timing.t_rp + 4.0);
  const double util = demand / cfg.banks;
  if (util > 0.6) {
    reads_per_cycle *= 0.6 / util;
    writes_per_cycle *= 0.6 / util;
  }

  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    if (rng.next_bool(reads_per_cycle)) {
      MemRequest r;
      r.arrival_cycle = cycle;
      r.is_read = true;
      r.bank = map.shard_of(rng.next_below(kStreamRegionLines));
      if (with_decompression && rng.next_bool(mix.compressed_fraction)) {
        r.decompression_cpu_cycles = rng.next_bool(mix.bdi_share) ? 1 : 5;
      }
      mc.submit(r);
    }
    if (rng.next_bool(writes_per_cycle)) {
      MemRequest w;
      w.arrival_cycle = cycle;
      w.is_read = false;
      w.bank = map.shard_of(rng.next_below(kStreamRegionLines));
      mc.submit(w);
    }
  }
  mc.finish();
  return mc.read_latency().mean();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("sec5b_perf_overhead");
  const auto cycles = static_cast<std::uint64_t>(args.get_int("cycles", 2000000));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  // Each app's measurement is self-contained (own generator/controller/RNG
  // streams from fixed seeds), so the 15 apps run as independent tasks.
  struct Row {
    double base = 0;
    double comp = 0;
  };
  const std::vector<AppProfile> profiles = spec2006_profiles();
  std::mutex log_m;
  const auto rows = parallel_map(profiles, [&](const AppProfile& app) {
    {
      const std::lock_guard lk(log_m);
      std::cerr << "[sec5b] " << app.name << "...\n";
    }
    const Mix mix = measure_mix(app, seed);
    Row r;
    r.base = run_stream(app, mix, false, seed, cycles);
    r.comp = run_stream(app, mix, true, seed, cycles);
    return r;
  });

  TablePrinter table({"app", "read_lat_base", "read_lat_comp", "lat_increase%", "slowdown%"});
  double lat_sum = 0;
  double slow_sum = 0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const AppProfile& app = profiles[i];
    const double base = rows[i].base;
    const double comp = rows[i].comp;
    const double lat_pct = 100.0 * (comp - base) / base;

    // CPI model: base CPI 1/0.4 = 2.5; memory reads (2x WPKI) each cost the
    // average read latency in CPU cycles (2.5 GHz / 400 MHz = 6.25x).
    const double reads_per_ki = 2.0 * app.wpki;
    const double cpu_per_mem_cycle = 6.25;
    const double base_cpi = 2.5 + reads_per_ki / 1000.0 * base * cpu_per_mem_cycle;
    const double comp_cpi = 2.5 + reads_per_ki / 1000.0 * comp * cpu_per_mem_cycle;
    const double slowdown = 100.0 * (comp_cpi - base_cpi) / base_cpi;

    lat_sum += lat_pct;
    slow_sum += slowdown;
    table.add_row({app.name, TablePrinter::fmt(base, 1), TablePrinter::fmt(comp, 1),
                   TablePrinter::fmt(lat_pct, 2), TablePrinter::fmt(slowdown, 3)});
  }
  table.add_row({"Average", "-", "-", TablePrinter::fmt(lat_sum / 15.0, 2),
                 TablePrinter::fmt(slow_sum / 15.0, 3)});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Section V-B — read-latency and performance overhead of "
                           "decompression");
    std::cout << "Paper: reads to compressed blocks delayed up to ~2% on average; overall "
                 "slowdown < 0.3%.\n";
  }
  return 0;
}
