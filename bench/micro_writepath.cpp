// Write-path microbenchmark: times the steady-state stages of one serviced
// write-back in isolation — best-of(BDI,FPC) size planning (the fused-scan
// probe the write path runs per write), legacy full compression, Flip-N-Write
// encoding — and the full PcmSystem::write loop, emitting machine-readable
// JSON (see BENCH_writepath.json for committed before/after numbers).
//
// The system.write stage runs a wear-free steady state: the region is large
// and endurance high relative to the measured write count, so the loop
// exercises exactly the path every lifetime/MC experiment spends its time in
// (compress -> heuristic -> place -> differential write), not fault handling.
// A separate aged-array stage measures window placement at 0/8/32 stuck
// cells per line, the regime the fault-state caches accelerate.
//
// `--profile` adds the per-stage cycle counters (common/profiler.hpp) to the
// JSON; `--expect_checksum N` exits non-zero when the deterministic work
// checksum deviates — CI runs this to catch perf refactors that silently
// change behaviour (see bench/CMakeLists.txt).
#include <chrono>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "common/profiler.hpp"
#include "common/rng.hpp"
#include "compression/best_of.hpp"
#include "core/system.hpp"
#include "pcm/flip_n_write.hpp"
#include "trace/sampled_source.hpp"
#include "workload/trace.hpp"

using namespace pcmsim;

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point t0, Clock::time_point t1, std::size_t ops) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return static_cast<double>(ns) / static_cast<double>(ops);
}

/// Placement cost on lines aged to `faults_per_line` stuck cells: kAnywhere
/// find() of a 32-byte window (the median compressed size) over every line.
double place_ns_per_find(std::size_t faults_per_line, std::uint64_t seed) {
  PcmDeviceConfig cfg;
  cfg.lines = 256;
  cfg.seed = seed;
  PcmArray array(cfg);
  Rng rng(mix64(seed, faults_per_line));
  for (std::size_t line = 0; line < cfg.lines; ++line) {
    for (std::size_t f = 0; f < faults_per_line; ++f) {
      array.inject_fault(line, rng.next_below(kBlockBits), rng.next_bool(0.5));
    }
  }
  const auto scheme = make_scheme(EccKind::kEcp6);
  const WindowPlacer placer(*scheme);
  constexpr std::size_t kIters = 200;
  std::size_t sink = 0;
  const auto t0 = Clock::now();
  for (std::size_t it = 0; it < kIters; ++it) {
    for (std::size_t line = 0; line < cfg.lines; ++line) {
      const auto preferred = static_cast<std::uint8_t>((line * 7 + it) % kBlockBytes);
      const auto start = placer.find(array, line, 32, preferred, SlidePolicy::kAnywhere);
      sink += start ? *start : kBlockBytes;
    }
  }
  const auto t1 = Clock::now();
  const double ns = ns_per_op(t0, t1, kIters * cfg.lines);
  return sink == 0 ? ns + 1e-9 : ns;  // sink defeats dead-code elimination
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto writes = static_cast<std::size_t>(args.get_int("writes", 200000));
  const auto lines = static_cast<std::uint64_t>(args.get_int("lines", 4096));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto expect_checksum = args.get_int("expect_checksum", -1);
  if (args.get_bool("profile")) prof::set_enabled(true);

  // Pre-generate a mixed corpus so trace generation stays out of every timed
  // loop. Three apps spanning the compressibility spectrum (Table III),
  // batch-generated per app and interleaved i % 3 from the default sampled
  // source — the per-source subsequences are independent streams, so the
  // corpus is independent of batching. The work checksum pins this exact
  // corpus (it was re-pinned when the default source flipped to sampled).
  std::vector<WritebackEvent> events(writes);
  {
    SampledTraceSource gcc(profile_by_name("gcc"), lines, seed);
    SampledTraceSource milc(profile_by_name("milc"), lines, seed + 1);
    SampledTraceSource lbm(profile_by_name("lbm"), lines, seed + 2);
    SampledTraceSource* gens[] = {&gcc, &milc, &lbm};
    std::vector<WritebackEvent> lane;
    for (std::size_t g = 0; g < 3; ++g) {
      const std::size_t count = writes / 3 + (g < writes % 3 ? 1 : 0);
      lane.resize(count);
      (void)gens[g]->next_batch(lane);
      for (std::size_t i = 0; i < count; ++i) events[g + i * 3] = lane[i];
    }
  }

  // --- Stage 1: best-of compression --------------------------------------
  // 1a: the plan (probe-only) pass the write path now runs on every write;
  // 1b: legacy full materialization of the winner, kept for before/after
  // comparability. Their byte totals must agree (checked below), so the work
  // checksum is identical to the pre-plan pipeline's.
  BestOfCompressor best;
  std::size_t comp_bytes = 0;  // sink: defeats dead-code elimination
  const auto p0 = Clock::now();
  for (const auto& ev : events) {
    const auto p = best.plan(ev.data);
    comp_bytes += p ? p->size_bytes() : kBlockBytes;
  }
  const auto p1 = Clock::now();

  std::size_t legacy_bytes = 0;
  const auto c0 = Clock::now();
  for (const auto& ev : events) {
    const auto c = best.compress(ev.data);
    legacy_bytes += c ? c->size_bytes() : kBlockBytes;
  }
  const auto c1 = Clock::now();
  if (legacy_bytes != comp_bytes) {
    std::cerr << "plan/compress size divergence: plan " << comp_bytes << " vs compress "
              << legacy_bytes << "\n";
    return 1;
  }

  // --- Stage 2: Flip-N-Write encode (fused flip count) --------------------
  FlipNWriteCodec codec(64);
  Block stored{};
  std::uint64_t flags = 0;
  std::size_t fnw_flips = 0;
  const auto f0 = Clock::now();
  for (const auto& ev : events) {
    fnw_flips += codec.encoded_flips(ev.data, stored, flags);
    const auto enc = codec.encode(ev.data, stored, flags);
    stored = enc.payload;
    flags = enc.invert_mask;
  }
  const auto f1 = Clock::now();

  // --- Stage 3: full steady-state system.write ----------------------------
  SystemConfig cfg;
  cfg.device.lines = lines + 1;  // + gap line
  cfg.device.endurance_mean = 1e4;
  cfg.device.seed = seed;
  cfg.seed = seed;
  PcmSystem system(cfg);
  // Warm-up: every line written at least once so steady state has no
  // first-touch effects (metadata init, trace map growth is already done).
  std::size_t flips = 0;
  for (const auto& ev : events) flips += system.write(ev.line, ev.data).flips;
  const auto w0 = Clock::now();
  for (const auto& ev : events) flips += system.write(ev.line, ev.data).flips;
  const auto w1 = Clock::now();

  // --- Stage 4: placement search on aged lines ----------------------------
  const double place_f0 = place_ns_per_find(0, seed);
  const double place_f8 = place_ns_per_find(8, seed);
  const double place_f32 = place_ns_per_find(32, seed);

  const double write_ns = ns_per_op(w0, w1, writes);
  const std::size_t checksum = comp_bytes ^ fnw_flips ^ flips;
  std::cout << "{\n"
            << "  \"writes\": " << writes << ",\n"
            << "  \"plan_ns_per_op\": " << ns_per_op(p0, p1, writes) << ",\n"
            << "  \"compress_ns_per_op\": " << ns_per_op(c0, c1, writes) << ",\n"
            << "  \"fnw_encode_ns_per_op\": " << ns_per_op(f0, f1, writes) << ",\n"
            << "  \"system_write_ns_per_op\": " << write_ns << ",\n"
            << "  \"system_writes_per_sec\": " << 1e9 / write_ns << ",\n"
            << "  \"place_find_ns_faults0\": " << place_f0 << ",\n"
            << "  \"place_find_ns_faults8\": " << place_f8 << ",\n"
            << "  \"place_find_ns_faults32\": " << place_f32 << ",\n"
            << "  \"checksum\": " << checksum;
  if (prof::enabled()) {
    std::cout << ",\n  \"profile\": ";
    prof::dump_json(std::cout, "  ");
  }
  std::cout << "\n}\n";

  if (expect_checksum >= 0 && static_cast<std::size_t>(expect_checksum) != checksum) {
    std::cerr << "checksum mismatch: expected " << expect_checksum << ", got " << checksum
              << " — the write path's observable behaviour changed\n";
    return 1;
  }
  return 0;
}
