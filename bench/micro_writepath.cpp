// Write-path microbenchmark: times the steady-state stages of one serviced
// write-back in isolation — best-of(BDI,FPC) compression, Flip-N-Write
// encoding — and the full PcmSystem::write loop, emitting machine-readable
// JSON (see BENCH_writepath.json for committed before/after numbers).
//
// The system.write stage runs a wear-free steady state: the region is large
// and endurance high relative to the measured write count, so the loop
// exercises exactly the path every lifetime/MC experiment spends its time in
// (compress -> heuristic -> place -> differential write), not fault handling.
#include <chrono>
#include <iostream>
#include <vector>

#include "common/cli.hpp"
#include "compression/best_of.hpp"
#include "core/system.hpp"
#include "pcm/flip_n_write.hpp"
#include "workload/trace.hpp"

using namespace pcmsim;

namespace {

using Clock = std::chrono::steady_clock;

double ns_per_op(Clock::time_point t0, Clock::time_point t1, std::size_t ops) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return static_cast<double>(ns) / static_cast<double>(ops);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto writes = static_cast<std::size_t>(args.get_int("writes", 200000));
  const auto lines = static_cast<std::uint64_t>(args.get_int("lines", 4096));
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  // Pre-generate a mixed corpus so trace generation stays out of every timed
  // loop. Three apps spanning the compressibility spectrum (Table III).
  std::vector<WritebackEvent> events;
  events.reserve(writes);
  {
    TraceGenerator gcc(profile_by_name("gcc"), lines, seed);
    TraceGenerator milc(profile_by_name("milc"), lines, seed + 1);
    TraceGenerator lbm(profile_by_name("lbm"), lines, seed + 2);
    TraceGenerator* gens[] = {&gcc, &milc, &lbm};
    for (std::size_t i = 0; i < writes; ++i) events.push_back(gens[i % 3]->next());
  }

  // --- Stage 1: best-of compression --------------------------------------
  BestOfCompressor best;
  std::size_t comp_bytes = 0;  // sink: defeats dead-code elimination
  const auto c0 = Clock::now();
  for (const auto& ev : events) {
    const auto c = best.compress(ev.data);
    comp_bytes += c ? c->size_bytes() : kBlockBytes;
  }
  const auto c1 = Clock::now();

  // --- Stage 2: Flip-N-Write encode (fused flip count) --------------------
  FlipNWriteCodec codec(64);
  Block stored{};
  std::uint64_t flags = 0;
  std::size_t fnw_flips = 0;
  const auto f0 = Clock::now();
  for (const auto& ev : events) {
    fnw_flips += codec.encoded_flips(ev.data, stored, flags);
    const auto enc = codec.encode(ev.data, stored, flags);
    stored = enc.payload;
    flags = enc.invert_mask;
  }
  const auto f1 = Clock::now();

  // --- Stage 3: full steady-state system.write ----------------------------
  SystemConfig cfg;
  cfg.device.lines = lines + 1;  // + gap line
  cfg.device.endurance_mean = 1e4;
  cfg.device.seed = seed;
  cfg.seed = seed;
  PcmSystem system(cfg);
  // Warm-up: every line written at least once so steady state has no
  // first-touch effects (metadata init, trace map growth is already done).
  std::size_t flips = 0;
  for (const auto& ev : events) flips += system.write(ev.line, ev.data).flips;
  const auto w0 = Clock::now();
  for (const auto& ev : events) flips += system.write(ev.line, ev.data).flips;
  const auto w1 = Clock::now();

  const double write_ns = ns_per_op(w0, w1, writes);
  std::cout << "{\n"
            << "  \"writes\": " << writes << ",\n"
            << "  \"compress_ns_per_op\": " << ns_per_op(c0, c1, writes) << ",\n"
            << "  \"fnw_encode_ns_per_op\": " << ns_per_op(f0, f1, writes) << ",\n"
            << "  \"system_write_ns_per_op\": " << write_ns << ",\n"
            << "  \"system_writes_per_sec\": " << 1e9 / write_ns << ",\n"
            << "  \"checksum\": " << (comp_bytes ^ fnw_flips ^ flips) << "\n"
            << "}\n";
  return 0;
}
