// Table IV: final lifetime in months, Baseline vs Comp+WF, via the write-rate
// model of Section IV (16-core 2.5 GHz CMP, per-app WPKI, 1e7-cycle cells,
// 4 GB DIMM). Paper averages: 22 months -> 79 months.
#include <iostream>

#include "common/cli.hpp"
#include "common/parallel.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/experiments.hpp"

using namespace pcmsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  set_threads_from_cli(args);
  const ScopedTimer timer("table4_months");
  auto scale = ExperimentScale::from_flag(
      args.get_bool("paper") ? "paper" : (args.get_bool("fast") ? "fast" : "default"));
  scale.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  MonthsModel model;
  model.ipc = args.get_double("ipc", 0.4);

  const auto apps = all_app_names();
  const auto cells =
      run_lifetime_matrix(apps, {SystemMode::kBaseline, SystemMode::kCompWF}, scale);

  TablePrinter table({"app", "Baseline_mo", "Comp+WF_mo", "paper_base", "paper_wf"});
  const std::vector<std::pair<double, double>> paper = {
      {15.6, 19.6}, {20.7, 28.8}, {13.4, 19.8}, {8.3, 13.5}, {32.1, 70.6},
      {18.7, 48.0}, {50.4, 131.7}, {8.6, 23.6}, {52.1, 150.2}, {51.0, 159.4},
      {13.2, 50.4}, {8.7, 36.2}, {11.7, 128.7}, {16.0, 184.0}, {9.2, 119.6}};
  double sum_b = 0;
  double sum_wf = 0;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& base = matrix_cell(cells, apps[i], SystemMode::kBaseline);
    const auto& wf = matrix_cell(cells, apps[i], SystemMode::kCompWF);
    const double mb = lifetime_months(base.result, base.config, profile_by_name(apps[i]), model);
    const double mw = lifetime_months(wf.result, wf.config, profile_by_name(apps[i]), model);
    sum_b += mb;
    sum_wf += mw;
    table.add_row({apps[i], TablePrinter::fmt(mb, 1), TablePrinter::fmt(mw, 1),
                   TablePrinter::fmt(paper[i].first, 1), TablePrinter::fmt(paper[i].second, 1)});
  }
  table.add_row({"Average", TablePrinter::fmt(sum_b / 15.0, 1),
                 TablePrinter::fmt(sum_wf / 15.0, 1), "22.0", "79.0"});

  if (args.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout, "Table IV — lifetime in months (Baseline vs Comp+WF)");
    std::cout << "Months are rescaled from simulated writes: x (1e7 / E_sim) endurance, "
                 "x (2^26 / lines_sim) region, / (WPKI x 16 cores x 2.5 GHz x IPC).\n";
  }
  return 0;
}
