file(REMOVE_RECURSE
  "libpcmsim_ecc.a"
)
