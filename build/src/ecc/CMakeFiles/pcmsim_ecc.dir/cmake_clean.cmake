file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_ecc.dir/aegis.cpp.o"
  "CMakeFiles/pcmsim_ecc.dir/aegis.cpp.o.d"
  "CMakeFiles/pcmsim_ecc.dir/ecp.cpp.o"
  "CMakeFiles/pcmsim_ecc.dir/ecp.cpp.o.d"
  "CMakeFiles/pcmsim_ecc.dir/freep.cpp.o"
  "CMakeFiles/pcmsim_ecc.dir/freep.cpp.o.d"
  "CMakeFiles/pcmsim_ecc.dir/safer.cpp.o"
  "CMakeFiles/pcmsim_ecc.dir/safer.cpp.o.d"
  "CMakeFiles/pcmsim_ecc.dir/scheme.cpp.o"
  "CMakeFiles/pcmsim_ecc.dir/scheme.cpp.o.d"
  "CMakeFiles/pcmsim_ecc.dir/secded.cpp.o"
  "CMakeFiles/pcmsim_ecc.dir/secded.cpp.o.d"
  "libpcmsim_ecc.a"
  "libpcmsim_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
