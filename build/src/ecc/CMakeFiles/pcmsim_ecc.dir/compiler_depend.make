# Empty compiler generated dependencies file for pcmsim_ecc.
# This may be replaced when dependencies are built.
