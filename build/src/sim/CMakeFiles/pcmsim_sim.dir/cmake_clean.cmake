file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_sim.dir/experiments.cpp.o"
  "CMakeFiles/pcmsim_sim.dir/experiments.cpp.o.d"
  "CMakeFiles/pcmsim_sim.dir/lifetime.cpp.o"
  "CMakeFiles/pcmsim_sim.dir/lifetime.cpp.o.d"
  "CMakeFiles/pcmsim_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/pcmsim_sim.dir/monte_carlo.cpp.o.d"
  "libpcmsim_sim.a"
  "libpcmsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
