file(REMOVE_RECURSE
  "libpcmsim_sim.a"
)
