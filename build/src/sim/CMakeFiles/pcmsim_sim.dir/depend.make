# Empty dependencies file for pcmsim_sim.
# This may be replaced when dependencies are built.
