# Empty compiler generated dependencies file for pcmsim_compression.
# This may be replaced when dependencies are built.
