
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compression/bdi.cpp" "src/compression/CMakeFiles/pcmsim_compression.dir/bdi.cpp.o" "gcc" "src/compression/CMakeFiles/pcmsim_compression.dir/bdi.cpp.o.d"
  "/root/repo/src/compression/best_of.cpp" "src/compression/CMakeFiles/pcmsim_compression.dir/best_of.cpp.o" "gcc" "src/compression/CMakeFiles/pcmsim_compression.dir/best_of.cpp.o.d"
  "/root/repo/src/compression/fpc.cpp" "src/compression/CMakeFiles/pcmsim_compression.dir/fpc.cpp.o" "gcc" "src/compression/CMakeFiles/pcmsim_compression.dir/fpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcmsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
