file(REMOVE_RECURSE
  "libpcmsim_compression.a"
)
