file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_compression.dir/bdi.cpp.o"
  "CMakeFiles/pcmsim_compression.dir/bdi.cpp.o.d"
  "CMakeFiles/pcmsim_compression.dir/best_of.cpp.o"
  "CMakeFiles/pcmsim_compression.dir/best_of.cpp.o.d"
  "CMakeFiles/pcmsim_compression.dir/fpc.cpp.o"
  "CMakeFiles/pcmsim_compression.dir/fpc.cpp.o.d"
  "libpcmsim_compression.a"
  "libpcmsim_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
