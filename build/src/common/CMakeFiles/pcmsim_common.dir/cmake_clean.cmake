file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_common.dir/cli.cpp.o"
  "CMakeFiles/pcmsim_common.dir/cli.cpp.o.d"
  "CMakeFiles/pcmsim_common.dir/rng.cpp.o"
  "CMakeFiles/pcmsim_common.dir/rng.cpp.o.d"
  "CMakeFiles/pcmsim_common.dir/stats.cpp.o"
  "CMakeFiles/pcmsim_common.dir/stats.cpp.o.d"
  "CMakeFiles/pcmsim_common.dir/table.cpp.o"
  "CMakeFiles/pcmsim_common.dir/table.cpp.o.d"
  "CMakeFiles/pcmsim_common.dir/zipf.cpp.o"
  "CMakeFiles/pcmsim_common.dir/zipf.cpp.o.d"
  "libpcmsim_common.a"
  "libpcmsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
