file(REMOVE_RECURSE
  "libpcmsim_common.a"
)
