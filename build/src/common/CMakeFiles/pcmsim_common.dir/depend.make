# Empty dependencies file for pcmsim_common.
# This may be replaced when dependencies are built.
