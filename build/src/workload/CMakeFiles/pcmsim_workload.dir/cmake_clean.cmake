file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_workload.dir/app_profile.cpp.o"
  "CMakeFiles/pcmsim_workload.dir/app_profile.cpp.o.d"
  "CMakeFiles/pcmsim_workload.dir/trace.cpp.o"
  "CMakeFiles/pcmsim_workload.dir/trace.cpp.o.d"
  "CMakeFiles/pcmsim_workload.dir/value_model.cpp.o"
  "CMakeFiles/pcmsim_workload.dir/value_model.cpp.o.d"
  "libpcmsim_workload.a"
  "libpcmsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
