file(REMOVE_RECURSE
  "libpcmsim_workload.a"
)
