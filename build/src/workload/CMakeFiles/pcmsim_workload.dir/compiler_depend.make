# Empty compiler generated dependencies file for pcmsim_workload.
# This may be replaced when dependencies are built.
