file(REMOVE_RECURSE
  "libpcmsim_controller.a"
)
