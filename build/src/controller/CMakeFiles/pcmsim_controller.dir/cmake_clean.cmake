file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_controller.dir/controller.cpp.o"
  "CMakeFiles/pcmsim_controller.dir/controller.cpp.o.d"
  "libpcmsim_controller.a"
  "libpcmsim_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
