# Empty dependencies file for pcmsim_controller.
# This may be replaced when dependencies are built.
