file(REMOVE_RECURSE
  "libpcmsim_core.a"
)
