file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_core.dir/heuristic.cpp.o"
  "CMakeFiles/pcmsim_core.dir/heuristic.cpp.o.d"
  "CMakeFiles/pcmsim_core.dir/system.cpp.o"
  "CMakeFiles/pcmsim_core.dir/system.cpp.o.d"
  "CMakeFiles/pcmsim_core.dir/window.cpp.o"
  "CMakeFiles/pcmsim_core.dir/window.cpp.o.d"
  "libpcmsim_core.a"
  "libpcmsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
