
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/heuristic.cpp" "src/core/CMakeFiles/pcmsim_core.dir/heuristic.cpp.o" "gcc" "src/core/CMakeFiles/pcmsim_core.dir/heuristic.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/pcmsim_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/pcmsim_core.dir/system.cpp.o.d"
  "/root/repo/src/core/window.cpp" "src/core/CMakeFiles/pcmsim_core.dir/window.cpp.o" "gcc" "src/core/CMakeFiles/pcmsim_core.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pcmsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/pcmsim_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/pcmsim_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/pcmsim_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/wear/CMakeFiles/pcmsim_wear.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
