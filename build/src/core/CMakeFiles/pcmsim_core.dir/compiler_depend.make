# Empty compiler generated dependencies file for pcmsim_core.
# This may be replaced when dependencies are built.
