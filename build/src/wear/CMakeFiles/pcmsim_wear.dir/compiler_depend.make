# Empty compiler generated dependencies file for pcmsim_wear.
# This may be replaced when dependencies are built.
