file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_wear.dir/start_gap.cpp.o"
  "CMakeFiles/pcmsim_wear.dir/start_gap.cpp.o.d"
  "libpcmsim_wear.a"
  "libpcmsim_wear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
