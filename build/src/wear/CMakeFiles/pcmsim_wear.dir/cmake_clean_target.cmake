file(REMOVE_RECURSE
  "libpcmsim_wear.a"
)
