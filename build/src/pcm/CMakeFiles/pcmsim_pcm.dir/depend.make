# Empty dependencies file for pcmsim_pcm.
# This may be replaced when dependencies are built.
