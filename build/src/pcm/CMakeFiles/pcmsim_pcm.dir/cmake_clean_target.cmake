file(REMOVE_RECURSE
  "libpcmsim_pcm.a"
)
