file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_pcm.dir/array.cpp.o"
  "CMakeFiles/pcmsim_pcm.dir/array.cpp.o.d"
  "CMakeFiles/pcmsim_pcm.dir/flip_n_write.cpp.o"
  "CMakeFiles/pcmsim_pcm.dir/flip_n_write.cpp.o.d"
  "libpcmsim_pcm.a"
  "libpcmsim_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
