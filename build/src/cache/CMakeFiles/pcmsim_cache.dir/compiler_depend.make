# Empty compiler generated dependencies file for pcmsim_cache.
# This may be replaced when dependencies are built.
