file(REMOVE_RECURSE
  "CMakeFiles/pcmsim_cache.dir/cache.cpp.o"
  "CMakeFiles/pcmsim_cache.dir/cache.cpp.o.d"
  "CMakeFiles/pcmsim_cache.dir/hierarchy.cpp.o"
  "CMakeFiles/pcmsim_cache.dir/hierarchy.cpp.o.d"
  "libpcmsim_cache.a"
  "libpcmsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
