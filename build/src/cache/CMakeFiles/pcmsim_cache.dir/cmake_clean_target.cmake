file(REMOVE_RECURSE
  "libpcmsim_cache.a"
)
