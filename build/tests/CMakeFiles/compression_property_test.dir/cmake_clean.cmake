file(REMOVE_RECURSE
  "CMakeFiles/compression_property_test.dir/compression_property_test.cpp.o"
  "CMakeFiles/compression_property_test.dir/compression_property_test.cpp.o.d"
  "compression_property_test"
  "compression_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
