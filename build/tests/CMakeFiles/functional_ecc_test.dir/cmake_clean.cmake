file(REMOVE_RECURSE
  "CMakeFiles/functional_ecc_test.dir/functional_ecc_test.cpp.o"
  "CMakeFiles/functional_ecc_test.dir/functional_ecc_test.cpp.o.d"
  "functional_ecc_test"
  "functional_ecc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/functional_ecc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
