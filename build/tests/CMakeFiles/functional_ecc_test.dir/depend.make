# Empty dependencies file for functional_ecc_test.
# This may be replaced when dependencies are built.
