# Empty compiler generated dependencies file for flip_n_write_test.
# This may be replaced when dependencies are built.
