file(REMOVE_RECURSE
  "CMakeFiles/flip_n_write_test.dir/flip_n_write_test.cpp.o"
  "CMakeFiles/flip_n_write_test.dir/flip_n_write_test.cpp.o.d"
  "flip_n_write_test"
  "flip_n_write_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flip_n_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
