# Empty dependencies file for pcm_array_test.
# This may be replaced when dependencies are built.
