file(REMOVE_RECURSE
  "CMakeFiles/pcm_array_test.dir/pcm_array_test.cpp.o"
  "CMakeFiles/pcm_array_test.dir/pcm_array_test.cpp.o.d"
  "pcm_array_test"
  "pcm_array_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcm_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
