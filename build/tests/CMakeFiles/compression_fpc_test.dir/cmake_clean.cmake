file(REMOVE_RECURSE
  "CMakeFiles/compression_fpc_test.dir/compression_fpc_test.cpp.o"
  "CMakeFiles/compression_fpc_test.dir/compression_fpc_test.cpp.o.d"
  "compression_fpc_test"
  "compression_fpc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_fpc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
