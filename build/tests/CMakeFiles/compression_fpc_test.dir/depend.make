# Empty dependencies file for compression_fpc_test.
# This may be replaced when dependencies are built.
