file(REMOVE_RECURSE
  "CMakeFiles/system_invariants_test.dir/system_invariants_test.cpp.o"
  "CMakeFiles/system_invariants_test.dir/system_invariants_test.cpp.o.d"
  "system_invariants_test"
  "system_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
