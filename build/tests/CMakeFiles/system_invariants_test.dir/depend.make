# Empty dependencies file for system_invariants_test.
# This may be replaced when dependencies are built.
