file(REMOVE_RECURSE
  "CMakeFiles/compression_best_test.dir/compression_best_test.cpp.o"
  "CMakeFiles/compression_best_test.dir/compression_best_test.cpp.o.d"
  "compression_best_test"
  "compression_best_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_best_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
