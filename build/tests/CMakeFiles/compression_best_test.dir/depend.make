# Empty dependencies file for compression_best_test.
# This may be replaced when dependencies are built.
