# Empty dependencies file for freep_test.
# This may be replaced when dependencies are built.
