file(REMOVE_RECURSE
  "CMakeFiles/freep_test.dir/freep_test.cpp.o"
  "CMakeFiles/freep_test.dir/freep_test.cpp.o.d"
  "freep_test"
  "freep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
