# Empty dependencies file for compression_bdi_test.
# This may be replaced when dependencies are built.
