file(REMOVE_RECURSE
  "CMakeFiles/compression_bdi_test.dir/compression_bdi_test.cpp.o"
  "CMakeFiles/compression_bdi_test.dir/compression_bdi_test.cpp.o.d"
  "compression_bdi_test"
  "compression_bdi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_bdi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
