# Empty dependencies file for ecc_schemes_test.
# This may be replaced when dependencies are built.
