file(REMOVE_RECURSE
  "CMakeFiles/ecc_schemes_test.dir/ecc_schemes_test.cpp.o"
  "CMakeFiles/ecc_schemes_test.dir/ecc_schemes_test.cpp.o.d"
  "ecc_schemes_test"
  "ecc_schemes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
