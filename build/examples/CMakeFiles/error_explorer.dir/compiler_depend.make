# Empty compiler generated dependencies file for error_explorer.
# This may be replaced when dependencies are built.
