file(REMOVE_RECURSE
  "CMakeFiles/error_explorer.dir/error_explorer.cpp.o"
  "CMakeFiles/error_explorer.dir/error_explorer.cpp.o.d"
  "error_explorer"
  "error_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
