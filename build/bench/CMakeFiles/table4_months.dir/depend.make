# Empty dependencies file for table4_months.
# This may be replaced when dependencies are built.
