file(REMOVE_RECURSE
  "CMakeFiles/table4_months.dir/table4_months.cpp.o"
  "CMakeFiles/table4_months.dir/table4_months.cpp.o.d"
  "table4_months"
  "table4_months.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_months.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
