file(REMOVE_RECURSE
  "CMakeFiles/micro_ecc.dir/micro_ecc.cpp.o"
  "CMakeFiles/micro_ecc.dir/micro_ecc.cpp.o.d"
  "micro_ecc"
  "micro_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
