# Empty compiler generated dependencies file for fig10_lifetime.
# This may be replaced when dependencies are built.
