file(REMOVE_RECURSE
  "CMakeFiles/fig10_lifetime.dir/fig10_lifetime.cpp.o"
  "CMakeFiles/fig10_lifetime.dir/fig10_lifetime.cpp.o.d"
  "fig10_lifetime"
  "fig10_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
