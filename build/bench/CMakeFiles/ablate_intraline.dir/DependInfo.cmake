
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_intraline.cpp" "bench/CMakeFiles/ablate_intraline.dir/ablate_intraline.cpp.o" "gcc" "bench/CMakeFiles/ablate_intraline.dir/ablate_intraline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcmsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pcmsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/pcmsim_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/pcm/CMakeFiles/pcmsim_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/pcmsim_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/wear/CMakeFiles/pcmsim_wear.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pcmsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/pcmsim_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pcmsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
