file(REMOVE_RECURSE
  "CMakeFiles/ablate_intraline.dir/ablate_intraline.cpp.o"
  "CMakeFiles/ablate_intraline.dir/ablate_intraline.cpp.o.d"
  "ablate_intraline"
  "ablate_intraline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_intraline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
