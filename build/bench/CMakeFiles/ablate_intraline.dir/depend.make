# Empty dependencies file for ablate_intraline.
# This may be replaced when dependencies are built.
