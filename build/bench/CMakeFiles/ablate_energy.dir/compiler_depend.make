# Empty compiler generated dependencies file for ablate_energy.
# This may be replaced when dependencies are built.
