file(REMOVE_RECURSE
  "CMakeFiles/ablate_energy.dir/ablate_energy.cpp.o"
  "CMakeFiles/ablate_energy.dir/ablate_energy.cpp.o.d"
  "ablate_energy"
  "ablate_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
