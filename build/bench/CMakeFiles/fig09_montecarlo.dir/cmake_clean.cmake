file(REMOVE_RECURSE
  "CMakeFiles/fig09_montecarlo.dir/fig09_montecarlo.cpp.o"
  "CMakeFiles/fig09_montecarlo.dir/fig09_montecarlo.cpp.o.d"
  "fig09_montecarlo"
  "fig09_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
