# Empty dependencies file for fig09_montecarlo.
# This may be replaced when dependencies are built.
