file(REMOVE_RECURSE
  "CMakeFiles/ablate_writereduce.dir/ablate_writereduce.cpp.o"
  "CMakeFiles/ablate_writereduce.dir/ablate_writereduce.cpp.o.d"
  "ablate_writereduce"
  "ablate_writereduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_writereduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
