# Empty dependencies file for ablate_writereduce.
# This may be replaced when dependencies are built.
