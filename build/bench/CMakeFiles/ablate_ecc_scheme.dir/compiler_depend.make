# Empty compiler generated dependencies file for ablate_ecc_scheme.
# This may be replaced when dependencies are built.
