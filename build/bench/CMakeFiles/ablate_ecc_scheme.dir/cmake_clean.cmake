file(REMOVE_RECURSE
  "CMakeFiles/ablate_ecc_scheme.dir/ablate_ecc_scheme.cpp.o"
  "CMakeFiles/ablate_ecc_scheme.dir/ablate_ecc_scheme.cpp.o.d"
  "ablate_ecc_scheme"
  "ablate_ecc_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_ecc_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
