file(REMOVE_RECURSE
  "CMakeFiles/ablate_freep.dir/ablate_freep.cpp.o"
  "CMakeFiles/ablate_freep.dir/ablate_freep.cpp.o.d"
  "ablate_freep"
  "ablate_freep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_freep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
