# Empty compiler generated dependencies file for ablate_freep.
# This may be replaced when dependencies are built.
