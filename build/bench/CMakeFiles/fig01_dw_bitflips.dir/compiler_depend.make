# Empty compiler generated dependencies file for fig01_dw_bitflips.
# This may be replaced when dependencies are built.
