file(REMOVE_RECURSE
  "CMakeFiles/fig01_dw_bitflips.dir/fig01_dw_bitflips.cpp.o"
  "CMakeFiles/fig01_dw_bitflips.dir/fig01_dw_bitflips.cpp.o.d"
  "fig01_dw_bitflips"
  "fig01_dw_bitflips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_dw_bitflips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
