file(REMOVE_RECURSE
  "CMakeFiles/fig03_compressed_size.dir/fig03_compressed_size.cpp.o"
  "CMakeFiles/fig03_compressed_size.dir/fig03_compressed_size.cpp.o.d"
  "fig03_compressed_size"
  "fig03_compressed_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_compressed_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
