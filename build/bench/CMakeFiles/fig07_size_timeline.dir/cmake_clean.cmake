file(REMOVE_RECURSE
  "CMakeFiles/fig07_size_timeline.dir/fig07_size_timeline.cpp.o"
  "CMakeFiles/fig07_size_timeline.dir/fig07_size_timeline.cpp.o.d"
  "fig07_size_timeline"
  "fig07_size_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_size_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
