# Empty compiler generated dependencies file for fig07_size_timeline.
# This may be replaced when dependencies are built.
