# Empty dependencies file for sec5b_perf_overhead.
# This may be replaced when dependencies are built.
