file(REMOVE_RECURSE
  "CMakeFiles/sec5b_perf_overhead.dir/sec5b_perf_overhead.cpp.o"
  "CMakeFiles/sec5b_perf_overhead.dir/sec5b_perf_overhead.cpp.o.d"
  "sec5b_perf_overhead"
  "sec5b_perf_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5b_perf_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
