# Empty compiler generated dependencies file for fig11_size_cdf.
# This may be replaced when dependencies are built.
