file(REMOVE_RECURSE
  "CMakeFiles/fig13_variation.dir/fig13_variation.cpp.o"
  "CMakeFiles/fig13_variation.dir/fig13_variation.cpp.o.d"
  "fig13_variation"
  "fig13_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
