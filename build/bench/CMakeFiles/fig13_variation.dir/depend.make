# Empty dependencies file for fig13_variation.
# This may be replaced when dependencies are built.
