# Empty compiler generated dependencies file for fig05_bitflip_delta.
# This may be replaced when dependencies are built.
