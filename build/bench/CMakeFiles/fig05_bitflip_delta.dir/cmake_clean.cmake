file(REMOVE_RECURSE
  "CMakeFiles/fig05_bitflip_delta.dir/fig05_bitflip_delta.cpp.o"
  "CMakeFiles/fig05_bitflip_delta.dir/fig05_bitflip_delta.cpp.o.d"
  "fig05_bitflip_delta"
  "fig05_bitflip_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_bitflip_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
