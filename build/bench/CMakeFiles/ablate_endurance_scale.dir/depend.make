# Empty dependencies file for ablate_endurance_scale.
# This may be replaced when dependencies are built.
