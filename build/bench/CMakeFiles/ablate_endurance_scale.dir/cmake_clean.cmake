file(REMOVE_RECURSE
  "CMakeFiles/ablate_endurance_scale.dir/ablate_endurance_scale.cpp.o"
  "CMakeFiles/ablate_endurance_scale.dir/ablate_endurance_scale.cpp.o.d"
  "ablate_endurance_scale"
  "ablate_endurance_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_endurance_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
