# Empty compiler generated dependencies file for fig12_tolerable_errors.
# This may be replaced when dependencies are built.
