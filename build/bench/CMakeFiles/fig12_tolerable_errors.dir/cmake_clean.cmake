file(REMOVE_RECURSE
  "CMakeFiles/fig12_tolerable_errors.dir/fig12_tolerable_errors.cpp.o"
  "CMakeFiles/fig12_tolerable_errors.dir/fig12_tolerable_errors.cpp.o.d"
  "fig12_tolerable_errors"
  "fig12_tolerable_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_tolerable_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
