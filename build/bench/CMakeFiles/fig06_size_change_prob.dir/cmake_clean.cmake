file(REMOVE_RECURSE
  "CMakeFiles/fig06_size_change_prob.dir/fig06_size_change_prob.cpp.o"
  "CMakeFiles/fig06_size_change_prob.dir/fig06_size_change_prob.cpp.o.d"
  "fig06_size_change_prob"
  "fig06_size_change_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_size_change_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
