# Empty dependencies file for fig06_size_change_prob.
# This may be replaced when dependencies are built.
