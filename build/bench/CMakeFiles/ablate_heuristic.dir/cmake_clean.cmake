file(REMOVE_RECURSE
  "CMakeFiles/ablate_heuristic.dir/ablate_heuristic.cpp.o"
  "CMakeFiles/ablate_heuristic.dir/ablate_heuristic.cpp.o.d"
  "ablate_heuristic"
  "ablate_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
