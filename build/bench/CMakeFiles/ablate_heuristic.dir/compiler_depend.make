# Empty compiler generated dependencies file for ablate_heuristic.
# This may be replaced when dependencies are built.
